// Golden-run gate: a reduced-scale slice of the paper experiments and
// the flow-tracked scenarios is rendered to canonical CSV artifacts
// and diffed byte-for-byte against the committed files under
// testdata/golden/. Everything rendered here is a deterministic
// function of the seed, so any drift — a model change, a statistics
// regression, an accidental reordering — fails CI with a readable
// diff instead of slipping through as a silent number shift.
//
// Regenerate after an intentional change with:
//
//	go test -run TestExperimentsGolden -short . -update
package repro

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/scenario"
	"repro/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite the testdata/golden artifacts instead of diffing")

// tableCSV renders an experiments.Table canonically.
func tableCSV(w io.Writer, tb *experiments.Table) {
	fmt.Fprintf(w, "title,%s\n", tb.Title)
	fmt.Fprintf(w, "columns,%s\n", strings.Join(tb.Columns, ","))
	for _, r := range tb.Rows {
		fmt.Fprintf(w, "row,%s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(w, ",%g", v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range tb.Notes {
		fmt.Fprintf(w, "note,%s\n", n)
	}
}

// reportCSV renders a scenario.Report canonically: the counter
// baseline, per-flow slices with the sequence verdicts, result rows
// and notes. Latency histograms are reduced to count and quartiles.
func reportCSV(w io.Writer, rep *scenario.Report) {
	fmt.Fprintf(w, "scenario,%s\n", rep.Scenario)
	fmt.Fprintf(w, "window_ms,%g\n", rep.Window.Seconds()*1e3)
	fmt.Fprintf(w, "counters,tx=%d,txbytes=%d,rx=%d,rxbytes=%d,crc=%d,missed=%d\n",
		rep.TxPackets, rep.TxBytes, rep.RxPackets, rep.RxBytes, rep.RxCRCErrors, rep.RxMissed)
	for _, f := range rep.Flows {
		fmt.Fprintf(w, "flow,%s,tx=%d,rx=%d,lost=%d,reordered=%d,dup=%d",
			f.Name, f.TxPackets, f.RxPackets, f.Lost, f.Reordered, f.Duplicates)
		if f.LostDuringFault != 0 || f.LostInRecovery != 0 {
			// The fault-boundary loss split, present only in fault-driven
			// scenarios so fault-free goldens keep their line format.
			fmt.Fprintf(w, ",lost_fault=%d,lost_recovery=%d", f.LostDuringFault, f.LostInRecovery)
		}
		if f.Latency != nil && f.Latency.Count() > 0 {
			q1, q2, q3 := f.Latency.Quartiles()
			fmt.Fprintf(w, ",latn=%d,q=%g/%g/%g", f.Latency.Count(),
				q1.Nanoseconds(), q2.Nanoseconds(), q3.Nanoseconds())
		}
		fmt.Fprintln(w)
	}
	for _, row := range rep.Rows {
		fmt.Fprintf(w, "row,%s,%g,%s\n", row.Label, row.Value, row.Unit)
	}
	for _, n := range rep.Notes {
		fmt.Fprintf(w, "note,%s\n", n)
	}
}

// goldenCompare diffs got against testdata/golden/<name> (or rewrites
// the file with -update).
func goldenCompare(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name)
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden artifact (run `go test -run TestExperimentsGolden -short . -update`): %v", err)
	}
	if string(want) == got {
		return
	}
	// Point at the first divergent line for a readable failure.
	wl, gl := strings.Split(string(want), "\n"), strings.Split(got, "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		var a, b string
		if i < len(wl) {
			a = wl[i]
		}
		if i < len(gl) {
			b = gl[i]
		}
		if a != b {
			t.Fatalf("%s: line %d differs\n golden: %q\n  fresh: %q\n(regenerate with -update if intentional)", name, i+1, a, b)
		}
	}
	t.Fatalf("%s differs from golden (run with -update if intentional)", name)
}

// runGoldenScenario executes a flow-tracked scenario at the canonical
// golden configuration (10 ms, seed 5, two sharded cores so the merge
// path is inside the gate). withTelemetry additionally records the
// 1 ms telemetry series.
func runGoldenScenario(t *testing.T, name string, withTelemetry bool) *scenario.Report {
	t.Helper()
	sc, ok := scenario.Get(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	spec := sc.DefaultSpec()
	spec.Runtime = 10 * sim.Millisecond
	spec.Seed = 5
	spec.Cores = 2
	if withTelemetry {
		spec.TelemetryInterval = sim.Millisecond
	}
	rep, err := scenario.Execute(name, spec, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// goldenTelemetryCSV renders the golden scenario's merged telemetry
// series with the diagnostic columns included: at the pinned
// configuration every column — engine internals and latency quantiles
// included — is a deterministic function of the seed, so the full
// series is golden-gateable even though only the model columns are
// invariant across core counts.
func goldenTelemetryCSV(t *testing.T, name string) string {
	t.Helper()
	rep := runGoldenScenario(t, name, true)
	if rep.Telemetry == nil {
		t.Fatalf("%s: no telemetry series in the merged report", name)
	}
	var b strings.Builder
	if err := rep.Telemetry.WriteCSV(&b, true); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// TestExperimentsGolden is the CI golden-run job's entry point
// (`go test -run TestExperiments -short`).
func TestExperimentsGolden(t *testing.T) {
	t.Run("table1", func(t *testing.T) {
		var b strings.Builder
		tableCSV(&b, experiments.RunTable1())
		goldenCompare(t, "table1.csv", b.String())
	})
	t.Run("table2", func(t *testing.T) {
		var b strings.Builder
		tableCSV(&b, experiments.RunTable2())
		goldenCompare(t, "table2.csv", b.String())
	})
	t.Run("fig2", func(t *testing.T) {
		var b strings.Builder
		tableCSV(&b, &experiments.RunFig2(experiments.ScaleTest, 2).Table)
		goldenCompare(t, "fig2.csv", b.String())
	})
	t.Run("table4", func(t *testing.T) {
		var b strings.Builder
		tableCSV(&b, &experiments.RunTable4(experiments.ScaleTest, 10).Table)
		goldenCompare(t, "table4.csv", b.String())
	})
	t.Run("loss-overload", func(t *testing.T) {
		var b strings.Builder
		reportCSV(&b, runGoldenScenario(t, "loss-overload", false))
		goldenCompare(t, "loss_overload.csv", b.String())
	})
	t.Run("reorder", func(t *testing.T) {
		var b strings.Builder
		reportCSV(&b, runGoldenScenario(t, "reorder", false))
		goldenCompare(t, "reorder.csv", b.String())
	})
	t.Run("telemetry-softcbr", func(t *testing.T) {
		goldenCompare(t, "telemetry_softcbr.csv", goldenTelemetryCSV(t, "softcbr"))
	})
	t.Run("telemetry-loss-overload", func(t *testing.T) {
		goldenCompare(t, "telemetry_loss_overload.csv", goldenTelemetryCSV(t, "loss-overload"))
	})
	t.Run("linkflap", func(t *testing.T) {
		var b strings.Builder
		reportCSV(&b, runGoldenScenario(t, "linkflap", false))
		goldenCompare(t, "linkflap.csv", b.String())
	})
	t.Run("overload-recover", func(t *testing.T) {
		var b strings.Builder
		reportCSV(&b, runGoldenScenario(t, "overload-recover", false))
		goldenCompare(t, "overload_recover.csv", b.String())
	})
	// The linkflap telemetry golden includes the diagnostic columns, so
	// the injector's recovery latency (fault.recovery_ns) is pinned
	// byte-for-byte at the canonical two-core configuration.
	t.Run("telemetry-linkflap", func(t *testing.T) {
		goldenCompare(t, "telemetry_linkflap.csv", goldenTelemetryCSV(t, "linkflap"))
	})
}
