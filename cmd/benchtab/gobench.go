package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one parsed `go test -bench` line: the standard ns/op
// and allocation columns plus every custom b.ReportMetric metric (the
// figure benchmarks report their headline numbers that way).
type BenchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// BenchBaseline is the committed BENCH_*.json document.
type BenchBaseline struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Command    string        `json:"command"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// benchArgs is the fixed benchmark invocation: one iteration per
// benchmark keeps the baseline quick while the figure benchmarks still
// report their deterministic headline metrics.
var benchArgs = []string{"test", "-run", "NONE", "-bench", ".", "-benchmem", "-benchtime", "1x", "."}

// runGoBench runs the top-level benchmarks and writes the parsed
// baseline to path.
func runGoBench(path string) error {
	cmd := exec.Command("go", benchArgs...)
	// The benchmarks live in the module root's bench_test.go; resolve
	// it so -gobench works from any working directory.
	if root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output(); err == nil {
		if dir := strings.TrimSpace(string(root)); dir != "" {
			cmd.Dir = dir
		}
	}
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return fmt.Errorf("benchtab: go %s: %w", strings.Join(benchArgs, " "), err)
	}
	results, err := parseGoBench(bytes.NewReader(out))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("benchtab: no benchmark lines in go test output")
	}
	doc := BenchBaseline{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Command:    "go " + strings.Join(benchArgs, " "),
		Benchmarks: results,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(results), path)
	return nil
}

// parseGoBench extracts benchmark lines from `go test -bench` output.
// A line looks like:
//
//	BenchmarkName-8  1  12345 ns/op  99 B/op  4 allocs/op  17.2 some-metric
func parseGoBench(r *bytes.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... --- SKIP"
		}
		res := BenchResult{
			Name:       strings.SplitN(fields[0], "-", 2)[0],
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// The remainder alternates "value unit".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchtab: bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				res.Metrics[unit] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		out = append(out, res)
	}
	return out, sc.Err()
}
