package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one parsed `go test -bench` line: the standard ns/op
// and allocation columns plus every custom b.ReportMetric metric (the
// figure benchmarks report their headline numbers that way).
type BenchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// BenchBaseline is the committed BENCH_*.json document.
type BenchBaseline struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Command    string        `json:"command"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// benchArgs is the fixed benchmark invocation: one iteration per
// benchmark keeps the baseline quick while the figure benchmarks still
// report their deterministic headline metrics.
var benchArgs = []string{"test", "-run", "NONE", "-bench", ".", "-benchmem", "-benchtime", "1x", "."}

// runBenchResults runs the top-level benchmarks and returns the parsed
// results.
func runBenchResults() ([]BenchResult, error) {
	cmd := exec.Command("go", benchArgs...)
	// The benchmarks live in the module root's bench_test.go; resolve
	// it so -gobench works from any working directory.
	if root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output(); err == nil {
		if dir := strings.TrimSpace(string(root)); dir != "" {
			cmd.Dir = dir
		}
	}
	cmd.Stderr = os.Stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("benchtab: go %s: %w", strings.Join(benchArgs, " "), err)
	}
	results, err := parseGoBench(bytes.NewReader(out))
	if err != nil {
		return nil, err
	}
	if len(results) == 0 {
		return nil, fmt.Errorf("benchtab: no benchmark lines in go test output")
	}
	return results, nil
}

// runGoBench runs the top-level benchmarks and writes the parsed
// baseline to path.
func runGoBench(path string) error {
	results, err := runBenchResults()
	if err != nil {
		return err
	}
	return writeBaseline(path, results)
}

// txPathBenchmarks are the datapath-hot-path benchmarks the -check
// gate guards: the transmit side the batched datapath is accountable
// for, plus the steady-state receive pipeline of the flow analysis
// subsystem.
var txPathBenchmarks = map[string]bool{
	"BenchmarkTable1PacketIO":     true,
	"BenchmarkSimulatedLineRate":  true,
	"BenchmarkTxBurstSteadyState": true,
	"BenchmarkRxBurstSteadyState": true,
	"BenchmarkMulticoreScaling":   true,
	"BenchmarkCRCGapScheduling":   true,
}

// allocThreshold is the allowed relative allocs/op regression.
// Allocation counts are near-deterministic, so this is the gate's
// precise signal: a TX loop growing a per-packet allocation trips it
// immediately.
const allocThreshold = 0.25

// nsThreshold is the allowed relative ns/op regression. Wall timings
// at -benchtime 1x vary by tens of percent across machines and runs
// (the committed baseline is recorded wherever the last refresh ran),
// so only catastrophic slowdowns — an accidental de-batching, an
// event-storm regression — are actionable; finer timing moves are
// tracked by refreshing the baseline, not by this gate.
const nsThreshold = 1.5

// nsCheckFloor exempts sub-microsecond benchmarks from the timing
// check entirely: at one measured iteration their ns/op is dominated
// by timer granularity.
const nsCheckFloor = 10e3 // ns/op

// writeBaseline marshals results into the committed baseline format.
func writeBaseline(path string, results []BenchResult) error {
	doc := BenchBaseline{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Command:    "go " + strings.Join(benchArgs, " "),
		Benchmarks: results,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(results), path)
	return nil
}

// checkGoBench runs the benchmarks fresh and compares the datapath
// subset against the committed baseline at path, failing on allocs/op
// or catastrophic ns/op regressions. When outPath is non-empty the
// fresh run is also written there in the baseline format, so CI can
// upload it as an artifact for post-hoc triage with a single
// benchmark run.
func checkGoBench(path, outPath string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchtab: read baseline: %w", err)
	}
	var base BenchBaseline
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("benchtab: parse baseline %s: %w", path, err)
	}
	baseline := map[string]BenchResult{}
	for _, r := range base.Benchmarks {
		baseline[r.Name] = r
	}
	fresh, err := runBenchResults()
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := writeBaseline(outPath, fresh); err != nil {
			return err
		}
	}
	var regressions []string
	compared := 0
	seen := map[string]bool{}
	for _, r := range fresh {
		if !txPathBenchmarks[r.Name] {
			continue
		}
		seen[r.Name] = true
		b, ok := baseline[r.Name]
		if !ok {
			fmt.Printf("  %-32s new benchmark (no baseline): %.0f ns/op, %.0f allocs/op\n",
				r.Name, r.NsPerOp, r.AllocsPerOp)
			continue
		}
		compared++
		nsDelta := r.NsPerOp/b.NsPerOp - 1
		fmt.Printf("  %-32s ns/op %12.0f -> %12.0f (%+6.1f%%)  allocs/op %8.0f -> %8.0f\n",
			r.Name, b.NsPerOp, r.NsPerOp, nsDelta*100, b.AllocsPerOp, r.AllocsPerOp)
		if b.NsPerOp >= nsCheckFloor && r.NsPerOp > b.NsPerOp*(1+nsThreshold) {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op %.0f -> %.0f (%+.1f%%)", r.Name, b.NsPerOp, r.NsPerOp, nsDelta*100))
		}
		// Alloc counts are near-deterministic; allow the threshold plus
		// a small absolute slack for warmup noise.
		if r.AllocsPerOp > b.AllocsPerOp*(1+allocThreshold)+2 {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %.0f -> %.0f", r.Name, b.AllocsPerOp, r.AllocsPerOp))
		}
	}
	// A guarded benchmark vanishing from the fresh run (renamed or
	// deleted) is itself a gate failure: its pin would otherwise
	// silently stop being checked.
	guarded := make([]string, 0, len(txPathBenchmarks))
	for name := range txPathBenchmarks {
		guarded = append(guarded, name)
	}
	sort.Strings(guarded)
	for _, name := range guarded {
		if _, inBase := baseline[name]; inBase && !seen[name] {
			regressions = append(regressions,
				fmt.Sprintf("%s: present in baseline but missing from the fresh run", name))
		}
	}
	if compared == 0 {
		return fmt.Errorf("benchtab: baseline %s contains no TX-path benchmarks to compare", path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchtab: TX-path perf regressions vs %s:\n  %s",
			path, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("no TX-path regressions vs %s (%d benchmarks: allocs within %.0f%%, ns within %.1fx)\n",
		path, compared, allocThreshold*100, 1+nsThreshold)
	return nil
}

// parseGoBench extracts benchmark lines from `go test -bench` output.
// A line looks like:
//
//	BenchmarkName-8  1  12345 ns/op  99 B/op  4 allocs/op  17.2 some-metric
func parseGoBench(r *bytes.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... --- SKIP"
		}
		res := BenchResult{
			Name:       strings.SplitN(fields[0], "-", 2)[0],
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// The remainder alternates "value unit".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchtab: bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				res.Metrics[unit] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		out = append(out, res)
	}
	return out, sc.Err()
}
