package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

// BenchResult is one parsed `go test -bench` line: the standard ns/op
// and allocation columns plus every custom b.ReportMetric metric (the
// figure benchmarks report their headline numbers that way).
type BenchResult struct {
	Name        string             `json:"name"`
	Iterations  int64              `json:"iterations"`
	NsPerOp     float64            `json:"ns_per_op"`
	BPerOp      float64            `json:"b_per_op,omitempty"`
	AllocsPerOp float64            `json:"allocs_per_op,omitempty"`
	Metrics     map[string]float64 `json:"metrics,omitempty"`
}

// BenchBaseline is the committed BENCH_*.json document.
type BenchBaseline struct {
	Date       string        `json:"date"`
	GoVersion  string        `json:"go_version"`
	GOOS       string        `json:"goos"`
	GOARCH     string        `json:"goarch"`
	Command    string        `json:"command"`
	Benchmarks []BenchResult `json:"benchmarks"`
}

// benchPass is one `go test -bench` invocation. The baseline is built
// from several: the figure benchmarks run once (they simulate whole
// experiments and report deterministic headline metrics), while
// sub-millisecond micro benchmarks run at -benchtime 100x — at one
// iteration their ns/op is timer-granularity noise, which is exactly
// the kind of phantom regression a perf gate must not alert on. Later
// passes override same-name results from earlier ones, and the
// recorded iteration counts distinguish the two regimes in the JSON.
type benchPass struct {
	name      string
	pkg       string // package path relative to the module root
	benchRE   string
	benchtime string
	count     int // -count repetitions (0 = 1); the fastest run is kept
}

var benchPasses = []benchPass{
	{name: "figures", pkg: ".", benchRE: ".", benchtime: "1x"},
	{name: "micro", pkg: ".",
		benchRE:   "^(BenchmarkSimulatedLineRate|BenchmarkSpecCompiledLineRate|BenchmarkTelemetryOverhead|BenchmarkFaultInjectorOverhead|BenchmarkTxBurstSteadyState|BenchmarkRxBurstSteadyState|BenchmarkCRCGapScheduling)$",
		benchtime: "100x", count: 3},
	{name: "engine", pkg: "./internal/sim", benchRE: "^BenchmarkEngine", benchtime: "100x", count: 3},
	{name: "flow", pkg: "./internal/flow", benchRE: "^BenchmarkFlowTracker", benchtime: "100x", count: 3},
}

// benchCommand is the recorded description of the invocation set.
const benchCommand = "go test -run NONE -bench <pass> -benchmem -benchtime {1x figures, 100x -count=3 micro+engine+flow, best kept}"

// args builds the go test argument list. Profile paths, when set, get
// the pass name appended so the passes do not overwrite each other.
func (p benchPass) args(cpuProfile, memProfile string) []string {
	a := []string{"test", "-run", "NONE", "-bench", p.benchRE, "-benchmem", "-benchtime", p.benchtime}
	if p.count > 1 {
		a = append(a, "-count", strconv.Itoa(p.count))
	}
	if cpuProfile != "" {
		a = append(a, "-cpuprofile", profilePath(cpuProfile, p.name))
	}
	if memProfile != "" {
		a = append(a, "-memprofile", profilePath(memProfile, p.name))
	}
	if cpuProfile != "" || memProfile != "" {
		// Profiling keeps the test binary around; park it in the temp
		// dir instead of the repository.
		a = append(a, "-o", filepath.Join(os.TempDir(), "benchtab-"+p.name+".test"))
	}
	return append(a, p.pkg)
}

// profilePath appends the pass name to a profile file path.
func profilePath(base, pass string) string { return base + "." + pass }

// betterResult decides which of two same-name benchmark lines to keep:
// more iterations wins (the longer-benchtime micro pass over the 1x
// figures pass), then the faster of -count repetitions — the workload
// is deterministic, so the minimum is the least-noise estimate and
// what keeps the recorded sim/wall ratio stable on shared runners.
func betterResult(a, b BenchResult) bool {
	if a.Iterations != b.Iterations {
		return a.Iterations > b.Iterations
	}
	return a.NsPerOp < b.NsPerOp
}

// runBenchResults runs the benchmark passes and returns the merged
// parsed results. With profiling enabled, each pass writes
// <path>.<pass> cpu/heap profiles for `go tool pprof` — the same
// binary the CI gate runs doubles as the diagnosis tool.
func runBenchResults(cpuProfile, memProfile string) ([]BenchResult, error) {
	// The benchmarks live in the module; resolve its root so -gobench
	// works from any working directory.
	moduleRoot := ""
	if root, err := exec.Command("go", "list", "-m", "-f", "{{.Dir}}").Output(); err == nil {
		moduleRoot = strings.TrimSpace(string(root))
	}
	// go test resolves relative profile paths against its own working
	// directory (the module root below) — anchor them to the caller's
	// cwd so they land where -out does.
	if abs, err := filepath.Abs(cpuProfile); cpuProfile != "" && err == nil {
		cpuProfile = abs
	}
	if abs, err := filepath.Abs(memProfile); memProfile != "" && err == nil {
		memProfile = abs
	}
	var merged []BenchResult
	index := map[string]int{}
	for _, pass := range benchPasses {
		args := pass.args(cpuProfile, memProfile)
		cmd := exec.Command("go", args...)
		cmd.Dir = moduleRoot
		cmd.Stderr = os.Stderr
		out, err := cmd.Output()
		if err != nil {
			return nil, fmt.Errorf("benchtab: go %s: %w", strings.Join(args, " "), err)
		}
		results, err := parseGoBench(bytes.NewReader(out))
		if err != nil {
			return nil, err
		}
		for _, r := range results {
			if i, ok := index[r.Name]; ok {
				if betterResult(r, merged[i]) {
					merged[i] = r
				}
				continue
			}
			index[r.Name] = len(merged)
			merged = append(merged, r)
		}
		if cpuProfile != "" {
			fmt.Printf("pass %s: cpu profile %s\n", pass.name, profilePath(cpuProfile, pass.name))
		}
		if memProfile != "" {
			fmt.Printf("pass %s: mem profile %s\n", pass.name, profilePath(memProfile, pass.name))
		}
	}
	if len(merged) == 0 {
		return nil, fmt.Errorf("benchtab: no benchmark lines in go test output")
	}
	return merged, nil
}

// runGoBench runs the benchmark passes and writes the parsed baseline
// to path.
func runGoBench(path, cpuProfile, memProfile string) error {
	results, err := runBenchResults(cpuProfile, memProfile)
	if err != nil {
		return err
	}
	return writeBaseline(path, results)
}

// gatedBenchmarks are the hot-path benchmarks the -check gate guards:
// the batched TX/RX datapaths, the event-scheduler core (the timing
// wheel's schedule/fire loop), and the figure-level scaling runs whose
// allocation counts the zero-alloc sweep is accountable for.
var gatedBenchmarks = map[string]bool{
	"BenchmarkTable1PacketIO":        true,
	"BenchmarkSimulatedLineRate":     true,
	"BenchmarkSpecCompiledLineRate":  true,
	"BenchmarkTelemetryOverhead":     true,
	"BenchmarkFaultInjectorOverhead": true,
	"BenchmarkTxBurstSteadyState":    true,
	"BenchmarkRxBurstSteadyState":    true,
	"BenchmarkMulticoreScaling":      true,
	"BenchmarkCRCGapScheduling":      true,
	"BenchmarkEngineSchedule":        true,
	"BenchmarkFig2MultiCoreScaling":  true,
	"BenchmarkFig4Scaling120G":       true,
	"BenchmarkFlowTrackerMillion":    true,
	"BenchmarkFlowTrackerChurn":      true,
}

// footprintGated marks gated benchmarks whose memory numbers are
// near-deterministic at a fixed iteration count and therefore gated
// like allocs/op: B/op (bytes allocated during the timed loop — 0 for
// the steady-state million-flow bench, arena/rehash growth for the
// churn bench) within the alloc threshold plus a small absolute slack,
// and the custom B/flow resident-footprint metric within the same
// relative threshold. This is the table-footprint gate: a record
// layout or slot-geometry change that bloats the flat table shows up
// here before it shows up in production memory graphs.
var footprintGated = map[string]bool{
	"BenchmarkFlowTrackerMillion": true,
	"BenchmarkFlowTrackerChurn":   true,
}

// footprintMetric is the custom metric carrying resident table bytes
// per tracked flow.
const footprintMetric = "B/flow"

// allocThreshold is the allowed relative allocs/op regression.
// Allocation counts are near-deterministic, so this is the gate's
// precise signal: a TX loop growing a per-packet allocation trips it
// immediately.
const allocThreshold = 0.25

// nsThreshold is the allowed relative ns/op regression. Wall timings
// at -benchtime 1x vary by tens of percent across machines and runs
// (the committed baseline is recorded wherever the last refresh ran),
// so only catastrophic slowdowns — an accidental de-batching, an
// event-storm regression — are actionable; finer timing moves are
// tracked by refreshing the baseline, not by this gate.
const nsThreshold = 1.5

// nsCheckFloor exempts microsecond-scale benchmarks from the timing
// check entirely: even averaged over a 100x micro pass, their ns/op
// moves with shared-runner scheduling noise; their near-deterministic
// allocs/op remains gated.
const nsCheckFloor = 10e3 // ns/op

// simWallMetric is the custom metric unit the simulator-speed
// benchmarks report: simulated time over wall time (> 1 means faster
// than realtime). It is recorded into the baseline like any other
// custom metric and guarded by the gate with the same catastrophic
// threshold as ns/op — it is wall-clock derived and just as noisy, so
// only a collapse (an accidental de-batching, an event storm) is
// actionable.
const simWallMetric = "sim/wall"

// writeBaseline marshals results into the committed baseline format.
func writeBaseline(path string, results []BenchResult) error {
	doc := BenchBaseline{
		Date:       time.Now().UTC().Format("2006-01-02"),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Command:    benchCommand,
		Benchmarks: results,
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %d benchmark results to %s\n", len(results), path)
	return nil
}

// checkGoBench runs the benchmarks fresh and compares the gated
// subset against the committed baseline at path, failing on allocs/op
// or catastrophic ns/op regressions. When outPath is non-empty the
// fresh run is also written there in the baseline format, so CI can
// upload it as an artifact for post-hoc triage with a single
// benchmark run. Profile paths, when set, are passed through to the
// benchmark runs so a failing gate ships the evidence along with the
// verdict.
func checkGoBench(path, outPath, cpuProfile, memProfile string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("benchtab: read baseline: %w", err)
	}
	var base BenchBaseline
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("benchtab: parse baseline %s: %w", path, err)
	}
	baseline := map[string]BenchResult{}
	for _, r := range base.Benchmarks {
		baseline[r.Name] = r
	}
	fresh, err := runBenchResults(cpuProfile, memProfile)
	if err != nil {
		return err
	}
	if outPath != "" {
		if err := writeBaseline(outPath, fresh); err != nil {
			return err
		}
	}
	var (
		regressions []string
		rows        []deltaRow
	)
	compared := 0
	seen := map[string]bool{}
	for _, r := range fresh {
		if !gatedBenchmarks[r.Name] {
			continue
		}
		seen[r.Name] = true
		row := deltaRow{name: r.Name, fresh: r}
		b, ok := baseline[r.Name]
		if !ok {
			rows = append(rows, row)
			continue
		}
		row.base, row.hasBase = b, true
		rows = append(rows, row)
		compared++
		if b.NsPerOp >= nsCheckFloor && r.NsPerOp > b.NsPerOp*(1+nsThreshold) {
			regressions = append(regressions,
				fmt.Sprintf("%s: ns/op %.0f -> %.0f (%+.1f%%)",
					r.Name, b.NsPerOp, r.NsPerOp, (r.NsPerOp/b.NsPerOp-1)*100))
		}
		// Alloc counts are near-deterministic; allow the threshold plus
		// a small absolute slack for warmup noise.
		if r.AllocsPerOp > b.AllocsPerOp*(1+allocThreshold)+2 {
			regressions = append(regressions,
				fmt.Sprintf("%s: allocs/op %.0f -> %.0f", r.Name, b.AllocsPerOp, r.AllocsPerOp))
		}
		// Table-footprint gate: timed-loop bytes and resident B/flow are
		// as deterministic as alloc counts for the flow benchmarks.
		if footprintGated[r.Name] {
			if r.BPerOp > b.BPerOp*(1+allocThreshold)+64 {
				regressions = append(regressions,
					fmt.Sprintf("%s: B/op %.0f -> %.0f", r.Name, b.BPerOp, r.BPerOp))
			}
			bf, bok := b.Metrics[footprintMetric]
			ff, fok := r.Metrics[footprintMetric]
			if bok && fok && ff > bf*(1+allocThreshold) {
				regressions = append(regressions,
					fmt.Sprintf("%s: %s %.1f -> %.1f (flow-table footprint regressed beyond %.0f%%)",
						r.Name, footprintMetric, bf, ff, allocThreshold*100))
			}
		}
		// sim/wall collapse gate: the ratio is wall-derived, so reuse
		// the catastrophic ns threshold and floor rather than invent a
		// tighter (and noisier) one.
		bw, bok := b.Metrics[simWallMetric]
		fw, fok := r.Metrics[simWallMetric]
		if bok && fok && b.NsPerOp >= nsCheckFloor && fw < bw/(1+nsThreshold) {
			regressions = append(regressions,
				fmt.Sprintf("%s: sim/wall %.3f -> %.3f (simulator speed collapsed beyond the %.1fx threshold)",
					r.Name, bw, fw, 1+nsThreshold))
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].name < rows[j].name })
	printDeltaTable(rows)
	// A guarded benchmark vanishing from the fresh run (renamed or
	// deleted) is itself a gate failure: its pin would otherwise
	// silently stop being checked.
	guarded := make([]string, 0, len(gatedBenchmarks))
	for name := range gatedBenchmarks {
		guarded = append(guarded, name)
	}
	sort.Strings(guarded)
	for _, name := range guarded {
		if _, inBase := baseline[name]; inBase && !seen[name] {
			regressions = append(regressions,
				fmt.Sprintf("%s: present in baseline but missing from the fresh run", name))
		}
	}
	if compared == 0 {
		return fmt.Errorf("benchtab: baseline %s contains no gated benchmarks to compare", path)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("benchtab: hot-path perf regressions vs %s:\n  %s",
			path, strings.Join(regressions, "\n  "))
	}
	fmt.Printf("no hot-path regressions vs %s (%d benchmarks: allocs within %.0f%%, ns and sim/wall within %.1fx)\n",
		path, compared, allocThreshold*100, 1+nsThreshold)
	return nil
}

// deltaRow pairs one gated benchmark's fresh result with its baseline
// entry (absent for benchmarks that are new this run).
type deltaRow struct {
	name    string
	fresh   BenchResult
	base    BenchResult
	hasBase bool
}

// deltaHeader names the table columns: old -> new with a relative
// delta for the wall-derived numbers, old -> new for the deterministic
// allocation counts.
var deltaHeader = []string{"benchmark", "old ns/op", "new ns/op", "delta",
	"old allocs", "new allocs", "old sim/wall", "new sim/wall", "delta"}

// cells renders one row of the delta table; "-" marks a missing side
// (no baseline entry, or a benchmark that does not report sim/wall).
func (d deltaRow) cells() []string {
	c := []string{d.name, "-", fmt.Sprintf("%.0f", d.fresh.NsPerOp), "(new)",
		"-", fmt.Sprintf("%.0f", d.fresh.AllocsPerOp), "-", "-", ""}
	fw, fok := d.fresh.Metrics[simWallMetric]
	if fok {
		c[7] = fmt.Sprintf("%.3f", fw)
	}
	if !d.hasBase {
		return c
	}
	c[1] = fmt.Sprintf("%.0f", d.base.NsPerOp)
	if d.base.NsPerOp > 0 {
		c[3] = fmt.Sprintf("%+.1f%%", (d.fresh.NsPerOp/d.base.NsPerOp-1)*100)
	}
	c[4] = fmt.Sprintf("%.0f", d.base.AllocsPerOp)
	if bw, ok := d.base.Metrics[simWallMetric]; ok {
		c[6] = fmt.Sprintf("%.3f", bw)
		if fok && bw > 0 {
			c[8] = fmt.Sprintf("%+.1f%%", (fw/bw-1)*100)
		}
	}
	return c
}

// printDeltaTable writes the benchstat-style old-vs-new table to
// stdout, and — when running under GitHub Actions — appends the same
// table as markdown to the job summary ($GITHUB_STEP_SUMMARY), so a
// gate run is readable at a glance without opening the raw JSON
// artifacts.
func printDeltaTable(rows []deltaRow) {
	widths := make([]int, len(deltaHeader))
	for i, h := range deltaHeader {
		widths[i] = len(h)
	}
	cells := make([][]string, len(rows))
	for r, row := range rows {
		cells[r] = row.cells()
		for i, c := range cells[r] {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cs []string) string {
		var sb strings.Builder
		fmt.Fprintf(&sb, "  %-*s", widths[0], cs[0])
		for i := 1; i < len(cs); i++ {
			fmt.Fprintf(&sb, "  %*s", widths[i], cs[i])
		}
		return sb.String()
	}
	fmt.Println(line(deltaHeader))
	for _, cs := range cells {
		fmt.Println(line(cs))
	}
	writeStepSummary(deltaHeader, cells)
}

// writeStepSummary appends the delta table as a markdown table to the
// GitHub Actions job summary file, if one is advertised.
func writeStepSummary(header []string, cells [][]string) {
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return
	}
	defer f.Close()
	var sb strings.Builder
	sb.WriteString("### benchtab gate: old vs new\n\n")
	sb.WriteString("| " + strings.Join(header, " | ") + " |\n")
	sb.WriteString("|:---|")
	for range header[1:] {
		sb.WriteString("---:|")
	}
	sb.WriteString("\n")
	for _, cs := range cells {
		sb.WriteString("| " + strings.Join(cs, " | ") + " |\n")
	}
	sb.WriteString("\n")
	f.WriteString(sb.String())
}

// parseGoBench extracts benchmark lines from `go test -bench` output.
// A line looks like:
//
//	BenchmarkName-8  1  12345 ns/op  99 B/op  4 allocs/op  17.2 some-metric
func parseGoBench(r *bytes.Reader) ([]BenchResult, error) {
	var out []BenchResult
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue // e.g. "Benchmark... --- SKIP"
		}
		res := BenchResult{
			Name:       strings.SplitN(fields[0], "-", 2)[0],
			Iterations: iters,
			Metrics:    map[string]float64{},
		}
		// The remainder alternates "value unit".
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchtab: bad value %q in line %q", fields[i], line)
			}
			switch unit := fields[i+1]; unit {
			case "ns/op":
				res.NsPerOp = v
			case "B/op":
				res.BPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			default:
				res.Metrics[unit] = v
			}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		out = append(out, res)
	}
	return out, sc.Err()
}
