// Command benchtab regenerates every table and figure of the paper's
// evaluation from the simulated testbed and prints the same rows/series
// the paper reports, annotated with the paper's values.
//
// Usage:
//
//	benchtab [-exp all|freq-sweep|fig2|fig3|fig4|multicore|table1|table2|
//	          cost-estimate|size-sweep|table3|clocksync|drift|fig7|fig8|
//	          fig10|fig11]
//	         [-full] [-seed 1]
//	benchtab -gobench -out BENCH_baseline.json
//	benchtab -gobench -check BENCH_baseline.json [-out fresh.json]
//	         [-cpuprofile bench.cpu.pprof] [-memprofile bench.mem.pprof]
//
// -full switches from the fast test scale to sample counts approaching
// the paper's (slower).
//
// -gobench works with the performance baseline instead: it runs the
// repository's benchmarks (bench_test.go plus the engine benchmarks in
// internal/sim; figure benchmarks once, sub-millisecond micro
// benchmarks at -benchtime 100x so their recorded ns/op is a real
// average rather than timer noise) and either writes the parsed
// results — ns/op, allocations, iteration counts and every custom
// metric — to the -out JSON file (committed as BENCH_*.json to track
// the perf trajectory across PRs), or, with -check, compares the fresh
// run's gated benchmarks against the committed baseline and exits
// nonzero on a >25% allocs/op regression (near-deterministic) or a
// catastrophic (>2.5x) ns/op slowdown — the CI perf gate of the
// datapath and the event scheduler. -check plus -out additionally
// writes the fresh run's JSON for artifact upload.
//
// -cpuprofile/-memprofile pass through to the underlying `go test`
// runs (one file per pass, suffixed with the pass name), so a hot-path
// regression flagged by the gate can be diagnosed with `go tool pprof`
// from the same binary CI runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id (comma separated) or 'all'")
		full    = flag.Bool("full", false, "run at full scale (paper-like sample counts)")
		seed    = flag.Int64("seed", 1, "simulation seed")
		gobench = flag.Bool("gobench", false, "run the repo benchmarks (-out writes a baseline, -check compares against one)")
		out     = flag.String("out", "", "with -gobench: write the JSON baseline to this file")
		check   = flag.String("check", "", "with -gobench: compare gated benchmarks against this baseline, fail on regressions")
		cpuprof = flag.String("cpuprofile", "", "with -gobench: write per-pass CPU profiles to FILE.<pass>")
		memprof = flag.String("memprofile", "", "with -gobench: write per-pass heap profiles to FILE.<pass>")
	)
	flag.Parse()

	if *gobench {
		var err error
		switch {
		case *check != "":
			// -out alongside -check writes the fresh run for artifact
			// upload without a second benchmark pass.
			err = checkGoBench(*check, *out, *cpuprof, *memprof)
		case *out != "":
			err = runGoBench(*out, *cpuprof, *memprof)
		default:
			err = fmt.Errorf("benchtab: -gobench needs -out FILE (record) or -check FILE (compare)")
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	scale := experiments.ScaleTest
	if *full {
		scale = experiments.ScaleFull
	}

	runners := []struct {
		id string
		fn func()
	}{
		{"freq-sweep", func() { experiments.RunFreqSweep(scale, *seed).Print(os.Stdout) }},
		{"fig2", func() { experiments.RunFig2(scale, *seed).Print(os.Stdout) }},
		{"fig3", func() { experiments.RunFig3(scale, *seed).Print(os.Stdout) }},
		{"fig4", func() { experiments.RunFig4(scale, *seed).Print(os.Stdout) }},
		{"multicore", func() { experiments.RunMulticoreScaling(scale, *seed).Print(os.Stdout) }},
		{"table1", func() { experiments.RunTable1().Print(os.Stdout) }},
		{"table2", func() { experiments.RunTable2().Print(os.Stdout) }},
		{"cost-estimate", func() { experiments.RunCostEstimate(scale, *seed).Print(os.Stdout) }},
		{"size-sweep", func() { experiments.RunSizeSweep(scale, *seed).Print(os.Stdout) }},
		{"table3", func() { experiments.RunTable3(scale, *seed).Print(os.Stdout) }},
		{"clocksync", func() { experiments.RunClockSync(scale, *seed).Print(os.Stdout) }},
		{"drift", func() { experiments.RunDrift(scale, *seed).Print(os.Stdout) }},
		{"fig7", func() { experiments.RunFig7(scale, *seed).Print(os.Stdout) }},
		{"fig8", func() { experiments.RunTable4(scale, *seed).Print(os.Stdout) }},
		{"fig10", func() { experiments.RunFig10(scale, *seed).Print(os.Stdout) }},
		{"fig11", func() { experiments.RunFig11(scale, *seed).Print(os.Stdout) }},
	}

	want := map[string]bool{}
	all := *exp == "all"
	for _, id := range strings.Split(*exp, ",") {
		want[strings.TrimSpace(id)] = true
	}
	ran := 0
	for _, r := range runners {
		if all || want[r.id] {
			fmt.Printf("\n### %s\n", r.id)
			r.fn()
			ran++
		}
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q; known ids:\n", *exp)
		for _, r := range runners {
			fmt.Fprintf(os.Stderr, "  %s\n", r.id)
		}
		os.Exit(2)
	}
}
