// Command moongen runs named traffic scenarios from the scenario
// registry on the simulated testbed — the CLI face of the library,
// mirroring `MoonGen <script.lua> <args>`. Scenarios register
// themselves (internal/scenario for the load scenarios,
// internal/experiments for the measurement-backed ones); this driver
// only maps flags onto the declarative Spec and prints the report.
//
// Usage:
//
//	moongen list
//	moongen <scenario> [flags]
//
// Flags override the scenario's default spec: -rate (Mpps), -size
// (bytes, without FCS), -runtime (ms), -seed, -pattern, -burst,
// -probes, -samples, -steps, -dut, -flows (size of the declared flow
// set for flow-tracked scenarios), -cores (> 1 shards the scenario
// across that many engines, one goroutine per modeled core, and
// merges the per-shard reports).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/scenario"
	"repro/internal/sim"

	// Registers the experiment-backed scenarios (interarrival-*,
	// timestamps).
	_ "repro/internal/experiments"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "list" || name == "-list" || name == "--list" {
		runList(os.Stdout)
		return
	}
	sc, ok := scenario.Get(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n\n", name)
		usage()
		os.Exit(2)
	}

	spec := sc.DefaultSpec()
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	var (
		rateMpps = fs.Float64("rate", spec.RateMpps, "rate [Mpps] (0 = line rate where applicable)")
		size     = fs.Int("size", spec.PktSize, "frame size without FCS")
		runMS    = fs.Float64("runtime", spec.Runtime.Seconds()*1e3, "simulated run time [ms]")
		seed     = fs.Int64("seed", spec.Seed, "simulation seed")
		pattern  = fs.String("pattern", string(spec.Pattern), "pattern: linerate, cbr, poisson or bursts")
		burst    = fs.Int("burst", spec.Burst, "burst size for the bursts pattern")
		batch    = fs.Int("batch", spec.Batch, "TX burst size through the batched datapath (1 = per-packet)")
		probes   = fs.Int("probes", spec.Probes, "timestamped latency probes (0 = none)")
		samples  = fs.Int("samples", spec.Samples, "samples for distribution measurements")
		steps    = fs.Int("steps", spec.Steps, "sweep steps for sweeping scenarios")
		useDuT   = fs.Bool("dut", spec.UseDuT, "route traffic through the simulated DuT forwarder")
		cores    = fs.Int("cores", spec.Cores, "modeled cores (> 1 runs sharded engines and merges the reports)")
		flows    = fs.Int("flows", len(spec.Flows), "declared flow count (0 keeps the scenario's default flow set)")
	)
	_ = fs.Parse(os.Args[2:])

	spec.RateMpps = *rateMpps
	spec.PktSize = *size
	if *runMS > 0 {
		spec.Runtime = sim.FromSeconds(*runMS / 1e3)
	}
	spec.Seed = *seed
	spec.Pattern = scenario.Pattern(*pattern)
	spec.Burst = *burst
	spec.Batch = *batch
	spec.Probes = *probes
	spec.Samples = *samples
	spec.Steps = *steps
	spec.UseDuT = *useDuT
	spec.Cores = *cores
	if *flows > 0 && *flows != len(spec.Flows) {
		// Resizing is only meaningful for scenarios whose default flow
		// set is the generic FlowSet; curated flow sets (qos's shaped
		// EF/BE pair) carry per-flow rates and marks a generic
		// replacement would silently zero out, and scenarios declaring
		// no flows never consume a flow count.
		if !isGenericFlowSet(spec.Flows) {
			fmt.Fprintf(os.Stderr, "scenario %s does not take a flow count; -flows only applies to flow-tracked scenarios\n", name)
			os.Exit(2)
		}
		spec.Flows = scenario.FlowSet(*flows)
	}

	rep, err := scenario.Execute(name, spec, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.Print(os.Stdout)
}

// isGenericFlowSet reports whether flows is exactly the generic
// scenario.FlowSet shape — the only kind -flows may resize. Scenarios
// declaring no flows (they run the implicit DefaultFlow) or a curated
// set are rejected: resizing would silently change their traffic.
func isGenericFlowSet(flows []scenario.Flow) bool {
	if len(flows) == 0 {
		return false
	}
	want := scenario.FlowSet(len(flows))
	for i := range flows {
		if flows[i] != want[i] {
			return false
		}
	}
	return true
}

// runList prints the sorted scenario listing with one-line
// descriptions — the body of `moongen list`.
func runList(w io.Writer) {
	fmt.Fprintln(w, "scenarios:")
	scenario.WriteList(w)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: moongen <scenario> [-rate M] [-size B] [-runtime MS] [-seed N] [-pattern P] [-probes N] [-dut] [-cores N] [-batch N] ...")
	fmt.Fprintln(os.Stderr, "       moongen list")
	fmt.Fprintln(os.Stderr)
	runList(os.Stderr)
}
