// Command moongen runs named packet-generation scenarios on the
// simulated testbed — the CLI face of the library, loosely mirroring
// `MoonGen <script.lua> <args>`. Each scenario corresponds to one of
// the example scripts shipped with the original tool.
//
// Usage:
//
//	moongen <scenario> [flags]
//
// Scenarios:
//
//	flood        line-rate UDP flood with randomized source IPs
//	cbr          hardware-rate-controlled CBR stream
//	poisson      Poisson traffic via CRC-gap software rate control
//	bursts       bursty traffic (l2-bursts.lua)
//	latency      hardware-timestamped latency measurement
//
// Flags after the scenario: -rate (Mpps), -size (bytes, without FCS),
// -runtime (ms), -seed.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/rate"
	"repro/internal/sim"
	"repro/internal/wire"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	scenario := os.Args[1]
	fs := flag.NewFlagSet(scenario, flag.ExitOnError)
	var (
		rateMpps = fs.Float64("rate", 1.0, "rate [Mpps] (0 = line rate where applicable)")
		size     = fs.Int("size", 60, "frame size without FCS")
		runMS    = fs.Float64("runtime", 50, "simulated run time [ms]")
		seed     = fs.Int64("seed", 1, "simulation seed")
		burst    = fs.Int("burst", 16, "burst size for the bursts scenario")
	)
	_ = fs.Parse(os.Args[2:])

	app := core.NewApp(*seed)
	tx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0, TxQueues: 2})
	rx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1, RxRing: 8192, RxPool: 16384})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)

	pktSize := *size
	fill := func(m *mempool.Mbuf, i uint64) {
		p := proto.UDPPacket{B: m.Payload()}
		p.Fill(proto.UDPPacketFill{
			PktLength: pktSize,
			EthSrc:    tx.MAC(), EthDst: rx.MAC(),
			IPSrc: proto.MustIPv4("10.0.0.1") + proto.IPv4(i%256), IPDst: proto.MustIPv4("10.1.0.1"),
			UDPSrc: 1234, UDPDst: 5678,
		})
	}

	// Discard receive traffic so rings don't fill.
	app.LaunchTask("rx-drain", func(t *core.Task) {
		bufs := make([]*mempool.Mbuf, 512)
		for t.Running() {
			if n := rx.GetRxQueue(0).Recv(bufs); n > 0 {
				core.FreeBatch(bufs, n)
			} else {
				t.Sleep(20 * sim.Microsecond)
			}
		}
	})

	switch scenario {
	case "flood":
		pool := core.CreateMemPool(4096, func(m *mempool.Mbuf) { m.Len = pktSize; fill(m, 0) })
		flood := &core.UDPFlood{
			Queue: tx.GetTxQueue(0), PktSize: pktSize,
			BaseIP: proto.MustIPv4("10.0.0.1"), Pool: pool,
		}
		app.LaunchTask("flood", flood.Run)
	case "cbr":
		h := &core.HWRateTx{Queue: tx.GetTxQueue(0), PPS: *rateMpps * 1e6, PktSize: pktSize, Fill: fill}
		app.LaunchTask("cbr", h.Run)
	case "poisson":
		g := &core.GapTx{Queue: tx.GetTxQueue(0), Pattern: rate.NewPoissonPPS(*rateMpps * 1e6), PktSize: pktSize, Fill: fill}
		app.LaunchTask("poisson", g.Run)
	case "bursts":
		b2b := wire.FrameTime(wire.Speed10G, pktSize+proto.FCSLen)
		pat := &rate.Bursts{Size: *burst, AvgInterval: sim.FromSeconds(1 / (*rateMpps * 1e6)), BackToBack: b2b}
		g := &core.GapTx{Queue: tx.GetTxQueue(0), Pattern: pat, PktSize: pktSize, Fill: fill}
		app.LaunchTask("bursts", g.Run)
	case "latency":
		h := &core.HWRateTx{Queue: tx.GetTxQueue(0), PPS: *rateMpps * 1e6, PktSize: pktSize, Fill: fill}
		app.LaunchTask("load", h.Run)
		ts := core.NewTimestamper(tx.GetTxQueue(1), rx.Port)
		app.LaunchTask("latency", func(t *core.Task) {
			hist := ts.MeasureLatency(t, 500, 50*sim.Microsecond)
			fmt.Printf("latency: median %.1f ns, min %.1f, max %.1f over %d probes\n",
				hist.Median().Nanoseconds(), hist.Min().Nanoseconds(),
				hist.Max().Nanoseconds(), hist.Count())
		})
	default:
		usage()
		os.Exit(2)
	}

	window := sim.FromSeconds(*runMS / 1e3)
	var atStop nic.Stats
	app.Eng.Schedule(sim.Time(window), func() { atStop = rx.GetStats() })
	app.RunFor(window)

	secs := window.Seconds()
	fmt.Printf("scenario=%s: rx %.3f Mpps (%.2f Gbit/s wire), crc-dropped %d, missed %d\n",
		scenario,
		float64(atStop.RxPackets)/secs/1e6,
		float64(atStop.RxBytes+atStop.RxPackets*(proto.FCSLen+proto.WireOverhead))*8/secs/1e9,
		atStop.RxCRCErrors, atStop.RxMissed)
	os.Exit(0)
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: moongen <flood|cbr|poisson|bursts|latency> [-rate M] [-size B] [-runtime MS] [-seed N]")
}
