// Command moongen runs traffic scenarios on the simulated testbed —
// the CLI face of the library, mirroring `MoonGen <script.lua> <args>`.
// Scenarios register themselves (internal/scenario for the load
// scenarios, internal/experiments for the measurement-backed ones);
// this driver only maps flags onto the declarative Spec and prints the
// report.
//
// Usage:
//
//	moongen list
//	moongen <scenario> [flags]
//	moongen run <spec.yaml|spec.json> [flags]
//
// The named form starts from the scenario's default spec; the run form
// starts from a declarative spec file (see docs/spec-reference.md)
// compiled at load time by internal/spec. In both forms flags override
// the starting spec; the flagDefs table below is the single source for
// both the FlagSet and the usage synopsis.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/spec"

	// Registers the experiment-backed scenarios (interarrival-*,
	// timestamps).
	_ "repro/internal/experiments"
)

// options collects the parsed flag values before they are applied onto
// the starting spec (scenario default or compiled spec file).
type options struct {
	rateMpps    float64
	size        int
	runMS       float64
	seed        int64
	pattern     string
	burst       int
	batch       int
	probes      int
	samples     int
	steps       int
	useDuT      bool
	cores       int
	flows       int
	churnFlows  int
	churnLife   int
	telemetry   string
	telemetryMS float64
	telemetryDg bool
	faults      string
}

// flagDefs is the single source of truth for the CLI flags: each entry
// registers its flag on the FlagSet and contributes its synopsis
// fragment to usage(). TestUsageCoversEveryFlag pins that the two views
// never drift apart.
var flagDefs = []struct {
	synopsis string
	register func(fs *flag.FlagSet, o *options, sp scenario.Spec)
}{
	{"-rate M", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.Float64Var(&o.rateMpps, "rate", sp.RateMpps, "rate [Mpps] (0 = line rate where applicable)")
	}},
	{"-size B", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.IntVar(&o.size, "size", sp.PktSize, "frame size without FCS")
	}},
	{"-runtime MS", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.Float64Var(&o.runMS, "runtime", sp.Runtime.Seconds()*1e3, "simulated run time [ms]")
	}},
	{"-seed N", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.Int64Var(&o.seed, "seed", sp.Seed, "simulation seed")
	}},
	{"-pattern P", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.StringVar(&o.pattern, "pattern", string(sp.Pattern), "pattern: linerate, cbr, softcbr, poisson or bursts")
	}},
	{"-burst N", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.IntVar(&o.burst, "burst", sp.Burst, "burst size for the bursts pattern")
	}},
	{"-batch N", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.IntVar(&o.batch, "batch", sp.Batch, "TX burst size through the batched datapath (1 = per-packet)")
	}},
	{"-probes N", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.IntVar(&o.probes, "probes", sp.Probes, "timestamped latency probes (0 = none)")
	}},
	{"-samples N", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.IntVar(&o.samples, "samples", sp.Samples, "samples for distribution measurements")
	}},
	{"-steps N", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.IntVar(&o.steps, "steps", sp.Steps, "sweep steps for sweeping scenarios")
	}},
	{"-dut", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.BoolVar(&o.useDuT, "dut", sp.UseDuT, "route traffic through the simulated DuT forwarder")
	}},
	{"-cores N", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.IntVar(&o.cores, "cores", sp.Cores, "modeled cores (> 1 runs sharded engines and merges the reports)")
	}},
	{"-flows N", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.IntVar(&o.flows, "flows", len(sp.Flows), "declared flow count (0 keeps the scenario's default flow set)")
	}},
	{"-churn-flows W", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.IntVar(&o.churnFlows, "churn-flows", sp.ChurnFlows, "churn scenario: live-flow working set size")
	}},
	{"-churn-life R", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.IntVar(&o.churnLife, "churn-life", sp.ChurnLife, "churn scenario: flow lifetime in packets")
	}},
	{"-telemetry PATH", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.StringVar(&o.telemetry, "telemetry", "", "record windowed telemetry to PATH (.jsonl switches to JSONL, else CSV)")
	}},
	{"-telemetry-interval MS", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		def := 1.0
		if sp.TelemetryInterval > 0 {
			def = sp.TelemetryInterval.Seconds() * 1e3
		}
		fs.Float64Var(&o.telemetryMS, "telemetry-interval", def, "telemetry window length [ms of simulated time]")
	}},
	{"-telemetry-diag", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.BoolVar(&o.telemetryDg, "telemetry-diag", sp.TelemetryDiag, "include diagnostic columns (engine/pool internals; vary with -cores/-batch)")
	}},
	{"-faults PATH", func(fs *flag.FlagSet, o *options, sp scenario.Spec) {
		fs.StringVar(&o.faults, "faults", "", "load a fault plan (a faults: block, YAML or JSON) onto the scenario")
	}},
}

// newFlagSet builds the scenario FlagSet from flagDefs, seeded with the
// starting spec so flag defaults reflect what will run.
func newFlagSet(name string, sp scenario.Spec) (*flag.FlagSet, *options) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	o := &options{}
	for _, d := range flagDefs {
		d.register(fs, o, sp)
	}
	return fs, o
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	switch name {
	case "list", "-list", "--list":
		runList(os.Stdout)
		return
	case "run":
		if len(os.Args) < 3 || strings.HasPrefix(os.Args[2], "-") {
			fmt.Fprintln(os.Stderr, "usage: moongen run <spec.yaml|spec.json> [flags]")
			os.Exit(2)
		}
		doc, err := spec.Load(os.Args[2])
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		scName, compiled, err := doc.Compile()
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		os.Exit(runScenario(scName, compiled, os.Args[3:]))
	}
	sc, ok := scenario.Get(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n\n", name)
		usage()
		os.Exit(2)
	}
	os.Exit(runScenario(name, sc.DefaultSpec(), os.Args[2:]))
}

// runScenario applies the CLI flags on top of the starting spec, wires
// the optional telemetry file, executes and prints the report. It is
// the shared tail of both `moongen <scenario>` and `moongen run`; the
// returned value is the process exit code.
func runScenario(name string, sp scenario.Spec, args []string) int {
	fs, o := newFlagSet(name, sp)
	_ = fs.Parse(args)

	sp.RateMpps = o.rateMpps
	sp.PktSize = o.size
	if o.runMS > 0 {
		sp.Runtime = sim.FromSeconds(o.runMS / 1e3)
	}
	sp.Seed = o.seed
	sp.Pattern = scenario.Pattern(o.pattern)
	sp.Burst = o.burst
	sp.Batch = o.batch
	sp.Probes = o.probes
	sp.Samples = o.samples
	sp.Steps = o.steps
	sp.UseDuT = o.useDuT
	sp.Cores = o.cores
	sp.ChurnFlows = o.churnFlows
	sp.ChurnLife = o.churnLife
	if o.flows > 0 && o.flows != len(sp.Flows) {
		// Resizing is only meaningful for scenarios whose flow set is
		// the generic FlowSet; curated flow sets (qos's shaped EF/BE
		// pair, spec-file flows with marks and rates) carry per-flow
		// state a generic replacement would silently zero out, and
		// scenarios declaring no flows never consume a flow count.
		if !isGenericFlowSet(sp.Flows) {
			fmt.Fprintf(os.Stderr, "scenario %s does not take a flow count; -flows only applies to flow-tracked scenarios\n", name)
			return 2
		}
		sp.Flows = scenario.FlowSet(o.flows)
	}

	if o.faults != "" {
		// A -faults file replaces the scenario's plan (if any) wholesale;
		// Execute re-validates the merged spec, so a plan whose targets
		// the topology lacks still fails closed before anything runs.
		plan, err := spec.LoadFaults(o.faults)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 2
		}
		sp.Faults = plan
	}

	var telFile *os.File
	if o.telemetry != "" {
		if o.telemetryMS <= 0 {
			fmt.Fprintln(os.Stderr, "-telemetry-interval must be > 0")
			return 2
		}
		sp.TelemetryInterval = sim.FromSeconds(o.telemetryMS / 1e3)
		sp.TelemetryJSONL = strings.HasSuffix(o.telemetry, ".jsonl")
		sp.TelemetryDiag = o.telemetryDg
		f, err := os.Create(o.telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		telFile = f
		if sp.Cores <= 1 {
			// Single engine: rows stream to the file as they are
			// recorded. Sharded runs write the merged series below —
			// per-shard streams would carry partial counters.
			sp.TelemetryStream = f
		}
	}

	rep, err := scenario.Execute(name, sp, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	if telFile != nil {
		if sp.TelemetryStream == nil {
			if rep.Telemetry == nil {
				fmt.Fprintf(os.Stderr, "telemetry: scenario %s produced no series (it bypasses the standard testbed)\n", name)
			} else if sp.TelemetryJSONL {
				err = rep.Telemetry.WriteJSONL(telFile, sp.TelemetryDiag)
			} else {
				err = rep.Telemetry.WriteCSV(telFile, sp.TelemetryDiag)
			}
		}
		if cerr := telFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "telemetry:", err)
			return 1
		}
	}
	rep.Print(os.Stdout)
	return 0
}

// isGenericFlowSet reports whether flows is exactly the generic
// scenario.FlowSet shape — the only kind -flows may resize. Scenarios
// declaring no flows (they run the implicit DefaultFlow) or a curated
// set are rejected: resizing would silently change their traffic.
func isGenericFlowSet(flows []scenario.Flow) bool {
	if len(flows) == 0 {
		return false
	}
	want := scenario.FlowSet(len(flows))
	for i := range flows {
		if flows[i] != want[i] {
			return false
		}
	}
	return true
}

// runList prints the sorted scenario listing with one-line
// descriptions — the body of `moongen list`.
func runList(w io.Writer) {
	fmt.Fprintln(w, "scenarios:")
	scenario.WriteList(w)
}

// synopsis renders the one-line flag summary from flagDefs.
func synopsis() string {
	var b strings.Builder
	b.WriteString("usage: moongen <scenario>")
	for _, d := range flagDefs {
		b.WriteString(" [")
		b.WriteString(d.synopsis)
		b.WriteString("]")
	}
	return b.String()
}

func usage() {
	fmt.Fprintln(os.Stderr, synopsis())
	fmt.Fprintln(os.Stderr, "       moongen run <spec.yaml|spec.json> [flags]")
	fmt.Fprintln(os.Stderr, "       moongen list")
	fmt.Fprintln(os.Stderr)
	runList(os.Stderr)
}
