// Command moongen runs named traffic scenarios from the scenario
// registry on the simulated testbed — the CLI face of the library,
// mirroring `MoonGen <script.lua> <args>`. Scenarios register
// themselves (internal/scenario for the load scenarios,
// internal/experiments for the measurement-backed ones); this driver
// only maps flags onto the declarative Spec and prints the report.
//
// Usage:
//
//	moongen list
//	moongen <scenario> [flags]
//
// Flags override the scenario's default spec; the flagDefs table below
// is the single source for both the FlagSet and the usage synopsis.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/scenario"
	"repro/internal/sim"

	// Registers the experiment-backed scenarios (interarrival-*,
	// timestamps).
	_ "repro/internal/experiments"
)

// options collects the parsed flag values before they are applied onto
// the scenario's default spec.
type options struct {
	rateMpps    float64
	size        int
	runMS       float64
	seed        int64
	pattern     string
	burst       int
	batch       int
	probes      int
	samples     int
	steps       int
	useDuT      bool
	cores       int
	flows       int
	churnFlows  int
	churnLife   int
	telemetry   string
	telemetryMS float64
	telemetryDg bool
}

// flagDefs is the single source of truth for the CLI flags: each entry
// registers its flag on the FlagSet and contributes its synopsis
// fragment to usage(). TestUsageCoversEveryFlag pins that the two views
// never drift apart.
var flagDefs = []struct {
	synopsis string
	register func(fs *flag.FlagSet, o *options, spec scenario.Spec)
}{
	{"-rate M", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.Float64Var(&o.rateMpps, "rate", spec.RateMpps, "rate [Mpps] (0 = line rate where applicable)")
	}},
	{"-size B", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.IntVar(&o.size, "size", spec.PktSize, "frame size without FCS")
	}},
	{"-runtime MS", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.Float64Var(&o.runMS, "runtime", spec.Runtime.Seconds()*1e3, "simulated run time [ms]")
	}},
	{"-seed N", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.Int64Var(&o.seed, "seed", spec.Seed, "simulation seed")
	}},
	{"-pattern P", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.StringVar(&o.pattern, "pattern", string(spec.Pattern), "pattern: linerate, cbr, poisson or bursts")
	}},
	{"-burst N", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.IntVar(&o.burst, "burst", spec.Burst, "burst size for the bursts pattern")
	}},
	{"-batch N", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.IntVar(&o.batch, "batch", spec.Batch, "TX burst size through the batched datapath (1 = per-packet)")
	}},
	{"-probes N", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.IntVar(&o.probes, "probes", spec.Probes, "timestamped latency probes (0 = none)")
	}},
	{"-samples N", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.IntVar(&o.samples, "samples", spec.Samples, "samples for distribution measurements")
	}},
	{"-steps N", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.IntVar(&o.steps, "steps", spec.Steps, "sweep steps for sweeping scenarios")
	}},
	{"-dut", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.BoolVar(&o.useDuT, "dut", spec.UseDuT, "route traffic through the simulated DuT forwarder")
	}},
	{"-cores N", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.IntVar(&o.cores, "cores", spec.Cores, "modeled cores (> 1 runs sharded engines and merges the reports)")
	}},
	{"-flows N", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.IntVar(&o.flows, "flows", len(spec.Flows), "declared flow count (0 keeps the scenario's default flow set)")
	}},
	{"-churn-flows W", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.IntVar(&o.churnFlows, "churn-flows", spec.ChurnFlows, "churn scenario: live-flow working set size")
	}},
	{"-churn-life R", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.IntVar(&o.churnLife, "churn-life", spec.ChurnLife, "churn scenario: flow lifetime in packets")
	}},
	{"-telemetry PATH", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.StringVar(&o.telemetry, "telemetry", "", "record windowed telemetry to PATH (.jsonl switches to JSONL, else CSV)")
	}},
	{"-telemetry-interval MS", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.Float64Var(&o.telemetryMS, "telemetry-interval", 1, "telemetry window length [ms of simulated time]")
	}},
	{"-telemetry-diag", func(fs *flag.FlagSet, o *options, spec scenario.Spec) {
		fs.BoolVar(&o.telemetryDg, "telemetry-diag", false, "include diagnostic columns (engine/pool internals; vary with -cores/-batch)")
	}},
}

// newFlagSet builds the scenario FlagSet from flagDefs, seeded with the
// scenario's default spec.
func newFlagSet(name string, spec scenario.Spec) (*flag.FlagSet, *options) {
	fs := flag.NewFlagSet(name, flag.ExitOnError)
	o := &options{}
	for _, d := range flagDefs {
		d.register(fs, o, spec)
	}
	return fs, o
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	name := os.Args[1]
	if name == "list" || name == "-list" || name == "--list" {
		runList(os.Stdout)
		return
	}
	sc, ok := scenario.Get(name)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n\n", name)
		usage()
		os.Exit(2)
	}

	spec := sc.DefaultSpec()
	fs, o := newFlagSet(name, spec)
	_ = fs.Parse(os.Args[2:])

	spec.RateMpps = o.rateMpps
	spec.PktSize = o.size
	if o.runMS > 0 {
		spec.Runtime = sim.FromSeconds(o.runMS / 1e3)
	}
	spec.Seed = o.seed
	spec.Pattern = scenario.Pattern(o.pattern)
	spec.Burst = o.burst
	spec.Batch = o.batch
	spec.Probes = o.probes
	spec.Samples = o.samples
	spec.Steps = o.steps
	spec.UseDuT = o.useDuT
	spec.Cores = o.cores
	spec.ChurnFlows = o.churnFlows
	spec.ChurnLife = o.churnLife
	if o.flows > 0 && o.flows != len(spec.Flows) {
		// Resizing is only meaningful for scenarios whose default flow
		// set is the generic FlowSet; curated flow sets (qos's shaped
		// EF/BE pair) carry per-flow rates and marks a generic
		// replacement would silently zero out, and scenarios declaring
		// no flows never consume a flow count.
		if !isGenericFlowSet(spec.Flows) {
			fmt.Fprintf(os.Stderr, "scenario %s does not take a flow count; -flows only applies to flow-tracked scenarios\n", name)
			os.Exit(2)
		}
		spec.Flows = scenario.FlowSet(o.flows)
	}

	var telFile *os.File
	if o.telemetry != "" {
		if o.telemetryMS <= 0 {
			fmt.Fprintln(os.Stderr, "-telemetry-interval must be > 0")
			os.Exit(2)
		}
		spec.TelemetryInterval = sim.FromSeconds(o.telemetryMS / 1e3)
		spec.TelemetryJSONL = strings.HasSuffix(o.telemetry, ".jsonl")
		spec.TelemetryDiag = o.telemetryDg
		f, err := os.Create(o.telemetry)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		telFile = f
		if spec.Cores <= 1 {
			// Single engine: rows stream to the file as they are
			// recorded. Sharded runs write the merged series below —
			// per-shard streams would carry partial counters.
			spec.TelemetryStream = f
		}
	}

	rep, err := scenario.Execute(name, spec, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if telFile != nil {
		if spec.TelemetryStream == nil {
			if rep.Telemetry == nil {
				fmt.Fprintf(os.Stderr, "telemetry: scenario %s produced no series (it bypasses the standard testbed)\n", name)
			} else if spec.TelemetryJSONL {
				err = rep.Telemetry.WriteJSONL(telFile, spec.TelemetryDiag)
			} else {
				err = rep.Telemetry.WriteCSV(telFile, spec.TelemetryDiag)
			}
		}
		if cerr := telFile.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "telemetry:", err)
			os.Exit(1)
		}
	}
	rep.Print(os.Stdout)
}

// isGenericFlowSet reports whether flows is exactly the generic
// scenario.FlowSet shape — the only kind -flows may resize. Scenarios
// declaring no flows (they run the implicit DefaultFlow) or a curated
// set are rejected: resizing would silently change their traffic.
func isGenericFlowSet(flows []scenario.Flow) bool {
	if len(flows) == 0 {
		return false
	}
	want := scenario.FlowSet(len(flows))
	for i := range flows {
		if flows[i] != want[i] {
			return false
		}
	}
	return true
}

// runList prints the sorted scenario listing with one-line
// descriptions — the body of `moongen list`.
func runList(w io.Writer) {
	fmt.Fprintln(w, "scenarios:")
	scenario.WriteList(w)
}

// synopsis renders the one-line flag summary from flagDefs.
func synopsis() string {
	var b strings.Builder
	b.WriteString("usage: moongen <scenario>")
	for _, d := range flagDefs {
		b.WriteString(" [")
		b.WriteString(d.synopsis)
		b.WriteString("]")
	}
	return b.String()
}

func usage() {
	fmt.Fprintln(os.Stderr, synopsis())
	fmt.Fprintln(os.Stderr, "       moongen list")
	fmt.Fprintln(os.Stderr)
	runList(os.Stderr)
}
