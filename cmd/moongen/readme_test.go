// README doc-sync: the CLI-surface blocks in README.md are generated
// from the binary itself — the synopsis from the flagDefs table and
// the scenario list from the live registry. This test pins them
// byte-for-byte so the README cannot drift from the code; regenerate
// deliberately with
//
//	go test ./cmd/moongen -run TestReadmeMatchesCLI -update-readme
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"testing"
)

var updateReadme = flag.Bool("update-readme", false, "rewrite README.md generated blocks from the CLI")

const readmePath = "../../README.md"

// generatedBlocks maps each marker name to the content its README
// block must hold, rendered fresh from the same code paths the binary
// runs.
func generatedBlocks() map[string]string {
	var list strings.Builder
	runList(&list)

	synopsisBlock := synopsis() + "\n" +
		"       moongen run <spec.yaml|spec.json> [flags]\n" +
		"       moongen list\n"

	return map[string]string{
		"moongen-synopsis": synopsisBlock,
		"moongen-list":     list.String(),
	}
}

// renderBlock wraps content in the marker pair and a plain code fence
// — the exact bytes the README must contain.
func renderBlock(name, content string) string {
	return fmt.Sprintf("<!-- generated:%s begin -->\n```\n%s```\n<!-- generated:%s end -->", name, content, name)
}

// findBlock returns the region of src spanning name's begin/end
// markers inclusive, or an error if the markers are missing.
func findBlock(src, name string) (start, end int, err error) {
	begin := fmt.Sprintf("<!-- generated:%s begin -->", name)
	endMark := fmt.Sprintf("<!-- generated:%s end -->", name)
	i := strings.Index(src, begin)
	if i < 0 {
		return 0, 0, fmt.Errorf("README.md is missing marker %q", begin)
	}
	j := strings.Index(src[i:], endMark)
	if j < 0 {
		return 0, 0, fmt.Errorf("README.md is missing marker %q", endMark)
	}
	return i, i + j + len(endMark), nil
}

func TestReadmeMatchesCLI(t *testing.T) {
	raw, err := os.ReadFile(readmePath)
	if err != nil {
		t.Fatal(err)
	}
	src := string(raw)

	changed := false
	for name, content := range generatedBlocks() {
		want := renderBlock(name, content)
		start, end, err := findBlock(src, name)
		if err != nil {
			t.Fatal(err)
		}
		got := src[start:end]
		if got == want {
			continue
		}
		if *updateReadme {
			src = src[:start] + want + src[end:]
			changed = true
			continue
		}
		t.Errorf("README block %q is out of sync with the CLI (regenerate with -update-readme)\n--- README:\n%s\n--- CLI:\n%s", name, got, want)
	}

	if changed {
		if err := os.WriteFile(readmePath, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
