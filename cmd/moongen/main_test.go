package main

import (
	"sort"
	"strings"
	"testing"
)

// TestListDeterministicSortedDescribed pins the `moongen list` output:
// byte-identical across calls, scenarios in sorted order, and a
// non-empty one-line description on every row.
func TestListDeterministicSortedDescribed(t *testing.T) {
	var first, second strings.Builder
	runList(&first)
	runList(&second)
	if first.String() != second.String() {
		t.Fatalf("list output not deterministic:\n%q\nvs\n%q", first.String(), second.String())
	}
	lines := strings.Split(strings.TrimRight(first.String(), "\n"), "\n")
	if lines[0] != "scenarios:" {
		t.Fatalf("missing header: %q", lines[0])
	}
	rows := lines[1:]
	if len(rows) < 8 {
		t.Fatalf("only %d scenarios listed", len(rows))
	}
	var names []string
	for i, row := range rows {
		fields := strings.Fields(row)
		if len(fields) < 2 {
			t.Fatalf("row %d has no description: %q", i, row)
		}
		names = append(names, fields[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("scenarios not sorted: %v", names)
	}
	// The pinned scenario set: every workload the CLI must expose. New
	// scenarios are added here deliberately, never by accident.
	want := []string{
		"bursts", "cbr", "flood", "imix",
		"interarrival-moongen", "interarrival-pktgen", "interarrival-zsend",
		"latency", "loss-overload", "poisson", "qos", "reflect", "reorder",
		"softcbr", "timestamps",
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("pinned scenario %q missing from list output (have %v)", n, names)
		}
	}
}
