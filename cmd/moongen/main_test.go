package main

import (
	"flag"
	"sort"
	"strings"
	"testing"

	"repro/internal/scenario"
)

// TestUsageCoversEveryFlag pins the flagDefs table as the single source
// of the CLI surface: the flags the FlagSet registers and the flags the
// usage synopsis advertises are the same set, one-to-one.
func TestUsageCoversEveryFlag(t *testing.T) {
	fs, _ := newFlagSet("test", scenario.Spec{})
	registered := map[string]bool{}
	fs.VisitAll(func(f *flag.Flag) { registered[f.Name] = true })

	advertised := map[string]bool{}
	for _, d := range flagDefs {
		name := strings.TrimPrefix(strings.Fields(d.synopsis)[0], "-")
		if advertised[name] {
			t.Errorf("flag -%s advertised twice in the synopsis", name)
		}
		advertised[name] = true
	}
	for name := range registered {
		if !advertised[name] {
			t.Errorf("flag -%s registered but missing from the usage synopsis", name)
		}
	}
	for name := range advertised {
		if !registered[name] {
			t.Errorf("flag -%s advertised in usage but never registered", name)
		}
	}
	if len(registered) != len(flagDefs) {
		t.Errorf("%d flags registered from %d flagDefs entries — an entry registers zero or multiple flags", len(registered), len(flagDefs))
	}
	if !strings.HasPrefix(synopsis(), "usage: moongen <scenario> [") {
		t.Errorf("synopsis lost its prefix: %q", synopsis())
	}
}

// TestListDeterministicSortedDescribed pins the `moongen list` output:
// byte-identical across calls, scenarios in sorted order, and a
// non-empty one-line description on every row.
func TestListDeterministicSortedDescribed(t *testing.T) {
	var first, second strings.Builder
	runList(&first)
	runList(&second)
	if first.String() != second.String() {
		t.Fatalf("list output not deterministic:\n%q\nvs\n%q", first.String(), second.String())
	}
	lines := strings.Split(strings.TrimRight(first.String(), "\n"), "\n")
	if lines[0] != "scenarios:" {
		t.Fatalf("missing header: %q", lines[0])
	}
	rows := lines[1:]
	if len(rows) < 8 {
		t.Fatalf("only %d scenarios listed", len(rows))
	}
	var names []string
	for i, row := range rows {
		fields := strings.Fields(row)
		if len(fields) < 2 {
			t.Fatalf("row %d has no description: %q", i, row)
		}
		names = append(names, fields[0])
	}
	if !sort.StringsAreSorted(names) {
		t.Fatalf("scenarios not sorted: %v", names)
	}
	// The pinned scenario set: every workload the CLI must expose. New
	// scenarios are added here deliberately, never by accident.
	want := []string{
		"bursts", "cbr", "churn", "flood", "imix",
		"interarrival-moongen", "interarrival-pktgen", "interarrival-zsend",
		"latency", "linkflap", "loss-overload", "overload-recover",
		"poisson", "qos", "reflect", "reorder",
		"softcbr", "timestamps",
	}
	have := map[string]bool{}
	for _, n := range names {
		have[n] = true
	}
	for _, n := range want {
		if !have[n] {
			t.Errorf("pinned scenario %q missing from list output (have %v)", n, names)
		}
	}
}
