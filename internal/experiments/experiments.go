// Package experiments contains one runner per table and figure of the
// paper's evaluation. Each runner builds the simulated testbed it
// needs, produces a typed result, and can print the same rows/series
// the paper reports. cmd/benchtab and the top-level benchmarks are thin
// wrappers around these runners.
//
// Scale parameters: every runner takes a Scale that trades run time for
// statistical depth. ScaleTest keeps the full test suite fast;
// ScaleFull approaches the paper's sample counts.
package experiments

import (
	"fmt"
	"io"

	"repro/internal/sim"
)

// Scale controls simulated duration and sample counts.
type Scale struct {
	// Window is the measurement window per data point.
	Window sim.Duration
	// Probes is the number of timestamped probes per data point.
	Probes int
	// Samples is the number of packets for distribution measurements.
	Samples int
	// Reps is the number of repetitions for error bars.
	Reps int
}

// ScaleTest is the fast CI scale.
var ScaleTest = Scale{
	Window:  2 * sim.Millisecond,
	Probes:  150,
	Samples: 30000,
	Reps:    2,
}

// ScaleFull approaches the paper's sample sizes (≥500k timestamps,
// ≥1M inter-arrivals, 30 s runs scaled down to simulation budgets).
var ScaleFull = Scale{
	Window:  20 * sim.Millisecond,
	Probes:  2000,
	Samples: 500000,
	Reps:    5,
}

// Row is one line of a printed table.
type Row struct {
	Label  string
	Values []float64
}

// Table is a generic experiment result: a header plus rows.
type Table struct {
	Title   string
	Columns []string
	Rows    []Row
	Notes   []string
}

// Print renders the table.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	fmt.Fprintf(w, "%-34s", "")
	for _, c := range t.Columns {
		fmt.Fprintf(w, "%16s", c)
	}
	fmt.Fprintln(w)
	for _, r := range t.Rows {
		fmt.Fprintf(w, "%-34s", r.Label)
		for _, v := range r.Values {
			fmt.Fprintf(w, "%16.4g", v)
		}
		fmt.Fprintln(w)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}
