package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/core"
	"repro/internal/nic"
	"repro/internal/ptpclk"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Table3Result reproduces Table 3: measured latency per cable length
// for the 82599 fiber path and the X540 copper path, plus the fitted
// modulation constant k and propagation speed vp.
type Table3Result struct {
	Table
	// FitK and FitVPc are the fitted constants per NIC.
	FiberK, FiberVPc   float64
	CopperK, CopperVPc float64
	// Fiber85Values holds the distinct observed values for the 8.5 m
	// fiber cable — the paper sees exactly two (345.6/358.4 ns, the
	// 12.8 ns timer granularity).
	Fiber85Values []float64
}

// measureCable runs probes over one cable and returns all latencies.
func measureCable(seed int64, profile nic.Profile, phy wire.PHYProfile, lengthM float64, probes int) []sim.Duration {
	app := core.NewApp(seed)
	tx := app.ConfigDevice(core.DeviceConfig{Profile: profile, ID: 0})
	rx := app.ConfigDevice(core.DeviceConfig{Profile: profile, ID: 1})
	app.ConnectDevices(tx, rx, phy, lengthM)
	ts := core.NewTimestamper(tx.GetTxQueue(0), rx.Port)
	var out []sim.Duration
	app.LaunchTask("probe", func(t *core.Task) {
		for i := 0; i < probes && t.Running(); i++ {
			if lat, ok := ts.Probe(t); ok {
				out = append(out, lat)
			}
			// Pace probes off the timer grid so quantization phases
			// are sampled uniformly (the bimodal measurement).
			t.Sleep(sim.Duration(1037+i%97) * sim.Nanosecond)
		}
	})
	app.RunFor(sim.Duration(probes+10) * 10 * sim.Microsecond)
	return out
}

// fitLatencyLine fits t = k + l/vp by least squares and returns k (ns)
// and vp as a fraction of c.
func fitLatencyLine(lengths []float64, latencies []float64) (k, vpc float64) {
	n := float64(len(lengths))
	var sx, sy, sxx, sxy float64
	for i := range lengths {
		sx += lengths[i]
		sy += latencies[i]
		sxx += lengths[i] * lengths[i]
		sxy += lengths[i] * latencies[i]
	}
	slope := (n*sxy - sx*sy) / (n*sxx - sx*sx) // ns per meter
	k = (sy - slope*sx) / n
	vpc = 1 / (slope * wire.SpeedOfLight)
	return k, vpc
}

// RunTable3 reproduces the timestamping accuracy measurements.
func RunTable3(scale Scale, seed int64) *Table3Result {
	res := &Table3Result{}
	res.Title = "Table 3: timestamping accuracy (measured latency in ns per cable)"
	res.Columns = []string{"mean/median ns"}

	probes := scale.Probes
	mean := func(ls []sim.Duration) float64 {
		var s float64
		for _, l := range ls {
			s += l.Nanoseconds()
		}
		return s / float64(len(ls))
	}
	median := func(ls []sim.Duration) float64 {
		s := append([]sim.Duration(nil), ls...)
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return s[len(s)/2].Nanoseconds()
	}

	// 82599 over fiber: cables 2, 8.5, 20 m (paper's data points).
	fiberLens := []float64{2, 8.5, 20}
	var fiberLats []float64
	for i, l := range fiberLens {
		ls := measureCable(seed+int64(i), nic.Chip82599, wire.PHY10GBaseSR, l, probes)
		m := mean(ls)
		fiberLats = append(fiberLats, m)
		res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("82599 fiber %.1f m", l), Values: []float64{m}})
		if l == 8.5 {
			res.Fiber85Values = distinctNS(ls)
		}
	}
	res.FiberK, res.FiberVPc = fitLatencyLine(fiberLens, fiberLats)

	// X540 over copper: cables 2, 10, 50 m.
	copperLens := []float64{2, 10, 50}
	var copperLats []float64
	for i, l := range copperLens {
		ls := measureCable(seed+10+int64(i), nic.ChipX540, wire.PHY10GBaseT, l, probes)
		m := median(ls)
		copperLats = append(copperLats, m)
		res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("X540 copper %.0f m", l), Values: []float64{m}})
	}
	res.CopperK, res.CopperVPc = fitLatencyLine(copperLens, copperLats)

	res.Rows = append(res.Rows,
		Row{Label: "fit 82599: k [ns]", Values: []float64{res.FiberK}},
		Row{Label: "fit 82599: vp [c]", Values: []float64{res.FiberVPc}},
		Row{Label: "fit X540: k [ns]", Values: []float64{res.CopperK}},
		Row{Label: "fit X540: vp [c]", Values: []float64{res.CopperVPc}},
	)
	res.Notes = append(res.Notes,
		"paper fits: 82599 k=310.7±3.9ns vp=0.72c; X540 k=2147.2±4.8ns vp=0.69c",
		fmt.Sprintf("8.5m fiber cable: %d distinct observed values (paper: bimodal 345.6/358.4)", len(res.Fiber85Values)))
	return res
}

func distinctNS(ls []sim.Duration) []float64 {
	seen := map[float64]bool{}
	for _, l := range ls {
		seen[l.Nanoseconds()] = true
	}
	out := make([]float64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// ClockSyncResult is §6.2: residual error distribution of the clock
// synchronization procedure.
type ClockSyncResult struct {
	Table
	MaxErrorNS float64
}

// RunClockSync reproduces the §6.2 accuracy claim: error ≤ ±1 cycle,
// worst case 19.2 ns across ports.
func RunClockSync(scale Scale, seed int64) *ClockSyncResult {
	eng := sim.NewEngine(seed)
	res := &ClockSyncResult{}
	res.Title = "§6.2 clock synchronization residual error"
	res.Columns = []string{"ns"}
	var worst float64
	trials := scale.Reps * 250
	for i := 0; i < trials; i++ {
		a := ptpclk.New(eng, ptpclk.Config{TickNS: 6.4, ReadOutlierProb: 0.05})
		b := ptpclk.New(eng, ptpclk.Config{TickNS: 6.4, ReadOutlierProb: 0.05,
			InitialOffset: sim.Duration(eng.Rand().Int63n(int64(sim.Second)))})
		ptpclk.Sync(a, b)
		err := math.Abs(float64(a.Timestamp()-b.Timestamp())) / 1000 // ns
		if err > worst {
			worst = err
		}
	}
	res.MaxErrorNS = worst
	res.Rows = []Row{{Label: fmt.Sprintf("worst-case sync error over %d trials", trials), Values: []float64{worst}}}
	res.Notes = append(res.Notes, "paper: ±1 cycle, max 19.2 ns for the 10GbE chips")
	return res
}

// DriftResult is §6.3: measured clock drift between two NICs.
type DriftResult struct {
	Table
	MeasuredPPM float64
	// ResidualRelative is the relative latency error when clocks are
	// resynchronized before each timestamped packet.
	ResidualRelative float64
}

// RunDrift reproduces the §6.3 drift measurement (drift.lua).
func RunDrift(scale Scale, seed int64) *DriftResult {
	eng := sim.NewEngine(seed)
	a := ptpclk.New(eng, ptpclk.Config{TickNS: 6.4})
	b := ptpclk.New(eng, ptpclk.Config{TickNS: 6.4, DriftPPM: 35})
	res := &DriftResult{}
	eng.Spawn("drift", func(p *sim.Proc) {
		res.MeasuredPPM = math.Abs(ptpclk.MeasureDrift(p, a, b, sim.Second))
	})
	eng.RunAll()
	// With per-packet resync, the drift accumulated during one packet
	// flight is drift × flight; relative to the flight it is just the
	// drift rate: 35 µs/s = 0.0035%.
	res.ResidualRelative = res.MeasuredPPM / 1e6
	res.Title = "§6.3 clock drift between NICs"
	res.Columns = []string{"value"}
	res.Rows = []Row{
		{Label: "measured drift [µs/s]", Values: []float64{res.MeasuredPPM}},
		{Label: "relative error with per-packet resync [%]", Values: []float64{res.ResidualRelative * 100}},
	}
	res.Notes = append(res.Notes, "paper: worst-case 35 µs/s; relative error 0.0035%")
	return res
}
