package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mempool"
	"repro/internal/multicore"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wire"
)

// MulticoreScalingResult is Figure 4 run on the multicore subsystem:
// real engine shards (one goroutine per modeled core), one 10 GbE port
// pair per core, per-shard mempools with per-core caches, and results
// combined through the stats merge layer.
type MulticoreScalingResult struct {
	Table
	// Mpps[i] is the merged rate with i+1 cores at 2 GHz (wire-capped:
	// the cost model sustains more than line rate, so every core pegs
	// its port — Figure 4's regime).
	Mpps []float64
	// MppsLow[i] is the same bed at 1.2 GHz, where the cost model is
	// the bottleneck and scaling is linear below the wire-rate ceiling.
	MppsLow []float64
	// Predicted[i]/PredictedLow[i] are the cost-model predictions
	// (i+1 cores times min(model rate, per-port line rate)).
	Predicted    []float64
	PredictedLow []float64
	// PerCoreMpps/PerCoreStd describe the distribution of per-core
	// window rates at 2 GHz and max cores, from the merged counters.
	PerCoreMpps float64
	PerCoreStd  float64
	// LineRateMpps is the per-port (= per-core) wire-rate ceiling.
	LineRateMpps float64
	// Simulated is the total modeled time covered (one measurement
	// window per series point; a point's shards run concurrently and
	// model the same window, so they count once). wall/Simulated is
	// the bed's cost per simulated second.
	Simulated sim.Duration
}

// multicoreShardLoad runs the workload on one shard: its own port
// pair, mempool and cache, paced by the cycle-cost model. It returns
// the packets the NIC transmitted inside the measurement window
// (startup transient excluded) and the shard's finalized counter.
func multicoreShardLoad(s *multicore.Shard, w cpu.Workload, freq cpu.Freq, window sim.Duration) (uint64, *stats.Counter) {
	app := s.App
	queues := scenario.BuildPortPairs(app, nic.ChipX540, 1, 1)
	q := queues[0][0]
	const pktSize = 60
	tmpl := proto.NewUDPTemplate(proto.UDPPacketFill{
		PktLength: pktSize,
		IPSrc:     loadSrcIP,
		IPDst:     loadDstIP,
		UDPSrc:    1234, UDPDst: 5678,
	})
	// 4096 buffers bound the shard's working set with >2x headroom:
	// SendAll back-pressures on the 1024-deep TX ring, so at most
	// ring + cache (512) + a few wire trains are ever in flight. The
	// profile pass found pool construction (slab zeroing) dominating
	// the 24-point run's startup cost; halving the count halves it
	// without the pool ever running dry — the series is bit-identical.
	pool := core.CreateSizedMemPool(4096, loadPoolBufSize(pktSize), func(m *mempool.Mbuf) {
		tmpl.Apply(m.Data[:pktSize])
	})
	cache := pool.NewCache(512)
	warmup := window / 4
	ctr := stats.NewCounter(stats.CounterConfig{
		Name: fmt.Sprintf("core-%d", s.ID), Format: stats.FormatNone,
		Window: (window - warmup) / 4, Start: sim.Time(0).Add(warmup),
	})
	perPkt := w.TimePerPacket(freq)
	app.LaunchTask(fmt.Sprintf("core-%d", s.ID), func(t *core.Task) {
		bufs := make([]*mempool.Mbuf, mempool.DefaultBatchSize)
		rng := t.Engine().Rand()
		base := loadBaseIP
		for t.Running() {
			n := cache.AllocBatch(bufs, pktSize)
			if n == 0 {
				t.Sleep(sim.Microsecond)
				continue
			}
			// The §5.2 script body: one randomized field (256 source
			// addresses), priced by the workload's cycle cost.
			for _, m := range bufs[:n] {
				pkt := proto.UDPPacket{B: m.Payload()}
				pkt.IP().SetSrc(base + proto.IPv4(rng.Uint32()&0xff))
			}
			t.Sleep(sim.Duration(n) * perPkt)
			t.SendAll(q, bufs[:n])
			if t.Now() >= sim.Time(0).Add(warmup) {
				ctr.Update(n, n*pktSize, t.Now())
			}
		}
	})
	port := q.Port()
	var warmPkts, stopPkts uint64
	app.Eng.Schedule(app.Now().Add(warmup), func() { warmPkts = port.GetStats().TxPackets })
	app.Eng.Schedule(app.Now().Add(window), func() { stopPkts = port.GetStats().TxPackets })
	app.RunFor(window)
	ctr.Finalize(app.Now())
	cache.Flush()
	return stopPkts - warmPkts, ctr
}

// runMulticorePoint measures one (cores, freq) point: a shard group
// runs the load concurrently, then the per-shard results merge in
// shard order — counts into a total, counters through Counter.Merge.
func runMulticorePoint(scale Scale, seed int64, cores int, w cpu.Workload, freq cpu.Freq) (mpps float64, merged *stats.Counter) {
	g := multicore.NewGroup(cores, seed)
	pkts := make([]uint64, cores)
	ctrs := make([]*stats.Counter, cores)
	_ = g.Each(func(s *multicore.Shard) error {
		pkts[s.ID], ctrs[s.ID] = multicoreShardLoad(s, w, freq, scale.Window)
		return nil
	})
	merged = stats.NewCounter(stats.CounterConfig{Name: "merged", Format: stats.FormatNone})
	var total uint64
	for i := 0; i < cores; i++ {
		total += pkts[i]
		merged.Merge(ctrs[i])
	}
	secs := (scale.Window - scale.Window/4).Seconds()
	return float64(total) / secs / 1e6, merged
}

// RunMulticoreScaling reproduces Figure 4's shape on the multicore
// subsystem: throughput versus core count with one 10 GbE port per
// core. At 2 GHz the simple UDP workload outruns the wire, so every
// core sits at the per-port wire-rate ceiling and the total climbs
// linearly to the paper's 178.5 Mpps at 12 cores; at 1.2 GHz the cost
// model is the bottleneck and the same bed scales linearly below the
// ceiling. Both series are compared against the cycle-cost prediction.
func RunMulticoreScaling(scale Scale, seed int64) *MulticoreScalingResult {
	const maxCores = 12
	w := cpu.SimpleUDPWorkload
	hi, lo := 2*cpu.GHz, 1.2*cpu.GHz
	res := &MulticoreScalingResult{}
	res.Title = "Figure 4 on the multicore subsystem: one engine shard and 10GbE port per core"
	res.Columns = []string{"Mpps @2GHz", "pred @2GHz", "Mpps @1.2GHz", "pred @1.2GHz"}
	res.LineRateMpps = wire.LineRatePPS(wire.Speed10G, 64) / 1e6

	perCore := func(f cpu.Freq) float64 {
		p := w.PPS(f) / 1e6
		if p > res.LineRateMpps {
			p = res.LineRateMpps
		}
		return p
	}
	for cores := 1; cores <= maxCores; cores++ {
		mhi, merged := runMulticorePoint(scale, seed+int64(cores), cores, w, hi)
		mlo, _ := runMulticorePoint(scale, seed+100+int64(cores), cores, w, lo)
		res.Simulated += 2 * scale.Window
		res.Mpps = append(res.Mpps, mhi)
		res.MppsLow = append(res.MppsLow, mlo)
		res.Predicted = append(res.Predicted, float64(cores)*perCore(hi))
		res.PredictedLow = append(res.PredictedLow, float64(cores)*perCore(lo))
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("%d cores", cores),
			Values: []float64{mhi, float64(cores) * perCore(hi), mlo, float64(cores) * perCore(lo)},
		})
		if cores == maxCores {
			res.PerCoreMpps, res.PerCoreStd = merged.MppsStats()
		}
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("per-port wire-rate ceiling: %.2f Mpps; paper: 178.5 Mpps at 120 Gbit/s with 12 cores", res.LineRateMpps),
		fmt.Sprintf("per-core window rates at 12 cores (merged counters): %.2f ± %.2f Mpps", res.PerCoreMpps, res.PerCoreStd),
		"shards are real goroutines: one deterministic engine, mempool cache and port pair per modeled core")
	return res
}
