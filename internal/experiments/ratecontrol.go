package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/flow"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/rate"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wire"
)

// x540At1G is the §7.3 transmit NIC: "The generators use an X540 NIC,
// which also supports 1 Gbit/s" — same shaper, GbE line speed.
var x540At1G = func() nic.Profile {
	p := nic.ChipX540
	p.Name = "X540@1G"
	p.Speed = wire.Speed1G
	p.RuntMaxPPS = 1.6e6
	return p
}()

// Generator identifies a rate-control implementation under comparison.
type Generator string

// The §7.3 contenders.
const (
	GenMoonGen Generator = "MoonGen"     // hardware rate control
	GenPktgen  Generator = "Pktgen-DPDK" // software single-packet push
	GenZsend   Generator = "zsend"       // software, bursty (PF_RING ZC)
)

func fillPlainUDP(size int) func(m *mempool.Mbuf, i uint64) {
	// The flow's headers are constant: build the template once and
	// restore it per packet with a single copy (§5.6 authoring rule).
	tmpl := proto.NewUDPTemplate(proto.UDPPacketFill{
		PktLength: size,
		IPSrc:     proto.MustIPv4("10.0.0.1"),
		IPDst:     proto.MustIPv4("10.1.0.1"),
		UDPSrc:    1000, UDPDst: 2000,
	})
	return func(m *mempool.Mbuf, i uint64) {
		tmpl.Apply(m.Payload())
	}
}

// launchGenerator starts the generator's transmit task on q.
func launchGenerator(app *core.App, g Generator, q *nic.TxQueue, pps float64, pktSize int) {
	b2b := wire.FrameTime(q.Port().Speed(), pktSize+proto.FCSLen)
	switch g {
	case GenMoonGen:
		tx := &core.HWRateTx{Queue: q, PPS: pps, PktSize: pktSize, Fill: fillPlainUDP(pktSize)}
		app.LaunchTask("moongen-hw", tx.Run)
	case GenPktgen:
		tx := &core.PushTx{Queue: q, Pattern: rate.NewSoftPushPPS(pps, b2b), PktSize: pktSize, Fill: fillPlainUDP(pktSize)}
		app.LaunchTask("pktgen-push", tx.Run)
	case GenZsend:
		tx := &core.PushTx{Queue: q, Pattern: rate.NewBurstyPPS(pps, b2b), PktSize: pktSize, Fill: fillPlainUDP(pktSize)}
		app.LaunchTask("zsend-push", tx.Run)
	}
}

// InterArrivalResult is one generator/rate cell of Figure 8 + Table 4.
type InterArrivalResult struct {
	Generator  Generator
	RateKpps   float64
	Hist       *stats.Histogram
	MicroBurst float64 // fraction of gaps at back-to-back time
	Within     map[int]float64
}

// RunInterArrival measures inter-arrival times the paper's way: an
// Intel 82580 receiver timestamps every received packet at line rate
// with 64 ns precision (§6, §7.3); the histogram uses 64 ns bins.
func RunInterArrival(scale Scale, seed int64, g Generator, pps float64) *InterArrivalResult {
	app := core.NewApp(seed)
	tx := app.ConfigDevice(core.DeviceConfig{Profile: x540At1G, ID: 0})
	rx := app.ConfigDevice(core.DeviceConfig{Profile: nic.Chip82580, ID: 1,
		RxRing: 8192, RxPool: 16384})
	// Ports of differing chips share the 1 GbE copper path.
	app.ConnectDevices(tx, rx, wire.PHY1GBaseT, 2)

	const pktSize = 60
	launchGenerator(app, g, tx.GetTxQueue(0), pps, pktSize)

	hist := stats.NewHistogram(64 * sim.Nanosecond)
	var last int64 = -1
	app.LaunchTask("interarrival", func(t *core.Task) {
		bufs := make([]*mempool.Mbuf, 256)
		for t.Running() || rx.GetRxQueue(0).Pending() > 0 {
			n := rx.GetRxQueue(0).Recv(bufs)
			if n == 0 {
				if !t.Running() {
					break
				}
				t.Sleep(20 * sim.Microsecond)
				continue
			}
			for _, m := range bufs[:n] {
				if m.RxMeta.HasTimestamp {
					if last >= 0 {
						hist.Add(sim.Duration(m.RxMeta.Timestamp - last))
					}
					last = m.RxMeta.Timestamp
				}
				m.Free()
			}
			t.Yield()
		}
	})

	window := sim.Duration(float64(scale.Samples) / pps * float64(sim.Second))
	app.RunFor(window)

	b2b := wire.FrameTime(wire.Speed1G, pktSize+proto.FCSLen)
	target := sim.FromSeconds(1 / pps)
	res := &InterArrivalResult{
		Generator: g,
		RateKpps:  pps / 1e3,
		Hist:      hist,
		// Quantization puts back-to-back gaps in the 640/704 ns bins.
		MicroBurst: hist.FractionBelow(b2b + 64*sim.Nanosecond),
		Within:     map[int]float64{},
	}
	for _, tol := range []int{64, 128, 256, 512} {
		res.Within[tol] = hist.FractionWithin(target, sim.Duration(tol)*sim.Nanosecond)
	}
	return res
}

// Table4Result aggregates the six cells of Table 4.
type Table4Result struct {
	Table
	Cells []*InterArrivalResult
}

// RunTable4 reproduces Table 4 (and the data behind Figure 8).
func RunTable4(scale Scale, seed int64) *Table4Result {
	res := &Table4Result{}
	res.Title = "Table 4: rate control measurements (micro-bursts, ±64/128/256/512ns)"
	res.Columns = []string{"µbursts %", "±64ns %", "±128ns %", "±256ns %", "±512ns %"}
	i := int64(0)
	for _, pps := range []float64{500e3, 1000e3} {
		for _, g := range []Generator{GenMoonGen, GenPktgen, GenZsend} {
			c := RunInterArrival(scale, seed+i, g, pps)
			i++
			res.Cells = append(res.Cells, c)
			res.Rows = append(res.Rows, Row{
				Label: fmt.Sprintf("%.0f kpps %s", pps/1e3, g),
				Values: []float64{
					c.MicroBurst * 100,
					c.Within[64] * 100, c.Within[128] * 100,
					c.Within[256] * 100, c.Within[512] * 100,
				},
			})
		}
	}
	res.Notes = append(res.Notes,
		"paper 500kpps: MoonGen 0.02/49.9/74.9/99.8/99.8; Pktgen 0.01/37.7/72.3/92/94.5; zsend 28.6/3.9/5.4/6.4/13.8",
		"paper 1000kpps: MoonGen 1.2/50.5/52/97/100; Pktgen 14.2/36.7/58/70.6/95.9; zsend 52/4.6/7.9/24.2/88.1")
	return res
}

// dutBed is the forwarding testbed: generator -> DuT -> sink. It is
// the shared scenario.DuTBed (same bed every DuT scenario runs on)
// plus the experiment-side launch helpers.
type dutBed struct {
	*scenario.DuTBed
}

func newDutBed(seed int64) *dutBed {
	return &dutBed{DuTBed: scenario.NewDuTBed(core.NewApp(seed), 2)}
}

// RateControlMethod selects how CBR load is produced for Figure 10.
type RateControlMethod string

// Figure 10's two contenders.
const (
	MethodHardware RateControlMethod = "hw-rate-control"
	MethodCRCGap   RateControlMethod = "crc-gap-software"
)

// launchLoad starts the load task for the chosen method/pattern.
func (b *dutBed) launchLoad(method RateControlMethod, pattern rate.Pattern, pps float64, pktSize int) {
	q := b.Gen.GetTxQueue(0)
	switch method {
	case MethodHardware:
		tx := &core.HWRateTx{Queue: q, PPS: pps, PktSize: pktSize, Fill: fillPlainUDP(pktSize)}
		b.App.LaunchTask("load-hw", tx.Run)
	case MethodCRCGap:
		tx := &core.GapTx{Queue: q, Pattern: pattern, PktSize: pktSize, Fill: fillPlainUDP(pktSize)}
		b.App.LaunchTask("load-gap", tx.Run)
	}
}

// probeKey identifies the hardware-timestamped probe stream in the
// receiver-side flow pipeline: the UDP PTP 5-tuple the Timestamper's
// probes would carry.
var probeKey = flow.Key{
	Proto: proto.IPProtoUDP,
	Src:   proto.MustIPv4("10.255.0.1"), Dst: proto.MustIPv4("10.255.0.2"),
	SrcPort: proto.PTPUDPPort, DstPort: proto.PTPUDPPort,
}

// measureLatency runs probes through the DuT and records each
// hardware-timestamped latency into a per-flow flow.Stats record
// keyed as the probe stream — the latency figures draw their
// percentiles from the flow layer's per-flow statistics (the same
// record type the loss/reorder scenarios report through) instead of a
// private ad-hoc histogram. The probe latencies arrive from the
// timestamp latches, not from payload stamps, so they are fed in via
// AddLatency rather than through a tracker's Record path. Probes are
// spread across the window after warmup (≤ 0 selects the default 5%
// ramp-up allowance).
func (b *dutBed) measureLatency(probes int, window, warmup sim.Duration) *flow.Stats {
	fs := &flow.Stats{Key: probeKey}
	if warmup <= 0 {
		warmup = window / 20
	}
	if warmup > window/2 {
		warmup = window / 2
	}
	pace := (window - warmup - window/10) / sim.Duration(probes)
	if pace < 0 {
		pace = 0
	}
	b.App.LaunchTask("timestamping", func(t *core.Task) {
		// Let the load ramp up before probing.
		t.Sleep(warmup)
		b.TS.MeasureLatencyInto(t, probes, pace, fs.AddLatency)
	})
	b.App.RunFor(window)
	return fs
}

// Fig7Result is interrupt rate versus offered load per generator.
type Fig7Result struct {
	Table
	Loads   []float64 // Mpps
	MoonGen []float64 // Hz
	Zsend   []float64 // Hz
}

// RunFig7 reproduces Figure 7: the DuT's interrupt rate under MoonGen
// (hardware CBR) versus zsend (micro-bursts).
func RunFig7(scale Scale, seed int64) *Fig7Result {
	res := &Fig7Result{}
	res.Title = "Figure 7: DuT interrupt rate vs offered load"
	res.Columns = []string{"MoonGen [Hz]", "zsend [Hz]"}
	loads := []float64{0.1, 0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0}
	window := scale.Window * 10

	intRate := func(g Generator, mpps float64, seed int64) float64 {
		b := newDutBed(seed)
		launchGenerator(b.App, g, b.Gen.GetTxQueue(0), mpps*1e6, 60)
		var atStop uint64
		b.App.Eng.Schedule(sim.Time(window), func() { atStop = b.Fwd.Interrupts })
		b.App.RunFor(window)
		return float64(atStop) / window.Seconds()
	}

	for i, l := range loads {
		mg := intRate(GenMoonGen, l, seed+int64(2*i))
		zs := intRate(GenZsend, l, seed+int64(2*i+1))
		res.Loads = append(res.Loads, l)
		res.MoonGen = append(res.MoonGen, mg)
		res.Zsend = append(res.Zsend, zs)
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("%.2f Mpps", l),
			Values: []float64{mg, zs},
		})
	}
	res.Notes = append(res.Notes,
		"paper: MoonGen's rate climbs to ~1.5e5 Hz then collapses once the DuT stays in polling mode;",
		"zsend's micro-bursts keep the interrupt rate low across all loads")
	return res
}

// Fig10Result compares forwarding-latency quartiles under hardware CBR
// versus CRC-gap CBR.
type Fig10Result struct {
	Table
	Loads []float64
	// RelDev[q][i] is the relative deviation of quartile q (0=25th,
	// 1=50th, 2=75th) at load i, in percent.
	RelDev [3][]float64
}

// RunFig10 reproduces Figure 10.
func RunFig10(scale Scale, seed int64) *Fig10Result {
	res := &Fig10Result{}
	res.Title = "Figure 10: latency deviation, CRC-gap vs hardware CBR (percent)"
	res.Columns = []string{"q25 dev %", "q50 dev %", "q75 dev %"}
	loads := []float64{0.1, 0.5, 1.0, 1.5, 1.9}
	window := scale.Window * 10

	quartiles := func(method RateControlMethod, mpps float64, seed int64) [3]float64 {
		b := newDutBed(seed)
		b.launchLoad(method, rate.NewCBRPPS(mpps*1e6), mpps*1e6, 60)
		// Quartile differences of a few percent need more probes than
		// the latency curves do.
		h := b.measureLatency(4*scale.Probes, window, 0)
		q1, q2, q3 := h.Quartiles()
		return [3]float64{q1.Microseconds(), q2.Microseconds(), q3.Microseconds()}
	}

	for i, l := range loads {
		hw := quartiles(MethodHardware, l, seed+int64(10*i))
		sw := quartiles(MethodCRCGap, l, seed+int64(10*i+5))
		var devs [3]float64
		for q := 0; q < 3; q++ {
			devs[q] = (sw[q] - hw[q]) / hw[q] * 100
			res.RelDev[q] = append(res.RelDev[q], devs[q])
		}
		res.Loads = append(res.Loads, l)
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("%.2f Mpps", l),
			Values: devs[:],
		})
	}
	res.Notes = append(res.Notes,
		"paper: deviation within 1.2 sigma of 0% at almost all points (worst 1.5%±0.5%)")
	return res
}

// Fig11Result is forwarding latency under CBR versus Poisson traffic.
type Fig11Result struct {
	Table
	Loads []float64
	// CBR/Poisson hold [q25, median, q75] per load in µs.
	CBR     [][3]float64
	Poisson [][3]float64
}

// RunFig11 reproduces Figure 11.
func RunFig11(scale Scale, seed int64) *Fig11Result {
	res := &Fig11Result{}
	res.Title = "Figure 11: forwarding latency, CBR vs Poisson (µs)"
	res.Columns = []string{"CBR q25", "CBR q50", "CBR q75", "Poi q25", "Poi q50", "Poi q75"}
	loads := []float64{0.1, 0.5, 1.0, 1.5, 1.8, 1.95, 2.0, 3.0}
	window := scale.Window * 10

	run := func(method RateControlMethod, pattern rate.Pattern, mpps float64, seed int64) [3]float64 {
		b := newDutBed(seed)
		b.launchLoad(method, pattern, mpps*1e6, 60)
		// Past saturation the DuT buffer takes BacklogLimit/(offered -
		// capacity) to fill; probing before that samples the fill ramp,
		// not the steady buffer-full latency the figure reports. When
		// the transient fits the run, skip it and stretch the window so
		// a useful number of multi-millisecond probes completes (the
		// paper simply runs for 30 s). Barely past saturation the
		// buffer fills slower than any affordable run; that point
		// samples the ramp by design and is asserted only as elevated.
		pointWindow := window
		var warmup sim.Duration
		cfg := dut.DefaultConfig()
		capacity := float64(sim.Second) / float64(cfg.ServiceTime)
		if pps := mpps * 1e6; pps > capacity {
			if fill := sim.FromSeconds(float64(cfg.BacklogLimit) / (pps - capacity)); fill+fill/2 < window {
				warmup = fill + fill/2
				pointWindow = warmup + 3*window
			}
		}
		h := b.measureLatency(scale.Probes, pointWindow, warmup)
		q1, q2, q3 := h.Quartiles()
		return [3]float64{q1.Microseconds(), q2.Microseconds(), q3.Microseconds()}
	}

	for i, l := range loads {
		cbr := run(MethodHardware, rate.NewCBRPPS(l*1e6), l, seed+int64(10*i))
		poi := run(MethodCRCGap, rate.NewPoissonPPS(l*1e6), l, seed+int64(10*i+5))
		res.Loads = append(res.Loads, l)
		res.CBR = append(res.CBR, cbr)
		res.Poisson = append(res.Poisson, poi)
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("%.2f Mpps", l),
			Values: []float64{cbr[0], cbr[1], cbr[2], poi[0], poi[1], poi[2]},
		})
	}
	res.Notes = append(res.Notes,
		"paper: Poisson latency rises toward saturation (buffer stress); both collapse to ~2ms",
		"at overload (~1.9 Mpps); achieved throughput is pattern-independent")
	return res
}
