package experiments

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/cpu"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Template addresses of the paced-load packet fill, hoisted so pool
// prefill callbacks do not re-parse dotted quads per buffer.
var (
	loadSrcIP  = proto.MustIPv4("10.0.0.1")
	loadDstIP  = proto.MustIPv4("10.1.0.1")
	loadBaseIP = proto.MustIPv4("10.0.0.0")
)

// loadPoolBufSize returns the buffer data room for a paced-load pool:
// the packet plus slack, rounded so the pool slab stays small (the
// experiments' frames are 60-252 B; a 2 kB room per buffer would spend
// most of the setup cost zeroing bytes no packet touches).
func loadPoolBufSize(pktSize int) int {
	const grain = 256
	return (pktSize + grain - 1) / grain * grain
}

// pacedLoad simulates generator cores running a given workload: each
// core's task performs the real per-packet work (field randomization,
// offload flags) and paces itself by the cycle-cost model — exactly the
// paper's §5.1 methodology where the CPU frequency is the controlled
// variable. Line-rate limits emerge from the NIC/wire models, not from
// arithmetic.
type pacedLoad struct {
	cores    int
	freq     cpu.Freq
	workload cpu.Workload
	pktSize  int // frame size without FCS
	// queues[i] lists the TX queues core i drives round-robin (one
	// per port for the multi-port scaling experiments).
	queues [][]*nic.TxQueue
}

// run executes the load for window and returns total packets emitted by
// the NICs within the window.
func (pl *pacedLoad) run(app *core.App, window sim.Duration) (totalPkts uint64, totalBytes uint64) {
	perPkt := pl.workload.TimePerPacket(pl.freq)
	// One template serves every core's pool prefill: the headers are
	// flow constants, so prefilling 8192 buffers is 8192 single copies
	// instead of 8192 full header derivations.
	tmpl := proto.NewUDPTemplate(proto.UDPPacketFill{
		PktLength: pl.pktSize,
		IPSrc:     loadSrcIP,
		IPDst:     loadDstIP,
		UDPSrc:    1234, UDPDst: 5678,
	})
	for c := 0; c < pl.cores; c++ {
		queues := pl.queues[c]
		pool := core.CreateSizedMemPool(8192, loadPoolBufSize(pl.pktSize), func(m *mempool.Mbuf) {
			tmpl.Apply(m.Data[:pl.pktSize])
		})
		// One mempool cache per modeled core over the core's own pool:
		// the batched datapath's allocation front (§4.2).
		cache := pool.NewCache(0)
		workload := pl.workload
		size := pl.pktSize
		app.LaunchTask(fmt.Sprintf("core-%d", c), func(t *core.Task) {
			bufs := cache.BufArray(mempool.DefaultBatchSize)
			rng := t.Engine().Rand()
			qi := 0
			for t.Running() {
				n := t.AllocAll(bufs, size)
				if n == 0 {
					break
				}
				// Perform the per-packet modifications the workload
				// describes (the script body of §5.3).
				for _, m := range bufs.Slice(n) {
					pkt := proto.UDPPacket{B: m.Payload()}
					for f := 0; f < workload.RandFields; f++ {
						v := rng.Uint32()
						switch f {
						case 0:
							pkt.IP().SetSrc(proto.IPv4(v))
						case 1:
							pkt.IP().SetDst(proto.IPv4(v))
						case 2:
							pkt.UDP().SetSrcPort(uint16(v))
						case 3:
							pkt.UDP().SetDstPort(uint16(v))
						default:
							pl := pkt.Payload()
							if len(pl) >= 4*(f-3) {
								idx := 4 * (f - 4)
								pl[idx] = byte(v)
								pl[idx+1] = byte(v >> 8)
								pl[idx+2] = byte(v >> 16)
								pl[idx+3] = byte(v >> 24)
							}
						}
					}
					for f := 0; f < workload.CounterFields; f++ {
						pkt.UDP().SetSrcPort(uint16(m.Len) + uint16(f))
					}
					switch workload.Offload {
					case cpu.OffloadIP:
						m.TxMeta.OffloadIPChecksum = true
					case cpu.OffloadUDP:
						m.TxMeta.OffloadIPChecksum = true
						m.TxMeta.OffloadUDPChecksum = true
					case cpu.OffloadTCP:
						m.TxMeta.OffloadIPChecksum = true
						m.TxMeta.OffloadTCPChecksum = true
					}
				}
				// CPU time for the batch, per the cost model.
				t.Sleep(sim.Duration(n) * perPkt)
				t.SendAll(queues[qi], bufs.Bufs[:n])
				qi = (qi + 1) % len(queues)
			}
		})
	}
	// Snapshot NIC counters at a warmup mark and the window edge: the
	// startup transient (first batch still being generated) and the
	// post-window ring drain both fall outside the measurement.
	seen := map[*nic.Port]bool{}
	var ports []*nic.Port
	for _, qs := range pl.queues {
		for _, q := range qs {
			if !seen[q.Port()] {
				seen[q.Port()] = true
				ports = append(ports, q.Port())
			}
		}
	}
	warmup := window / 4
	var warmPkts, warmBytes uint64
	app.Eng.Schedule(app.Now().Add(warmup), func() {
		for _, p := range ports {
			st := p.GetStats()
			warmPkts += st.TxPackets
			warmBytes += st.TxBytes
		}
	})
	app.Eng.Schedule(app.Now().Add(window), func() {
		for _, p := range ports {
			st := p.GetStats()
			totalPkts += st.TxPackets
			totalBytes += st.TxBytes
		}
	})
	app.RunFor(window)
	totalPkts -= warmPkts
	totalBytes -= warmBytes
	return totalPkts, totalBytes
}

// FreqSweepResult is §5.2: rate versus CPU frequency for MoonGen and
// Pktgen-DPDK on the simple UDP workload.
type FreqSweepResult struct {
	Table
	// MinLineRateFreqMoonGen/Pktgen are the lowest frequencies (GHz)
	// that reach 14.88 Mpps. Paper: 1.5 and 1.7.
	MinLineRateFreqMoonGen float64
	MinLineRateFreqPktgen  float64
	// PktgenAt15 is Pktgen-DPDK's rate at 1.5 GHz. Paper: 14.12 Mpps.
	PktgenAt15 float64
}

// RunFreqSweep reproduces the §5.2 comparison.
func RunFreqSweep(scale Scale, seed int64) *FreqSweepResult {
	res := &FreqSweepResult{}
	res.Title = "§5.2 frequency sweep: single core, 64B UDP, 256 varying source IPs"
	res.Columns = []string{"MoonGen Mpps", "Pktgen Mpps"}
	lineRate := wire.LineRatePPS(wire.Speed10G, 64)

	runOne := func(w cpu.Workload, f cpu.Freq, seed int64) float64 {
		app := core.NewApp(seed)
		queues := scenario.BuildPortPairs(app, nic.ChipX540, 1, 1)
		pl := &pacedLoad{cores: 1, freq: f, workload: w, pktSize: 60, queues: queues}
		pkts, _ := pl.run(app, scale.Window)
		return float64(pkts) / (scale.Window - scale.Window/4).Seconds()
	}

	for f := cpu.MinFreq; f <= cpu.MaxFreq+1; f += cpu.FreqStep {
		mg := runOne(cpu.SimpleUDPWorkload, f, seed)
		pg := runOne(cpu.PktgenDPDKWorkload, f, seed+1)
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("%.1f GHz", float64(f)/1e9),
			Values: []float64{mg / 1e6, pg / 1e6},
		})
		if res.MinLineRateFreqMoonGen == 0 && mg >= lineRate*0.999 {
			res.MinLineRateFreqMoonGen = float64(f) / 1e9
		}
		if res.MinLineRateFreqPktgen == 0 && pg >= lineRate*0.999 {
			res.MinLineRateFreqPktgen = float64(f) / 1e9
		}
		if f == 1.5*cpu.GHz {
			res.PktgenAt15 = pg / 1e6
		}
	}
	res.Notes = append(res.Notes,
		"paper: MoonGen reaches 14.88 Mpps at 1.5 GHz; Pktgen-DPDK needs 1.7 GHz (14.12 Mpps at 1.5)")
	return res
}

// ScalingResult is a cores-versus-rate series (Figures 2 and 4).
type ScalingResult struct {
	Table
	// Mpps[i] is the total rate with i+1 cores.
	Mpps []float64
	// LineRateLimit is the aggregate line-rate cap in Mpps.
	LineRateLimit float64
	// Simulated is the total modeled time the experiment covered (one
	// measurement window per series point). Dividing it by the wall
	// time of the run gives the sim/wall ratio — the simulator's
	// speed relative to the real testbed it stands in for.
	Simulated sim.Duration
}

// RunFig2 reproduces Figure 2: multi-core scaling under the heavy
// random workload (8 random fields), 1.2 GHz cores, two 10 GbE ports
// per core.
func RunFig2(scale Scale, seed int64) *ScalingResult {
	res := &ScalingResult{}
	res.Title = "Figure 2: multi-core scaling under high load (1.2 GHz, 2 ports)"
	res.Columns = []string{"Mpps", "Gbit/s"}
	res.LineRateLimit = 2 * wire.LineRatePPS(wire.Speed10G, 64) / 1e6

	for cores := 1; cores <= 8; cores++ {
		app := core.NewApp(seed + int64(cores))
		// Two ports; each core drives one queue on each port.
		ports := scenario.BuildPortPairs(app, nic.ChipX540, 2, cores)
		queues := make([][]*nic.TxQueue, cores)
		for c := 0; c < cores; c++ {
			queues[c] = []*nic.TxQueue{ports[0][c], ports[1][c]}
		}
		pl := &pacedLoad{
			cores: cores, freq: 1.2 * cpu.GHz,
			workload: cpu.HeavyRandomWorkload,
			pktSize:  60, queues: queues,
		}
		pkts, _ := pl.run(app, scale.Window)
		res.Simulated += scale.Window
		mpps := float64(pkts) / (scale.Window - scale.Window/4).Seconds() / 1e6
		res.Mpps = append(res.Mpps, mpps)
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("%d cores", cores),
			Values: []float64{mpps, mpps * 84 * 8 / 1e3},
		})
	}
	res.Notes = append(res.Notes,
		fmt.Sprintf("dashed line-rate limit: %.2f Mpps (2 x 10GbE)", res.LineRateLimit),
		"paper: linear scaling up to the line rate limit")
	return res
}

// RunFig4 reproduces Figure 4: scaling to 120 Gbit/s across twelve
// 10 GbE ports at 2 GHz (one port per core).
func RunFig4(scale Scale, seed int64) *ScalingResult {
	res := &ScalingResult{}
	res.Title = "Figure 4: multi-core scaling, one 10GbE port per core, 2 GHz"
	res.Columns = []string{"Mpps", "Gbit/s"}
	res.LineRateLimit = 12 * wire.LineRatePPS(wire.Speed10G, 64) / 1e6

	for cores := 1; cores <= 12; cores++ {
		app := core.NewApp(seed + int64(cores))
		queues := scenario.BuildPortPairs(app, nic.ChipX540, cores, 1)
		pl := &pacedLoad{
			cores: cores, freq: 2 * cpu.GHz,
			workload: cpu.SimpleUDPWorkload,
			pktSize:  60, queues: queues,
		}
		pkts, _ := pl.run(app, scale.Window)
		res.Simulated += scale.Window
		mpps := float64(pkts) / (scale.Window - scale.Window/4).Seconds() / 1e6
		res.Mpps = append(res.Mpps, mpps)
		res.Rows = append(res.Rows, Row{
			Label:  fmt.Sprintf("%d cores", cores),
			Values: []float64{mpps, mpps * 84 * 8 / 1e3},
		})
	}
	res.Notes = append(res.Notes,
		"paper: 178.5 Mpps at 120 Gbit/s with 12 cores (line rate on every port)")
	return res
}

// Fig3Result is the XL710 40 GbE size/core sweep.
type Fig3Result struct {
	Table
	// WireGbps[cores-1][sizeIdx] is the achieved wire-level rate.
	WireGbps [3][7]float64
	Sizes    [7]int
}

// RunFig3 reproduces Figure 3: XL710 throughput by packet size and core
// count, exposing the chip's §5.4 hardware bottlenecks.
func RunFig3(scale Scale, seed int64) *Fig3Result {
	res := &Fig3Result{Sizes: [7]int{64, 96, 128, 160, 192, 224, 256}}
	res.Title = "Figure 3: XL710 40GbE throughput vs packet size (2.4 GHz cores)"
	res.Columns = []string{"1 core", "2 cores", "3 cores"}

	for si, size := range res.Sizes {
		vals := make([]float64, 3)
		for cores := 1; cores <= 3; cores++ {
			app := core.NewApp(seed + int64(100*si+cores))
			ports := scenario.BuildPortPairs(app, nic.ChipXL710, 1, cores)
			queues := make([][]*nic.TxQueue, cores)
			for c := 0; c < cores; c++ {
				queues[c] = []*nic.TxQueue{ports[0][c]}
			}
			pl := &pacedLoad{
				cores: cores, freq: 2.4 * cpu.GHz,
				workload: cpu.SimpleUDPWorkload,
				pktSize:  size - proto.FCSLen, queues: queues,
			}
			pkts, bytes := pl.run(app, scale.Window)
			wireBits := float64(bytes+pkts*(proto.FCSLen+proto.WireOverhead)) * 8
			gbps := wireBits / (scale.Window - scale.Window/4).Seconds() / 1e9
			vals[cores-1] = gbps
			res.WireGbps[cores-1][si] = gbps
		}
		res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("%d B", size), Values: vals})
	}
	res.Notes = append(res.Notes,
		"paper: sizes <=128 B cannot reach 40G line rate; >2 cores do not help (hardware bottleneck)")
	return res
}

// RunTable1 prints the per-packet cost table (model constants used by
// the simulation, from the paper's measurements). The Go-level costs of
// this implementation are measured separately by the benchmarks.
func RunTable1() *Table {
	t := &Table{
		Title:   "Table 1: per-packet costs of basic operations (cycles/pkt)",
		Columns: []string{"cycles/pkt", "± std"},
	}
	rows := []struct {
		label string
		v, s  float64
	}{
		{"Packet transmission", cpu.CostPacketIO, cpu.CostPacketIOStd},
		{"Packet modification", cpu.CostModify, cpu.CostModifyStd},
		{"Packet modification (two cachelines)", cpu.CostModifyTwoCachelines, cpu.CostModifyTwoCachelinesStd},
		{"IP checksum offloading", cpu.CostOffloadIP, cpu.CostOffloadIPStd},
		{"UDP checksum offloading", cpu.CostOffloadUDP, cpu.CostOffloadUDPStd},
		{"TCP checksum offloading", cpu.CostOffloadTCP, cpu.CostOffloadTCPStd},
	}
	for _, r := range rows {
		t.Rows = append(t.Rows, Row{Label: r.label, Values: []float64{r.v, r.s}})
	}
	return t
}

// RunTable2 prints the randomization-cost table.
func RunTable2() *Table {
	t := &Table{
		Title:   "Table 2: per-packet costs of modifications (cycles/pkt)",
		Columns: []string{"rand", "counter"},
		Notes: []string{
			fmt.Sprintf("baseline (constant write + send): %.1f cycles/pkt", cpu.CostBaselineConstant),
			"paper: prefer wrapping counters (1 cycle/field marginal) over rand (17 cycles/field)",
		},
	}
	for _, n := range []int{1, 2, 4, 8} {
		t.Rows = append(t.Rows, Row{
			Label:  fmt.Sprintf("%d fields", n),
			Values: []float64{cpu.RandFieldCycles(n), cpu.CounterFieldCycles(n)},
		})
	}
	return t
}

// CostEstimateResult is §5.6.3: predicted versus simulated throughput
// of the heavy random workload at 2.4 GHz.
type CostEstimateResult struct {
	Table
	PredictedMpps float64
	PredictedStd  float64
	SimulatedMpps float64
}

// RunCostEstimate reproduces the §5.6.3 example.
func RunCostEstimate(scale Scale, seed int64) *CostEstimateResult {
	w := cpu.HeavyRandomWorkload
	res := &CostEstimateResult{
		PredictedMpps: w.PPS(2.4*cpu.GHz) / 1e6,
		PredictedStd:  w.PPSPredictionStd(2.4*cpu.GHz) / 1e6,
	}
	app := core.NewApp(seed)
	queues := scenario.BuildPortPairs(app, nic.ChipX540, 1, 1)
	pl := &pacedLoad{cores: 1, freq: 2.4 * cpu.GHz, workload: w, pktSize: 60, queues: queues}
	pkts, _ := pl.run(app, scale.Window)
	res.SimulatedMpps = float64(pkts) / (scale.Window - scale.Window/4).Seconds() / 1e6

	res.Title = "§5.6.3 cost estimation example (heavy random workload, 2.4 GHz)"
	res.Columns = []string{"Mpps"}
	res.Rows = []Row{
		{Label: fmt.Sprintf("predicted (%.1f±%.1f cycles/pkt)", w.Cycles(), w.CyclesStd()), Values: []float64{res.PredictedMpps}},
		{Label: "prediction ± (Mpps)", Values: []float64{res.PredictedStd}},
		{Label: "simulated", Values: []float64{res.SimulatedMpps}},
	}
	res.Notes = append(res.Notes, "paper: predicted 10.47±0.18 Mpps, measured 10.3 Mpps")
	return res
}

// SizeSweepResult is §5.7: per-packet CPU cost is flat across frame
// sizes 64-128 B for both transmit and receive.
type SizeSweepResult struct {
	Table
	// MppsTx[i] is the achieved rate at size 64+i*8; flatness of this
	// series (CPU-bound, so rate == cost ceiling) is the claim.
	MppsTx []float64
}

// RunSizeSweep reproduces the §5.7 experiment: clock low enough that
// the CPU is the bottleneck, then sweep sizes 64..128.
func RunSizeSweep(scale Scale, seed int64) *SizeSweepResult {
	res := &SizeSweepResult{}
	res.Title = "§5.7 packet sizes 64-128B: CPU-bound rate is size-independent"
	res.Columns = []string{"Mpps"}
	for size := 64; size <= 128; size += 8 {
		app := core.NewApp(seed + int64(size))
		queues := scenario.BuildPortPairs(app, nic.ChipX540, 1, 1)
		pl := &pacedLoad{
			cores: 1, freq: 1.2 * cpu.GHz,
			workload: cpu.HeavyRandomWorkload,
			pktSize:  size - proto.FCSLen, queues: queues,
		}
		pkts, _ := pl.run(app, scale.Window)
		mpps := float64(pkts) / (scale.Window - scale.Window/4).Seconds() / 1e6
		res.MppsTx = append(res.MppsTx, mpps)
		res.Rows = append(res.Rows, Row{Label: fmt.Sprintf("%d B", size), Values: []float64{mpps}})
	}
	res.Notes = append(res.Notes,
		"paper: no difference in CPU cycles for sending across 64-128B; reception likewise")
	return res
}
