package experiments

import (
	"math"
	"testing"

	"repro/internal/cpu"
)

// The experiment tests assert the paper's qualitative results — who
// wins, by roughly what factor, where crossovers fall — at test scale.
// Exact paper-vs-measured numbers are recorded in EXPERIMENTS.md from
// cmd/benchtab runs at full scale.

func TestFreqSweep(t *testing.T) {
	r := RunFreqSweep(ScaleTest, 1)
	if r.MinLineRateFreqMoonGen != 1.5 {
		t.Errorf("MoonGen line-rate frequency = %.1f GHz, paper: 1.5", r.MinLineRateFreqMoonGen)
	}
	if r.MinLineRateFreqPktgen != 1.7 {
		t.Errorf("Pktgen line-rate frequency = %.1f GHz, paper: 1.7", r.MinLineRateFreqPktgen)
	}
	if math.Abs(r.PktgenAt15-14.12) > 0.2 {
		t.Errorf("Pktgen at 1.5 GHz = %.2f Mpps, paper: 14.12", r.PktgenAt15)
	}
}

func TestFig2Scaling(t *testing.T) {
	r := RunFig2(ScaleTest, 2)
	// Linear region: each core adds the single-core rate until the
	// 2x10GbE cap.
	single := r.Mpps[0]
	if single < 4.9 || single > 5.5 {
		t.Fatalf("single core at 1.2 GHz = %.2f Mpps, want ~5.2 (229.2 cycles/pkt)", single)
	}
	for i := 1; i < len(r.Mpps); i++ {
		expected := math.Min(float64(i+1)*single, r.LineRateLimit)
		if math.Abs(r.Mpps[i]-expected)/expected > 0.03 {
			t.Errorf("%d cores: %.2f Mpps, want ~%.2f", i+1, r.Mpps[i], expected)
		}
	}
	// The cap must actually be reached with 8 cores.
	if math.Abs(r.Mpps[7]-r.LineRateLimit)/r.LineRateLimit > 0.01 {
		t.Errorf("8 cores: %.2f Mpps, want line-rate limit %.2f", r.Mpps[7], r.LineRateLimit)
	}
}

func TestFig3XL710(t *testing.T) {
	r := RunFig3(ScaleTest, 3)
	lineRate := func(si int) float64 { return 40.0 }
	// Sizes <= 128 B never reach 40G line rate, with any core count.
	for si, size := range r.Sizes {
		if size > 128 {
			continue
		}
		for c := 0; c < 3; c++ {
			if r.WireGbps[c][si] > 0.98*lineRate(si) {
				t.Errorf("%dB %d cores reached %.1f Gbit/s, should be capped", size, c+1, r.WireGbps[c][si])
			}
		}
	}
	// Sizes >= 160 B reach line rate with >= 2 cores.
	for si, size := range r.Sizes {
		if size < 160 {
			continue
		}
		if r.WireGbps[1][si] < 0.97*40 {
			t.Errorf("%dB 2 cores only %.1f Gbit/s, want line rate", size, r.WireGbps[1][si])
		}
	}
	// A third core does not help at small sizes (hardware bottleneck).
	for si, size := range r.Sizes {
		if size > 128 {
			continue
		}
		if r.WireGbps[2][si] > r.WireGbps[1][si]*1.03 {
			t.Errorf("%dB: 3 cores (%.1f) improved over 2 (%.1f)", size, r.WireGbps[2][si], r.WireGbps[1][si])
		}
	}
}

func TestFig4Scaling120G(t *testing.T) {
	if testing.Short() {
		t.Skip("12-core soak; covered by the full suite")
	}
	r := RunFig4(ScaleTest, 4)
	// Every added core adds a full line-rate port: 14.88 Mpps each.
	for i, m := range r.Mpps {
		want := float64(i+1) * 14.88
		if math.Abs(m-want)/want > 0.01 {
			t.Errorf("%d cores = %.2f Mpps, want %.2f", i+1, m, want)
		}
	}
	// Headline: 178.5 Mpps at 120 Gbit/s with 12 cores.
	if math.Abs(r.Mpps[11]-178.5) > 1.0 {
		t.Errorf("12 cores = %.1f Mpps, paper: 178.5", r.Mpps[11])
	}
}

func TestCostEstimate(t *testing.T) {
	r := RunCostEstimate(ScaleTest, 5)
	if math.Abs(r.PredictedMpps-10.47) > 0.1 {
		t.Errorf("predicted = %.2f Mpps, paper: 10.47", r.PredictedMpps)
	}
	// Simulated rate within the prediction's uncertainty band.
	if math.Abs(r.SimulatedMpps-r.PredictedMpps) > 3*r.PredictedStd {
		t.Errorf("simulated %.2f vs predicted %.2f±%.2f", r.SimulatedMpps, r.PredictedMpps, r.PredictedStd)
	}
}

func TestSizeSweepFlat(t *testing.T) {
	r := RunSizeSweep(ScaleTest, 6)
	base := r.MppsTx[0]
	for i, m := range r.MppsTx {
		if math.Abs(m-base)/base > 0.01 {
			t.Errorf("size %dB: %.3f Mpps differs from 64B's %.3f", 64+8*i, m, base)
		}
	}
}

func TestTables1And2(t *testing.T) {
	t1 := RunTable1()
	if len(t1.Rows) != 6 {
		t.Fatalf("table 1 has %d rows", len(t1.Rows))
	}
	if t1.Rows[0].Values[0] != 76.0 {
		t.Fatal("table 1 TX cost wrong")
	}
	t2 := RunTable2()
	if len(t2.Rows) != 4 {
		t.Fatalf("table 2 has %d rows", len(t2.Rows))
	}
	// Counter column always cheaper than rand column.
	for _, row := range t2.Rows {
		if row.Values[1] >= row.Values[0] {
			t.Errorf("%s: counter %.1f not cheaper than rand %.1f", row.Label, row.Values[1], row.Values[0])
		}
	}
}

func TestTable3Fits(t *testing.T) {
	r := RunTable3(ScaleTest, 7)
	if math.Abs(r.FiberK-310.7) > 8 {
		t.Errorf("fiber k = %.1f ns, paper: 310.7", r.FiberK)
	}
	if math.Abs(r.FiberVPc-0.72) > 0.03 {
		t.Errorf("fiber vp = %.3f c, paper: 0.72", r.FiberVPc)
	}
	if math.Abs(r.CopperK-2147.2) > 10 {
		t.Errorf("copper k = %.1f ns, paper: 2147.2", r.CopperK)
	}
	if math.Abs(r.CopperVPc-0.69) > 0.03 {
		t.Errorf("copper vp = %.3f c, paper: 0.69", r.CopperVPc)
	}
	// The 8.5 m fiber measurement is bimodal on the 12.8 ns timer grid.
	if len(r.Fiber85Values) != 2 {
		t.Fatalf("8.5m fiber: %d distinct values %v, paper: exactly 2", len(r.Fiber85Values), r.Fiber85Values)
	}
	if math.Abs(r.Fiber85Values[0]-345.6) > 0.1 || math.Abs(r.Fiber85Values[1]-358.4) > 0.1 {
		t.Errorf("8.5m values = %v, paper: 345.6/358.4", r.Fiber85Values)
	}
}

func TestClockSyncBound(t *testing.T) {
	r := RunClockSync(ScaleTest, 8)
	if r.MaxErrorNS > 19.2 {
		t.Errorf("worst sync error = %.1f ns, paper bound: 19.2", r.MaxErrorNS)
	}
}

func TestDrift(t *testing.T) {
	r := RunDrift(ScaleTest, 9)
	if math.Abs(r.MeasuredPPM-35) > 1 {
		t.Errorf("drift = %.1f µs/s, configured worst case: 35", r.MeasuredPPM)
	}
	if math.Abs(r.ResidualRelative-0.000035) > 1e-6 {
		t.Errorf("residual relative error = %v, paper: 0.0035%%", r.ResidualRelative)
	}
}

func TestTable4Shape(t *testing.T) {
	r := RunTable4(ScaleTest, 10)
	get := func(g Generator, kpps float64) *InterArrivalResult {
		for _, c := range r.Cells {
			if c.Generator == g && c.RateKpps == kpps {
				return c
			}
		}
		t.Fatalf("missing cell %s %v", g, kpps)
		return nil
	}
	// 500 kpps: MoonGen has (almost) no micro-bursts, ~half the gaps
	// within ±64ns and nearly all within ±256ns; zsend is dominated by
	// micro-bursts with a scattered remainder.
	mg := get(GenMoonGen, 500)
	if mg.MicroBurst > 0.01 {
		t.Errorf("MoonGen 500k micro-bursts = %.3f", mg.MicroBurst)
	}
	if mg.Within[64] < 0.35 || mg.Within[64] > 0.65 {
		t.Errorf("MoonGen 500k ±64ns = %.3f, paper: 0.499", mg.Within[64])
	}
	if mg.Within[256] < 0.95 {
		t.Errorf("MoonGen 500k ±256ns = %.3f, paper: 0.998", mg.Within[256])
	}
	pg := get(GenPktgen, 500)
	if pg.Within[64] >= mg.Within[64] {
		t.Errorf("Pktgen ±64ns %.3f should trail MoonGen %.3f", pg.Within[64], mg.Within[64])
	}
	zs := get(GenZsend, 500)
	if math.Abs(zs.MicroBurst-0.286) > 0.06 {
		t.Errorf("zsend 500k micro-bursts = %.3f, paper: 0.286", zs.MicroBurst)
	}
	if zs.Within[64] > 0.15 {
		t.Errorf("zsend 500k ±64ns = %.3f, paper: 0.039", zs.Within[64])
	}
	// 1000 kpps: Pktgen degrades into micro-bursts; zsend worsens.
	pg1 := get(GenPktgen, 1000)
	if pg1.MicroBurst < 0.05 {
		t.Errorf("Pktgen 1M micro-bursts = %.3f, paper: 0.142", pg1.MicroBurst)
	}
	zs1 := get(GenZsend, 1000)
	if math.Abs(zs1.MicroBurst-0.52) > 0.08 {
		t.Errorf("zsend 1M micro-bursts = %.3f, paper: 0.52", zs1.MicroBurst)
	}
}

func TestFig7Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("9-point DuT soak; covered by the full suite")
	}
	r := RunFig7(ScaleTest, 11)
	// MoonGen's interrupt rate exceeds zsend's at every load point
	// below saturation.
	peak := 0.0
	for i, l := range r.Loads {
		if l <= 1.5 {
			if r.MoonGen[i] < 1.5*r.Zsend[i] {
				t.Errorf("at %.2f Mpps: MoonGen %.0f Hz not >> zsend %.0f Hz", l, r.MoonGen[i], r.Zsend[i])
			}
		}
		if r.MoonGen[i] > peak {
			peak = r.MoonGen[i]
		}
	}
	if peak < 80e3 {
		t.Errorf("MoonGen peak interrupt rate = %.0f Hz, paper: ~1.5e5", peak)
	}
	// The descending branch: past saturation the DuT polls
	// continuously and the interrupt rate collapses.
	last := r.MoonGen[len(r.MoonGen)-1]
	if last > peak/2 {
		t.Errorf("interrupt rate did not collapse at overload: peak %.0f, 2Mpps %.0f", peak, last)
	}
}

func TestFig10Equivalence(t *testing.T) {
	r := RunFig10(ScaleTest, 12)
	// Paper: within 1.2 sigma of 0%, worst point 1.5%. With 600 probes
	// per point the quartile estimates carry a few percent of sampling
	// noise (the paper uses >=30k samples), and near saturation the
	// latency distribution widens, so the bound here is 10%;
	// EXPERIMENTS.md records the convergence behaviour.
	for q := 0; q < 3; q++ {
		for i, dev := range r.RelDev[q] {
			if math.Abs(dev) > 10 {
				t.Errorf("load %.2f Mpps quartile %d: deviation %.1f%% too large", r.Loads[i], q, dev)
			}
		}
	}
}

func TestFig11Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("8-point DuT latency soak; covered by the full suite")
	}
	r := RunFig11(ScaleTest, 13)
	idx := func(load float64) int {
		for i, l := range r.Loads {
			if l == load {
				return i
			}
		}
		t.Fatalf("missing load %v", load)
		return -1
	}
	// Near saturation Poisson queueing pushes latency well above CBR.
	i18 := idx(1.8)
	if r.Poisson[i18][1] < 1.3*r.CBR[i18][1] {
		t.Errorf("at 1.8 Mpps: Poisson median %.1f µs not >> CBR %.1f µs",
			r.Poisson[i18][1], r.CBR[i18][1])
	}
	// At overload both collapse to the ~2 ms buffer-full latency. The
	// 2.0 Mpps point is barely past saturation (1.96 Mpps), so the
	// buffer fills slowly; steady state at test scale is asserted at
	// the deep-overload 2.5 Mpps point, but 2.0 must already be
	// clearly elevated and rising.
	i20 := idx(2.0)
	if r.CBR[i20][1] < 100 || r.Poisson[i20][1] < 100 {
		t.Errorf("2.0 Mpps medians %.0f/%.0f µs not elevated", r.CBR[i20][1], r.Poisson[i20][1])
	}
	i25 := idx(3.0)
	for _, v := range []float64{r.CBR[i25][1], r.Poisson[i25][1]} {
		if v < 1200 || v > 2600 {
			t.Errorf("overload median = %.0f µs, paper: ~2000", v)
		}
	}
	// At low load the two patterns are comparable.
	i01 := idx(0.1)
	if r.Poisson[i01][1] > 3*r.CBR[i01][1] {
		t.Errorf("at 0.1 Mpps: Poisson %.1f vs CBR %.1f µs diverge too much",
			r.Poisson[i01][1], r.CBR[i01][1])
	}
}

// TestMulticoreScaling pins the Figure-4 scaling table produced by the
// sharded subsystem at a fixed seed: linear scaling in both regimes,
// the wire-rate ceiling at 2 GHz, the paper's 178.5 Mpps headline at
// 12 cores, and agreement with the cycle-cost prediction.
func TestMulticoreScaling(t *testing.T) {
	r := RunMulticoreScaling(ScaleTest, 14)
	if len(r.Mpps) != 12 {
		t.Fatalf("table has %d rows", len(r.Mpps))
	}
	// 2 GHz: every core pegs its port at the wire-rate ceiling.
	if math.Abs(r.Mpps[0]-r.LineRateMpps)/r.LineRateMpps > 0.005 {
		t.Errorf("1 core at 2 GHz = %.2f Mpps, want wire rate %.2f", r.Mpps[0], r.LineRateMpps)
	}
	if math.Abs(r.Mpps[11]-178.5) > 1.5 {
		t.Errorf("12 cores = %.1f Mpps, paper: 178.5", r.Mpps[11])
	}
	// 1.2 GHz: CPU-bound below the ceiling (100.8 cycles/pkt ⇒ ~11.9
	// Mpps/core).
	if r.MppsLow[0] >= r.LineRateMpps || math.Abs(r.MppsLow[0]-11.9) > 0.3 {
		t.Errorf("1 core at 1.2 GHz = %.2f Mpps, want ~11.9 (below ceiling)", r.MppsLow[0])
	}
	// Both series scale ~linearly, and match the model prediction.
	for i := range r.Mpps {
		wantHi, wantLo := float64(i+1)*r.Mpps[0], float64(i+1)*r.MppsLow[0]
		if math.Abs(r.Mpps[i]-wantHi)/wantHi > 0.01 {
			t.Errorf("%d cores at 2 GHz: %.2f Mpps, want ~%.2f (linear)", i+1, r.Mpps[i], wantHi)
		}
		if math.Abs(r.MppsLow[i]-wantLo)/wantLo > 0.01 {
			t.Errorf("%d cores at 1.2 GHz: %.2f Mpps, want ~%.2f (linear)", i+1, r.MppsLow[i], wantLo)
		}
		if math.Abs(r.Mpps[i]-r.Predicted[i])/r.Predicted[i] > 0.01 {
			t.Errorf("%d cores: measured %.2f vs predicted %.2f Mpps", i+1, r.Mpps[i], r.Predicted[i])
		}
		if math.Abs(r.MppsLow[i]-r.PredictedLow[i])/r.PredictedLow[i] > 0.01 {
			t.Errorf("%d cores low: measured %.2f vs predicted %.2f Mpps", i+1, r.MppsLow[i], r.PredictedLow[i])
		}
	}
	// The merged per-core counters must agree with the ceiling.
	if math.Abs(r.PerCoreMpps-r.LineRateMpps) > 0.3 {
		t.Errorf("per-core merged rate = %.2f ± %.2f, want ~%.2f", r.PerCoreMpps, r.PerCoreStd, r.LineRateMpps)
	}
}

// TestMulticoreScalingDeterministic: the sharded experiment is exactly
// reproducible although its shards race on real goroutines — this is
// the fixed-seed pin for the whole table.
func TestMulticoreScalingDeterministic(t *testing.T) {
	if testing.Short() {
		// One 4-core point instead of two full tables.
		am, _ := runMulticorePoint(ScaleTest, 14, 4, cpu.SimpleUDPWorkload, 2*cpu.GHz)
		bm, _ := runMulticorePoint(ScaleTest, 14, 4, cpu.SimpleUDPWorkload, 2*cpu.GHz)
		if am != bm {
			t.Fatalf("4-core point differs across runs: %v vs %v", am, bm)
		}
		return
	}
	a := RunMulticoreScaling(ScaleTest, 14)
	b := RunMulticoreScaling(ScaleTest, 14)
	for i := range a.Mpps {
		if a.Mpps[i] != b.Mpps[i] || a.MppsLow[i] != b.MppsLow[i] {
			t.Errorf("%d cores: runs differ: %v/%v vs %v/%v",
				i+1, a.Mpps[i], a.MppsLow[i], b.Mpps[i], b.MppsLow[i])
		}
	}
	if a.PerCoreMpps != b.PerCoreMpps || a.PerCoreStd != b.PerCoreStd {
		t.Errorf("merged counter stats differ across runs")
	}
}
