package experiments

import (
	"fmt"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// This file exposes the measurement-style experiments as registered
// scenarios, so `moongen <name>` and the examples drive them through
// the same registry as the load scenarios. These wrappers build their
// own specialized testbeds (82580 receiver, calibrated cable sets) and
// therefore only consume the Env's Spec, not its default port pair.

// interArrivalScenario is one generator's inter-arrival measurement —
// the Figure 8 / Table 4 cell for that generator.
type interArrivalScenario struct {
	gen Generator
}

func (s interArrivalScenario) Name() string {
	switch s.gen {
	case GenMoonGen:
		return "interarrival-moongen"
	case GenPktgen:
		return "interarrival-pktgen"
	default:
		return "interarrival-zsend"
	}
}

func (s interArrivalScenario) Describe() string {
	return fmt.Sprintf("inter-arrival histogram of %s on an 82580 line-rate timestamper (Fig. 8)", s.gen)
}

func (s interArrivalScenario) DefaultSpec() scenario.Spec {
	return scenario.Spec{RateMpps: 0.5, Samples: 20000}
}

// SingleCoreOnly implements scenario.SingleCoreOnly: the measurement
// characterizes one generator on one timestamper; sharding it would
// sum distribution rows into nonsense.
func (interArrivalScenario) SingleCoreOnly() string {
	return "the inter-arrival measurement characterizes a single generator/timestamper pair"
}

func (s interArrivalScenario) Run(env *scenario.Env) (*scenario.Report, error) {
	spec := env.Spec
	pps := spec.RateMpps * 1e6
	if pps <= 0 {
		return nil, fmt.Errorf("interarrival needs a rate (got %v)", spec)
	}
	scale := ScaleTest
	if spec.Samples > 0 {
		scale.Samples = spec.Samples
	}
	res := RunInterArrival(scale, spec.Seed, s.gen, pps)

	rep := &scenario.Report{Window: sim.Duration(float64(scale.Samples) / pps * float64(sim.Second))}
	rep.Latency = res.Hist // inter-arrival distribution
	rep.TxPackets = res.Hist.Count()
	rep.RxPackets = res.Hist.Count()
	rep.RxMpps = float64(res.Hist.Count()) / rep.Window.Seconds() / 1e6
	rep.AddRow("micro-bursts (back-to-back)", res.MicroBurst*100, "%")
	for _, tol := range []int{64, 128, 256, 512} {
		rep.AddRow(fmt.Sprintf("within ±%d ns of target", tol), res.Within[tol]*100, "%")
	}
	rep.Notes = append(rep.Notes, "the latency histogram holds inter-arrival times, 64 ns bins")
	return rep, nil
}

// timestampsScenario is the Table 3 cable-calibration procedure:
// latency over several cable lengths, then a fit of the modulation
// constant k and the propagation speed vp.
type timestampsScenario struct{}

func (timestampsScenario) Name() string { return "timestamps" }
func (timestampsScenario) Describe() string {
	return "hardware-timestamp calibration over cable lengths, fits k and vp (Table 3)"
}

func (timestampsScenario) DefaultSpec() scenario.Spec {
	return scenario.Spec{Probes: 500}
}

// SingleCoreOnly implements scenario.SingleCoreOnly: the calibration
// sweeps cable lengths internally; summing fitted constants across
// shards would be meaningless.
func (timestampsScenario) SingleCoreOnly() string {
	return "the calibration sweep fits per-cable constants that must not be summed"
}

func (timestampsScenario) Run(env *scenario.Env) (*scenario.Report, error) {
	spec := env.Spec
	scale := ScaleTest
	if spec.Probes > 0 {
		scale.Probes = spec.Probes
	}
	res := RunTable3(scale, spec.Seed)
	rep := &scenario.Report{}
	rep.AddRow("82599 fiber k (paper 310.7)", res.FiberK, "ns")
	rep.AddRow("82599 fiber vp (paper 0.72)", res.FiberVPc, "c")
	rep.AddRow("X540 copper k (paper 2147.2)", res.CopperK, "ns")
	rep.AddRow("X540 copper vp (paper 0.69)", res.CopperVPc, "c")
	for _, v := range res.Fiber85Values {
		rep.AddRow("8.5 m fiber observation", v, "ns")
	}
	rep.Notes = append(rep.Notes, "paper: 8.5 m fiber is bimodal 345.6/358.4 ns on the 12.8 ns grid")
	return rep, nil
}

func init() {
	scenario.Register(interArrivalScenario{gen: GenMoonGen})
	scenario.Register(interArrivalScenario{gen: GenPktgen})
	scenario.Register(interArrivalScenario{gen: GenZsend})
	scenario.Register(timestampsScenario{})
}
