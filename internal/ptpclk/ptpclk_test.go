package ptpclk

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestQuantization(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Config{TickNS: 6.4})
	eng.Schedule(sim.Time(10*sim.Nanosecond), func() {
		ts := c.Timestamp()
		// 10 ns quantized to 6.4 ns granularity -> 6.4 ns.
		if ts != sim.Time(sim.FromNanoseconds(6.4)) {
			t.Errorf("timestamp = %v, want 6.4ns", ts)
		}
	})
	eng.RunAll()
}

func TestQuantizationPhase(t *testing.T) {
	eng := sim.NewEngine(1)
	// 82580 style: 64 ns ticks with a k*8 ns phase.
	c := New(eng, Config{TickNS: 64, PhaseNS: 24})
	eng.Schedule(sim.Time(200*sim.Nanosecond), func() {
		ts := c.Timestamp()
		// Values are of the form n*64ns + 24ns.
		rem := (int64(ts) - int64(24*sim.Nanosecond)) % int64(64*sim.Nanosecond)
		if rem != 0 {
			t.Errorf("timestamp %v not of form n*64+24 ns", ts)
		}
	})
	eng.RunAll()
}

func TestTimestampMonotone(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Config{TickNS: 6.4, DriftPPM: 35})
	var last sim.Time = -1 << 62
	for i := 0; i < 1000; i++ {
		eng.Schedule(sim.Time(i)*sim.Time(sim.Nanosecond), func() {
			ts := c.Timestamp()
			if ts < last {
				t.Errorf("clock went backwards: %v < %v", ts, last)
			}
			last = ts
		})
	}
	eng.RunAll()
}

func TestDriftAccumulation(t *testing.T) {
	eng := sim.NewEngine(1)
	// 35 ppm = 35 µs per second, the paper's worst case (§6.3).
	c := New(eng, Config{TickNS: 6.4, DriftPPM: 35})
	eng.Schedule(sim.Time(sim.Second), func() {
		off := c.Offset()
		want := 35 * sim.Microsecond
		if diff := off - want; diff < -sim.Microsecond || diff > sim.Microsecond {
			t.Errorf("offset after 1s = %v, want ~35us", off)
		}
	})
	eng.RunAll()
}

func TestAdjustAtomicWithDrift(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Config{TickNS: 6.4, DriftPPM: 100, InitialOffset: 50 * sim.Microsecond})
	eng.Schedule(sim.Time(sim.Second), func() {
		c.Adjust(-c.Offset())
		if off := c.Offset(); off != 0 {
			t.Errorf("offset after corrective adjust = %v", off)
		}
	})
	// Drift resumes after the adjustment.
	eng.Schedule(sim.Time(2*sim.Second), func() {
		off := c.Offset()
		want := 100 * sim.Microsecond
		if diff := off - want; diff < -sim.Microsecond || diff > sim.Microsecond {
			t.Errorf("offset 1s after adjust = %v, want ~100us", off)
		}
	})
	eng.RunAll()
}

// TestSyncAccuracy reproduces §6.2: after Sync the two clocks agree
// within ±1 tick even with 5% read outliers.
func TestSyncAccuracy(t *testing.T) {
	eng := sim.NewEngine(42)
	tick := sim.FromNanoseconds(6.4)
	for trial := 0; trial < 200; trial++ {
		offset := sim.Duration(eng.Rand().Int63n(int64(sim.Millisecond)))
		a := New(eng, Config{TickNS: 6.4, ReadOutlierProb: 0.05})
		b := New(eng, Config{TickNS: 6.4, ReadOutlierProb: 0.05, InitialOffset: offset})
		Sync(a, b)
		// After sync, direct (latch, not read) timestamps agree to
		// within 2 ticks (quantization of both clocks + residual).
		d := int64(a.Timestamp() - b.Timestamp())
		if d < 0 {
			d = -d
		}
		if d > 2*int64(tick) {
			t.Fatalf("trial %d: residual clock error %dps > 2 ticks", trial, d)
		}
	}
}

// TestSyncMaxError validates the 19.2 ns bound quoted in the paper for
// multi-port tests on 10 GbE chips (±1 cycle ≈ 3 ticks worst case
// across two quantized clocks).
func TestSyncMaxError(t *testing.T) {
	eng := sim.NewEngine(7)
	worst := int64(0)
	for trial := 0; trial < 500; trial++ {
		a := New(eng, Config{TickNS: 6.4, ReadOutlierProb: 0.05})
		b := New(eng, Config{TickNS: 6.4, ReadOutlierProb: 0.05,
			InitialOffset: sim.Duration(eng.Rand().Int63n(int64(sim.Second)))})
		Sync(a, b)
		d := int64(a.Timestamp() - b.Timestamp())
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	if limit := int64(sim.FromNanoseconds(19.2)); worst > limit {
		t.Fatalf("worst-case sync error %dps exceeds 19.2ns", worst)
	}
}

func TestMeasureDrift(t *testing.T) {
	eng := sim.NewEngine(3)
	a := New(eng, Config{TickNS: 6.4})
	b := New(eng, Config{TickNS: 6.4, DriftPPM: 35})
	var got float64
	eng.Spawn("drift", func(p *sim.Proc) {
		got = MeasureDrift(p, a, b, sim.Second)
	})
	eng.RunAll()
	if math.Abs(got+35) > 0.5 { // b runs fast relative to a -> a-b shrinks
		t.Fatalf("measured drift = %f ppm, want ~-35", got)
	}
}

// TestResyncRelativeError reproduces §6.3: resynchronizing before each
// timestamped packet turns a 35 µs/s drift into a relative error of
// 0.0035% of the measured latency.
func TestResyncRelativeError(t *testing.T) {
	// In 1 ms of flight time, a 35 ppm drift accumulates 35 ns.
	drift := 35e-6
	flight := 1 * sim.Millisecond
	errNS := drift * float64(flight)
	rel := errNS / float64(flight)
	if math.Abs(rel-0.000035) > 1e-9 {
		t.Fatalf("relative error = %v, want 0.0035%%", rel)
	}
}

func TestReadOutliers(t *testing.T) {
	eng := sim.NewEngine(9)
	c := New(eng, Config{TickNS: 6.4, ReadOutlierProb: 0.05})
	outliers := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if c.Read() != c.Timestamp() {
			outliers++
		}
	}
	frac := float64(outliers) / n
	if frac < 0.03 || frac > 0.07 {
		t.Fatalf("outlier fraction = %f, want ~0.05", frac)
	}
}

func TestDefaultTick(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Config{})
	if c.Tick() != sim.FromNanoseconds(6.4) {
		t.Fatalf("default tick = %v", c.Tick())
	}
}

// TestDriftLongHorizon runs the drift model over simulated hours and
// checks the accumulated offset against the analytic line
// offset(t) = initial + t·ppm/1e6 at every checkpoint. The drift term
// is computed in float64 over a picosecond epoch delta, so the error
// budget is the float rounding at ~1e16 ps magnitudes (a few
// picoseconds per hour) plus nothing else — a soak pin that the model
// neither loses nor invents time at long horizons.
func TestDriftLongHorizon(t *testing.T) {
	const ppm = 35.0 // the paper's worst case (§6.3)
	eng := sim.NewEngine(1)
	initial := 50 * sim.Microsecond
	c := New(eng, Config{TickNS: 6.4, DriftPPM: ppm, InitialOffset: initial})

	hour := 3600 * sim.Second
	for _, cp := range []sim.Duration{
		30 * 60 * sim.Second, // 30 min
		hour,
		2 * hour,
		4 * hour,
		8 * hour,
	} {
		cp := cp
		eng.Schedule(sim.Time(cp), func() {
			elapsed := float64(cp)
			want := initial + sim.Duration(elapsed*ppm/1e6)
			got := c.Offset()
			// Tolerance: float64 rounding on the ps-scale drift product.
			// 8 h = 2.9e16 ps; one ulp there is 4 ps, and the multiply
			// rounds once — stay generous at 1 ns.
			if diff := got - want; diff < -sim.Nanosecond || diff > sim.Nanosecond {
				t.Errorf("offset after %v = %v, want %v (analytic), diff %v", cp, got, want, diff)
			}
		})
	}
	eng.RunAll()
}

// TestDriftRateChangeLongHorizon: piecewise drift — a rate change
// mid-run re-anchors the epoch, and the accumulated offset is the sum
// of the per-segment analytic terms, again over hours.
func TestDriftRateChangeLongHorizon(t *testing.T) {
	eng := sim.NewEngine(1)
	c := New(eng, Config{TickNS: 6.4, DriftPPM: 35})

	hour := 3600 * sim.Second
	// After 2 h at 35 ppm, renegotiate to -12 ppm.
	eng.Schedule(sim.Time(2*hour), func() { c.SetDriftPPM(-12) })
	eng.Schedule(sim.Time(5*hour), func() {
		// 2 h at +35 ppm, then 3 h at -12 ppm.
		want := sim.Duration(float64(2*hour)*35/1e6) + sim.Duration(float64(3*hour)*(-12)/1e6)
		got := c.Offset()
		if diff := got - want; diff < -sim.Nanosecond || diff > sim.Nanosecond {
			t.Errorf("piecewise offset after 5h = %v, want %v, diff %v", got, want, diff)
		}
	})
	eng.RunAll()
}
