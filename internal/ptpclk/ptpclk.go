// Package ptpclk models the IEEE 1588 timestamping clocks on Intel
// NICs and the clock synchronization algorithm MoonGen builds on them
// (paper §6).
//
// Each network port has an independent free-running clock. The paper's
// measured properties are encoded directly:
//
//   - 82599/X540 at 10 GbE tick at 156.25 MHz → 6.4 ns precision; at
//     1 GbE the frequency drops to 15.625 MHz → 64 ns.
//   - On the 82599 the timer register increments only every *two* clock
//     cycles: granularity 12.8 ns while timestamping operates at 6.4 ns,
//     which produces the bimodal latency measurements in Table 3.
//   - The 82580 (GbE) timestamps with 64 ns precision plus a constant
//     phase offset k·8 ns that changes on every reset.
//   - Clocks on different ports drift; the worst case the paper observed
//     is 35 µs/s between a mainboard NIC and a discrete NIC.
//   - Reads over PCIe occasionally return outliers (~5% of reads), which
//     is why the sync algorithm reads 7 times and takes the median.
package ptpclk

import (
	"math/rand"
	"sort"

	"repro/internal/sim"
)

// Clock is a simulated NIC timestamping clock.
type Clock struct {
	eng *sim.Engine

	// tick is the timer-register granularity: the value read is
	// quantized to a multiple of tick (plus phase).
	tick sim.Duration

	// phase is a constant offset below one tick, modeling the 82580's
	// "t = n·64ns + k·8ns where k varies between resets".
	phase sim.Duration

	// offset is the current difference between this clock and simulated
	// wall time (adjusted by Adjust).
	offset sim.Duration

	// driftPPM is the clock's frequency error in parts per million
	// relative to wall time. 35 µs/s == 35 ppm.
	driftPPM float64

	// driftEpoch is the wall time at which offset was last valid;
	// accumulated drift is (now-driftEpoch) * driftPPM / 1e6.
	driftEpoch sim.Time

	// readOutlierProb is the probability that a PCIe register read
	// returns a bogus value (paper §6.2: ~5%).
	readOutlierProb float64

	rng *rand.Rand
}

// Config configures a clock.
type Config struct {
	// TickNS is the timer granularity in nanoseconds (6.4 for X540 at
	// 10 GbE, 12.8 for the 82599 timer register, 64 for GbE chips).
	TickNS float64
	// PhaseNS is a constant sub-tick phase offset (82580: k·8 ns).
	PhaseNS float64
	// DriftPPM is the frequency error versus wall time.
	DriftPPM float64
	// ReadOutlierProb is the probability of a bogus register read.
	ReadOutlierProb float64
	// InitialOffset desynchronizes the clock at creation.
	InitialOffset sim.Duration
}

// New creates a clock bound to the engine's timeline.
func New(eng *sim.Engine, cfg Config) *Clock {
	if cfg.TickNS == 0 {
		cfg.TickNS = 6.4
	}
	return &Clock{
		eng:             eng,
		tick:            sim.FromNanoseconds(cfg.TickNS),
		phase:           sim.FromNanoseconds(cfg.PhaseNS),
		offset:          cfg.InitialOffset,
		driftPPM:        cfg.DriftPPM,
		driftEpoch:      eng.Now(),
		readOutlierProb: cfg.ReadOutlierProb,
		rng:             eng.Rand(),
	}
}

// Tick returns the timer granularity.
func (c *Clock) Tick() sim.Duration { return c.tick }

// raw returns the un-quantized clock value at wall time now.
func (c *Clock) raw(now sim.Time) sim.Time {
	drift := sim.Duration(float64(now.Sub(c.driftEpoch)) * c.driftPPM / 1e6)
	return now.Add(c.offset + drift)
}

// quantize snaps a raw value to the register granularity.
func (c *Clock) quantize(t sim.Time) sim.Time {
	if c.tick <= 0 {
		return t
	}
	q := (int64(t) - int64(c.phase)) / int64(c.tick)
	return sim.Time(q*int64(c.tick) + int64(c.phase))
}

// Timestamp returns the clock value latched for a packet at the current
// instant — what the NIC hardware writes into its timestamp register.
// It is always quantized and never an outlier: the latch is on-chip.
func (c *Clock) Timestamp() sim.Time {
	return c.quantize(c.raw(c.eng.Now()))
}

// TimestampAt returns the latched value for an event at wall time t
// (used by the NIC model when it knows the exact MAC-level instant).
func (c *Clock) TimestampAt(t sim.Time) sim.Time {
	return c.quantize(c.raw(t))
}

// Read models a software register read over PCIe: usually the quantized
// clock value, occasionally (readOutlierProb) garbage.
func (c *Clock) Read() sim.Time {
	v := c.Timestamp()
	if c.readOutlierProb > 0 && c.rng.Float64() < c.readOutlierProb {
		// An outlier: a value off by up to ±1 µs, the "randomly
		// distributed outliers" of §6.2.
		off := sim.Duration(c.rng.Int63n(int64(2*sim.Microsecond))) - sim.Microsecond
		return v.Add(off)
	}
	return v
}

// Adjust shifts the clock by delta using the NIC's atomic
// read-modify-write timer adjustment (required for PTP, §6.2).
func (c *Clock) Adjust(delta sim.Duration) {
	// Fold accumulated drift into the offset so the adjustment is
	// atomic with respect to the drift model.
	now := c.eng.Now()
	c.offset = c.raw(now).Sub(now) + delta
	c.driftEpoch = now
}

// SetDriftPPM changes the drift rate (e.g. when a link renegotiates).
func (c *Clock) SetDriftPPM(ppm float64) {
	now := c.eng.Now()
	c.offset = c.raw(now).Sub(now)
	c.driftEpoch = now
	c.driftPPM = ppm
}

// Offset returns the clock's current total deviation from wall time.
func (c *Clock) Offset() sim.Duration {
	return c.raw(c.eng.Now()).Sub(c.eng.Now())
}

// SyncSamples is the number of paired reads the synchronization
// procedure performs. With a 5% outlier probability per read, 7 samples
// give > 99.999% probability of at least 3 clean measurements (§6.2).
const SyncSamples = 7

// Sync synchronizes clock b to clock a using MoonGen's algorithm:
// read a then b, then b then a; if the two differences agree the clocks
// were read consistently. Repeat SyncSamples times, take the median
// difference, and adjust b. Returns the applied correction.
//
// The residual error after Sync is at most one timer tick (±1 cycle,
// §6.2), i.e. 19.2 ns worst case for two 6.4 ns clocks plus quantization.
func Sync(a, b *Clock) sim.Duration {
	tol := int64(a.tick)
	if int64(b.tick) > tol {
		tol = int64(b.tick)
	}
	tol *= 2
	valid := make([]int64, 0, SyncSamples)
	all := make([]int64, 0, SyncSamples)
	for i := 0; i < SyncSamples; i++ {
		// Read in both orders: a then b, then b then a. The two
		// differences agree iff the clocks were read consistently
		// (no outlier hit and, on hardware, constant PCIe latency).
		d1 := int64(a.Read()) - int64(b.Read())
		d2 := int64(a.Read()) - int64(b.Read())
		all = append(all, d1)
		if abs64(d1-d2) <= tol {
			valid = append(valid, (d1+d2)/2)
		}
	}
	if len(valid) == 0 {
		// Vanishingly unlikely with 7 samples at 5% outlier rate
		// (§6.2: >99.999% chance of ≥3 clean measurements); fall back
		// to the plain median.
		valid = all
	}
	sort.Slice(valid, func(i, j int) bool { return valid[i] < valid[j] })
	med := valid[len(valid)/2]
	b.Adjust(sim.Duration(med))
	return sim.Duration(med)
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

// MeasureDrift estimates the drift rate between two clocks by sampling
// their difference over the given interval. It mirrors the paper's
// drift.lua measurement. The result is in PPM (µs per second).
func MeasureDrift(p *sim.Proc, a, b *Clock, interval sim.Duration) float64 {
	start := int64(a.Timestamp() - b.Timestamp())
	p.Sleep(interval)
	end := int64(a.Timestamp() - b.Timestamp())
	return float64(end-start) / float64(interval) * 1e6
}
