package rate

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sim"
	"repro/internal/wire"
)

func TestCBR(t *testing.T) {
	p := NewCBRPPS(1e6)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10; i++ {
		if g := p.NextGap(rng); g != sim.Microsecond {
			t.Fatalf("gap = %v", g)
		}
	}
}

func TestPoissonMean(t *testing.T) {
	p := NewPoissonPPS(1e6)
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += float64(p.NextGap(rng))
	}
	mean := sum / n
	if math.Abs(mean-float64(sim.Microsecond))/float64(sim.Microsecond) > 0.01 {
		t.Fatalf("mean gap = %f ps", mean)
	}
}

func TestPoissonCV(t *testing.T) {
	// Exponential gaps have coefficient of variation 1.
	p := NewPoissonPPS(1e6)
	rng := rand.New(rand.NewSource(3))
	var sum, sumsq float64
	const n = 100000
	for i := 0; i < n; i++ {
		g := float64(p.NextGap(rng))
		sum += g
		sumsq += g * g
	}
	mean := sum / n
	std := math.Sqrt(sumsq/n - mean*mean)
	if cv := std / mean; math.Abs(cv-1) > 0.02 {
		t.Fatalf("cv = %f, want 1", cv)
	}
}

func TestBurstsAverage(t *testing.T) {
	b2b := wire.FrameTime(wire.Speed10G, 64)
	b := &Bursts{Size: 8, AvgInterval: sim.Microsecond, BackToBack: b2b}
	rng := rand.New(rand.NewSource(4))
	var total sim.Duration
	const n = 8 * 1000
	for i := 0; i < n; i++ {
		total += b.NextGap(rng)
	}
	avg := float64(total) / n
	if math.Abs(avg-float64(sim.Microsecond))/float64(sim.Microsecond) > 0.001 {
		t.Fatalf("avg gap = %f ps", avg)
	}
}

func TestGapFillerExactGaps(t *testing.T) {
	g := NewGapFiller(wire.ByteTime(wire.Speed10G))
	// 1 µs gap at 10 GbE = 1250 wire bytes.
	fills := g.FillGap(1250)
	var sum int
	for _, f := range fills {
		if f < g.MinFillerWire || f > g.MaxFillerWire {
			t.Fatalf("filler %d outside [%d,%d]", f, g.MinFillerWire, g.MaxFillerWire)
		}
		sum += f
	}
	if sum != 1250 {
		t.Fatalf("fillers sum to %d, want 1250", sum)
	}
	if g.Debt() != 0 {
		t.Fatalf("debt = %d", g.Debt())
	}
}

func TestGapFillerShortGapDebt(t *testing.T) {
	g := NewGapFiller(wire.ByteTime(wire.Speed10G))
	// 40 wire bytes (32 ns): below the 76-byte floor -> skipped.
	if fills := g.FillGap(40); fills != nil {
		t.Fatalf("short gap produced fillers %v", fills)
	}
	if g.Debt() != 40 || g.Skipped != 1 {
		t.Fatalf("debt=%d skipped=%d", g.Debt(), g.Skipped)
	}
	// Next gap absorbs the debt.
	fills := g.FillGap(100)
	var sum int
	for _, f := range fills {
		sum += f
	}
	if sum != 140 {
		t.Fatalf("fillers sum to %d, want 140", sum)
	}
	if g.Debt() != 0 {
		t.Fatalf("debt = %d after payback", g.Debt())
	}
}

// Property: for any gap sequence, total filler bytes + residual debt
// equals total requested gap bytes (the average-rate accuracy claim of
// §8.4), and every filler respects the min/max bounds.
func TestGapFillerConservationProperty(t *testing.T) {
	f := func(gaps []uint16) bool {
		g := NewGapFiller(wire.ByteTime(wire.Speed10G))
		var want, got int64
		for _, raw := range gaps {
			gap := int64(raw)
			want += gap
			for _, fl := range g.FillGap(gap) {
				if fl < g.MinFillerWire || fl > g.MaxFillerWire {
					return false
				}
				got += int64(fl)
			}
		}
		return got+g.Debt() == want
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestGapFillerLargeGapSplitting(t *testing.T) {
	g := NewGapFiller(wire.ByteTime(wire.Speed10G))
	// A gap slightly above MaxFillerWire must not leave an
	// unrepresentable remainder.
	gap := int64(g.MaxFillerWire + 10)
	fills := g.FillGap(gap)
	var sum int64
	for _, f := range fills {
		if f < g.MinFillerWire || f > g.MaxFillerWire {
			t.Fatalf("filler %d out of bounds", f)
		}
		sum += int64(f)
	}
	if sum != gap {
		t.Fatalf("sum = %d, want %d", sum, gap)
	}
}

func TestMinRepresentableGap(t *testing.T) {
	g := NewGapFiller(wire.ByteTime(wire.Speed10G))
	// 76 bytes × 0.8 ns = 60.8 ns (§8.1).
	if got := g.MinRepresentableGap(); got != sim.FromNanoseconds(60.8) {
		t.Fatalf("min gap = %v", got)
	}
}

func TestGapToWireBytes(t *testing.T) {
	g := NewGapFiller(wire.ByteTime(wire.Speed10G))
	if b := g.GapToWireBytes(800 * sim.Picosecond); b != 1 {
		t.Fatalf("0.8ns = %d bytes", b)
	}
	if b := g.GapToWireBytes(sim.Microsecond); b != 1250 {
		t.Fatalf("1us = %d bytes", b)
	}
}

// TestSoftPushMicroBurstGrowth: the push model's deadline misses grow
// superlinearly with rate (Table 4: 0.01% at 500 kpps vs 14.2% at
// 1000 kpps on GbE).
func TestSoftPushMicroBurstGrowth(t *testing.T) {
	b2b := wire.FrameTime(wire.Speed1G, 64)
	rng := rand.New(rand.NewSource(6))
	frac := func(pps float64) float64 {
		p := NewSoftPushPPS(pps, b2b)
		n, bursts := 200000, 0
		for i := 0; i < n; i++ {
			if p.NextGap(rng) <= b2b {
				bursts++
			}
		}
		return float64(bursts) / float64(n)
	}
	at500k := frac(500e3)
	at1M := frac(1000e3)
	if at500k > 0.01 {
		t.Fatalf("500kpps micro-bursts = %.4f, want <1%%", at500k)
	}
	if at1M < 0.08 || at1M > 0.25 {
		t.Fatalf("1Mpps micro-bursts = %.4f, want ~14%%", at1M)
	}
	if at1M < 10*at500k {
		t.Fatalf("burst growth not superlinear: %.5f -> %.5f", at500k, at1M)
	}
}

// TestBurstyMicroBurstFractions reproduces zsend's Table 4 micro-burst
// fractions: ~28.6% at 500 kpps and ~52% at 1000 kpps.
func TestBurstyMicroBurstFractions(t *testing.T) {
	b2b := wire.FrameTime(wire.Speed1G, 64)
	rng := rand.New(rand.NewSource(7))
	frac := func(pps float64) float64 {
		p := NewBurstyPPS(pps, b2b)
		n, bursts := 200000, 0
		for i := 0; i < n; i++ {
			if p.NextGap(rng) <= b2b {
				bursts++
			}
		}
		return float64(bursts) / float64(n)
	}
	if f := frac(500e3); math.Abs(f-0.286) > 0.03 {
		t.Fatalf("zsend 500kpps micro-bursts = %.3f, want ~0.286", f)
	}
	if f := frac(1000e3); math.Abs(f-0.52) > 0.04 {
		t.Fatalf("zsend 1Mpps micro-bursts = %.3f, want ~0.52", f)
	}
}

// TestSoftPushAverageRate: despite jitter and bursts the average rate
// stays on target (the tools are inaccurate in timing, not in rate).
func TestSoftPushAverageRate(t *testing.T) {
	b2b := wire.FrameTime(wire.Speed1G, 64)
	for _, pps := range []float64{500e3, 1000e3} {
		p := NewSoftPushPPS(pps, b2b)
		rng := rand.New(rand.NewSource(8))
		var sum float64
		const n = 300000
		for i := 0; i < n; i++ {
			sum += float64(p.NextGap(rng))
		}
		rate := float64(n) / (sum / float64(sim.Second))
		if math.Abs(rate-pps)/pps > 0.02 {
			t.Fatalf("softpush avg rate at %.0f = %.0f", pps, rate)
		}
	}
}

func TestBurstyAverageRate(t *testing.T) {
	b2b := wire.FrameTime(wire.Speed1G, 64)
	p := NewBurstyPPS(500e3, b2b)
	rng := rand.New(rand.NewSource(9))
	var sum float64
	const n = 300000
	for i := 0; i < n; i++ {
		sum += float64(p.NextGap(rng))
	}
	rate := float64(n) / (sum / float64(sim.Second))
	if math.Abs(rate-500e3)/500e3 > 0.03 {
		t.Fatalf("zsend avg rate = %.0f", rate)
	}
}

func TestCustomPattern(t *testing.T) {
	c := Custom{Fn: func(*rand.Rand) sim.Duration { return 42 }, Label: "x"}
	if c.NextGap(nil) != 42 || c.Name() != "x" {
		t.Fatal("custom pattern broken")
	}
}

func TestPatternNames(t *testing.T) {
	if (CBR{}).Name() != "cbr" || (Poisson{}).Name() != "poisson" {
		t.Fatal("names wrong")
	}
	if (&Bursts{Size: 4}).Name() != "bursts-4" {
		t.Fatal("bursts name wrong")
	}
}
