// Package rate implements traffic patterns and rate-control mechanisms:
//
//   - patterns: constant bit rate, Poisson processes, bursts, custom
//     inter-departure processes (§8.3);
//   - the paper's novel CRC-gap software rate control (§8): filling
//     inter-packet gaps with invalid frames so the wire stays saturated
//     and gap lengths — not DMA timing — define departure times;
//   - behavioural models of the software rate control in existing
//     packet generators (Pktgen-DPDK's single-packet push and zsend's
//     burstiness), calibrated against Table 4 and Figure 8, used as the
//     comparison baselines.
package rate

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/proto"
	"repro/internal/sim"
)

// Pattern generates inter-departure gaps between consecutive packets
// (start-of-frame to start-of-frame).
type Pattern interface {
	// NextGap returns the next inter-departure time.
	NextGap(rng *rand.Rand) sim.Duration
	// Name identifies the pattern in reports.
	Name() string
}

// CBR is a constant-bit-rate pattern: every gap equals Interval.
type CBR struct{ Interval sim.Duration }

// NewCBRPPS builds a CBR pattern from a packet rate.
func NewCBRPPS(pps float64) CBR { return CBR{Interval: sim.FromSeconds(1 / pps)} }

// NextGap implements Pattern.
func (c CBR) NextGap(*rand.Rand) sim.Duration { return c.Interval }

// Name implements Pattern.
func (c CBR) Name() string { return "cbr" }

// Poisson is a Poisson arrival process: exponentially distributed gaps
// with the given mean — the pattern that "stresses buffers as the DuT
// becomes temporarily overloaded" (§8.3).
type Poisson struct{ MeanInterval sim.Duration }

// NewPoissonPPS builds a Poisson pattern from an average packet rate.
func NewPoissonPPS(pps float64) Poisson { return Poisson{MeanInterval: sim.FromSeconds(1 / pps)} }

// NextGap implements Pattern.
func (p Poisson) NextGap(rng *rand.Rand) sim.Duration {
	return sim.Duration(rng.ExpFloat64() * float64(p.MeanInterval))
}

// Name implements Pattern.
func (p Poisson) Name() string { return "poisson" }

// Bursts sends packets back-to-back in groups of Size, with pauses
// between groups chosen so the average rate matches — l2-bursts.lua.
type Bursts struct {
	Size int
	// AvgInterval is the average per-packet interval (1/pps).
	AvgInterval sim.Duration
	// BackToBack is the wire-limited minimum gap within a burst.
	BackToBack sim.Duration

	pos int
}

// NextGap implements Pattern.
func (b *Bursts) NextGap(*rand.Rand) sim.Duration {
	b.pos++
	if b.pos%b.Size != 0 {
		return b.BackToBack
	}
	// Gap after a burst restores the average.
	total := sim.Duration(b.Size) * b.AvgInterval
	inBurst := sim.Duration(b.Size-1) * b.BackToBack
	return total - inBurst
}

// Name implements Pattern.
func (b *Bursts) Name() string { return fmt.Sprintf("bursts-%d", b.Size) }

// Custom wraps a function as a Pattern.
type Custom struct {
	Fn    func(rng *rand.Rand) sim.Duration
	Label string
}

// NextGap implements Pattern.
func (c Custom) NextGap(rng *rand.Rand) sim.Duration { return c.Fn(rng) }

// Name implements Pattern.
func (c Custom) Name() string { return c.Label }

// --- CRC-gap software rate control (§8) -----------------------------

// GapFiller converts target inter-packet gaps into sequences of invalid
// filler frames. All sizes here are wire bytes: frame + FCS + preamble +
// SFD + IFG, matching the paper's "wire-length" convention (minimum
// emittable 33 bytes; MoonGen enforces 76 by default).
type GapFiller struct {
	// ByteTime is the serialization time of one byte.
	ByteTime sim.Duration
	// MinFillerWire is the minimum filler wire length (default 76:
	// 8 bytes less than a regular minimum frame, §8.1).
	MinFillerWire int
	// MaxFillerWire is the maximum filler wire length (1538 wire
	// bytes: a 1514 B frame + FCS + overhead).
	MaxFillerWire int

	// debt accumulates unrepresentable gap bytes; they are paid back
	// by lengthening later gaps, so the average rate stays exact while
	// individual short gaps lose precision (§8.4).
	debt int64
	// Skipped counts gaps that could not be represented exactly.
	Skipped uint64
	// Emitted counts filler frames produced.
	Emitted uint64
}

// DefaultMinFillerWire is MoonGen's enforced filler minimum (§8.1):
// generating frames shorter than this puts the NIC into its runt-rate
// regime, so 76 wire bytes (56 frame+FCS bytes) is the default floor.
const DefaultMinFillerWire = 76

// HardMinFillerWire is the absolute NIC limit: frames below 33 wire
// bytes are refused by the hardware (§8.1).
const HardMinFillerWire = 33

// NewGapFiller builds a filler for the given link byte time.
func NewGapFiller(byteTime sim.Duration) *GapFiller {
	return &GapFiller{
		ByteTime:      byteTime,
		MinFillerWire: DefaultMinFillerWire,
		MaxFillerWire: proto.MaxFrameSize + proto.FCSLen + proto.WireOverhead,
	}
}

// GapToWireBytes converts a time gap to wire bytes (rounded to the
// 0.8 ns granularity at 10 GbE).
func (g *GapFiller) GapToWireBytes(gap sim.Duration) int64 {
	return int64(math.Round(float64(gap) / float64(g.ByteTime)))
}

// FillGap returns the filler wire lengths to emit after a packet so the
// next packet starts gapBytes of wire time later. A nil result means
// back-to-back. Unrepresentable remainders go into the debt account.
func (g *GapFiller) FillGap(gapBytes int64) []int {
	gapBytes += g.debt
	g.debt = 0
	if gapBytes <= 0 {
		return nil
	}
	if gapBytes < int64(g.MinFillerWire) {
		// Gap too short to represent: skip the filler and lengthen a
		// later gap instead (§8.4) — high accuracy, lower precision.
		g.debt = gapBytes
		g.Skipped++
		return nil
	}
	var out []int
	for gapBytes > 0 {
		switch {
		case gapBytes <= int64(g.MaxFillerWire):
			out = append(out, int(gapBytes))
			gapBytes = 0
		case gapBytes < int64(g.MaxFillerWire+g.MinFillerWire):
			// Avoid an unrepresentable remainder: split evenly.
			half := int(gapBytes / 2)
			out = append(out, half, int(gapBytes)-half)
			gapBytes = 0
		default:
			out = append(out, g.MaxFillerWire)
			gapBytes -= int64(g.MaxFillerWire)
		}
	}
	g.Emitted += uint64(len(out))
	return out
}

// Debt returns the current unrepresented gap debt in wire bytes.
func (g *GapFiller) Debt() int64 { return g.debt }

// MinRepresentableGap returns the smallest non-zero gap the filler can
// produce exactly: 60.8 ns at 10 GbE with the default 76-byte floor.
func (g *GapFiller) MinRepresentableGap() sim.Duration {
	return sim.Duration(g.MinFillerWire) * g.ByteTime
}

// --- Behavioural models of existing software rate control -----------

// SoftPush models classic software rate control as in Pktgen-DPDK
// (§7.1, Figure 5): the software pushes one packet at a time and the
// NIC fetches it asynchronously via DMA, so inter-departure times carry
// fetch jitter, and under load the software misses deadlines and emits
// back-to-back pairs. Calibrated against Table 4's Pktgen-DPDK rows.
type SoftPush struct {
	Interval   sim.Duration
	BackToBack sim.Duration
	// BurstProb is the probability a deadline miss produces a
	// back-to-back pair. Derived from rate by NewSoftPushPPS.
	BurstProb float64

	pending sim.Duration // time owed after a burst to keep the average
}

// NewSoftPushPPS calibrates the model for a target rate on a link with
// the given back-to-back time. The burst probability grows superlinearly
// with load (Table 4: 0.01% at 500 kpps, 14.2% at 1000 kpps on GbE).
func NewSoftPushPPS(pps float64, backToBack sim.Duration) *SoftPush {
	util := pps * float64(backToBack) / float64(sim.Second)
	burst := 0.0
	if util > 0.3 {
		burst = math.Pow((util-0.3)/0.4, 3) * 0.15
	}
	if burst > 0.9 {
		burst = 0.9
	}
	return &SoftPush{
		Interval:   sim.FromSeconds(1 / pps),
		BackToBack: backToBack,
		BurstProb:  burst,
	}
}

// NextGap implements Pattern.
func (s *SoftPush) NextGap(rng *rand.Rand) sim.Duration {
	if s.pending > 0 {
		// After a burst, stretch the next gap to keep the average.
		gap := s.Interval + s.pending
		s.pending = 0
		return gap + softJitter(rng)
	}
	if rng.Float64() < s.BurstProb {
		s.pending = s.Interval - s.BackToBack
		return s.BackToBack
	}
	return s.Interval + softJitter(rng)
}

// softJitter is the DMA-fetch timing noise of the push model: wider
// than the hardware shaper's oscillation (Table 4: 37.7% within ±64 ns
// versus MoonGen's 49.9%), with a heavy tail.
func softJitter(rng *rand.Rand) sim.Duration {
	u := rng.Float64()
	var ns float64
	switch {
	case u < 0.38:
		ns = rng.Float64()*128 - 64
	case u < 0.72:
		ns = 64 + rng.Float64()*64
		if rng.Intn(2) == 0 {
			ns = -ns
		}
	case u < 0.93:
		ns = 128 + rng.Float64()*128
		if rng.Intn(2) == 0 {
			ns = -ns
		}
	default:
		ns = 256 + rng.Float64()*1750
		if rng.Intn(2) == 0 {
			ns = -ns / 2 // early pushes are bounded by the previous packet
		}
	}
	return sim.FromNanoseconds(ns)
}

// Name implements Pattern.
func (s *SoftPush) Name() string { return "pktgen-dpdk-softpush" }

// Bursty models zsend 6.0.2's observed behaviour (§7.3): a large
// fraction of packets leave back-to-back (28.6% at 500 kpps, 52% at
// 1000 kpps — "indicating a bug in the PF_RING ZC framework"), with
// the remaining gaps widely scattered.
type Bursty struct {
	Interval   sim.Duration
	BackToBack sim.Duration
	// MeanBurst is the average burst length.
	MeanBurst float64

	left int // packets remaining in the current burst
}

// NewBurstyPPS calibrates the zsend model for a target rate: the mean
// burst length interpolates between Table 4's micro-burst fractions.
func NewBurstyPPS(pps float64, backToBack sim.Duration) *Bursty {
	// Micro-burst fraction f = (L-1)/L  =>  L = 1/(1-f).
	f := 0.286 + (pps-500e3)/500e3*(0.52-0.286)
	if f < 0.05 {
		f = 0.05
	}
	if f > 0.8 {
		f = 0.8
	}
	return &Bursty{
		Interval:   sim.FromSeconds(1 / pps),
		BackToBack: backToBack,
		MeanBurst:  1 / (1 - f),
	}
}

// NextGap implements Pattern.
func (b *Bursty) NextGap(rng *rand.Rand) sim.Duration {
	if b.left > 0 {
		b.left--
		return b.BackToBack
	}
	// Draw the next burst length (geometric with mean MeanBurst).
	p := 1 / b.MeanBurst
	n := 1
	for rng.Float64() > p && n < 64 {
		n++
	}
	b.left = n - 1
	// The inter-burst gap restores the average rate, with large
	// software-timer jitter (the Figure 8 zsend histograms spread over
	// microseconds).
	gap := float64(n) * float64(b.Interval)
	gap -= float64(b.left) * float64(b.BackToBack)
	jitter := (rng.Float64()*2 - 1) * 0.35 * gap
	return sim.Duration(gap + jitter)
}

// Name implements Pattern.
func (b *Bursty) Name() string { return "zsend-bursty" }
