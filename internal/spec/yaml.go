// Package spec is the declarative scenario layer: a versioned YAML/JSON
// document that `moongen run <file>` loads, validates with line-anchored
// error messages, and compiles AT LOAD TIME into the existing zero-alloc
// primitives (a registered scenario driven by a scenario.Spec — prefilled
// proto.Template fill closures, GapTx/HWRateTx/FlowSink plumbing). No
// interpretation survives into the run: after Compile the hot path is
// exactly the compiled-Go path, so the determinism and batch-invariance
// contracts hold for composed scenarios as for registered ones.
//
// This file is the YAML-subset reader. The repo vendors nothing, so the
// subset is hand-parsed — which is also what makes every node carry its
// source line for the error messages the schema layer emits. Supported:
// nested maps by indentation, block lists ("- item"), inline maps
// {k: v, ...} and lists [a, b], single- and double-quoted scalars,
// comments and blank lines. Not supported (rejected with a pointed
// error, never misparsed): tabs for indentation, anchors/aliases,
// multi-document streams, block scalars (| and >).
package spec

import (
	"fmt"
	"strings"
)

// nodeKind discriminates the parse-tree node types.
type nodeKind int

const (
	scalarNode nodeKind = iota
	mapNode
	listNode
)

// node is one parse-tree vertex. Every node remembers the 1-based source
// line it started on; schema errors anchor there.
type node struct {
	kind nodeKind
	line int

	// scalar
	val    string
	quoted bool // quoted scalars are always strings, never null/bool/number

	// map: parallel key/value slices preserving declaration order.
	keys     []string
	keyLines []int
	vals     []*node

	// list
	items []*node
}

func (n *node) kindName() string {
	switch n.kind {
	case mapNode:
		return "mapping"
	case listNode:
		return "list"
	default:
		return "scalar"
	}
}

// get returns the value node and line for a map key.
func (n *node) get(key string) (*node, int, bool) {
	for i, k := range n.keys {
		if k == key {
			return n.vals[i], n.keyLines[i], true
		}
	}
	return nil, 0, false
}

// srcLine is one significant input line (blank lines and pure comments
// are dropped before parsing).
type srcLine struct {
	num    int // 1-based line number in the file
	indent int // leading spaces
	text   string
}

// yamlParser consumes the significant lines top to bottom.
type yamlParser struct {
	file  string
	lines []srcLine
	pos   int
}

// parseYAML parses src into a node tree.
func parseYAML(file string, src []byte) (*node, error) {
	p := &yamlParser{file: file}
	for i, raw := range strings.Split(string(src), "\n") {
		num := i + 1
		if strings.Contains(raw, "\t") {
			// Only reject tabs that matter: inside quotes they are data.
			if idx := strings.IndexByte(raw, '\t'); idx < len(raw)-len(strings.TrimLeft(raw, " \t")) || !inQuotes(raw, idx) {
				return nil, p.errAt(num, "tab character: indent with spaces only")
			}
		}
		indent := len(raw) - len(strings.TrimLeft(raw, " "))
		text := stripComment(strings.TrimRight(raw[indent:], " \r"))
		text = strings.TrimRight(text, " ")
		if text == "" || text == "---" {
			continue
		}
		if strings.HasPrefix(text, "%") {
			return nil, p.errAt(num, "YAML directives are not supported")
		}
		p.lines = append(p.lines, srcLine{num: num, indent: indent, text: text})
	}
	if len(p.lines) == 0 {
		return nil, p.errAt(1, "empty document")
	}
	root, err := p.parseBlock(p.lines[0].indent)
	if err != nil {
		return nil, err
	}
	if p.pos < len(p.lines) {
		l := p.lines[p.pos]
		return nil, p.errAt(l.num, "unexpected content at indent %d (the document root is at indent %d)", l.indent, p.lines[0].indent)
	}
	return root, nil
}

// inQuotes reports whether byte index idx of raw sits inside a quoted
// region — used only to allow literal tabs in quoted strings.
func inQuotes(raw string, idx int) bool {
	inS, inD := false, false
	for i := 0; i < idx && i < len(raw); i++ {
		switch raw[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '\\':
			if inD {
				i++
			}
		}
	}
	return inS || inD
}

// stripComment removes a trailing "#..." comment, respecting quotes.
func stripComment(text string) string {
	inS, inD := false, false
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '\\':
			if inD {
				i++
			}
		case '#':
			if !inS && !inD && (i == 0 || text[i-1] == ' ') {
				return strings.TrimRight(text[:i], " ")
			}
		}
	}
	return text
}

func (p *yamlParser) errAt(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", p.file, line, fmt.Sprintf(format, args...))
}

// parseBlock parses the run of lines at exactly the given indent into a
// map, list, or (single-line) scalar node.
func (p *yamlParser) parseBlock(indent int) (*node, error) {
	l := p.lines[p.pos]
	if strings.HasPrefix(l.text, "- ") || l.text == "-" {
		return p.parseList(indent)
	}
	if keyOf(l.text) != "" {
		return p.parseMap(indent)
	}
	// A lone scalar document/value.
	p.pos++
	return parseInlineValue(p.file, l.num, l.text)
}

// parseMap parses consecutive "key: value" lines at the given indent.
func (p *yamlParser) parseMap(indent int) (*node, error) {
	first := p.lines[p.pos]
	m := &node{kind: mapNode, line: first.num}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent {
			if l.indent > indent {
				return nil, p.errAt(l.num, "unexpected indent %d (this mapping is at indent %d)", l.indent, indent)
			}
			break
		}
		key := keyOf(l.text)
		if key == "" {
			return nil, p.errAt(l.num, "expected \"key: value\", got %q", l.text)
		}
		for _, k := range m.keys {
			if k == key {
				return nil, p.errAt(l.num, "duplicate key %q", key)
			}
		}
		rest := strings.TrimLeft(l.text[len(key)+1:], " ")
		key = dequoteKey(key)
		p.pos++
		var (
			val *node
			err error
		)
		if rest != "" {
			val, err = parseInlineValue(p.file, l.num, rest)
		} else if p.pos < len(p.lines) && p.lines[p.pos].indent > indent {
			val, err = p.parseBlock(p.lines[p.pos].indent)
		} else {
			val = &node{kind: scalarNode, line: l.num, val: ""}
		}
		if err != nil {
			return nil, err
		}
		m.keys = append(m.keys, key)
		m.keyLines = append(m.keyLines, l.num)
		m.vals = append(m.vals, val)
	}
	return m, nil
}

// parseList parses consecutive "- item" lines at the given indent.
func (p *yamlParser) parseList(indent int) (*node, error) {
	first := p.lines[p.pos]
	lst := &node{kind: listNode, line: first.num}
	for p.pos < len(p.lines) {
		l := p.lines[p.pos]
		if l.indent != indent || (l.text != "-" && !strings.HasPrefix(l.text, "- ")) {
			if l.indent > indent {
				return nil, p.errAt(l.num, "unexpected indent %d (this list is at indent %d)", l.indent, indent)
			}
			break
		}
		if l.text == "-" {
			// Item body is the following deeper block.
			p.pos++
			if p.pos >= len(p.lines) || p.lines[p.pos].indent <= indent {
				lst.items = append(lst.items, &node{kind: scalarNode, line: l.num, val: ""})
				continue
			}
			item, err := p.parseBlock(p.lines[p.pos].indent)
			if err != nil {
				return nil, err
			}
			lst.items = append(lst.items, item)
			continue
		}
		content := l.text[2:]
		// "- key: value" starts a map whose first entry shares the dash
		// line: rewrite the line as if it were indented past the dash and
		// re-parse, so the following deeper lines join the same item.
		if keyOf(content) != "" {
			itemIndent := l.indent + 2
			p.lines[p.pos] = srcLine{num: l.num, indent: itemIndent, text: content}
			item, err := p.parseMap(itemIndent)
			if err != nil {
				return nil, err
			}
			lst.items = append(lst.items, item)
			continue
		}
		p.pos++
		item, err := parseInlineValue(p.file, l.num, content)
		if err != nil {
			return nil, err
		}
		lst.items = append(lst.items, item)
	}
	return lst, nil
}

// keyOf returns the "key" of a "key: value" line (empty if the line is
// not a mapping entry). The colon must be outside quotes and followed by
// a space or end of line.
func keyOf(text string) string {
	inS, inD := false, false
	depth := 0
	for i := 0; i < len(text); i++ {
		switch text[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '\\':
			if inD {
				i++
			}
		case '{', '[':
			if !inS && !inD {
				depth++
			}
		case '}', ']':
			if !inS && !inD {
				depth--
			}
		case ':':
			if !inS && !inD && depth == 0 && (i+1 == len(text) || text[i+1] == ' ') {
				if i == 0 {
					return ""
				}
				return text[:i]
			}
		}
	}
	return ""
}

// dequoteKey strips quotes from a quoted map key.
func dequoteKey(key string) string {
	key = strings.TrimSpace(key)
	if len(key) >= 2 && (key[0] == '\'' || key[0] == '"') && key[len(key)-1] == key[0] {
		return key[1 : len(key)-1]
	}
	return key
}

// parseInlineValue parses a value that fits on one line: a scalar, an
// inline map {k: v, ...} or an inline list [a, b, ...].
func parseInlineValue(file string, line int, text string) (*node, error) {
	text = strings.TrimSpace(text)
	switch {
	case strings.HasPrefix(text, "{"):
		if !strings.HasSuffix(text, "}") {
			return nil, fmt.Errorf("%s:%d: inline mapping not closed: %q", file, line, text)
		}
		m := &node{kind: mapNode, line: line}
		body := strings.TrimSpace(text[1 : len(text)-1])
		if body == "" {
			return m, nil
		}
		for _, part := range splitTop(body) {
			part = strings.TrimSpace(part)
			key := keyOf(part)
			if key == "" {
				return nil, fmt.Errorf("%s:%d: inline mapping entry %q is not \"key: value\"", file, line, part)
			}
			rest := strings.TrimLeft(part[len(key)+1:], " ")
			val, err := parseInlineValue(file, line, rest)
			if err != nil {
				return nil, err
			}
			key = dequoteKey(key)
			for _, k := range m.keys {
				if k == key {
					return nil, fmt.Errorf("%s:%d: duplicate key %q", file, line, key)
				}
			}
			m.keys = append(m.keys, key)
			m.keyLines = append(m.keyLines, line)
			m.vals = append(m.vals, val)
		}
		return m, nil
	case strings.HasPrefix(text, "["):
		if !strings.HasSuffix(text, "]") {
			return nil, fmt.Errorf("%s:%d: inline list not closed: %q", file, line, text)
		}
		lst := &node{kind: listNode, line: line}
		body := strings.TrimSpace(text[1 : len(text)-1])
		if body == "" {
			return lst, nil
		}
		for _, part := range splitTop(body) {
			item, err := parseInlineValue(file, line, strings.TrimSpace(part))
			if err != nil {
				return nil, err
			}
			lst.items = append(lst.items, item)
		}
		return lst, nil
	case strings.HasPrefix(text, "|") || strings.HasPrefix(text, ">"):
		return nil, fmt.Errorf("%s:%d: block scalars (| and >) are not supported", file, line)
	case strings.HasPrefix(text, "&") || strings.HasPrefix(text, "*"):
		return nil, fmt.Errorf("%s:%d: YAML anchors/aliases are not supported", file, line)
	}
	return parseScalar(file, line, text)
}

// splitTop splits on commas outside quotes, braces and brackets.
func splitTop(body string) []string {
	var out []string
	inS, inD := false, false
	depth := 0
	start := 0
	for i := 0; i < len(body); i++ {
		switch body[i] {
		case '\'':
			if !inD {
				inS = !inS
			}
		case '"':
			if !inS {
				inD = !inD
			}
		case '\\':
			if inD {
				i++
			}
		case '{', '[':
			if !inS && !inD {
				depth++
			}
		case '}', ']':
			if !inS && !inD {
				depth--
			}
		case ',':
			if !inS && !inD && depth == 0 {
				out = append(out, body[start:i])
				start = i + 1
			}
		}
	}
	return append(out, body[start:])
}

// parseScalar builds a scalar node, handling quotes and escapes.
func parseScalar(file string, line int, text string) (*node, error) {
	n := &node{kind: scalarNode, line: line}
	switch {
	case len(text) >= 2 && text[0] == '\'' && text[len(text)-1] == '\'':
		n.val = strings.ReplaceAll(text[1:len(text)-1], "''", "'")
		n.quoted = true
	case len(text) >= 2 && text[0] == '"' && text[len(text)-1] == '"':
		var b strings.Builder
		body := text[1 : len(text)-1]
		for i := 0; i < len(body); i++ {
			if body[i] != '\\' {
				b.WriteByte(body[i])
				continue
			}
			i++
			if i >= len(body) {
				return nil, fmt.Errorf("%s:%d: dangling escape in %q", file, line, text)
			}
			switch body[i] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case '"', '\\':
				b.WriteByte(body[i])
			default:
				return nil, fmt.Errorf("%s:%d: unsupported escape \\%c in %q", file, line, body[i], text)
			}
		}
		n.val = b.String()
		n.quoted = true
	case text == "~" || text == "null":
		n.val = ""
	default:
		n.val = text
	}
	return n, nil
}
