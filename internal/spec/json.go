package spec

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
)

// parseJSON reads a JSON document into the same line-numbered node tree
// the YAML reader produces, so the schema layer anchors errors
// identically for both syntaxes. Lines come from the decoder's byte
// offsets mapped through the newline positions of the source.
func parseJSON(file string, src []byte) (*node, error) {
	dec := json.NewDecoder(strings.NewReader(string(src)))
	dec.UseNumber()
	lines := newlineOffsets(src)
	root, err := decodeJSONValue(dec, file, lines)
	if err != nil {
		return nil, err
	}
	// Reject trailing content after the document.
	if tok, err := dec.Token(); err == nil {
		return nil, fmt.Errorf("%s:%d: unexpected content after the document: %v", file, lineAt(lines, dec.InputOffset()), tok)
	}
	return root, nil
}

// newlineOffsets returns the byte offsets of every newline, for mapping
// decoder offsets to 1-based line numbers.
func newlineOffsets(src []byte) []int64 {
	var out []int64
	for i, b := range src {
		if b == '\n' {
			out = append(out, int64(i))
		}
	}
	return out
}

func lineAt(lines []int64, off int64) int {
	return sort.Search(len(lines), func(i int) bool { return lines[i] >= off }) + 1
}

func decodeJSONValue(dec *json.Decoder, file string, lines []int64) (*node, error) {
	startLine := lineAt(lines, dec.InputOffset())
	tok, err := dec.Token()
	if err != nil {
		return nil, fmt.Errorf("%s:%d: %v", file, startLine, err)
	}
	line := lineAt(lines, dec.InputOffset())
	switch t := tok.(type) {
	case json.Delim:
		switch t {
		case '{':
			m := &node{kind: mapNode, line: line}
			for dec.More() {
				keyTok, err := dec.Token()
				if err != nil {
					return nil, fmt.Errorf("%s:%d: %v", file, lineAt(lines, dec.InputOffset()), err)
				}
				keyLine := lineAt(lines, dec.InputOffset())
				key, ok := keyTok.(string)
				if !ok {
					return nil, fmt.Errorf("%s:%d: object key is not a string: %v", file, keyLine, keyTok)
				}
				for _, k := range m.keys {
					if k == key {
						return nil, fmt.Errorf("%s:%d: duplicate key %q", file, keyLine, key)
					}
				}
				val, err := decodeJSONValue(dec, file, lines)
				if err != nil {
					return nil, err
				}
				m.keys = append(m.keys, key)
				m.keyLines = append(m.keyLines, keyLine)
				m.vals = append(m.vals, val)
			}
			if _, err := dec.Token(); err != nil { // consume '}'
				return nil, fmt.Errorf("%s:%d: %v", file, lineAt(lines, dec.InputOffset()), err)
			}
			return m, nil
		case '[':
			lst := &node{kind: listNode, line: line}
			for dec.More() {
				item, err := decodeJSONValue(dec, file, lines)
				if err != nil {
					return nil, err
				}
				lst.items = append(lst.items, item)
			}
			if _, err := dec.Token(); err != nil { // consume ']'
				return nil, fmt.Errorf("%s:%d: %v", file, lineAt(lines, dec.InputOffset()), err)
			}
			return lst, nil
		}
		return nil, fmt.Errorf("%s:%d: unexpected delimiter %v", file, line, t)
	case string:
		return &node{kind: scalarNode, line: line, val: t, quoted: true}, nil
	case json.Number:
		return &node{kind: scalarNode, line: line, val: t.String()}, nil
	case bool:
		return &node{kind: scalarNode, line: line, val: fmt.Sprintf("%v", t)}, nil
	case nil:
		return &node{kind: scalarNode, line: line, val: ""}, nil
	}
	return nil, fmt.Errorf("%s:%d: unexpected token %v", file, line, tok)
}
