package spec

import (
	"strings"
	"testing"

	"repro/internal/fault"
	"repro/internal/proto"
	"repro/internal/scenario"
	"repro/internal/sim"
)

func TestCompileOverlaysDefaults(t *testing.T) {
	src := `version: 1
scenario: softcbr
seed: 7
runtime: 5ms
cores: 2
batch: 1
load:
  rate: 2mpps
  size: 124
telemetry:
  interval: 1ms
`
	d, err := Parse([]byte(src), "t.yaml")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	name, s, err := d.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if name != "softcbr" {
		t.Fatalf("name = %q", name)
	}
	if s.Pattern != scenario.PatternSoftCBR {
		t.Fatalf("pattern %q did not come from DefaultSpec", s.Pattern)
	}
	if s.RateMpps != 2 || s.PktSize != 124 || s.Seed != 7 || s.Cores != 2 || s.Batch != 1 {
		t.Fatalf("overlay lost: %+v", s)
	}
	if s.Runtime != 5*sim.Millisecond || s.TelemetryInterval != sim.Millisecond {
		t.Fatalf("durations: runtime=%v interval=%v", s.Runtime, s.TelemetryInterval)
	}
}

func TestCompileFlowsAndChurn(t *testing.T) {
	src := `version: 1
scenario: churn
churn:
  flows: 512
  life: 8
`
	d, err := Parse([]byte(src), "t.yaml")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	_, s, err := d.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if s.ChurnFlows != 512 || s.ChurnLife != 8 {
		t.Fatalf("churn overlay: %+v", s)
	}
	if s.RateMpps != 10 {
		t.Fatalf("churn default rate lost: %v", s.RateMpps)
	}

	src = `version: 1
scenario: qos
flows:
  - name: fg
    src_ip: 10.0.0.1
    src_ip_count: 255
    dst_ip: 192.168.1.1
    src_port: 1234
    dst_port: 43
    tos: 0xb8
    rate: 0.1mpps
  - name: bg
    src_ip: 10.0.0.1
    dst_ip: 192.168.1.1
    dst_port: 42
    rate: 800kpps
`
	d, err = Parse([]byte(src), "t.yaml")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	_, s, err = d.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if len(s.Flows) != 2 {
		t.Fatalf("flows = %d", len(s.Flows))
	}
	fg := s.Flows[0]
	if fg.TOS != 0xb8 || fg.SrcIPCount != 255 || fg.RateMpps != 0.1 || fg.DstPort != 43 {
		t.Fatalf("fg = %+v", fg)
	}
	if fg.SrcIP != proto.MustIPv4("10.0.0.1") || fg.DstIP != proto.MustIPv4("192.168.1.1") {
		t.Fatalf("fg addrs = %+v", fg)
	}
	if bg := s.Flows[1]; bg.RateMpps != 0.8 || bg.L4 != "udp" {
		t.Fatalf("bg = %+v", bg)
	}
}

func TestCompileJSON(t *testing.T) {
	src := `{
  "version": 1,
  "scenario": "softcbr",
  "load": {"rate": "2mpps"},
  "runtime": "5ms"
}`
	d, err := Parse([]byte(src), "t.json")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	_, s, err := d.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if s.RateMpps != 2 || s.Runtime != 5*sim.Millisecond {
		t.Fatalf("spec = %+v", s)
	}
}

// TestValidateNegative pins the actionable, line-anchored messages the
// loader emits for the canonical authoring mistakes.
func TestValidateNegative(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string // every fragment must appear in the error
	}{
		{
			"unknown top-level key",
			"version: 1\nscenario: softcbr\nscenari: x\n",
			[]string{"t.yaml:3:", `unknown key "scenari"`, `did you mean "scenario"`},
		},
		{
			"unknown nested key",
			"version: 1\nscenario: softcbr\nload:\n  rat: 2mpps\n",
			[]string{"t.yaml:4:", `unknown key "load.rat"`, `did you mean "load.rate"`},
		},
		{
			"unknown flow key",
			"version: 1\nscenario: softcbr\nflows:\n  - name: a\n    src_ip: 10.0.0.1\n    dst_ip: 10.1.0.1\n    dscp: 4\n",
			[]string{"t.yaml:7:", `unknown key "flows.dscp"`},
		},
		{
			"missing version",
			"scenario: softcbr\n",
			[]string{"t.yaml:1:", `missing required key "version"`},
		},
		{
			"future version",
			"version: 2\nscenario: softcbr\n",
			[]string{"t.yaml:1:", "unsupported spec version 2", "version 1"},
		},
		{
			"unknown scenario",
			"version: 1\nscenario: warp-drive\n",
			[]string{"t.yaml:2:", `unknown scenario "warp-drive"`, "softcbr"},
		},
		{
			"bad duration unit",
			"version: 1\nscenario: softcbr\nruntime: 50 lightyears\n",
			[]string{"t.yaml:3:", `unknown unit "lightyears"`, "ns, us, ms, s"},
		},
		{
			"missing duration unit",
			"version: 1\nscenario: softcbr\nruntime: 50\n",
			[]string{"t.yaml:3:", "missing a unit", `"50ms"`},
		},
		{
			"bad rate unit",
			"version: 1\nscenario: softcbr\nload:\n  rate: 2gbps\n",
			[]string{"t.yaml:4:", `unknown unit "gbps"`, "pps, kpps, mpps"},
		},
		{
			"missing rate unit",
			"version: 1\nscenario: softcbr\nload:\n  rate: 2\n",
			[]string{"t.yaml:4:", "missing a unit", `"2mpps"`},
		},
		{
			"uneven flow sharding",
			"version: 1\nscenario: loss-overload\ncores: 3\n",
			[]string{"t.yaml:3:", "cores: 3 does not divide the flow count (4)", "loss-overload"},
		},
		{
			"uneven churn sharding",
			"version: 1\nscenario: churn\ncores: 3\nchurn:\n  flows: 1024\n",
			[]string{"t.yaml:3:", "does not divide the churn working set (1024)"},
		},
		{
			"cbr rate over link capacity",
			"version: 1\nscenario: cbr\nload:\n  rate: 20mpps\n",
			[]string{"t.yaml:4:", "exceeds the 10GbE line rate", "14.88 Mpps", "softcbr"},
		},
		{
			"flow rate over link capacity",
			"version: 1\nscenario: cbr\nload:\n  rate: 1mpps\nflows:\n  - name: hot\n    src_ip: 10.0.0.1\n    dst_ip: 10.1.0.1\n    rate: 16mpps\n",
			[]string{`flow "hot" rate 16 Mpps exceeds`},
		},
		{
			"single-core-only scenario sharded",
			"version: 1\nscenario: imix\ncores: 2\n",
			[]string{"t.yaml:3:", `"imix" is single-core only`},
		},
		{
			"pattern needs a rate",
			"version: 1\nscenario: flood\nload:\n  pattern: poisson\n",
			[]string{"t.yaml:4:", `pattern "poisson" needs a rate`},
		},
		{
			"unknown pattern",
			"version: 1\nscenario: flood\nload:\n  pattern: fractal\n",
			[]string{"t.yaml:4:", `unknown pattern "fractal"`},
		},
		{
			"bad ip",
			"version: 1\nscenario: softcbr\nflows:\n  - name: a\n    src_ip: 10.0.0.999\n    dst_ip: 10.1.0.1\n",
			[]string{"t.yaml:5:", "flows.src_ip"},
		},
		{
			"port out of range",
			"version: 1\nscenario: softcbr\nflows:\n  - name: a\n    src_ip: 10.0.0.1\n    dst_ip: 10.1.0.1\n    dst_port: 70000\n",
			[]string{"t.yaml:7:", "out of range [0, 65535]"},
		},
		{
			"frame size too small",
			"version: 1\nscenario: softcbr\nload:\n  size: 40\n",
			[]string{"t.yaml:4:", "out of range [60, 1514]"},
		},
		{
			"duplicate flow names",
			"version: 1\nscenario: softcbr\nflows:\n  - name: a\n    src_ip: 10.0.0.1\n    dst_ip: 10.1.0.1\n  - name: a\n    src_ip: 10.0.0.2\n    dst_ip: 10.1.0.1\n",
			[]string{"duplicate flow name \"a\""},
		},
		{
			"flow missing src_ip",
			"version: 1\nscenario: softcbr\nflows:\n  - name: a\n    dst_ip: 10.1.0.1\n",
			[]string{`flow "a" is missing "src_ip"`},
		},
		{
			"negative runtime",
			"version: 1\nscenario: softcbr\nruntime: -5ms\n",
			[]string{"t.yaml:3:", "must be positive"},
		},
		{
			"unknown fault key",
			"version: 1\nscenario: linkflap\nfaults:\n  - kind: linkflap\n    duration: 1ms\n    durration: 2ms\n",
			[]string{"t.yaml:6:", `unknown key "faults.durration"`, `did you mean "faults.duration"`},
		},
		{
			"unknown fault kind",
			"version: 1\nscenario: linkflap\nfaults:\n  - kind: meteor\n    duration: 1ms\n",
			[]string{"t.yaml:4:", `unknown fault kind "meteor"`, "linkflap, dut-stall, queue-pause, clock-step"},
		},
		{
			"fault missing kind",
			"version: 1\nscenario: linkflap\nfaults:\n  - duration: 1ms\n",
			[]string{"t.yaml:4:", `missing "kind"`},
		},
		{
			"fault duration without unit",
			"version: 1\nscenario: linkflap\nfaults:\n  - kind: linkflap\n    duration: 5\n",
			[]string{"t.yaml:5:", "missing a unit"},
		},
		{
			"windowed fault without duration",
			"version: 1\nscenario: linkflap\nfaults:\n  - kind: linkflap\n    at: 1ms\n",
			[]string{"t.yaml:3:", "faults:", "duration must be positive"},
		},
		{
			"fault period under duration",
			"version: 1\nscenario: linkflap\nfaults:\n  - kind: linkflap\n    duration: 2ms\n    period: 1ms\n",
			[]string{"t.yaml:3:", "must exceed the duration"},
		},
		{
			"clock step without offset or drift",
			"version: 1\nscenario: linkflap\nfaults:\n  - kind: clock-step\n    at: 1ms\n",
			[]string{"t.yaml:3:", "needs an offset or a drift rate"},
		},
		{
			"dut-stall without a dut topology",
			"version: 1\nscenario: linkflap\nfaults:\n  - kind: dut-stall\n    at: 1ms\n    duration: 1ms\n",
			[]string{"t.yaml:3:", "dut-stall", "topology.dut"},
		},
		{
			"uneven linkflap sharding",
			"version: 1\nscenario: linkflap\ncores: 3\n",
			[]string{"t.yaml:3:", "cores: 3 does not divide the flow count (4)", "linkflap"},
		},
		{
			"uneven overload-recover sharding",
			"version: 1\nscenario: overload-recover\ncores: 3\n",
			[]string{"t.yaml:3:", "cores: 3 does not divide the flow count (4)", "overload-recover"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := Validate([]byte(tc.src), "t.yaml")
			if err == nil {
				t.Fatalf("spec validated but should not have:\n%s", tc.src)
			}
			for _, w := range tc.want {
				if !strings.Contains(err.Error(), w) {
					t.Fatalf("error %q\nmissing fragment %q", err, w)
				}
			}
		})
	}
}

func TestValidateAcceptsRateCarriedByFlows(t *testing.T) {
	// The qos shape: no aggregate rate, but every flow shaped.
	src := `version: 1
scenario: qos
load:
  pattern: cbr
flows:
  - name: fg
    src_ip: 10.0.0.1
    dst_ip: 192.168.1.1
    rate: 0.1mpps
  - name: bg
    src_ip: 10.0.0.1
    dst_ip: 192.168.1.1
    rate: 0.8mpps
`
	if err := Validate([]byte(src), "t.yaml"); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestRateLineKeyword(t *testing.T) {
	src := "version: 1\nscenario: flood\nload:\n  rate: line\n"
	d, err := Parse([]byte(src), "t.yaml")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	_, s, err := d.Compile()
	if err != nil {
		t.Fatalf("Compile: %v", err)
	}
	if s.RateMpps != 0 {
		t.Fatalf("rate 'line' should compile to 0 (unshaped), got %v", s.RateMpps)
	}
}

func TestSplitUnit(t *testing.T) {
	cases := []struct{ in, num, unit string }{
		{"50ms", "50", "ms"},
		{"12.5µs", "12.5", "µs"},
		{"2mpps", "2", "mpps"},
		{"line", "", "line"},
		{"42", "42", ""},
	}
	for _, tc := range cases {
		num, unit := splitUnit(tc.in)
		if num != tc.num || unit != tc.unit {
			t.Errorf("splitUnit(%q) = (%q, %q), want (%q, %q)", tc.in, num, unit, tc.num, tc.unit)
		}
	}
}

func TestCompileFaults(t *testing.T) {
	src := `
version: 1
scenario: linkflap
runtime: 10ms
faults:
  - kind: linkflap
    at: 2ms
    duration: 1ms
    period: 4ms
    count: 2
  - kind: clock-step
    at: 3ms
    offset: -250us
    drift_ppm: 35
`
	d, err := Parse([]byte(src), "t.yaml")
	if err != nil {
		t.Fatal(err)
	}
	name, s, err := d.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if name != "linkflap" {
		t.Fatalf("scenario = %q", name)
	}
	if len(s.Faults) != 2 {
		t.Fatalf("plan length = %d, want 2 (the block replaces the default plan)", len(s.Faults))
	}
	ev := s.Faults[0]
	if ev.Kind != fault.LinkFlap || ev.At != 2*sim.Millisecond || ev.Duration != sim.Millisecond ||
		ev.Period != 4*sim.Millisecond || ev.Count != 2 {
		t.Fatalf("event 0 = %+v", ev)
	}
	ev = s.Faults[1]
	if ev.Kind != fault.ClockStep || ev.Offset != -250*sim.Microsecond || ev.DriftPPM != 35 {
		t.Fatalf("event 1 = %+v", ev)
	}
}

func TestFaultsBlockReplacesDefaultPlan(t *testing.T) {
	// Without a faults block, linkflap keeps its registered default.
	_, s, err := mustParse(t, "version: 1\nscenario: linkflap\n").Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) == 0 {
		t.Fatal("default plan missing without a faults block")
	}
	// An explicit empty list runs the scenario fault-free.
	_, s, err = mustParse(t, "version: 1\nscenario: linkflap\nfaults: []\n").Compile()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Faults) != 0 {
		t.Fatalf("faults: [] left %d events in the plan", len(s.Faults))
	}
}

func mustParse(t *testing.T, src string) *Document {
	t.Helper()
	d, err := Parse([]byte(src), "t.yaml")
	if err != nil {
		t.Fatal(err)
	}
	return d
}
