package spec

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/fault"
	"repro/internal/proto"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Version is the spec schema version this build reads. Documents carry
// an explicit `version:` key; unknown versions are rejected rather than
// best-effort parsed, so a spec never silently means something else
// under a different build. See docs/spec-reference.md for the
// compatibility policy.
const Version = 1

// Document is a parsed scenario spec: the scenario it composes plus the
// overlay of every field the file sets. Fields the file does not set
// stay nil and fall through to the registered scenario's DefaultSpec at
// Compile time, so a spec only says what it changes.
//
// Parse performs the full schema walk (unknown keys, types, units);
// Compile overlays onto the scenario's defaults and runs the semantic
// checks that need the merged view (pattern/rate coherence, link
// capacity, core sharding). Both stages anchor every error to the
// source line.
type Document struct {
	// File is the name errors are anchored to.
	File string
	// Scenario is the registered scenario the spec composes.
	Scenario string
	// Description is free-form text (reports and docs only).
	Description string

	scenarioLine int

	seed    *int64
	runtime *sim.Duration
	cores   *int
	batch   *int

	pattern *scenario.Pattern
	rate    *float64
	size    *int
	burst   *int
	steps   *int
	mix     []scenario.SizeShare

	flows    []scenario.Flow
	hasFlows bool

	churnFlows *int
	churnLife  *int

	probes  *int
	samples *int

	dut *bool

	telemetryInterval *sim.Duration
	telemetryDiag     *bool

	faults    fault.Plan
	hasFaults bool

	runtimeLine    int
	coresLine      int
	patternLine    int
	rateLine       int
	sizeLine       int
	flowsLine      int
	churnFlowsLine int
	faultsLine     int
}

// Load reads and parses a spec file (YAML by default, JSON when the
// file is .json or starts with '{').
func Load(path string) (*Document, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return Parse(src, filepath.Base(path))
}

// Parse parses a spec from bytes; name labels error messages
// ("name:line: ...").
func Parse(src []byte, name string) (*Document, error) {
	var (
		root *node
		err  error
	)
	if isJSON(src, name) {
		root, err = parseJSON(name, src)
	} else {
		root, err = parseYAML(name, src)
	}
	if err != nil {
		return nil, err
	}
	d := &Document{File: name}
	if err := d.walk(root); err != nil {
		return nil, err
	}
	return d, nil
}

// LoadFaults reads a standalone fault-plan file: a document whose root
// holds only a `faults:` block, in exactly the schema the spec file's
// block uses. The CLI's -faults flag loads one onto any scenario.
func LoadFaults(path string) (fault.Plan, error) {
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ParseFaults(src, filepath.Base(path))
}

// ParseFaults parses a standalone fault plan from bytes; name labels
// error messages. The plan is validated fail-closed, target
// availability aside (that needs the topology and happens at Execute).
func ParseFaults(src []byte, name string) (fault.Plan, error) {
	var (
		root *node
		err  error
	)
	if isJSON(src, name) {
		root, err = parseJSON(name, src)
	} else {
		root, err = parseYAML(name, src)
	}
	if err != nil {
		return nil, err
	}
	d := &Document{File: name}
	if root.kind != mapNode {
		return nil, d.errAt(root.line, "a fault-plan file must be a mapping with a \"faults\" block, got a %s", root.kindName())
	}
	if err := d.checkKeys(root, []string{"faults"}, ""); err != nil {
		return nil, err
	}
	n, line, ok := root.get("faults")
	if !ok {
		return nil, d.errAt(1, "missing required key \"faults\" (a list of fault event mappings)")
	}
	if err := d.walkFaults(n, line); err != nil {
		return nil, err
	}
	if err := d.faults.Validate(); err != nil {
		return nil, d.errAt(line, "faults: %v", err)
	}
	return d.faults, nil
}

// Validate parses and compiles a spec, returning the first error. This
// is the entry point the docs CI job drives fenced `yaml` snippets
// through: a snippet that validates is a snippet that runs.
func Validate(src []byte, name string) error {
	d, err := Parse(src, name)
	if err != nil {
		return err
	}
	_, _, err = d.Compile()
	return err
}

// Compile resolves the document into a runnable (scenario name,
// scenario.Spec) pair: the registered scenario's DefaultSpec overlaid
// with every field the file sets, then semantically validated as a
// whole. All interpretation happens here, at load time — the returned
// Spec drives exactly the same compiled-Go path as `moongen <name>`,
// so nothing spec-shaped survives into the hot path.
func (d *Document) Compile() (string, scenario.Spec, error) {
	sc, ok := scenario.Get(d.Scenario)
	if !ok {
		return "", scenario.Spec{}, d.errAt(d.scenarioLine,
			"scenario: unknown scenario %q (available: %s)", d.Scenario, strings.Join(scenario.Names(), ", "))
	}
	s := sc.DefaultSpec()
	if d.seed != nil {
		s.Seed = *d.seed
	}
	if d.runtime != nil {
		s.Runtime = *d.runtime
	}
	if d.cores != nil {
		s.Cores = *d.cores
	}
	if d.batch != nil {
		s.Batch = *d.batch
	}
	if d.pattern != nil {
		s.Pattern = *d.pattern
	}
	if d.rate != nil {
		s.RateMpps = *d.rate
	}
	if d.size != nil {
		s.PktSize = *d.size
	}
	if d.burst != nil {
		s.Burst = *d.burst
	}
	if d.steps != nil {
		s.Steps = *d.steps
	}
	if d.mix != nil {
		s.Mix = d.mix
	}
	if d.hasFlows {
		s.Flows = d.flows
	}
	if d.churnFlows != nil {
		s.ChurnFlows = *d.churnFlows
	}
	if d.churnLife != nil {
		s.ChurnLife = *d.churnLife
	}
	if d.probes != nil {
		s.Probes = *d.probes
	}
	if d.samples != nil {
		s.Samples = *d.samples
	}
	if d.dut != nil {
		s.UseDuT = *d.dut
	}
	if d.telemetryInterval != nil {
		s.TelemetryInterval = *d.telemetryInterval
	}
	if d.telemetryDiag != nil {
		s.TelemetryDiag = *d.telemetryDiag
	}
	if d.hasFaults {
		// An explicit `faults:` block replaces the scenario's default
		// plan entirely — `faults: []` runs the scenario fault-free.
		s.Faults = d.faults
	}
	if err := d.check(sc, s); err != nil {
		return "", scenario.Spec{}, err
	}
	return d.Scenario, s, nil
}

// check runs the semantic validations that need the merged
// (defaults + overlay) view of the spec.
func (d *Document) check(sc scenario.Scenario, s scenario.Spec) error {
	anchor := func(line int) int {
		if line > 0 {
			return line
		}
		return d.scenarioLine
	}

	if s.Cores > 1 {
		if sco, ok := sc.(scenario.SingleCoreOnly); ok {
			return d.errAt(anchor(d.coresLine),
				"cores: scenario %q is single-core only (%s); remove cores or set it to 1", d.Scenario, sco.SingleCoreOnly())
		}
	}

	switch s.Pattern {
	case scenario.PatternLineRate, "":
	case scenario.PatternCBR, scenario.PatternSoftCBR, scenario.PatternPoisson, scenario.PatternBursts:
		if s.RateMpps <= 0 && !flowsCarryRate(s) {
			return d.errAt(anchor(d.patternLine),
				"load.pattern: pattern %q needs a rate; set load.rate (e.g. \"2mpps\")", s.Pattern)
		}
	default:
		return d.errAt(anchor(d.patternLine),
			"load.pattern: unknown pattern %q (one of: linerate, cbr, softcbr, poisson, bursts)", s.Pattern)
	}

	// The cbr pattern models the NIC's hardware shaper, which cannot
	// oversubscribe the link — a spec asking for more than line rate is
	// a mistake, not an overload experiment (softcbr models overload:
	// it pushes the exact software grid regardless of wire capacity and
	// lets the link drop).
	if s.Pattern == scenario.PatternCBR {
		size := s.PktSize
		if size <= 0 {
			size = 60
		}
		capMpps := wire.LineRatePPS(wire.Speed10G, size+proto.FCSLen) / 1e6
		if s.RateMpps > capMpps {
			return d.errAt(anchor(d.rateLine),
				"load.rate: %g Mpps exceeds the 10GbE line rate (%.2f Mpps at %d-byte frames) — the cbr hardware shaper cannot oversubscribe the link; use pattern softcbr to model overload",
				s.RateMpps, capMpps, size+proto.FCSLen)
		}
		for _, f := range s.Flows {
			if f.RateMpps <= 0 {
				continue
			}
			fsize := f.PktSize
			if fsize <= 0 {
				fsize = size
			}
			fcap := wire.LineRatePPS(wire.Speed10G, fsize+proto.FCSLen) / 1e6
			if f.RateMpps > fcap {
				return d.errAt(anchor(d.flowsLine),
					"flows: flow %q rate %g Mpps exceeds the 10GbE line rate (%.2f Mpps at %d-byte frames)",
					f.Name, f.RateMpps, fcap, fsize+proto.FCSLen)
			}
		}
	}

	// Flow-tracked scenarios state their model per global slot index
	// with shard i of k owning slots j ≡ i (mod k); the partition is
	// only flow-preserving when cores divides the flow population.
	// Catching it here anchors the error to the spec line instead of
	// failing later inside the run.
	// Fault plans are fail-closed at load time: a plan the injector
	// would reject (or one whose targets the topology cannot provide)
	// is a spec error with a line anchor, not a runtime surprise.
	if len(s.Faults) > 0 {
		if err := s.Faults.Validate(); err != nil {
			return d.errAt(anchor(d.faultsLine), "faults: %v", err)
		}
		if s.Faults.RequiresDuT() && !s.UseDuT {
			return d.errAt(anchor(d.faultsLine),
				"faults: the plan contains dut-stall events but the topology has no DuT — set topology.dut: true")
		}
	}

	if s.Cores > 1 {
		switch d.Scenario {
		case "loss-overload", "reorder", "linkflap", "overload-recover":
			n := len(s.EffectiveFlows())
			if n%s.Cores != 0 {
				return d.errAt(anchor(d.coresLine),
					"cores: %d does not divide the flow count (%d) for scenario %q — every flow must live wholly in one shard", s.Cores, n, d.Scenario)
			}
		case "churn":
			w := s.ChurnFlows
			if w <= 0 {
				w = 1024
			}
			if w%s.Cores != 0 {
				return d.errAt(anchor(d.coresLine),
					"cores: %d does not divide the churn working set (%d) — every flow must live wholly in one shard", s.Cores, w)
			}
		}
	}

	seen := map[string]bool{}
	for _, f := range s.Flows {
		if seen[f.Name] {
			return d.errAt(anchor(d.flowsLine), "flows: duplicate flow name %q (reports merge per-flow stats by name)", f.Name)
		}
		seen[f.Name] = true
	}
	return nil
}

// flowsCarryRate reports whether every declared flow has its own rate,
// which satisfies rate-requiring patterns without an aggregate rate
// (the qos shape: per-flow hardware shaping).
func flowsCarryRate(s scenario.Spec) bool {
	if len(s.Flows) == 0 {
		return false
	}
	for _, f := range s.Flows {
		if f.RateMpps <= 0 {
			return false
		}
	}
	return true
}

func isJSON(src []byte, name string) bool {
	if strings.HasSuffix(name, ".json") {
		return true
	}
	for _, b := range src {
		switch b {
		case ' ', '\t', '\n', '\r':
			continue
		case '{':
			return true
		default:
			return false
		}
	}
	return false
}

func (d *Document) errAt(line int, format string, args ...any) error {
	return fmt.Errorf("%s:%d: %s", d.File, line, fmt.Sprintf(format, args...))
}

// ---------------------------------------------------------------------
// Schema walk
// ---------------------------------------------------------------------

var topKeys = []string{"version", "scenario", "description", "seed", "runtime", "cores", "batch", "load", "flows", "churn", "probes", "topology", "telemetry", "faults"}
var loadKeys = []string{"pattern", "rate", "size", "burst", "steps", "mix"}
var mixKeys = []string{"size", "weight"}
var flowKeys = []string{"name", "l4", "src_ip", "src_ip_count", "dst_ip", "src_port", "dst_port", "tos", "rate", "size"}
var churnKeys = []string{"flows", "life"}
var probesKeys = []string{"latency", "samples"}
var topologyKeys = []string{"dut"}
var telemetryKeys = []string{"interval", "diag"}
var faultKeys = []string{"kind", "at", "duration", "period", "count", "flush", "offset", "drift_ppm"}

func (d *Document) walk(root *node) error {
	if root.kind != mapNode {
		return d.errAt(root.line, "the document root must be a mapping (\"key: value\" lines), got a %s", root.kindName())
	}
	if err := d.checkKeys(root, topKeys, ""); err != nil {
		return err
	}

	vn, line, ok := root.get("version")
	if !ok {
		return d.errAt(1, "missing required key \"version\" (this build reads version %d)", Version)
	}
	v, err := d.intField(vn, line, "version", 1, math.MaxInt32)
	if err != nil {
		return err
	}
	if v != Version {
		return d.errAt(line, "version: unsupported spec version %d (this build reads version %d); see docs/spec-reference.md for the compatibility policy", v, Version)
	}

	sn, line, ok := root.get("scenario")
	if !ok {
		return d.errAt(1, "missing required key \"scenario\" (one of: %s)", strings.Join(scenario.Names(), ", "))
	}
	d.Scenario, err = d.strField(sn, line, "scenario")
	if err != nil {
		return err
	}
	d.scenarioLine = line

	if n, line, ok := root.get("description"); ok {
		if d.Description, err = d.strField(n, line, "description"); err != nil {
			return err
		}
	}
	if n, line, ok := root.get("seed"); ok {
		v, err := d.intField(n, line, "seed", math.MinInt64, math.MaxInt64)
		if err != nil {
			return err
		}
		d.seed = &v
	}
	if n, line, ok := root.get("runtime"); ok {
		v, err := d.durField(n, line, "runtime")
		if err != nil {
			return err
		}
		d.runtime, d.runtimeLine = &v, line
	}
	if n, line, ok := root.get("cores"); ok {
		v, err := d.intField(n, line, "cores", 1, 1024)
		if err != nil {
			return err
		}
		c := int(v)
		d.cores, d.coresLine = &c, line
	}
	if n, line, ok := root.get("batch"); ok {
		v, err := d.intField(n, line, "batch", 1, 512)
		if err != nil {
			return err
		}
		b := int(v)
		d.batch = &b
	}
	if n, line, ok := root.get("load"); ok {
		if err := d.walkLoad(n, line); err != nil {
			return err
		}
	}
	if n, line, ok := root.get("flows"); ok {
		if err := d.walkFlows(n, line); err != nil {
			return err
		}
	}
	if n, line, ok := root.get("churn"); ok {
		if err := d.walkChurn(n, line); err != nil {
			return err
		}
	}
	if n, line, ok := root.get("probes"); ok {
		if err := d.walkProbes(n, line); err != nil {
			return err
		}
	}
	if n, line, ok := root.get("topology"); ok {
		if err := d.walkTopology(n, line); err != nil {
			return err
		}
	}
	if n, line, ok := root.get("telemetry"); ok {
		if err := d.walkTelemetry(n, line); err != nil {
			return err
		}
	}
	if n, line, ok := root.get("faults"); ok {
		if err := d.walkFaults(n, line); err != nil {
			return err
		}
	}
	return nil
}

func (d *Document) walkLoad(n *node, line int) error {
	if n.kind != mapNode {
		return d.errAt(line, "load: expected a mapping, got a %s", n.kindName())
	}
	if err := d.checkKeys(n, loadKeys, "load."); err != nil {
		return err
	}
	if pn, pline, ok := n.get("pattern"); ok {
		v, err := d.strField(pn, pline, "load.pattern")
		if err != nil {
			return err
		}
		p := scenario.Pattern(v)
		switch p {
		case scenario.PatternLineRate, scenario.PatternCBR, scenario.PatternSoftCBR, scenario.PatternPoisson, scenario.PatternBursts:
		default:
			return d.errAt(pline, "load.pattern: unknown pattern %q (one of: linerate, cbr, softcbr, poisson, bursts)", v)
		}
		d.pattern, d.patternLine = &p, pline
	}
	if rn, rline, ok := n.get("rate"); ok {
		v, err := d.rateField(rn, rline, "load.rate")
		if err != nil {
			return err
		}
		d.rate, d.rateLine = &v, rline
	}
	if sn, sline, ok := n.get("size"); ok {
		v, err := d.frameSize(sn, sline, "load.size")
		if err != nil {
			return err
		}
		d.size, d.sizeLine = &v, sline
	}
	if bn, bline, ok := n.get("burst"); ok {
		v, err := d.intField(bn, bline, "load.burst", 1, 4096)
		if err != nil {
			return err
		}
		b := int(v)
		d.burst = &b
	}
	if sn, sline, ok := n.get("steps"); ok {
		v, err := d.intField(sn, sline, "load.steps", 1, 1024)
		if err != nil {
			return err
		}
		s := int(v)
		d.steps = &s
	}
	if mn, mline, ok := n.get("mix"); ok {
		if mn.kind != listNode {
			return d.errAt(mline, "load.mix: expected a list of {size, weight} entries, got a %s", mn.kindName())
		}
		mix := make([]scenario.SizeShare, 0, len(mn.items))
		for _, item := range mn.items {
			if item.kind != mapNode {
				return d.errAt(item.line, "load.mix: each entry must be a {size, weight} mapping, got a %s", item.kindName())
			}
			if err := d.checkKeys(item, mixKeys, "load.mix."); err != nil {
				return err
			}
			sn, sline, ok := item.get("size")
			if !ok {
				return d.errAt(item.line, "load.mix: entry is missing \"size\"")
			}
			size, err := d.frameSize(sn, sline, "load.mix.size")
			if err != nil {
				return err
			}
			wn, wline, ok := item.get("weight")
			if !ok {
				return d.errAt(item.line, "load.mix: entry is missing \"weight\"")
			}
			w, err := d.intField(wn, wline, "load.mix.weight", 1, math.MaxInt32)
			if err != nil {
				return err
			}
			mix = append(mix, scenario.SizeShare{Size: size, Weight: int(w)})
		}
		if len(mix) == 0 {
			return d.errAt(mline, "load.mix: the mix cannot be empty")
		}
		d.mix = mix
	}
	return nil
}

func (d *Document) walkFlows(n *node, line int) error {
	if n.kind != listNode {
		return d.errAt(line, "flows: expected a list of flow mappings, got a %s", n.kindName())
	}
	d.flowsLine = line
	d.hasFlows = true
	d.flows = make([]scenario.Flow, 0, len(n.items))
	for i, item := range n.items {
		if item.kind != mapNode {
			return d.errAt(item.line, "flows: each entry must be a mapping, got a %s", item.kindName())
		}
		if err := d.checkKeys(item, flowKeys, "flows."); err != nil {
			return err
		}
		f := scenario.Flow{L4: "udp"}
		if nn, nline, ok := item.get("name"); ok {
			v, err := d.strField(nn, nline, "flows.name")
			if err != nil {
				return err
			}
			f.Name = v
		} else {
			f.Name = fmt.Sprintf("f%d", i)
		}
		if ln, lline, ok := item.get("l4"); ok {
			v, err := d.strField(ln, lline, "flows.l4")
			if err != nil {
				return err
			}
			if v != "udp" && v != "tcp" {
				return d.errAt(lline, "flows.l4: unknown transport %q (one of: udp, tcp)", v)
			}
			f.L4 = v
		}
		sn, sline, ok := item.get("src_ip")
		if !ok {
			return d.errAt(item.line, "flows: flow %q is missing \"src_ip\"", f.Name)
		}
		ip, err := d.ipField(sn, sline, "flows.src_ip")
		if err != nil {
			return err
		}
		f.SrcIP = ip
		if cn, cline, ok := item.get("src_ip_count"); ok {
			v, err := d.intField(cn, cline, "flows.src_ip_count", 1, 1<<24)
			if err != nil {
				return err
			}
			f.SrcIPCount = int(v)
		}
		dn, dline, ok := item.get("dst_ip")
		if !ok {
			return d.errAt(item.line, "flows: flow %q is missing \"dst_ip\"", f.Name)
		}
		ip, err = d.ipField(dn, dline, "flows.dst_ip")
		if err != nil {
			return err
		}
		f.DstIP = ip
		if pn, pline, ok := item.get("src_port"); ok {
			v, err := d.intField(pn, pline, "flows.src_port", 0, 65535)
			if err != nil {
				return err
			}
			f.SrcPort = uint16(v)
		}
		if pn, pline, ok := item.get("dst_port"); ok {
			v, err := d.intField(pn, pline, "flows.dst_port", 0, 65535)
			if err != nil {
				return err
			}
			f.DstPort = uint16(v)
		}
		if tn, tline, ok := item.get("tos"); ok {
			v, err := d.intField(tn, tline, "flows.tos", 0, 255)
			if err != nil {
				return err
			}
			f.TOS = uint8(v)
		}
		if rn, rline, ok := item.get("rate"); ok {
			v, err := d.rateField(rn, rline, "flows.rate")
			if err != nil {
				return err
			}
			f.RateMpps = v
		}
		if zn, zline, ok := item.get("size"); ok {
			v, err := d.frameSize(zn, zline, "flows.size")
			if err != nil {
				return err
			}
			f.PktSize = v
		}
		d.flows = append(d.flows, f)
	}
	return nil
}

func (d *Document) walkChurn(n *node, line int) error {
	if n.kind != mapNode {
		return d.errAt(line, "churn: expected a mapping, got a %s", n.kindName())
	}
	if err := d.checkKeys(n, churnKeys, "churn."); err != nil {
		return err
	}
	if fn, fline, ok := n.get("flows"); ok {
		v, err := d.intField(fn, fline, "churn.flows", 1, 1<<28)
		if err != nil {
			return err
		}
		w := int(v)
		d.churnFlows, d.churnFlowsLine = &w, fline
	}
	if ln, lline, ok := n.get("life"); ok {
		v, err := d.intField(ln, lline, "churn.life", 1, math.MaxInt32)
		if err != nil {
			return err
		}
		l := int(v)
		d.churnLife = &l
	}
	return nil
}

func (d *Document) walkProbes(n *node, line int) error {
	if n.kind != mapNode {
		return d.errAt(line, "probes: expected a mapping, got a %s", n.kindName())
	}
	if err := d.checkKeys(n, probesKeys, "probes."); err != nil {
		return err
	}
	if ln, lline, ok := n.get("latency"); ok {
		v, err := d.intField(ln, lline, "probes.latency", 0, math.MaxInt32)
		if err != nil {
			return err
		}
		p := int(v)
		d.probes = &p
	}
	if sn, sline, ok := n.get("samples"); ok {
		v, err := d.intField(sn, sline, "probes.samples", 0, math.MaxInt32)
		if err != nil {
			return err
		}
		s := int(v)
		d.samples = &s
	}
	return nil
}

func (d *Document) walkTopology(n *node, line int) error {
	if n.kind != mapNode {
		return d.errAt(line, "topology: expected a mapping, got a %s", n.kindName())
	}
	if err := d.checkKeys(n, topologyKeys, "topology."); err != nil {
		return err
	}
	if dn, dline, ok := n.get("dut"); ok {
		v, err := d.boolField(dn, dline, "topology.dut")
		if err != nil {
			return err
		}
		d.dut = &v
	}
	return nil
}

func (d *Document) walkTelemetry(n *node, line int) error {
	if n.kind != mapNode {
		return d.errAt(line, "telemetry: expected a mapping, got a %s", n.kindName())
	}
	if err := d.checkKeys(n, telemetryKeys, "telemetry."); err != nil {
		return err
	}
	if in, iline, ok := n.get("interval"); ok {
		v, err := d.durField(in, iline, "telemetry.interval")
		if err != nil {
			return err
		}
		d.telemetryInterval = &v
	}
	if dn, dline, ok := n.get("diag"); ok {
		v, err := d.boolField(dn, dline, "telemetry.diag")
		if err != nil {
			return err
		}
		d.telemetryDiag = &v
	}
	return nil
}

// walkFaults reads the `faults:` block — a list of typed fault events
// executed on the run's global sim-time grid (see internal/fault). The
// walk checks keys, types and units per event; plan-level coherence
// (window/period arithmetic, kind-specific field rules, target
// availability) runs in check against the merged spec, still anchored
// to this block's line.
func (d *Document) walkFaults(n *node, line int) error {
	if n.kind != listNode {
		return d.errAt(line, "faults: expected a list of fault event mappings, got a %s", n.kindName())
	}
	d.faultsLine = line
	d.hasFaults = true
	d.faults = make(fault.Plan, 0, len(n.items))
	for _, item := range n.items {
		if item.kind != mapNode {
			return d.errAt(item.line, "faults: each entry must be a mapping, got a %s", item.kindName())
		}
		if err := d.checkKeys(item, faultKeys, "faults."); err != nil {
			return err
		}
		var ev fault.Event
		kn, kline, ok := item.get("kind")
		if !ok {
			return d.errAt(item.line, "faults: event is missing \"kind\" (one of: linkflap, dut-stall, queue-pause, clock-step)")
		}
		kind, err := d.strField(kn, kline, "faults.kind")
		if err != nil {
			return err
		}
		switch fault.Kind(kind) {
		case fault.LinkFlap, fault.DuTStall, fault.QueuePause, fault.ClockStep:
			ev.Kind = fault.Kind(kind)
		default:
			return d.errAt(kline, "faults.kind: unknown fault kind %q (one of: linkflap, dut-stall, queue-pause, clock-step)", kind)
		}
		if an, aline, ok := item.get("at"); ok {
			v, err := d.durFieldZero(an, aline, "faults.at")
			if err != nil {
				return err
			}
			ev.At = v
		}
		if dn, dline, ok := item.get("duration"); ok {
			v, err := d.durField(dn, dline, "faults.duration")
			if err != nil {
				return err
			}
			ev.Duration = v
		}
		if pn, pline, ok := item.get("period"); ok {
			v, err := d.durField(pn, pline, "faults.period")
			if err != nil {
				return err
			}
			ev.Period = v
		}
		if cn, cline, ok := item.get("count"); ok {
			v, err := d.intField(cn, cline, "faults.count", 1, math.MaxInt32)
			if err != nil {
				return err
			}
			ev.Count = int(v)
		}
		if fn, fline, ok := item.get("flush"); ok {
			v, err := d.boolField(fn, fline, "faults.flush")
			if err != nil {
				return err
			}
			ev.Flush = v
		}
		if on, oline, ok := item.get("offset"); ok {
			// A clock step may go backwards: signed duration.
			v, err := d.durFieldSigned(on, oline, "faults.offset")
			if err != nil {
				return err
			}
			ev.Offset = v
		}
		if rn, rline, ok := item.get("drift_ppm"); ok {
			raw, err := d.scalar(rn, rline, "faults.drift_ppm")
			if err != nil {
				return err
			}
			v, err := strconv.ParseFloat(raw, 64)
			if err != nil {
				return d.errAt(rline, "faults.drift_ppm: %q is not a number", raw)
			}
			ev.DriftPPM = v
		}
		d.faults = append(d.faults, ev)
	}
	return nil
}

// checkKeys rejects keys outside the allowed set, with a "did you
// mean" suggestion when a known key is within edit distance 2. The
// schema is fail-closed on purpose: a typoed key that silently
// defaulted would corrupt an experiment without a trace.
func (d *Document) checkKeys(n *node, allowed []string, prefix string) error {
	for i, k := range n.keys {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if ok {
			continue
		}
		msg := fmt.Sprintf("unknown key %q", prefix+k)
		if s := suggest(k, allowed); s != "" {
			msg += fmt.Sprintf(" (did you mean %q?)", prefix+s)
		} else {
			sort.Strings(allowed)
			msg += fmt.Sprintf(" (valid keys: %s)", strings.Join(allowed, ", "))
		}
		return d.errAt(n.keyLines[i], "%s", msg)
	}
	return nil
}

// suggest returns the closest allowed key within edit distance 2.
func suggest(key string, allowed []string) string {
	best, bestDist := "", 3
	for _, a := range allowed {
		if dist := editDistance(key, a); dist < bestDist {
			best, bestDist = a, dist
		}
	}
	return best
}

func editDistance(a, b string) int {
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(min(cur[j-1]+1, prev[j]+1), prev[j-1]+cost)
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}

// ---------------------------------------------------------------------
// Scalar field readers
// ---------------------------------------------------------------------

func (d *Document) scalar(n *node, line int, field string) (string, error) {
	if n.kind != scalarNode {
		return "", d.errAt(line, "%s: expected a scalar value, got a %s", field, n.kindName())
	}
	return n.val, nil
}

func (d *Document) strField(n *node, line int, field string) (string, error) {
	v, err := d.scalar(n, line, field)
	if err != nil {
		return "", err
	}
	if v == "" {
		return "", d.errAt(line, "%s: value is empty", field)
	}
	return v, nil
}

func (d *Document) intField(n *node, line int, field string, lo, hi int64) (int64, error) {
	raw, err := d.scalar(n, line, field)
	if err != nil {
		return 0, err
	}
	// Base 0 accepts 0x-prefixed hex, which reads naturally for TOS
	// and DSCP bytes ("tos: 0xb8").
	v, err := strconv.ParseInt(raw, 0, 64)
	if err != nil {
		return 0, d.errAt(line, "%s: %q is not an integer", field, raw)
	}
	if v < lo || v > hi {
		return 0, d.errAt(line, "%s: %d is out of range [%d, %d]", field, v, lo, hi)
	}
	return v, nil
}

func (d *Document) boolField(n *node, line int, field string) (bool, error) {
	raw, err := d.scalar(n, line, field)
	if err != nil {
		return false, err
	}
	switch raw {
	case "true":
		return true, nil
	case "false":
		return false, nil
	}
	return false, d.errAt(line, "%s: %q is not a boolean (true or false)", field, raw)
}

// frameSize reads a frame size in bytes without FCS, bounded to what
// the modeled 10GbE MAC accepts.
func (d *Document) frameSize(n *node, line int, field string) (int, error) {
	v, err := d.intField(n, line, field, 60, 1514)
	if err != nil {
		return 0, err
	}
	return int(v), nil
}

// durField reads a duration scalar with an explicit unit: "50ms",
// "2s", "100us", "500ns". A bare number is rejected — durations
// without units have caused enough outages elsewhere.
func (d *Document) durField(n *node, line int, field string) (sim.Duration, error) {
	dur, err := d.durFieldSigned(n, line, field)
	if err != nil {
		return 0, err
	}
	if dur <= 0 {
		return 0, d.errAt(line, "%s: duration must be positive, got %v", field, dur)
	}
	return dur, nil
}

// durFieldZero is durField but admits zero ("at: 0ms" — a fault at the
// exact run start).
func (d *Document) durFieldZero(n *node, line int, field string) (sim.Duration, error) {
	dur, err := d.durFieldSigned(n, line, field)
	if err != nil {
		return 0, err
	}
	if dur < 0 {
		return 0, d.errAt(line, "%s: duration must be ≥ 0, got %v", field, dur)
	}
	return dur, nil
}

// durFieldSigned reads a duration that may be negative (a clock step
// backwards). Units are still mandatory.
func (d *Document) durFieldSigned(n *node, line int, field string) (sim.Duration, error) {
	raw, err := d.scalar(n, line, field)
	if err != nil {
		return 0, err
	}
	num, unit := splitUnit(raw)
	var scale sim.Duration
	switch unit {
	case "ns":
		scale = sim.Nanosecond
	case "us", "µs":
		scale = sim.Microsecond
	case "ms":
		scale = sim.Millisecond
	case "s":
		scale = sim.Second
	case "":
		return 0, d.errAt(line, "%s: %q is missing a unit — write e.g. \"50ms\" (units: ns, us, ms, s)", field, raw)
	default:
		return 0, d.errAt(line, "%s: unknown unit %q in %q (units: ns, us, ms, s)", field, unit, raw)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || num == "" {
		return 0, d.errAt(line, "%s: %q is not a duration — write e.g. \"50ms\"", field, raw)
	}
	return sim.Duration(math.Round(v * float64(scale))), nil
}

// rateField reads a packet rate in Mpps: "2mpps", "500kpps",
// "14880952pps", or the word "line" for unshaped line rate.
func (d *Document) rateField(n *node, line int, field string) (float64, error) {
	raw, err := d.scalar(n, line, field)
	if err != nil {
		return 0, err
	}
	if raw == "line" {
		return 0, nil
	}
	num, unit := splitUnit(raw)
	var scale float64
	switch unit {
	case "mpps":
		scale = 1
	case "kpps":
		scale = 1e-3
	case "pps":
		scale = 1e-6
	case "":
		return 0, d.errAt(line, "%s: %q is missing a unit — write e.g. \"2mpps\" (units: pps, kpps, mpps) or \"line\"", field, raw)
	default:
		return 0, d.errAt(line, "%s: unknown unit %q in %q (units: pps, kpps, mpps; or \"line\")", field, unit, raw)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil || num == "" {
		return 0, d.errAt(line, "%s: %q is not a rate — write e.g. \"2mpps\"", field, raw)
	}
	if v <= 0 {
		return 0, d.errAt(line, "%s: rate must be positive, got %q", field, raw)
	}
	return v * scale, nil
}

func (d *Document) ipField(n *node, line int, field string) (proto.IPv4, error) {
	raw, err := d.strField(n, line, field)
	if err != nil {
		return 0, err
	}
	ip, err := proto.ParseIPv4(raw)
	if err != nil {
		return 0, d.errAt(line, "%s: %v", field, err)
	}
	return ip, nil
}

// splitUnit splits "12.5ms" into ("12.5", "ms"). The unit is the
// trailing run of letters (lowercased); the number is everything
// before it.
func splitUnit(raw string) (num, unit string) {
	raw = strings.TrimSpace(raw)
	i := len(raw)
	for i > 0 {
		c := raw[i-1]
		if (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == 'µ' {
			i--
			continue
		}
		break
	}
	// Multi-byte µ: back up to the rune start if we landed mid-rune.
	for i > 0 && i < len(raw) && raw[i]&0xC0 == 0x80 {
		i--
	}
	return strings.TrimSpace(raw[:i]), strings.ToLower(raw[i:])
}
