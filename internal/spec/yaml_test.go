package spec

import (
	"strings"
	"testing"
)

func mustParseYAML(t *testing.T, src string) *node {
	t.Helper()
	n, err := parseYAML("test.yaml", []byte(src))
	if err != nil {
		t.Fatalf("parseYAML: %v", err)
	}
	return n
}

func TestYAMLNestedMapsListsAndScalars(t *testing.T) {
	root := mustParseYAML(t, `
# a comment
version: 1
scenario: softcbr   # trailing comment
load:
  rate: 2mpps
  mix:
    - {size: 60, weight: 7}
    - size: 590
      weight: 4
flows:
  - name: fg
    tos: 0xb8
  - name: bg
tags: [a, b, 'c d']
empty:
quoted: "a # not a comment"
`)
	if root.kind != mapNode {
		t.Fatalf("root kind = %v", root.kind)
	}
	if got := len(root.keys); got != 7 {
		t.Fatalf("top-level keys = %d (%v)", got, root.keys)
	}
	v, line, ok := root.get("version")
	if !ok || v.val != "1" || line != 3 {
		t.Fatalf("version = %q at line %d, ok=%v", v.val, line, ok)
	}
	sc, _, _ := root.get("scenario")
	if sc.val != "softcbr" {
		t.Fatalf("scenario = %q (trailing comment not stripped?)", sc.val)
	}
	load, _, _ := root.get("load")
	if load.kind != mapNode {
		t.Fatalf("load is %s", load.kindName())
	}
	mix, _, _ := load.get("mix")
	if mix.kind != listNode || len(mix.items) != 2 {
		t.Fatalf("mix = %+v", mix)
	}
	if s, _, _ := mix.items[0].get("size"); s.val != "60" {
		t.Fatalf("inline mix size = %q", s.val)
	}
	if w, _, _ := mix.items[1].get("weight"); w.val != "4" {
		t.Fatalf("dash-line map weight = %q", w.val)
	}
	flows, _, _ := root.get("flows")
	if len(flows.items) != 2 {
		t.Fatalf("flows = %d items", len(flows.items))
	}
	if name, nline, _ := flows.items[0].get("name"); name.val != "fg" || nline != 12 {
		t.Fatalf("flow name = %q at %d", name.val, nline)
	}
	tags, _, _ := root.get("tags")
	if len(tags.items) != 3 || tags.items[2].val != "c d" {
		t.Fatalf("tags = %+v", tags)
	}
	empty, _, _ := root.get("empty")
	if empty.kind != scalarNode || empty.val != "" {
		t.Fatalf("empty = %+v", empty)
	}
	q, _, _ := root.get("quoted")
	if q.val != "a # not a comment" || !q.quoted {
		t.Fatalf("quoted = %q", q.val)
	}
}

func TestYAMLLineNumbers(t *testing.T) {
	root := mustParseYAML(t, "a: 1\n\n# gap\nb:\n  c: 2\n")
	if _, line, _ := root.get("a"); line != 1 {
		t.Fatalf("a at line %d", line)
	}
	b, line, _ := root.get("b")
	if line != 4 {
		t.Fatalf("b at line %d", line)
	}
	if c, cline, _ := b.get("c"); c.val != "2" || cline != 5 {
		t.Fatalf("c = %q at line %d", c.val, cline)
	}
}

func TestYAMLErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"tab indent", "a: 1\n\tb: 2\n", "test.yaml:2: tab"},
		{"duplicate key", "a: 1\na: 2\n", "test.yaml:2: duplicate key \"a\""},
		{"bad indent", "a:\n  b: 1\n   c: 2\n", "test.yaml:3:"},
		{"anchor", "a: &x 1\n", "anchors/aliases are not supported"},
		{"block scalar", "a: |\n  text\n", "block scalars"},
		{"unclosed inline map", "a: {b: 1\n", "not closed"},
		{"empty doc", "# nothing\n", "empty document"},
		{"not a map entry", "a:\n  - 1\njust words\n", "test.yaml:3:"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML("test.yaml", []byte(tc.src))
			if err == nil {
				t.Fatalf("no error for %q", tc.src)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestYAMLQuotedScalars(t *testing.T) {
	root := mustParseYAML(t, `a: "x\ny"`+"\nb: 'it''s'\nc: \"tab\\there\"\n")
	if a, _, _ := root.get("a"); a.val != "x\ny" {
		t.Fatalf("a = %q", a.val)
	}
	if b, _, _ := root.get("b"); b.val != "it's" {
		t.Fatalf("b = %q", b.val)
	}
	if c, _, _ := root.get("c"); c.val != "tab\there" {
		t.Fatalf("c = %q", c.val)
	}
}

func TestJSONParsing(t *testing.T) {
	src := `{
  "version": 1,
  "scenario": "softcbr",
  "load": {"rate": "2mpps"},
  "flows": [{"name": "f0", "src_ip": "10.0.0.1", "dst_ip": "10.1.0.1"}]
}`
	root, err := parseJSON("test.json", []byte(src))
	if err != nil {
		t.Fatalf("parseJSON: %v", err)
	}
	if v, line, _ := root.get("version"); v.val != "1" || line != 2 {
		t.Fatalf("version = %q at line %d", v.val, line)
	}
	load, line, _ := root.get("load")
	if load.kind != mapNode || line != 4 {
		t.Fatalf("load %s at line %d", load.kindName(), line)
	}
	flows, _, _ := root.get("flows")
	if len(flows.items) != 1 {
		t.Fatalf("flows = %+v", flows)
	}

	if _, err := parseJSON("test.json", []byte(`{"a": 1, "a": 2}`)); err == nil || !strings.Contains(err.Error(), "duplicate key") {
		t.Fatalf("duplicate JSON key not rejected: %v", err)
	}
}
