package core

import (
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/rate"
	"repro/internal/sim"
	"repro/internal/wire"
)

// GapTx is the paper's novel software rate control (§8): the wire is
// kept completely saturated; gaps between real packets are filled with
// invalid frames (bad FCS, sometimes sub-minimum length) whose lengths
// define the inter-departure times exactly. Because the transmit queue
// never runs dry, DMA timing is irrelevant — precision is the line's
// byte granularity, 0.8 ns at 10 GbE.
type GapTx struct {
	Queue   *nic.TxQueue
	Pattern rate.Pattern
	// PktSize is the real frame size without FCS.
	PktSize int
	// Fill crafts each real packet (sequence number i).
	Fill func(m *mempool.Mbuf, i uint64)
	// MinFillerWire overrides the 76-byte filler floor (§8.1).
	MinFillerWire int

	// Sent counts real packets, Fillers invalid ones.
	Sent    uint64
	Fillers uint64
	// SkippedGaps counts gaps below the representable minimum that
	// were folded into later gaps (§8.4).
	SkippedGaps uint64
}

// Run transmits until the run ends. It must run as its own task.
func (g *GapTx) Run(t *Task) {
	port := g.Queue.Port()
	byteTime := wire.ByteTime(port.Speed())
	filler := rate.NewGapFiller(byteTime)
	if g.MinFillerWire > 0 {
		filler.MinFillerWire = g.MinFillerWire
	}

	pool := mempool.New(mempool.Config{Count: 2048})
	rng := t.Engine().Rand()
	realWire := int64(g.PktSize + proto.FCSLen + proto.WireOverhead)

	var i uint64
	for t.Running() {
		m := pool.Alloc(g.PktSize)
		if m == nil {
			t.Sleep(backoff)
			continue
		}
		if g.Fill != nil {
			g.Fill(m, i)
		}
		if t.SendAll(g.Queue, []*mempool.Mbuf{m}) != 1 {
			break
		}
		g.Sent++
		i++

		gapBytes := filler.GapToWireBytes(g.Pattern.NextGap(rng)) - realWire
		before := filler.Skipped
		for _, wireLen := range filler.FillGap(gapBytes) {
			frameLen := wireLen - proto.FCSLen - proto.WireOverhead
			fm := pool.Alloc(frameLen)
			for fm == nil {
				t.Sleep(backoff)
				fm = pool.Alloc(frameLen)
			}
			// Filler frames carry a broken FCS so the DuT's NIC
			// drops them in hardware without any software activity.
			proto.EthHdr(fm.Payload()[:proto.EthHdrLen]).Fill(proto.EthFill{
				Src: port.MAC(), Dst: proto.BroadcastMAC, EtherType: 0x0000,
			})
			fm.TxMeta.InvalidCRC = true
			if t.SendAll(g.Queue, []*mempool.Mbuf{fm}) != 1 {
				return
			}
			g.Fillers++
		}
		g.SkippedGaps += filler.Skipped - before
	}
}

// PushTx models the classic software rate control of existing packet
// generators (§7.1): push one packet at a time at explicitly chosen
// times and hope the NIC's DMA engine mirrors them onto the wire. The
// Pattern supplies the (jittery) inter-departure process — use
// rate.SoftPush for a Pktgen-DPDK-like generator or rate.Bursty for a
// zsend-like one. The queue must be unshaped: with at most one packet
// in flight, the wire departure tracks the push time.
type PushTx struct {
	Queue   *nic.TxQueue
	Pattern rate.Pattern
	PktSize int
	Fill    func(m *mempool.Mbuf, i uint64)

	Sent uint64
}

// Run transmits until the run ends. It must run as its own task.
func (p *PushTx) Run(t *Task) {
	pool := mempool.New(mempool.Config{Count: 512})
	rng := t.Engine().Rand()
	next := t.Now()
	var i uint64
	for t.Running() {
		next = next.Add(p.Pattern.NextGap(rng))
		t.SleepUntil(next)
		if !t.Running() {
			break
		}
		m := pool.Alloc(p.PktSize)
		if m == nil {
			continue // overload: the generator drops, like the original
		}
		if p.Fill != nil {
			p.Fill(m, i)
		}
		if !p.Queue.SendOne(m) {
			m.Free()
			continue
		}
		p.Sent++
		i++
	}
}

// HWRateTx drives a hardware-rate-controlled queue (§7.2): the queue's
// shaper is configured and the descriptor ring is simply kept full —
// "the software can keep all available queues completely filled and the
// generated timing is up to the NIC".
type HWRateTx struct {
	Queue   *nic.TxQueue
	PPS     float64
	PktSize int
	Fill    func(m *mempool.Mbuf, i uint64)

	// Delay postpones the first send, phase-shifting the shaper grid.
	// Multicore sharding staggers k queues at rate/k by i/rate each so
	// their emissions interleave onto the single-queue grid exactly.
	Delay sim.Duration

	Sent uint64
}

// Run transmits until the run ends. It must run as its own task.
func (h *HWRateTx) Run(t *Task) {
	if h.Delay > 0 {
		t.Sleep(h.Delay)
	}
	h.Queue.SetRatePPS(h.PPS)
	pool := mempool.New(mempool.Config{Count: 4096})
	var i uint64
	for t.Running() {
		m := pool.Alloc(h.PktSize)
		if m == nil {
			t.Sleep(backoff)
			continue
		}
		if h.Fill != nil {
			h.Fill(m, i)
		}
		if t.SendAll(h.Queue, []*mempool.Mbuf{m}) != 1 {
			break
		}
		h.Sent++
		i++
	}
}
