package core

import (
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/rate"
	"repro/internal/sim"
	"repro/internal/wire"
)

// DefaultTxBatch is the default burst size of the batched TX loops,
// defined as the MAC scheduler's train size so one task burst drains
// in one scheduler event.
const DefaultTxBatch = nic.DefaultTxTrain

// GapTx is the paper's novel software rate control (§8): the wire is
// kept completely saturated; gaps between real packets are filled with
// invalid frames (bad FCS, sometimes sub-minimum length) whose lengths
// define the inter-departure times exactly. Because the transmit queue
// never runs dry, DMA timing is irrelevant — precision is the line's
// byte granularity, 0.8 ns at 10 GbE.
type GapTx struct {
	Queue   *nic.TxQueue
	Pattern rate.Pattern
	// PktSize is the real frame size without FCS.
	PktSize int
	// Fill crafts each real packet (sequence number i).
	Fill func(m *mempool.Mbuf, i uint64)
	// MinFillerWire overrides the 76-byte filler floor (§8.1).
	MinFillerWire int
	// Batch is the reusable burst size (default DefaultTxBatch; 1
	// reproduces per-packet sends). The emission schedule — every
	// departure byte on the wire — is invariant in Batch: batching
	// only groups how frames are handed to the descriptor ring.
	Batch int

	// Sent counts real packets, Fillers invalid ones.
	Sent    uint64
	Fillers uint64
	// SkippedGaps counts gaps below the representable minimum that
	// were folded into later gaps (§8.4).
	SkippedGaps uint64
}

// gapStager shares the buffered-burst mechanics of GapTx.Run: frames
// (real and filler interleaved in emission order) are staged into one
// reusable BufArray and flushed as full bursts, with zero per-packet
// allocations. Buffers come from the engine's shared per-core cache.
type gapStager struct {
	t      *Task
	queue  *nic.TxQueue
	cache  *mempool.Cache
	ba     *mempool.BufArray
	real   []bool   // kind per staged slot, for short-send accounting
	skips  []uint64 // §8.4 delta attributed to a staged real frame
	staged int
	g      *GapTx
}

// flush hands the staged burst to the NIC. On a run-end short send the
// per-kind counters — and the §8.4 skip deltas attributed to unsent
// real frames — are rolled back for the frames that never reached the
// descriptor ring, so the report counts exactly the handed-over
// frames regardless of the batch size.
func (s *gapStager) flush() bool {
	if s.staged == 0 {
		return true
	}
	n := s.t.SendAll(s.queue, s.ba.Bufs[:s.staged])
	for i := n; i < s.staged; i++ {
		if s.real[i] {
			s.g.Sent--
			s.g.SkippedGaps -= s.skips[i]
		} else {
			s.g.Fillers--
		}
	}
	ok := n == s.staged
	s.ba.Clear(s.staged)
	s.staged = 0
	return ok
}

// stage appends one frame to the burst, flushing when full.
func (s *gapStager) stage(m *mempool.Mbuf, real bool) bool {
	s.real[s.staged] = real
	s.skips[s.staged] = 0
	s.ba.Bufs[s.staged] = m
	s.staged++
	if s.staged == len(s.ba.Bufs) {
		return s.flush()
	}
	return true
}

// alloc takes one buffer, flushing the staged burst and backing off
// while the pool is dry (the NIC holds every buffer until transmit
// completion). Returns nil when the run ended.
func (s *gapStager) alloc(size int) *mempool.Mbuf {
	for {
		if m := s.cache.Alloc(size); m != nil {
			return m
		}
		if !s.flush() || !s.t.Running() {
			return nil
		}
		s.t.Sleep(backoff)
	}
}

// Run transmits until the run ends. It must run as its own task.
func (g *GapTx) Run(t *Task) {
	port := g.Queue.Port()
	byteTime := wire.ByteTime(port.Speed())
	filler := rate.NewGapFiller(byteTime)
	if g.MinFillerWire > 0 {
		filler.MinFillerWire = g.MinFillerWire
	}
	batch := g.Batch
	if batch <= 0 {
		batch = DefaultTxBatch
	}
	s := &gapStager{
		t:     t,
		queue: g.Queue,
		cache: t.Cache(),
		ba:    t.Cache().BufArray(batch),
		real:  make([]bool, batch),
		skips: make([]uint64, batch),
		g:     g,
	}
	rng := t.Engine().Rand()
	realWire := int64(g.PktSize + proto.FCSLen + proto.WireOverhead)

	var i uint64
	for t.Running() {
		m := s.alloc(g.PktSize)
		if m == nil {
			break
		}
		if g.Fill != nil {
			g.Fill(m, i)
		}
		g.Sent++
		i++
		if !s.stage(m, true) {
			break
		}

		gapBytes := filler.GapToWireBytes(g.Pattern.NextGap(rng)) - realWire
		before := filler.Skipped
		fills := filler.FillGap(gapBytes)
		if delta := filler.Skipped - before; delta > 0 {
			g.SkippedGaps += delta
			if s.staged > 0 && s.ba.Bufs[s.staged-1] == m {
				// The unit's real frame is still staged: attribute the
				// delta to it so a run-end rollback keeps the report
				// batch-invariant.
				s.skips[s.staged-1] = delta
			}
		}
		aborted := false
		for _, wireLen := range fills {
			frameLen := wireLen - proto.FCSLen - proto.WireOverhead
			fm := s.alloc(frameLen)
			if fm == nil {
				aborted = true
				break
			}
			// Filler frames carry a broken FCS so the DuT's NIC
			// drops them in hardware without any software activity.
			proto.EthHdr(fm.Payload()[:proto.EthHdrLen]).Fill(proto.EthFill{
				Src: port.MAC(), Dst: proto.BroadcastMAC, EtherType: 0x0000,
			})
			fm.TxMeta.InvalidCRC = true
			g.Fillers++
			if !s.stage(fm, false) {
				aborted = true
				break
			}
		}
		if aborted {
			break
		}
	}
	s.flush()
}

// PushTx models the classic software rate control of existing packet
// generators (§7.1): push one packet at a time at explicitly chosen
// times and hope the NIC's DMA engine mirrors them onto the wire. The
// Pattern supplies the (jittery) inter-departure process — use
// rate.SoftPush for a Pktgen-DPDK-like generator or rate.Bursty for a
// zsend-like one. The queue must be unshaped: with at most one packet
// in flight, the wire departure tracks the push time.
type PushTx struct {
	Queue   *nic.TxQueue
	Pattern rate.Pattern
	PktSize int
	Fill    func(m *mempool.Mbuf, i uint64)

	Sent uint64
}

// Run transmits until the run ends. It must run as its own task.
func (p *PushTx) Run(t *Task) {
	cache := t.Cache()
	rng := t.Engine().Rand()
	next := t.Now()
	var i uint64
	for t.Running() {
		next = next.Add(p.Pattern.NextGap(rng))
		t.SleepUntil(next)
		if !t.Running() {
			break
		}
		m := cache.Alloc(p.PktSize)
		if m == nil {
			continue // overload: the generator drops, like the original
		}
		if p.Fill != nil {
			p.Fill(m, i)
		}
		if !p.Queue.SendOne(m) {
			m.Free()
			continue
		}
		p.Sent++
		i++
	}
}

// HWRateTx drives a hardware-rate-controlled queue (§7.2): the queue's
// shaper is configured and the descriptor ring is simply kept full —
// "the software can keep all available queues completely filled and the
// generated timing is up to the NIC".
type HWRateTx struct {
	Queue   *nic.TxQueue
	PPS     float64
	PktSize int
	Fill    func(m *mempool.Mbuf, i uint64)
	// Batch is the reusable burst size (default DefaultTxBatch; 1
	// reproduces per-packet sends).
	Batch int

	// Delay postpones the first send, phase-shifting the shaper grid.
	// Multicore sharding staggers k queues at rate/k by i/rate each so
	// their emissions interleave onto the single-core grid exactly.
	Delay sim.Duration

	Sent uint64
}

// Run transmits until the run ends. It must run as its own task.
func (h *HWRateTx) Run(t *Task) {
	if h.Delay > 0 {
		t.Sleep(h.Delay)
	}
	h.Queue.SetRatePPS(h.PPS)
	batch := h.Batch
	if batch <= 0 {
		batch = DefaultTxBatch
	}
	cache := t.Cache()
	ba := cache.BufArray(batch)
	var i uint64
	for t.Running() {
		n := ba.Alloc(h.PktSize)
		if n == 0 {
			t.Sleep(backoff)
			continue
		}
		if h.Fill != nil {
			for _, m := range ba.Slice(n) {
				h.Fill(m, i)
				i++
			}
		}
		sent := t.SendAll(h.Queue, ba.Bufs[:n])
		h.Sent += uint64(sent)
		ba.Clear(n)
		if sent != n {
			break
		}
	}
}
