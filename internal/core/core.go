package core
