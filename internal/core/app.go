// Package core is the MoonGen API: devices with hardware queues, tasks
// (the Go analogue of Lua slave tasks in their own VMs), inter-task
// pipes, blocking batch send/receive, checksum offloading helpers,
// hardware-timestamped latency measurement, and the CRC-gap software
// rate control — everything a "userscript" needs, structured after the
// paper's Listings 1-3.
package core

import (
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/ring"
	"repro/internal/sim"
)

// App owns the simulated testbed: engine, devices and tasks. It plays
// the role of MoonGen's master task: configure devices, launch slaves,
// wait for them (Listing 1).
type App struct {
	Eng   *sim.Engine
	tasks []*sim.Proc

	// Shard identifies the multicore shard this app models when it is
	// one engine of a sharded group (set by internal/multicore); 0 for
	// ordinary single-engine apps. Tasks can read it through
	// Task.Shard to tell which modeled core they run on.
	Shard int

	// TxPoolSize overrides the shared transmit pool's buffer count
	// when set before the pool is first used (default 8192).
	TxPoolSize int

	txPool  *mempool.Pool
	txCache *mempool.Cache
}

// NewApp creates an App with a deterministic seed.
func NewApp(seed int64) *App {
	return &App{Eng: sim.NewEngine(seed)}
}

// defaultTxPoolCount sizes the shared transmit pool: comfortably more
// than a descriptor ring plus the frames in flight on a 10 GbE wire.
const defaultTxPoolCount = 8192

// TxPool returns the app's shared transmit mempool (created on first
// use). TX loops that fill every packet from scratch draw from it
// through TxCache; scenarios with prefilled per-flow templates keep
// their own pools.
func (a *App) TxPool() *mempool.Pool {
	if a.txPool == nil {
		count := a.TxPoolSize
		if count <= 0 {
			count = defaultTxPoolCount
		}
		a.txPool = mempool.New(mempool.Config{Count: count})
	}
	return a.txPool
}

// TxPoolPeek returns the shared transmit pool without forcing its
// lazy creation — nil while no TX loop has drawn from it. Monitoring
// code samples through this so observing an app that fills from its
// own sized pools never materializes the shared pool.
func (a *App) TxPoolPeek() *mempool.Pool { return a.txPool }

// TxCache returns the engine's allocation front over TxPool — the
// per-core mempool cache of this modeled core (one App is one engine
// is one core; all tasks of the engine run serialized, so they share
// the cache safely). This is what makes every TX loop draw from one
// per-core pool instead of allocating a private pool per task.
func (a *App) TxCache() *mempool.Cache {
	if a.txCache == nil {
		a.txCache = a.TxPool().NewCache(0)
	}
	return a.txCache
}

// Task is the execution context handed to slave functions — MoonGen's
// per-task Lua VM. It embeds the simulation process (Sleep/Yield/
// Running) and adds the blocking packet-IO idioms.
type Task struct {
	*sim.Proc
	app *App
}

// Shard returns the modeled core this task runs on (0 unless the app
// is a multicore shard).
func (t *Task) Shard() int { return t.app.Shard }

// Cache returns the engine's shared per-core mempool cache (see
// App.TxCache).
func (t *Task) Cache() *mempool.Cache { return t.app.TxCache() }

// LaunchTask starts fn as a new task — mg.launchLua("slave", args...)
// with the args captured by the closure.
func (a *App) LaunchTask(name string, fn func(t *Task)) {
	p := a.Eng.Spawn(name, func(p *sim.Proc) {
		fn(&Task{Proc: p, app: a})
	})
	a.tasks = append(a.tasks, p)
}

// RunFor runs the simulation for d of simulated time, then drains
// remaining events (tasks observe Running()==false and finalize) —
// master-task mg.waitForSlaves with a run limit.
func (a *App) RunFor(d sim.Duration) {
	a.Eng.SetRunFor(d)
	a.Eng.RunAll()
}

// Run runs until all tasks finish on their own.
func (a *App) Run() { a.Eng.RunAll() }

// Now returns the current simulated time.
func (a *App) Now() sim.Time { return a.Eng.Now() }

// backoff is the polling interval for busy-wait loops. DPDK
// applications busy-poll (§5.1); one µs keeps simulated polling cheap
// while staying far below any timing scale under test.
const backoff = sim.Microsecond

// SendAll enqueues the whole burst, busy-waiting while the descriptor
// ring is full — the blocking behaviour of MoonGen's queue:send(bufs).
// It returns the number actually sent; a short count happens only when
// the run ends mid-send (remaining buffers are freed). The stop
// boundary is checked before each push, so the frames handed to the
// NIC are exactly those pushed while the run was live — independent of
// how the caller grouped them into bursts, which is what pins the
// batch-size invariance of the transmit counters.
func (t *Task) SendAll(q *nic.TxQueue, bufs []*mempool.Mbuf) int {
	sent := 0
	for {
		if sent == len(bufs) {
			return sent
		}
		if !t.Running() {
			for _, m := range bufs[sent:] {
				m.Free()
			}
			return sent
		}
		sent += q.Send(bufs[sent:])
		if sent < len(bufs) {
			t.Sleep(backoff)
		}
	}
}

// AllocAll fills the whole BufArray, waiting for buffers to recycle if
// the pool is momentarily dry (all buffers in flight to the NIC).
func (t *Task) AllocAll(ba *mempool.BufArray, size int) int {
	for {
		n := ba.Alloc(size)
		if n == ba.Len() || !t.Running() {
			return n
		}
		// Return the partial allocation and retry for a full batch.
		for i := 0; i < n; i++ {
			ba.Bufs[i].Free()
			ba.Bufs[i] = nil
		}
		t.Sleep(backoff)
	}
}

// RecvPoll receives a burst, polling until at least one packet arrives
// or the run ends — the counterSlave loop of Listing 3.
func (t *Task) RecvPoll(q *nic.RxQueue, out []*mempool.Mbuf) int {
	for {
		if n := q.Recv(out); n > 0 {
			return n
		}
		if !t.Running() {
			// Final drain.
			return q.Recv(out)
		}
		t.Sleep(backoff)
	}
}

// Pipe is a MoonGen inter-task pipe: tasks share no state except these
// explicit channels (§3.4).
type Pipe struct {
	q *ring.MPMC[interface{}]
}

// NewPipe creates a pipe with the given capacity.
func NewPipe(capacity int) *Pipe {
	return &Pipe{q: ring.NewMPMC[interface{}](capacity)}
}

// Send blocks until v is enqueued or the run ends (returns false).
func (p *Pipe) Send(t *Task, v interface{}) bool {
	for {
		if p.q.EnqueueOne(v) {
			return true
		}
		if !t.Running() {
			return false
		}
		t.Sleep(backoff)
	}
}

// TrySend enqueues without blocking.
func (p *Pipe) TrySend(v interface{}) bool { return p.q.EnqueueOne(v) }

// Recv blocks until a value arrives or the run ends.
func (p *Pipe) Recv(t *Task) (interface{}, bool) {
	for {
		if v, ok := p.q.DequeueOne(); ok {
			return v, true
		}
		if !t.Running() {
			return p.q.DequeueOne()
		}
		t.Sleep(backoff)
	}
}

// TryRecv dequeues without blocking.
func (p *Pipe) TryRecv() (interface{}, bool) { return p.q.DequeueOne() }
