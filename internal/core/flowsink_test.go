package core

import (
	"testing"

	"repro/internal/flow"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestFlowSinkDetectsMultiQueueReorder reproduces the physical cause
// of intra-flow reordering the paper's §3.3 queue model implies: one
// flow sprayed across two independent transmit queues. Each pair is
// enqueued odd-sequence-first on queue 1 / even on queue 0; the MAC's
// round-robin arbiter serves queue 0 first at equal eligibility, so
// every pair leaves the wire in swapped order and the receive-side
// tracker must attribute exactly one reorder per pair — with zero
// loss and zero duplicates.
func TestFlowSinkDetectsMultiQueueReorder(t *testing.T) {
	const pairs = 100
	app := NewApp(31)
	tx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 0, TxQueues: 2})
	rx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 1, RxRing: 2048, RxPool: 4096})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)

	pool := CreateMemPool(1024, func(m *mempool.Mbuf) {
		p := proto.UDPPacket{B: m.Data[:60]}
		p.Fill(proto.UDPPacketFill{
			PktLength: 60,
			EthSrc:    tx.MAC(), EthDst: rx.MAC(),
			IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.1.0.1"),
			UDPSrc: 1234, UDPDst: 5000,
		})
	})
	const payloadOff = proto.EthHdrLen + proto.IPv4HdrLen + proto.UDPHdrLen

	app.LaunchTask("spray", func(tk *Task) {
		for i := 0; i < pairs && tk.Running(); i++ {
			even, odd := pool.Alloc(60), pool.Alloc(60)
			if even == nil || odd == nil {
				t.Error("pool dry")
				return
			}
			flow.Stamp(even.Payload()[payloadOff:], uint64(2*i), tk.Now())
			flow.Stamp(odd.Payload()[payloadOff:], uint64(2*i+1), tk.Now())
			// Enqueue the odd sequence on queue 1 and the even one on
			// queue 0 in the same instant: the arbiter scans from queue
			// 0, so the odd-numbered packet (queue 0) wins the wire.
			if !tx.GetTxQueue(1).SendOne(even) || !tx.GetTxQueue(0).SendOne(odd) {
				t.Error("descriptor ring full")
				return
			}
			tk.Sleep(10 * sim.Microsecond) // drain the pair before the next
		}
	})

	tr := flow.NewTracker(flow.Config{})
	sink := &FlowSink{Queue: rx.GetRxQueue(0), Tracker: tr, Batch: 32}
	app.LaunchTask("sink", sink.Run)
	app.RunFor(5 * sim.Millisecond)

	key := flow.Key{Proto: proto.IPProtoUDP,
		Src: proto.MustIPv4("10.0.0.1"), Dst: proto.MustIPv4("10.1.0.1"),
		SrcPort: 1234, DstPort: 5000}
	fs, ok := tr.Lookup(key)
	if !ok {
		t.Fatal("flow not tracked")
	}
	if fs.Received != 2*pairs {
		t.Fatalf("received %d, want %d", fs.Received, 2*pairs)
	}
	if fs.Reordered != pairs {
		t.Fatalf("reordered = %d, want %d (one per queue-interleaved pair)", fs.Reordered, pairs)
	}
	if fs.Lost != 0 || fs.Duplicates != 0 {
		t.Fatalf("lost/dup = %d/%d, want 0/0", fs.Lost, fs.Duplicates)
	}
	if sink.Received != 2*pairs {
		t.Fatalf("sink drained %d, want %d", sink.Received, 2*pairs)
	}
}

// TestFlowSinkBatchInvariant: the sink's receive burst size only
// groups the drain — per-flow counts are identical at Batch 1 and 32.
func TestFlowSinkBatchInvariant(t *testing.T) {
	run := func(batch int) (uint64, uint64, uint64) {
		app := NewApp(32)
		tx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 0})
		rx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 1, RxRing: 4096, RxPool: 8192})
		app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)
		pool := CreateMemPool(2048, func(m *mempool.Mbuf) {
			p := proto.UDPPacket{B: m.Data[:60]}
			p.Fill(proto.UDPPacketFill{
				PktLength: 60,
				EthSrc:    tx.MAC(), EthDst: rx.MAC(),
				IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.1.0.1"),
				UDPSrc: 1234, UDPDst: 6000,
			})
		})
		const payloadOff = proto.EthHdrLen + proto.IPv4HdrLen + proto.UDPHdrLen
		app.LaunchTask("tx", func(tk *Task) {
			var seq uint64
			ba := pool.BufArray(16)
			for tk.Running() {
				n := tk.AllocAll(ba, 60)
				if n == 0 {
					break
				}
				for _, m := range ba.Slice(n) {
					// Every 10th sequence number is skipped: a known
					// deterministic loss signal.
					if seq%10 == 9 {
						seq++
					}
					flow.Stamp(m.Payload()[payloadOff:], seq, tk.Now())
					seq++
				}
				tk.SendAll(tx.GetTxQueue(0), ba.Bufs[:n])
				ba.Clear(n)
			}
		})
		tr := flow.NewTracker(flow.Config{})
		sink := &FlowSink{Queue: rx.GetRxQueue(0), Tracker: tr, Batch: batch}
		app.LaunchTask("sink", sink.Run)
		app.RunFor(2 * sim.Millisecond)
		fs := tr.Flows()[0]
		return fs.Received, fs.Lost, fs.Reordered
	}
	r1, l1, o1 := run(1)
	r32, l32, o32 := run(32)
	if r1 == 0 || l1 == 0 {
		t.Fatalf("no traffic or no skip-loss: received %d lost %d", r1, l1)
	}
	if r1 != r32 || l1 != l32 || o1 != o32 {
		t.Fatalf("batch=1 (%d/%d/%d) differs from batch=32 (%d/%d/%d)", r1, l1, o1, r32, l32, o32)
	}
}
