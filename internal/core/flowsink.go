package core

import (
	"repro/internal/flow"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/sim"
)

// FlowSink is the receive-side analysis task, symmetric to the
// transmit-side GapTx/HWRateTx loops: it drains a receive queue in
// bursts through the batched RX datapath (RecvBurst into a cache-bound
// BufArray), feeds every frame to a flow.Tracker at its exact
// descriptor arrival instant, and recycles the burst through the
// port's receive cache. The steady-state loop performs no allocations.
type FlowSink struct {
	Queue   *nic.RxQueue
	Tracker *flow.Tracker
	// Batch is the receive burst size (default DefaultTxBatch, so one
	// RX burst matches one TX burst; 1 reproduces per-packet drains).
	Batch int
	// Poll is the idle backoff between empty receive attempts (default
	// 20 µs, the drain cadence the examples use).
	Poll sim.Duration
	// Drain is the grace period after the run ends during which the
	// sink keeps polling, so frames in flight on the wire at the stop
	// boundary are still attributed (default 50 µs, far beyond any
	// modeled path latency). Complete attribution is what makes the
	// per-flow counts exactly invariant across core and batch
	// configurations.
	Drain sim.Duration

	// Received / Bytes count everything the sink drained, including
	// frames the tracker could not attribute to a flow.
	Received uint64
	Bytes    uint64

	// frames is the reusable RecordBatch staging area (one entry per
	// burst slot, allocated once on first use).
	frames []flow.Frame
}

// Run drains until the run ends, then performs a final drain so
// packets in flight at the stop boundary are still attributed. It must
// run as its own task.
func (s *FlowSink) Run(t *Task) {
	batch := s.Batch
	if batch <= 0 {
		batch = DefaultTxBatch
	}
	poll := s.Poll
	if poll <= 0 {
		poll = 20 * sim.Microsecond
	}
	drain := s.Drain
	if drain <= 0 {
		drain = 50 * sim.Microsecond
	}
	ba := s.Queue.Port().RxBufArray(batch)
	for t.Running() {
		if n := s.Queue.RecvBurst(ba.Bufs); n > 0 {
			s.consume(ba, n)
		} else {
			t.Sleep(poll)
		}
	}
	// Grace drain: keep polling past the stop boundary until the wire
	// has had time to deliver everything transmitted before it.
	deadline := t.Now().Add(drain)
	for {
		if n := s.Queue.RecvBurst(ba.Bufs); n > 0 {
			s.consume(ba, n)
			continue
		}
		if t.Now() >= deadline {
			return
		}
		t.Sleep(poll)
	}
}

// consume attributes one burst through the tracker's train-coalesced
// path and recycles it. RecordBatch resolves each frame's flow through
// the tracker's direct-mapped key memo, so a burst draining one wire's
// FIFO — even with a handful of interleaved flows — rarely pays a full
// table probe, and the memo's pointers stay valid across table growth.
func (s *FlowSink) consume(ba *mempool.BufArray, n int) {
	if cap(s.frames) < n {
		s.frames = make([]flow.Frame, len(ba.Bufs))
	}
	fr := s.frames[:n]
	for i, m := range ba.Slice(n) {
		fr[i] = flow.Frame{Data: m.Payload(), Rx: sim.Time(m.RxMeta.Arrival)}
		s.Received++
		s.Bytes += uint64(m.Len)
	}
	s.Tracker.RecordBatch(fr)
	ba.FreeAll()
}
