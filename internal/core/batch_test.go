package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/rate"
	"repro/internal/sim"
	"repro/internal/wire"
)

// departureTrace runs one TX loop for window and records every
// departure's exact wire start instant plus frame length via the MAC
// trace hook, together with the task's counters.
type departureTrace struct {
	starts []sim.Time
	lens   []int
	sent   uint64
}

func traceRun(t *testing.T, window sim.Duration, launch func(app *core.App, tx *core.Device) *uint64) *departureTrace {
	t.Helper()
	app := core.NewApp(7)
	tx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0, TxQueues: 2})
	rx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)
	rx.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { return true })

	tr := &departureTrace{}
	tx.SetTxTrace(func(q *nic.TxQueue, m *mempool.Mbuf, at sim.Time) {
		if at <= sim.Time(window) {
			tr.starts = append(tr.starts, at)
			tr.lens = append(tr.lens, m.Len)
		}
	})
	sent := launch(app, tx)
	app.RunFor(window)
	tr.sent = *sent
	return tr
}

func sameTrace(t *testing.T, name string, a, b *departureTrace) {
	t.Helper()
	if len(a.starts) != len(b.starts) {
		t.Fatalf("%s: %d vs %d departures", name, len(a.starts), len(b.starts))
	}
	for i := range a.starts {
		if a.starts[i] != b.starts[i] || a.lens[i] != b.lens[i] {
			t.Fatalf("%s: departure %d differs: %v/%dB vs %v/%dB",
				name, i, a.starts[i], a.lens[i], b.starts[i], b.lens[i])
		}
	}
	if a.sent != b.sent {
		t.Fatalf("%s: sent %d vs %d", name, a.sent, b.sent)
	}
}

// TestGapTxBatchInvariantDepartures is the §8 precision pin: the
// CRC-gap rate control must put every frame on the wire at the same
// byte-exact instant no matter how the task groups its sends — Batch=1
// (per-packet, the old hot path) and Batch=32 produce bit-identical
// departure schedules, including the filler frames whose lengths
// encode the gaps.
func TestGapTxBatchInvariantDepartures(t *testing.T) {
	run := func(batch int) *departureTrace {
		return traceRun(t, 4*sim.Millisecond, func(app *core.App, tx *core.Device) *uint64 {
			g := &core.GapTx{
				Queue:   tx.GetTxQueue(0),
				Pattern: rate.NewPoissonPPS(2e6),
				PktSize: 60,
				Batch:   batch,
				Fill: func(m *mempool.Mbuf, i uint64) {
					p := proto.UDPPacket{B: m.Payload()}
					p.Fill(proto.UDPPacketFill{PktLength: 60,
						IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.1.0.1")})
				},
			}
			app.LaunchTask("gap", g.Run)
			return &g.Sent
		})
	}
	one := run(1)
	if len(one.starts) < 1000 {
		t.Fatalf("only %d departures traced", len(one.starts))
	}
	sameTrace(t, "batch 32", one, run(32))
	sameTrace(t, "batch 5", one, run(5))

	// The wire grid is byte-exact: consecutive departures are spaced by
	// the previous frame's full wire time (frame + FCS + overhead).
	bt := wire.ByteTime(wire.Speed10G)
	for i := 1; i < len(one.starts); i++ {
		gap := one.starts[i].Sub(one.starts[i-1])
		min := sim.Duration(one.lens[i-1]+proto.FCSLen+proto.WireOverhead) * bt
		if gap < min {
			t.Fatalf("departure %d: gap %v below wire time %v", i, gap, min)
		}
	}
}

// TestHWRateTxBatchInvariantDepartures pins the §7.2 shaper under
// batching: the hardware rate control's oscillating grid is produced
// by the MAC model, so the task's burst size must not shift a single
// departure.
func TestHWRateTxBatchInvariantDepartures(t *testing.T) {
	run := func(batch int) *departureTrace {
		return traceRun(t, 4*sim.Millisecond, func(app *core.App, tx *core.Device) *uint64 {
			h := &core.HWRateTx{Queue: tx.GetTxQueue(0), PPS: 1e6, PktSize: 60, Batch: batch}
			app.LaunchTask("hw", h.Run)
			return &h.Sent
		})
	}
	one := run(1)
	if len(one.starts) < 3000 {
		t.Fatalf("only %d departures traced", len(one.starts))
	}
	sameTrace(t, "batch 32", one, run(32))
}

// TestSharedTxCache: the TX loops draw from the engine's shared
// per-core pool — launching a loop must not create a private mempool,
// and the pool drains back to full after the run.
func TestSharedTxCache(t *testing.T) {
	app := core.NewApp(3)
	tx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0})
	rx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)
	rx.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { return true })

	g := &core.GapTx{Queue: tx.GetTxQueue(0), Pattern: rate.NewCBRPPS(1e6), PktSize: 60}
	app.LaunchTask("gap", g.Run)
	app.RunFor(2 * sim.Millisecond)

	pool := app.TxPool()
	allocs, frees := pool.Stats()
	if allocs == 0 {
		t.Fatal("GapTx did not allocate from the shared pool")
	}
	app.TxCache().Flush()
	if frees = func() uint64 { _, f := pool.Stats(); return f }(); frees != allocs {
		t.Fatalf("pool leaked: %d allocs, %d frees", allocs, frees)
	}
	if pool.Available() != pool.Count() {
		t.Fatalf("pool not full after drain: %d of %d", pool.Available(), pool.Count())
	}
}
