package core

import (
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/wire"
)

// Device wraps a NIC port with the MoonGen device API surface
// (Listing 1: device.config, getTxQueue, getRxQueue, setRate).
type Device struct {
	*nic.Port
}

// DeviceConfig mirrors device.config(port, rxQueues, txQueues).
type DeviceConfig struct {
	Profile  nic.Profile
	ID       int
	RxQueues int
	TxQueues int
	// DriftPPM desynchronizes this device's PTP clock (for drift
	// experiments; 0 for none).
	DriftPPM float64
	// RxRing/TxRing override descriptor ring sizes.
	RxRing int
	TxRing int
	// RxPool overrides the receive pool size.
	RxPool int
	// RxTrain overrides the receive write-back train (1 = per-packet
	// publication; default nic.DefaultRxTrain).
	RxTrain int
	// TxTrain overrides how many frames the MAC scheduler commits per
	// event (default nic.DefaultTxTrain). Departure times are computed
	// on the same per-frame wire grid regardless, so this is a pure
	// event-coalescing knob: larger trains mean fewer scheduler events
	// for the same bit-identical wire timing.
	TxTrain int
}

// ConfigDevice creates and configures a device on the app's testbed.
func (a *App) ConfigDevice(cfg DeviceConfig) *Device {
	port := nic.NewPort(a.Eng, nic.PortConfig{
		Profile:       cfg.Profile,
		ID:            cfg.ID,
		RxQueues:      cfg.RxQueues,
		TxQueues:      cfg.TxQueues,
		RxRingSize:    cfg.RxRing,
		TxRingSize:    cfg.TxRing,
		RxPoolSize:    cfg.RxPool,
		RxTrain:       cfg.RxTrain,
		TxTrain:       cfg.TxTrain,
		ClockDriftPPM: cfg.DriftPPM,
	})
	return &Device{Port: port}
}

// ConnectDevices cables two devices together (both directions) with the
// given PHY and cable length — the physical testbed setup step.
func (a *App) ConnectDevices(x, y *Device, phy wire.PHYProfile, lengthM float64) {
	nic.ConnectDuplex(a.Eng, x.Port, y.Port, phy, lengthM)
}

// WaitForLinks mirrors device.waitForLinks(). Links in the simulation
// are up as soon as they are connected, so this is a yield point only —
// kept so ported scripts read the same.
func (t *Task) WaitForLinks(...*Device) { t.Yield() }

// CreateMemPool mirrors memory.createMemPool(prefillFn): every buffer
// runs the callback once at creation (Listing 2 lines 3-12).
func CreateMemPool(count int, prefill func(buf *mempool.Mbuf)) *mempool.Pool {
	return mempool.New(mempool.Config{Count: count, Prefill: prefill})
}

// CreateSizedMemPool is CreateMemPool with an explicit per-buffer data
// room. Workloads that only ever emit small frames (the 60-124 B
// packets of the scaling experiments) size their pools to the packet
// instead of the default 2 kB room: buffer contents and simulated
// behavior are identical, but creating the pool allocates and zeroes an
// order of magnitude less memory — which is what the slab zeroing cost
// of a many-pool experiment run is made of.
func CreateSizedMemPool(count, bufSize int, prefill func(buf *mempool.Mbuf)) *mempool.Pool {
	return mempool.New(mempool.Config{Count: count, BufSize: bufSize, Prefill: prefill})
}

// OffloadIPChecksums marks the first n buffers for IPv4 header checksum
// offload (bufs:offloadIPChecksums()).
func OffloadIPChecksums(bufs []*mempool.Mbuf, n int) {
	for _, m := range bufs[:n] {
		m.TxMeta.OffloadIPChecksum = true
	}
}

// OffloadUDPChecksums marks the first n buffers for UDP (and IP)
// checksum offload — Listing 2 line 22. As on the real X540, the
// transport offload implies computing the IP pseudo-header part
// (Table 1 prices this at 33.1 cycles/packet).
func OffloadUDPChecksums(bufs []*mempool.Mbuf, n int) {
	for _, m := range bufs[:n] {
		m.TxMeta.OffloadIPChecksum = true
		m.TxMeta.OffloadUDPChecksum = true
	}
}

// OffloadTCPChecksums marks the first n buffers for TCP (and IP)
// checksum offload.
func OffloadTCPChecksums(bufs []*mempool.Mbuf, n int) {
	for _, m := range bufs[:n] {
		m.TxMeta.OffloadIPChecksum = true
		m.TxMeta.OffloadTCPChecksum = true
	}
}

// FreeBatch frees the first n buffers of a batch.
func FreeBatch(bufs []*mempool.Mbuf, n int) {
	for i := 0; i < n; i++ {
		if bufs[i] != nil {
			bufs[i].Free()
			bufs[i] = nil
		}
	}
}

// UDPFlood is the Listing 2 loadSlave as a reusable task body: allocate
// batches from a prefilled pool, randomize the source IP over 256
// addresses, offload checksums, send. Stop via the app run limit.
type UDPFlood struct {
	Queue   *nic.TxQueue
	PktSize int
	BaseIP  proto.IPv4
	// Randomize is the number of low source-IP values to cycle through
	// (256 in §5.2's comparison).
	Randomize int
	// Pool must be prefilled with the packet template.
	Pool *mempool.Pool
	// Batch is the bufArray size (default 63).
	Batch int

	// Sent counts transmitted packets.
	Sent uint64
}

// Run executes the flood until the run ends.
func (u *UDPFlood) Run(t *Task) {
	if u.Batch <= 0 {
		u.Batch = mempool.DefaultBatchSize
	}
	if u.Randomize <= 0 {
		u.Randomize = 256
	}
	bufs := u.Pool.BufArray(u.Batch)
	rng := t.Engine().Rand()
	for t.Running() {
		n := t.AllocAll(bufs, u.PktSize)
		if n == 0 {
			break
		}
		for _, m := range bufs.Slice(n) {
			pkt := proto.UDPPacket{B: m.Payload()}
			pkt.IP().SetSrc(u.BaseIP + proto.IPv4(rng.Intn(u.Randomize)))
		}
		OffloadUDPChecksums(bufs.Bufs, n)
		u.Sent += uint64(t.SendAll(u.Queue, bufs.Bufs[:n]))
	}
}
