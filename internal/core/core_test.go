package core

import (
	"math"
	"testing"

	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/rate"
	"repro/internal/sim"
	"repro/internal/wire"
)

func udpPrefill(size int) func(m *mempool.Mbuf) {
	return func(m *mempool.Mbuf) {
		p := proto.UDPPacket{B: m.Data[:size]}
		p.Fill(proto.UDPPacketFill{
			PktLength: size,
			EthSrc:    proto.MustMAC("02:00:00:00:00:01"),
			EthDst:    proto.MustMAC("10:11:12:13:14:15"),
			IPSrc:     proto.MustIPv4("10.0.0.1"),
			IPDst:     proto.MustIPv4("192.168.1.1"),
			UDPSrc:    1234,
			UDPDst:    42,
		})
	}
}

func TestAppTaskLifecycle(t *testing.T) {
	app := NewApp(1)
	ran := 0
	app.LaunchTask("a", func(task *Task) {
		for task.Running() {
			ran++
			task.Sleep(sim.Millisecond)
		}
	})
	app.RunFor(10 * sim.Millisecond)
	if ran != 10 {
		t.Fatalf("task ran %d iterations", ran)
	}
}

func TestPipe(t *testing.T) {
	app := NewApp(2)
	pipe := NewPipe(4)
	var got []int
	app.LaunchTask("producer", func(task *Task) {
		for i := 0; i < 100; i++ {
			if !pipe.Send(task, i) {
				return
			}
		}
	})
	app.LaunchTask("consumer", func(task *Task) {
		for len(got) < 100 && task.Running() {
			v, ok := pipe.Recv(task)
			if !ok {
				return
			}
			got = append(got, v.(int))
		}
	})
	app.RunFor(sim.Second)
	if len(got) != 100 {
		t.Fatalf("consumer got %d values", len(got))
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: %d", i, v)
		}
	}
}

func TestUDPFloodLineRate(t *testing.T) {
	app := NewApp(3)
	tx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 0})
	rx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 1})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)

	srcs := map[proto.IPv4]bool{}
	valid := 0
	rx.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool {
		p := proto.UDPPacket{B: f.Data}
		if !p.VerifyChecksums() {
			t.Error("flood packet failed checksum verification")
		}
		srcs[p.IP().Src()] = true
		valid++
		return true
	})

	const pktSize = 60
	pool := CreateMemPool(4096, udpPrefill(pktSize))
	flood := &UDPFlood{
		Queue:   tx.GetTxQueue(0),
		PktSize: pktSize,
		BaseIP:  proto.MustIPv4("10.0.0.1"),
		Pool:    pool,
	}
	app.LaunchTask("loadSlave", flood.Run)
	const runFor = 5 * sim.Millisecond
	var atStop uint64
	app.Eng.Schedule(sim.Time(runFor), func() { atStop = tx.GetStats().TxPackets })
	app.RunFor(runFor)

	pps := float64(atStop) / sim.Duration(runFor).Seconds()
	if math.Abs(pps-14.88e6) > 0.05e6 {
		t.Fatalf("flood rate = %.2f Mpps", pps/1e6)
	}
	// 256 distinct randomized source addresses (§5.2 workload).
	if len(srcs) < 250 || len(srcs) > 256 {
		t.Fatalf("saw %d distinct source IPs", len(srcs))
	}
}

func TestTimestamperLatency(t *testing.T) {
	app := NewApp(4)
	tx := app.ConfigDevice(DeviceConfig{Profile: nic.Chip82599, ID: 0})
	rx := app.ConfigDevice(DeviceConfig{Profile: nic.Chip82599, ID: 1})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseSR, 2)

	ts := NewTimestamper(tx.GetTxQueue(0), rx.Port)
	var h interface {
		Count() uint64
		Mean() sim.Duration
	}
	app.LaunchTask("timestamper", func(task *Task) {
		h = ts.MeasureLatency(task, 200, 0)
	})
	app.RunFor(sim.Second)
	if h.Count() != 200 {
		t.Fatalf("measured %d probes (lost %d)", h.Count(), ts.Lost)
	}
	// Fiber 2 m: ~320 ns, quantized to the 82599's 12.8 ns timer.
	mean := h.Mean().Nanoseconds()
	if math.Abs(mean-320) > 13 {
		t.Fatalf("mean latency = %.1f ns, want ~320", mean)
	}
}

// TestTimestamperWithDrift: per-probe resynchronization keeps
// measurements accurate despite the worst-case 35 µs/s drift (§6.3).
func TestTimestamperWithDrift(t *testing.T) {
	app := NewApp(5)
	tx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 0})
	rx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 1, DriftPPM: 35})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 10)

	ts := NewTimestamper(tx.GetTxQueue(0), rx.Port)
	var mean float64
	app.LaunchTask("timestamper", func(task *Task) {
		h := ts.MeasureLatency(task, 300, 10*sim.Microsecond)
		mean = h.Mean().Nanoseconds()
	})
	app.RunFor(sim.Second)
	// Copper 10 m: ~2195 ns (Table 3), despite the drifting clock.
	if math.Abs(mean-2195.2) > 15 {
		t.Fatalf("mean latency with drift = %.1f ns, want ~2195", mean)
	}
}

func TestTimestamperUDPTooSmall(t *testing.T) {
	app := NewApp(6)
	tx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 0})
	rx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 1})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)

	ts := NewTimestamper(tx.GetTxQueue(0), rx.Port)
	ts.UDP = true
	ts.PktSize = 70 // below the 80-byte UDP PTP floor
	ts.Timeout = 100 * sim.Microsecond
	app.LaunchTask("timestamper", func(task *Task) {
		if _, ok := ts.Probe(task); ok {
			t.Error("undersized UDP probe produced a timestamp")
		}
	})
	app.RunFor(10 * sim.Millisecond)
	if ts.Lost != 1 {
		t.Fatalf("lost = %d", ts.Lost)
	}
}

// TestGapTxExactCBR: on a jitter-free fiber path, CRC-gap CBR produces
// *exact* inter-arrival times — the §8 headline property.
func TestGapTxExactCBR(t *testing.T) {
	app := NewApp(7)
	tx := app.ConfigDevice(DeviceConfig{Profile: nic.Chip82599, ID: 0})
	rx := app.ConfigDevice(DeviceConfig{Profile: nic.Chip82599, ID: 1})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseSR, 2)

	var arrivals []sim.Time
	rx.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool {
		arrivals = append(arrivals, at)
		return true
	})

	g := &GapTx{
		Queue:   tx.GetTxQueue(0),
		Pattern: rate.NewCBRPPS(1e6),
		PktSize: 60,
		Fill:    func(m *mempool.Mbuf, i uint64) { udpPrefill(60)(m) },
	}
	app.LaunchTask("gaptx", g.Run)
	app.RunFor(10 * sim.Millisecond)

	if len(arrivals) < 5000 {
		t.Fatalf("only %d valid arrivals", len(arrivals))
	}
	for i := 1; i < len(arrivals); i++ {
		if gap := arrivals[i].Sub(arrivals[i-1]); gap != sim.Microsecond {
			t.Fatalf("gap %d = %v, want exactly 1us", i, gap)
		}
	}
	// The receiving NIC saw the fillers only as CRC errors.
	st := rx.GetStats()
	if st.RxCRCErrors == 0 {
		t.Fatal("no filler frames observed")
	}
	if st.RxCRCErrors != g.Fillers {
		t.Fatalf("fillers sent %d, dropped %d", g.Fillers, st.RxCRCErrors)
	}
}

// TestGapTxPoissonAccuracy: the Poisson pattern's average rate is
// accurate even though sub-minimum gaps are approximated (§8.4).
func TestGapTxPoissonAccuracy(t *testing.T) {
	app := NewApp(8)
	tx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 0})
	rx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 1})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)

	count := 0
	rx.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { count++; return true })

	const target = 2e6
	g := &GapTx{
		Queue:   tx.GetTxQueue(0),
		Pattern: rate.NewPoissonPPS(target),
		PktSize: 60,
		Fill:    func(m *mempool.Mbuf, i uint64) { udpPrefill(60)(m) },
	}
	app.LaunchTask("gaptx", g.Run)
	const runFor = 20 * sim.Millisecond
	atStop := 0
	app.Eng.Schedule(sim.Time(runFor), func() { atStop = count })
	app.RunFor(runFor)

	got := float64(atStop) / sim.Duration(runFor).Seconds()
	if math.Abs(got-target)/target > 0.01 {
		t.Fatalf("poisson rate = %.3f Mpps, want 2", got/1e6)
	}
	if g.SkippedGaps == 0 {
		t.Fatal("expected some sub-minimum gaps at 2 Mpps Poisson")
	}
}

// TestGapTxSaturatesWire: with CRC-gap control the wire itself is
// always full (real + filler bytes = line rate).
func TestGapTxSaturatesWire(t *testing.T) {
	app := NewApp(9)
	tx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 0})
	rx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 1})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)
	rx.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { return true })

	g := &GapTx{
		Queue:   tx.GetTxQueue(0),
		Pattern: rate.NewCBRPPS(500e3),
		PktSize: 60,
	}
	app.LaunchTask("gaptx", g.Run)
	app.RunFor(5 * sim.Millisecond)
	st := tx.GetStats()
	wireBytes := st.TxBytes + uint64(st.TxPackets)*(proto.FCSLen+proto.WireOverhead)
	util := float64(wireBytes*8) / (10e9 * sim.Duration(5*sim.Millisecond).Seconds())
	if util < 0.99 {
		t.Fatalf("wire utilization = %.3f, want ~1 (saturated)", util)
	}
}

func TestHWRateTx(t *testing.T) {
	app := NewApp(10)
	tx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 0})
	rx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 1})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)
	count := 0
	rx.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { count++; return true })

	h := &HWRateTx{Queue: tx.GetTxQueue(0), PPS: 1e6, PktSize: 60}
	app.LaunchTask("hwtx", h.Run)
	const runFor = 10 * sim.Millisecond
	atStop := 0
	app.Eng.Schedule(sim.Time(runFor), func() { atStop = count })
	app.RunFor(runFor)
	got := float64(atStop) / sim.Duration(runFor).Seconds()
	if math.Abs(got-1e6)/1e6 > 0.005 {
		t.Fatalf("hw cbr rate = %.0f", got)
	}
}

func TestPushTxFollowsPattern(t *testing.T) {
	app := NewApp(11)
	tx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 0})
	rx := app.ConfigDevice(DeviceConfig{Profile: nic.ChipX540, ID: 1})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)
	count := 0
	rx.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { count++; return true })

	p := &PushTx{Queue: tx.GetTxQueue(0), Pattern: rate.NewCBRPPS(500e3), PktSize: 60}
	app.LaunchTask("pushtx", p.Run)
	const runFor = 10 * sim.Millisecond
	atStop := 0
	app.Eng.Schedule(sim.Time(runFor), func() { atStop = count })
	app.RunFor(runFor)
	got := float64(atStop) / sim.Duration(runFor).Seconds()
	if math.Abs(got-500e3)/500e3 > 0.01 {
		t.Fatalf("push rate = %.0f", got)
	}
}

func TestOffloadHelpers(t *testing.T) {
	pool := mempool.New(mempool.Config{Count: 8})
	bufs := make([]*mempool.Mbuf, 4)
	pool.AllocBatch(bufs, 60)
	OffloadUDPChecksums(bufs, 2)
	if !bufs[0].TxMeta.OffloadUDPChecksum || !bufs[0].TxMeta.OffloadIPChecksum {
		t.Fatal("udp offload flags not set")
	}
	if bufs[2].TxMeta.OffloadUDPChecksum {
		t.Fatal("offload flag set beyond n")
	}
	OffloadTCPChecksums(bufs[2:], 1)
	if !bufs[2].TxMeta.OffloadTCPChecksum {
		t.Fatal("tcp offload flag not set")
	}
	OffloadIPChecksums(bufs[3:], 1)
	if !bufs[3].TxMeta.OffloadIPChecksum || bufs[3].TxMeta.OffloadUDPChecksum {
		t.Fatal("ip-only offload wrong")
	}
	FreeBatch(bufs, 4)
	if pool.Available() != 8 {
		t.Fatal("FreeBatch did not return buffers")
	}
}
