package core

import (
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/ptpclk"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Timestamper measures latencies with the hardware timestamping engine
// (§6, timestamps.lua / the timestamping task of l2-load-latency.lua).
//
// The paper's constraints are honoured: a single timestamped packet is
// in flight at a time (1 pkt/RTT, §6.4), clocks are resynchronized
// before every probe to neutralize drift (§6.3), and probes are layer-2
// PTP packets by default because those have no minimum-size restriction.
type Timestamper struct {
	TxQueue *nic.TxQueue
	RxPort  *nic.Port
	// PktSize is the probe frame size without FCS (default 60).
	PktSize int
	// UDP selects UDP PTP probes instead of layer-2 PTP. UDP probes
	// below the NIC's 80-byte floor are never timestamped (§6.4).
	UDP bool
	// Resync disables the per-probe clock resynchronization when
	// false is explicitly configured via NoResync.
	NoResync bool
	// Timeout bounds the wait for a probe's timestamps (lost probes).
	Timeout sim.Duration

	pool  *mempool.Pool
	seq   uint16
	txBuf [1]*mempool.Mbuf // reusable send slot: no per-probe slice alloc

	// Lost counts probes that timed out.
	Lost uint64
}

// NewTimestamper builds a timestamper for the given path.
func NewTimestamper(txq *nic.TxQueue, rxPort *nic.Port) *Timestamper {
	rxPort.EnableTimestamps(0)
	return &Timestamper{
		TxQueue: txq,
		RxPort:  rxPort,
		PktSize: 60,
		Timeout: sim.Millisecond,
		pool:    mempool.New(mempool.Config{Count: 64}),
	}
}

// Probe sends one timestamped packet and returns the measured one-way
// latency (in synchronized NIC clock time). ok is false if the probe
// or its timestamps were lost.
func (ts *Timestamper) Probe(t *Task) (lat sim.Duration, ok bool) {
	txPort := ts.TxQueue.Port()

	if !ts.NoResync {
		// Resynchronize the receive clock to the transmit clock
		// before each timestamped packet (§6.3).
		ptpclk.Sync(txPort.Clock, ts.RxPort.Clock)
	}

	// Drain stale latch values so this probe's timestamps are
	// unambiguous.
	txPort.ReadTxTimestamp()
	ts.RxPort.ReadRxTimestamp()

	ts.seq++
	m := ts.pool.Alloc(ts.PktSize)
	if m == nil {
		return 0, false
	}
	if ts.UDP {
		p := proto.UDPPTPPacket{B: m.Payload()}
		p.Fill(proto.UDPPTPPacketFill{
			PktLength:   ts.PktSize,
			EthSrc:      txPort.MAC(),
			EthDst:      ts.RxPort.MAC(),
			IPSrc:       proto.MustIPv4("10.255.0.1"),
			IPDst:       proto.MustIPv4("10.255.0.2"),
			MessageType: proto.PTPMsgSync,
			SequenceID:  ts.seq,
		})
	} else {
		p := proto.PTPPacket{B: m.Payload()}
		p.Fill(proto.PTPPacketFill{
			PktLength:   ts.PktSize,
			EthSrc:      txPort.MAC(),
			EthDst:      ts.RxPort.MAC(),
			MessageType: proto.PTPMsgSync,
			SequenceID:  ts.seq,
		})
	}
	m.TxMeta.Timestamp = true
	ts.txBuf[0] = m
	if t.SendAll(ts.TxQueue, ts.txBuf[:]) != 1 {
		ts.txBuf[0] = nil
		return 0, false
	}
	ts.txBuf[0] = nil

	deadline := t.Now().Add(ts.Timeout)
	var txTS, rxTS sim.Time
	var haveTx, haveRx bool
	for t.Now() < deadline {
		if !haveTx {
			if v, seq, ok2 := txPort.ReadTxTimestamp(); ok2 && seq == ts.seq {
				txTS, haveTx = v, true
			}
		}
		if !haveRx {
			if v, seq, ok2 := ts.RxPort.ReadRxTimestamp(); ok2 && seq == ts.seq {
				rxTS, haveRx = v, true
			}
		}
		if haveTx && haveRx {
			return rxTS.Sub(txTS), true
		}
		t.Sleep(backoff)
	}
	ts.Lost++
	return 0, false
}

// MeasureLatency runs count probes and collects a histogram — the
// timestamping task of the example scripts. Probes pace at interval
// (default: back-to-back after completion, the 1/RTT limit). The pacing
// is dithered by a few microseconds so probe instants sample arrival
// grids uniformly: an undithered software loop quantizes to its polling
// granularity and phase-locks against periodic load.
func (ts *Timestamper) MeasureLatency(t *Task, count int, interval sim.Duration) *stats.Histogram {
	h := stats.NewHistogram(sim.Nanosecond)
	ts.MeasureLatencyInto(t, count, interval, h.Add)
	return h
}

// MeasureLatencyInto is MeasureLatency with the caller supplying the
// sample sink — the entry point for recording probe latencies into the
// receiver-side flow pipeline (flow.Stats.AddLatency) instead of a
// private histogram. There is exactly one copy of the probe loop.
func (ts *Timestamper) MeasureLatencyInto(t *Task, count int, interval sim.Duration, record func(sim.Duration)) {
	rng := t.Engine().Rand()
	for i := 0; i < count && t.Running(); i++ {
		if lat, ok := ts.Probe(t); ok {
			record(lat)
		}
		if interval > 0 {
			dither := sim.Duration(rng.Int63n(int64(8 * sim.Microsecond)))
			t.Sleep(interval + dither)
		}
	}
}
