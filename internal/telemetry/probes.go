package telemetry

import (
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/sim"
)

// PortProbe samples a port's statistics registers (atomic loads of
// the published counters — the same snapshot surface the end-of-run
// reports read via Port.CounterSnapshot). The model columns are
// functions of the modeled wire; rx_pool_avail is the port's receive
// pool occupancy, a diagnostic (it varies with drain batching).
func PortProbe(name string, p *nic.Port) Probe {
	return Probe{Name: name, Cols: []Column{
		{Name: "tx_pkts", Rule: RuleSum, Sample: func() uint64 { return p.CounterSnapshot().TxPackets }},
		{Name: "tx_bytes", Rule: RuleSum, Sample: func() uint64 { return p.CounterSnapshot().TxBytes }},
		{Name: "rx_pkts", Rule: RuleSum, Sample: func() uint64 { return p.CounterSnapshot().RxPackets }},
		{Name: "rx_bytes", Rule: RuleSum, Sample: func() uint64 { return p.CounterSnapshot().RxBytes }},
		{Name: "rx_crc_errors", Rule: RuleSum, Sample: func() uint64 { return p.CounterSnapshot().RxCRCErrors }},
		{Name: "rx_missed", Rule: RuleSum, Sample: func() uint64 { return p.CounterSnapshot().RxMissed }},
		{Name: "rx_pool_avail", Rule: RuleSum, Diag: true, Sample: func() uint64 {
			if pool := p.RxPoolPeek(); pool != nil {
				return uint64(pool.Available())
			}
			return 0
		}},
	}}
}

// FlowCol names one tracked flow for FlowProbe.
type FlowCol struct {
	// Label is the flow's column prefix within the probe ("f0" yields
	// "flow.f0.rx", ...). Probe authoring rule applies.
	Label string
	// Key identifies the flow in the tracker.
	Key flow.Key
}

// FlowProbe samples the flow tracker: tracker-level columns first —
// live flows (flows that have received at least one packet), the flat
// table's load factor (permille) and its longest probe chain — then,
// per named flow, received/lost/reordered/duplicate counts plus
// latency quantiles (p50/p99, integer nanoseconds) when the tracker
// records latency. Each named flow's stats struct is force-created at
// registration and bound directly, so sampling is a field read
// regardless of arrival order; a force-created flow has Received == 0
// and does not count as live.
//
// Sharding: a flow is wholly owned by one shard (the generators
// partition flows), so every other shard samples zeros for it and
// RuleSum reproduces the owning shard's values exactly — per-flow
// counts and the live count both survive the sum. The table columns
// are diagnostics under RuleMax: load factor and probe length are
// properties of each shard's private table, not additive quantities.
// The quantile columns are diagnostics too: flow accounting is
// invariant in the core count, but wire timing legitimately differs
// between one shared wire and k private ones (the same line the
// report-level invariance tests draw), so latency columns would break
// the model series' cross-core byte-identity. Their guards handle the
// lazy histogram contract — a flow that never carries a stamped
// timestamp never allocates a histogram, and its quantiles read 0
// exactly as an empty histogram's did. Quantile sampling also sorts
// the tracker's latency samples, so the flow probe is for observed
// runs and goldens, not for the zero-alloc benchmark class.
func FlowProbe(tr *flow.Tracker, flows []FlowCol) Probe {
	cols := []Column{
		{Name: "live", Rule: RuleSum, Sample: tr.ActiveFlows},
		{Name: "table_load_pm", Rule: RuleMax, Diag: true, Sample: func() uint64 {
			used, capacity := tr.TableLoad()
			if capacity == 0 {
				return 0
			}
			return uint64(used) * 1000 / uint64(capacity)
		}},
		{Name: "table_probe_max", Rule: RuleMax, Diag: true, Sample: func() uint64 {
			return uint64(tr.MaxProbe())
		}},
	}
	for _, fc := range flows {
		fs := tr.Flow(fc.Key)
		cols = append(cols,
			Column{Name: fc.Label + ".rx", Rule: RuleSum, Sample: func() uint64 { return fs.Received }},
			Column{Name: fc.Label + ".lost", Rule: RuleSum, Sample: func() uint64 { return fs.Lost }},
			Column{Name: fc.Label + ".reordered", Rule: RuleSum, Sample: func() uint64 { return fs.Reordered }},
			Column{Name: fc.Label + ".dup", Rule: RuleSum, Sample: func() uint64 { return fs.Duplicates }},
		)
		if tr.LatencyEnabled() {
			quantile := func(p float64) uint64 {
				if fs.Latency == nil || fs.Latency.Count() == 0 {
					return 0
				}
				return uint64(int64(fs.Latency.Percentile(p)) / int64(sim.Nanosecond))
			}
			cols = append(cols,
				Column{Name: fc.Label + ".lat_p50_ns", Rule: RuleSum, Diag: true, Sample: func() uint64 { return quantile(50) }},
				Column{Name: fc.Label + ".lat_p99_ns", Rule: RuleSum, Diag: true, Sample: func() uint64 { return quantile(99) }},
			)
		}
	}
	return Probe{Name: "flow", Cols: cols}
}

// FaultProbe samples a fault injector's lifecycle counters. The merge
// rules encode the fault layer's sharding contract: a plan is stated
// in global sim time and every shard executes the identical plan, so
// `fired` is a per-plan quantity (RuleMax reproduces the single-core
// value exactly), while `frames_dropped` counts each shard's own
// traffic lost at the fault boundary (RuleSum, invariant because the
// global slot grid partitions across shards). Recovery latency and the
// open-window count are diagnostics — properties of the plan's
// execution, recorded for soak observability.
func FaultProbe(in *fault.Injector) Probe {
	return Probe{Name: "fault", Cols: []Column{
		{Name: "fired", Rule: RuleMax, Sample: in.Fired},
		{Name: "frames_dropped", Rule: RuleSum, Sample: in.FramesDropped},
		{Name: "active", Rule: RuleMax, Diag: true, Sample: in.ActiveFaults},
		{Name: "recovery_ns", Rule: RuleMax, Diag: true, Sample: in.MaxRecoveryNS},
	}}
}

// EngineProbe samples the scheduler's internal counters. All columns
// are diagnostics: event counts and wheel mechanics depend on how work
// is grouped into events, which is exactly what batch size and shard
// count change.
func EngineProbe(eng *sim.Engine) Probe {
	return Probe{Name: "engine", Cols: []Column{
		{Name: "events", Rule: RuleSum, Diag: true, Sample: eng.EventsProcessed},
		{Name: "sched_promotions", Rule: RuleSum, Diag: true, Sample: func() uint64 {
			return eng.SchedStats().WheelPromotions
		}},
		{Name: "sched_max_depth", Rule: RuleMax, Diag: true, Sample: func() uint64 {
			return uint64(eng.SchedStats().MaxSlotDepth)
		}},
		{Name: "pending", Rule: RuleSum, Diag: true, Sample: func() uint64 {
			return uint64(eng.Pending())
		}},
	}}
}

// PoolProbe samples a mempool's free-buffer count — occupancy
// diagnostics for soak runs (a leak shows as a monotonic drain).
func PoolProbe(name string, p *mempool.Pool) Probe {
	return Probe{Name: name, Cols: []Column{
		{Name: "avail", Rule: RuleSum, Diag: true, Sample: func() uint64 {
			return uint64(p.Available())
		}},
	}}
}
