package telemetry

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/sim"
)

// testBed runs a recorder over a synthetic counter that increments at
// 10 off-grid instants per 1 ms window.
func testBed(t *testing.T, cfg Config, windows int) (*Recorder, *bytes.Buffer) {
	t.Helper()
	eng := sim.NewEngine(1)
	var n uint64
	var stream bytes.Buffer
	if cfg.Stream != nil {
		cfg.Stream = &stream
	}
	r := NewRecorder(eng, cfg)
	r.Register(Probe{Name: "p", Cols: []Column{
		{Name: "n", Rule: RuleSum, Sample: func() uint64 { return n }},
		{Name: "hi", Rule: RuleMax, Diag: true, Sample: func() uint64 { return 7 }},
	}})
	stop := sim.Time(0).Add(sim.Duration(windows) * sim.Millisecond)
	eng.SetStopTime(stop)
	r.Start()
	for i := 0; i < windows*10; i++ {
		at := sim.Time(0).Add(sim.Duration(i)*100*sim.Microsecond + 50*sim.Microsecond)
		eng.Schedule(at, func() { n++ })
	}
	eng.RunAll()
	return r, &stream
}

func TestRecorderWindowGrid(t *testing.T) {
	r, _ := testBed(t, Config{Interval: sim.Millisecond}, 5)
	if r.Windows() != 5 {
		t.Fatalf("recorded %d windows, want 5", r.Windows())
	}
	s := r.Series()
	if s.First != 0 || len(s.Rows) != 5 {
		t.Fatalf("series first=%d rows=%d", s.First, len(s.Rows))
	}
	for w, row := range s.Rows {
		if want := uint64((w + 1) * 10); row[0] != want {
			t.Fatalf("window %d: n=%d, want %d", w, row[0], want)
		}
		if row[1] != 7 {
			t.Fatalf("window %d: hi=%d, want 7", w, row[1])
		}
	}
}

func TestRecorderRingWrap(t *testing.T) {
	r, _ := testBed(t, Config{Interval: sim.Millisecond, Capacity: 4}, 10)
	if r.Windows() != 10 {
		t.Fatalf("recorded %d windows, want 10", r.Windows())
	}
	s := r.Series()
	if s.First != 6 || len(s.Rows) != 4 {
		t.Fatalf("series first=%d rows=%d, want 6/4", s.First, len(s.Rows))
	}
	for i, row := range s.Rows {
		if want := uint64((int(s.First) + i + 1) * 10); row[0] != want {
			t.Fatalf("retained row %d: n=%d, want %d", i, row[0], want)
		}
	}
}

// TestStreamMatchesPostRunExport: the live stream and the post-run
// Series writer must produce identical bytes — they share the row
// renderer, and this pins it.
func TestStreamMatchesPostRunExport(t *testing.T) {
	r, stream := testBed(t, Config{Interval: sim.Millisecond, Stream: &bytes.Buffer{}}, 3)
	var post bytes.Buffer
	if err := r.Series().WriteCSV(&post, false); err != nil {
		t.Fatal(err)
	}
	if stream.String() != post.String() {
		t.Fatalf("stream != post-run export:\n%s\n---\n%s", stream.String(), post.String())
	}
	// Diagnostic columns stay out of the default export.
	if strings.Contains(post.String(), "p.hi") {
		t.Fatalf("diag column leaked into model export:\n%s", post.String())
	}
	var diag bytes.Buffer
	if err := r.Series().WriteCSV(&diag, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(diag.String(), "p.hi") {
		t.Fatalf("diag export misses diag column:\n%s", diag.String())
	}
	lines := strings.Split(strings.TrimSpace(post.String()), "\n")
	if lines[0] != "window,t_ns,p.n" {
		t.Fatalf("header %q", lines[0])
	}
	if lines[1] != "0,1000000,10" {
		t.Fatalf("first row %q", lines[1])
	}
}

func TestStreamJSONL(t *testing.T) {
	r, stream := testBed(t, Config{Interval: sim.Millisecond, Stream: &bytes.Buffer{}, StreamJSONL: true, StreamDiag: true}, 2)
	var post bytes.Buffer
	if err := r.Series().WriteJSONL(&post, true); err != nil {
		t.Fatal(err)
	}
	if stream.String() != post.String() {
		t.Fatalf("jsonl stream != post-run export:\n%s\n---\n%s", stream.String(), post.String())
	}
	lines := strings.Split(strings.TrimSpace(stream.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d jsonl rows, want 2", len(lines))
	}
	if lines[0] != `{"window":0,"t_ns":1000000,"p.n":10,"p.hi":7}` {
		t.Fatalf("jsonl row %q", lines[0])
	}
}

func TestMergeSeries(t *testing.T) {
	mk := func(vals ...uint64) *Series {
		return &Series{
			Interval: sim.Millisecond,
			Cols: []ColumnMeta{
				{Name: "a.sum", Rule: RuleSum},
				{Name: "a.max", Rule: RuleMax, Diag: true},
			},
			Rows: [][]uint64{{vals[0], vals[1]}, {vals[2], vals[3]}},
		}
	}
	m, err := MergeSeries([]*Series{mk(1, 5, 2, 6), mk(10, 3, 20, 9)})
	if err != nil {
		t.Fatal(err)
	}
	want := [][]uint64{{11, 5}, {22, 9}}
	for w := range want {
		for c := range want[w] {
			if m.Rows[w][c] != want[w][c] {
				t.Fatalf("merged[%d][%d]=%d, want %d", w, c, m.Rows[w][c], want[w][c])
			}
		}
	}
	// Mismatched recordings must refuse to merge.
	bad := mk(0, 0, 0, 0)
	bad.Interval = 2 * sim.Millisecond
	if _, err := MergeSeries([]*Series{mk(0, 0, 0, 0), bad}); err == nil {
		t.Fatal("merge of mismatched intervals succeeded")
	}
	bad = mk(0, 0, 0, 0)
	bad.Cols[1].Name = "a.other"
	if _, err := MergeSeries([]*Series{mk(0, 0, 0, 0), bad}); err == nil {
		t.Fatal("merge of mismatched columns succeeded")
	}
}

func TestColumnNameRule(t *testing.T) {
	eng := sim.NewEngine(1)
	r := NewRecorder(eng, Config{})
	defer func() {
		if recover() == nil {
			t.Fatal("bad column name accepted")
		}
	}()
	r.Register(Probe{Name: "p", Cols: []Column{{Name: "Bad Name", Sample: func() uint64 { return 0 }}}})
}
