// Package telemetry is the simulation's observability layer: windowed
// counter snapshots driven by the engine's own event grid.
//
// A Recorder schedules one snapshot event per window (default 1 ms of
// simulated time) on the engine it observes and samples every
// registered probe column into a preallocated ring of window records.
// Because the windows are simulated-time windows — never wall time —
// the recorded series is a pure function of the model and its seed:
// the same run produces the same bytes, merged per-shard series are
// byte-identical across core counts, and the output can be pinned by
// golden files.
//
// The determinism contract, in detail:
//
//   - Sampling is strictly out of band. A Sample function reads state
//     (atomic counter loads, tracker aggregates); it must not schedule
//     events, draw randomness or otherwise perturb the model.
//   - Snapshot events fire on the engine grid at epoch + w*interval.
//     Equal-time ordering follows the engine's schedule-sequence rule,
//     so a window edge always observes exactly the deliveries that
//     published before it — the same rule the end-of-run report
//     snapshots follow.
//   - Columns are either model columns (port counters, flow
//     aggregates: functions of the modeled packet timeline, invariant
//     across batch size and shard count) or diagnostic columns
//     (Column.Diag: event counts, buffer occupancy — execution
//     mechanics that legitimately vary with batching and sharding).
//     Exports exclude diagnostic columns unless asked, which is what
//     makes the exported series byte-identical across Cores × Batch.
//
// Probe authoring rule: column and probe names are lowercase
// [a-z0-9_] (dots join the probe prefix to the column name), Sample
// must be cheap and allocation-free, and any column whose value
// depends on how work was grouped into events — not on the modeled
// wire — must set Diag.
package telemetry

import (
	"fmt"
	"io"
	"strconv"

	"repro/internal/sim"
)

// Rule is a column's cross-shard merge combinator.
type Rule uint8

// Merge rules.
const (
	// RuleSum adds shard samples — counters over disjointly sharded
	// work (each packet, flow and drop is owned by exactly one shard).
	RuleSum Rule = iota
	// RuleMax takes the shard maximum — running high-water marks.
	RuleMax
)

// ColumnMeta is the exported identity of a column: everything but the
// sampling function.
type ColumnMeta struct {
	Name string
	Rule Rule
	Diag bool
}

// Column is one sampled value of a probe.
type Column struct {
	// Name is the column name within the probe; the exported name is
	// "<probe>.<name>". Lowercase [a-z0-9_.] only.
	Name string
	// Rule is the cross-shard merge combinator.
	Rule Rule
	// Diag marks a diagnostic column: a value that reflects execution
	// mechanics (event counts, ring/pool occupancy) rather than the
	// modeled wire, and therefore varies with batch size and shard
	// count. Diagnostic columns are recorded but excluded from exports
	// unless explicitly included.
	Diag bool
	// Sample reads the current value. It runs inside the engine's
	// snapshot event: it must be cheap, must not allocate in steady
	// state, and must not perturb the model (no scheduling, no
	// randomness).
	Sample func() uint64
}

// Probe is a named group of columns registered as one unit.
type Probe struct {
	Name string
	Cols []Column
}

// DefaultInterval is the default window length: 1 ms of simulated
// time, the per-second-style readout cadence scaled to simulation runs.
const DefaultInterval = sim.Millisecond

// defaultCapacity bounds the ring: at the default interval it retains
// the last ~4 s of simulated run.
const defaultCapacity = 4096

// Config configures a Recorder.
type Config struct {
	// Interval is the sim-time window length (default DefaultInterval).
	Interval sim.Duration
	// Capacity is the number of windows the ring retains before
	// overwriting the oldest (default 4096). Streaming is unaffected
	// by overwrites.
	Capacity int
	// Stream, when set, receives every window row as it is recorded —
	// CSV (with a leading header row) by default, JSONL with
	// StreamJSONL. Rows are rendered with the same code as the
	// post-run Series writers, so a streamed file and a post-run
	// export of the same run are byte-identical.
	Stream io.Writer
	// StreamJSONL switches the stream format to one JSON object per
	// window.
	StreamJSONL bool
	// StreamDiag includes diagnostic columns in the stream.
	StreamDiag bool
}

// Recorder samples registered probes on the engine's event grid.
type Recorder struct {
	eng     *sim.Engine
	cfg     Config
	meta    []ColumnMeta
	sample  []func() uint64
	started bool

	ring []uint64 // capacity × len(meta) backing store
	rows uint64   // windows recorded so far (monotonic)

	epoch  sim.Time // Start instant; window w covers (epoch+w·I, epoch+(w+1)·I]
	nextAt sim.Time
	tickFn func()
	buf    []byte // reusable stream-row render buffer
}

// NewRecorder creates a recorder on eng. Register probes, then Start.
func NewRecorder(eng *sim.Engine, cfg Config) *Recorder {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Capacity <= 0 {
		cfg.Capacity = defaultCapacity
	}
	r := &Recorder{eng: eng, cfg: cfg}
	r.tickFn = r.tick
	return r
}

// Interval returns the configured window length.
func (r *Recorder) Interval() sim.Duration { return r.cfg.Interval }

// Windows returns the number of windows recorded so far.
func (r *Recorder) Windows() uint64 { return r.rows }

// Register appends a probe's columns. Registration order is the column
// order — it must be deterministic (and identical across shards of a
// sharded run) for the exported series to be stable. Must be called
// before Start.
func (r *Recorder) Register(p Probe) {
	if r.started {
		panic("telemetry: Register after Start")
	}
	for _, c := range p.Cols {
		name := p.Name + "." + c.Name
		validateName(name)
		r.meta = append(r.meta, ColumnMeta{Name: name, Rule: c.Rule, Diag: c.Diag})
		r.sample = append(r.sample, c.Sample)
	}
}

// validateName enforces the probe authoring rule: lowercase
// [a-z0-9_.], so names embed into CSV headers and JSON keys verbatim.
func validateName(name string) {
	if name == "" {
		panic("telemetry: empty column name")
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '_' || c == '.' {
			continue
		}
		panic(fmt.Sprintf("telemetry: column name %q: only [a-z0-9_.] allowed", name))
	}
}

// Start arms the first snapshot at Now()+Interval. The recorder
// re-arms itself while the engine's run time is in progress
// (Engine.Running); the snapshot at the stop instant records the final
// window and stops, so a run of duration D records exactly D/Interval
// windows when D is a multiple of the interval.
func (r *Recorder) Start() {
	if r.started {
		panic("telemetry: Start called twice")
	}
	r.started = true
	r.epoch = r.eng.Now()
	r.ring = make([]uint64, r.cfg.Capacity*len(r.meta))
	r.buf = make([]byte, 0, 64+16*len(r.meta))
	if r.cfg.Stream != nil && !r.cfg.StreamJSONL {
		r.buf = appendCSVHeader(r.buf[:0], r.meta, r.cfg.StreamDiag)
		r.cfg.Stream.Write(r.buf)
	}
	r.nextAt = r.epoch.Add(r.cfg.Interval)
	r.eng.Schedule(r.nextAt, r.tickFn)
}

// tick is the snapshot event: sample every column into the ring slot
// of the current window, stream the row if configured, re-arm.
func (r *Recorder) tick() {
	n := len(r.meta)
	base := int(r.rows%uint64(r.cfg.Capacity)) * n
	row := r.ring[base : base+n : base+n]
	for i, s := range r.sample {
		row[i] = s()
	}
	w := r.rows
	r.rows++
	if r.cfg.Stream != nil {
		tNS := windowEndNS(r.epoch, r.cfg.Interval, w)
		if r.cfg.StreamJSONL {
			r.buf = appendJSONRow(r.buf[:0], w, tNS, row, r.meta, r.cfg.StreamDiag)
		} else {
			r.buf = appendCSVRow(r.buf[:0], w, tNS, row, r.meta, r.cfg.StreamDiag)
		}
		r.cfg.Stream.Write(r.buf)
	}
	if r.eng.Running() {
		r.nextAt = r.nextAt.Add(r.cfg.Interval)
		r.eng.Schedule(r.nextAt, r.tickFn)
	}
}

// Series exports the retained windows as an immutable time series.
func (r *Recorder) Series() *Series {
	n := len(r.meta)
	retained := r.rows
	if retained > uint64(r.cfg.Capacity) {
		retained = uint64(r.cfg.Capacity)
	}
	s := &Series{
		Interval: r.cfg.Interval,
		Epoch:    r.epoch,
		First:    r.rows - retained,
		Cols:     append([]ColumnMeta(nil), r.meta...),
		Rows:     make([][]uint64, retained),
	}
	for i := uint64(0); i < retained; i++ {
		w := s.First + i
		base := int(w%uint64(r.cfg.Capacity)) * n
		s.Rows[i] = append([]uint64(nil), r.ring[base:base+n]...)
	}
	return s
}

// Series is an exported telemetry time series: one row per window, in
// window order. Rows[i] is window First+i, covering the simulated
// interval (Epoch+w·Interval, Epoch+(w+1)·Interval].
type Series struct {
	Interval sim.Duration
	Epoch    sim.Time
	First    uint64
	Cols     []ColumnMeta
	Rows     [][]uint64
}

// windowEndNS is the exported time column: the window's closing edge
// in integer nanoseconds of simulated time (exact for any interval on
// the nanosecond grid — no float formatting, so output is stable).
func windowEndNS(epoch sim.Time, interval sim.Duration, w uint64) int64 {
	return int64(epoch.Add(sim.Duration(w+1)*interval)) / int64(sim.Nanosecond)
}

// MergeSeries combines per-shard series into one, column by column
// under each column's Rule. Model columns merge exactly: every packet,
// flow and drop is owned by one shard, so RuleSum over shard counters
// reproduces the single-engine series bit for bit. The inputs must
// describe the same recording (interval, epoch, window range, column
// set) or an error is returned.
func MergeSeries(parts []*Series) (*Series, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("telemetry: merge of zero series")
	}
	head := parts[0]
	for i, p := range parts[1:] {
		if err := head.compatible(p); err != nil {
			return nil, fmt.Errorf("telemetry: shard %d: %w", i+1, err)
		}
	}
	out := &Series{
		Interval: head.Interval,
		Epoch:    head.Epoch,
		First:    head.First,
		Cols:     append([]ColumnMeta(nil), head.Cols...),
		Rows:     make([][]uint64, len(head.Rows)),
	}
	for w := range head.Rows {
		row := append([]uint64(nil), head.Rows[w]...)
		for _, p := range parts[1:] {
			for c, v := range p.Rows[w] {
				switch out.Cols[c].Rule {
				case RuleMax:
					if v > row[c] {
						row[c] = v
					}
				default:
					row[c] += v
				}
			}
		}
		out.Rows[w] = row
	}
	return out, nil
}

// compatible reports whether two series describe the same recording.
func (s *Series) compatible(o *Series) error {
	switch {
	case s.Interval != o.Interval:
		return fmt.Errorf("interval %v vs %v", s.Interval, o.Interval)
	case s.Epoch != o.Epoch:
		return fmt.Errorf("epoch %v vs %v", s.Epoch, o.Epoch)
	case s.First != o.First:
		return fmt.Errorf("first window %d vs %d", s.First, o.First)
	case len(s.Rows) != len(o.Rows):
		return fmt.Errorf("%d vs %d windows", len(s.Rows), len(o.Rows))
	case len(s.Cols) != len(o.Cols):
		return fmt.Errorf("%d vs %d columns", len(s.Cols), len(o.Cols))
	}
	for i := range s.Cols {
		if s.Cols[i] != o.Cols[i] {
			return fmt.Errorf("column %d: %+v vs %+v", i, s.Cols[i], o.Cols[i])
		}
	}
	return nil
}

// WriteCSV writes the series with a header row. Diagnostic columns are
// excluded unless includeDiag — the exported model columns are the
// byte-identical-across-Cores×Batch surface.
func (s *Series) WriteCSV(w io.Writer, includeDiag bool) error {
	buf := appendCSVHeader(nil, s.Cols, includeDiag)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for i, row := range s.Rows {
		win := s.First + uint64(i)
		buf = appendCSVRow(buf[:0], win, windowEndNS(s.Epoch, s.Interval, win), row, s.Cols, includeDiag)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSONL writes one JSON object per window.
func (s *Series) WriteJSONL(w io.Writer, includeDiag bool) error {
	var buf []byte
	for i, row := range s.Rows {
		win := s.First + uint64(i)
		buf = appendJSONRow(buf[:0], win, windowEndNS(s.Epoch, s.Interval, win), row, s.Cols, includeDiag)
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// appendCSVHeader renders "window,t_ns,<cols...>\n".
func appendCSVHeader(buf []byte, cols []ColumnMeta, diag bool) []byte {
	buf = append(buf, "window,t_ns"...)
	for _, c := range cols {
		if c.Diag && !diag {
			continue
		}
		buf = append(buf, ',')
		buf = append(buf, c.Name...)
	}
	return append(buf, '\n')
}

// appendCSVRow renders one window row. Shared by the live stream and
// the post-run writer, which is what makes the two byte-identical.
func appendCSVRow(buf []byte, w uint64, tNS int64, row []uint64, cols []ColumnMeta, diag bool) []byte {
	buf = strconv.AppendUint(buf, w, 10)
	buf = append(buf, ',')
	buf = strconv.AppendInt(buf, tNS, 10)
	for i, c := range cols {
		if c.Diag && !diag {
			continue
		}
		buf = append(buf, ',')
		buf = strconv.AppendUint(buf, row[i], 10)
	}
	return append(buf, '\n')
}

// appendJSONRow renders one window as a JSON object. Column names obey
// the probe authoring rule ([a-z0-9_.]), so no escaping is needed.
func appendJSONRow(buf []byte, w uint64, tNS int64, row []uint64, cols []ColumnMeta, diag bool) []byte {
	buf = append(buf, `{"window":`...)
	buf = strconv.AppendUint(buf, w, 10)
	buf = append(buf, `,"t_ns":`...)
	buf = strconv.AppendInt(buf, tNS, 10)
	for i, c := range cols {
		if c.Diag && !diag {
			continue
		}
		buf = append(buf, ',', '"')
		buf = append(buf, c.Name...)
		buf = append(buf, '"', ':')
		buf = strconv.AppendUint(buf, row[i], 10)
	}
	return append(buf, '}', '\n')
}
