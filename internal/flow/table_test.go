package flow

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"testing"

	"repro/internal/proto"
	"repro/internal/sim"
)

// benchFrame builds a stamped UDP frame without a *testing.T, for the
// benchmarks and the million-flow tests. The destination address and
// port are patched per flow by patchFlow.
func benchFrame() []byte {
	b := make([]byte, 60)
	p := proto.UDPPacket{B: b}
	p.Fill(proto.UDPPacketFill{
		PktLength: 60,
		IPSrc:     proto.MustIPv4("10.0.0.1"),
		IPDst:     proto.MustIPv4("10.1.0.1"),
		UDPSrc:    1234, UDPDst: 0,
	})
	return b
}

const framePayloadOff = proto.EthHdrLen + proto.IPv4HdrLen + proto.UDPHdrLen

// frameDstBase is 10.1.0.1, hoisted so patchFlow is allocation-free
// (MustIPv4 parses with strings.Split).
var frameDstBase = proto.MustIPv4("10.1.0.1")

// patchFlow rewrites the frame's flow identity in place: the low 16
// bits of fid land in the destination port, the high bits offset the
// destination address — the same fid encoding the churn scenario uses.
// Checksums are left stale; Parse does not verify them.
func patchFlow(b []byte, fid uint64) {
	binary.BigEndian.PutUint32(b[proto.EthHdrLen+16:], uint32(frameDstBase)+uint32(fid>>16))
	binary.BigEndian.PutUint16(b[proto.EthHdrLen+proto.IPv4HdrLen+2:], uint16(fid))
}

// flowKey is the Key patchFlow produces for fid.
func flowKey(fid uint64) Key {
	return Key{
		Proto:   proto.IPProtoUDP,
		Src:     proto.MustIPv4("10.0.0.1"),
		Dst:     proto.MustIPv4("10.1.0.1") + proto.IPv4(fid>>16),
		SrcPort: 1234, DstPort: uint16(fid),
	}
}

// requireFlowsEqual compares two trackers' complete per-flow state —
// counters, inter-arrival statistics bit for bit, and latency
// histograms bin-exact including lazy nil-ness semantics (a flow with
// no latency samples must be nil or empty in both).
func requireFlowsEqual(t *testing.T, label string, a, b *Tracker) {
	t.Helper()
	af, bf := a.Flows(), b.Flows()
	if len(af) != len(bf) {
		t.Fatalf("%s: flow counts differ: %d vs %d", label, len(af), len(bf))
	}
	if a.Unparsed != b.Unparsed {
		t.Errorf("%s: unparsed %d vs %d", label, a.Unparsed, b.Unparsed)
	}
	if a.ActiveFlows() != b.ActiveFlows() {
		t.Errorf("%s: active %d vs %d", label, a.ActiveFlows(), b.ActiveFlows())
	}
	for i := range af {
		x, y := af[i], bf[i]
		if x.Key != y.Key {
			t.Fatalf("%s flow %d: key %v vs %v", label, i, x.Key, y.Key)
		}
		if x.Received != y.Received || x.Bytes != y.Bytes || x.Stamped != y.Stamped ||
			x.Lost != y.Lost || x.Reordered != y.Reordered || x.Duplicates != y.Duplicates {
			t.Errorf("%s flow %v: counters differ: %+v vs %+v", label, x.Key, x, y)
		}
		if x.InterArrival.Count() != y.InterArrival.Count() ||
			math.Float64bits(x.InterArrival.Mean()) != math.Float64bits(y.InterArrival.Mean()) ||
			math.Float64bits(x.InterArrival.Variance()) != math.Float64bits(y.InterArrival.Variance()) {
			t.Errorf("%s flow %v: inter-arrival stats differ", label, x.Key)
		}
		xc, yc := uint64(0), uint64(0)
		if x.Latency != nil {
			xc = x.Latency.Count()
		}
		if y.Latency != nil {
			yc = y.Latency.Count()
		}
		if xc != yc {
			t.Errorf("%s flow %v: latency counts differ: %d vs %d", label, x.Key, xc, yc)
			continue
		}
		if xc > 0 {
			xb, yb := x.Latency.Bins(), y.Latency.Bins()
			if len(xb) != len(yb) {
				t.Errorf("%s flow %v: latency bin counts differ", label, x.Key)
				continue
			}
			for j := range xb {
				if xb[j] != yb[j] {
					t.Errorf("%s flow %v: latency bin %d differs: %+v vs %+v", label, x.Key, j, xb[j], yb[j])
					break
				}
			}
		}
	}
}

// TestFlatMatchesReference is the tentpole's property pin: randomized
// insert/record/merge sequences — duplicate keys, gaps, unstamped
// payloads, enough distinct flows to cross several grow/rehash
// boundaries (64 → 8192 slots), and an uneven 3-way sharding — produce
// bit-identical per-flow state in the flat open-addressing tracker and
// the map-based reference, in every merge direction.
func TestFlatMatchesReference(t *testing.T) {
	const F = 3000 // crosses rehash at 48, 96, ..., 3072 used slots
	rng := rand.New(rand.NewSource(23))

	type rec struct {
		fid       uint64
		seq       uint64
		at        sim.Time
		unstamped bool
	}
	var stream []rec
	next := make([]uint64, F)
	for i := 0; i < 12000; i++ {
		fid := uint64(rng.Intn(F))
		s := next[fid]
		next[fid]++
		switch rng.Intn(12) {
		case 0: // gap: skip a sequence, the flow loses one packet
			s++
			next[fid] = s + 1
		case 1: // duplicate delivery
			stream = append(stream, rec{fid, s, sim.Time(i) * 100, false})
		case 2: // unstamped packet (no sequence trailer at all)
			stream = append(stream, rec{fid, 0, sim.Time(i) * 100, true})
			continue
		}
		stream = append(stream, rec{fid, s, sim.Time(i) * 100, false})
	}

	run := func(cfg Config, shard func(fid uint64) bool) *Tracker {
		tr := NewTracker(cfg)
		buf := benchFrame()
		for _, r := range stream {
			if shard != nil && !shard(r.fid) {
				continue
			}
			patchFlow(buf, r.fid)
			if r.unstamped {
				for i := framePayloadOff; i < len(buf); i++ {
					buf[i] = 0
				}
			} else {
				Stamp(buf[framePayloadOff:], r.seq, r.at-70)
			}
			tr.Record(buf, r.at)
		}
		return tr
	}

	flatCfg := Config{Latency: true, SeqWindow: 64}
	refCfg := Config{Latency: true, SeqWindow: 64, Reference: true}

	flat := run(flatCfg, nil)
	ref := run(refCfg, nil)
	requireFlowsEqual(t, "unsharded flat vs reference", flat, ref)

	// Uneven 3-way whole-flow sharding: shard 0 takes half the flows,
	// shards 1 and 2 split the rest unevenly.
	owner := func(fid uint64) int {
		switch {
		case fid%2 == 0:
			return 0
		case fid%3 == 0:
			return 1
		default:
			return 2
		}
	}
	var flatShards, refShards []*Tracker
	for s := 0; s < 3; s++ {
		s := s
		flatShards = append(flatShards, run(flatCfg, func(fid uint64) bool { return owner(fid) == s }))
		refShards = append(refShards, run(refCfg, func(fid uint64) bool { return owner(fid) == s }))
	}

	// Every merge direction: flat←flat, ref←ref, flat←ref, ref←flat.
	cases := []struct {
		label  string
		root   Config
		shards []*Tracker
	}{
		{"flat shards into flat", flatCfg, flatShards},
		{"reference shards into reference", refCfg, refShards},
		{"reference shards into flat", flatCfg, refShards},
		{"flat shards into reference", refCfg, flatShards},
	}
	for _, c := range cases {
		merged := NewTracker(c.root)
		for _, s := range c.shards {
			merged.Merge(s)
		}
		requireFlowsEqual(t, c.label, merged, ref)
	}
}

// TestTableGrowthKeepsPointers pins the arena stability contract: a
// *Stats handed out before thousands of inserts (and the grows they
// force) still addresses the same live record afterwards — the
// property telemetry probes and the lookup memo rely on.
func TestTableGrowthKeepsPointers(t *testing.T) {
	tr := NewTracker(Config{SeqWindow: 64})
	early := tr.Flow(flowKey(0))
	early.Received = 77
	for fid := uint64(1); fid < 5000; fid++ {
		tr.Flow(fid2key(fid))
	}
	if got := tr.Flow(flowKey(0)); got != early {
		t.Fatalf("record moved across growth: %p vs %p", got, early)
	}
	if early.Received != 77 {
		t.Fatalf("record content lost across growth")
	}
	used, capacity := tr.TableLoad()
	if used != 5000 || capacity < 5000 {
		t.Fatalf("table load = %d/%d, want 5000 used", used, capacity)
	}
	if tr.MaxProbe() < 1 {
		t.Fatalf("maxProbe = %d, want >= 1", tr.MaxProbe())
	}
}

// fid2key is flowKey under a name the growth test can use with mixed
// port/address bits exercised.
func fid2key(fid uint64) Key { return flowKey(fid) }

// TestMillionFlowInvariance is the acceptance matrix at scale: one
// million flows, two passes each, attributed through RecordBatch under
// Cores {1,2,4} × Batch {1,32} in both storage modes, with whole-flow
// sharding and per-config merges — every configuration must produce
// the same digest over the complete sorted per-flow state. Gated out
// of -short runs: it holds two ~1M-flow trackers alive at its peak.
func TestMillionFlowInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("million-flow invariance runs in the full suite only")
	}
	const F = 1 << 20
	const passes = 2

	digest := func(tr *Tracker) uint64 {
		h := fnv.New64a()
		var b [8]byte
		w := func(v uint64) {
			binary.BigEndian.PutUint64(b[:], v)
			h.Write(b[:])
		}
		for _, fs := range tr.Flows() {
			w(uint64(fs.Key.Src))
			w(uint64(fs.Key.Dst))
			w(uint64(fs.Key.SrcPort)<<16 | uint64(fs.Key.DstPort))
			w(fs.Received)
			w(fs.Bytes)
			w(fs.Stamped)
			w(fs.Lost)
			w(fs.Reordered)
			w(fs.Duplicates)
			w(fs.InterArrival.Count())
			w(math.Float64bits(fs.InterArrival.Mean()))
			w(math.Float64bits(fs.InterArrival.Variance()))
		}
		w(tr.ActiveFlows())
		w(uint64(tr.NumFlows()))
		return h.Sum64()
	}

	// Deterministic stream: pass p sends flow fid sequence p, except
	// every 7th flow skips its pass-1 packet (a permanent gap → one
	// lost) and every 5th flow duplicates its final packet.
	runConfig := func(cores, batch int, reference bool) uint64 {
		cfg := Config{SeqWindow: 64, Reference: reference}
		shards := make([]*Tracker, cores)
		for i := range shards {
			shards[i] = NewTracker(cfg)
		}
		pend := make([][]Frame, cores)
		fill := make([]int, cores)
		for i := range pend {
			pend[i] = make([]Frame, batch)
		}
		flush := func(s int) {
			shards[s].RecordBatch(pend[s][:fill[s]])
			fill[s] = 0
		}
		// Each shard owns its frame buffers: a pending train must keep
		// its bytes intact until its shard flushes, and shards fill at
		// different rates.
		shardBufs := make([][][]byte, cores)
		for s := range shardBufs {
			shardBufs[s] = make([][]byte, batch)
			for i := range shardBufs[s] {
				shardBufs[s][i] = benchFrame()
			}
		}
		emit := func(fid, seq uint64, at sim.Time) {
			s := int(fid) % cores
			buf := shardBufs[s][fill[s]]
			patchFlow(buf, fid)
			Stamp(buf[framePayloadOff:], seq, at-70)
			pend[s][fill[s]] = Frame{Data: buf, Rx: at}
			fill[s]++
			if fill[s] == batch {
				flush(s)
			}
		}
		var at sim.Time
		for p := uint64(0); p < passes; p++ {
			for fid := uint64(0); fid < F; fid++ {
				at += 100
				if p == 1 && fid%7 == 0 {
					continue // permanent gap
				}
				emit(fid, p, at)
				if p == passes-1 && fid%5 == 0 {
					at += 100
					emit(fid, p, at) // duplicate
				}
			}
		}
		for s := 0; s < cores; s++ {
			flush(s)
		}
		got := shards[0]
		if cores > 1 {
			got = NewTracker(cfg)
			for _, s := range shards {
				got.Merge(s)
			}
		}
		return digest(got)
	}

	var want uint64
	first := true
	for _, reference := range []bool{false, true} {
		for _, cores := range []int{1, 2, 4} {
			for _, batch := range []int{1, 32} {
				got := runConfig(cores, batch, reference)
				label := fmt.Sprintf("ref=%v cores=%d batch=%d", reference, cores, batch)
				if first {
					want = got
					first = false
					continue
				}
				if got != want {
					t.Fatalf("%s: digest %#x, want %#x (config diverged at 1M flows)", label, got, want)
				}
			}
		}
	}
}

// FuzzParse pins that arbitrary bytes never panic the parser and that
// ok=true implies a self-consistent payload slice.
func FuzzParse(f *testing.F) {
	f.Add(benchFrame())
	f.Add([]byte{})
	f.Add(make([]byte, proto.EthHdrLen+proto.IPv4HdrLen))
	truncated := benchFrame()[:proto.EthHdrLen+proto.IPv4HdrLen+2]
	f.Add(truncated)
	f.Fuzz(func(t *testing.T, data []byte) {
		k, payload, ok := Parse(data)
		if !ok {
			return
		}
		if k.Proto != proto.IPProtoUDP && k.Proto != proto.IPProtoTCP {
			t.Fatalf("ok parse with bogus proto %d", k.Proto)
		}
		if len(payload) > len(data) {
			t.Fatalf("payload longer than frame")
		}
	})
}

// FuzzKeyRoundTrip synthesizes a frame from a fuzzed 5-tuple and pins
// that Parse recovers exactly the tuple that built it — the Key
// round-trip through the real header encoders.
func FuzzKeyRoundTrip(f *testing.F) {
	f.Add(uint32(0x0A000001), uint32(0x0A010001), uint16(1234), uint16(5678), false)
	f.Add(uint32(0), uint32(0xFFFFFFFF), uint16(0), uint16(0), true)
	f.Fuzz(func(t *testing.T, src, dst uint32, sport, dport uint16, tcp bool) {
		b := make([]byte, 64)
		var want Key
		if tcp {
			p := proto.TCPPacket{B: b}
			p.Fill(proto.TCPPacketFill{
				PktLength: 64,
				IPSrc:     proto.IPv4(src), IPDst: proto.IPv4(dst),
				TCPSrc: sport, TCPDst: dport,
			})
			want = Key{Proto: proto.IPProtoTCP, Src: proto.IPv4(src), Dst: proto.IPv4(dst),
				SrcPort: sport, DstPort: dport}
		} else {
			p := proto.UDPPacket{B: b}
			p.Fill(proto.UDPPacketFill{
				PktLength: 64,
				IPSrc:     proto.IPv4(src), IPDst: proto.IPv4(dst),
				UDPSrc: sport, UDPDst: dport,
			})
			want = Key{Proto: proto.IPProtoUDP, Src: proto.IPv4(src), Dst: proto.IPv4(dst),
				SrcPort: sport, DstPort: dport}
		}
		k, _, ok := Parse(b)
		if !ok {
			t.Fatalf("synthesized frame did not parse")
		}
		if k != want {
			t.Fatalf("key round-trip: got %v, want %v", k, want)
		}
	})
}

// TestKeyHashDeterministic pins that the table hash is a pure function
// of the key (no per-process seeding): a fixed key's hash is a fixed
// constant, so slot placement and the exported table diagnostics are
// reproducible across runs.
func TestKeyHashDeterministic(t *testing.T) {
	k := flowKey(12345)
	if k.hash() != flowKey(12345).hash() {
		t.Fatal("hash not deterministic within a process")
	}
	if flowKey(1).hash() == flowKey(2).hash() {
		t.Fatal("adjacent fids collide — mixer is broken")
	}
}
