// Package flow is the receiver-side analysis layer: it attributes
// received packets to flows (5-tuple key extraction from the proto
// headers), tracks per-flow sequence numbers to detect loss, reordering
// and duplication, and accumulates streaming inter-arrival and latency
// statistics. It is the RX counterpart of the transmit-side load
// patterns — what the paper's measurement sections (§5–§6) observe at
// the receiver: latency distributions, loss under overload and
// inter-arrival precision, per flow instead of per port.
//
// All per-flow statistics are built on the stats merge layer
// (stats.OnlineStats.Merge, stats.Histogram.Merge), and Tracker.Merge
// combines per-shard trackers by flow key, so a sharded run's merged
// per-flow counters are exactly the single-core run's — the same
// contract the multicore subsystem pins for the port counters.
package flow

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// Key identifies a flow by its IPv4 5-tuple. Keys are comparable and
// ordered (Less), so trackers index flows in maps and reports iterate
// them deterministically.
type Key struct {
	Proto    uint8 // IP protocol: IPProtoUDP or IPProtoTCP
	Src, Dst proto.IPv4
	SrcPort  uint16
	DstPort  uint16
}

// String renders the key as "udp 10.0.0.1:1234>10.1.0.1:5678".
func (k Key) String() string {
	l4 := "proto?"
	switch k.Proto {
	case proto.IPProtoUDP:
		l4 = "udp"
	case proto.IPProtoTCP:
		l4 = "tcp"
	}
	return fmt.Sprintf("%s %s:%d>%s:%d", l4, k.Src, k.SrcPort, k.Dst, k.DstPort)
}

// Less orders keys lexicographically over the 5-tuple, giving reports
// a deterministic flow order independent of arrival order.
func (k Key) Less(o Key) bool {
	switch {
	case k.Proto != o.Proto:
		return k.Proto < o.Proto
	case k.Src != o.Src:
		return k.Src < o.Src
	case k.Dst != o.Dst:
		return k.Dst < o.Dst
	case k.SrcPort != o.SrcPort:
		return k.SrcPort < o.SrcPort
	default:
		return k.DstPort < o.DstPort
	}
}

// Parse extracts the flow key and the L4 payload from raw frame bytes.
// Only IPv4 UDP/TCP frames carry flows; everything else (ARP, PTP
// probes, ICMP) reports ok=false and is ignored by the tracker.
func Parse(data []byte) (k Key, payload []byte, ok bool) {
	if len(data) < proto.EthHdrLen+proto.IPv4HdrLen {
		return Key{}, nil, false
	}
	if proto.EthHdr(data).EtherType() != proto.EtherTypeIPv4 {
		return Key{}, nil, false
	}
	ip := proto.IPv4Hdr(data[proto.EthHdrLen:])
	ihl := ip.HdrLen()
	l4 := proto.EthHdrLen + ihl
	switch ip.Protocol() {
	case proto.IPProtoUDP:
		if len(data) < l4+proto.UDPHdrLen {
			return Key{}, nil, false
		}
		udp := proto.UDPHdr(data[l4:])
		k = Key{Proto: proto.IPProtoUDP, Src: ip.Src(), Dst: ip.Dst(),
			SrcPort: udp.SrcPort(), DstPort: udp.DstPort()}
		return k, data[l4+proto.UDPHdrLen:], true
	case proto.IPProtoTCP:
		if len(data) < l4+proto.TCPHdrLen {
			return Key{}, nil, false
		}
		tcp := proto.TCPHdr(data[l4:])
		off := tcp.DataOffset()
		if off < proto.TCPHdrLen || len(data) < l4+off {
			return Key{}, nil, false
		}
		k = Key{Proto: proto.IPProtoTCP, Src: ip.Src(), Dst: ip.Dst(),
			SrcPort: tcp.SrcPort(), DstPort: tcp.DstPort()}
		return k, data[l4+off:], true
	}
	return Key{}, nil, false
}

// The sequence stamp is a small trailer the flow-aware load generators
// write at the start of the L4 payload: a magic marker, a 64-bit
// per-flow sequence number and the 64-bit transmit instant. 18 bytes
// fit exactly into the payload of a 60-byte UDP frame, so even
// minimum-size streams carry full loss/reorder/latency attribution.
const (
	stampMagic = 0xF5E9
	// StampLen is the stamped trailer size in bytes.
	StampLen = 2 + 8 + 8
)

// Stamp writes the sequence trailer into an L4 payload. It reports
// false (and writes nothing) when the payload is too short.
func Stamp(payload []byte, seq uint64, tx sim.Time) bool {
	if len(payload) < StampLen {
		return false
	}
	binary.BigEndian.PutUint16(payload[0:2], stampMagic)
	binary.BigEndian.PutUint64(payload[2:10], seq)
	binary.BigEndian.PutUint64(payload[10:18], uint64(tx))
	return true
}

// ReadStamp recovers a sequence trailer written by Stamp. ok is false
// for unstamped payloads (wrong length or magic).
func ReadStamp(payload []byte) (seq uint64, tx sim.Time, ok bool) {
	if len(payload) < StampLen || binary.BigEndian.Uint16(payload[0:2]) != stampMagic {
		return 0, 0, false
	}
	return binary.BigEndian.Uint64(payload[2:10]), sim.Time(binary.BigEndian.Uint64(payload[10:18])), true
}

// Config tunes a Tracker.
type Config struct {
	// SeqWindow is the reorder/duplicate detection window in sequence
	// numbers (rounded up to a power of two, default 1024): a late
	// packet within the window of the highest sequence seen is
	// classified exactly (reordered vs duplicate); older stragglers are
	// counted as reordered without adjusting the loss estimate.
	SeqWindow int
	// Latency enables per-flow latency histograms from stamped transmit
	// times. Off by default: the steady-state RX loop then performs no
	// histogram-sample appends at all.
	Latency bool
	// LatencyBinWidth is the latency histogram bin width (default 1 ns;
	// percentiles are exact while the per-flow sample cap holds).
	LatencyBinWidth sim.Duration
	// Reference selects the original map[Key]*Stats implementation
	// instead of the flat open-addressing table — the property-pinned
	// reference the flat path is tested bit-identical against. The two
	// implementations share every code path above storage (attribution,
	// classification, merge), differ only in how records are found and
	// allocated, and are interchangeable: trackers of either kind merge
	// into trackers of either kind.
	Reference bool
}

// Stats is the per-flow state of a Tracker. Counters follow RFC-4737
// style semantics: Lost counts sequence gaps never filled, Reordered
// counts late arrivals that filled a gap, Duplicates counts sequence
// numbers seen twice.
type Stats struct {
	Key Key

	// Received counts all packets of the flow, Bytes their frame bytes;
	// Stamped counts the subset carrying a sequence trailer.
	Received uint64
	Bytes    uint64
	Stamped  uint64

	// Lost / Reordered / Duplicates are the sequence-tracking verdicts.
	Lost       uint64
	Reordered  uint64
	Duplicates uint64

	// InterArrival accumulates packet inter-arrival times in
	// picoseconds (the sim.Duration base unit).
	InterArrival stats.OnlineStats

	// Latency is the stamped transmit-to-receive latency histogram.
	// It is allocated lazily, on the flow's first latency sample: nil
	// unless Config.Latency is set AND the flow actually carried a
	// timestamped packet — which is what lets a tracker hold a million
	// flows without a million histograms.
	Latency *stats.Histogram

	highest uint64 // highest sequence seen
	started bool
	seen    []uint64 // ring bitmap over (highest-window, highest]
	mask    uint64

	lastRx sim.Time
	hasRx  bool
}

// AddLatency records one latency sample for the flow — the entry point
// for measurements whose latency comes from a side channel (hardware
// timestamped probes) rather than from payload stamps.
func (fs *Stats) AddLatency(d sim.Duration) {
	if fs.Latency == nil {
		fs.Latency = stats.NewHistogram(sim.Nanosecond)
	}
	fs.Latency.Add(d)
}

// Quartiles returns the 25th/50th/75th latency percentiles (zeros when
// no latency was recorded).
func (fs *Stats) Quartiles() (q1, q2, q3 sim.Duration) {
	if fs.Latency == nil {
		return 0, 0, 0
	}
	return fs.Latency.Quartiles()
}

func (fs *Stats) seenBit(seq uint64) bool {
	return fs.seen[(seq&fs.mask)/64]&(1<<(seq%64)) != 0
}

func (fs *Stats) setSeen(seq uint64) {
	fs.seen[(seq&fs.mask)/64] |= 1 << (seq % 64)
}

func (fs *Stats) clearSeen(seq uint64) {
	fs.seen[(seq&fs.mask)/64] &^= 1 << (seq % 64)
}

// track runs the sequence classifier for one stamped packet.
func (fs *Stats) track(seq uint64) {
	window := uint64(len(fs.seen) * 64)
	if !fs.started {
		// The stream starts at sequence 0 by convention: everything
		// before the first arrival is tentatively lost, reclassified if
		// it straggles in within the window.
		fs.started = true
		fs.highest = seq
		fs.Lost += seq
		for i := range fs.seen {
			fs.seen[i] = 0
		}
		fs.setSeen(seq)
		return
	}
	switch {
	case seq > fs.highest:
		gap := seq - fs.highest - 1
		fs.Lost += gap
		if gap >= window {
			for i := range fs.seen {
				fs.seen[i] = 0
			}
		} else {
			for s := fs.highest + 1; s < seq; s++ {
				fs.clearSeen(s)
			}
		}
		fs.setSeen(seq)
		fs.highest = seq
	case fs.highest-seq >= window:
		// Too old to classify exactly: a straggler from beyond the
		// window. Counted as reordered; the loss estimate keeps the gap
		// (it cannot tell whether this sequence was in it).
		fs.Reordered++
	case fs.seenBit(seq):
		fs.Duplicates++
	default:
		// A late arrival filling a known gap: reordered, not lost.
		fs.setSeen(seq)
		fs.Reordered++
		if fs.Lost > 0 {
			fs.Lost--
		}
	}
}

// Tracker attributes received packets to flows and maintains the
// per-flow Stats. It is single-owner like everything else in a shard's
// datapath; sharded runs keep one tracker per shard and Merge them.
//
// Storage is the flat open-addressing table in table.go: inline keys
// in power-of-two slots, per-flow records in a chunked arena whose
// pointers are stable across growth. Config.Reference selects the
// original map-based storage instead; both produce bit-identical
// per-flow results for any input.
type Tracker struct {
	cfg    Config
	latBin sim.Duration // LatencyBinWidth when Config.Latency, else 0

	// flows is the reference-mode store; nil selects the flat table.
	flows map[Key]*Stats
	table flowTable

	// memo is a small direct-mapped lookup cache indexed by the key
	// hash, the generalization of RecordBatch's old single-entry memo:
	// a train draining a handful of interleaved wires hits it even
	// when consecutive frames alternate flows. Entries hold arena (or
	// map) pointers, which are stable and never deleted, so the memo
	// survives table growth with no invalidation protocol at all.
	memo [memoSize]memoEntry

	// active counts flows that have received at least one packet —
	// the tracker's "live flows" telemetry. It can lag NumFlows:
	// probes and merges may create records for flows that never
	// receive (a telemetry column registered in a shard that does not
	// own the flow).
	active uint64

	// Unparsed counts packets that carried no IPv4 UDP/TCP flow key.
	Unparsed uint64
}

// memoSize is the direct-mapped lookup cache size (power of two).
const memoSize = 8

type memoEntry struct {
	key Key
	fs  *Stats
}

// ceilPow2 rounds n up to the next power of two (minimum 64).
func ceilPow2(n int) int {
	p := 64
	for p < n {
		p <<= 1
	}
	return p
}

// NewTracker creates a tracker.
func NewTracker(cfg Config) *Tracker {
	if cfg.SeqWindow <= 0 {
		cfg.SeqWindow = 1024
	}
	cfg.SeqWindow = ceilPow2(cfg.SeqWindow)
	if cfg.LatencyBinWidth <= 0 {
		cfg.LatencyBinWidth = sim.Nanosecond
	}
	t := &Tracker{cfg: cfg}
	if cfg.Latency {
		t.latBin = cfg.LatencyBinWidth
	}
	if cfg.Reference {
		t.flows = make(map[Key]*Stats)
	} else {
		t.table.init(cfg.SeqWindow)
	}
	return t
}

// Flow returns the flow's stats, creating them on first use. The
// returned pointer stays valid for the tracker's lifetime — records
// live in the arena (or on the heap in reference mode) and never move,
// which is what lets telemetry probes bind them once at registration.
func (t *Tracker) Flow(k Key) *Stats {
	h := k.hash()
	m := &t.memo[h&(memoSize-1)]
	if m.fs != nil && m.key == k {
		return m.fs
	}
	fs := t.flowSlow(k, h)
	m.key, m.fs = k, fs
	return fs
}

// flowSlow is the memo-miss path: the flat table probe, or the
// reference map.
func (t *Tracker) flowSlow(k Key, h uint64) *Stats {
	if t.flows == nil {
		return t.table.flow(k, h)
	}
	fs, ok := t.flows[k]
	if !ok {
		fs = &Stats{
			Key:  k,
			seen: make([]uint64, t.cfg.SeqWindow/64),
			mask: uint64(t.cfg.SeqWindow - 1),
		}
		t.flows[k] = fs
	}
	return fs
}

// Lookup returns the flow's stats without creating them.
func (t *Tracker) Lookup(k Key) (*Stats, bool) {
	if t.flows != nil {
		fs, ok := t.flows[k]
		return fs, ok
	}
	fs := t.table.lookup(k, k.hash())
	return fs, fs != nil
}

// NumFlows returns the number of tracked flows.
func (t *Tracker) NumFlows() int {
	if t.flows != nil {
		return len(t.flows)
	}
	return t.table.n
}

// ActiveFlows returns the number of flows that have received at least
// one packet — the "live flows" the telemetry flow probe samples. It
// excludes records created without traffic (probe registration,
// lookups via Flow on the transmit side).
func (t *Tracker) ActiveFlows() uint64 { return t.active }

// LatencyEnabled reports whether stamped packets feed per-flow latency
// histograms. The histograms themselves are created lazily per flow;
// this is the registration-time signal for probes that export
// quantiles.
func (t *Tracker) LatencyEnabled() bool { return t.latBin > 0 }

// TableLoad returns the flat table's occupied and total slot counts
// (0, 0 in reference mode, which has no fixed geometry).
func (t *Tracker) TableLoad() (used, capacity int) {
	if t.flows != nil {
		return 0, 0
	}
	return t.table.used, len(t.table.slots)
}

// MaxProbe returns the longest linear-probe chain the flat table has
// built — with no deletions, an upper bound on every lookup's probe
// length. 0 in reference mode.
func (t *Tracker) MaxProbe() int {
	if t.flows != nil {
		return 0
	}
	return t.table.maxProbe
}

// FootprintBytes estimates the tracker's resident memory: slots, the
// record and bitmap arenas (or their per-flow equivalents in reference
// mode) and any lazily created latency histograms.
func (t *Tracker) FootprintBytes() uint64 {
	var b uint64
	if t.flows != nil {
		per := uint64(statsSize) + uint64(t.cfg.SeqWindow/64)*8
		b = uint64(len(t.flows)) * per
	} else {
		b = t.table.footprintBytes()
	}
	t.eachFlow(func(fs *Stats) {
		if fs.Latency != nil {
			b += fs.Latency.FootprintBytes()
		}
	})
	return b
}

// eachFlow visits every tracked flow in a deterministic order: arena
// (insertion) order for the flat table, sorted key order for the
// reference map. Per-flow work must not depend on visit order.
func (t *Tracker) eachFlow(f func(*Stats)) {
	if t.flows == nil {
		t.table.each(f)
		return
	}
	for _, fs := range t.Flows() {
		f(fs)
	}
}

// Flows returns every tracked flow sorted by key — the deterministic
// iteration order reports are built from.
func (t *Tracker) Flows() []*Stats {
	var out []*Stats
	if t.flows != nil {
		out = make([]*Stats, 0, len(t.flows))
		for _, fs := range t.flows {
			out = append(out, fs)
		}
	} else {
		out = make([]*Stats, 0, t.table.n)
		t.table.each(func(fs *Stats) { out = append(out, fs) })
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key.Less(out[j].Key) })
	return out
}

// Totals is the aggregate view over every tracked flow — the report
// surface for scenarios tracking too many flows to enumerate.
type Totals struct {
	Flows  uint64 // tracked flows (records)
	Active uint64 // flows with Received > 0

	Received, Bytes, Stamped    uint64
	Lost, Reordered, Duplicates uint64
}

// Totals sums every flow's counters in arena order — O(flows) with no
// sorting, usable once per report even at millions of flows.
func (t *Tracker) Totals() Totals {
	tot := Totals{Flows: uint64(t.NumFlows()), Active: t.active}
	t.eachFlow(func(fs *Stats) {
		tot.Received += fs.Received
		tot.Bytes += fs.Bytes
		tot.Stamped += fs.Stamped
		tot.Lost += fs.Lost
		tot.Reordered += fs.Reordered
		tot.Duplicates += fs.Duplicates
	})
	return tot
}

// record runs the post-parse attribution for one frame of the flow:
// counters, inter-arrival accumulation, sequence classification and
// (when enabled and stamped) latency recording. Record and RecordBatch
// share this body, which is what makes the two entry points
// bit-identical by construction. The flow's latency histogram is
// created lazily here, on its first sample, so flows that never carry
// a timestamp never pay for one.
func (t *Tracker) record(fs *Stats, data, payload []byte, rx sim.Time) {
	if fs.Received == 0 {
		t.active++
	}
	fs.Received++
	fs.Bytes += uint64(len(data))
	if fs.hasRx {
		fs.InterArrival.Add(float64(rx.Sub(fs.lastRx)))
	}
	fs.lastRx = rx
	fs.hasRx = true
	if seq, tx, stamped := ReadStamp(payload); stamped {
		fs.Stamped++
		fs.track(seq)
		if t.latBin > 0 && rx >= tx {
			if fs.Latency == nil {
				fs.Latency = stats.NewHistogram(t.latBin)
			}
			fs.Latency.Add(rx.Sub(tx))
		}
	}
}

// Record processes one received frame at its arrival instant: key
// extraction, sequence classification, inter-arrival accumulation and
// (when enabled and stamped) latency recording. It reports whether the
// frame carried a flow key. The steady state allocates nothing beyond
// first sight of a new flow.
func (t *Tracker) Record(data []byte, rx sim.Time) bool {
	k, payload, ok := Parse(data)
	if !ok {
		t.Unparsed++
		return false
	}
	t.record(t.Flow(k), data, payload, rx)
	return true
}

// Frame is one element of a RecordBatch train: the frame bytes and
// their descriptor arrival instant.
type Frame struct {
	Data []byte
	Rx   sim.Time
}

// RecordBatch attributes a whole received train in one call — the RX
// mirror of the transmit side's train commits. The per-frame work is
// exactly Record's (the two paths share the attribution body, so their
// results are bit-identical in any interleaving); what the batch form
// amortizes is the flow lookup, through the tracker's direct-mapped
// memo: a train draining one wire's FIFO hits the memo even when a
// handful of flows interleave, and the memo's arena pointers survive
// any table growth mid-train. It returns the number of frames that
// carried a flow key.
func (t *Tracker) RecordBatch(frames []Frame) (recorded int) {
	for i := range frames {
		k, payload, ok := Parse(frames[i].Data)
		if !ok {
			t.Unparsed++
			continue
		}
		t.record(t.Flow(k), frames[i].Data, payload, frames[i].Rx)
		recorded++
	}
	return recorded
}

// Merge folds another tracker into t, matching flows by key: counters
// add, inter-arrival statistics merge via the exact parallel-Welford
// combination, latency histograms merge bin-exact. Merged per-flow
// counts over shards equal the unsharded run's as long as no flow
// spans shards (the sharded scenarios assign whole flows to shards).
// Per-flow merges are independent, so the visit order — arena order
// for a flat source, sorted order for a reference one — cannot affect
// any per-flow result. Flat and reference trackers merge into each
// other freely. The merged tracker is for reporting: its sequence
// windows are not meaningful for further Record calls. other is not
// modified.
func (t *Tracker) Merge(other *Tracker) {
	t.Unparsed += other.Unparsed
	other.eachFlow(func(o *Stats) {
		fs := t.Flow(o.Key)
		if fs.Received == 0 && o.Received > 0 {
			t.active++
		}
		fs.Received += o.Received
		fs.Bytes += o.Bytes
		fs.Stamped += o.Stamped
		fs.Lost += o.Lost
		fs.Reordered += o.Reordered
		fs.Duplicates += o.Duplicates
		fs.InterArrival.Merge(&o.InterArrival)
		if o.Latency != nil && o.Latency.Count() > 0 {
			if fs.Latency == nil {
				fs.Latency = stats.NewHistogram(o.Latency.BinWidth)
			}
			fs.Latency.Merge(o.Latency)
		}
		if o.highest > fs.highest {
			fs.highest = o.highest
		}
		if o.hasRx && (!fs.hasRx || o.lastRx > fs.lastRx) {
			fs.lastRx = o.lastRx
			fs.hasRx = true
		}
		fs.started = fs.started || o.started
	})
}
