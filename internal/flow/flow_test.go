package flow

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/proto"
	"repro/internal/sim"
)

// mkUDP builds a UDP frame for flow f carrying a stamped sequence.
func mkUDP(t *testing.T, dstPort uint16, seq uint64, tx sim.Time) []byte {
	t.Helper()
	b := make([]byte, 60)
	p := proto.UDPPacket{B: b}
	p.Fill(proto.UDPPacketFill{
		PktLength: 60,
		IPSrc:     proto.MustIPv4("10.0.0.1"),
		IPDst:     proto.MustIPv4("10.1.0.1"),
		UDPSrc:    1234, UDPDst: dstPort,
	})
	if !Stamp(p.Payload(), seq, tx) {
		t.Fatal("stamp did not fit")
	}
	return b
}

func TestParseAndStampRoundTrip(t *testing.T) {
	b := mkUDP(t, 5000, 42, 12345)
	k, payload, ok := Parse(b)
	if !ok {
		t.Fatal("parse failed")
	}
	want := Key{Proto: proto.IPProtoUDP,
		Src: proto.MustIPv4("10.0.0.1"), Dst: proto.MustIPv4("10.1.0.1"),
		SrcPort: 1234, DstPort: 5000}
	if k != want {
		t.Fatalf("key = %v, want %v", k, want)
	}
	seq, tx, ok := ReadStamp(payload)
	if !ok || seq != 42 || tx != 12345 {
		t.Fatalf("stamp = (%d, %v, %v), want (42, 12345, true)", seq, tx, ok)
	}

	// Non-flow traffic parses to ok=false.
	arp := make([]byte, 60)
	proto.EthHdr(arp).Fill(proto.EthFill{EtherType: proto.EtherTypeARP})
	if _, _, ok := Parse(arp); ok {
		t.Fatal("ARP frame parsed as a flow")
	}
	// An unstamped payload reads back ok=false.
	plain := mkUDP(t, 5000, 0, 0)
	_, pl, _ := Parse(plain)
	for i := range pl {
		pl[i] = 0
	}
	if _, _, ok := ReadStamp(pl); ok {
		t.Fatal("unstamped payload read as a stamp")
	}
}

// TestSequenceClassification drives the canonical patterns through one
// flow and checks the verdicts.
func TestSequenceClassification(t *testing.T) {
	cases := []struct {
		name                  string
		seqs                  []uint64
		lost, reordered, dups uint64
	}{
		{"in-order", []uint64{0, 1, 2, 3, 4}, 0, 0, 0},
		{"gap", []uint64{0, 1, 4, 5}, 2, 0, 0},
		{"late-fill", []uint64{0, 1, 3, 2, 4}, 0, 1, 0},
		{"duplicate", []uint64{0, 1, 1, 2}, 0, 0, 1},
		{"leading-loss", []uint64{3, 4, 5}, 3, 0, 0},
		{"leading-loss-filled", []uint64{3, 1, 4}, 2, 1, 0},
		{"swap-pairs", []uint64{1, 0, 3, 2}, 0, 2, 0},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			tr := NewTracker(Config{})
			for i, s := range c.seqs {
				tr.Record(mkUDP(t, 7, s, 0), sim.Time(i)*1000)
			}
			fs, ok := tr.Lookup(Key{Proto: proto.IPProtoUDP,
				Src: proto.MustIPv4("10.0.0.1"), Dst: proto.MustIPv4("10.1.0.1"),
				SrcPort: 1234, DstPort: 7})
			if !ok {
				t.Fatal("flow not tracked")
			}
			if fs.Lost != c.lost || fs.Reordered != c.reordered || fs.Duplicates != c.dups {
				t.Fatalf("lost/reordered/dups = %d/%d/%d, want %d/%d/%d",
					fs.Lost, fs.Reordered, fs.Duplicates, c.lost, c.reordered, c.dups)
			}
			if fs.Received != uint64(len(c.seqs)) || fs.Stamped != uint64(len(c.seqs)) {
				t.Fatalf("received/stamped = %d/%d, want %d", fs.Received, fs.Stamped, len(c.seqs))
			}
		})
	}
}

// TestSeqWindowStraggler: a late arrival from beyond the window counts
// as reordered without touching the (unknowable) loss estimate.
func TestSeqWindowStraggler(t *testing.T) {
	tr := NewTracker(Config{SeqWindow: 64})
	tr.Record(mkUDP(t, 9, 0, 0), 0)
	tr.Record(mkUDP(t, 9, 200, 0), 1)
	fs := tr.Flow(Key{Proto: proto.IPProtoUDP,
		Src: proto.MustIPv4("10.0.0.1"), Dst: proto.MustIPv4("10.1.0.1"),
		SrcPort: 1234, DstPort: 9})
	if fs.Lost != 199 {
		t.Fatalf("lost = %d, want 199", fs.Lost)
	}
	tr.Record(mkUDP(t, 9, 5, 0), 2) // straggler far outside the window
	if fs.Reordered != 1 || fs.Lost != 199 {
		t.Fatalf("after straggler: lost/reordered = %d/%d, want 199/1", fs.Lost, fs.Reordered)
	}
}

// TestInterArrivalAndLatency checks the streaming statistics.
func TestInterArrivalAndLatency(t *testing.T) {
	tr := NewTracker(Config{Latency: true})
	for i := 0; i < 10; i++ {
		// Sent at t=i·1000, received 500 later: constant 1000 ps
		// inter-arrival, constant 500 ps latency.
		tr.Record(mkUDP(t, 11, uint64(i), sim.Time(i)*1000), sim.Time(i)*1000+500)
	}
	fs := tr.Flows()[0]
	if n := fs.InterArrival.Count(); n != 9 {
		t.Fatalf("inter-arrival count = %d, want 9", n)
	}
	if m := fs.InterArrival.Mean(); m != 1000 {
		t.Fatalf("inter-arrival mean = %v, want 1000", m)
	}
	if fs.Latency.Count() != 10 || fs.Latency.Max() != 500 || fs.Latency.Min() != 500 {
		t.Fatalf("latency count/min/max = %d/%v/%v", fs.Latency.Count(), fs.Latency.Min(), fs.Latency.Max())
	}
}

// TestMergeMatchesUnsharded is the tracker's merge-exactness property:
// partition a multi-flow stream whole-flow-wise across k trackers (the
// sharded scenarios' assignment), merge, and every per-flow counter
// and statistic equals the single tracker's — for any k and any batch
// grouping, since Record is per-packet.
func TestMergeMatchesUnsharded(t *testing.T) {
	const F, N = 4, 400
	rng := rand.New(rand.NewSource(7))
	type pkt struct {
		flow int
		seq  uint64
		at   sim.Time
	}
	var stream []pkt
	next := make([]uint64, F)
	for i := 0; i < N; i++ {
		f := i % F
		s := next[f]
		next[f]++
		// Inject disorder and duplicates deterministically.
		switch rng.Intn(10) {
		case 0:
			s++ // creates a gap, next packet fills it (reorder)
			next[f] = s + 1
		case 1:
			stream = append(stream, pkt{f, s, sim.Time(i) * 100}) // duplicate
		}
		stream = append(stream, pkt{f, s, sim.Time(i) * 100})
	}

	single := NewTracker(Config{Latency: true})
	for _, p := range stream {
		single.Record(mkUDP(t, uint16(100+p.flow), p.seq, p.at-50), p.at)
	}

	for _, k := range []int{2, 4} {
		shards := make([]*Tracker, k)
		for i := range shards {
			shards[i] = NewTracker(Config{Latency: true})
		}
		for _, p := range stream {
			shards[p.flow%k].Record(mkUDP(t, uint16(100+p.flow), p.seq, p.at-50), p.at)
		}
		merged := NewTracker(Config{Latency: true})
		for _, s := range shards {
			merged.Merge(s)
		}
		sf, mf := single.Flows(), merged.Flows()
		if len(sf) != len(mf) {
			t.Fatalf("k=%d: %d flows merged, want %d", k, len(mf), len(sf))
		}
		for i := range sf {
			a, b := sf[i], mf[i]
			if a.Key != b.Key {
				t.Fatalf("k=%d flow %d: key %v vs %v", k, i, a.Key, b.Key)
			}
			if a.Received != b.Received || a.Bytes != b.Bytes || a.Stamped != b.Stamped ||
				a.Lost != b.Lost || a.Reordered != b.Reordered || a.Duplicates != b.Duplicates {
				t.Errorf("k=%d flow %v: counters differ: %+v vs %+v", k, a.Key, a, b)
			}
			if a.InterArrival.Count() != b.InterArrival.Count() ||
				a.InterArrival.Mean() != b.InterArrival.Mean() ||
				a.InterArrival.Variance() != b.InterArrival.Variance() {
				t.Errorf("k=%d flow %v: inter-arrival stats differ", k, a.Key)
			}
			if a.Latency.Count() != b.Latency.Count() ||
				a.Latency.Mean() != b.Latency.Mean() ||
				a.Latency.Percentile(50) != b.Latency.Percentile(50) {
				t.Errorf("k=%d flow %v: latency stats differ", k, a.Key)
			}
		}
	}
}

// TestFlowsDeterministicOrder: report iteration is sorted by key, not
// by map or arrival order.
func TestFlowsDeterministicOrder(t *testing.T) {
	tr := NewTracker(Config{})
	for _, port := range []uint16{9, 3, 7, 1} {
		tr.Record(mkUDP(t, port, 0, 0), 0)
	}
	flows := tr.Flows()
	for i := 1; i < len(flows); i++ {
		if !flows[i-1].Key.Less(flows[i].Key) {
			t.Fatalf("flows not sorted: %v before %v", flows[i-1].Key, flows[i].Key)
		}
	}
}

// TestRecordBatchMatchesPerPacket is the train-coalescing invariance
// pin: attributing a stream through RecordBatch — in any batch
// grouping, across any whole-flow sharding — produces bit-identical
// per-flow counters, inter-arrival statistics and latency histograms
// to the per-packet Record path. The grid mirrors the scenario-level
// acceptance matrix: cores {1, 2, 4} × batch {1, 32}.
func TestRecordBatchMatchesPerPacket(t *testing.T) {
	const F, N = 4, 600
	rng := rand.New(rand.NewSource(11))
	type pkt struct {
		flow int
		seq  uint64
		at   sim.Time
	}
	var stream []pkt
	next := make([]uint64, F)
	for i := 0; i < N; i++ {
		f := i % F
		s := next[f]
		next[f]++
		switch rng.Intn(10) {
		case 0:
			s++ // gap; the next packet of the flow fills it (reorder)
			next[f] = s + 1
		case 1:
			stream = append(stream, pkt{f, s, sim.Time(i) * 100}) // duplicate
		}
		stream = append(stream, pkt{f, s, sim.Time(i) * 100})
	}
	frames := make([]Frame, len(stream))
	for i, p := range stream {
		frames[i] = Frame{Data: mkUDP(t, uint16(100+p.flow), p.seq, p.at-50), Rx: p.at}
	}

	// Reference: per-packet Record, unsharded.
	ref := NewTracker(Config{Latency: true})
	for _, fr := range frames {
		ref.Record(fr.Data, fr.Rx)
	}

	compare := func(label string, got *Tracker) {
		t.Helper()
		rf, gf := ref.Flows(), got.Flows()
		if len(rf) != len(gf) {
			t.Fatalf("%s: %d flows, want %d", label, len(gf), len(rf))
		}
		for i := range rf {
			a, b := rf[i], gf[i]
			if a.Key != b.Key {
				t.Fatalf("%s flow %d: key %v vs %v", label, i, a.Key, b.Key)
			}
			if a.Received != b.Received || a.Bytes != b.Bytes || a.Stamped != b.Stamped ||
				a.Lost != b.Lost || a.Reordered != b.Reordered || a.Duplicates != b.Duplicates {
				t.Errorf("%s flow %v: counters differ: %+v vs %+v", label, a.Key, a, b)
			}
			if a.InterArrival.Count() != b.InterArrival.Count() ||
				a.InterArrival.Mean() != b.InterArrival.Mean() ||
				a.InterArrival.Variance() != b.InterArrival.Variance() {
				t.Errorf("%s flow %v: inter-arrival stats differ", label, a.Key)
			}
			if a.Latency.Count() != b.Latency.Count() ||
				a.Latency.Mean() != b.Latency.Mean() ||
				a.Latency.Percentile(50) != b.Latency.Percentile(50) {
				t.Errorf("%s flow %v: latency histograms differ", label, a.Key)
			}
		}
		if got.Unparsed != ref.Unparsed {
			t.Errorf("%s: unparsed %d, want %d", label, got.Unparsed, ref.Unparsed)
		}
	}

	for _, cores := range []int{1, 2, 4} {
		for _, batch := range []int{1, 32} {
			shards := make([]*Tracker, cores)
			for i := range shards {
				shards[i] = NewTracker(Config{Latency: true})
			}
			// Whole-flow sharding, then train-wise attribution per shard.
			perShard := make([][]Frame, cores)
			for i, p := range stream {
				s := p.flow % cores
				perShard[s] = append(perShard[s], frames[i])
			}
			for s, fr := range perShard {
				for len(fr) > 0 {
					n := batch
					if n > len(fr) {
						n = len(fr)
					}
					shards[s].RecordBatch(fr[:n])
					fr = fr[n:]
				}
			}
			got := shards[0]
			if cores > 1 {
				got = NewTracker(Config{Latency: true})
				for _, s := range shards {
					got.Merge(s)
				}
			}
			compare(fmt.Sprintf("cores=%d batch=%d", cores, batch), got)
		}
	}
}
