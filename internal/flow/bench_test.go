package flow

import (
	"testing"

	"repro/internal/sim"
)

// BenchmarkFlowTrackerMillion measures the steady-state Record cost
// with one million tracked flows resident: the working set is inserted
// before the timer, then each op attributes one packet to a
// pseudo-randomly selected existing flow. The acceptance bar is 0
// allocs/op — at steady state neither the table, the arena, the memo
// nor the sequence window allocates. The flows metric pins the tracked
// population; B/flow is the table's resident footprint per flow.
func BenchmarkFlowTrackerMillion(b *testing.B) {
	const F = 1 << 20
	tr := NewTracker(Config{SeqWindow: 64})
	buf := benchFrame()
	next := make([]uint64, F)
	var at sim.Time
	for fid := uint64(0); fid < F; fid++ {
		at += 100
		patchFlow(buf, fid)
		Stamp(buf[framePayloadOff:], 0, at-70)
		tr.Record(buf, at)
		next[fid] = 1
	}

	lcg := uint64(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		fid := (lcg >> 32) % F
		at += 100
		patchFlow(buf, fid)
		Stamp(buf[framePayloadOff:], next[fid], at-70)
		next[fid]++
		tr.Record(buf, at)
	}
	b.StopTimer()
	b.ReportMetric(float64(tr.NumFlows()), "flows")
	b.ReportMetric(float64(tr.FootprintBytes())/F, "B/flow")
}

// BenchmarkFlowTrackerChurn measures the insert-heavy regime: each op
// runs one generation step of the churn pattern — a window of fresh
// flows arrives (first sight: table insert, possibly a grow) and a
// window of old flows sends its last packet. Unlike the steady-state
// benchmark this one legitimately allocates (arena chunks, table
// doubling); the bench gate bounds those allocations against the
// baseline.
func BenchmarkFlowTrackerChurn(b *testing.B) {
	const W = 1024 // flows per generation step
	tr := NewTracker(Config{SeqWindow: 64})
	buf := benchFrame()
	var fid uint64
	var at sim.Time
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < W; j++ {
			at += 100
			patchFlow(buf, fid)
			Stamp(buf[framePayloadOff:], 0, at-70)
			tr.Record(buf, at)
			at += 100
			Stamp(buf[framePayloadOff:], 1, at-70)
			tr.Record(buf, at)
			fid++
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(tr.NumFlows()), "flows")
}
