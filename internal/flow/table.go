package flow

import "unsafe"

// This file is the million-flow storage engine behind Tracker: a flat
// open-addressing hash table over arena-allocated per-flow records.
//
// Layout. The table itself is a power-of-two slice of slots, each an
// inline Key plus a 1-based arena reference (0 marks an empty slot) —
// 24 bytes, no pointers, nothing for the GC to scan per flow. Probing
// is linear, so a lookup touches consecutive cache lines, and there are
// no deletions, so no tombstones exist and a probe chain ends at the
// first empty slot. The per-flow Stats records live outside the table
// in an arena of fixed-size chunks (chunkLen records each) that are
// never reallocated: a *Stats handed out once — to a telemetry probe,
// a report, the lookup memo — stays valid across any number of grows,
// because a rehash moves 24-byte slots, never records. Each chunk
// carries a parallel block of seq-window bitmap words, sub-sliced per
// record, so a flow's hot state (counters + window) costs two
// allocations per 4096 flows instead of two per flow.
//
// Growth. The table doubles when an insert would push the load factor
// over 3/4, re-slotting every key by its recomputed hash. Growth cost
// is amortized O(1) per insert and entirely off the steady-state path:
// once the working set is inserted, Record/RecordBatch never allocate.
// maxProbe tracks the longest insert probe chain, which — with linear
// probing and no deletions — bounds every subsequent lookup's chain;
// the telemetry flow probe exports it alongside the load factor.

const (
	// chunkShift sizes the record arena chunks: 1<<chunkShift Stats
	// records (and their bitmap words) per allocation.
	chunkShift = 12
	chunkLen   = 1 << chunkShift
	chunkMask  = chunkLen - 1

	// tableInitSlots is the initial slot-array size (power of two).
	tableInitSlots = 64
)

// statsSize is the per-record footprint both tracker variants charge
// when reporting resident memory.
const statsSize = uint64(unsafe.Sizeof(Stats{}))

// slot is one open-addressing bucket: the flow key stored inline plus
// the 1-based index of its record in the arena (0 = empty).
type slot struct {
	key Key
	ref int32
}

// hash mixes the 5-tuple into a table index with a splitmix64-style
// finalizer. It is a pure function of the key — no per-process seed —
// so slot placement, growth points and probe lengths are identical
// across runs and shards, keeping the table's diagnostics as
// deterministic as the model counters.
func (k Key) hash() uint64 {
	a := uint64(k.Src)<<32 | uint64(k.Dst)
	b := uint64(k.Proto)<<32 | uint64(k.SrcPort)<<16 | uint64(k.DstPort)
	x := a*0x9E3779B97F4A7C15 + b
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// flowTable is the flat storage: slots plus the record and bitmap
// arenas. It is single-owner like the Tracker embedding it.
type flowTable struct {
	slots    []slot
	used     int
	maxProbe int

	// chunks/words are the arenas: chunk c holds records
	// [c*chunkLen, (c+1)*chunkLen) and words[c] their seq-window
	// bitmaps, wpf words per record.
	chunks [][]Stats
	words  [][]uint64
	n      int

	wpf     int    // bitmap words per flow (SeqWindow/64)
	seqMask uint64 // SeqWindow-1
}

// init prepares the table for a (power-of-two) sequence window.
func (ft *flowTable) init(seqWindow int) {
	ft.wpf = seqWindow / 64
	ft.seqMask = uint64(seqWindow - 1)
	ft.slots = make([]slot, tableInitSlots)
}

// at resolves a 1-based slot reference to its arena record.
func (ft *flowTable) at(ref int32) *Stats {
	idx := int(ref) - 1
	return &ft.chunks[idx>>chunkShift][idx&chunkMask]
}

// lookup returns the record for k, or nil. h must be k.hash().
func (ft *flowTable) lookup(k Key, h uint64) *Stats {
	mask := uint64(len(ft.slots) - 1)
	for i := h & mask; ; i = (i + 1) & mask {
		s := &ft.slots[i]
		if s.ref == 0 {
			return nil
		}
		if s.key == k {
			return ft.at(s.ref)
		}
	}
}

// flow returns the record for k, inserting it on first sight. h must
// be k.hash(). The hit path is branch-free of any allocation or growth
// check: growth is decided only at the empty slot that would receive a
// new key.
func (ft *flowTable) flow(k Key, h uint64) *Stats {
	mask := uint64(len(ft.slots) - 1)
	probe := 1
	for i := h & mask; ; i = (i + 1) & mask {
		s := &ft.slots[i]
		if s.ref == 0 {
			if ft.used+1 > len(ft.slots)/4*3 {
				ft.grow()
				return ft.flow(k, h) // re-probe in the doubled table
			}
			s.key = k
			s.ref = ft.newRecord(k)
			ft.used++
			if probe > ft.maxProbe {
				ft.maxProbe = probe
			}
			return ft.at(s.ref)
		}
		if s.key == k {
			return ft.at(s.ref)
		}
		probe++
	}
}

// grow doubles the slot array and re-slots every key by its recomputed
// hash (hashes are not stored: recomputing is five arithmetic ops,
// cheaper than widening every slot by eight bytes). Records do not
// move, so every *Stats stays valid. maxProbe is recomputed for the
// new geometry.
func (ft *flowTable) grow() {
	old := ft.slots
	ft.slots = make([]slot, len(old)*2)
	ft.maxProbe = 0
	mask := uint64(len(ft.slots) - 1)
	for _, s := range old {
		if s.ref == 0 {
			continue
		}
		probe := 1
		i := s.key.hash() & mask
		for ft.slots[i].ref != 0 {
			i = (i + 1) & mask
			probe++
		}
		ft.slots[i] = s
		if probe > ft.maxProbe {
			ft.maxProbe = probe
		}
	}
}

// newRecord appends a fresh record to the arena and returns its
// 1-based reference. A new chunk (records + bitmap words) is allocated
// every chunkLen inserts; nothing else in the steady state allocates.
func (ft *flowTable) newRecord(k Key) int32 {
	if ft.n&chunkMask == 0 {
		ft.chunks = append(ft.chunks, make([]Stats, chunkLen))
		ft.words = append(ft.words, make([]uint64, chunkLen*ft.wpf))
	}
	idx := ft.n
	ft.n++
	fs := &ft.chunks[idx>>chunkShift][idx&chunkMask]
	fs.Key = k
	blk := ft.words[idx>>chunkShift]
	off := (idx & chunkMask) * ft.wpf
	fs.seen = blk[off : off+ft.wpf : off+ft.wpf]
	fs.mask = ft.seqMask
	return int32(idx + 1)
}

// each visits every record in insertion (arena) order — the
// deterministic O(1)-per-flow iteration reports and merges use when
// sorted order is not required.
func (ft *flowTable) each(f func(*Stats)) {
	for c, chunk := range ft.chunks {
		limit := chunkLen
		if c == len(ft.chunks)-1 {
			limit = ft.n - c*chunkLen
		}
		for i := 0; i < limit; i++ {
			f(&chunk[i])
		}
	}
}

// footprintBytes returns the table's resident memory: slots plus both
// arenas (lazily created latency histograms are accounted by the
// Tracker, which knows about them).
func (ft *flowTable) footprintBytes() uint64 {
	b := uint64(len(ft.slots)) * uint64(unsafe.Sizeof(slot{}))
	b += uint64(len(ft.chunks)) * chunkLen * uint64(unsafe.Sizeof(Stats{}))
	b += uint64(len(ft.words)) * uint64(chunkLen*ft.wpf) * 8
	return b
}
