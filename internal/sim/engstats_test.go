package sim

import "testing"

// TestSchedStatsCounters pins the scheduler's diagnostic counters:
// every fired event counts exactly once (Step and the Run fast loop
// alike), overflow promotions count each far-future event once, and
// MaxSlotDepth tracks the largest materialized tick buffer.
func TestSchedStatsCounters(t *testing.T) {
	for _, sched := range []Scheduler{SchedulerWheel, SchedulerHeap} {
		eng := NewEngineScheduler(1, sched)
		fired := 0
		for i := 0; i < 10; i++ {
			eng.Schedule(Time(0).Add(Duration(i)*Microsecond), func() { fired++ })
		}
		eng.Run(Time(0).Add(4 * Microsecond))
		if got := eng.EventsProcessed(); got != 5 || fired != 5 {
			t.Fatalf("sched %v: EventsProcessed=%d fired=%d, want 5", sched, got, fired)
		}
		for eng.Step() {
		}
		if got := eng.EventsProcessed(); got != 10 || fired != 10 {
			t.Fatalf("sched %v: EventsProcessed=%d fired=%d, want 10", sched, got, fired)
		}
		if st := eng.SchedStats(); st.EventsProcessed != 10 || st.Pending != 0 {
			t.Fatalf("sched %v: stats %+v", sched, st)
		}
	}
}

func TestSchedStatsWheelInternals(t *testing.T) {
	eng := NewEngine(2)
	// Far beyond the wheel horizon (~67 us): lands in the overflow heap
	// and must be promoted exactly once as the cursor approaches.
	for i := 0; i < 3; i++ {
		eng.Schedule(Time(0).Add(Millisecond+Duration(i)*Microsecond), func() {})
	}
	// A crowded tick: several events within one wheel tick (65.536 ns)
	// forces a materialized, sorted slot buffer.
	for i := 0; i < 5; i++ {
		eng.Schedule(Time(0).Add(Duration(i)*Nanosecond), func() {})
	}
	eng.RunAll()
	st := eng.SchedStats()
	// The first far event pops straight off the overflow head (the
	// wheel was empty); the cursor jump brings the other two into the
	// horizon and they promote into slots.
	if st.WheelPromotions != 2 {
		t.Fatalf("WheelPromotions=%d, want 2", st.WheelPromotions)
	}
	if st.MaxSlotDepth < 5 {
		t.Fatalf("MaxSlotDepth=%d, want >= 5", st.MaxSlotDepth)
	}
	if st.EventsProcessed != 8 {
		t.Fatalf("EventsProcessed=%d, want 8", st.EventsProcessed)
	}
}
