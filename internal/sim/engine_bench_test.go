package sim

import (
	"container/heap"
	"testing"
)

// BenchmarkEngineSchedule measures the schedule/fire hot path of the
// index-based event heap. Compare against
// BenchmarkEngineScheduleContainerHeap, the pre-refactor container/heap
// implementation: the slice-of-values heap schedules with zero
// per-event boxing allocations (the closure itself is hoisted out of
// the loop), where container/heap paid one *event allocation plus an
// interface{} box per Push.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.Schedule(e.now.Add(Duration(j%7)), fn)
		}
		for e.Step() {
		}
	}
}

// --- container/heap baseline (the replaced implementation) -----------

type boxedEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type boxedHeap []*boxedEvent

func (h boxedHeap) Len() int { return len(h) }
func (h boxedHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h boxedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedHeap) Push(x interface{}) { *h = append(*h, x.(*boxedEvent)) }
func (h *boxedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func BenchmarkEngineScheduleContainerHeap(b *testing.B) {
	var h boxedHeap
	var seq uint64
	var now Time
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			seq++
			heap.Push(&h, &boxedEvent{at: now.Add(Duration(j % 7)), seq: seq, fn: fn})
		}
		for h.Len() > 0 {
			ev := heap.Pop(&h).(*boxedEvent)
			now = ev.at
			ev.fn()
		}
	}
}
