package sim

import (
	"container/heap"
	"testing"
)

// BenchmarkEngineSchedule measures the schedule/fire hot path of the
// default timing-wheel scheduler on a clustered-time burst (64 events
// within a few picoseconds — one wheel tick). Compare against
// BenchmarkEngineScheduleHeapEngine (the same engine on the reference
// binary heap) and BenchmarkEngineScheduleContainerHeap (the original
// container/heap implementation, which paid one *event allocation plus
// an interface{} box per Push). Both engine paths schedule with zero
// allocations: the wheel pools its slot nodes.
func BenchmarkEngineSchedule(b *testing.B) {
	benchEngineSchedule(b, SchedulerWheel)
}

// BenchmarkEngineScheduleHeapEngine is the identical workload on the
// reference heap scheduler — the wheel's control group.
func BenchmarkEngineScheduleHeapEngine(b *testing.B) {
	benchEngineSchedule(b, SchedulerHeap)
}

func benchEngineSchedule(b *testing.B, sched Scheduler) {
	e := NewEngineScheduler(1, sched)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.Schedule(e.now.Add(Duration(j%7)), fn)
		}
		for e.Step() {
		}
	}
}

// BenchmarkEngineScheduleSpread is the wheel's home turf: event times
// spread over microseconds (a packet train's departures, deliveries and
// completions), where the heap pays O(log n) sifts per event and the
// wheel pays O(1) slot pushes.
func BenchmarkEngineScheduleSpread(b *testing.B) {
	e := NewEngine(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			e.Schedule(e.now.Add(Duration(j)*67*Nanosecond), fn)
		}
		for e.Step() {
		}
	}
}

// --- container/heap baseline (the replaced implementation) -----------

type boxedEvent struct {
	at  Time
	seq uint64
	fn  func()
}

type boxedHeap []*boxedEvent

func (h boxedHeap) Len() int { return len(h) }
func (h boxedHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h boxedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedHeap) Push(x interface{}) { *h = append(*h, x.(*boxedEvent)) }
func (h *boxedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func BenchmarkEngineScheduleContainerHeap(b *testing.B) {
	var h boxedHeap
	var seq uint64
	var now Time
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < 64; j++ {
			seq++
			heap.Push(&h, &boxedEvent{at: now.Add(Duration(j % 7)), seq: seq, fn: fn})
		}
		for h.Len() > 0 {
			ev := heap.Pop(&h).(*boxedEvent)
			now = ev.at
			ev.fn()
		}
	}
}
