// Package sim provides a deterministic discrete-event simulation engine
// with picosecond resolution.
//
// The engine is the time substrate for the whole testbed: NIC DMA engines,
// MAC transmitters, wire propagation, DuT forwarders and generator tasks
// are all simulated processes scheduled on one event heap. Picoseconds are
// used because the finest granularity in the reproduced paper is 0.8 ns
// (one byte time at 10 GbE), which is exactly 800 ps; int64 picoseconds
// represent every quantity in the paper without rounding.
package sim

import (
	"fmt"
	"math"
)

// Time is an absolute simulation time in picoseconds since the start of
// the simulation.
type Time int64

// Duration is a span of simulation time in picoseconds.
type Duration int64

// Common durations. These mirror time.Duration's constants but are
// picosecond-based.
const (
	Picosecond  Duration = 1
	Nanosecond  Duration = 1000 * Picosecond
	Microsecond Duration = 1000 * Nanosecond
	Millisecond Duration = 1000 * Microsecond
	Second      Duration = 1000 * Millisecond
)

// Never is a sentinel Time after every representable event.
const Never Time = math.MaxInt64

// Add returns the time d after t.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Nanoseconds returns the time as a floating-point number of nanoseconds.
func (t Time) Nanoseconds() float64 { return float64(t) / float64(Nanosecond) }

// Microseconds returns the time as a floating-point number of microseconds.
func (t Time) Microseconds() float64 { return float64(t) / float64(Microsecond) }

// String formats the time with an adaptive unit.
func (t Time) String() string { return Duration(t).String() }

// Seconds returns the duration as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

// Nanoseconds returns the duration as a floating-point number of nanoseconds.
func (d Duration) Nanoseconds() float64 { return float64(d) / float64(Nanosecond) }

// Microseconds returns the duration as a floating-point number of microseconds.
func (d Duration) Microseconds() float64 { return float64(d) / float64(Microsecond) }

// String formats the duration with an adaptive unit.
func (d Duration) String() string {
	neg := d < 0
	if neg {
		d = -d
	}
	var s string
	switch {
	case d < Nanosecond:
		s = fmt.Sprintf("%dps", int64(d))
	case d < Microsecond:
		s = fmt.Sprintf("%.3gns", d.Nanoseconds())
	case d < Millisecond:
		s = fmt.Sprintf("%.4gus", d.Microseconds())
	case d < Second:
		s = fmt.Sprintf("%.4gms", float64(d)/float64(Millisecond))
	default:
		s = fmt.Sprintf("%.6gs", d.Seconds())
	}
	if neg {
		return "-" + s
	}
	return s
}

// FromSeconds converts seconds to a Duration, rounding to the nearest
// picosecond.
func FromSeconds(s float64) Duration {
	return Duration(math.Round(s * float64(Second)))
}

// FromNanoseconds converts nanoseconds to a Duration, rounding to the
// nearest picosecond.
func FromNanoseconds(ns float64) Duration {
	return Duration(math.Round(ns * float64(Nanosecond)))
}
