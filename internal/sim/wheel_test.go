package sim

import (
	"math/rand"
	"testing"
)

// wheelTickDur is one wheel tick as a Duration (white-box: the edge
// tests below pin behavior exactly on tick boundaries).
const wheelTickDur = Duration(1) << wheelTickShift

// horizonDur is the wheel's covered future; times beyond it overflow.
const horizonDur = Duration(wheelSlots) << wheelTickShift

// orderRecorder pairs an engine with its fire log so a wheel engine
// and a heap engine can be compared event for event.
type orderRecorder struct {
	eng *Engine
	log []int
}

func newRecorder(sched Scheduler) *orderRecorder {
	return &orderRecorder{eng: NewEngineScheduler(1, sched)}
}

// TestWheelMatchesHeapOrder is the equivalence pin of the tentpole
// refactor: over randomized schedules — clustered times, exact ties,
// far-future overflow, re-entrant scheduling from callbacks — the
// timing wheel fires events in exactly the order the reference binary
// heap does, including the equal-time FIFO tiebreak.
func TestWheelMatchesHeapOrder(t *testing.T) {
	for trial := 0; trial < 50; trial++ {
		rng := rand.New(rand.NewSource(int64(trial)))
		wheel := newRecorder(SchedulerWheel)
		heap := newRecorder(SchedulerHeap)

		// A deterministic schedule plan shared by both engines: each
		// entry is (delay-from-now, number of re-entrant children).
		type plan struct {
			d        Duration
			children int
		}
		plans := make([]plan, 300)
		for i := range plans {
			var d Duration
			switch rng.Intn(5) {
			case 0:
				d = 0 // exact tie with now
			case 1:
				d = Duration(rng.Int63n(100)) // intra-tick cluster
			case 2:
				d = Duration(rng.Int63n(int64(10 * wheelTickDur)))
			case 3:
				d = Duration(rng.Int63n(int64(horizonDur)))
			case 4:
				// Far future: exercised the overflow heap + promotion.
				d = horizonDur + Duration(rng.Int63n(int64(4*horizonDur)))
			}
			plans[i] = plan{d: d, children: rng.Intn(3)}
		}

		run := func(r *orderRecorder) {
			id := 0
			var sched func(p plan)
			sched = func(p plan) {
				myID := id
				id++
				children := make([]plan, p.children)
				for c := range children {
					// Child delays derive deterministically from the
					// parent's id, including same-instant re-entrancy.
					children[c] = plan{d: Duration((myID * 37 * (c + 1)) % int(2*wheelTickDur)), children: 0}
				}
				r.eng.Schedule(r.eng.Now().Add(p.d), func() {
					r.log = append(r.log, myID)
					for _, cp := range children {
						sched(cp)
					}
				})
			}
			for _, p := range plans {
				sched(p)
			}
			r.eng.RunAll()
		}
		run(wheel)
		run(heap)

		if len(wheel.log) != len(heap.log) {
			t.Fatalf("trial %d: wheel fired %d events, heap %d", trial, len(wheel.log), len(heap.log))
		}
		for i := range wheel.log {
			if wheel.log[i] != heap.log[i] {
				t.Fatalf("trial %d: order diverges at event %d: wheel id %d, heap id %d",
					trial, i, wheel.log[i], heap.log[i])
			}
		}
		if wheel.eng.Now() != heap.eng.Now() {
			t.Fatalf("trial %d: final times diverge: wheel %v, heap %v", trial, wheel.eng.Now(), heap.eng.Now())
		}
	}
}

// TestWheelSameTickReentrancy pins the same-instant re-entrancy rule:
// an event scheduling at now fires in the same pass, after every event
// already pending at that instant — on both schedulers.
func TestWheelSameTickReentrancy(t *testing.T) {
	for _, sched := range []Scheduler{SchedulerWheel, SchedulerHeap} {
		e := NewEngineScheduler(1, sched)
		var log []string
		at := Time(3 * wheelTickDur).Add(123) // mid-tick instant
		e.Schedule(at, func() {
			log = append(log, "first")
			// Re-entrant: same instant as the currently firing event.
			e.Schedule(e.Now(), func() { log = append(log, "reentrant") })
			// And one later within the same tick.
			e.Schedule(e.Now().Add(1), func() { log = append(log, "same-tick+1ps") })
		})
		e.Schedule(at, func() { log = append(log, "second") })
		e.Schedule(at.Add(2), func() { log = append(log, "pre-existing+2ps") })
		e.RunAll()
		want := []string{"first", "second", "reentrant", "same-tick+1ps", "pre-existing+2ps"}
		if len(log) != len(want) {
			t.Fatalf("sched %d: fired %v, want %v", sched, log, want)
		}
		for i := range want {
			if log[i] != want[i] {
				t.Fatalf("sched %d: order %v, want %v", sched, log, want)
			}
		}
	}
}

// TestWheelOverflowPromotion pins the far-future path: events beyond
// the wheel horizon are parked in the overflow heap and promoted into
// the wheel as the cursor approaches, interleaving exactly with
// near-future events — including an exact time tie across the
// overflow/wheel boundary, where the earlier-scheduled (overflow)
// event must fire first.
func TestWheelOverflowPromotion(t *testing.T) {
	e := NewEngine(1)
	far := Time(2 * horizonDur)
	var log []int
	e.Schedule(far, func() { log = append(log, 0) })        // overflows
	e.Schedule(far.Add(1), func() { log = append(log, 1) }) // overflows
	if e.wheel.over.len() != 2 {
		t.Fatalf("far events in overflow: %d, want 2", e.wheel.over.len())
	}
	// A chain of near events walks the cursor toward the far ones.
	var step func()
	hops := 0
	step = func() {
		hops++
		if e.Now() < far.Add(-horizonDur/2) {
			e.ScheduleAfter(horizonDur/16, step)
		} else {
			// Schedule a tie with the overflowed event: scheduled later,
			// so it must fire after it.
			e.Schedule(far, func() { log = append(log, 2) })
		}
	}
	e.Schedule(0, step)
	e.RunAll()
	if e.wheel.over.len() != 0 {
		t.Fatalf("overflow not drained: %d nodes left", e.wheel.over.len())
	}
	want := []int{0, 2, 1}
	if len(log) != 3 || log[0] != want[0] || log[1] != want[1] || log[2] != want[2] {
		t.Fatalf("far events fired as %v, want %v", log, want)
	}
	if hops < 8 {
		t.Fatalf("cursor walk too short (%d hops) to exercise promotion", hops)
	}
}

// TestRunStopsOnSlotBoundary pins Run(until) behavior when until is
// exactly a wheel-slot boundary: events at the boundary fire, events
// one picosecond later (same slot) do not, and now lands exactly on
// the boundary.
func TestRunStopsOnSlotBoundary(t *testing.T) {
	for _, sched := range []Scheduler{SchedulerWheel, SchedulerHeap} {
		e := NewEngineScheduler(1, sched)
		boundary := Time(5) * Time(wheelTickDur) // first instant of slot 5
		var fired []string
		e.Schedule(boundary.Add(-1), func() { fired = append(fired, "before") })
		e.Schedule(boundary, func() { fired = append(fired, "on") })
		e.Schedule(boundary.Add(1), func() { fired = append(fired, "after") })
		n := e.Run(boundary)
		if n != 2 || len(fired) != 2 || fired[0] != "before" || fired[1] != "on" {
			t.Fatalf("sched %d: Run(boundary) fired %v (n=%d), want [before on]", sched, fired, n)
		}
		if e.Now() != boundary {
			t.Fatalf("sched %d: now = %v, want boundary %v", sched, e.Now(), boundary)
		}
		// The rest of the slot still fires on the next run.
		e.Run(boundary.Add(1))
		if len(fired) != 3 || fired[2] != "after" {
			t.Fatalf("sched %d: continuation fired %v", sched, fired)
		}
	}
}

// TestWheelScheduleAfterIdleRun pins the between-runs unload path:
// Run(until) materializes a future multi-event tick (a singleton slot
// would take the in-place fast path, so two events are needed) and
// stops before it; a subsequent Schedule into an earlier tick must
// push the materialized remainder back into its slot and still fire
// everything in global order.
func TestWheelScheduleAfterIdleRun(t *testing.T) {
	e := NewEngine(1)
	var log []int
	// Two events in tick 10 force the slot to materialize when Run
	// looks for the next event.
	e.Schedule(Time(10*wheelTickDur), func() { log = append(log, 10) })
	e.Schedule(Time(10*wheelTickDur).Add(3), func() { log = append(log, 11) })
	e.Run(Time(2 * wheelTickDur))
	if e.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", e.Pending())
	}
	if !e.wheel.loaded {
		t.Fatal("tick-10 slot not materialized; the unload path is not being exercised")
	}
	// Now insert events into earlier ticks than the materialized one.
	e.Schedule(Time(5*wheelTickDur).Add(7), func() { log = append(log, 5) })
	if e.wheel.loaded {
		t.Fatal("earlier-tick schedule did not unload the materialized slot")
	}
	e.Schedule(Time(3*wheelTickDur).Add(9), func() { log = append(log, 3) })
	e.RunAll()
	want := []int{3, 5, 10, 11}
	if len(log) != len(want) {
		t.Fatalf("fired %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("fired %v, want %v", log, want)
		}
	}
}

// TestWheelNodePoolRecycles checks the slot-node pool: a steady
// schedule/fire loop reuses nodes instead of allocating.
func TestWheelNodePoolRecycles(t *testing.T) {
	e := NewEngine(1)
	fn := func() {}
	for i := 0; i < 1000; i++ {
		e.Schedule(e.Now().Add(Duration(i%200)*Nanosecond), fn)
		if i%4 == 3 {
			for e.Step() {
			}
		}
	}
	for e.Step() {
	}
	if e.wheel.freeN == 0 {
		t.Fatal("node pool empty after drain; nodes are not recycled")
	}
	allocs := testing.AllocsPerRun(100, func() {
		e.Schedule(e.Now().Add(50*Nanosecond), fn)
		e.Step()
	})
	if allocs > 0 {
		t.Fatalf("steady-state schedule/fire allocates %.1f objects per run, want 0", allocs)
	}
}
