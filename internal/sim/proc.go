package sim

import "fmt"

// Proc is a cooperatively scheduled simulation process.
//
// A process is a goroutine that runs in lockstep with the engine: the
// engine wakes it, the process executes until it blocks in Sleep or
// Yield (or returns), and only then does the engine resume the event
// loop. At most one process (or event callback) executes at a time, so
// the simulation stays deterministic even though processes are written
// as ordinary sequential Go code with loops — the direct analogue of a
// MoonGen slave task's transmit or receive loop.
type Proc struct {
	eng    *Engine
	name   string
	resume chan struct{}
	parked chan struct{}
	dead   bool

	// dispatchFn is the prebound wake-up callback: Sleep/SleepUntil on
	// the hot path schedule it without allocating a closure per park.
	dispatchFn func()
}

// Spawn starts fn as a new simulation process at the current simulated
// time. fn runs on its own goroutine but is serialized with all other
// simulation activity.
func (e *Engine) Spawn(name string, fn func(p *Proc)) *Proc {
	p := &Proc{
		eng:    e,
		name:   name,
		resume: make(chan struct{}),
		parked: make(chan struct{}),
	}
	p.dispatchFn = func() { e.dispatch(p) }
	e.procs++
	go func() {
		<-p.resume // wait for the engine to hand us control
		defer func() {
			p.dead = true
			p.eng.procs--
			p.parked <- struct{}{} // hand control back one last time
		}()
		fn(p)
	}()
	// First wake-up happens as a normal event at the current time, so
	// Spawn itself never runs user code.
	e.ScheduleProc(e.now, p)
	return p
}

// ScheduleProc arms a wake-up for p at time at through the process's
// prebound dispatch function — the zero-allocation event path of the
// hot loops. Sleep/SleepUntil/Yield all go through it; model code that
// wants to wake a process at an explicit instant should too, instead
// of capturing the process in a fresh closure.
func (e *Engine) ScheduleProc(at Time, p *Proc) { e.Schedule(at, p.dispatchFn) }

// dispatch transfers control from the engine to the process and waits
// for it to park or exit. Must be called from engine (event) context.
func (e *Engine) dispatch(p *Proc) {
	if p.dead {
		return
	}
	p.resume <- struct{}{}
	<-p.parked
}

// park returns control to the engine and blocks until the engine
// dispatches this process again.
func (p *Proc) park() {
	p.parked <- struct{}{}
	<-p.resume
}

// Engine returns the engine this process runs on.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current simulation time.
func (p *Proc) Now() Time { return p.eng.Now() }

// Name returns the process name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Running reports whether the simulation run time is still in progress;
// the usual main-loop condition (see Engine.Running).
func (p *Proc) Running() bool { return p.eng.Running() }

// Sleep suspends the process for d of simulated time. Other events and
// processes run in the meantime. Sleep(0) is a pure yield: it reinserts
// the process at the back of the current instant's event queue.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s: negative sleep %v", p.name, d))
	}
	e := p.eng
	e.ScheduleProc(e.now.Add(d), p)
	p.park()
}

// SleepUntil suspends the process until the absolute simulated time t.
// If t is in the past it degenerates to a yield.
func (p *Proc) SleepUntil(t Time) {
	if t < p.eng.now {
		t = p.eng.now
	}
	e := p.eng
	e.ScheduleProc(t, p)
	p.park()
}

// Yield lets every other event scheduled for the current instant run
// before the process continues.
func (p *Proc) Yield() { p.Sleep(0) }
