package sim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTimeArithmetic(t *testing.T) {
	var tm Time
	tm = tm.Add(5 * Nanosecond)
	if tm != Time(5000) {
		t.Fatalf("5ns = %d ps, want 5000", tm)
	}
	if d := tm.Sub(Time(1000)); d != 4*Nanosecond {
		t.Fatalf("sub: got %v", d)
	}
	if s := Time(Second).Seconds(); s != 1.0 {
		t.Fatalf("seconds: got %v", s)
	}
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{800 * Picosecond, "800ps"},
		{5 * Nanosecond, "5ns"},
		{1500 * Nanosecond, "1.5us"},
		{2 * Millisecond, "2ms"},
		{3 * Second, "3s"},
		{-5 * Nanosecond, "-5ns"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d ps: got %q want %q", int64(c.d), got, c.want)
		}
	}
}

func TestFromSecondsRoundTrip(t *testing.T) {
	if d := FromSeconds(1.5); d != 1500*Millisecond {
		t.Fatalf("FromSeconds(1.5) = %v", d)
	}
	if d := FromNanoseconds(0.8); d != 800*Picosecond {
		t.Fatalf("FromNanoseconds(0.8) = %v", d)
	}
}

func TestEngineOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(30, func() { order = append(order, 3) })
	e.Schedule(10, func() { order = append(order, 1) })
	e.Schedule(20, func() { order = append(order, 2) })
	e.RunAll()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 30 {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestEngineSameTimeFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.Schedule(42, func() { order = append(order, i) })
	}
	e.RunAll()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: order[%d]=%d", i, v)
		}
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(100, func() {})
	e.RunAll()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(50, func() {})
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(Time(i*100), func() { fired++ })
	}
	n := e.Run(500)
	if n != 5 || fired != 5 {
		t.Fatalf("Run(500) fired %d events (counter %d), want 5", n, fired)
	}
	if e.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", e.Pending())
	}
	// Run advances the clock to the until mark even without events there.
	if e.Now() != 500 {
		t.Fatalf("now = %v, want 500", e.Now())
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	hits := 0
	var rec func()
	rec = func() {
		hits++
		if hits < 10 {
			e.ScheduleAfter(Nanosecond, rec)
		}
	}
	e.ScheduleAfter(0, rec)
	e.RunAll()
	if hits != 10 {
		t.Fatalf("hits = %d", hits)
	}
	if e.Now() != Time(9*Nanosecond) {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var wakes []Time
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(10 * Nanosecond)
			wakes = append(wakes, p.Now())
		}
	})
	e.RunAll()
	if len(wakes) != 5 {
		t.Fatalf("wakes = %v", wakes)
	}
	for i, w := range wakes {
		want := Time((i + 1) * 10 * int(Nanosecond))
		if w != want {
			t.Fatalf("wake %d at %v, want %v", i, w, want)
		}
	}
	if e.Procs() != 0 {
		t.Fatalf("live procs = %d after RunAll", e.Procs())
	}
}

func TestProcInterleaving(t *testing.T) {
	e := NewEngine(1)
	var trace []string
	e.Spawn("a", func(p *Proc) {
		for i := 0; i < 3; i++ {
			trace = append(trace, "a")
			p.Sleep(2 * Nanosecond)
		}
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(Nanosecond)
		for i := 0; i < 3; i++ {
			trace = append(trace, "b")
			p.Sleep(2 * Nanosecond)
		}
	})
	e.RunAll()
	want := []string{"a", "b", "a", "b", "a", "b"}
	if len(trace) != len(want) {
		t.Fatalf("trace = %v", trace)
	}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestProcStopTime(t *testing.T) {
	e := NewEngine(1)
	e.SetStopTime(Time(100 * Nanosecond))
	iters := 0
	e.Spawn("loop", func(p *Proc) {
		for p.Running() {
			iters++
			p.Sleep(10 * Nanosecond)
		}
	})
	e.RunAll()
	if iters != 10 {
		t.Fatalf("iterations = %d, want 10", iters)
	}
}

func TestProcYieldFairness(t *testing.T) {
	e := NewEngine(1)
	var trace []int
	for id := 0; id < 3; id++ {
		id := id
		e.Spawn("p", func(p *Proc) {
			for i := 0; i < 3; i++ {
				trace = append(trace, id)
				p.Yield()
			}
		})
	}
	e.RunAll()
	// Round-robin: 0 1 2 0 1 2 0 1 2.
	for i, v := range trace {
		if v != i%3 {
			t.Fatalf("trace = %v", trace)
		}
	}
}

func TestEngineStop(t *testing.T) {
	e := NewEngine(1)
	n := 0
	e.Spawn("loop", func(p *Proc) {
		for p.Running() {
			n++
			if n == 5 {
				e.Stop()
			}
			p.Sleep(Nanosecond)
		}
	})
	e.RunAll()
	if n != 5 {
		t.Fatalf("n = %d, want 5", n)
	}
}

// TestDeterminism checks the core reproducibility invariant: identical
// seeds produce identical event traces, including RNG draws interleaved
// across processes.
func TestDeterminism(t *testing.T) {
	run := func(seed int64) []int64 {
		e := NewEngine(seed)
		var trace []int64
		for k := 0; k < 4; k++ {
			e.Spawn("w", func(p *Proc) {
				for i := 0; i < 50; i++ {
					d := Duration(e.Rand().Intn(1000)) * Picosecond
					p.Sleep(d)
					trace = append(trace, int64(p.Now()))
				}
			})
		}
		e.RunAll()
		return trace
	}
	a, b := run(7), run(7)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("traces diverge at %d: %d vs %d", i, a[i], b[i])
		}
	}
	c := run(8)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

// Property: events always fire in non-decreasing time order regardless of
// insertion order.
func TestEventOrderProperty(t *testing.T) {
	f := func(times []uint32) bool {
		e := NewEngine(1)
		var fired []Time
		for _, tt := range times {
			at := Time(tt)
			e.Schedule(at, func() { fired = append(fired, at) })
		}
		e.RunAll()
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(times)
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEngineScheduleStep(b *testing.B) {
	e := NewEngine(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.ScheduleAfter(Nanosecond, func() {})
		e.Step()
	}
}

func BenchmarkProcContextSwitch(b *testing.B) {
	e := NewEngine(1)
	e.SetStopTime(Never - 1)
	done := make(chan struct{})
	e.Spawn("spin", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Nanosecond)
		}
		close(done)
	})
	b.ReportAllocs()
	b.ResetTimer()
	go e.RunAll()
	<-done
}
