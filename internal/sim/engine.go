package sim

import (
	"fmt"
	"math/rand"
)

// event is a scheduled callback. Events with equal times fire in schedule
// order (seq tiebreak) so simulations are fully deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

// eventHeap is an index-based binary min-heap over a value slice. It
// replaces container/heap: Push/Pop go through no interface{} boxing,
// so scheduling an event allocates nothing beyond the occasional slice
// growth (the fn closure is the caller's).
type eventHeap struct {
	ev []event
}

func (h *eventHeap) len() int { return len(h.ev) }

// less orders by time, then schedule sequence.
func (h *eventHeap) less(i, j int) bool {
	if h.ev[i].at != h.ev[j].at {
		return h.ev[i].at < h.ev[j].at
	}
	return h.ev[i].seq < h.ev[j].seq
}

// push inserts e and restores the heap invariant bottom-up.
func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// pop removes and returns the earliest event.
func (h *eventHeap) pop() event {
	n := len(h.ev) - 1
	top := h.ev[0]
	h.ev[0] = h.ev[n]
	h.ev[n] = event{} // release the closure for GC
	h.ev = h.ev[:n]
	// Sift the moved element down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && h.less(l, least) {
			least = l
		}
		if r < n && h.less(r, least) {
			least = r
		}
		if least == i {
			break
		}
		h.ev[i], h.ev[least] = h.ev[least], h.ev[i]
		i = least
	}
	return top
}

// Scheduler selects the engine's ready-queue implementation. Both
// produce the exact same event order — time, then schedule sequence —
// so simulations are bit-identical across them; the property is pinned
// by TestWheelMatchesHeapOrder.
type Scheduler int

// Schedulers.
const (
	// SchedulerWheel is the default: a calendar-queue timing wheel with
	// pooled slot nodes and a far-future overflow heap (see wheel.go).
	// O(1) schedule/fire for the densely clustered near-future events
	// packet trains produce.
	SchedulerWheel Scheduler = iota
	// SchedulerHeap is the reference binary min-heap, kept as the
	// equivalence pin for the wheel and for bisecting scheduler bugs.
	SchedulerHeap
)

// Engine is a single-threaded discrete-event scheduler. All simulated
// activity — including cooperatively scheduled processes (see Proc) —
// runs under the engine's Run loop; at any instant at most one piece of
// simulation code executes, which makes every run reproducible for a
// given seed.
type Engine struct {
	now     Time
	useHeap bool
	wheel   timingWheel
	heap    eventHeap
	seq     uint64
	seed    int64
	rng     *rand.Rand
	streams uint64
	stopped bool
	procs   int    // live processes, for diagnostics
	events  uint64 // total events fired, for diagnostics

	// stopAt, when non-zero, is the simulated time at which Running()
	// starts returning false. It is the simulation's equivalent of
	// MoonGen's dpdk.running() runtime limit.
	stopAt Time
}

// NewEngine returns an engine whose random source is seeded with seed.
// The same seed always produces the same event trace.
func NewEngine(seed int64) *Engine {
	return NewEngineScheduler(seed, SchedulerWheel)
}

// NewEngineScheduler returns an engine with an explicit ready-queue
// implementation. Seed semantics are identical to NewEngine.
func NewEngineScheduler(seed int64, sched Scheduler) *Engine {
	return &Engine{
		seed:    seed,
		rng:     rand.New(rand.NewSource(seed)),
		stopAt:  Never,
		useHeap: sched == SchedulerHeap,
	}
}

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Seed returns the seed the engine was created with.
func (e *Engine) Seed() int64 { return e.seed }

// Rand returns the engine's deterministic random source. It must only be
// used from simulation context (event callbacks and processes).
func (e *Engine) Rand() *rand.Rand { return e.rng }

// SplitMix64 derives a decorrelated seed for sub-stream `stream` of a
// base seed — one splitmix64 mixing step. It is the single seed
// derivation of the simulation: engine sub-streams (NewRand) and the
// multicore shard seeds both use it, so base+1/stream-0 collisions of
// naive seed+i schemes cannot occur anywhere.
func SplitMix64(base int64, stream uint64) int64 {
	z := uint64(base) + stream*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// NewRand returns a fresh deterministic random stream derived from the
// engine seed and the stream's creation order (SplitMix64, the same
// derivation the multicore shard seeds use). Model components with
// per-item randomness — e.g. a link's per-frame PHY jitter — draw from
// their own stream so the values depend only on the item index, not on
// how work was grouped into events. That invariance is what makes
// batched and per-packet processing bit-identical.
func (e *Engine) NewRand() *rand.Rand {
	e.streams++
	return rand.New(rand.NewSource(SplitMix64(e.seed, e.streams)))
}

// Schedule runs fn at time at. Scheduling in the past panics: it would
// silently corrupt causality.
//
// The zero-allocation contract of the hot path: Schedule itself never
// allocates in steady state (wheel slot nodes are pooled), so a caller
// that passes a prebound fn — a port's pump/completion callback, a
// link's delivery callback, a process's dispatch function — schedules
// with zero allocations. Model code should hoist its closures into
// reusable fields exactly like those callers do.
func (e *Engine) Schedule(at Time, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	e.seq++
	if e.useHeap {
		e.heap.push(event{at: at, seq: e.seq, fn: fn})
	} else {
		e.wheel.schedule(at, e.seq, fn)
	}
}

// ScheduleAfter runs fn d after the current time.
func (e *Engine) ScheduleAfter(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Schedule(e.now.Add(d), fn)
}

// SetStopTime arranges for Running() to become false at t. Processes that
// loop on Running (the dpdk.running() idiom) terminate shortly after.
func (e *Engine) SetStopTime(t Time) { e.stopAt = t }

// SetRunFor is SetStopTime relative to the current simulated time.
func (e *Engine) SetRunFor(d Duration) { e.stopAt = e.now.Add(d) }

// Running reports whether the simulated run time is still in progress.
// It mirrors MoonGen's dpdk.running() main-loop condition.
func (e *Engine) Running() bool { return !e.stopped && e.now < e.stopAt }

// Stop makes Running return false immediately. Pending events still fire
// when Run continues, which lets processes observe the stop and finalize
// their counters, exactly like MoonGen tasks draining after Ctrl-C.
func (e *Engine) Stop() { e.stopped = true }

// popEvent removes and returns the earliest pending event.
func (e *Engine) popEvent() (Time, func(), bool) {
	if e.useHeap {
		if e.heap.len() == 0 {
			return 0, nil, false
		}
		ev := e.heap.pop()
		return ev.at, ev.fn, true
	}
	if e.wheel.len() == 0 {
		return 0, nil, false
	}
	at, fn := e.wheel.pop()
	return at, fn, true
}

// Step fires the earliest pending event. It reports false when no events
// remain.
func (e *Engine) Step() bool {
	at, fn, ok := e.popEvent()
	if !ok {
		return false
	}
	if at < e.now {
		panic("sim: time went backwards")
	}
	e.now = at
	e.events++
	fn()
	return true
}

// Run fires events until the queue is empty or the next event is after
// until. It returns the number of events fired.
func (e *Engine) Run(until Time) int {
	n := 0
	if e.useHeap {
		for e.heap.len() > 0 && e.heap.ev[0].at <= until {
			e.Step()
			n++
		}
	} else {
		for {
			at, fn, ok := e.wheel.popAtMost(until)
			if !ok {
				break
			}
			if at < e.now {
				panic("sim: time went backwards")
			}
			e.now = at
			e.events++
			fn()
			n++
		}
	}
	if e.now < until && until != Never {
		e.now = until
	}
	return n
}

// RunAll fires every event until the queue drains. Processes must
// terminate (e.g. via SetStopTime) or RunAll never returns.
func (e *Engine) RunAll() int { return e.Run(Never) }

// Pending returns the number of scheduled events.
func (e *Engine) Pending() int {
	if e.useHeap {
		return e.heap.len()
	}
	return e.wheel.len()
}

// Procs returns the number of live processes.
func (e *Engine) Procs() int { return e.procs }

// EventsProcessed returns the total number of events fired since the
// engine was created. The counter is monotonic and engine-owned (plain
// field, no atomics): it must only be read from simulation context,
// which is exactly how the telemetry recorder samples it.
func (e *Engine) EventsProcessed() uint64 { return e.events }

// SchedStats is a snapshot of the scheduler's internal counters —
// cheap diagnostics for the telemetry layer and for perf debugging.
// All values are monotonic except Pending and MaxSlotDepth (a running
// maximum). The heap scheduler reports zero wheel statistics.
type SchedStats struct {
	// EventsProcessed is the total number of events fired.
	EventsProcessed uint64
	// WheelPromotions counts overflow-heap events promoted into wheel
	// slots as the cursor approached them (each event promotes at most
	// once).
	WheelPromotions uint64
	// MaxSlotDepth is the largest materialized tick buffer seen —
	// crowding beyond the singleton fast path. Singleton slot fires
	// never materialize a buffer and so do not register here.
	MaxSlotDepth int
	// Pending is the current number of scheduled events.
	Pending int
}

// SchedStats returns the scheduler counters. Simulation context only,
// like EventsProcessed.
func (e *Engine) SchedStats() SchedStats {
	return SchedStats{
		EventsProcessed: e.events,
		WheelPromotions: e.wheel.promotions,
		MaxSlotDepth:    e.wheel.maxDepth,
		Pending:         e.Pending(),
	}
}
