package sim

import (
	"math/bits"
	"slices"
)

// Timing-wheel ready queue — the engine's default scheduler.
//
// The binary heap pays O(log n) comparisons per schedule and per fire.
// Simulated packet trains produce densely clustered event times (every
// departure, delivery and completion lands within nanoseconds of its
// neighbours), which is exactly the distribution a calendar queue turns
// into O(1) operations: events hash by time into a circular array of
// slots, the cursor only ever moves forward, and one slot holds at most
// a handful of events.
//
// Layout:
//
//   - The wheel proper covers wheelSlots ticks of wheelTick picoseconds
//     each (64 µs of simulated future at the default constants). Events
//     within that horizon are pushed onto their slot's singly-linked
//     list in O(1); slot nodes are pooled, so the steady state
//     schedules without allocating.
//   - Events beyond the horizon (rate-control timers, experiment stop
//     boundaries, long sleeps) go to a small overflow min-heap and are
//     promoted into the wheel as the cursor approaches them — each
//     event overflows at most once.
//   - Firing a slot materializes it into a buffer sorted by (time,
//     sequence), which restores the exact global order the heap
//     produced: equal-time events fire in schedule order, so every
//     golden CSV and determinism pin stays bit-identical. The
//     equivalence is pinned by TestWheelMatchesHeapOrder.
//
// Re-entrancy: an event scheduling at the current instant (Yield, a
// pump kicked from a send) lands in the currently-firing tick's buffer
// at its sorted position and fires in the same pass.
const (
	// wheelTickShift sets the tick to 2^16 ps = 65.536 ns — on the
	// order of one minimum-frame wire time at 10 GbE, so back-to-back
	// datapath events spread roughly one per slot.
	wheelTickShift = 16
	// wheelSlots × tick ≈ 67 µs of near future covered by the wheel;
	// task backoffs (1 µs) and receive polls (20 µs) stay inside it.
	wheelSlots = 1024
	wheelMask  = wheelSlots - 1
	wheelWords = wheelSlots / 64
)

// wheelNode is one scheduled event. Nodes are pooled by the wheel
// (free list), so steady-state scheduling performs no allocations.
type wheelNode struct {
	at   Time
	seq  uint64
	fn   func()
	next *wheelNode
}

// nodeLess is the engine's total event order: time, then schedule
// sequence (equal-time FIFO).
func nodeLess(a, b *wheelNode) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// nodeCmp is nodeLess for slices.SortFunc.
func nodeCmp(a, b *wheelNode) int {
	switch {
	case nodeLess(a, b):
		return -1
	case nodeLess(b, a):
		return 1
	}
	return 0
}

// timingWheel is the calendar queue. Invariants (tick = at >> shift):
//
//   - cursor is the tick of the last popped event (0 initially) and
//     never decreases; every pending event has tick ≥ cursor.
//   - slot lists hold only ticks in [cursor, cursor+wheelSlots), so a
//     slot index maps to exactly one tick — no revolution ambiguity.
//   - the overflow heap holds only ticks ≥ cursor+wheelSlots once
//     promote has run; promote is called before every pop/peek.
//   - the fired buffer, when loaded, is the sorted remainder of the
//     earliest tick; slots and overflow then hold strictly later ticks.
type timingWheel struct {
	slots    [wheelSlots]*wheelNode // unordered lists; sorted at load
	occupied [wheelWords]uint64
	cursor   int64
	slotLen  int // events parked in slots

	// fired is the loaded (currently firing) tick, sorted by (at, seq).
	fired     []*wheelNode
	firedIdx  int
	firedTick int64
	loaded    bool

	over nodeHeap // far-future overflow, min-heap by (at, seq)

	free  *wheelNode // node pool
	freeN int

	// Diagnostics sampled by Engine.SchedStats.
	promotions uint64 // overflow events promoted into slots
	maxDepth   int    // largest materialized tick buffer
}

func (w *timingWheel) len() int {
	return w.slotLen + (len(w.fired) - w.firedIdx) + w.over.len()
}

func (w *timingWheel) alloc() *wheelNode {
	if n := w.free; n != nil {
		w.free = n.next
		w.freeN--
		n.next = nil
		return n
	}
	return &wheelNode{}
}

// release returns a fired node to the pool. The pool is bounded only by
// the peak pending-event population, which the simulation bounds by
// construction (one event per port pump, per link delivery, per task).
func (w *timingWheel) release(n *wheelNode) {
	n.fn = nil // release the closure for GC
	n.next = w.free
	w.free = n
	w.freeN++
}

// tickOf maps a time to its wheel tick. Time is non-negative (the
// engine rejects scheduling in the past and starts at 0).
func tickOf(at Time) int64 { return int64(at) >> wheelTickShift }

// schedule inserts an event. O(1) except for the re-entrant insert
// into the currently-firing tick (binary search + copy).
func (w *timingWheel) schedule(at Time, seq uint64, fn func()) {
	n := w.alloc()
	n.at, n.seq, n.fn = at, seq, fn
	tick := tickOf(at)
	if w.loaded {
		if tick == w.firedTick {
			w.insertFired(n)
			return
		}
		if tick < w.firedTick {
			// Only reachable between runs: Run(until) materialized a
			// future multi-event tick, stopped before it (leaving the
			// sorted remainder loaded), and a fresh event now targets
			// an earlier tick.
			w.unload()
		}
	}
	if tick-w.cursor >= wheelSlots {
		w.over.push(n)
		return
	}
	w.pushSlot(n, int(tick&wheelMask))
}

// pushSlot prepends to a slot list (order restored by the load sort).
func (w *timingWheel) pushSlot(n *wheelNode, slot int) {
	n.next = w.slots[slot]
	w.slots[slot] = n
	w.occupied[slot>>6] |= 1 << (slot & 63)
	w.slotLen++
}

// insertFired places a node into the sorted remainder of the firing
// buffer. New events carry the highest sequence, so an event scheduled
// for the current instant lands after every pending equal-time event —
// the same-tick re-entrancy order the heap produced.
func (w *timingWheel) insertFired(n *wheelNode) {
	lo, hi := w.firedIdx, len(w.fired)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if nodeLess(w.fired[mid], n) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	w.fired = append(w.fired, nil)
	copy(w.fired[lo+1:], w.fired[lo:])
	w.fired[lo] = n
}

// unload parks the unfired remainder of the loaded tick back into its
// slot (the load sort re-establishes order).
func (w *timingWheel) unload() {
	slot := int(w.firedTick & wheelMask)
	for i := len(w.fired) - 1; i >= w.firedIdx; i-- {
		w.pushSlot(w.fired[i], slot)
		w.fired[i] = nil
	}
	w.fired = w.fired[:0]
	w.firedIdx = 0
	w.loaded = false
}

// promote moves overflow events whose tick entered the wheel horizon
// into their slots. Called before every pop/peek, it keeps the overflow
// heap strictly beyond the horizon, so the wheel always holds the
// earliest pending event when it is non-empty. The empty-overflow case
// is a single inlined branch.
func (w *timingWheel) promote() {
	if len(w.over.ns) == 0 {
		return
	}
	w.promoteSlow()
}

func (w *timingWheel) promoteSlow() {
	for w.over.len() > 0 {
		h := w.over.head()
		tick := tickOf(h.at)
		if tick-w.cursor >= wheelSlots {
			return
		}
		w.over.popHead()
		w.pushSlot(h, int(tick&wheelMask))
		w.promotions++
	}
}

// firstOccupied returns the slot of the earliest pending tick. Must
// only be called with slotLen > 0. The bitmap scan starts at the
// cursor's slot and wraps once: slots behind the cursor's index hold
// later (wrapped) ticks.
func (w *timingWheel) firstOccupied() int {
	start := int(w.cursor) & wheelMask
	wi := start >> 6
	word := w.occupied[wi] &^ ((1 << (start & 63)) - 1)
	for range wheelWords + 1 {
		if word != 0 {
			return wi<<6 + bits.TrailingZeros64(word)
		}
		wi = (wi + 1) & (wheelWords - 1)
		word = w.occupied[wi]
	}
	panic("sim: timing wheel bitmap desynchronized")
}

// load materializes a slot into the fired buffer in (time, seq) order.
// Slots mostly hold one or a handful of events (the tick is on the
// order of one frame time), so tiny inputs take an insertion sort and
// only genuinely crowded ticks pay for the general sort.
func (w *timingWheel) load(slot int) {
	n := w.slots[slot]
	w.slots[slot] = nil
	w.occupied[slot>>6] &^= 1 << (slot & 63)
	for n != nil {
		next := n.next
		n.next = nil
		w.fired = append(w.fired, n)
		w.slotLen--
		n = next
	}
	if len(w.fired) <= 16 {
		for i := 1; i < len(w.fired); i++ {
			x := w.fired[i]
			j := i - 1
			for j >= 0 && nodeLess(x, w.fired[j]) {
				w.fired[j+1] = w.fired[j]
				j--
			}
			w.fired[j+1] = x
		}
	} else {
		slices.SortFunc(w.fired, nodeCmp)
	}
	w.firedIdx = 0
	w.firedTick = tickOf(w.fired[0].at)
	w.loaded = true
	if len(w.fired) > w.maxDepth {
		w.maxDepth = len(w.fired)
	}
}

// pop removes and returns the earliest event. Must only be called when
// len() > 0.
func (w *timingWheel) pop() (Time, func()) {
	at, fn, _ := w.popAtMost(Never)
	return at, fn
}

// popAtMost removes and returns the earliest event, but only if its
// time is ≤ until. One traversal serves both the peek and the pop of
// the engine's Run loop; pop() is popAtMost(Never). Must only be
// called when len() > 0 or with a finite until.
func (w *timingWheel) popAtMost(until Time) (Time, func(), bool) {
	w.promote()
	if !w.loaded {
		if w.slotLen > 0 {
			slot := w.firstOccupied()
			if n := w.slots[slot]; n.next == nil {
				// Singleton slot: fire without materializing a buffer.
				if n.at > until {
					return 0, nil, false
				}
				w.slots[slot] = nil
				w.occupied[slot>>6] &^= 1 << (slot & 63)
				w.slotLen--
				w.cursor = tickOf(n.at)
				at, fn := n.at, n.fn
				w.release(n)
				return at, fn, true
			}
			w.load(slot)
		} else {
			if len(w.over.ns) == 0 || w.over.head().at > until {
				return 0, nil, false
			}
			n := w.over.popHead()
			w.cursor = tickOf(n.at)
			at, fn := n.at, n.fn
			w.release(n)
			return at, fn, true
		}
	}
	n := w.fired[w.firedIdx]
	if n.at > until {
		return 0, nil, false
	}
	w.fired[w.firedIdx] = nil
	w.firedIdx++
	if w.firedIdx == len(w.fired) {
		w.fired = w.fired[:0]
		w.firedIdx = 0
		w.loaded = false
	}
	w.cursor = w.firedTick
	at, fn := n.at, n.fn
	w.release(n)
	return at, fn, true
}

// nodeHeap is a binary min-heap of overflow nodes ordered by (at, seq).
type nodeHeap struct {
	ns []*wheelNode
}

func (h *nodeHeap) len() int         { return len(h.ns) }
func (h *nodeHeap) head() *wheelNode { return h.ns[0] }

func (h *nodeHeap) push(n *wheelNode) {
	h.ns = append(h.ns, n)
	i := len(h.ns) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !nodeLess(h.ns[i], h.ns[parent]) {
			break
		}
		h.ns[i], h.ns[parent] = h.ns[parent], h.ns[i]
		i = parent
	}
}

func (h *nodeHeap) popHead() *wheelNode {
	n := len(h.ns) - 1
	top := h.ns[0]
	h.ns[0] = h.ns[n]
	h.ns[n] = nil
	h.ns = h.ns[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && nodeLess(h.ns[l], h.ns[least]) {
			least = l
		}
		if r < n && nodeLess(h.ns[r], h.ns[least]) {
			least = r
		}
		if least == i {
			break
		}
		h.ns[i], h.ns[least] = h.ns[least], h.ns[i]
		i = least
	}
	return top
}
