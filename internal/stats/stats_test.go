package stats

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestOnlineStats(t *testing.T) {
	var o OnlineStats
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.Count() != 8 {
		t.Fatalf("count = %d", o.Count())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %f", o.Mean())
	}
	if math.Abs(o.Std()-2) > 1e-12 {
		t.Fatalf("std = %f", o.Std())
	}
}

func TestOnlineStatsMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var o OnlineStats
		var sum float64
		for _, x := range xs {
			x = math.Mod(x, 1e6) // avoid float blowups
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			o.Add(x)
			sum += x
		}
		if len(xs) == 0 {
			return o.Mean() == 0
		}
		return math.Abs(o.Mean()-sum/float64(len(xs))) < 1e-6*(1+math.Abs(sum))
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCounterRates(t *testing.T) {
	c := NewCounter(CounterConfig{Name: "tx", Window: sim.Millisecond})
	// 1000 packets of 60 B per ms for 10 ms = 1 Mpps, 0.48 Gbit/s.
	for ms := 0; ms < 10; ms++ {
		for i := 0; i < 10; i++ {
			now := sim.Time(ms)*sim.Time(sim.Millisecond) + sim.Time(i*100)*sim.Time(sim.Microsecond)
			c.Update(100, 100*60, now)
		}
	}
	c.Finalize(sim.Time(10 * sim.Millisecond))
	mean, std := c.MppsStats()
	if math.Abs(mean-1.0) > 0.01 {
		t.Fatalf("mpps = %f ± %f", mean, std)
	}
	if std > 0.02 {
		t.Fatalf("std = %f for constant rate", std)
	}
	gb, _ := c.GbpsStats()
	if math.Abs(gb-0.48) > 0.01 {
		t.Fatalf("gbps = %f", gb)
	}
	if c.TotalPackets != 10000 {
		t.Fatalf("total = %d", c.TotalPackets)
	}
}

func TestCounterPlainOutput(t *testing.T) {
	var buf bytes.Buffer
	c := NewCounter(CounterConfig{Name: "rx", Format: FormatPlain, Out: &buf, Window: sim.Millisecond})
	c.Update(1000, 60000, sim.Time(500*sim.Microsecond))
	c.Update(1000, 60000, sim.Time(1500*sim.Microsecond)) // closes window 1
	c.Finalize(sim.Time(2 * sim.Millisecond))
	out := buf.String()
	if !strings.Contains(out, "[rx]") || !strings.Contains(out, "TOTAL") {
		t.Fatalf("output = %q", out)
	}
}

func TestCounterCSVOutput(t *testing.T) {
	var buf bytes.Buffer
	c := NewCounter(CounterConfig{Name: "rx", Format: FormatCSV, Out: &buf, Window: sim.Millisecond})
	c.Update(100, 6000, sim.Time(2*sim.Millisecond))
	c.Finalize(sim.Time(3 * sim.Millisecond))
	out := buf.String()
	if !strings.HasPrefix(out, "counter,time_s,mpps,gbps") {
		t.Fatalf("missing CSV header: %q", out)
	}
	if !strings.Contains(out, "rx,total,100,6000") {
		t.Fatalf("missing total line: %q", out)
	}
}

func TestCounterFinalizeIdempotent(t *testing.T) {
	var buf bytes.Buffer
	c := NewCounter(CounterConfig{Name: "x", Format: FormatPlain, Out: &buf})
	c.Update(1, 60, 0)
	c.Finalize(sim.Time(sim.Second))
	n := buf.Len()
	c.Finalize(sim.Time(2 * sim.Second))
	if buf.Len() != n {
		t.Fatal("second Finalize produced output")
	}
}

func TestAverageMpps(t *testing.T) {
	c := NewCounter(CounterConfig{Name: "x", Window: sim.Millisecond})
	c.Update(14880, 14880*60, sim.Time(sim.Millisecond))
	if avg := c.AverageMpps(); math.Abs(avg-14.88) > 0.01 {
		t.Fatalf("avg = %f", avg)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(64 * sim.Nanosecond)
	for i := 1; i <= 100; i++ {
		h.Add(sim.Duration(i) * 10 * sim.Nanosecond) // 10..1000 ns
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 10*sim.Nanosecond || h.Max() != 1000*sim.Nanosecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if m := h.Mean(); m != sim.Duration(5050)*sim.Nanosecond/10 {
		t.Fatalf("mean = %v", m)
	}
	med := h.Median()
	if med < 490*sim.Nanosecond || med > 510*sim.Nanosecond {
		t.Fatalf("median = %v", med)
	}
	q1, q2, q3 := h.Quartiles()
	if !(q1 < q2 && q2 < q3) {
		t.Fatalf("quartiles %v %v %v", q1, q2, q3)
	}
}

func TestHistogramFractionWithin(t *testing.T) {
	h := NewHistogram(sim.Nanosecond)
	center := 2 * sim.Microsecond
	for i := -100; i <= 100; i++ {
		h.Add(center + sim.Duration(i)*sim.Nanosecond)
	}
	if f := h.FractionWithin(center, 50*sim.Nanosecond); math.Abs(f-101.0/201) > 0.001 {
		t.Fatalf("within ±50ns = %f", f)
	}
	if f := h.FractionWithin(center, 200*sim.Nanosecond); f != 1 {
		t.Fatalf("within ±200ns = %f", f)
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h := NewHistogram(sim.Nanosecond)
	h.Add(672 * sim.Nanosecond)
	h.Add(672 * sim.Nanosecond)
	h.Add(2 * sim.Microsecond)
	h.Add(2 * sim.Microsecond)
	if f := h.FractionBelow(700 * sim.Nanosecond); f != 0.5 {
		t.Fatalf("below = %f", f)
	}
}

func TestHistogramBinsAndCSV(t *testing.T) {
	h := NewHistogram(64 * sim.Nanosecond)
	h.Add(10 * sim.Nanosecond)  // bin 0
	h.Add(70 * sim.Nanosecond)  // bin 1
	h.Add(100 * sim.Nanosecond) // bin 1
	bins := h.Bins()
	if len(bins) != 2 || bins[0].Count != 1 || bins[1].Count != 2 {
		t.Fatalf("bins = %+v", bins)
	}
	var buf bytes.Buffer
	h.WriteCSV(&buf)
	if !strings.Contains(buf.String(), "64.0,2,0.666667") {
		t.Fatalf("csv = %q", buf.String())
	}
}

// TestHistogramPercentileBinFallback exercises the bin-based percentile
// path by overflowing the sample buffer.
func TestHistogramPercentileBinFallback(t *testing.T) {
	h := NewHistogram(sim.Nanosecond)
	h.maxSamples = 10
	for i := 0; i < 1000; i++ {
		h.Add(sim.Duration(i) * sim.Nanosecond)
	}
	med := h.Median()
	if med < 480*sim.Nanosecond || med > 520*sim.Nanosecond {
		t.Fatalf("fallback median = %v", med)
	}
	// FractionWithin/Below fall back too.
	if f := h.FractionBelow(499 * sim.Nanosecond); math.Abs(f-0.5) > 0.01 {
		t.Fatalf("fallback below = %f", f)
	}
	if f := h.FractionWithin(500*sim.Nanosecond, 100*sim.Nanosecond); math.Abs(f-0.2) > 0.02 {
		t.Fatalf("fallback within = %f", f)
	}
}

// Property: percentiles are monotone in p.
func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(64 * sim.Nanosecond)
		for _, v := range raw {
			h.Add(sim.Duration(v) * sim.Nanosecond)
		}
		last := sim.Duration(-1)
		for p := 5.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramStd(t *testing.T) {
	h := NewHistogram(sim.Nanosecond)
	for _, v := range []int{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(sim.Duration(v) * sim.Nanosecond)
	}
	if s := h.Std(); s != 2*sim.Nanosecond {
		t.Fatalf("std = %v", s)
	}
}
