package stats

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestOnlineStats(t *testing.T) {
	var o OnlineStats
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		o.Add(x)
	}
	if o.Count() != 8 {
		t.Fatalf("count = %d", o.Count())
	}
	if math.Abs(o.Mean()-5) > 1e-12 {
		t.Fatalf("mean = %f", o.Mean())
	}
	if math.Abs(o.Std()-2) > 1e-12 {
		t.Fatalf("std = %f", o.Std())
	}
}

func TestOnlineStatsMatchesNaive(t *testing.T) {
	f := func(xs []float64) bool {
		var o OnlineStats
		var sum float64
		for _, x := range xs {
			x = math.Mod(x, 1e6) // avoid float blowups
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			o.Add(x)
			sum += x
		}
		if len(xs) == 0 {
			return o.Mean() == 0
		}
		return math.Abs(o.Mean()-sum/float64(len(xs))) < 1e-6*(1+math.Abs(sum))
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(1))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestCounterRates(t *testing.T) {
	c := NewCounter(CounterConfig{Name: "tx", Window: sim.Millisecond})
	// 1000 packets of 60 B per ms for 10 ms = 1 Mpps, 0.48 Gbit/s.
	for ms := 0; ms < 10; ms++ {
		for i := 0; i < 10; i++ {
			now := sim.Time(ms)*sim.Time(sim.Millisecond) + sim.Time(i*100)*sim.Time(sim.Microsecond)
			c.Update(100, 100*60, now)
		}
	}
	c.Finalize(sim.Time(10 * sim.Millisecond))
	mean, std := c.MppsStats()
	if math.Abs(mean-1.0) > 0.01 {
		t.Fatalf("mpps = %f ± %f", mean, std)
	}
	if std > 0.02 {
		t.Fatalf("std = %f for constant rate", std)
	}
	gb, _ := c.GbpsStats()
	if math.Abs(gb-0.48) > 0.01 {
		t.Fatalf("gbps = %f", gb)
	}
	if c.TotalPackets != 10000 {
		t.Fatalf("total = %d", c.TotalPackets)
	}
}

func TestCounterPlainOutput(t *testing.T) {
	var buf bytes.Buffer
	c := NewCounter(CounterConfig{Name: "rx", Format: FormatPlain, Out: &buf, Window: sim.Millisecond})
	c.Update(1000, 60000, sim.Time(500*sim.Microsecond))
	c.Update(1000, 60000, sim.Time(1500*sim.Microsecond)) // closes window 1
	c.Finalize(sim.Time(2 * sim.Millisecond))
	out := buf.String()
	if !strings.Contains(out, "[rx]") || !strings.Contains(out, "TOTAL") {
		t.Fatalf("output = %q", out)
	}
}

func TestCounterCSVOutput(t *testing.T) {
	var buf bytes.Buffer
	c := NewCounter(CounterConfig{Name: "rx", Format: FormatCSV, Out: &buf, Window: sim.Millisecond})
	c.Update(100, 6000, sim.Time(2*sim.Millisecond))
	c.Finalize(sim.Time(3 * sim.Millisecond))
	out := buf.String()
	if !strings.HasPrefix(out, "counter,time_s,mpps,gbps") {
		t.Fatalf("missing CSV header: %q", out)
	}
	if !strings.Contains(out, "rx,total,100,6000") {
		t.Fatalf("missing total line: %q", out)
	}
}

func TestCounterFinalizeIdempotent(t *testing.T) {
	var buf bytes.Buffer
	c := NewCounter(CounterConfig{Name: "x", Format: FormatPlain, Out: &buf})
	c.Update(1, 60, 0)
	c.Finalize(sim.Time(sim.Second))
	n := buf.Len()
	c.Finalize(sim.Time(2 * sim.Second))
	if buf.Len() != n {
		t.Fatal("second Finalize produced output")
	}
}

func TestAverageMpps(t *testing.T) {
	c := NewCounter(CounterConfig{Name: "x", Window: sim.Millisecond})
	c.Update(14880, 14880*60, sim.Time(sim.Millisecond))
	if avg := c.AverageMpps(); math.Abs(avg-14.88) > 0.01 {
		t.Fatalf("avg = %f", avg)
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(64 * sim.Nanosecond)
	for i := 1; i <= 100; i++ {
		h.Add(sim.Duration(i) * 10 * sim.Nanosecond) // 10..1000 ns
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Min() != 10*sim.Nanosecond || h.Max() != 1000*sim.Nanosecond {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	if m := h.Mean(); m != sim.Duration(5050)*sim.Nanosecond/10 {
		t.Fatalf("mean = %v", m)
	}
	med := h.Median()
	if med < 490*sim.Nanosecond || med > 510*sim.Nanosecond {
		t.Fatalf("median = %v", med)
	}
	q1, q2, q3 := h.Quartiles()
	if !(q1 < q2 && q2 < q3) {
		t.Fatalf("quartiles %v %v %v", q1, q2, q3)
	}
}

func TestHistogramFractionWithin(t *testing.T) {
	h := NewHistogram(sim.Nanosecond)
	center := 2 * sim.Microsecond
	for i := -100; i <= 100; i++ {
		h.Add(center + sim.Duration(i)*sim.Nanosecond)
	}
	if f := h.FractionWithin(center, 50*sim.Nanosecond); math.Abs(f-101.0/201) > 0.001 {
		t.Fatalf("within ±50ns = %f", f)
	}
	if f := h.FractionWithin(center, 200*sim.Nanosecond); f != 1 {
		t.Fatalf("within ±200ns = %f", f)
	}
}

func TestHistogramFractionBelow(t *testing.T) {
	h := NewHistogram(sim.Nanosecond)
	h.Add(672 * sim.Nanosecond)
	h.Add(672 * sim.Nanosecond)
	h.Add(2 * sim.Microsecond)
	h.Add(2 * sim.Microsecond)
	if f := h.FractionBelow(700 * sim.Nanosecond); f != 0.5 {
		t.Fatalf("below = %f", f)
	}
}

func TestHistogramBinsAndCSV(t *testing.T) {
	h := NewHistogram(64 * sim.Nanosecond)
	h.Add(10 * sim.Nanosecond)  // bin 0
	h.Add(70 * sim.Nanosecond)  // bin 1
	h.Add(100 * sim.Nanosecond) // bin 1
	bins := h.Bins()
	if len(bins) != 2 || bins[0].Count != 1 || bins[1].Count != 2 {
		t.Fatalf("bins = %+v", bins)
	}
	var buf bytes.Buffer
	h.WriteCSV(&buf)
	if !strings.Contains(buf.String(), "64.0,2,0.666667") {
		t.Fatalf("csv = %q", buf.String())
	}
}

// TestHistogramPercentileBinFallback exercises the bin-based percentile
// path by overflowing the sample buffer.
func TestHistogramPercentileBinFallback(t *testing.T) {
	h := NewHistogram(sim.Nanosecond)
	h.maxSamples = 10
	for i := 0; i < 1000; i++ {
		h.Add(sim.Duration(i) * sim.Nanosecond)
	}
	med := h.Median()
	if med < 480*sim.Nanosecond || med > 520*sim.Nanosecond {
		t.Fatalf("fallback median = %v", med)
	}
	// FractionWithin/Below fall back too.
	if f := h.FractionBelow(499 * sim.Nanosecond); math.Abs(f-0.5) > 0.01 {
		t.Fatalf("fallback below = %f", f)
	}
	if f := h.FractionWithin(500*sim.Nanosecond, 100*sim.Nanosecond); math.Abs(f-0.2) > 0.02 {
		t.Fatalf("fallback within = %f", f)
	}
}

// Property: percentiles are monotone in p.
func TestHistogramPercentileMonotoneProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		h := NewHistogram(64 * sim.Nanosecond)
		for _, v := range raw {
			h.Add(sim.Duration(v) * sim.Nanosecond)
		}
		last := sim.Duration(-1)
		for p := 5.0; p <= 100; p += 5 {
			v := h.Percentile(p)
			if v < last {
				return false
			}
			last = v
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// --- merge semantics: sharded == unsharded ---------------------------

// TestOnlineStatsMergeProperty: splitting a sample stream over k shards
// and merging equals accumulating it unsharded.
func TestOnlineStatsMergeProperty(t *testing.T) {
	f := func(raw []uint32, kRaw uint8) bool {
		k := int(kRaw)%7 + 1
		var whole OnlineStats
		shards := make([]OnlineStats, k)
		for i, v := range raw {
			x := float64(v) / 1e3
			whole.Add(x)
			shards[i%k].Add(x)
		}
		var merged OnlineStats
		for i := range shards {
			merged.Merge(&shards[i])
		}
		if merged.Count() != whole.Count() {
			return false
		}
		if whole.Count() == 0 {
			return true
		}
		scale := 1 + math.Abs(whole.Mean())
		return math.Abs(merged.Mean()-whole.Mean()) < 1e-9*scale &&
			math.Abs(merged.Variance()-whole.Variance()) < 1e-6*(1+whole.Variance())
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestHistogramMergeProperty: a histogram sharded k ways and merged is
// exactly the unsharded histogram — counts, moments, min/max, bins and
// percentiles.
func TestHistogramMergeProperty(t *testing.T) {
	f := func(raw []uint16, kRaw uint8) bool {
		k := int(kRaw)%5 + 1
		whole := NewHistogram(64 * sim.Nanosecond)
		shards := make([]*Histogram, k)
		for i := range shards {
			shards[i] = NewHistogram(64 * sim.Nanosecond)
		}
		for i, v := range raw {
			d := sim.Duration(v) * sim.Nanosecond
			whole.Add(d)
			shards[i%k].Add(d)
		}
		merged := NewHistogram(64 * sim.Nanosecond)
		for _, s := range shards {
			merged.Merge(s)
		}
		if merged.Count() != whole.Count() {
			return false
		}
		if whole.Count() == 0 {
			return true
		}
		if merged.Min() != whole.Min() || merged.Max() != whole.Max() ||
			merged.Mean() != whole.Mean() || merged.Std() != whole.Std() {
			return false
		}
		wb, mb := whole.Bins(), merged.Bins()
		if len(wb) != len(mb) {
			return false
		}
		for i := range wb {
			if wb[i] != mb[i] {
				return false
			}
		}
		for p := 10.0; p <= 100; p += 10 {
			if merged.Percentile(p) != whole.Percentile(p) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramMergeBinWidthMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merge of mismatched bin widths did not panic")
		}
	}()
	a := NewHistogram(64 * sim.Nanosecond)
	b := NewHistogram(32 * sim.Nanosecond)
	b.Add(sim.Microsecond)
	a.Merge(b)
}

func TestCounterMerge(t *testing.T) {
	// Two shards each running 1 Mpps over the same 10 ms span merge
	// into: 2x the totals, per-window rate population mean still 1
	// Mpps, and a 2 Mpps aggregate average.
	mk := func() *Counter {
		c := NewCounter(CounterConfig{Name: "tx", Window: sim.Millisecond})
		for ms := 0; ms < 10; ms++ {
			c.Update(1000, 1000*60, sim.Time(ms)*sim.Time(sim.Millisecond)+sim.Time(500*sim.Microsecond))
		}
		c.Finalize(sim.Time(10 * sim.Millisecond))
		return c
	}
	a, b := mk(), mk()
	a.Merge(b)
	if a.TotalPackets != 20000 {
		t.Fatalf("merged total = %d", a.TotalPackets)
	}
	mean, std := a.MppsStats()
	if math.Abs(mean-1.0) > 0.01 || std > 0.02 {
		t.Fatalf("merged per-window rate = %f ± %f, want 1 ± 0", mean, std)
	}
	// The average spans start..last update (9.5 ms): 20000 pkts over
	// 9.5 ms ≈ 2.105 Mpps — twice the single-shard average.
	if avg, single := a.AverageMpps(), b.AverageMpps(); math.Abs(avg-2*single) > 0.01 {
		t.Fatalf("merged aggregate average = %f, want 2x single-shard %f", avg, single)
	}
}

// TestCounterMergeFreshTargetAdoptsEpoch: merging into a counter that
// never saw data must take the source's start time, so AverageMpps
// spans the measurement and not [0, lastTime].
func TestCounterMergeFreshTargetAdoptsEpoch(t *testing.T) {
	src := NewCounter(CounterConfig{Name: "tx", Window: sim.Millisecond, Start: sim.Time(5 * sim.Millisecond)})
	src.Update(10000, 10000*60, sim.Time(15*sim.Millisecond))
	src.Finalize(sim.Time(15 * sim.Millisecond))
	merged := NewCounter(CounterConfig{Name: "merged"})
	merged.Merge(src)
	if got, want := merged.AverageMpps(), src.AverageMpps(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("merged AverageMpps = %f, want source's %f", got, want)
	}
}

// TestHistogramCSVRoundTrip: WriteCSV output parses back into a
// histogram whose WriteCSV output is byte-identical.
func TestHistogramCSVRoundTrip(t *testing.T) {
	h := NewHistogram(64 * sim.Nanosecond)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5000; i++ {
		h.Add(sim.Duration(rng.Intn(100000)) * sim.Nanosecond)
	}
	var first bytes.Buffer
	h.WriteCSV(&first)
	parsed, err := ParseHistogramCSV(bytes.NewReader(first.Bytes()), h.BinWidth)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Count() != h.Count() {
		t.Fatalf("parsed count = %d, want %d", parsed.Count(), h.Count())
	}
	var second bytes.Buffer
	parsed.WriteCSV(&second)
	if first.String() != second.String() {
		t.Fatalf("csv round trip mismatch:\nfirst:\n%s\nsecond:\n%s", first.String(), second.String())
	}
}

// TestParseHistogramCSVHeaderless: input without the header line must
// not lose its first data row.
func TestParseHistogramCSVHeaderless(t *testing.T) {
	h, err := ParseHistogramCSV(strings.NewReader("64.0,2,0.5\n128.0,2,0.5\n"), 64*sim.Nanosecond)
	if err != nil {
		t.Fatal(err)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4 (first row dropped?)", h.Count())
	}
}

func TestParseHistogramCSVRejectsGarbage(t *testing.T) {
	if _, err := ParseHistogramCSV(strings.NewReader("bin_lo_ns,count,probability\nx,y\n"), 64*sim.Nanosecond); err == nil {
		t.Fatal("want error for malformed row")
	}
	if _, err := ParseHistogramCSV(strings.NewReader("bin_lo_ns,count,probability\n64.0,notanumber,0.5\n"), 64*sim.Nanosecond); err == nil {
		t.Fatal("want error for non-numeric count")
	}
}

func TestHistogramStd(t *testing.T) {
	h := NewHistogram(sim.Nanosecond)
	for _, v := range []int{2, 4, 4, 4, 5, 5, 7, 9} {
		h.Add(sim.Duration(v) * sim.Nanosecond)
	}
	if s := h.Std(); s != 2*sim.Nanosecond {
		t.Fatalf("std = %v", s)
	}
}

// TestHistogramDenseOutlierFallback pins the dense-window fast path:
// samples inside the window and far outliers (which fall back to the
// sparse map) must produce exactly the same bins, fractions and CSV
// as a map-only histogram would — the dense store is an optimization,
// not a behavior change.
func TestHistogramDenseOutlierFallback(t *testing.T) {
	h := NewHistogram(64 * sim.Nanosecond)
	// Anchor lands around the first sample; these stay dense.
	for i := 0; i < 100; i++ {
		h.Add(sim.Duration(1000+i) * sim.Nanosecond)
	}
	// Far outliers: way outside any 8192-bin window at 64 ns bins.
	h.Add(5 * sim.Second)
	h.Add(-3 * sim.Second)
	if h.bins == nil {
		t.Fatal("outliers did not reach the sparse map")
	}
	if h.Count() != 102 {
		t.Fatalf("count = %d, want 102", h.Count())
	}
	var total uint64
	for _, b := range h.Bins() {
		total += b.Count
	}
	if total != 102 {
		t.Fatalf("bins sum to %d, want 102", total)
	}
	bins := h.Bins()
	for i := 1; i < len(bins); i++ {
		if bins[i-1].Lo >= bins[i].Lo {
			t.Fatalf("bins not ascending at %d: %v >= %v", i, bins[i-1].Lo, bins[i].Lo)
		}
	}
	if got := h.FractionBelow(0); got != 1.0/102 {
		t.Fatalf("FractionBelow(0) = %v, want %v", got, 1.0/102)
	}
	if h.Max() != 5*sim.Second || h.Min() != -3*sim.Second {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
}

// TestHistogramAddZeroAlloc pins the per-packet recording contract:
// once the sample reservoir is full, Add on the dense window performs
// no allocations.
func TestHistogramAddZeroAlloc(t *testing.T) {
	h := NewHistogram(64 * sim.Nanosecond)
	h.maxSamples = 64
	for i := 0; i < 128; i++ {
		h.Add(sim.Duration(i) * sim.Microsecond / 4)
	}
	i := 0
	allocs := testing.AllocsPerRun(1000, func() {
		h.Add(sim.Duration(i%128) * sim.Microsecond / 4)
		i++
	})
	if allocs > 0 {
		t.Fatalf("dense-window Add allocates %.1f objects per call, want 0", allocs)
	}
}
