// Package stats reimplements MoonGen's stats.lua: transmit/receive
// counters that sample rates over regular intervals and report mean ±
// standard deviation, with plain and CSV output formats, plus the
// histogram type used for latency and inter-arrival distributions
// (64 ns bins in the paper's Figure 8).
package stats

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/sim"
)

// OnlineStats accumulates mean and standard deviation incrementally
// (Welford's algorithm).
type OnlineStats struct {
	n    uint64
	mean float64
	m2   float64
}

// Add incorporates one sample.
func (o *OnlineStats) Add(x float64) {
	o.n++
	d := x - o.mean
	o.mean += d / float64(o.n)
	o.m2 += d * (x - o.mean)
}

// Merge folds other into o so that o describes the union of both
// sample sets exactly — the parallel Welford combination (Chan et al.).
// Merging shards of a stream in any order yields the same count, mean
// and variance as accumulating the stream unsharded, up to float
// rounding. other is not modified.
func (o *OnlineStats) Merge(other *OnlineStats) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = *other
		return
	}
	n1, n2 := float64(o.n), float64(other.n)
	d := other.mean - o.mean
	n := n1 + n2
	o.mean += d * n2 / n
	o.m2 += other.m2 + d*d*n1*n2/n
	o.n += other.n
}

// Count returns the number of samples.
func (o *OnlineStats) Count() uint64 { return o.n }

// Mean returns the sample mean.
func (o *OnlineStats) Mean() float64 { return o.mean }

// Variance returns the population variance.
func (o *OnlineStats) Variance() float64 {
	if o.n == 0 {
		return 0
	}
	return o.m2 / float64(o.n)
}

// Std returns the population standard deviation.
func (o *OnlineStats) Std() float64 { return math.Sqrt(o.Variance()) }

// Format selects a counter output format. MoonGen defaults to CSV "for
// easy post-processing"; the example scripts use plain.
type Format int

// Formats.
const (
	FormatPlain Format = iota
	FormatCSV
	FormatNone // collect silently; read via accessors
)

// Counter tracks packet and byte counts and samples throughput over
// fixed windows of simulated time. It is the common core of MoonGen's
// manual TX counters and RX packet counters.
type Counter struct {
	Name   string
	format Format
	out    io.Writer
	window sim.Duration

	start       sim.Time
	windowStart sim.Time
	winPkts     uint64
	winBytes    uint64

	TotalPackets uint64
	TotalBytes   uint64

	pktRate  OnlineStats // Mpps per window
	byteRate OnlineStats // Gbit/s (wire rate incl. framing not added here)

	finalized bool
	lastTime  sim.Time
}

// CounterConfig configures a Counter.
type CounterConfig struct {
	Name   string
	Format Format
	Out    io.Writer
	// Window is the sampling interval (default 1 simulated second —
	// MoonGen prints once a second; simulations usually pass ms).
	Window sim.Duration
	// Start is the counter's epoch.
	Start sim.Time
}

// NewCounter creates a counter.
func NewCounter(cfg CounterConfig) *Counter {
	if cfg.Window <= 0 {
		cfg.Window = sim.Second
	}
	c := &Counter{
		Name:        cfg.Name,
		format:      cfg.Format,
		out:         cfg.Out,
		window:      cfg.Window,
		start:       cfg.Start,
		windowStart: cfg.Start,
	}
	if c.out == nil {
		c.format = FormatNone
	}
	if c.format == FormatCSV && c.out != nil {
		fmt.Fprintf(c.out, "counter,time_s,mpps,gbps\n")
	}
	return c
}

// Update adds n packets of the given total byte size at time now —
// MoonGen's txCtr:updateWithSize(sent, size). Closing windows emits
// one rate sample each.
func (c *Counter) Update(n int, bytes int, now sim.Time) {
	c.lastTime = now
	for now.Sub(c.windowStart) >= c.window {
		c.closeWindow()
	}
	c.winPkts += uint64(n)
	c.winBytes += uint64(bytes)
	c.TotalPackets += uint64(n)
	c.TotalBytes += uint64(bytes)
}

// CountPacket adds a single packet (rx counter idiom).
func (c *Counter) CountPacket(bytes int, now sim.Time) { c.Update(1, bytes, now) }

func (c *Counter) closeWindow() {
	secs := c.window.Seconds()
	mpps := float64(c.winPkts) / secs / 1e6
	gbps := float64(c.winBytes) * 8 / secs / 1e9
	c.pktRate.Add(mpps)
	c.byteRate.Add(gbps)
	c.windowStart = c.windowStart.Add(c.window)
	c.winPkts, c.winBytes = 0, 0
	switch c.format {
	case FormatPlain:
		fmt.Fprintf(c.out, "[%s] %.2f Mpps, %.2f Gbit/s\n", c.Name, mpps, gbps)
	case FormatCSV:
		fmt.Fprintf(c.out, "%s,%.6f,%.4f,%.4f\n", c.Name, c.windowStart.Seconds(), mpps, gbps)
	}
}

// Finalize closes the last window and prints the summary — the
// counters' finalize() in Listing 2/3. Safe to call once.
func (c *Counter) Finalize(now sim.Time) {
	if c.finalized {
		return
	}
	c.finalized = true
	for now.Sub(c.windowStart) >= c.window && c.windowStart.Add(c.window) <= now {
		c.closeWindow()
	}
	switch c.format {
	case FormatPlain:
		fmt.Fprintf(c.out, "[%s] TOTAL: %d packets, %d bytes, %.2f ± %.2f Mpps, %.2f ± %.2f Gbit/s\n",
			c.Name, c.TotalPackets, c.TotalBytes,
			c.pktRate.Mean(), c.pktRate.Std(), c.byteRate.Mean(), c.byteRate.Std())
	case FormatCSV:
		fmt.Fprintf(c.out, "%s,total,%d,%d\n", c.Name, c.TotalPackets, c.TotalBytes)
	}
}

// Merge folds a per-shard counter into c: totals add and the window
// rate samples of both counters combine into one population, so the
// merged MppsStats describe the distribution of per-core window rates
// across all shards. Merge the shards of one run in shard order for a
// deterministic result; the counters should cover the same simulated
// span (one measurement window per core, as in the paper's per-core
// slave counters). other is not modified.
func (c *Counter) Merge(other *Counter) {
	if c.TotalPackets == 0 && c.TotalBytes == 0 && c.pktRate.Count() == 0 {
		// Fresh target: adopt the source's epoch, so AverageMpps on
		// the merged counter spans the measurement rather than
		// starting at time zero.
		c.start = other.start
		c.windowStart = other.windowStart
	}
	c.TotalPackets += other.TotalPackets
	c.TotalBytes += other.TotalBytes
	c.winPkts += other.winPkts
	c.winBytes += other.winBytes
	c.pktRate.Merge(&other.pktRate)
	c.byteRate.Merge(&other.byteRate)
	if other.start < c.start {
		c.start = other.start
	}
	if other.lastTime > c.lastTime {
		c.lastTime = other.lastTime
	}
}

// MppsStats returns the mean and stddev of the per-window packet rate.
func (c *Counter) MppsStats() (mean, std float64) { return c.pktRate.Mean(), c.pktRate.Std() }

// GbpsStats returns the mean and stddev of the per-window byte rate.
func (c *Counter) GbpsStats() (mean, std float64) { return c.byteRate.Mean(), c.byteRate.Std() }

// AverageMpps returns the whole-run average packet rate.
func (c *Counter) AverageMpps() float64 {
	span := c.lastTime.Sub(c.start).Seconds()
	if span <= 0 {
		return 0
	}
	return float64(c.TotalPackets) / span / 1e6
}

// Histogram is a fixed-bin-width histogram over durations, the tool
// behind Figure 8 (inter-arrival times, 64 ns bins) and the latency
// distributions of Figures 10/11. It also tracks exact order statistics
// via a sample buffer for percentile queries.
type Histogram struct {
	BinWidth sim.Duration

	// dense is the fixed-resolution fast path: a window of
	// denseBins contiguous buckets anchored around the first recorded
	// sample. The per-packet recording path is then a bounds check and
	// an array increment — no map hashing and no allocation. Samples
	// outside the window fall back to the sparse map; bins is nil
	// until the first outlier, so well-behaved distributions never
	// allocate it. Bin keys and counts are identical to the map-only
	// implementation, so every CSV and percentile is unchanged.
	dense   []uint64
	denseLo int64

	bins  map[int64]uint64
	count uint64
	sum   float64
	sumsq float64
	min   sim.Duration
	max   sim.Duration

	// samples retains raw values for exact percentiles. Capped to
	// avoid unbounded growth; above the cap, percentiles come from
	// bins (precision = BinWidth, fine for 64 ns bins).
	samples    []sim.Duration
	maxSamples int
	sorted     bool
}

// denseBins is the width of the dense bucket window (64 kB of
// counters): ±2048 bins of slack below the anchor and the rest above.
// With the paper's 64 ns bins that is a ±131 µs / +393 µs window —
// wide enough that latency and inter-arrival distributions stay
// entirely on the fast path, while pathological outliers degrade to
// the map instead of growing the array.
const denseBins = 8192

// NewHistogram creates a histogram with the given bin width (64 ns in
// the paper's measurements).
func NewHistogram(binWidth sim.Duration) *Histogram {
	if binWidth <= 0 {
		binWidth = 64 * sim.Nanosecond
	}
	return &Histogram{
		BinWidth:   binWidth,
		min:        math.MaxInt64,
		max:        math.MinInt64,
		maxSamples: 1 << 20,
	}
}

// binKey returns the bucket index of d (truncating division, exactly
// as the map keys have always been computed).
func (h *Histogram) binKey(d sim.Duration) int64 { return int64(d) / int64(h.BinWidth) }

// anchorDense places the dense window around the first observed key:
// a quarter of the window below (distributions skew upward from their
// first sample), the rest above.
func (h *Histogram) anchorDense(key int64) {
	h.dense = make([]uint64, denseBins)
	h.denseLo = key - denseBins/4
}

// addBin increments one bucket through the dense window or, for
// outliers, the sparse map.
func (h *Histogram) addBin(key int64, n uint64) {
	if h.dense == nil {
		h.anchorDense(key)
	}
	if idx := key - h.denseLo; idx >= 0 && idx < denseBins {
		h.dense[idx] += n
		return
	}
	if h.bins == nil {
		h.bins = make(map[int64]uint64)
	}
	h.bins[key] += n
}

// Add records one duration.
func (h *Histogram) Add(d sim.Duration) {
	h.count++
	f := float64(d)
	h.sum += f
	h.sumsq += f * f
	if d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	h.addBin(h.binKey(d), 1)
	if len(h.samples) < h.maxSamples {
		h.samples = append(h.samples, d)
		h.sorted = false
	}
}

// Merge folds other into h so that h describes the union of both
// sample sets. Bin counts, count, sum, sum of squares and min/max
// combine exactly; raw samples are carried over up to h's sample cap,
// so percentiles stay exact as long as the merged histogram remains
// under the cap (above it they degrade to bin precision, as always).
// Bin widths must match. other is not modified.
func (h *Histogram) Merge(other *Histogram) {
	if other.count == 0 {
		return
	}
	if h.BinWidth != other.BinWidth {
		panic(fmt.Sprintf("stats: merging histograms with bin widths %v and %v", h.BinWidth, other.BinWidth))
	}
	h.count += other.count
	h.sum += other.sum
	h.sumsq += other.sumsq
	if other.min < h.min {
		h.min = other.min
	}
	if other.max > h.max {
		h.max = other.max
	}
	if h.dense == nil && other.dense != nil {
		// Fresh target: adopt the source's dense anchor so shard
		// histograms merged in order stay on the fast path.
		h.dense = make([]uint64, denseBins)
		h.denseLo = other.denseLo
	}
	other.eachBin(func(k int64, v uint64) { h.addBin(k, v) })
	if room := h.maxSamples - len(h.samples); room > 0 {
		take := other.samples
		if len(take) > room {
			take = take[:room]
		}
		h.samples = append(h.samples, take...)
		h.sorted = false
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// FootprintBytes returns the histogram's resident memory: the dense
// bucket window, the retained sample buffer, and an estimate for the
// sparse overflow map (per-entry key+count plus bucket overhead). The
// flow tracker uses it to account lazily created per-flow histograms
// in its table-footprint diagnostics.
func (h *Histogram) FootprintBytes() uint64 {
	return uint64(len(h.dense))*8 + uint64(cap(h.samples))*8 + uint64(len(h.bins))*24
}

// Mean returns the sample mean.
func (h *Histogram) Mean() sim.Duration {
	if h.count == 0 {
		return 0
	}
	return sim.Duration(h.sum / float64(h.count))
}

// Std returns the population standard deviation.
func (h *Histogram) Std() sim.Duration {
	if h.count == 0 {
		return 0
	}
	m := h.sum / float64(h.count)
	v := h.sumsq/float64(h.count) - m*m
	if v < 0 {
		v = 0
	}
	return sim.Duration(math.Sqrt(v))
}

// Min returns the smallest sample.
func (h *Histogram) Min() sim.Duration { return h.min }

// Max returns the largest sample.
func (h *Histogram) Max() sim.Duration { return h.max }

func (h *Histogram) ensureSorted() {
	if !h.sorted {
		sort.Slice(h.samples, func(i, j int) bool { return h.samples[i] < h.samples[j] })
		h.sorted = true
	}
}

// Percentile returns the p-th percentile (0 < p ≤ 100).
func (h *Histogram) Percentile(p float64) sim.Duration {
	if h.count == 0 {
		return 0
	}
	if uint64(len(h.samples)) == h.count {
		h.ensureSorted()
		idx := int(p / 100 * float64(len(h.samples)-1))
		return h.samples[idx]
	}
	// Bin-based fallback.
	target := uint64(p / 100 * float64(h.count))
	var cum uint64
	for _, b := range h.Bins() {
		cum += b.Count
		if cum >= target {
			return b.Lo
		}
	}
	return h.max
}

// Median returns the 50th percentile.
func (h *Histogram) Median() sim.Duration { return h.Percentile(50) }

// Quartiles returns the 25th, 50th and 75th percentiles — the series
// plotted in Figures 10 and 11.
func (h *Histogram) Quartiles() (q1, q2, q3 sim.Duration) {
	return h.Percentile(25), h.Percentile(50), h.Percentile(75)
}

// FractionWithin returns the fraction of samples within ±tol of center,
// the Table 4 bucket metric (±64/128/256/512 ns around the target
// inter-arrival time).
func (h *Histogram) FractionWithin(center, tol sim.Duration) float64 {
	if h.count == 0 {
		return 0
	}
	if uint64(len(h.samples)) == h.count {
		n := 0
		for _, s := range h.samples {
			if s >= center-tol && s <= center+tol {
				n++
			}
		}
		return float64(n) / float64(h.count)
	}
	lo, hi := int64(center-tol)/int64(h.BinWidth), int64(center+tol)/int64(h.BinWidth)
	var cum uint64
	h.eachBin(func(k int64, v uint64) {
		if k >= lo && k <= hi {
			cum += v
		}
	})
	return float64(cum) / float64(h.count)
}

// FractionBelow returns the fraction of samples ≤ limit — the
// micro-burst metric (inter-arrival ≤ back-to-back time).
func (h *Histogram) FractionBelow(limit sim.Duration) float64 {
	if h.count == 0 {
		return 0
	}
	if uint64(len(h.samples)) == h.count {
		n := 0
		for _, s := range h.samples {
			if s <= limit {
				n++
			}
		}
		return float64(n) / float64(h.count)
	}
	key := int64(limit) / int64(h.BinWidth)
	var cum uint64
	h.eachBin(func(k int64, v uint64) {
		if k <= key {
			cum += v
		}
	})
	return float64(cum) / float64(h.count)
}

// Bin is one histogram bucket.
type Bin struct {
	Lo    sim.Duration
	Count uint64
}

// eachBin visits every non-empty bucket (dense window, then sparse
// outliers) in unspecified order. Counts are exact; callers needing
// ascending order use Bins.
func (h *Histogram) eachBin(f func(key int64, count uint64)) {
	for i, v := range h.dense {
		if v != 0 {
			f(h.denseLo+int64(i), v)
		}
	}
	for k, v := range h.bins {
		f(k, v)
	}
}

// Bins returns the non-empty buckets in ascending order.
func (h *Histogram) Bins() []Bin {
	keys := make([]int64, 0, len(h.bins))
	h.eachBin(func(k int64, _ uint64) { keys = append(keys, k) })
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	out := make([]Bin, len(keys))
	for i, k := range keys {
		out[i] = Bin{Lo: sim.Duration(k * int64(h.BinWidth)), Count: h.binCount(k)}
	}
	return out
}

// binCount returns one bucket's count across both stores.
func (h *Histogram) binCount(key int64) uint64 {
	if idx := key - h.denseLo; h.dense != nil && idx >= 0 && idx < denseBins {
		return h.dense[idx]
	}
	return h.bins[key]
}

// WriteCSV dumps "bin_lo_ns,count,probability" rows.
func (h *Histogram) WriteCSV(w io.Writer) {
	fmt.Fprintf(w, "bin_lo_ns,count,probability\n")
	for _, b := range h.Bins() {
		fmt.Fprintf(w, "%.1f,%d,%.6f\n", b.Lo.Nanoseconds(), b.Count, float64(b.Count)/float64(h.count))
	}
}

// ParseHistogramCSV reads the WriteCSV format back into a histogram
// with the given bin width. The result carries bin-resolution data
// only: counts and bin positions are exact (WriteCSV output round-trips
// bit-for-bit), while mean/min/max are reconstructed at bin lower
// edges and percentiles come from bins, not raw samples.
func ParseHistogramCSV(r io.Reader, binWidth sim.Duration) (*Histogram, error) {
	h := NewHistogram(binWidth)
	h.maxSamples = 0 // no raw samples: percentile queries must use bins
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "bin_lo_ns") {
			continue // header (data rows start with a number)
		}
		fields := strings.Split(text, ",")
		if len(fields) != 3 {
			return nil, fmt.Errorf("stats: csv line %d: want 3 fields, got %d", line, len(fields))
		}
		loNS, err := strconv.ParseFloat(fields[0], 64)
		if err != nil {
			return nil, fmt.Errorf("stats: csv line %d: bin_lo_ns: %w", line, err)
		}
		count, err := strconv.ParseUint(fields[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("stats: csv line %d: count: %w", line, err)
		}
		lo := sim.FromNanoseconds(loNS)
		key := int64(lo) / int64(h.BinWidth)
		h.addBin(key, count)
		h.count += count
		h.sum += float64(lo) * float64(count)
		h.sumsq += float64(lo) * float64(lo) * float64(count)
		if lo < h.min {
			h.min = lo
		}
		if lo > h.max {
			h.max = lo
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return h, nil
}
