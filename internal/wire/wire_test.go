package wire

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"repro/internal/sim"
)

func TestByteTime(t *testing.T) {
	if bt := ByteTime(Speed10G); bt != 800*sim.Picosecond {
		t.Fatalf("10G byte time = %v", bt)
	}
	if bt := ByteTime(Speed1G); bt != 8*sim.Nanosecond {
		t.Fatalf("1G byte time = %v", bt)
	}
	if bt := ByteTime(Speed40G); bt != 200*sim.Picosecond {
		t.Fatalf("40G byte time = %v", bt)
	}
}

func TestLineRate(t *testing.T) {
	// The famous numbers: 14.88 Mpps at 10 GbE, 1.488 at 1 GbE.
	if pps := LineRatePPS(Speed10G, 64); math.Abs(pps-14880952.38) > 1 {
		t.Fatalf("10G line rate = %f", pps)
	}
	if ft := FrameTime(Speed10G, 64); ft != sim.FromNanoseconds(67.2) {
		t.Fatalf("64B frame time = %v", ft)
	}
	// 672 ns back-to-back at 1 GbE: the micro-burst marker in Fig 8.
	if ft := FrameTime(Speed1G, 64); ft != 672*sim.Nanosecond {
		t.Fatalf("1G 64B frame time = %v", ft)
	}
}

func TestPathLatencyTable3(t *testing.T) {
	// Fiber, 2 m: 310.7 + 2/(0.72c) = ~320 ns (measured exactly 320).
	lat := PHY10GBaseSR.PathLatency(2).Nanoseconds()
	if math.Abs(lat-320) > 1 {
		t.Fatalf("fiber 2m latency = %f ns", lat)
	}
	// Copper 2 m: 2147.2 + 2/(0.69c) = ~2156.9 (measured 2156.8).
	lat = PHY10GBaseT.PathLatency(2).Nanoseconds()
	if math.Abs(lat-2156.8) > 1 {
		t.Fatalf("copper 2m latency = %f ns", lat)
	}
	// Copper 50 m: ~2388.9 ns; the paper measured 2387.2 and notes the
	// cable is probably slightly shorter than 50 m.
	lat = PHY10GBaseT.PathLatency(50).Nanoseconds()
	if math.Abs(lat-2388.9) > 2 {
		t.Fatalf("copper 50m latency = %f ns", lat)
	}
}

func TestFiberNoJitter(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 1000; i++ {
		if j := PHY10GBaseSR.Jitter(rng); j != 0 {
			t.Fatalf("fiber jitter = %v", j)
		}
	}
}

// TestCopperJitterDistribution reproduces §6.1: >99.5% of 10GBASE-T
// timestamps within ±6.4 ns; min-max range up to 64 ns.
func TestCopperJitterDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const n = 100000
	within := 0
	lo, hi := sim.Duration(math.MaxInt64), sim.Duration(math.MinInt64)
	for i := 0; i < n; i++ {
		j := PHY10GBaseT.Jitter(rng)
		if j >= -sim.FromNanoseconds(6.4) && j <= sim.FromNanoseconds(6.4) {
			within++
		}
		if j < lo {
			lo = j
		}
		if j > hi {
			hi = j
		}
	}
	frac := float64(within) / n
	if frac < 0.995 {
		t.Fatalf("only %f within ±6.4ns", frac)
	}
	if span := hi - lo; span > sim.FromNanoseconds(64.1) {
		t.Fatalf("jitter span = %v > 64ns", span)
	}
	if hi <= sim.FromNanoseconds(6.4) {
		t.Fatal("no large-jitter samples seen")
	}
}

type collectEndpoint struct {
	frames []*Frame
	times  []sim.Time
}

func (c *collectEndpoint) DeliverFrame(f *Frame, at sim.Time) {
	c.frames = append(c.frames, f)
	c.times = append(c.times, at)
}

func TestLinkTransmitDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	ep := &collectEndpoint{}
	l := NewLink(eng, Speed10G, PHY10GBaseSR, 2, ep)
	f := &Frame{Data: make([]byte, 60), WireSize: 64, CRCOK: true}
	var freeAt sim.Time
	eng.Schedule(0, func() { freeAt = l.Transmit(f) })
	eng.RunAll()
	if len(ep.frames) != 1 {
		t.Fatalf("delivered %d frames", len(ep.frames))
	}
	if freeAt != sim.Time(sim.FromNanoseconds(67.2)) {
		t.Fatalf("wire free at %v", freeAt)
	}
	// Delivery at path latency ~320 ns.
	if math.Abs(ep.times[0].Nanoseconds()-320) > 1 {
		t.Fatalf("delivered at %v", ep.times[0])
	}
}

func TestLinkBusyPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, Speed10G, PHY10GBaseSR, 2, &collectEndpoint{})
	eng.Schedule(0, func() {
		l.Transmit(&Frame{WireSize: 64, CRCOK: true})
		defer func() {
			if recover() == nil {
				t.Error("transmit on busy wire did not panic")
			}
		}()
		l.Transmit(&Frame{WireSize: 64, CRCOK: true})
	})
	eng.RunAll()
}

// TestWireOrderAndSpacingProperty: for any frame schedule, receive
// order equals send order and arrival spacing is at least the
// serialization time (on a jitter-free PHY).
func TestWireOrderAndSpacingProperty(t *testing.T) {
	f := func(sizes []uint8, gaps []uint16) bool {
		if len(sizes) == 0 {
			return true
		}
		if len(gaps) < len(sizes) {
			gaps = append(gaps, make([]uint16, len(sizes)-len(gaps))...)
		}
		eng := sim.NewEngine(3)
		ep := &collectEndpoint{}
		l := NewLink(eng, Speed10G, PHY10GBaseSR, 10, ep)
		var sent []int
		eng.Spawn("tx", func(p *sim.Proc) {
			for i, sz := range sizes {
				size := 64 + int(sz)%1455
				sent = append(sent, size)
				p.SleepUntil(l.NextTxSlot())
				p.SleepUntil(l.NextTxSlot().Add(sim.Duration(gaps[i]) * sim.Picosecond))
				l.Transmit(&Frame{WireSize: size, CRCOK: true})
			}
		})
		eng.RunAll()
		if len(ep.frames) != len(sent) {
			return false
		}
		for i := 1; i < len(ep.frames); i++ {
			if ep.frames[i].SeqNo <= ep.frames[i-1].SeqNo {
				return false // reordered
			}
			minGap := sim.Duration(sent[i-1]+20) * ByteTime(Speed10G)
			if ep.times[i].Sub(ep.times[i-1]) < minGap {
				return false // arrived faster than serialization allows
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUtilization(t *testing.T) {
	eng := sim.NewEngine(1)
	l := NewLink(eng, Speed10G, PHY10GBaseSR, 2, &collectEndpoint{})
	eng.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 100; i++ {
			p.SleepUntil(l.NextTxSlot())
			l.Transmit(&Frame{WireSize: 64, CRCOK: true})
		}
	})
	eng.RunAll()
	// Back-to-back transmission: utilization ~1 up to the trailing
	// propagation time.
	if u := l.Utilization(); u < 0.9 || u > 1.01 {
		t.Fatalf("utilization = %f", u)
	}
}

// TestBimodalQuantization demonstrates the Table 3 explanation: a true
// latency between two 12.8 ns grid points yields exactly two observed
// values when timestamps snap to the grid.
func TestBimodalQuantization(t *testing.T) {
	// True latency 350.1 ns (8.5 m fiber); grid 12.8 ns. With TX times
	// uniform over the grid phase, diff quantizes to 345.6 or 358.4.
	grid := 12.8
	trueLat := PHY10GBaseSR.PathLatency(8.5).Nanoseconds()
	vals := map[float64]int{}
	for i := 0; i < 10000; i++ {
		txPhase := float64(i) * 0.777 // irrational-ish coverage
		tx := math.Floor(txPhase/grid) * grid
		rx := math.Floor((txPhase+trueLat)/grid) * grid
		d := math.Round((rx-tx)*10) / 10
		vals[d]++
	}
	if len(vals) != 2 {
		t.Fatalf("observed %d distinct values: %v", len(vals), vals)
	}
	keys := make([]float64, 0, 2)
	for k := range vals {
		keys = append(keys, k)
	}
	sort.Float64s(keys)
	if keys[0] != 345.6 || keys[1] != 358.4 {
		t.Fatalf("bimodal values = %v, want 345.6/358.4", keys)
	}
}

// slackEndpoint records each delivery with both the frame's rxTime
// argument and the engine instant the callback executed at.
type slackEndpoint struct {
	eng     *sim.Engine
	rxTimes []sim.Time
	evTimes []sim.Time
	seqs    []uint64
}

func (s *slackEndpoint) DeliverFrame(f *Frame, at sim.Time) {
	s.rxTimes = append(s.rxTimes, at)
	s.evTimes = append(s.evTimes, s.eng.Now())
	s.seqs = append(s.seqs, f.SeqNo)
}

// TestDeliverySlackInvariance pins the RX delivery-train contract: with
// SetDeliverySlack, every frame is delivered with exactly the same
// rxTime argument, in the same order, as with per-frame delivery — only
// the engine instant of the callback is deferred, by at most the slack.
func TestDeliverySlackInvariance(t *testing.T) {
	const frames = 500
	slack := 32 * FrameTime(Speed10G, 64)
	run := func(d sim.Duration) *slackEndpoint {
		eng := sim.NewEngine(7)
		ep := &slackEndpoint{eng: eng}
		l := NewLink(eng, Speed10G, PHY10GBaseT, 2, ep) // copper: jitter path
		l.SetDeliverySlack(d)
		eng.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < frames; i++ {
				p.SleepUntil(l.NextTxSlot())
				if i%7 == 0 { // occasional idle gap: FIFO drains between trains
					p.Sleep(FrameTime(Speed10G, 64) * 40)
				}
				l.Transmit(&Frame{Data: make([]byte, 60), WireSize: 64, CRCOK: true})
			}
		})
		eng.RunAll()
		return ep
	}
	ref, got := run(0), run(slack)
	if len(got.rxTimes) != frames || len(ref.rxTimes) != frames {
		t.Fatalf("delivered %d/%d frames, want %d", len(got.rxTimes), len(ref.rxTimes), frames)
	}
	coalesced := false
	for i := range ref.rxTimes {
		if got.rxTimes[i] != ref.rxTimes[i] || got.seqs[i] != ref.seqs[i] {
			t.Fatalf("frame %d: rxTime %v seq %d, want %v seq %d",
				i, got.rxTimes[i], got.seqs[i], ref.rxTimes[i], ref.seqs[i])
		}
		if got.evTimes[i] < got.rxTimes[i] || got.evTimes[i] > got.rxTimes[i].Add(slack) {
			t.Fatalf("frame %d delivered at engine instant %v, rxTime %v, slack %v",
				i, got.evTimes[i], got.rxTimes[i], slack)
		}
		if i > 0 && got.evTimes[i] == got.evTimes[i-1] {
			coalesced = true
		}
	}
	for i := range ref.rxTimes {
		if ref.evTimes[i] != ref.rxTimes[i] {
			t.Fatalf("per-frame delivery %d at %v, want exactly rxTime %v", i, ref.evTimes[i], ref.rxTimes[i])
		}
	}
	if !coalesced {
		t.Fatal("slack run never coalesced two deliveries into one event")
	}
}

// TestTransmitJitterMatchesProfile pins the transmit path's inlined
// jitter draw against PHYProfile.Jitter: same seed, same sequence of
// receive instants.
func TestTransmitJitterMatchesProfile(t *testing.T) {
	eng := sim.NewEngine(11)
	ep := &collectEndpoint{}
	l := NewLink(eng, Speed10G, PHY10GBaseT, 2, ep)
	// The link's jitter stream is the engine's first derived stream.
	ref := rand.New(rand.NewSource(sim.SplitMix64(11, 1)))
	var want []sim.Time
	eng.Spawn("tx", func(p *sim.Proc) {
		last := sim.Time(0)
		for i := 0; i < 5000; i++ {
			p.SleepUntil(l.NextTxSlot())
			start := l.NextTxSlot()
			rx := start.Add(l.pathLat).Add(PHY10GBaseT.Jitter(ref))
			if rx < last {
				rx = last
			}
			last = rx
			want = append(want, rx)
			l.Transmit(&Frame{WireSize: 64, CRCOK: true})
		}
	})
	eng.RunAll()
	if len(ep.times) != len(want) {
		t.Fatalf("delivered %d, want %d", len(ep.times), len(want))
	}
	for i := range want {
		if ep.times[i] != want[i] {
			t.Fatalf("frame %d rxTime %v, want %v (inlined draw diverged from PHYProfile.Jitter)", i, ep.times[i], want[i])
		}
	}
}
