package wire

import (
	"testing"

	"repro/internal/sim"
)

// downEndpoint counts deliveries and remembers the last receive
// instant.
type downEndpoint struct {
	delivered uint64
	lastRx    sim.Time
}

func (d *downEndpoint) DeliverFrame(f *Frame, at sim.Time) {
	d.delivered++
	d.lastRx = at
}

func frame64() *Frame {
	return &Frame{Data: make([]byte, 60), WireSize: 64, CRCOK: true}
}

// TestLinkDownDropsInFlightOnce: taking the link down drains the
// in-flight FIFO — each pending frame counted exactly once — and the
// stale delivery event finds the FIFO empty and disarms without side
// effects.
func TestLinkDownDropsInFlightOnce(t *testing.T) {
	eng := sim.NewEngine(1)
	ep := &downEndpoint{}
	l := NewLink(eng, Speed10G, PHY10GBaseSR, 2, ep) // fiber: ~320 ns path, no jitter

	eng.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			p.SleepUntil(l.NextTxSlot())
			l.Transmit(frame64())
		}
	})
	// All three frames serialize within ~202 ns; their receive instants
	// sit past 320 ns. Kill the link at 250 ns: every frame is on the
	// wire and none has arrived.
	eng.Schedule(sim.Time(250*sim.Nanosecond), func() {
		l.SetDown()
		l.SetDown() // idempotent: a second call must not recount
	})
	eng.RunAll()

	if ep.delivered != 0 {
		t.Fatalf("delivered %d frames across a dead wire", ep.delivered)
	}
	if l.DroppedFrames != 3 {
		t.Fatalf("dropped %d, want all 3 in-flight frames exactly once", l.DroppedFrames)
	}
	if l.TxFrames != ep.delivered+l.DroppedFrames {
		t.Fatalf("tx %d != delivered %d + dropped %d", l.TxFrames, ep.delivered, l.DroppedFrames)
	}

	// Recovery: SetUp restores normal delivery and the counters keep
	// reconciling.
	l.SetUp()
	eng.Spawn("tx2", func(p *sim.Proc) {
		p.SleepUntil(l.NextTxSlot())
		l.Transmit(frame64())
	})
	eng.RunAll()
	if ep.delivered != 1 {
		t.Fatalf("delivered %d after SetUp, want 1", ep.delivered)
	}
	if l.TxFrames != ep.delivered+l.DroppedFrames {
		t.Fatalf("post-recovery: tx %d != delivered %d + dropped %d", l.TxFrames, ep.delivered, l.DroppedFrames)
	}
}

// TestLinkDownKeepsSerializationGrid: the TX grid (busyUntil) must
// advance identically whether the wire is alive or dead — the MAC
// scheduler's timing may not depend on link state, which is what makes
// link-flap runs invariant in batch and train size.
func TestLinkDownKeepsSerializationGrid(t *testing.T) {
	run := func(flap bool) ([]sim.Time, *Link, *downEndpoint) {
		eng := sim.NewEngine(3)
		ep := &downEndpoint{}
		l := NewLink(eng, Speed10G, PHY10GBaseT, 2, ep) // copper: jitter path
		var slots []sim.Time
		if flap {
			eng.Schedule(sim.Time(20*sim.Microsecond), l.SetDown)
			eng.Schedule(sim.Time(50*sim.Microsecond), l.SetUp)
		}
		eng.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < 200; i++ {
				p.SleepUntil(l.NextTxSlot())
				if i%5 == 0 { // idle gaps: grid leaves and rejoins the busy edge
					p.Sleep(400 * sim.Nanosecond)
				}
				slots = append(slots, l.NextTxSlot())
				l.Transmit(frame64())
			}
		})
		eng.RunAll()
		return slots, l, ep
	}
	ref, refLink, refEp := run(false)
	got, gotLink, gotEp := run(true)
	if len(ref) != len(got) {
		t.Fatalf("slot counts differ: %d vs %d", len(ref), len(got))
	}
	for i := range ref {
		if ref[i] != got[i] {
			t.Fatalf("slot %d: %v with flap vs %v without — the grid noticed the link state", i, got[i], ref[i])
		}
	}
	if refEp.delivered != refLink.TxFrames || refLink.DroppedFrames != 0 {
		t.Fatalf("reference run lost frames: tx %d delivered %d dropped %d",
			refLink.TxFrames, refEp.delivered, refLink.DroppedFrames)
	}
	if gotLink.DroppedFrames == 0 {
		t.Fatal("flap run dropped nothing")
	}
	if gotLink.TxFrames != gotEp.delivered+gotLink.DroppedFrames {
		t.Fatalf("flap run: tx %d != delivered %d + dropped %d",
			gotLink.TxFrames, gotEp.delivered, gotLink.DroppedFrames)
	}
}
