// Package wire models Ethernet links: line-rate serialization with
// preamble/IFG accounting, cable propagation delay, PHY modulation
// constants, and the timestamp-relevant quirks of fiber (10GBASE-SR)
// versus copper (10GBASE-T) PHYs from the paper's Table 3.
package wire

import (
	"fmt"
	"math/rand"

	"repro/internal/proto"
	"repro/internal/ring"
	"repro/internal/sim"
)

// Speed is a link speed in bits per second.
type Speed float64

// Link speeds used in the paper.
const (
	Speed1G  Speed = 1e9
	Speed10G Speed = 10e9
	Speed40G Speed = 40e9
)

// ByteTime returns the serialization time of one byte at the given
// speed: 8 ns at 1 GbE, 0.8 ns at 10 GbE, 0.2 ns at 40 GbE. These are
// exact in picoseconds.
func ByteTime(s Speed) sim.Duration {
	return sim.Duration(float64(8*sim.Second) / float64(s))
}

// FrameTime returns the wire occupancy of a frame of the given size
// (size includes the FCS, per the paper's convention: 64 B minimum),
// including preamble, SFD and inter-frame gap.
func FrameTime(s Speed, frameSize int) sim.Duration {
	return sim.Duration(frameSize+proto.WireOverhead) * ByteTime(s)
}

// LineRatePPS returns the maximum packet rate for the frame size
// (with FCS): 14.88 Mpps for 64 B at 10 GbE.
func LineRatePPS(s Speed, frameSize int) float64 {
	return float64(s) / 8 / float64(frameSize+proto.WireOverhead)
}

// SpeedOfLight is the vacuum speed of light in meters per nanosecond.
const SpeedOfLight = 0.299792458

// PHYProfile captures a PHY's latency behaviour as measured in Table 3.
type PHYProfile struct {
	Name string

	// ModulationNS is the constant (de)modulation time k of the full
	// path (both PHYs of a link), in nanoseconds: 310.7 for the
	// 82599's 10GBASE-SR fiber path, 2147.2 for the X540's 10GBASE-T
	// path — higher "due to the more complex line code required for
	// 10GBASE-T".
	ModulationNS float64

	// VP is the cable propagation speed as a fraction of c: 0.72 for
	// the OM3 fiber, 0.69 for Cat 5e copper.
	VP float64

	// RxJitter models the 10GBASE-T block code (§6.1): the PHY's
	// 3200-bit layer-1 frames introduce receive-timestamp variance.
	// More than 99.5% of measurements land within ±SmallJitterNS of
	// the median, the min-max range is RangeNS. Zero disables jitter
	// (fiber shows none).
	SmallJitterNS  float64
	RangeNS        float64
	LargeJitterPct float64 // fraction of samples drawing the large jitter
}

// Predefined PHY profiles from the paper's testbed.
var (
	// PHY10GBaseSR is the fiber path: 82599 + 10GBASE-SR SFP+ modules
	// and OM3 multimode fiber. No observable timestamp jitter.
	PHY10GBaseSR = PHYProfile{
		Name:         "10GBASE-SR",
		ModulationNS: 310.7,
		VP:           0.72,
	}
	// PHY10GBaseT is the copper path: X540 with Cat 5e. The block
	// code adds jitter: >99.5% within ±6.4 ns, 64 ns min-max range.
	PHY10GBaseT = PHYProfile{
		Name:           "10GBASE-T",
		ModulationNS:   2147.2,
		VP:             0.69,
		SmallJitterNS:  6.4,
		RangeNS:        64,
		LargeJitterPct: 0.004,
	}
	// PHY1GBaseT is the 82580 GbE copper path used for inter-arrival
	// measurements.
	PHY1GBaseT = PHYProfile{
		Name:         "1000BASE-T",
		ModulationNS: 900,
		VP:           0.69,
	}
)

// PropagationDelay returns l/vp for a cable of the given length.
func (p PHYProfile) PropagationDelay(lengthM float64) sim.Duration {
	return sim.FromNanoseconds(lengthM / (p.VP * SpeedOfLight))
}

// PathLatency returns the full fixed path latency k + l/vp.
func (p PHYProfile) PathLatency(lengthM float64) sim.Duration {
	return sim.FromNanoseconds(p.ModulationNS) + p.PropagationDelay(lengthM)
}

// Jitter draws one receive-timestamp jitter sample.
func (p PHYProfile) Jitter(rng *rand.Rand) sim.Duration {
	if p.SmallJitterNS == 0 {
		return 0
	}
	if p.LargeJitterPct > 0 && rng.Float64() < p.LargeJitterPct {
		half := p.RangeNS / 2
		return sim.FromNanoseconds(rng.Float64()*p.RangeNS - half)
	}
	return sim.FromNanoseconds(rng.Float64()*2*p.SmallJitterNS - p.SmallJitterNS)
}

// Frame is a frame in flight on a link. Data excludes the FCS; CRCOK
// records whether the FCS was valid when the MAC emitted it (the §8
// rate-control filler frames are emitted with CRCOK=false). WireSize is
// the frame size including FCS — possibly below the legal 64 B minimum
// for short filler frames.
//
// Frames are recycled by the link after delivery: Data is valid only
// for the duration of the DeliverFrame call unless the consumer calls
// Retain, in which case the frame escapes to the consumer and the link
// allocates a fresh one.
type Frame struct {
	Data     []byte
	WireSize int
	CRCOK    bool

	// SeqNo is the link-level emission sequence number, used by tests
	// to check that delivery order matches transmission order.
	SeqNo uint64

	retained bool
}

// Retain marks the frame as escaped: the link will not recycle it after
// DeliverFrame returns, so the consumer may keep Data indefinitely (the
// DuT model queues frames in its driver backlog this way).
func (f *Frame) Retain() { f.retained = true }

// Endpoint consumes frames delivered by a link.
type Endpoint interface {
	// DeliverFrame is called when the first bit's receive timestamp
	// instant is reached (arrival + demodulation); the frame is fully
	// received serTime later. rxTime is the PHY-level timestamp
	// instant including jitter. The frame's Data is only valid during
	// the call unless Frame.Retain is invoked.
	DeliverFrame(f *Frame, rxTime sim.Time)
}

// StatsFlusher is optionally implemented by endpoints that stage
// per-frame counter updates. The link calls FlushStats once at the end
// of every delivery event, after the last DeliverFrame of the train —
// the receive-side mirror of a MAC scheduler publishing its transmit
// counters once per committed train.
type StatsFlusher interface {
	FlushStats()
}

// delivery is one frame waiting in the link's in-flight FIFO.
type delivery struct {
	f  *Frame
	at sim.Time
}

// Link is one direction of a full-duplex cable between two ports.
// Create two (one per direction) for a full-duplex connection.
type Link struct {
	eng     *sim.Engine
	speed   Speed
	phy     PHYProfile
	lengthM float64
	peer    Endpoint

	// byteTime and pathLat cache ByteTime(speed) and
	// phy.PathLatency(lengthM): both involve float division/rounding
	// and the transmit path needs them per frame. The cached values are
	// the exact same picosecond quantities the formulas produce, so
	// timing is bit-identical to recomputing. The jitter parameters are
	// hoisted the same way: PHYProfile.Jitter copies the whole profile
	// struct per call, and the transmit path draws once per frame.
	byteTime  sim.Duration
	pathLat   sim.Duration
	hasJitter bool
	smallNS   float64 // phy.SmallJitterNS
	rangeNS   float64 // phy.RangeNS
	largePct  float64 // phy.LargeJitterPct

	busyUntil sim.Time // wire occupied until this instant (TX side)
	seq       uint64

	// jitterRNG is the link's private deterministic stream for PHY
	// receive-timestamp jitter. Frame i's jitter depends only on i —
	// not on how the MAC grouped transmissions into events — which is
	// what makes batched and per-packet emission bit-identical.
	jitterRNG *rand.Rand

	// pending is the in-flight FIFO (a serial link preserves order).
	// At most one delivery event is outstanding (deliverArmed), for the
	// head frame; deliverFn is the prebound callback so the steady state
	// schedules deliveries without any closure allocation.
	pending      ring.FIFO[delivery]
	deliverFn    func()
	deliverArmed bool
	lastRx       sim.Time
	slack        sim.Duration // delivery-train deferral (see SetDeliverySlack)

	// down marks the link administratively down (fault injection): the
	// TX side keeps its serialization grid, but every frame is dropped
	// at the wire instead of delivered. See SetDown/SetUp.
	down bool

	// freeFrames recycles delivered frames (bounded; see release).
	freeFrames []*Frame

	// peerFlush, when the endpoint implements StatsFlusher, is called
	// once at the end of every delivery event — after the last
	// DeliverFrame of the train — so the endpoint can publish staged
	// per-frame counter updates at train granularity.
	peerFlush func()

	// TxFrames / TxBytes count what was put on the wire.
	TxFrames uint64
	TxBytes  uint64

	// DroppedFrames / DroppedBytes count frames lost to a down link:
	// in-flight frames drained when the link went down plus frames
	// transmitted into the dead wire. The reconciliation invariant is
	// TxFrames == delivered + DroppedFrames.
	DroppedFrames uint64
	DroppedBytes  uint64
}

// NewLink creates a unidirectional link.
func NewLink(eng *sim.Engine, speed Speed, phy PHYProfile, lengthM float64, peer Endpoint) *Link {
	if peer == nil {
		panic("wire: nil peer")
	}
	l := &Link{
		eng: eng, speed: speed, phy: phy, lengthM: lengthM, peer: peer,
		byteTime:  ByteTime(speed),
		pathLat:   phy.PathLatency(lengthM),
		hasJitter: phy.SmallJitterNS != 0,
		smallNS:   phy.SmallJitterNS,
		rangeNS:   phy.RangeNS,
		largePct:  phy.LargeJitterPct,
		jitterRNG: eng.NewRand(),
	}
	l.deliverFn = l.deliver
	if sf, ok := peer.(StatsFlusher); ok {
		l.peerFlush = sf.FlushStats
	}
	return l
}

// Speed returns the link speed.
func (l *Link) Speed() Speed { return l.speed }

// PHY returns the PHY profile.
func (l *Link) PHY() PHYProfile { return l.phy }

// ByteTime returns the per-byte serialization time of this link.
func (l *Link) ByteTime() sim.Duration { return l.byteTime }

// NextTxSlot returns the earliest time a new frame may start
// transmitting (the wire enforces serialization spacing).
func (l *Link) NextTxSlot() sim.Time {
	if l.busyUntil > l.eng.Now() {
		return l.busyUntil
	}
	return l.eng.Now()
}

// Transmit puts a frame on the wire at the current time, which must be
// ≥ NextTxSlot (the MAC model is responsible for waiting). It returns
// the time the wire becomes free again. The receive side gets a
// DeliverFrame callback at start-of-frame + path latency (+ jitter).
func (l *Link) Transmit(f *Frame) sim.Time {
	return l.TransmitAt(f, l.eng.Now())
}

// TransmitAt puts a frame on the wire starting at the given instant,
// which may be in the future: the MAC scheduler commits a whole burst
// of departures in one event, each frame stamped on the exact
// per-frame timing grid. start must be ≥ now and ≥ NextTxSlot.
func (l *Link) TransmitAt(f *Frame, start sim.Time) sim.Time {
	if start < l.eng.Now() {
		panic(fmt.Sprintf("wire: transmit at past instant %v (now %v)", start, l.eng.Now()))
	}
	if start < l.busyUntil {
		panic(fmt.Sprintf("wire: transmit at %v while busy until %v", start, l.busyUntil))
	}
	occupancy := sim.Duration(f.WireSize+proto.WireOverhead) * l.byteTime
	l.busyUntil = start.Add(occupancy)
	l.seq++
	f.SeqNo = l.seq
	l.TxFrames++
	l.TxBytes += uint64(f.WireSize)

	if l.down {
		// The MAC keeps its serialization grid (busyUntil advanced as
		// usual) but the wire is dead: the frame is dropped here, counted
		// exactly once, and never reaches the peer.
		l.drop(f)
		return l.busyUntil
	}

	rxTime := start.Add(l.pathLat)
	if l.hasJitter {
		// Inlined PHYProfile.Jitter over the hoisted parameters: same
		// RNG draws, same arithmetic, no per-frame profile struct copy.
		var jit sim.Duration
		if l.largePct > 0 && l.jitterRNG.Float64() < l.largePct {
			jit = sim.FromNanoseconds(l.jitterRNG.Float64()*l.rangeNS - l.rangeNS/2)
		} else {
			jit = sim.FromNanoseconds(l.jitterRNG.Float64()*2*l.smallNS - l.smallNS)
		}
		rxTime = rxTime.Add(jit)
	}
	if rxTime < l.lastRx {
		// A serial link cannot reorder: clamp pathological jitter draws
		// (possible only for runt frames shorter than the jitter range).
		rxTime = l.lastRx
	}
	l.lastRx = rxTime
	l.push(f, rxTime)
	return l.busyUntil
}

// AcquireFrame returns a recycled (or fresh) frame for transmission.
// The MAC fills Data/WireSize/CRCOK and hands it to TransmitAt; the
// link recycles it after delivery unless the consumer Retains it.
func (l *Link) AcquireFrame() *Frame {
	n := len(l.freeFrames)
	if n == 0 {
		return &Frame{}
	}
	f := l.freeFrames[n-1]
	l.freeFrames[n-1] = nil
	l.freeFrames = l.freeFrames[:n-1]
	return f
}

// SetDeliverySlack enables the RX delivery train — the receive-side
// mirror of the MAC scheduler's transmit trains. Instead of one event
// per frame at its exact receive instant, the link arms the delivery
// event up to slack past the head frame's rxTime; every frame due by
// then (the frames that accumulated one serialization time apart) is
// delivered in that single event. Each DeliverFrame call still carries
// the frame's exact rxTime — only the engine instant at which the
// callback executes is deferred, by at most slack. Zero restores
// per-frame delivery.
//
// Opt-in contract: only enable this on links whose endpoint consumes
// every frame as a pure function of the frame bytes and the rxTime
// argument — the counting deliver-hook sinks of the scaling testbeds.
// Endpoints that admit frames into receive rings, latch PTP
// timestamps, or forward frames onward observe the delivery instant
// itself as simulation state and must keep per-frame delivery.
func (l *Link) SetDeliverySlack(d sim.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("wire: negative delivery slack %v", d))
	}
	l.slack = d
}

// push appends to the in-flight FIFO and arms the head delivery event
// when none is outstanding. rxTimes are monotonic (see TransmitAt), so
// a single outstanding event per link suffices.
func (l *Link) push(f *Frame, at sim.Time) {
	if !l.deliverArmed {
		l.deliverArmed = true
		l.eng.Schedule(at.Add(l.slack), l.deliverFn)
	}
	l.pending.Push(delivery{f: f, at: at})
}

// deliver fires at the head frame's receive instant (plus the delivery
// slack, if set): it delivers every due frame in FIFO order, recycles
// non-retained frames, and re-arms itself for the next pending frame.
// A StatsFlusher endpoint gets one FlushStats call after the train.
// After a link-down drained the FIFO the stale event finds it empty
// and disarms harmlessly.
func (l *Link) deliver() {
	l.deliverArmed = false
	now := l.eng.Now()
	delivered := false
	for {
		d, ok := l.pending.Peek()
		if !ok {
			break
		}
		if d.at > now {
			l.deliverArmed = true
			l.eng.Schedule(d.at.Add(l.slack), l.deliverFn)
			break
		}
		l.pending.Pop()
		l.peer.DeliverFrame(d.f, d.at)
		delivered = true
		if !d.f.retained && len(l.freeFrames) < 1024 {
			d.f.Data = d.f.Data[:0]
			l.freeFrames = append(l.freeFrames, d.f)
		}
	}
	if delivered && l.peerFlush != nil {
		l.peerFlush()
	}
}

// drop counts a frame lost at the fault boundary and recycles it.
func (l *Link) drop(f *Frame) {
	l.DroppedFrames++
	l.DroppedBytes += uint64(f.WireSize)
	if !f.retained && len(l.freeFrames) < 1024 {
		f.Data = f.Data[:0]
		l.freeFrames = append(l.freeFrames, f)
	}
}

// SetDown takes the link down (fault injection). Frames in flight are
// dropped immediately — each counted exactly once in DroppedFrames —
// and every subsequent TransmitAt drops at the wire until SetUp. The
// TX serialization grid (NextTxSlot/busyUntil) is unaffected, so the
// MAC scheduler's timing is identical whether the wire is alive or
// dead — which is what keeps link-flap runs batch/train invariant.
// Idempotent.
func (l *Link) SetDown() {
	if l.down {
		return
	}
	l.down = true
	for {
		d, ok := l.pending.Pop()
		if !ok {
			break
		}
		l.drop(d.f)
	}
}

// SetUp restores the link. Frames transmitted from now on are
// delivered normally. Idempotent.
func (l *Link) SetUp() { l.down = false }

// IsDown reports whether the link is administratively down.
func (l *Link) IsDown() bool { return l.down }

// Utilization returns the fraction of wire time used so far.
func (l *Link) Utilization() float64 {
	if l.eng.Now() == 0 {
		return 0
	}
	used := sim.Duration(l.TxBytes+uint64(l.TxFrames)*proto.WireOverhead) * l.ByteTime()
	return float64(used) / float64(l.eng.Now())
}
