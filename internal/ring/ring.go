// Package ring provides bounded lock-free FIFO queues in the style of
// DPDK's rte_ring.
//
// Two variants are provided: SPSC (single producer, single consumer),
// which is the common case for NIC descriptor queues — MoonGen assigns
// each hardware queue to exactly one task — and MPMC (multi producer,
// multi consumer) for inter-task pipes. Both are fixed-capacity
// power-of-two rings with bulk enqueue/dequeue operations, because batch
// processing is the fundamental technique for high packet rates (paper
// §4.2: "Batch processing is an important technique for high-speed
// packet processing").
//
// All operations are non-blocking: an enqueue into a full ring and a
// dequeue from an empty ring return short counts rather than waiting,
// mirroring DPDK's rte_ring_enqueue_burst semantics that make MoonGen's
// queue:send/queue:recv loops work.
package ring

import (
	"fmt"
	"sync/atomic"
)

// ceilPow2 rounds n up to the next power of two (minimum 1).
func ceilPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// SPSC is a single-producer single-consumer bounded queue. Exactly one
// goroutine may call enqueue methods and exactly one may call dequeue
// methods; the two may be different goroutines without further locking.
type SPSC[T any] struct {
	buf  []T
	mask uint64
	// head is the consumer position, tail the producer position.
	// Padding keeps the two hot cachelines apart.
	head atomic.Uint64
	_    [7]uint64
	tail atomic.Uint64
	_    [7]uint64
}

// NewSPSC returns an SPSC ring with capacity rounded up to a power of
// two. Capacity must be positive.
func NewSPSC[T any](capacity int) *SPSC[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("ring: invalid capacity %d", capacity))
	}
	n := ceilPow2(capacity)
	return &SPSC[T]{buf: make([]T, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity.
func (r *SPSC[T]) Cap() int { return len(r.buf) }

// Len returns the number of queued items. It is a snapshot: with
// concurrent producer/consumer it may be stale by the time it returns.
func (r *SPSC[T]) Len() int {
	return int(r.tail.Load() - r.head.Load())
}

// Free returns the remaining capacity (snapshot).
func (r *SPSC[T]) Free() int { return r.Cap() - r.Len() }

// EnqueueBurst adds up to len(items) items under one producer-index
// publication and returns how many were added (possibly zero if the
// ring is full). Items are added in order; on a short count, the prefix
// items[:n] was added. This is rte_ring_enqueue_burst: the burst is the
// unit of work, the short count is the backpressure signal.
func (r *SPSC[T]) EnqueueBurst(items []T) int {
	tail := r.tail.Load()
	head := r.head.Load()
	free := uint64(len(r.buf)) - (tail - head)
	n := uint64(len(items))
	if n > free {
		n = free
	}
	if n == 0 {
		return 0
	}
	for i := uint64(0); i < n; i++ {
		r.buf[(tail+i)&r.mask] = items[i]
	}
	r.tail.Store(tail + n) // release: publishes the writes above
	return int(n)
}

// Enqueue is EnqueueBurst under its legacy name.
func (r *SPSC[T]) Enqueue(items []T) int { return r.EnqueueBurst(items) }

// EnqueueOne adds a single item, reporting whether there was room. It
// is the direct single-item path (no burst slice), used by per-packet
// senders.
func (r *SPSC[T]) EnqueueOne(item T) bool {
	tail := r.tail.Load()
	if uint64(len(r.buf))-(tail-r.head.Load()) == 0 {
		return false
	}
	r.buf[tail&r.mask] = item
	r.tail.Store(tail + 1) // release: publishes the write above
	return true
}

// DequeueBurst removes up to len(out) items into out under one
// consumer-index publication and returns the count (possibly zero if
// the ring is empty) — rte_ring_dequeue_burst.
func (r *SPSC[T]) DequeueBurst(out []T) int {
	head := r.head.Load()
	tail := r.tail.Load()
	avail := tail - head
	n := uint64(len(out))
	if n > avail {
		n = avail
	}
	if n == 0 {
		return 0
	}
	var zero T
	for i := uint64(0); i < n; i++ {
		idx := (head + i) & r.mask
		out[i] = r.buf[idx]
		r.buf[idx] = zero // drop reference for GC
	}
	r.head.Store(head + n)
	return int(n)
}

// Dequeue is DequeueBurst under its legacy name.
func (r *SPSC[T]) Dequeue(out []T) int { return r.DequeueBurst(out) }

// DequeueOne removes a single item, reporting whether one was
// available. It is the direct single-item path (no burst slice): the
// MAC scheduler commits one frame at a time off the descriptor ring.
func (r *SPSC[T]) DequeueOne() (T, bool) {
	head := r.head.Load()
	var zero T
	if r.tail.Load() == head {
		return zero, false
	}
	idx := head & r.mask
	v := r.buf[idx]
	r.buf[idx] = zero // drop reference for GC
	r.head.Store(head + 1)
	return v, true
}

// Peek returns the item at the head without removing it.
func (r *SPSC[T]) Peek() (T, bool) {
	head := r.head.Load()
	if r.tail.Load() == head {
		var zero T
		return zero, false
	}
	return r.buf[head&r.mask], true
}
