package ring

// Burst is a producer-side staging buffer over an SPSC ring: items are
// accumulated in a fixed-size stage and published with a single
// producer-index store per flush — the receive-side mirror of the
// transmit path's one-lock-per-refill batching. It models a NIC's
// batched descriptor write-back: completed buffers become visible to
// the consumer in trains, not one at a time.
//
// A Burst belongs to the ring's single producer. Items that do not fit
// the ring at flush time are handed to the reject callback (the
// caller's drop accounting); the steady state allocates nothing.
type Burst[T any] struct {
	ring   *SPSC[T]
	stage  []T
	n      int
	reject func(T)
}

// NewBurst creates a staging buffer of the given size over the ring.
// reject receives items the ring had no room for at flush time; it may
// be nil when overflow is impossible by construction.
func (r *SPSC[T]) NewBurst(size int, reject func(T)) *Burst[T] {
	if size <= 0 {
		size = 1
	}
	return &Burst[T]{ring: r, stage: make([]T, size), reject: reject}
}

// Pending returns the number of staged, not yet published items.
func (b *Burst[T]) Pending() int { return b.n }

// Push stages one item, flushing automatically when the stage is full.
// It returns the number of items published to the ring (0 unless a
// flush happened).
func (b *Burst[T]) Push(v T) int {
	b.stage[b.n] = v
	b.n++
	if b.n == len(b.stage) {
		return b.Flush()
	}
	return 0
}

// Flush publishes every staged item under one producer-index store and
// returns how many the ring accepted; the overflow goes to the reject
// callback. Idempotent when nothing is staged.
func (b *Burst[T]) Flush() int {
	if b.n == 0 {
		return 0
	}
	k := b.ring.EnqueueBurst(b.stage[:b.n])
	for i := k; i < b.n; i++ {
		if b.reject != nil {
			b.reject(b.stage[i])
		}
	}
	var zero T
	for i := 0; i < b.n; i++ {
		b.stage[i] = zero
	}
	b.n = 0
	return k
}
