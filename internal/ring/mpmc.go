package ring

import (
	"fmt"
	"sync/atomic"
)

// mpmcSlot pairs an item with a sequence number in the Vyukov bounded
// MPMC queue scheme. The sequence number encodes whether the slot is
// ready for a producer or a consumer of a given lap.
type mpmcSlot[T any] struct {
	seq  atomic.Uint64
	item T
}

// MPMC is a bounded multi-producer multi-consumer lock-free queue
// (Vyukov's algorithm, the same family DPDK's default rte_ring uses).
// Any number of goroutines may enqueue and dequeue concurrently. It
// backs MoonGen-style inter-task pipes, where several slave tasks feed
// one statistics task.
type MPMC[T any] struct {
	buf  []mpmcSlot[T]
	mask uint64
	_    [7]uint64
	enq  atomic.Uint64
	_    [7]uint64
	deq  atomic.Uint64
	_    [7]uint64
}

// NewMPMC returns an MPMC ring with capacity rounded up to a power of
// two, minimum 2: Vyukov's sequence scheme cannot distinguish full from
// empty with a single slot (slot.seq wraps onto the next lap's enqueue
// position). Capacity must be positive.
func NewMPMC[T any](capacity int) *MPMC[T] {
	if capacity <= 0 {
		panic(fmt.Sprintf("ring: invalid capacity %d", capacity))
	}
	n := ceilPow2(capacity)
	if n < 2 {
		n = 2
	}
	q := &MPMC[T]{buf: make([]mpmcSlot[T], n), mask: uint64(n - 1)}
	for i := range q.buf {
		q.buf[i].seq.Store(uint64(i))
	}
	return q
}

// Cap returns the ring capacity.
func (q *MPMC[T]) Cap() int { return len(q.buf) }

// Len returns an approximate number of queued items.
func (q *MPMC[T]) Len() int {
	n := int(q.enq.Load()) - int(q.deq.Load())
	if n < 0 {
		return 0
	}
	if n > len(q.buf) {
		return len(q.buf)
	}
	return n
}

// EnqueueOne adds one item, reporting whether there was room.
func (q *MPMC[T]) EnqueueOne(item T) bool {
	pos := q.enq.Load()
	for {
		slot := &q.buf[pos&q.mask]
		seq := slot.seq.Load()
		switch diff := int64(seq) - int64(pos); {
		case diff == 0:
			if q.enq.CompareAndSwap(pos, pos+1) {
				slot.item = item
				slot.seq.Store(pos + 1)
				return true
			}
			pos = q.enq.Load()
		case diff < 0:
			return false // full
		default:
			pos = q.enq.Load()
		}
	}
}

// DequeueOne removes one item, reporting whether one was available.
func (q *MPMC[T]) DequeueOne() (T, bool) {
	var zero T
	pos := q.deq.Load()
	for {
		slot := &q.buf[pos&q.mask]
		seq := slot.seq.Load()
		switch diff := int64(seq) - int64(pos+1); {
		case diff == 0:
			if q.deq.CompareAndSwap(pos, pos+1) {
				item := slot.item
				slot.item = zero
				slot.seq.Store(pos + uint64(len(q.buf)))
				return item, true
			}
			pos = q.deq.Load()
		case diff < 0:
			return zero, false // empty
		default:
			pos = q.deq.Load()
		}
	}
}

// EnqueueBurst adds up to len(items) items and returns the number
// added. Unlike the SPSC ring the slots are claimed one CAS at a time
// (Vyukov slots cannot be range-reserved without spinning on foreign
// producers), but the burst call is still the unit of work: a short
// count means the ring filled mid-burst and items[:n] was added.
func (q *MPMC[T]) EnqueueBurst(items []T) int {
	for i := range items {
		if !q.EnqueueOne(items[i]) {
			return i
		}
	}
	return len(items)
}

// Enqueue is EnqueueBurst under its legacy name.
func (q *MPMC[T]) Enqueue(items []T) int { return q.EnqueueBurst(items) }

// DequeueBurst removes up to len(out) items and returns the count.
func (q *MPMC[T]) DequeueBurst(out []T) int {
	for i := range out {
		item, ok := q.DequeueOne()
		if !ok {
			return i
		}
		out[i] = item
	}
	return len(out)
}

// Dequeue is DequeueBurst under its legacy name.
func (q *MPMC[T]) Dequeue(out []T) int { return q.DequeueBurst(out) }
