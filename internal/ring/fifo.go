package ring

// FIFO is an unbounded single-goroutine queue over a compacted slice:
// Push appends, Pop advances a head index, and the drained prefix is
// compacted away once it dominates the slice. Steady-state operation
// performs no allocation, and popped slots are zeroed so the queue
// never pins references.
//
// It backs the simulator's monotonic-deadline pipelines (a link's
// in-flight frames, a port's transmit completions), which need FIFO
// order, unbounded depth and zero-alloc pushes — not the bounded
// lock-free semantics of the SPSC/MPMC rings.
type FIFO[T any] struct {
	buf  []T
	head int
}

// Len returns the number of queued items.
func (f *FIFO[T]) Len() int { return len(f.buf) - f.head }

// Push appends v.
func (f *FIFO[T]) Push(v T) {
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	} else if f.head > 64 && 2*f.head >= len(f.buf) {
		n := copy(f.buf, f.buf[f.head:])
		var zero T
		for i := n; i < len(f.buf); i++ {
			f.buf[i] = zero
		}
		f.buf = f.buf[:n]
		f.head = 0
	}
	f.buf = append(f.buf, v)
}

// Peek returns the head item without removing it.
func (f *FIFO[T]) Peek() (T, bool) {
	if f.head == len(f.buf) {
		var zero T
		return zero, false
	}
	return f.buf[f.head], true
}

// Pop removes and returns the head item.
func (f *FIFO[T]) Pop() (T, bool) {
	if f.head == len(f.buf) {
		var zero T
		return zero, false
	}
	v := f.buf[f.head]
	var z T
	f.buf[f.head] = z
	f.head++
	if f.head == len(f.buf) {
		f.buf = f.buf[:0]
		f.head = 0
	}
	return v, true
}
