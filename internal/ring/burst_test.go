package ring

import "testing"

// TestBurstStagedPublication: items stage without becoming visible,
// publish together on Flush or when the stage fills, and overflow at
// flush time goes to the reject callback in order.
func TestBurstStagedPublication(t *testing.T) {
	r := NewSPSC[int](8)
	var rejected []int
	b := r.NewBurst(4, func(v int) { rejected = append(rejected, v) })

	if n := b.Push(1); n != 0 || r.Len() != 0 {
		t.Fatalf("staged item visible early: published %d, len %d", n, r.Len())
	}
	b.Push(2)
	b.Push(3)
	if n := b.Push(4); n != 4 {
		t.Fatalf("full stage auto-flushed %d items, want 4", n)
	}
	if r.Len() != 4 || b.Pending() != 0 {
		t.Fatalf("after auto-flush: len %d pending %d", r.Len(), b.Pending())
	}

	b.Push(5)
	if n := b.Flush(); n != 1 || r.Len() != 5 {
		t.Fatalf("manual flush published %d (len %d), want 1 (5)", n, r.Len())
	}
	if n := b.Flush(); n != 0 {
		t.Fatalf("empty flush published %d", n)
	}

	// Fill the ring to capacity, then overflow a stage: the overflow is
	// rejected in push order.
	for i := 6; ; i++ {
		if !r.EnqueueOne(i) {
			break
		}
	}
	b.Push(100)
	b.Push(101)
	if n := b.Flush(); n != 0 {
		t.Fatalf("flush into full ring published %d", n)
	}
	if len(rejected) != 2 || rejected[0] != 100 || rejected[1] != 101 {
		t.Fatalf("rejected = %v, want [100 101]", rejected)
	}

	// Dequeued order is FIFO across staged publications.
	out := make([]int, 8)
	n := r.DequeueBurst(out)
	for i := 0; i < 5; i++ {
		if out[i] != i+1 {
			t.Fatalf("dequeue order %v", out[:n])
		}
	}
}
