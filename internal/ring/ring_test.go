package ring

import (
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"testing/quick"
)

// soakItems picks the item count for the concurrent soak tests: enough
// to exercise wraparound and contention in -short CI runs, a longer
// soak otherwise. The spin loops yield (runtime.Gosched) so the test
// does not degenerate into scheduler-starved busy waiting on small
// machines.
func soakItems(full int) int {
	if testing.Short() {
		return full / 10
	}
	return full
}

func TestCeilPow2(t *testing.T) {
	cases := map[int]int{1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 127: 128, 128: 128, 129: 256}
	for in, want := range cases {
		if got := ceilPow2(in); got != want {
			t.Errorf("ceilPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestSPSCBasic(t *testing.T) {
	r := NewSPSC[int](4)
	if r.Cap() != 4 {
		t.Fatalf("cap = %d", r.Cap())
	}
	if !r.EnqueueOne(1) || !r.EnqueueOne(2) {
		t.Fatal("enqueue failed on empty ring")
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	v, ok := r.DequeueOne()
	if !ok || v != 1 {
		t.Fatalf("dequeue = %d, %v", v, ok)
	}
	v, ok = r.DequeueOne()
	if !ok || v != 2 {
		t.Fatalf("dequeue = %d, %v", v, ok)
	}
	if _, ok := r.DequeueOne(); ok {
		t.Fatal("dequeue from empty ring succeeded")
	}
}

func TestSPSCFull(t *testing.T) {
	r := NewSPSC[int](4)
	for i := 0; i < 4; i++ {
		if !r.EnqueueOne(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if r.EnqueueOne(99) {
		t.Fatal("enqueue into full ring succeeded")
	}
	if r.Free() != 0 {
		t.Fatalf("free = %d", r.Free())
	}
}

func TestSPSCBulkShortCount(t *testing.T) {
	r := NewSPSC[int](8)
	in := []int{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}
	n := r.Enqueue(in)
	if n != 8 {
		t.Fatalf("bulk enqueue = %d, want 8", n)
	}
	out := make([]int, 16)
	m := r.Dequeue(out)
	if m != 8 {
		t.Fatalf("bulk dequeue = %d, want 8", m)
	}
	for i := 0; i < 8; i++ {
		if out[i] != i {
			t.Fatalf("out[%d] = %d", i, out[i])
		}
	}
}

func TestSPSCPeek(t *testing.T) {
	r := NewSPSC[string](2)
	if _, ok := r.Peek(); ok {
		t.Fatal("peek on empty ring")
	}
	r.EnqueueOne("x")
	v, ok := r.Peek()
	if !ok || v != "x" {
		t.Fatalf("peek = %q, %v", v, ok)
	}
	if r.Len() != 1 {
		t.Fatal("peek consumed the item")
	}
}

func TestSPSCWraparound(t *testing.T) {
	r := NewSPSC[int](4)
	for round := 0; round < 100; round++ {
		for i := 0; i < 3; i++ {
			if !r.EnqueueOne(round*10 + i) {
				t.Fatalf("round %d enqueue %d failed", round, i)
			}
		}
		for i := 0; i < 3; i++ {
			v, ok := r.DequeueOne()
			if !ok || v != round*10+i {
				t.Fatalf("round %d dequeue got %d, %v", round, v, ok)
			}
		}
	}
}

// TestSPSCConcurrent checks FIFO order and no loss/duplication with a
// real producer/consumer goroutine pair.
func TestSPSCConcurrent(t *testing.T) {
	total := soakItems(60000)
	r := NewSPSC[int](128)
	var got []int
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < total; {
			if r.EnqueueOne(i) {
				i++
			} else {
				runtime.Gosched()
			}
		}
	}()
	go func() {
		defer wg.Done()
		buf := make([]int, 32)
		for len(got) < total {
			n := r.Dequeue(buf)
			got = append(got, buf[:n]...)
			if n == 0 {
				runtime.Gosched()
			}
		}
	}()
	wg.Wait()
	if len(got) != total {
		t.Fatalf("received %d items, want %d", len(got), total)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("out of order at %d: got %d", i, v)
		}
	}
}

func TestMPMCBasic(t *testing.T) {
	q := NewMPMC[int](4)
	for i := 0; i < 4; i++ {
		if !q.EnqueueOne(i) {
			t.Fatalf("enqueue %d failed", i)
		}
	}
	if q.EnqueueOne(4) {
		t.Fatal("enqueue into full MPMC succeeded")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.DequeueOne()
		if !ok || v != i {
			t.Fatalf("dequeue = %d, %v; want %d", v, ok, i)
		}
	}
	if _, ok := q.DequeueOne(); ok {
		t.Fatal("dequeue from empty MPMC succeeded")
	}
}

func TestMPMCBulk(t *testing.T) {
	q := NewMPMC[int](8)
	n := q.Enqueue([]int{1, 2, 3, 4, 5})
	if n != 5 {
		t.Fatalf("enqueue = %d", n)
	}
	out := make([]int, 3)
	if m := q.Dequeue(out); m != 3 {
		t.Fatalf("dequeue = %d", m)
	}
	if out[0] != 1 || out[2] != 3 {
		t.Fatalf("out = %v", out)
	}
}

// TestMPMCConcurrent hammers the queue with multiple producers and
// consumers and verifies exactly-once delivery of every item.
func TestMPMCConcurrent(t *testing.T) {
	const (
		producers = 4
		consumers = 4
	)
	perProd := soakItems(15000)
	q := NewMPMC[int](256)
	var mu sync.Mutex
	seen := make(map[int]int, producers*perProd)
	var wg sync.WaitGroup
	var cwg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProd; i++ {
				v := p*perProd + i
				for !q.EnqueueOne(v) {
					runtime.Gosched()
				}
			}
		}(p)
	}
	done := make(chan struct{})
	for c := 0; c < consumers; c++ {
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			local := make(map[int]int)
			for {
				v, ok := q.DequeueOne()
				if !ok {
					select {
					case <-done:
						// Drain whatever is left.
						for {
							v, ok := q.DequeueOne()
							if !ok {
								break
							}
							local[v]++
						}
						mu.Lock()
						for k, n := range local {
							seen[k] += n
						}
						mu.Unlock()
						return
					default:
						runtime.Gosched()
						continue
					}
				}
				local[v]++
			}
		}()
	}
	wg.Wait()
	close(done)
	cwg.Wait()
	if len(seen) != producers*perProd {
		t.Fatalf("saw %d distinct items, want %d", len(seen), producers*perProd)
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("item %d delivered %d times", k, n)
		}
	}
}

// Property: any interleaved sequence of enqueues and dequeues on a single
// goroutine behaves identically to a model queue (slice).
func TestSPSCModelProperty(t *testing.T) {
	f := func(ops []uint8, capSeed uint8) bool {
		capacity := int(capSeed%32) + 1
		r := NewSPSC[int](capacity)
		var model []int
		next := 0
		for _, op := range ops {
			if op%2 == 0 {
				ok := r.EnqueueOne(next)
				modelOK := len(model) < r.Cap()
				if ok != modelOK {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := r.DequeueOne()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return r.Len() == len(model)
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMPMCModelProperty(t *testing.T) {
	f := func(ops []uint8, capSeed uint8) bool {
		capacity := int(capSeed%16) + 1
		q := NewMPMC[int](capacity)
		var model []int
		next := 0
		for _, op := range ops {
			if op%2 == 0 {
				ok := q.EnqueueOne(next)
				modelOK := len(model) < q.Cap()
				if ok != modelOK {
					return false
				}
				if ok {
					model = append(model, next)
				}
				next++
			} else {
				v, ok := q.DequeueOne()
				if ok != (len(model) > 0) {
					return false
				}
				if ok {
					if v != model[0] {
						return false
					}
					model = model[1:]
				}
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestInvalidCapacityPanics(t *testing.T) {
	for _, f := range []func(){
		func() { NewSPSC[int](0) },
		func() { NewMPMC[int](-1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid capacity did not panic")
				}
			}()
			f()
		}()
	}
}

func BenchmarkSPSCEnqueueDequeue(b *testing.B) {
	r := NewSPSC[int](1024)
	batch := make([]int, 32)
	out := make([]int, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Enqueue(batch)
		r.Dequeue(out)
	}
}

func BenchmarkMPMCEnqueueDequeue(b *testing.B) {
	q := NewMPMC[int](1024)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.EnqueueOne(i)
		q.DequeueOne()
	}
}

// TestBurstNamesAreCanonical: EnqueueBurst/DequeueBurst are the burst
// API the datapath uses; the legacy names must stay aliases with
// identical short-count semantics on both ring variants.
func TestBurstNamesAreCanonical(t *testing.T) {
	r := NewSPSC[int](8)
	in := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if n := r.EnqueueBurst(in); n != 8 {
		t.Fatalf("SPSC EnqueueBurst = %d, want 8 (short count on full)", n)
	}
	out := make([]int, 16)
	if n := r.DequeueBurst(out); n != 8 {
		t.Fatalf("SPSC DequeueBurst = %d", n)
	}
	for i := 0; i < 8; i++ {
		if out[i] != in[i] {
			t.Fatalf("burst order broken at %d: %d", i, out[i])
		}
	}

	q := NewMPMC[int](8)
	if n := q.EnqueueBurst(in); n != 8 {
		t.Fatalf("MPMC EnqueueBurst = %d, want 8", n)
	}
	if n := q.DequeueBurst(out); n != 8 {
		t.Fatalf("MPMC DequeueBurst = %d", n)
	}
	for i := 0; i < 8; i++ {
		if out[i] != in[i] {
			t.Fatalf("MPMC burst order broken at %d: %d", i, out[i])
		}
	}
}

func BenchmarkSPSCBurst32(b *testing.B) {
	r := NewSPSC[int](1024)
	batch := make([]int, 32)
	out := make([]int, 32)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.EnqueueBurst(batch)
		r.DequeueBurst(out)
	}
}
