package dut

import (
	"math"
	"testing"

	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/rate"
	"repro/internal/sim"
	"repro/internal/wire"
)

// testbed wires loadgen -> dut(in, out) -> sink and returns the pieces.
type testbed struct {
	eng     *sim.Engine
	gen     *nic.Port // load generator TX port
	dutIn   *nic.Port
	dutOut  *nic.Port
	sink    *nic.Port
	fwd     *Forwarder
	arrived []sim.Time // frame arrivals at the sink
}

func newTestbed(seed int64, cfg Config) *testbed {
	eng := sim.NewEngine(seed)
	tb := &testbed{eng: eng}
	tb.gen = nic.NewPort(eng, nic.PortConfig{Profile: nic.ChipX540, ID: 0})
	tb.dutIn = nic.NewPort(eng, nic.PortConfig{Profile: nic.ChipX540, ID: 1})
	tb.dutOut = nic.NewPort(eng, nic.PortConfig{Profile: nic.ChipX540, ID: 2})
	tb.sink = nic.NewPort(eng, nic.PortConfig{Profile: nic.ChipX540, ID: 3})
	nic.ConnectDuplex(eng, tb.gen, tb.dutIn, wire.PHY10GBaseT, 2)
	nic.ConnectDuplex(eng, tb.dutOut, tb.sink, wire.PHY10GBaseT, 2)
	tb.fwd = New(eng, tb.dutIn, tb.dutOut, cfg)
	tb.sink.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool {
		tb.arrived = append(tb.arrived, at)
		return true
	})
	return tb
}

// offerCBR drives the generator with hardware-rate-controlled CBR.
func (tb *testbed) offerCBR(pps float64, runFor sim.Duration) {
	pool := mempool.New(mempool.Config{Count: 8192})
	q := tb.gen.GetTxQueue(0)
	tb.eng.Schedule(0, func() { q.SetRatePPS(pps) })
	tb.eng.SetStopTime(sim.Time(runFor))
	tb.eng.Spawn("tx", func(p *sim.Proc) {
		for p.Running() {
			m := pool.Alloc(60)
			if m == nil {
				p.Sleep(2 * sim.Microsecond)
				continue
			}
			pk := proto.UDPPacket{B: m.Payload()}
			pk.Fill(proto.UDPPacketFill{PktLength: 60,
				IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.1.0.1"),
				UDPSrc: 1000, UDPDst: 2000})
			if !q.SendOne(m) {
				m.Free()
				p.Sleep(2 * sim.Microsecond)
				continue
			}
			p.Yield()
		}
	})
}

func TestForwardingBasic(t *testing.T) {
	tb := newTestbed(1, DefaultConfig())
	tb.offerCBR(100e3, 5*sim.Millisecond)
	tb.eng.RunAll()
	if tb.fwd.Forwarded < 450 || tb.fwd.Dropped > 0 {
		t.Fatalf("forwarded=%d dropped=%d", tb.fwd.Forwarded, tb.fwd.Dropped)
	}
	if len(tb.arrived) == 0 {
		t.Fatal("nothing reached the sink")
	}
	// Below saturation, output rate equals input rate.
	if diff := math.Abs(float64(len(tb.arrived)) - float64(tb.fwd.Forwarded)); diff > 2 {
		t.Fatalf("sink saw %d, forwarder sent %d", len(tb.arrived), tb.fwd.Forwarded)
	}
}

func TestThroughputCapsAtSaturation(t *testing.T) {
	cfg := DefaultConfig()
	tb := newTestbed(2, cfg)
	const runFor = 20 * sim.Millisecond
	tb.offerCBR(3e6, runFor) // well beyond the ~1.96 Mpps service limit
	tb.eng.RunAll()
	rate := float64(tb.fwd.Forwarded) / sim.Duration(runFor).Seconds()
	sat := tb.fwd.SaturationPPS()
	if math.Abs(rate-sat)/sat > 0.1 {
		t.Fatalf("overloaded throughput = %.2f Mpps, want ~%.2f", rate/1e6, sat/1e6)
	}
	if tb.fwd.Dropped == 0 {
		t.Fatal("no drops at overload")
	}
}

// TestOverloadLatency reproduces §8.3's "about 2 ms" buffer-full
// latency at overload.
func TestOverloadLatency(t *testing.T) {
	tb := newTestbed(3, DefaultConfig())
	tb.offerCBR(2.5e6, 30*sim.Millisecond)
	tb.eng.RunAll()
	lat := tb.fwd.MeanInternalLatency()
	if lat < 1500*sim.Microsecond || lat > 2500*sim.Microsecond {
		t.Fatalf("overload latency = %v, want ~2ms", lat)
	}
}

func TestLowLoadLatency(t *testing.T) {
	tb := newTestbed(4, DefaultConfig())
	tb.offerCBR(50e3, 10*sim.Millisecond)
	tb.eng.RunAll()
	lat := tb.fwd.MeanInternalLatency()
	// Interrupt-driven path: a handful of µs, far from saturation.
	if lat < 4*sim.Microsecond || lat > 50*sim.Microsecond {
		t.Fatalf("low-load latency = %v", lat)
	}
}

// TestInterruptModerationUnderBursts reproduces Figure 7's core
// observation: at the same offered load, bursty traffic generates a
// much lower interrupt rate than CBR because the moderation logic sees
// large batches.
func TestInterruptModerationUnderBursts(t *testing.T) {
	const pps = 500e3
	const runFor = 40 * sim.Millisecond

	intRate := func(seed int64, pat rate.Pattern) float64 {
		tb := newTestbed(seed, DefaultConfig())
		pool := mempool.New(mempool.Config{Count: 8192})
		q := tb.gen.GetTxQueue(0)
		tb.eng.SetStopTime(sim.Time(runFor))
		tb.eng.Spawn("tx", func(p *sim.Proc) {
			next := p.Now()
			for p.Running() {
				m := pool.Alloc(60)
				if m == nil {
					p.Sleep(sim.Microsecond)
					continue
				}
				pk := proto.UDPPacket{B: m.Payload()}
				pk.Fill(proto.UDPPacketFill{PktLength: 60,
					IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.1.0.1")})
				q.SendOne(m)
				next = next.Add(pat.NextGap(tb.eng.Rand()))
				p.SleepUntil(next)
			}
		})
		tb.eng.RunAll()
		return tb.fwd.InterruptRate(runFor)
	}

	b2b := wire.FrameTime(wire.Speed10G, 64)
	cbr := intRate(10, rate.NewCBRPPS(pps))
	bursty := intRate(11, rate.NewBurstyPPS(pps, b2b))
	if cbr < 2*bursty {
		t.Fatalf("CBR int rate %.0f not >> bursty %.0f", cbr, bursty)
	}
	if cbr < 30e3 {
		t.Fatalf("CBR interrupt rate %.0f unexpectedly low", cbr)
	}
}

// TestInterruptRateCollapsesAtHighLoad: once the DuT stays in polling
// mode the interrupt rate falls (the descending branch in Figure 7).
func TestInterruptRateCollapsesAtHighLoad(t *testing.T) {
	rateAt := func(seed int64, pps float64) float64 {
		tb := newTestbed(seed, DefaultConfig())
		const runFor = 20 * sim.Millisecond
		tb.offerCBR(pps, runFor)
		tb.eng.RunAll()
		return tb.fwd.InterruptRate(runFor)
	}
	mid := rateAt(20, 1.0e6)
	high := rateAt(21, 1.95e6)
	if high > mid/2 {
		t.Fatalf("interrupt rate did not collapse: mid=%.0f high=%.0f", mid, high)
	}
}

// TestInvalidFramesCauseNoActivity verifies §8.2: a CRC-gap stream's
// invalid frames produce no interrupts, no forwarding work, nothing —
// only the NIC error counter moves.
func TestInvalidFramesCauseNoActivity(t *testing.T) {
	tb := newTestbed(30, DefaultConfig())
	pool := mempool.New(mempool.Config{Count: 256})
	q := tb.gen.GetTxQueue(0)
	tb.eng.Schedule(0, func() {
		for i := 0; i < 100; i++ {
			m := pool.Alloc(60)
			pk := proto.UDPPacket{B: m.Payload()}
			pk.Fill(proto.UDPPacketFill{PktLength: 60,
				IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.1.0.1")})
			m.TxMeta.InvalidCRC = true
			q.SendOne(m)
		}
	})
	tb.eng.RunAll()
	if tb.fwd.Interrupts != 0 || tb.fwd.Forwarded != 0 {
		t.Fatalf("invalid frames caused activity: ints=%d fwd=%d",
			tb.fwd.Interrupts, tb.fwd.Forwarded)
	}
	if tb.dutIn.GetStats().RxCRCErrors != 100 {
		t.Fatalf("crc errors = %d", tb.dutIn.GetStats().RxCRCErrors)
	}
}

func TestBacklogBounded(t *testing.T) {
	cfg := DefaultConfig()
	tb := newTestbed(31, cfg)
	tb.offerCBR(5e6, 20*sim.Millisecond)
	maxSeen := 0
	tb.eng.Spawn("probe", func(p *sim.Proc) {
		for p.Running() {
			if b := tb.fwd.Backlog(); b > maxSeen {
				maxSeen = b
			}
			p.Sleep(100 * sim.Microsecond)
		}
	})
	tb.eng.RunAll()
	if maxSeen > cfg.BacklogLimit {
		t.Fatalf("backlog %d exceeded limit %d", maxSeen, cfg.BacklogLimit)
	}
	if maxSeen < cfg.BacklogLimit/2 {
		t.Fatalf("backlog never filled under overload: %d", maxSeen)
	}
}

func TestSaturationPPS(t *testing.T) {
	f := &Forwarder{cfg: DefaultConfig()}
	sat := f.SaturationPPS()
	if sat < 1.9e6 || sat > 2.0e6 {
		t.Fatalf("saturation = %.2f Mpps, want just below 2", sat/1e6)
	}
}
