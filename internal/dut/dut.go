// Package dut models the paper's device under test: a Linux server
// running Open vSwitch with a static forwarding rule on a single CPU
// core (§9), receiving on one port and forwarding out another.
//
// The model reproduces the mechanisms the paper's DuT-side effects come
// from:
//
//   - NAPI: an interrupt schedules a poll run; the poll processes
//     packets (fixed per-packet service cost) until the backlog is
//     empty or the budget is spent, then re-enables interrupts.
//   - Interrupt throttling (ixgbe ITR, §7.4): the driver adapts the
//     minimum interrupt spacing to the observed batch size, so bursty
//     traffic (micro-bursts) yields a low interrupt rate — Figure 7's
//     contrast between MoonGen CBR and zsend.
//   - Finite buffering: at overload the backlog caps out, latency
//     saturates around 2 ms and packets drop (§8.3).
//
// Invalid (bad FCS) frames never reach this model: the NIC drops them
// before queue assignment (nic.Port), which is exactly the property the
// paper's CRC-gap rate control relies on (§8.2).
package dut

import (
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Config tunes the forwarder. The defaults are calibrated so the
// overload point, base latency and interrupt-rate plateau land where
// the paper's Open vSwitch DuT (3.3 GHz Xeon E3-1230 v2, one queue)
// measured them.
type Config struct {
	// ServiceTime is the per-packet forwarding cost. 510 ns puts the
	// overload point just below 2 Mpps (the paper: "the system becomes
	// overloaded at about 1.9 Mpps").
	ServiceTime sim.Duration
	// IntDelay is interrupt-to-poll latency (hardirq + softirq entry).
	IntDelay sim.Duration
	// Budget is the NAPI poll budget (Linux default 64).
	Budget int
	// BacklogLimit is the total buffering in packets (NIC ring +
	// driver backlog). 3800 × 510 ns ≈ 2 ms of buffer, matching the
	// paper's "very large latency (about 2 ms in this test setup)".
	BacklogLimit int
	// ITR levels: minimum interrupt spacing by traffic class
	// (lowest-latency / low-latency / bulk), following the ixgbe
	// dynamic ITR scheme the paper cites ([10]).
	ITRLow  sim.Duration
	ITRMid  sim.Duration
	ITRBulk sim.Duration
	// TxPoolSize is the forwarder's transmit buffer pool.
	TxPoolSize int
	// ServiceJitterPct is the relative half-width of the uniform
	// per-packet service-time variation (cache misses, branch
	// mispredictions): 0.15 means ±15% around ServiceTime. Real
	// forwarders are never perfectly periodic; without this noise the
	// simulation phase-locks to the generator's arrival grid.
	ServiceJitterPct float64
	// IntDelayJitterPct is the same for the interrupt-to-poll delay
	// (scheduler noise).
	IntDelayJitterPct float64
}

// DefaultConfig returns the calibrated configuration.
func DefaultConfig() Config {
	return Config{
		ServiceTime:  510 * sim.Nanosecond,
		IntDelay:     5 * sim.Microsecond,
		Budget:       64,
		BacklogLimit: 3800,
		ITRLow:       6 * sim.Microsecond,  // ~166 kHz ceiling
		ITRMid:       20 * sim.Microsecond, // ~50 kHz
		ITRBulk:      40 * sim.Microsecond, // ~25 kHz
		TxPoolSize:   8192,

		ServiceJitterPct:  0.15,
		IntDelayJitterPct: 0.20,
	}
}

// Forwarder is the software forwarder. Attach it between two ports with
// New; it consumes valid frames arriving on the in port and retransmits
// them on the out port.
type Forwarder struct {
	eng *sim.Engine
	cfg Config
	in  *nic.Port
	out *nic.Port

	pool *mempool.Pool

	backlog ring.FIFO[queued]

	intsEnabled  bool
	polling      bool
	stalled      bool // fault injection: servicing paused (Stall/Restart)
	lastInt      sim.Time
	itrInterval  sim.Duration
	pktsThisInt  int
	intScheduled bool

	// Prebound event callbacks: the poll loop schedules one event per
	// serviced packet, so capturing closures here would dominate the
	// forwarder's allocation profile at Mpps rates. The NAPI model is
	// strictly serial (one poll chain at a time), so a single staged
	// service slot (svcQ/svcDone) suffices.
	rearmFn     func()
	pollStartFn func()
	serviceFn   func()
	svcQ        queued
	svcDone     int

	// Adaptive ITR state: the driver's moderation reacts to traffic
	// burstiness. We classify on the fraction of packets arriving
	// (nearly) back-to-back — the signal that makes micro-bursts
	// "trigger the interrupt rate moderation feature of the driver
	// earlier than expected" (§7.4).
	lastArrival sim.Time
	hasArrival  bool
	burstEWMA   float64

	// Counters.
	Interrupts   uint64
	Forwarded    uint64
	Dropped      uint64
	TxRingDrops  uint64
	Flushed      uint64 // backlog frames discarded by Restart(flush)
	totalLatency sim.Duration

	// interrupt timestamps for rate measurement windows
	intTimes []sim.Time

	// Spy observes every valid ingress frame (diagnostics only).
	Spy func(fr *wire.Frame, rxTime sim.Time)
}

type queued struct {
	data    []byte
	arrived sim.Time
}

// New attaches a forwarder between in and out. It installs a deliver
// hook on in; the hook replaces the generic driver path (the backlog
// models NIC ring plus driver queue together).
func New(eng *sim.Engine, in, out *nic.Port, cfg Config) *Forwarder {
	if cfg.ServiceTime == 0 {
		cfg = DefaultConfig()
	}
	f := &Forwarder{
		eng:         eng,
		cfg:         cfg,
		in:          in,
		out:         out,
		pool:        mempool.New(mempool.Config{Count: cfg.TxPoolSize}),
		intsEnabled: true,
		itrInterval: cfg.ITRLow,
		lastInt:     -sim.Time(sim.Second),
	}
	f.rearmFn = func() {
		f.intScheduled = false
		f.maybeInterrupt()
	}
	f.pollStartFn = func() { f.pollRun(0) }
	f.serviceFn = func() {
		q := f.svcQ
		f.svcQ = queued{}
		f.forward(q)
		f.pktsThisInt++
		f.pollRun(f.svcDone + 1)
	}
	in.SetDeliverHook(f.onFrame)
	return f
}

// onFrame is the NIC-to-driver boundary: enqueue and maybe interrupt.
func (f *Forwarder) onFrame(fr *wire.Frame, rxTime sim.Time) bool {
	if f.Spy != nil {
		f.Spy(fr, rxTime)
	}
	now := f.eng.Now()
	if f.hasArrival {
		burst := 0.0
		if now.Sub(f.lastArrival) < 500*sim.Nanosecond {
			burst = 1.0
		}
		f.burstEWMA = 0.995*f.burstEWMA + 0.005*burst
	}
	f.lastArrival = now
	f.hasArrival = true

	if f.backlog.Len() >= f.cfg.BacklogLimit {
		f.Dropped++
		return true
	}
	// The driver backlog keeps the frame's payload past the deliver
	// callback, so the frame must escape the link's recycling.
	fr.Retain()
	f.backlog.Push(queued{data: fr.Data, arrived: now})
	f.maybeInterrupt()
	return true
}

// maybeInterrupt fires or defers an interrupt respecting the throttle.
func (f *Forwarder) maybeInterrupt() {
	if f.stalled || f.polling || !f.intsEnabled || f.backlog.Len() == 0 {
		return
	}
	now := f.eng.Now()
	eligible := f.lastInt.Add(f.itrInterval)
	if now >= eligible {
		f.fireInterrupt()
		return
	}
	if !f.intScheduled {
		f.intScheduled = true
		// The throttle timer is not cycle-exact on a real system: the
		// re-arm fires with scheduler noise after the eligibility
		// boundary. Without this jitter the model resonates with
		// periodic arrival grids.
		late := sim.Duration(f.eng.Rand().Int63n(int64(f.itrInterval) / 4))
		f.eng.Schedule(eligible.Add(late), f.rearmFn)
	}
}

func (f *Forwarder) fireInterrupt() {
	f.Interrupts++
	f.intTimes = append(f.intTimes, f.eng.Now())
	f.lastInt = f.eng.Now()
	f.intsEnabled = false
	f.polling = true
	f.pktsThisInt = 0
	f.eng.ScheduleAfter(f.jittered(f.cfg.IntDelay, f.cfg.IntDelayJitterPct), f.pollStartFn)
}

// pollRun processes packets NAPI-style. done counts packets handled in
// the current budget slice.
func (f *Forwarder) pollRun(done int) {
	if f.stalled {
		// The core stopped servicing mid-poll: abandon the chain. The
		// backlog keeps filling (and tail-dropping) until Restart.
		f.polling = false
		f.intsEnabled = true
		return
	}
	if f.backlog.Len() == 0 {
		f.exitPoll()
		return
	}
	if done >= f.cfg.Budget {
		// Budget exhausted: yield to the scheduler, then poll again
		// (softirq re-raise). A small overhead models the round trip.
		f.eng.ScheduleAfter(2*sim.Microsecond, f.pollStartFn)
		return
	}
	q, _ := f.backlog.Pop()
	f.svcQ, f.svcDone = q, done
	f.eng.ScheduleAfter(f.jittered(f.cfg.ServiceTime, f.cfg.ServiceJitterPct), f.serviceFn)
}

func (f *Forwarder) exitPoll() {
	f.polling = false
	f.intsEnabled = true
	// Adaptive ITR: classify by arrival burstiness. Smooth CBR stays
	// in the low-latency class (high interrupt ceiling); micro-bursty
	// traffic moves to the bulk class (heavy moderation).
	switch {
	case f.burstEWMA <= 0.05:
		f.itrInterval = f.cfg.ITRLow
	case f.burstEWMA <= 0.15:
		f.itrInterval = f.cfg.ITRMid
	default:
		f.itrInterval = f.cfg.ITRBulk
	}
	// Packets that arrived during the last service slot still need an
	// interrupt.
	f.maybeInterrupt()
}

// jittered draws d ± pct uniform noise (mean preserved).
func (f *Forwarder) jittered(d sim.Duration, pct float64) sim.Duration {
	if pct <= 0 {
		return d
	}
	u := f.eng.Rand().Float64()*2 - 1
	return d + sim.Duration(float64(d)*pct*u)
}

// forward retransmits one packet out the egress port.
func (f *Forwarder) forward(q queued) {
	m := f.pool.Alloc(len(q.data))
	if m == nil {
		f.TxRingDrops++
		return
	}
	copy(m.Data, q.data)
	if !f.out.GetTxQueue(0).SendOne(m) {
		m.Free()
		f.TxRingDrops++
		return
	}
	f.Forwarded++
	f.totalLatency += f.eng.Now().Sub(q.arrived)
}

// Stall pauses servicing (fault injection: the DuT core stops
// scheduling the forwarder). Arriving frames keep accumulating in the
// backlog and tail-drop at BacklogLimit; no interrupt fires and any
// in-flight poll chain abandons at its next step. Idempotent.
func (f *Forwarder) Stall() { f.stalled = true }

// Restart resumes servicing after a Stall. With flush set the backlog
// is discarded first (a crashed process loses its queues; each frame
// counted in Flushed); without it the accumulated backlog is serviced
// normally. An interrupt is raised immediately if work is pending.
// Idempotent when not stalled.
func (f *Forwarder) Restart(flush bool) {
	f.stalled = false
	if flush {
		for {
			if _, ok := f.backlog.Pop(); !ok {
				break
			}
			f.Flushed++
		}
	}
	f.maybeInterrupt()
}

// Stalled reports whether servicing is paused.
func (f *Forwarder) Stalled() bool { return f.stalled }

// Backlog returns the current queue depth.
func (f *Forwarder) Backlog() int { return f.backlog.Len() }

// MeanInternalLatency returns the average ingress-to-egress latency of
// forwarded packets (excluding wire times).
func (f *Forwarder) MeanInternalLatency() sim.Duration {
	if f.Forwarded == 0 {
		return 0
	}
	return f.totalLatency / sim.Duration(f.Forwarded)
}

// InterruptRate returns the average interrupt rate (Hz) over the run up
// to now — the Figure 7 metric.
func (f *Forwarder) InterruptRate(span sim.Duration) float64 {
	if span <= 0 {
		return 0
	}
	return float64(f.Interrupts) / span.Seconds()
}

// InterruptTimes returns the interrupt instants (for windowed rates).
func (f *Forwarder) InterruptTimes() []sim.Time { return f.intTimes }

// SaturationPPS returns the theoretical overload point 1/ServiceTime.
func (f *Forwarder) SaturationPPS() float64 {
	return 1 / f.cfg.ServiceTime.Seconds()
}
