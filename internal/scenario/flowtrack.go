package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/mempool"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// This file holds the flow-tracked scenarios: sequence-stamped
// multi-flow streams on the deterministic software grid, analyzed on
// the receive side by a flow.Tracker through the batched RX datapath.
//
// Both scenarios are stated per *global slot*: the aggregate stream is
// a grid of transmit slots at the aggregate tick; slot j carries flow
// j mod F with flow-local sequence j div F, and every per-slot
// decision (overload admission, reorder displacement, duplication) is
// a pure function of j. Shard i of k owns slots j ≡ i (mod k) — the
// same composition softcbr uses — so as long as k divides F every
// flow lives wholly in one shard and the merged per-flow loss/reorder/
// duplicate counts are exactly the single-core counts, at any batch
// size. That is the RX acceptance property mirroring the TX batch
// invariance pinned in PR 3.

// FlowSet returns n plain UDP flows with distinct destination ports —
// the canonical flow declaration of the flow-tracked scenarios.
func FlowSet(n int) []Flow {
	out := make([]Flow, n)
	for i := range out {
		out[i] = Flow{
			Name:    fmt.Sprintf("f%d", i),
			L4:      "udp",
			SrcIP:   proto.MustIPv4("10.0.0.1"),
			DstIP:   proto.MustIPv4("10.1.0.1"),
			SrcPort: 1234,
			DstPort: uint16(5000 + i),
		}
	}
	return out
}

// trackerKey returns the flow.Key the tracker will observe for a
// declared flow (the flow-tracked generators do not randomize source
// addresses, so the key is exact).
func trackerKey(f Flow) flow.Key {
	return flow.Key{
		Proto: proto.IPProtoUDP,
		Src:   f.SrcIP, Dst: f.DstIP,
		SrcPort: f.SrcPort, DstPort: f.DstPort,
	}
}

// slotGrid recovers the global transmit grid from a (possibly sharded)
// spec: the aggregate tick, this shard's local interval and phase, and
// its slot stride/offset. Unsharded specs derive the tick from the
// rate; sharded specs recover it exactly from the interval ShardSpec
// computed, so all shards agree on the grid bit for bit.
func slotGrid(spec Spec) (tick, interval, phase sim.Duration, index, stride int, err error) {
	stride = spec.ShardCount
	index = spec.ShardIndex
	if spec.TxInterval > 0 {
		interval = spec.TxInterval
		tick = interval / sim.Duration(stride)
	} else {
		if spec.RateMpps <= 0 {
			return 0, 0, 0, 0, 0, fmt.Errorf("flow-tracked scenario needs a rate (got %v)", spec)
		}
		tick = sim.FromSeconds(1 / (spec.RateMpps * 1e6 * float64(stride)))
		interval = tick * sim.Duration(stride)
	}
	phase = spec.TxPhase
	return tick, interval, phase, index, stride, nil
}

// admission is the deterministic overload model: an ideal bufferless
// server draining at line rate. Offered slots arrive every tick; the
// server needs frameWire per frame; slot j is admitted exactly when
// the virtual service count floor(j·tick/frameWire) advances. This is
// the tail-drop pattern of a zero-buffer FIFO in exact integer
// arithmetic — a pure function of the global slot index, which is what
// makes per-flow loss identical across core counts (each shard's wire
// is private, so the shared bottleneck must be modeled, not emergent).
type admission struct {
	tick, frameWire int64
}

func (a admission) admitted(j uint64) bool {
	if a.tick >= a.frameWire || j == 0 {
		return true // at or below line rate nothing is dropped
	}
	t := int64(j) * a.tick
	return t/a.frameWire > (t-a.tick)/a.frameWire
}

// flowTxConfig parameterizes the shared slot-grid transmit task.
type flowTxConfig struct {
	// admit, when non-nil, gates each global slot (loss-overload).
	admit func(j uint64) bool
	// slotTime, when non-nil, gives slot j's departure offset from the
	// run start — a pure, monotone function of the global slot index.
	// It replaces the uniform interval/phase grid, which is how a
	// scenario models a time-varying offered rate (overload-recover's
	// ramp) while keeping every shard on the exact same global grid.
	slotTime func(j uint64) sim.Duration
	// stampSeq maps a flow-local sequence to the stamped sequence
	// (reorder displacement); nil is identity.
	stampSeq func(s uint64) uint64
	// dupEvery duplicates every dupEvery-th packet of each flow
	// (0 = none).
	dupEvery uint64
}

// flowTxResult carries the per-flow transmit accounting.
type flowTxResult struct {
	sent     []uint64 // wire packets per flow, duplicates included
	overload []uint64 // slots dropped by the admission gate, per flow
	errs     []uint64 // pool-dry or ring-full slots (sized-out setups: 0)
}

// launchFlowTx starts the slot-grid transmit task for this shard's
// slice of the global grid. Every slot advances its flow's sequence
// number whether or not the packet is admitted, so the receiver
// observes admission drops as sequence gaps — receiver-side loss
// attribution, the paper's §6 loss-under-overload measurement per
// flow.
func launchFlowTx(env *Env, cfg flowTxConfig) (*flowTxResult, error) {
	spec := env.Spec
	if spec.UseDuT {
		// The DuT bed starts its own sink drain, which would compete
		// with the flow sink for the same queue and corrupt the loss
		// attribution (drained packets would read as sequence gaps).
		return nil, fmt.Errorf("flow-tracked scenario needs the direct duplex testbed, not the DuT path")
	}
	flows := spec.EffectiveFlows()
	F := len(flows)
	if spec.ShardCount > 1 && F%spec.ShardCount != 0 {
		return nil, fmt.Errorf("flow-tracked scenario: cores (%d) must divide the flow count (%d) so every flow lives in one shard", spec.ShardCount, F)
	}
	_, interval, phase, index, stride, err := slotGrid(spec)
	if err != nil {
		return nil, err
	}

	res := &flowTxResult{
		sent:     make([]uint64, F),
		overload: make([]uint64, F),
		errs:     make([]uint64, F),
	}
	q := env.TX().GetTxQueue(0)

	// One prefilled pool and payload offset per flow; the per-packet
	// work is one sequence stamp.
	pools := make([]*mempool.Pool, F)
	sizes := make([]int, F)
	for fi, f := range flows {
		sizes[fi] = spec.FlowSize(f)
		if sizes[fi] < proto.EthHdrLen+proto.IPv4HdrLen+proto.UDPHdrLen+flow.StampLen {
			return nil, fmt.Errorf("flow-tracked scenario: frame size %d cannot carry the %d-byte sequence stamp", sizes[fi], flow.StampLen)
		}
		pools[fi] = env.NewFlowPool(f, sizes[fi], 4096)
	}
	const payloadOff = proto.EthHdrLen + proto.IPv4HdrLen + proto.UDPHdrLen

	env.App().LaunchTask("flow-tx", func(t *core.Task) {
		send := func(fi int, stamped uint64) bool {
			m := pools[fi].Alloc(sizes[fi])
			if m == nil {
				res.errs[fi]++
				return false
			}
			flow.Stamp(m.Payload()[payloadOff:], stamped, t.Now())
			if !q.SendOne(m) {
				m.Free()
				res.errs[fi]++
				return false
			}
			res.sent[fi]++
			return true
		}
		start := t.Now()
		next := start.Add(phase)
		var n uint64
		for t.Running() {
			j := uint64(index) + n*uint64(stride)
			if cfg.slotTime != nil {
				next = start.Add(cfg.slotTime(j))
			}
			t.SleepUntil(next)
			if !t.Running() {
				break
			}
			n++
			if cfg.slotTime == nil {
				next = next.Add(interval)
			}
			fi := int(j % uint64(F))
			s := j / uint64(F)
			if cfg.admit != nil && !cfg.admit(j) {
				res.overload[fi]++
				continue
			}
			stamped := s
			if cfg.stampSeq != nil {
				stamped = cfg.stampSeq(s)
			}
			if !send(fi, stamped) {
				continue
			}
			if cfg.dupEvery > 0 && s%cfg.dupEvery == 0 {
				send(fi, stamped)
			}
		}
	})
	return res, nil
}

// collectFlows fills the report's per-flow slices from the transmit
// accounting and the receiver-side tracker.
func collectFlows(rep *Report, spec Spec, res *flowTxResult, tr *flow.Tracker) {
	var errs uint64
	for fi, f := range spec.EffectiveFlows() {
		fr := FlowReport{Name: f.Name, TxPackets: res.sent[fi]}
		if fs, ok := tr.Lookup(trackerKey(f)); ok {
			fr.RxPackets = fs.Received
			fr.Lost = fs.Lost
			fr.Reordered = fs.Reordered
			fr.Duplicates = fs.Duplicates
			if fs.Latency != nil && fs.Latency.Count() > 0 {
				fr.Latency = fs.Latency
			}
		}
		rep.Flows = append(rep.Flows, fr)
		errs += res.errs[fi]
	}
	if errs > 0 {
		rep.AddRow("tx slots lost to pool/ring pressure", float64(errs), "slots")
	}
	if tr.Unparsed > 0 {
		rep.AddRow("rx frames without a flow key", float64(tr.Unparsed), "packets")
	}
}

// lossOverloadScenario reproduces §6's loss-under-overload observation
// with per-flow attribution: the offered slot grid exceeds line rate,
// the deterministic bufferless admission gate tail-drops the excess,
// and the receiver's flow tracker reports every drop as sequence loss
// on the flow it hit.
type lossOverloadScenario struct{}

func (lossOverloadScenario) Name() string { return "loss-overload" }
func (lossOverloadScenario) Describe() string {
	return "overload loss per flow: >line-rate slot grid, deterministic tail drop, rx sequence gaps (§6)"
}

func (lossOverloadScenario) DefaultSpec() Spec {
	return Spec{
		Pattern:  PatternSoftCBR, // sharded on the softcbr grid
		RateMpps: 20,             // 10GbE 64B line rate is 14.88 Mpps
		PktSize:  60,
		Runtime:  20 * sim.Millisecond,
		Flows:    FlowSet(4),
	}
}

func (lossOverloadScenario) Run(env *Env) (*Report, error) {
	spec := env.Spec
	tick, _, _, _, _, err := slotGrid(spec)
	if err != nil {
		return nil, err
	}
	size := spec.FlowSize(spec.EffectiveFlows()[0])
	gate := admission{
		tick:      int64(tick),
		frameWire: int64(wire.FrameTime(env.TX().Speed(), size+proto.FCSLen)),
	}
	tr := flow.NewTracker(flow.Config{Latency: true})
	res, err := launchFlowTx(env, flowTxConfig{admit: gate.admitted})
	if err != nil {
		return nil, err
	}
	sink := env.LaunchFlowSink(tr)

	rep := &Report{}
	env.RunAndCollect(rep)
	collectFlows(rep, spec, res, tr)
	var admitted, dropped uint64
	for fi := range res.sent {
		admitted += res.sent[fi]
		dropped += res.overload[fi]
	}
	rep.AddRow("slots admitted at the line-rate gate", float64(admitted), "packets")
	rep.AddRow("slots tail-dropped (overload)", float64(dropped), "slots")
	rep.AddRow("rx frames attributed", float64(sink.Received), "packets")
	rep.Notes = append(rep.Notes,
		"loss model: ideal bufferless line-rate server per global slot (pure function of the slot index)")
	return rep, nil
}

// reorderScenario exercises the tracker's reordering and duplication
// detection: the generator applies a deterministic displacement to the
// stamped sequence numbers — every fourth flow-local pair leaves in
// swapped order, modeling the interleaving a flow sprayed across
// independent transmit queues suffers (§3.3: queues are scheduled
// independently, so multi-queue transmission reorders within a flow)
// — and duplicates every 64th packet.
type reorderScenario struct{}

// reorderSwapEvery swaps one pair in this many; reorderDupEvery
// duplicates one packet in this many (per flow).
const (
	reorderSwapEvery = 4
	reorderDupEvery  = 64
)

func (reorderScenario) Name() string { return "reorder" }
func (reorderScenario) Describe() string {
	return "multi-queue reordering detector: displaced sequence stamps, per-flow reorder/duplicate counts"
}

func (reorderScenario) DefaultSpec() Spec {
	return Spec{
		Pattern:  PatternSoftCBR,
		RateMpps: 2,
		PktSize:  60,
		Runtime:  20 * sim.Millisecond,
		Flows:    FlowSet(4),
	}
}

func (reorderScenario) Run(env *Env) (*Report, error) {
	tr := flow.NewTracker(flow.Config{Latency: true})
	res, err := launchFlowTx(env, flowTxConfig{
		stampSeq: func(s uint64) uint64 {
			if (s/2)%reorderSwapEvery == 0 {
				return s ^ 1 // the pair (2m, 2m+1) departs as (2m+1, 2m)
			}
			return s
		},
		dupEvery: reorderDupEvery,
	})
	if err != nil {
		return nil, err
	}
	sink := env.LaunchFlowSink(tr)

	rep := &Report{}
	env.RunAndCollect(rep)
	collectFlows(rep, env.Spec, res, tr)
	rep.AddRow("rx frames attributed", float64(sink.Received), "packets")
	rep.Notes = append(rep.Notes,
		"reorder model: every 4th flow-local pair swapped, every 64th packet duplicated (deterministic)")
	return rep, nil
}

func init() {
	Register(lossOverloadScenario{})
	Register(reorderScenario{})
}
