package scenario_test

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// flowFingerprint reduces a report to the per-flow counters the
// invariance property is stated over: transmit/receive counts and the
// sequence verdicts. Latency and inter-arrival distributions are
// excluded deliberately — wire timing legitimately differs between one
// shared wire and k private ones; the flow *accounting* must not.
func flowFingerprint(r *scenario.Report) string {
	s := ""
	for _, f := range r.Flows {
		s += fmt.Sprintf("%s:tx=%d,rx=%d,lost=%d,reord=%d,dup=%d;",
			f.Name, f.TxPackets, f.RxPackets, f.Lost, f.Reordered, f.Duplicates)
	}
	return s
}

func runFlowScenario(t *testing.T, name string, cores, batch int) *scenario.Report {
	t.Helper()
	sc, ok := scenario.Get(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	spec := sc.DefaultSpec()
	spec.Runtime = 10 * sim.Millisecond
	spec.Seed = 5
	spec.Cores = cores
	spec.Batch = batch
	rep, err := scenario.Execute(name, spec, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestLossOverloadInvariantAcrossCoresAndBatch is the acceptance pin
// of the RX analysis subsystem: the loss-overload scenario reports
// nonzero, deterministic per-flow loss at >line-rate offered load, and
// the per-flow counts are identical across Cores 1 vs 4 and Batch 1 vs
// 32 — the receive-side mirror of PR 3's TX batch invariance.
func TestLossOverloadInvariantAcrossCoresAndBatch(t *testing.T) {
	base := runFlowScenario(t, "loss-overload", 1, 32)
	if len(base.Flows) != 4 {
		t.Fatalf("expected 4 flows, got %d", len(base.Flows))
	}
	for _, f := range base.Flows {
		if f.Lost == 0 {
			t.Errorf("flow %s: loss = 0, want nonzero at >line-rate offered load", f.Name)
		}
		if f.RxPackets == 0 || f.RxPackets != f.TxPackets {
			t.Errorf("flow %s: rx %d of tx %d (admitted packets must all arrive)",
				f.Name, f.RxPackets, f.TxPackets)
		}
	}
	want := flowFingerprint(base)
	for _, cfg := range []struct{ cores, batch int }{
		{1, 1}, {4, 32}, {4, 1}, {2, 32},
	} {
		got := flowFingerprint(runFlowScenario(t, "loss-overload", cfg.cores, cfg.batch))
		if got != want {
			t.Errorf("cores=%d batch=%d: per-flow counts differ\n want %s\n  got %s",
				cfg.cores, cfg.batch, want, got)
		}
	}
}

// TestReorderInvariantAcrossCoresAndBatch: the reorder scenario's
// per-flow reorder and duplicate counts are likewise nonzero and
// invariant in Cores and Batch.
func TestReorderInvariantAcrossCoresAndBatch(t *testing.T) {
	base := runFlowScenario(t, "reorder", 1, 32)
	for _, f := range base.Flows {
		if f.Reordered == 0 || f.Duplicates == 0 {
			t.Errorf("flow %s: reordered=%d dup=%d, want both nonzero", f.Name, f.Reordered, f.Duplicates)
		}
		if f.Lost != 0 {
			t.Errorf("flow %s: lost=%d, want 0 (every displaced packet arrives)", f.Name, f.Lost)
		}
	}
	want := flowFingerprint(base)
	for _, cfg := range []struct{ cores, batch int }{
		{1, 1}, {4, 32}, {4, 1},
	} {
		got := flowFingerprint(runFlowScenario(t, "reorder", cfg.cores, cfg.batch))
		if got != want {
			t.Errorf("cores=%d batch=%d: per-flow counts differ\n want %s\n  got %s",
				cfg.cores, cfg.batch, want, got)
		}
	}
}

// churnFingerprint reduces a churn report to its model rows: every
// scenario-specific row except the "(diag)" ones — the tracker
// footprint sums k independently-rounded shard tables (power-of-two
// slots, chunk-granular arenas), so its byte count legitimately
// varies with the core count while the flow accounting must not.
func churnFingerprint(r *scenario.Report) string {
	s := ""
	for _, row := range r.Rows {
		if strings.Contains(row.Label, "(diag)") {
			continue
		}
		s += fmt.Sprintf("%s=%v;", row.Label, row.Value)
	}
	return s
}

// TestChurnInvariantAcrossCoresAndBatch extends the flow-accounting
// invariance pin to the churn scenario's arrival/departure process:
// flows started, tracked and active, attributed frames and the
// sequence verdicts (all zero on a clean run — nonzero would be a
// tracker defect) are identical across Cores and Batch whenever the
// core count divides the working set.
func TestChurnInvariantAcrossCoresAndBatch(t *testing.T) {
	base := runFlowScenario(t, "churn", 1, 32)
	want := churnFingerprint(base)
	if !strings.Contains(want, "flows tracked") || strings.Contains(want, "flows tracked (rx)=0;") {
		t.Fatalf("base run tracked no flows: %s", want)
	}
	for _, lbl := range []string{"seq lost", "seq reordered", "seq duplicates"} {
		if !strings.Contains(want, lbl+"=0;") {
			t.Errorf("clean churn run must report %s=0: %s", lbl, want)
		}
	}
	for _, cfg := range []struct{ cores, batch int }{
		{1, 1}, {4, 32}, {4, 1}, {2, 32},
	} {
		got := churnFingerprint(runFlowScenario(t, "churn", cfg.cores, cfg.batch))
		if got != want {
			t.Errorf("cores=%d batch=%d: churn rows differ\n want %s\n  got %s",
				cfg.cores, cfg.batch, want, got)
		}
	}
}

// TestChurnRejectsUnevenWorkingSet: a core count that does not divide
// the churn working set would split flows across shards; the scenario
// must refuse.
func TestChurnRejectsUnevenWorkingSet(t *testing.T) {
	sc, _ := scenario.Get("churn")
	spec := sc.DefaultSpec()
	spec.Runtime = sim.Millisecond
	spec.Cores = 3 // working set 1024
	if _, err := scenario.Execute("churn", spec, io.Discard); err == nil {
		t.Fatal("cores=3 with a 1024-flow working set did not error")
	}
}

// TestFlowScenarioRejectsUnevenSharding: a core count that does not
// divide the flow count would split a flow across shards and break the
// merge contract; the scenario must refuse instead of reporting wrong
// numbers.
func TestFlowScenarioRejectsUnevenSharding(t *testing.T) {
	sc, _ := scenario.Get("loss-overload")
	spec := sc.DefaultSpec()
	spec.Runtime = sim.Millisecond
	spec.Cores = 3 // 4 flows
	if _, err := scenario.Execute("loss-overload", spec, io.Discard); err == nil {
		t.Fatal("cores=3 with 4 flows did not error")
	}
}

// TestLossOverloadPinned pins the headline numbers of the canonical
// 10 ms seed-5 run: the admitted fraction of a 20 Mpps offered grid
// against the 14.88 Mpps 64-byte line rate, attributed per flow. Any
// change to the grid arithmetic, the admission model or the RX
// attribution path moves these.
func TestLossOverloadPinned(t *testing.T) {
	rep := runFlowScenario(t, "loss-overload", 1, 32)
	var tx, lost uint64
	for _, f := range rep.Flows {
		tx += f.TxPackets
		lost += f.Lost
	}
	total := tx + lost
	if total == 0 {
		t.Fatal("no packets")
	}
	frac := float64(lost) / float64(total)
	// Offered 20 Mpps, capacity 14.88 Mpps: loss fraction 1-14.88/20 ≈ 25.6%.
	if frac < 0.24 || frac < 0.01 || frac > 0.27 {
		t.Errorf("loss fraction = %.4f, want ≈ 0.256", frac)
	}
	if rep.RxMissed != 0 || rep.RxCRCErrors != 0 {
		t.Errorf("sink dropped frames (missed %d, crc %d): the admission gate should be the only loss",
			rep.RxMissed, rep.RxCRCErrors)
	}
}
