package scenario

import (
	"encoding/binary"
	"fmt"

	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// reflectScenario exercises the request/response protocols the plain
// load generators never touch (arp.lua / icmp echo in MoonGen): the
// generator paces ICMP echo requests — with the send time embedded in
// the payload — plus periodic ARP requests toward the sink; a
// responder task on the sink parses each request and answers in kind
// (echo reply with the payload mirrored, ARP reply with the addresses
// swapped); the generator matches replies and histograms round-trip
// times. Both directions of the duplex link carry traffic.
type reflectScenario struct{}

// arpEvery is the request mix: one ARP request per arpEvery ICMP echos.
const arpEvery = 16

func (reflectScenario) Name() string { return "reflect" }
func (reflectScenario) Describe() string {
	return "ICMP echo + ARP responder: paced requests, in-kind replies, RTT histogram"
}

// SingleCoreOnly implements the sharding guard: the reply-rate row is
// a percentage that must not be summed across shards.
func (reflectScenario) SingleCoreOnly() string {
	return "the echo/ARP exchange reports reply-rate percentages that must not be summed"
}

func (reflectScenario) DefaultSpec() Spec {
	return Spec{
		RateMpps: 0.05,
		PktSize:  60,
		Runtime:  50 * sim.Millisecond,
	}
}

func (reflectScenario) Run(env *Env) (*Report, error) {
	spec := env.Spec
	if spec.UseDuT {
		return nil, fmt.Errorf("reflect needs the duplex testbed, not a one-way DuT path")
	}
	if spec.RateMpps <= 0 {
		return nil, fmt.Errorf("reflect needs a request rate (got %v)", spec)
	}
	size := spec.PktSize
	minSize := proto.EthHdrLen + proto.IPv4HdrLen + proto.ICMPHdrLen + 8 // 8B embedded send time
	if size < minSize {
		return nil, fmt.Errorf("reflect needs frames of at least %d B (got %d)", minSize, size)
	}
	flow := spec.EffectiveFlows()[0]
	app := env.App()
	tx, rx := env.TX(), env.RX()
	icmpLen := size - proto.EthHdrLen - proto.IPv4HdrLen

	// Requester: paced like a software generator (one packet per
	// deadline); every arpEvery-th request is an ARP who-has instead of
	// an echo.
	var echoSent, arpSent uint64
	reqPool := core.CreateMemPool(2048, nil)
	interval := sim.FromSeconds(1 / (spec.RateMpps * 1e6))
	app.LaunchTask("requester", func(t *core.Task) {
		next := t.Now()
		var seq uint64
		for t.Running() {
			next = next.Add(interval)
			t.SleepUntil(next)
			if !t.Running() {
				break
			}
			m := reqPool.Alloc(size)
			if m == nil {
				continue
			}
			if seq%arpEvery == arpEvery-1 {
				proto.EthHdr(m.Payload()).Fill(proto.EthFill{
					Src: tx.MAC(), Dst: proto.BroadcastMAC, EtherType: proto.EtherTypeARP,
				})
				proto.ARPHdr(m.Payload()[proto.EthHdrLen:]).Fill(proto.ARPFill{
					Op:        proto.ARPOpRequest,
					SenderMAC: tx.MAC(), SenderIP: flow.SrcIP,
					TargetIP: flow.DstIP,
				})
				arpSent++
			} else {
				p := proto.ICMPPacket{B: m.Payload()}
				p.Fill(proto.ICMPPacketFill{
					PktLength: size,
					EthSrc:    tx.MAC(), EthDst: rx.MAC(),
					IPSrc: flow.SrcIP, IPDst: flow.DstIP,
					Type: proto.ICMPTypeEcho,
					ID:   0xbeef, Seq: uint16(seq),
				})
				binary.BigEndian.PutUint64(p.ICMP().Payload(), uint64(t.Now()))
				p.ICMP().CalcChecksumV4(icmpLen)
				echoSent++
			}
			seq++
			if !tx.GetTxQueue(0).SendOne(m) {
				m.Free()
			}
		}
	})

	// Responder: the sink answers every request in kind on its own
	// transmit queue — the duplex link carries the replies back.
	var echoAnswered, arpAnswered, badChecksum uint64
	respPool := core.CreateMemPool(2048, nil)
	app.LaunchTask("responder", func(t *core.Task) {
		bufs := make([]*mempool.Mbuf, 256)
		for {
			n := t.RecvPoll(rx.GetRxQueue(0), bufs)
			if n == 0 {
				break
			}
			for _, m := range bufs[:n] {
				if r := answer(m, rx, respPool, icmpLen, &echoAnswered, &arpAnswered, &badChecksum); r != nil {
					if !rx.GetTxQueue(0).SendOne(r) {
						r.Free()
					}
				}
				m.Free()
			}
		}
	})

	// Collector: the generator's receive side matches replies and
	// recovers the embedded send time for the RTT histogram.
	var echoReplies, arpReplies uint64
	rtt := stats.NewHistogram(64 * sim.Nanosecond)
	app.LaunchTask("collector", func(t *core.Task) {
		bufs := make([]*mempool.Mbuf, 256)
		for {
			n := t.RecvPoll(tx.GetRxQueue(0), bufs)
			if n == 0 {
				break
			}
			for _, m := range bufs[:n] {
				data := m.Payload()
				switch proto.EthHdr(data).EtherType() {
				case proto.EtherTypeARP:
					if proto.ARPHdr(data[proto.EthHdrLen:]).Op() == proto.ARPOpReply {
						arpReplies++
					}
				case proto.EtherTypeIPv4:
					p := proto.ICMPPacket{B: data}
					if p.IP().Protocol() == proto.IPProtoICMP && p.ICMP().Type() == proto.ICMPTypeEchoReply {
						echoReplies++
						sent := sim.Time(binary.BigEndian.Uint64(p.ICMP().Payload()))
						rtt.Add(t.Now().Sub(sent))
					}
				}
				m.Free()
			}
		}
	})

	rep := &Report{}
	env.RunAndCollect(rep)
	rep.Latency = rtt
	rep.AddRow("icmp echo requests sent", float64(echoSent), "packets")
	rep.AddRow("icmp echo replies sent by responder", float64(echoAnswered), "packets")
	rep.AddRow("icmp echo replies received", float64(echoReplies), "packets")
	rep.AddRow("arp requests sent", float64(arpSent), "packets")
	rep.AddRow("arp replies sent by responder", float64(arpAnswered), "packets")
	rep.AddRow("arp replies received", float64(arpReplies), "packets")
	rep.AddRow("responder bad checksums", float64(badChecksum), "packets")
	if total := echoSent + arpSent; total > 0 {
		rep.AddRow("reply rate", float64(echoReplies+arpReplies)/float64(total)*100, "%")
	}
	return rep, nil
}

// answer builds the in-kind reply for one received frame, or nil for
// traffic the responder does not speak.
func answer(m *mempool.Mbuf, rx *core.Device, pool *mempool.Pool, icmpLen int,
	echoAnswered, arpAnswered, badChecksum *uint64) *mempool.Mbuf {
	data := m.Payload()
	switch proto.EthHdr(data).EtherType() {
	case proto.EtherTypeARP:
		req := proto.ARPHdr(data[proto.EthHdrLen:])
		if req.Op() != proto.ARPOpRequest {
			return nil
		}
		r := pool.Alloc(m.Len)
		if r == nil {
			return nil
		}
		proto.EthHdr(r.Payload()).Fill(proto.EthFill{
			Src: rx.MAC(), Dst: req.SenderMAC(), EtherType: proto.EtherTypeARP,
		})
		proto.ARPHdr(r.Payload()[proto.EthHdrLen:]).Fill(proto.ARPFill{
			Op:        proto.ARPOpReply,
			SenderMAC: rx.MAC(), SenderIP: req.TargetIP(),
			TargetMAC: req.SenderMAC(), TargetIP: req.SenderIP(),
		})
		*arpAnswered++
		return r
	case proto.EtherTypeIPv4:
		p := proto.ICMPPacket{B: data}
		if p.IP().Protocol() != proto.IPProtoICMP || p.ICMP().Type() != proto.ICMPTypeEcho {
			return nil
		}
		if !p.ICMP().VerifyChecksumV4(icmpLen) {
			*badChecksum++
			return nil
		}
		r := pool.Alloc(m.Len)
		if r == nil {
			return nil
		}
		copy(r.Payload(), data)
		rp := proto.ICMPPacket{B: r.Payload()}
		rp.Eth().Fill(proto.EthFill{Src: rx.MAC(), Dst: p.Eth().Src(), EtherType: proto.EtherTypeIPv4})
		rp.IP().SetSrc(p.IP().Dst())
		rp.IP().SetDst(p.IP().Src())
		rp.IP().CalcChecksum()
		rp.ICMP().SetType(proto.ICMPTypeEchoReply)
		rp.ICMP().CalcChecksumV4(icmpLen)
		*echoAnswered++
		return r
	}
	return nil
}

func init() { Register(reflectScenario{}) }
