package scenario_test

import (
	"io"
	"strings"
	"testing"

	"repro/internal/multicore"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/stats"
)

func TestShardSpecBudgetsSumExactly(t *testing.T) {
	spec := scenario.Spec{
		RateMpps: 3,
		Probes:   10,
		Samples:  101,
		Seed:     9,
		Flows:    []scenario.Flow{{Name: "a", RateMpps: 1.5}, {Name: "b", RateMpps: 0.5}},
		Cores:    4,
	}
	const k = 4
	var rate, flowA float64
	var probes, samples int
	for i := 0; i < k; i++ {
		ss := spec.ShardSpec(i, k)
		if ss.Cores != 1 {
			t.Fatalf("shard %d: Cores = %d, must not recurse", i, ss.Cores)
		}
		if ss.Seed != multicore.ShardSeed(9, i) {
			t.Fatalf("shard %d: seed = %d", i, ss.Seed)
		}
		rate += ss.RateMpps
		probes += ss.Probes
		samples += ss.Samples
		flowA += ss.Flows[0].RateMpps
	}
	if rate != spec.RateMpps || flowA != spec.Flows[0].RateMpps {
		t.Fatalf("rates do not sum: aggregate %v, flow a %v", rate, flowA)
	}
	if probes != spec.Probes || samples != spec.Samples {
		t.Fatalf("budgets do not sum: probes %d, samples %d", probes, samples)
	}
	// The original spec must not be mutated.
	if spec.Flows[0].RateMpps != 1.5 {
		t.Fatalf("ShardSpec mutated the parent spec: %v", spec.Flows[0].RateMpps)
	}
}

// TestCoresInvariantForDeterministicWorkload is the acceptance check:
// the deterministic software-paced CBR workload yields identical
// merged stats at any core count. ShardSpec splits the rate k ways and
// staggers the shards by one aggregate interval each, so the union of
// the shards' emission grids is exactly the single-core grid — NIC
// counters and per-flow sent counts match packet for packet.
func TestCoresInvariantForDeterministicWorkload(t *testing.T) {
	run := func(cores int) *scenario.Report {
		spec := scenario.Spec{
			Pattern: scenario.PatternSoftCBR, RateMpps: 2,
			Runtime: 10 * sim.Millisecond, Seed: 3, Cores: cores,
		}
		rep, err := scenario.Execute("softcbr", spec, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	one := run(1)
	// Fixed-seed pin: 2 Mpps over 10 ms = 20000 packets on the grid;
	// the last few deliveries are still on the wire at the window edge.
	if one.TxPackets != 20000 || one.RxPackets != 19996 {
		t.Errorf("1-core baseline moved: tx=%d rx=%d, want 20000/19996", one.TxPackets, one.RxPackets)
	}
	for _, cores := range []int{2, 4, 8} {
		k := run(cores)
		if k.TxPackets != one.TxPackets || k.TxBytes != one.TxBytes ||
			k.RxPackets != one.RxPackets || k.RxBytes != one.RxBytes {
			t.Errorf("cores=%d: tx=%d/%d rx=%d/%d, want 1-core tx=%d/%d rx=%d/%d",
				cores, k.TxPackets, k.TxBytes, k.RxPackets, k.RxBytes,
				one.TxPackets, one.TxBytes, one.RxPackets, one.RxBytes)
		}
		if len(k.Flows) != 1 || k.Flows[0].TxPackets != one.Flows[0].TxPackets {
			t.Errorf("cores=%d: flow tx=%v, want %d", cores, k.Flows, one.Flows[0].TxPackets)
		}
	}
}

// TestCoresInvariantNonTickExactRate: the invariance must also hold
// when the packet period is not an integer number of picoseconds
// (1/3 µs here) — the aggregate tick is rounded once and shard grids
// are integer multiples of it, not independently rounded.
func TestCoresInvariantNonTickExactRate(t *testing.T) {
	run := func(cores int) uint64 {
		spec := scenario.Spec{
			Pattern: scenario.PatternSoftCBR, RateMpps: 3,
			Runtime: 10 * sim.Millisecond, Seed: 3, Cores: cores,
		}
		rep, err := scenario.Execute("softcbr", spec, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TxPackets
	}
	one := run(1)
	for _, cores := range []int{2, 3, 4} {
		if k := run(cores); k != one {
			t.Errorf("cores=%d: tx=%d, want %d", cores, k, one)
		}
	}
}

// TestSingleCoreOnlyRejected: sweep-backed scenarios refuse to shard
// instead of merging their rows into nonsense.
func TestSingleCoreOnlyRejected(t *testing.T) {
	spec := scenario.Spec{Cores: 4, Runtime: 2 * sim.Millisecond, Probes: 10}
	if _, err := scenario.Execute("timestamps", spec, io.Discard); err == nil {
		t.Fatal("sharded run of a SingleCoreOnly scenario did not error")
	}
	spec = scenario.Spec{Cores: 2, RateMpps: 0.5, Runtime: 2 * sim.Millisecond, Samples: 1000}
	if _, err := scenario.Execute("interarrival-moongen", spec, io.Discard); err == nil {
		t.Fatal("sharded interarrival run did not error")
	}
	// Scenarios with ratio rows (percentages, averages) refuse too.
	for _, name := range []string{"imix", "reflect"} {
		spec := scenario.Spec{Cores: 2, Runtime: 2 * sim.Millisecond}
		if _, err := scenario.Execute(name, spec, io.Discard); err == nil {
			t.Fatalf("sharded %s run did not error", name)
		}
	}
}

// TestShardedDeterministic: a sharded run is reproducible even though
// the shards execute on racing goroutines.
func TestShardedDeterministic(t *testing.T) {
	run := func() string {
		spec := scenario.Spec{
			Pattern: scenario.PatternPoisson, RateMpps: 2,
			Runtime: 5 * sim.Millisecond, Seed: 11, Cores: 4,
		}
		rep, err := scenario.Execute("poisson", spec, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint(rep)
	}
	if a, b := run(), run(); a != b {
		t.Errorf("sharded run not deterministic:\n run1: %s\n run2: %s", a, b)
	}
}

// TestShardedFloodScales: at line rate each shard drives its own port
// pair, so Cores=4 moves ~4x the packets of Cores=1 — Figure 4's
// one-port-per-core scaling inside the scenario subsystem.
func TestShardedFloodScales(t *testing.T) {
	run := func(cores int) uint64 {
		spec := scenario.Spec{
			Pattern: scenario.PatternLineRate,
			Runtime: 5 * sim.Millisecond, Seed: 5, Cores: cores,
		}
		rep, err := scenario.Execute("flood", spec, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		return rep.TxPackets
	}
	one, four := run(1), run(4)
	ratio := float64(four) / float64(one)
	if ratio < 3.9 || ratio > 4.1 {
		t.Errorf("4-core flood = %d pkts, 1-core = %d (ratio %.2f, want ~4)", four, one, ratio)
	}
}

// TestShardedProbesMerge: the probe budget splits across shards and
// the merged latency histogram carries the union of the probes.
func TestShardedProbesMerge(t *testing.T) {
	spec := scenario.Spec{
		Pattern: scenario.PatternCBR, RateMpps: 1,
		Runtime: 10 * sim.Millisecond, Seed: 7, Probes: 40, Cores: 4,
	}
	rep, err := scenario.Execute("latency", spec, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Latency == nil {
		t.Fatal("no merged latency histogram")
	}
	got := rep.Latency.Count() + rep.LostProbes
	if got != 40 {
		t.Errorf("merged probes + lost = %d, want the full 40-probe budget", got)
	}
}

func TestMergeReports(t *testing.T) {
	h1 := stats.NewHistogram(64 * sim.Nanosecond)
	h1.Add(100 * sim.Nanosecond)
	h2 := stats.NewHistogram(64 * sim.Nanosecond)
	h2.Add(300 * sim.Nanosecond)
	a := &scenario.Report{
		Window: 10 * sim.Millisecond, TxPackets: 10, TxBytes: 600,
		RxPackets: 8, RxBytes: 480, Latency: h1,
		Flows: []scenario.FlowReport{{Name: "fg", TxPackets: 10, RxPackets: 8}},
		Rows:  []scenario.Row{{Label: "fillers", Value: 2, Unit: "packets"}},
		Notes: []string{"shared note"},
	}
	b := &scenario.Report{
		Window: 10 * sim.Millisecond, TxPackets: 20, TxBytes: 1200,
		RxPackets: 18, RxBytes: 1080, Latency: h2,
		Flows: []scenario.FlowReport{{Name: "fg", TxPackets: 20, RxPackets: 18}},
		Rows:  []scenario.Row{{Label: "fillers", Value: 3, Unit: "packets"}},
		Notes: []string{"shared note", "only in b"},
	}
	m := scenario.MergeReports([]*scenario.Report{a, b, nil})
	if m.TxPackets != 30 || m.RxPackets != 26 || m.Window != 10*sim.Millisecond {
		t.Fatalf("merged counters wrong: %+v", m)
	}
	if len(m.Flows) != 1 || m.Flows[0].TxPackets != 30 || m.Flows[0].RxPackets != 26 {
		t.Fatalf("merged flows wrong: %+v", m.Flows)
	}
	if len(m.Rows) != 1 || m.Rows[0].Value != 5 {
		t.Fatalf("merged rows wrong: %+v", m.Rows)
	}
	if m.Latency.Count() != 2 || m.Latency.Min() != 100*sim.Nanosecond || m.Latency.Max() != 300*sim.Nanosecond {
		t.Fatalf("merged latency wrong: count=%d", m.Latency.Count())
	}
	if len(m.Notes) != 2 {
		t.Fatalf("merged notes wrong: %v", m.Notes)
	}
	if m.RxMpps <= 0 || m.RxGbpsWire <= 0 {
		t.Fatalf("merged rates not recomputed: %v %v", m.RxMpps, m.RxGbpsWire)
	}
}

// TestWriteListSortedAlignedDeterministic covers the `moongen list`
// body: sorted names, a description on every line aligned past the
// longest name, and byte-identical output across calls.
func TestWriteListSortedAlignedDeterministic(t *testing.T) {
	var first, second strings.Builder
	scenario.WriteList(&first)
	scenario.WriteList(&second)
	if first.String() != second.String() {
		t.Fatal("list output not deterministic")
	}
	lines := strings.Split(strings.TrimRight(first.String(), "\n"), "\n")
	names := scenario.Names()
	if len(lines) != len(names) {
		t.Fatalf("%d lines for %d scenarios", len(lines), len(names))
	}
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	for i, line := range lines {
		if !strings.HasPrefix(line, "  "+names[i]) {
			t.Errorf("line %d = %q, want name %q (sorted order)", i, line, names[i])
		}
		desc := line[2+width:]
		if !strings.HasPrefix(desc, "  ") || strings.TrimSpace(desc) == "" {
			t.Errorf("line %d: description misaligned or missing: %q", i, line)
		}
	}
}
