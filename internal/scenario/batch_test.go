package scenario_test

import (
	"fmt"
	"io"
	"testing"

	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/scenario"
	"repro/internal/sim"
)

// TestBatchInvariantMergedStats is the acceptance property of the
// batched datapath: for the deterministic patterns, Spec.Batch only
// changes how packets are grouped on their way to the descriptor ring
// — every merged counter, flow count and report row is identical at
// Batch=1 (per-packet) and Batch=32, on one core and on four sharded
// cores.
func TestBatchInvariantMergedStats(t *testing.T) {
	for _, pattern := range []scenario.Pattern{scenario.PatternSoftCBR, scenario.PatternPoisson} {
		for _, cores := range []int{1, 4} {
			for _, seed := range []int64{1, 3} {
				name := string(pattern)
				t.Run(fmt.Sprintf("%s/cores=%d/seed=%d", name, cores, seed), func(t *testing.T) {
					run := func(batch int) string {
						spec := scenario.Spec{
							Pattern: pattern, RateMpps: 2,
							Runtime: 10 * sim.Millisecond, Seed: seed,
							Cores: cores, Batch: batch,
						}
						rep, err := scenario.Execute(name, spec, io.Discard)
						if err != nil {
							t.Fatal(err)
						}
						return fingerprint(rep)
					}
					one, many := run(1), run(32)
					if one != many {
						t.Errorf("batch=1 vs batch=32 reports differ:\n  1: %s\n 32: %s", one, many)
					}
				})
			}
		}
	}
}

// TestBatchInvariantDepartureTimestamps drives a scenario through its
// Env (single core, where the generator device is reachable) and pins
// the full departure-timestamp sequence within the window: Batch=1 and
// Batch=32 put every frame — real and CRC-gap filler — on the wire at
// the same instant.
func TestBatchInvariantDepartureTimestamps(t *testing.T) {
	for _, name := range []string{"softcbr", "poisson"} {
		t.Run(name, func(t *testing.T) {
			run := func(batch int) []sim.Time {
				sc, ok := scenario.Get(name)
				if !ok {
					t.Fatalf("scenario %q not registered", name)
				}
				spec := sc.DefaultSpec()
				spec.RateMpps = 2
				spec.Runtime = 5 * sim.Millisecond
				spec.Seed = 9
				spec.Batch = batch
				env := scenario.NewEnv(spec, io.Discard)
				var starts []sim.Time
				env.TX().SetTxTrace(func(q *nic.TxQueue, m *mempool.Mbuf, at sim.Time) {
					if at <= sim.Time(spec.Runtime) {
						starts = append(starts, at)
					}
				})
				if _, err := sc.Run(env); err != nil {
					t.Fatal(err)
				}
				return starts
			}
			one, many := run(1), run(32)
			if len(one) == 0 {
				t.Fatal("no departures traced")
			}
			if len(one) != len(many) {
				t.Fatalf("batch=1 emitted %d frames, batch=32 emitted %d", len(one), len(many))
			}
			for i := range one {
				if one[i] != many[i] {
					t.Fatalf("departure %d differs: %v vs %v", i, one[i], many[i])
				}
			}
		})
	}
}
