package scenario

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// This file holds the fault-driven scenarios: the robustness workloads
// built on internal/fault and the flow-tracked slot grid.
//
// linkflap runs a CBR stream through a periodically flapping wire: the
// fault plan is stated in global sim time, every shard applies it to
// its private testbed, and the dropped frames are exactly the global
// slots whose wire timing intersects a down window — so the merged
// per-flow loss and the fault telemetry columns are invariant in Cores
// and Batch.
//
// overload-recover ramps the offered rate above line rate and back on
// a time-varying slot grid (slot j's departure is a pure piecewise-
// linear function of j): the bufferless line-rate gate tail-drops the
// excess during the overload window, and the per-flow loss is split
// across the fault boundary — lost-during-fault (gate rejections in
// the window) versus lost-in-recovery (any remaining sequence gaps).

// linkFlapScenario: periodic link flap under constant-bit-rate load.
type linkFlapScenario struct{}

func (linkFlapScenario) Name() string { return "linkflap" }
func (linkFlapScenario) Describe() string {
	return "periodic link flap under CBR load: wire-boundary drops, per-flow loss, injector recovery telemetry"
}

func (linkFlapScenario) DefaultSpec() Spec {
	return Spec{
		Pattern:  PatternSoftCBR,
		RateMpps: 2,
		PktSize:  60,
		Runtime:  20 * sim.Millisecond,
		Flows:    FlowSet(4),
		// One 1.5 ms down window every 5 ms, starting mid-run. The
		// onsets sit 2.5 ms into each period so they never coincide
		// with the 1 ms telemetry window edges, and at the default
		// 2 Mpps grid every frame's delivery instant keeps > 100 ns of
		// margin to a flap edge — more than the copper PHY's ±32 ns
		// jitter range, so the dropped-frame set is exact at any core
		// count and batch size.
		Faults: fault.Plan{{
			Kind:     fault.LinkFlap,
			At:       2500 * sim.Microsecond,
			Duration: 1500 * sim.Microsecond,
			Period:   5 * sim.Millisecond,
		}},
	}
}

func (linkFlapScenario) Run(env *Env) (*Report, error) {
	tr := flow.NewTracker(flow.Config{Latency: true})
	res, err := launchFlowTx(env, flowTxConfig{})
	if err != nil {
		return nil, err
	}
	sink := env.LaunchFlowSink(tr)

	rep := &Report{}
	env.RunAndCollect(rep)
	collectFlows(rep, env.Spec, res, tr)
	// Every linkflap loss happens at the down wire — the link resumes
	// cleanly and the CBR grid never exceeds line rate, so there is
	// nothing left to lose in recovery. Attribute the whole split
	// explicitly so the report shows it and the merge pins it.
	for fi := range rep.Flows {
		rep.Flows[fi].LostDuringFault = rep.Flows[fi].Lost
	}
	rep.AddRow("rx frames attributed", float64(sink.Received), "packets")
	link := env.TX().Link()
	rep.AddRow("frames dropped at the down wire", float64(link.DroppedFrames), "packets")
	if inj := env.FaultInjector(); inj != nil {
		// Lifecycle facts are identical in every shard (the plan is
		// global), so they travel as a note — merged rows sum, which
		// is right for traffic counters and wrong for plan properties.
		rep.Notes = append(rep.Notes, fmt.Sprintf(
			"fault plan: %d link-flap onsets per shard, longest window %.1f ms, final state %s",
			inj.Fired(), float64(inj.MaxRecoveryNS())/1e6, inj.State()))
	}
	return rep, nil
}

// overloadRecoverScenario: offered rate ramps above line rate and back.
type overloadRecoverScenario struct{}

func (overloadRecoverScenario) Name() string { return "overload-recover" }
func (overloadRecoverScenario) Describe() string {
	return "rate ramp above line rate and back: tail drop in the overload window, per-flow loss split across the fault boundary"
}

func (overloadRecoverScenario) DefaultSpec() Spec {
	return Spec{
		Pattern:  PatternSoftCBR, // sharded on the softcbr grid
		RateMpps: 20,             // peak rate; the base rate is half of it
		PktSize:  60,
		Runtime:  20 * sim.Millisecond,
		Flows:    FlowSet(4),
	}
}

func (overloadRecoverScenario) Run(env *Env) (*Report, error) {
	spec := env.Spec
	tick, _, _, _, _, err := slotGrid(spec)
	if err != nil {
		return nil, err
	}
	flows := spec.EffectiveFlows()
	size := spec.FlowSize(flows[0])
	frameWire := wire.FrameTime(env.TX().Speed(), size+proto.FCSLen)

	// The ramp profile: base rate (2× slot spacing) for the first 2/5
	// of the run, peak rate for the middle 1/5, base rate again to the
	// end. Slot j's departure time is a pure piecewise-linear function
	// of the global slot index, so every shard computes the identical
	// grid and the overload window covers the identical slot range at
	// any core count.
	loTick := 2 * tick
	if loTick < frameWire {
		return nil, fmt.Errorf("overload-recover: base rate %.2f Mpps exceeds line rate — halve the peak rate",
			1e6/float64(loTick.Nanoseconds())*1e-6*1e6)
	}
	n1 := uint64(spec.Runtime * 2 / 5 / loTick)
	nov := uint64(spec.Runtime / 5 / tick)
	n2 := n1 + nov
	t1 := sim.Duration(n1) * loTick
	t2 := t1 + sim.Duration(nov)*tick
	slotTime := func(j uint64) sim.Duration {
		switch {
		case j < n1:
			return sim.Duration(j) * loTick
		case j < n2:
			return t1 + sim.Duration(j-n1)*tick
		default:
			return t2 + sim.Duration(j-n2)*loTick
		}
	}
	// The overload window's bufferless line-rate gate, anchored at the
	// window start (the wire is idle there: the base-rate phase leaves
	// more than a frame time of slack per slot).
	gate := admission{tick: int64(tick), frameWire: int64(frameWire)}
	admit := func(j uint64) bool {
		if j < n1 || j >= n2 {
			return true
		}
		return gate.admitted(j - n1)
	}

	tr := flow.NewTracker(flow.Config{Latency: true})
	res, err := launchFlowTx(env, flowTxConfig{admit: admit, slotTime: slotTime})
	if err != nil {
		return nil, err
	}
	sink := env.LaunchFlowSink(tr)

	rep := &Report{}
	env.RunAndCollect(rep)
	collectFlows(rep, spec, res, tr)

	// Split each flow's loss across the fault boundary: gate
	// rejections are the during-fault share (known exactly on the TX
	// side — the gate is a pure function of the slot index), and any
	// remaining receiver-side sequence gaps are losses in recovery.
	var during, recovery uint64
	for fi := range rep.Flows {
		fr := &rep.Flows[fi]
		d := res.overload[fi]
		if fr.Lost < d {
			// A gate rejection only becomes a visible gap once a later
			// packet of the flow arrives; with the recovery phase after
			// the window this is the end-of-run tail at most.
			d = fr.Lost
		}
		fr.LostDuringFault = d
		fr.LostInRecovery = fr.Lost - d
		during += fr.LostDuringFault
		recovery += fr.LostInRecovery
	}
	rep.AddRow("slots tail-dropped in the overload window", float64(during), "slots")
	rep.AddRow("sequence gaps in recovery", float64(recovery), "packets")
	rep.AddRow("rx frames attributed", float64(sink.Received), "packets")
	rep.Notes = append(rep.Notes,
		"ramp model: base rate 2/5 of the run, peak rate 1/5, base rate to the end; slot departures are a pure function of the global slot index")
	return rep, nil
}

func init() {
	Register(linkFlapScenario{})
	Register(overloadRecoverScenario{})
}
