package scenario

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

var (
	regMu    sync.RWMutex
	registry = map[string]Scenario{}
)

// Register adds a scenario to the global registry. Registering a
// duplicate name panics: two workloads silently shadowing each other is
// a packaging bug.
func Register(s Scenario) {
	regMu.Lock()
	defer regMu.Unlock()
	name := s.Name()
	if name == "" {
		panic("scenario: Register with empty name")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("scenario: duplicate registration of %q", name))
	}
	registry[name] = s
}

// Get looks a scenario up by name.
func Get(name string) (Scenario, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	s, ok := registry[name]
	return s, ok
}

// Names returns all registered scenario names, sorted.
func Names() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// WriteList prints one "name  description" line per registered
// scenario, sorted by name with the description column aligned past
// the longest name — the body of `moongen list`. The output is
// deterministic: same registry, same bytes.
func WriteList(w io.Writer) {
	names := Names()
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range names {
		s, _ := Get(n)
		fmt.Fprintf(w, "  %-*s  %s\n", width, n, s.Describe())
	}
}

// Execute runs the named scenario with the given spec. Zero-valued
// spec fields fall back to scenario-independent defaults (60 B frames,
// 50 ms runtime, seed 1); pass sc.DefaultSpec() for the scenario's own
// canonical configuration. Output that scenarios stream while running
// (per-window counters) goes to out; the returned Report is the final
// result. With Spec.Cores > 1 the scenario runs sharded — one engine
// per modeled core on its own goroutine — and the report is the merge
// of the per-shard reports (see Spec.Cores).
func Execute(name string, spec Spec, out io.Writer) (*Report, error) {
	sc, ok := Get(name)
	if !ok {
		return nil, fmt.Errorf("scenario: unknown scenario %q (have %v)", name, Names())
	}
	// Fault plans are validated fail-closed before anything runs: a
	// malformed plan (or one whose targets the topology cannot
	// provide) must never degrade into a partially injected run.
	if len(spec.Faults) > 0 {
		if err := spec.Faults.Validate(); err != nil {
			return nil, fmt.Errorf("scenario %s: %w", name, err)
		}
		if spec.Faults.RequiresDuT() && !spec.UseDuT {
			return nil, fmt.Errorf("scenario %s: fault plan contains dut-stall events but the topology has no DuT", name)
		}
	}
	var (
		rep *Report
		err error
	)
	if spec.Cores > 1 {
		if sco, ok := sc.(SingleCoreOnly); ok {
			return nil, fmt.Errorf("scenario %s: cannot run with cores=%d: %s", name, spec.Cores, sco.SingleCoreOnly())
		}
		rep, err = executeSharded(sc, spec, out)
	} else {
		rep, err = sc.Run(NewEnv(spec, out))
	}
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	rep.Scenario = name
	return rep, nil
}
