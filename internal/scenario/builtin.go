package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/proto"
	"repro/internal/rate"
	"repro/internal/sim"
	"repro/internal/wire"
)

// softCBR carries the software-paced CBR task's transmit count across
// the launch/finish boundary.
type softCBR struct{ sent uint64 }

// loadScenario is the family of single-flow load generators that made
// up the old cmd/moongen switch: the pattern (line rate, hardware CBR,
// Poisson or bursts via CRC-gap pacing) and optional latency probing
// come from the Spec; the testbed comes from the Env.
type loadScenario struct {
	name string
	desc string
	spec Spec
}

func (l *loadScenario) Name() string      { return l.name }
func (l *loadScenario) Describe() string  { return l.desc }
func (l *loadScenario) DefaultSpec() Spec { return l.spec }

func (l *loadScenario) Run(env *Env) (*Report, error) {
	finish, err := LaunchLoad(env)
	if err != nil {
		return nil, err
	}
	env.DrainRx()
	rep := &Report{}
	env.LaunchProbes(rep)
	env.RunAndCollect(rep)
	finish(rep)
	env.CollectDuT(rep)
	return rep, nil
}

// LaunchLoad starts the spec's load task for its first flow: the
// common transmit half of every load scenario. The returned finish
// function appends the task's transmit-side results (per-flow sent
// counts, CRC-gap filler statistics) to a report once the run is over.
func LaunchLoad(env *Env) (finish func(*Report), err error) {
	spec := env.Spec
	flow := spec.EffectiveFlows()[0]
	size := spec.FlowSize(flow)
	q := env.TX().GetTxQueue(0)
	fill := env.FlowFill(flow, size)

	pps := spec.RateMpps * 1e6
	switch spec.Pattern {
	case PatternLineRate:
		pool := env.NewFlowPool(flow, size, 4096)
		flood := &core.UDPFlood{
			Queue: q, PktSize: size,
			BaseIP: flow.SrcIP, Randomize: flow.SrcIPCount,
			Pool: pool, Batch: spec.Batch,
		}
		if pps > 0 {
			q.SetRatePPS(pps)
		}
		env.App().LaunchTask("flood", flood.Run)
		finish = func(rep *Report) {
			rep.Flows = append(rep.Flows, FlowReport{Name: flow.Name, TxPackets: flood.Sent})
		}
	case PatternCBR:
		if pps <= 0 {
			return nil, fmt.Errorf("pattern %s needs a rate (got %v)", spec.Pattern, spec)
		}
		h := &core.HWRateTx{Queue: q, PPS: pps, PktSize: size, Fill: fill, Delay: spec.TxPhase, Batch: spec.Batch}
		env.App().LaunchTask("cbr", h.Run)
		finish = func(rep *Report) {
			rep.Flows = append(rep.Flows, FlowReport{Name: flow.Name, TxPackets: h.Sent})
		}
	case PatternSoftCBR:
		if pps <= 0 {
			return nil, fmt.Errorf("pattern %s needs a rate (got %v)", spec.Pattern, spec)
		}
		interval := spec.TxInterval
		if interval <= 0 {
			interval = sim.FromSeconds(1 / pps)
		}
		pool := env.NewFlowPool(flow, size, 4096)
		soft := &softCBR{}
		phase := spec.TxPhase
		env.App().LaunchTask("softcbr", func(t *core.Task) {
			// Packets leave on an exact grid: first at start+TxPhase,
			// then every interval. k shards at rate/k with phases
			// 0..k-1 times the aggregate interval interleave onto the
			// aggregate grid exactly, so merged counts are invariant
			// in the shard count.
			next := t.Now().Add(phase)
			var i uint64
			for t.Running() {
				t.SleepUntil(next)
				if !t.Running() {
					break
				}
				next = next.Add(interval)
				m := pool.Alloc(size)
				if m == nil {
					continue // overload: drop the slot
				}
				fill(m, i)
				if !q.SendOne(m) {
					m.Free()
					continue
				}
				soft.sent++
				i++
			}
		})
		finish = func(rep *Report) {
			rep.Flows = append(rep.Flows, FlowReport{Name: flow.Name, TxPackets: soft.sent})
		}
	case PatternPoisson, PatternBursts:
		if pps <= 0 {
			return nil, fmt.Errorf("pattern %s needs a rate (got %v)", spec.Pattern, spec)
		}
		var pat rate.Pattern = rate.NewPoissonPPS(pps)
		if spec.Pattern == PatternBursts {
			b2b := wire.FrameTime(q.Port().Speed(), size+proto.FCSLen)
			pat = &rate.Bursts{Size: spec.Burst, AvgInterval: sim.FromSeconds(1 / pps), BackToBack: b2b}
		}
		g := &core.GapTx{Queue: q, Pattern: pat, PktSize: size, Fill: fill, Batch: spec.Batch}
		env.App().LaunchTask(string(spec.Pattern), g.Run)
		finish = func(rep *Report) {
			rep.Flows = append(rep.Flows, FlowReport{Name: flow.Name, TxPackets: g.Sent})
			rep.AddRow("crc-gap filler frames", float64(g.Fillers), "packets")
			rep.AddRow("gaps folded into debt (§8.4)", float64(g.SkippedGaps), "gaps")
		}
	default:
		return nil, fmt.Errorf("unknown pattern %q", spec.Pattern)
	}
	return finish, nil
}

func init() {
	Register(&loadScenario{
		name: "flood",
		desc: "line-rate UDP flood with randomized source IPs (Listing 2)",
		spec: Spec{Pattern: PatternLineRate},
	})
	Register(&loadScenario{
		name: "cbr",
		desc: "hardware-rate-controlled CBR stream (§7.2)",
		spec: Spec{Pattern: PatternCBR, RateMpps: 1},
	})
	Register(&loadScenario{
		name: "poisson",
		desc: "Poisson traffic via CRC-gap software rate control (§8)",
		spec: Spec{Pattern: PatternPoisson, RateMpps: 1},
	})
	Register(&loadScenario{
		name: "bursts",
		desc: "bursty traffic with back-to-back groups (l2-bursts.lua)",
		spec: Spec{Pattern: PatternBursts, RateMpps: 1, Burst: 16},
	})
	Register(&loadScenario{
		name: "softcbr",
		desc: "software-paced exact CBR on a deterministic grid (multicore reference)",
		spec: Spec{Pattern: PatternSoftCBR, RateMpps: 1},
	})
	Register(&loadScenario{
		name: "latency",
		desc: "CBR load plus hardware-timestamped latency probes (§6)",
		spec: Spec{Pattern: PatternCBR, RateMpps: 1, Probes: 500},
	})
}
