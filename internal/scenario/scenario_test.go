package scenario_test

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"

	// Registers the experiment-backed scenarios so the registry tests
	// cover everything `moongen list` shows.
	_ "repro/internal/experiments"
)

// testSpec shrinks a scenario's default spec to test scale without
// changing its character.
func testSpec(sc scenario.Scenario) scenario.Spec {
	spec := sc.DefaultSpec()
	spec.Seed = 7
	spec.Runtime = 2 * sim.Millisecond
	if spec.Steps > 1 {
		spec.Runtime = sim.Duration(spec.Steps) * sim.Millisecond
	}
	if spec.Probes > 40 {
		spec.Probes = 40
	}
	if spec.Samples > 2000 || spec.Samples == 0 {
		spec.Samples = 2000
	}
	return spec
}

// fingerprint reduces a report to the deterministic counters the
// determinism test compares across runs.
func fingerprint(r *scenario.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tx=%d/%d rx=%d/%d crc=%d missed=%d",
		r.TxPackets, r.TxBytes, r.RxPackets, r.RxBytes, r.RxCRCErrors, r.RxMissed)
	if r.Latency != nil {
		q1, q2, q3 := r.Latency.Quartiles()
		fmt.Fprintf(&b, " lat=%d/%v/%v/%v lost=%d", r.Latency.Count(), q1, q2, q3, r.LostProbes)
	}
	for _, f := range r.Flows {
		fmt.Fprintf(&b, " flow[%s]=%d/%d", f.Name, f.TxPackets, f.RxPackets)
		if f.Lost != 0 || f.Reordered != 0 || f.Duplicates != 0 {
			fmt.Fprintf(&b, " lost=%d reord=%d dup=%d", f.Lost, f.Reordered, f.Duplicates)
		}
		if f.Latency != nil {
			fmt.Fprintf(&b, "/%d", f.Latency.Count())
		}
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, " %s=%g%s", row.Label, row.Value, row.Unit)
	}
	return b.String()
}

// TestRegistryEnumeration checks that the registry holds the full
// scenario set — the five ported cmd/moongen scenarios, the three new
// ones, and the experiment-backed wrappers — and that the `moongen
// list` body mentions every one.
func TestRegistryEnumeration(t *testing.T) {
	names := scenario.Names()
	if len(names) < 8 {
		t.Fatalf("registry has %d scenarios (%v), want >= 8", len(names), names)
	}
	for _, want := range []string{
		"flood", "cbr", "poisson", "bursts", "latency", // ported
		"imix", "qos", "reflect", // new in this refactor
		"interarrival-moongen", "interarrival-pktgen", "interarrival-zsend", "timestamps", // experiment-backed
	} {
		if _, ok := scenario.Get(want); !ok {
			t.Errorf("scenario %q not registered (have %v)", want, names)
		}
	}
	var list strings.Builder
	scenario.WriteList(&list)
	for _, n := range names {
		if !strings.Contains(list.String(), n) {
			t.Errorf("list output does not mention %q:\n%s", n, list.String())
		}
	}
}

// TestScenariosDeterministic runs every registered scenario twice with
// the same seed and requires identical packet/byte counts, per-flow
// slices and result rows — the reproducibility contract of the
// simulated testbed.
func TestScenariosDeterministic(t *testing.T) {
	for _, name := range scenario.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			sc, _ := scenario.Get(name)
			spec := testSpec(sc)
			first, err := scenario.Execute(name, spec, io.Discard)
			if err != nil {
				t.Fatalf("run 1: %v", err)
			}
			second, err := scenario.Execute(name, spec, io.Discard)
			if err != nil {
				t.Fatalf("run 2: %v", err)
			}
			f1, f2 := fingerprint(first), fingerprint(second)
			if f1 != f2 {
				t.Errorf("non-deterministic for seed %d:\n run1: %s\n run2: %s", spec.Seed, f1, f2)
			}
			if first.TxPackets == 0 && first.RxPackets == 0 && len(first.Rows) == 0 {
				t.Errorf("report is empty: %s", f1)
			}
		})
	}
}

// TestExecuteUnknown checks the error path the CLI relies on.
func TestExecuteUnknown(t *testing.T) {
	if _, err := scenario.Execute("no-such-scenario", scenario.Spec{}, io.Discard); err == nil {
		t.Fatal("Execute of unknown scenario did not error")
	}
}

// TestDefaultSpecsRunnable checks that every DefaultSpec is internally
// consistent (patterns needing rates declare one, flows are well
// formed) by validating the spec the scenario itself advertises.
func TestDefaultSpecsRunnable(t *testing.T) {
	for _, name := range scenario.Names() {
		sc, _ := scenario.Get(name)
		spec := sc.DefaultSpec()
		switch spec.Pattern {
		case scenario.PatternCBR, scenario.PatternSoftCBR, scenario.PatternPoisson, scenario.PatternBursts:
			hasRate := spec.RateMpps > 0
			for _, f := range spec.Flows {
				hasRate = hasRate || f.RateMpps > 0
			}
			if !hasRate {
				t.Errorf("%s: pattern %s with no rate anywhere", name, spec.Pattern)
			}
		}
	}
}
