package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/mempool"
	"repro/internal/proto"
	"repro/internal/sim"
)

// churnScenario exercises the tracker's million-flow table with a
// deterministic arrival/departure process: a working set of W live
// flows, each living for exactly R packets, with every departure
// immediately replaced by a fresh flow (a never-before-seen 5-tuple).
// The aggregate stream therefore ramps through slots/R distinct flows
// over a run — the scenario the flat open-addressing table exists for,
// where a map-based tracker would allocate and GC-scan per flow.
//
// Like the other flow-tracked scenarios everything is a pure function
// of the global slot index j on the softcbr grid:
//
//	gen  = j / (W·R)        — the generation (one full working set)
//	loc  = j % (W·R)        — position within the generation
//	fid  = gen·W + loc%W    — the flow's global id (never reused)
//	seq  = loc / W          — the flow-local sequence number, 0..R-1
//
// fid ≡ j (mod W), so when the shard count k divides W every flow
// lives wholly in one shard (shard i owns slots j ≡ i mod k), and the
// merged per-flow tracking equals the single-core run's at any batch
// size — the same invariance contract as loss-overload and reorder.
//
// The 5-tuple encodes fid losslessly: DstPort carries the low 16 bits
// and the destination address offsets by the high bits, so up to 2^32
// flows have distinct keys. Flows send their R packets in sequence
// order with no gaps, so a clean run reports zero lost/reordered/
// duplicate packets — any nonzero count is a tracker defect, which is
// what makes the scenario a useful million-flow acceptance harness.
type churnScenario struct{}

func (churnScenario) Name() string { return "churn" }
func (churnScenario) Describe() string {
	return "flow churn: W live flows, R-packet lifetimes, fresh 5-tuple per arrival — million-flow tracker workload"
}

func (churnScenario) DefaultSpec() Spec {
	return Spec{
		Pattern:    PatternSoftCBR,
		RateMpps:   10,
		PktSize:    60,
		Runtime:    50 * sim.Millisecond,
		ChurnFlows: 1024,
		ChurnLife:  4,
	}
}

func (churnScenario) Run(env *Env) (*Report, error) {
	spec := env.Spec
	if spec.UseDuT {
		return nil, fmt.Errorf("churn needs the direct duplex testbed, not the DuT path")
	}
	W := spec.ChurnFlows
	if W <= 0 {
		W = 1024
	}
	R := spec.ChurnLife
	if R <= 0 {
		R = 4
	}
	if spec.ShardCount > 1 && W%spec.ShardCount != 0 {
		return nil, fmt.Errorf("churn: cores (%d) must divide the working set (%d) so every flow lives in one shard", spec.ShardCount, W)
	}
	size := spec.PktSize
	if size < proto.EthHdrLen+proto.IPv4HdrLen+proto.UDPHdrLen+flow.StampLen {
		return nil, fmt.Errorf("churn: frame size %d cannot carry the %d-byte sequence stamp", size, flow.StampLen)
	}
	_, interval, phase, index, stride, err := slotGrid(spec)
	if err != nil {
		return nil, err
	}

	// One template and one pool serve every flow: the per-packet work
	// is two incremental header patches (dst addr/port encode the flow
	// id) plus the header copy and sequence stamp. Per-flow pools are
	// impossible at this flow count, which is rather the point.
	base := Flow{
		Name:  "churn",
		L4:    "udp",
		SrcIP: proto.MustIPv4("10.0.0.1"),
		DstIP: proto.MustIPv4("10.1.0.1"),
		// Base ports; DstPort is repatched per packet.
		SrcPort: 1234,
		DstPort: 0,
	}
	tmpl := env.FlowTemplate(base, size)
	pool := core.CreateSizedMemPool(4096, size, func(m *mempool.Mbuf) {
		m.Len = size
		tmpl.Apply(m.Payload())
	})
	const payloadOff = proto.EthHdrLen + proto.IPv4HdrLen + proto.UDPHdrLen

	tr := flow.NewTracker(flow.Config{SeqWindow: 64})
	var started, errs uint64
	q := env.TX().GetTxQueue(0)

	env.App().LaunchTask("churn-tx", func(t *core.Task) {
		WR := uint64(W) * uint64(R)
		next := t.Now().Add(phase)
		var n uint64
		for t.Running() {
			t.SleepUntil(next)
			if !t.Running() {
				break
			}
			j := uint64(index) + n*uint64(stride)
			n++
			next = next.Add(interval)
			gen, loc := j/WR, j%WR
			fid := gen*uint64(W) + loc%uint64(W)
			seq := loc / uint64(W)
			if seq == 0 {
				started++
			}
			m := pool.Alloc(size)
			if m == nil {
				errs++
				continue
			}
			tmpl.SetIPDst(base.DstIP + proto.IPv4(fid>>16))
			tmpl.SetDstPort(uint16(fid))
			tmpl.Apply(m.Payload())
			flow.Stamp(m.Payload()[payloadOff:], seq, t.Now())
			if !q.SendOne(m) {
				m.Free()
				errs++
			}
		}
	})
	sink := env.LaunchFlowSink(tr)

	rep := &Report{}
	env.RunAndCollect(rep)
	tot := tr.Totals()
	rep.AddRow("flows started (tx)", float64(started), "flows")
	rep.AddRow("flows tracked (rx)", float64(tr.NumFlows()), "flows")
	rep.AddRow("flows with traffic (rx)", float64(tr.ActiveFlows()), "flows")
	rep.AddRow("rx frames attributed", float64(sink.Received), "packets")
	rep.AddRow("seq lost", float64(tot.Lost), "packets")
	rep.AddRow("seq reordered", float64(tot.Reordered), "packets")
	rep.AddRow("seq duplicates", float64(tot.Duplicates), "packets")
	if errs > 0 {
		rep.AddRow("tx slots lost to pool/ring pressure", float64(errs), "slots")
	}
	// Diagnostic, not a model row: sharded runs sum k quarter-sized
	// tables whose capacities round up independently (power-of-two
	// slots, 4096-record chunks), so the byte count legitimately
	// varies with the core count. The invariance pin excludes it.
	rep.AddRow("tracker footprint (diag)", float64(tr.FootprintBytes()), "bytes")
	rep.Notes = append(rep.Notes, fmt.Sprintf(
		"churn model: %d live flows × %d-packet lifetimes, fresh 5-tuple per arrival (pure function of the slot index)", W, R))
	return rep, nil
}

func init() {
	Register(churnScenario{})
}
