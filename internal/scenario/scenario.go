// Package scenario is the registry-driven traffic-scenario subsystem —
// the Go analogue of MoonGen's userscripts. The paper's core pitch is
// that arbitrary traffic scenarios are small scripts on top of one fast
// datapath; here a scenario is a type implementing Scenario, configured
// by a declarative Spec, running against a shared testbed Env that
// handles the boilerplate every script used to duplicate (engine,
// ports, duplex link, optional DuT, mempools, stats reporters).
//
// Scenarios self-register in a global registry (Register, usually from
// init). cmd/moongen, the examples and the tests all drive scenarios
// through Execute, so adding a workload is one new file that registers
// one new type.
package scenario

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// Pattern selects the inter-departure process of a load scenario.
type Pattern string

// The canonical patterns. LineRate floods the queue unshaped; CBR uses
// the hardware shaper (§7.2); Poisson and Bursts use the paper's
// CRC-gap software rate control (§8); SoftCBR pushes packets on an
// exact software-timed grid with no modeled hardware imprecision — the
// fully deterministic reference stream the multicore invariance checks
// are stated against.
const (
	PatternLineRate Pattern = "linerate"
	PatternCBR      Pattern = "cbr"
	PatternPoisson  Pattern = "poisson"
	PatternBursts   Pattern = "bursts"
	PatternSoftCBR  Pattern = "softcbr"
)

// Flow describes one traffic flow declaratively: L3/L4 protocol,
// address ranges, ports and an optional per-flow rate.
type Flow struct {
	// Name labels the flow in reports ("fg", "bg", ...).
	Name string
	// L4 is the transport: "udp" (default) or "tcp".
	L4 string
	// SrcIP is the base source address; SrcIPCount > 1 randomizes the
	// low bits over that many addresses (Listing 2's 256-address
	// randomization).
	SrcIP      proto.IPv4
	SrcIPCount int
	DstIP      proto.IPv4
	SrcPort    uint16
	DstPort    uint16
	// RateMpps is the flow's hardware-shaped rate; 0 inherits the
	// scenario rate (or line rate).
	RateMpps float64
	// PktSize overrides the spec frame size for this flow (without FCS).
	PktSize int
	// TOS marks the IPv4 TOS/DSCP byte (QoS scenarios).
	TOS uint8
}

// SizeShare is one component of a frame-size mix.
type SizeShare struct {
	// Size is the frame size without FCS.
	Size int
	// Weight is the relative share of packets at this size.
	Weight int
}

// IMIXMix is the classic simple-IMIX distribution (7:4:1 at 64, 594 and
// 1518 bytes on the wire — sizes here exclude the 4-byte FCS).
var IMIXMix = []SizeShare{{Size: 60, Weight: 7}, {Size: 590, Weight: 4}, {Size: 1514, Weight: 1}}

// Spec is the declarative scenario configuration: what cmd/moongen
// exposes as flags and what DefaultSpec pre-populates per scenario.
type Spec struct {
	// RateMpps is the aggregate target rate; 0 means line rate where
	// applicable.
	RateMpps float64
	// PktSize is the frame size without FCS (default 60 = 64 on wire).
	PktSize int
	// Mix, when non-empty, draws per-packet sizes from this weighted
	// mix instead of using the fixed PktSize.
	Mix []SizeShare
	// Pattern is the inter-departure process.
	Pattern Pattern
	// Burst is the burst size for PatternBursts.
	Burst int
	// Batch is the TX-loop burst size: how many packets move through
	// the batched datapath (mempool cache → BufArray → descriptor
	// ring) as one unit of work. Default 32; 1 reproduces per-packet
	// processing. The emission schedule is invariant in Batch — the
	// knob trades host-side event overhead, never timing. Patterns
	// that pace one packet per grid tick (softcbr) ignore it.
	Batch int
	// Runtime is the simulated run time.
	Runtime sim.Duration
	// Seed seeds the simulation; equal seeds reproduce runs exactly.
	Seed int64
	// Probes is the number of hardware-timestamped latency probes for
	// latency-measuring scenarios (0 = no probing).
	Probes int
	// Samples is the sample count for distribution measurements
	// (inter-arrival histograms).
	Samples int
	// Steps is the number of sweep points for sweeping scenarios.
	Steps int
	// Flows declares the traffic flows; empty means one default flow.
	Flows []Flow
	// Cores is the number of modeled cores. Above 1 the scenario runs
	// as that many independent deterministic engine shards on real
	// goroutines — one testbed (port pair, mempools, tasks) per core,
	// the paper's §5 execution model — and the per-shard reports are
	// merged. Rate budgets (RateMpps, per-flow rates) and probe/sample
	// budgets are split across shards, so for deterministic patterns
	// the merged transmit totals are invariant in Cores. Intended for
	// the load scenarios; additive report rows are summed on merge.
	Cores int
	// TxPhase delays the transmit start. ShardSpec sets it so that k
	// hardware-shaped queues at rate/k interleave onto the exact
	// emission grid of one queue at the full rate, which is what makes
	// merged CBR totals invariant in Cores.
	TxPhase sim.Duration
	// TxInterval is the explicit software-paced grid tick for the
	// softcbr pattern; 0 derives it from RateMpps. ShardSpec sets it
	// to k times the aggregate tick (rounded once to a picosecond), so
	// shard grids compose to the single-core grid exactly even at
	// rates whose period is not an integer number of picoseconds.
	TxInterval sim.Duration
	// ShardIndex/ShardCount identify this spec's slice of a sharded
	// run (set by ShardSpec; 0/1 for unsharded runs). Grid-based
	// scenarios use them to recover the global slot index — shard i of
	// k owns slots j ≡ i (mod k) — so decisions stated per global slot
	// (overload admission, flow assignment) are identical at any core
	// count.
	ShardIndex int
	ShardCount int
	// ChurnFlows is the churn scenario's live-flow working set: the
	// number of concurrently active flows in each generation. Shard
	// counts must divide it so generations partition evenly.
	ChurnFlows int
	// ChurnLife is the churn scenario's flow lifetime in packets: a
	// flow departs after sending this many and its slot is taken by a
	// fresh flow (a new 5-tuple) in the next generation.
	ChurnLife int
	// UseDuT routes traffic through the simulated Open vSwitch
	// forwarder (generator → DuT → sink) instead of a direct cable.
	UseDuT bool
	// TelemetryInterval, when > 0, enables the telemetry recorder on
	// the Env testbed: windowed counter snapshots every interval of
	// simulated time, returned in Report.Telemetry. Intervals that
	// divide Runtime give exactly Runtime/interval windows. See
	// internal/telemetry for the determinism contract.
	TelemetryInterval sim.Duration
	// TelemetryStream, when set alongside TelemetryInterval, receives
	// every telemetry row as it is recorded (live streaming for long
	// soaks). Sharded runs ignore it — per-shard rows are partial;
	// the merged series in Report.Telemetry is the run's output.
	TelemetryStream io.Writer
	// TelemetryJSONL switches the stream to JSONL.
	TelemetryJSONL bool
	// TelemetryDiag includes diagnostic columns (engine internals,
	// pool occupancy) in the stream. Diagnostic values vary with Batch
	// and Cores by design; the default stream carries only model
	// columns, which are invariant.
	TelemetryDiag bool
	// Faults is the deterministic fault plan injected into the run
	// (link flaps, DuT stalls, queue pauses, clock steps — see
	// internal/fault). The plan is stated in global sim time, so a
	// sharded run applies the identical plan to every shard's private
	// testbed: fault events are global, which is what keeps the merged
	// model telemetry invariant in Cores. Execute validates the plan
	// fail-closed before the run starts.
	Faults fault.Plan
}

// withDefaults fills the zero fields every scenario relies on.
func (s Spec) withDefaults() Spec {
	if s.PktSize <= 0 {
		s.PktSize = 60
	}
	if s.Runtime <= 0 {
		s.Runtime = 50 * sim.Millisecond
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Pattern == "" {
		s.Pattern = PatternLineRate
	}
	if s.Burst <= 0 {
		s.Burst = 16
	}
	if s.Batch <= 0 {
		s.Batch = core.DefaultTxBatch
	}
	if s.Cores < 1 {
		s.Cores = 1
	}
	if s.ShardCount < 1 {
		s.ShardCount = 1
	}
	return s
}

// DefaultFlow is the flow used when a Spec declares none: the plain
// UDP stream of the paper's Listing 2.
func DefaultFlow() Flow {
	return Flow{
		Name:       "flow0",
		L4:         "udp",
		SrcIP:      proto.MustIPv4("10.0.0.1"),
		SrcIPCount: 256,
		DstIP:      proto.MustIPv4("10.1.0.1"),
		SrcPort:    1234,
		DstPort:    5678,
	}
}

// EffectiveFlows returns the spec's flows, defaulting to the single
// canonical flow.
func (s Spec) EffectiveFlows() []Flow {
	if len(s.Flows) > 0 {
		return s.Flows
	}
	return []Flow{DefaultFlow()}
}

// SingleCoreOnly marks scenarios that must not be sharded with
// Spec.Cores > 1 — typically wrappers that sweep parameters
// internally, whose per-step rows would be meaninglessly summed by the
// report merge. Execute rejects Cores > 1 for them with the returned
// reason instead of printing silently wrong numbers.
type SingleCoreOnly interface {
	SingleCoreOnly() string
}

// Scenario is one runnable traffic scenario. Implementations register
// themselves with Register and receive a fully built Env in Run.
type Scenario interface {
	// Name is the registry key (what `moongen <name>` selects).
	Name() string
	// Describe is the one-line help text for `moongen list`.
	Describe() string
	// DefaultSpec returns the scenario's canonical configuration.
	DefaultSpec() Spec
	// Run executes the scenario to completion and returns its report.
	Run(env *Env) (*Report, error)
}

// Row is one scenario-specific result line (a metric with a unit).
type Row struct {
	Label string
	Value float64
	Unit  string
}

// FlowReport is the per-flow slice of a report.
type FlowReport struct {
	Name      string
	TxPackets uint64
	RxPackets uint64
	// Lost / Reordered / Duplicates are the receiver-side sequence
	// verdicts from the flow tracker (zero when the scenario does not
	// track sequences).
	Lost       uint64
	Reordered  uint64
	Duplicates uint64
	// LostDuringFault / LostInRecovery split Lost across a fault
	// boundary when the scenario attributes losses to a fault window
	// (overload-recover): during = slots rejected at the fault's
	// bottleneck while it was active, recovery = the remainder of the
	// tracker's sequence gaps. Zero when the scenario does not
	// attribute losses.
	LostDuringFault uint64
	LostInRecovery  uint64
	// Latency holds the flow's probe histogram when measured.
	Latency *stats.Histogram
}

// Report is a scenario's result: the NIC-counter baseline every
// scenario shares plus scenario-specific rows, per-flow slices and an
// optional latency histogram.
type Report struct {
	Scenario string
	Window   sim.Duration

	TxPackets   uint64
	TxBytes     uint64
	RxPackets   uint64
	RxBytes     uint64
	RxCRCErrors uint64
	RxMissed    uint64

	// RxMpps and RxGbpsWire are receive rates over the window; the
	// wire rate includes FCS, preamble, SFD and IFG.
	RxMpps     float64
	RxGbpsWire float64

	// Latency is the probe histogram when the scenario measures it.
	Latency    *stats.Histogram
	LostProbes uint64

	Flows []FlowReport
	Rows  []Row
	Notes []string

	// Telemetry is the windowed time series recorded when
	// Spec.TelemetryInterval is set (merged across shards for sharded
	// runs); nil for scenarios that bypass the Env testbed.
	Telemetry *telemetry.Series
}

// AddRow appends a scenario-specific metric.
func (r *Report) AddRow(label string, value float64, unit string) {
	r.Rows = append(r.Rows, Row{Label: label, Value: value, Unit: unit})
}

// Print renders the report.
func (r *Report) Print(w io.Writer) {
	fmt.Fprintf(w, "scenario=%s runtime=%.1fms\n", r.Scenario, r.Window.Seconds()*1e3)
	if r.Window > 0 {
		fmt.Fprintf(w, "  rx %.3f Mpps (%.2f Gbit/s wire), %d packets, crc-dropped %d, missed %d\n",
			r.RxMpps, r.RxGbpsWire, r.RxPackets, r.RxCRCErrors, r.RxMissed)
	}
	if r.Latency != nil && r.Latency.Count() > 0 {
		q1, q2, q3 := r.Latency.Quartiles()
		fmt.Fprintf(w, "  latency over %d probes (lost %d): min %.1f ns, quartiles %.1f / %.1f / %.1f ns, max %.1f ns\n",
			r.Latency.Count(), r.LostProbes,
			r.Latency.Min().Nanoseconds(),
			q1.Nanoseconds(), q2.Nanoseconds(), q3.Nanoseconds(),
			r.Latency.Max().Nanoseconds())
	}
	for _, f := range r.Flows {
		fmt.Fprintf(w, "  flow %-8s tx %d rx %d", f.Name, f.TxPackets, f.RxPackets)
		if f.Lost != 0 || f.Reordered != 0 || f.Duplicates != 0 {
			fmt.Fprintf(w, " lost %d reordered %d dup %d", f.Lost, f.Reordered, f.Duplicates)
		}
		if f.LostDuringFault != 0 || f.LostInRecovery != 0 {
			fmt.Fprintf(w, " lost-during-fault %d lost-in-recovery %d", f.LostDuringFault, f.LostInRecovery)
		}
		if f.Latency != nil && f.Latency.Count() > 0 {
			q1, q2, q3 := f.Latency.Quartiles()
			fmt.Fprintf(w, "  latency quartiles %.1f / %.1f / %.1f µs (%d probes)",
				q1.Microseconds(), q2.Microseconds(), q3.Microseconds(), f.Latency.Count())
		}
		fmt.Fprintln(w)
	}
	for _, row := range r.Rows {
		fmt.Fprintf(w, "  %-34s %12.4g %s\n", row.Label, row.Value, row.Unit)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}
