package scenario

import (
	"fmt"
	"io"

	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// Env is the shared testbed a scenario runs against. It owns the
// simulation app and builds the canonical testbeds on demand: a direct
// generator→sink cable, or generator→DuT→sink when Spec.UseDuT is set.
// All the device/mempool/stats boilerplate the old examples duplicated
// lives here, so a scenario body is only the traffic logic.
type Env struct {
	Spec Spec
	// Out receives streaming output (per-window counters); reports are
	// returned, not printed, so tests can run scenarios silently.
	Out io.Writer

	app   *core.App
	built bool
	tx    *core.Device
	rx    *core.Device
	dutIn *core.Device
	fwd   *dut.Forwarder
	ts    *core.Timestamper
	rec   *telemetry.Recorder
	inj   *fault.Injector
}

// NewEnv prepares an environment for spec. The testbed itself is built
// lazily on first use, so wrapper scenarios that construct their own
// apps (the experiment-backed ones) pay nothing for it.
func NewEnv(spec Spec, out io.Writer) *Env {
	if out == nil {
		out = io.Discard
	}
	return &Env{Spec: spec.withDefaults(), Out: out}
}

// Adopt makes the env build its testbed on a pre-existing app — a
// multicore shard's engine — instead of creating its own. It must be
// called before the testbed is first used.
func (e *Env) Adopt(app *core.App) {
	if e.built {
		panic("scenario: Adopt after the testbed was built")
	}
	e.app = app
}

// build constructs the testbed once: engine, devices, duplex links,
// optional DuT forwarder, and the probe timestamper path.
func (e *Env) build() {
	if e.built {
		return
	}
	e.built = true
	if e.app == nil {
		e.app = core.NewApp(e.Spec.Seed)
	}
	// One TX queue per flow plus one for timestamped probes.
	txQueues := len(e.Spec.EffectiveFlows()) + 1
	if txQueues < 2 {
		txQueues = 2
	}
	if e.Spec.UseDuT {
		bed := NewDuTBed(e.app, txQueues)
		e.tx, e.rx, e.dutIn, e.fwd, e.ts = bed.Gen, bed.Sink, bed.DuTIn, bed.Fwd, bed.TS
	} else {
		e.tx = e.app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0, TxQueues: txQueues})
		e.rx = e.app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1, RxRing: 8192, RxPool: 16384})
		e.app.ConnectDevices(e.tx, e.rx, wire.PHY10GBaseT, 2)
	}
	if len(e.Spec.Faults) > 0 {
		// The injector targets the canonical fault surfaces of the bed:
		// the generator's transmit wire and pump, the DuT forwarder when
		// one is in the path, and the receive port's PTP clock. The plan
		// is scheduled onto the engine in RunAndCollect, once the run
		// horizon is known.
		e.inj = fault.New(e.app.Eng, fault.Targets{
			Link:  e.tx.Link(),
			Port:  e.tx.Port,
			Fwd:   e.fwd,
			Clock: e.rx.Port.Clock,
		}, e.Spec.Faults)
	}
	if e.Spec.TelemetryInterval > 0 {
		e.rec = telemetry.NewRecorder(e.app.Eng, telemetry.Config{
			Interval:    e.Spec.TelemetryInterval,
			Stream:      e.Spec.TelemetryStream,
			StreamJSONL: e.Spec.TelemetryJSONL,
			StreamDiag:  e.Spec.TelemetryDiag,
		})
		e.rec.Register(telemetry.PortProbe("tx", e.tx.Port))
		e.rec.Register(telemetry.PortProbe("rx", e.rx.Port))
		if e.inj != nil {
			// Registered right after the port probes so the fault
			// columns hold a deterministic position in the series at
			// any core count.
			e.rec.Register(telemetry.FaultProbe(e.inj))
		}
	}
}

// App returns the simulation app (building the testbed on first use).
func (e *Env) App() *core.App { e.build(); return e.app }

// Recorder returns the telemetry recorder, nil unless
// Spec.TelemetryInterval is set. Scenarios may register extra probes on
// it any time before RunAndCollect starts the run.
func (e *Env) Recorder() *telemetry.Recorder { e.build(); return e.rec }

// TX returns the generator device.
func (e *Env) TX() *core.Device { e.build(); return e.tx }

// RX returns the receive device (the sink when a DuT is in the path).
func (e *Env) RX() *core.Device { e.build(); return e.rx }

// Fwd returns the DuT forwarder (nil without UseDuT).
func (e *Env) Fwd() *dut.Forwarder { e.build(); return e.fwd }

// FaultInjector returns the fault injector driving Spec.Faults, nil
// when the spec carries no fault plan.
func (e *Env) FaultInjector() *fault.Injector { e.build(); return e.inj }

// Timestamper returns the probe timestamper: TX's last queue into the
// receive port's PTP latch (the paper's two-queue arrangement, §6.4).
func (e *Env) Timestamper() *core.Timestamper {
	e.build()
	if e.ts == nil {
		e.ts = core.NewTimestamper(e.tx.GetTxQueue(e.tx.NumTxQueues()-1), e.rx.Port)
	}
	return e.ts
}

// FlowFill returns the per-packet fill function for a flow at the
// given frame size — the Listing 2 prefill body. The flow's constant
// headers are captured once in a proto.Template; the returned closure
// restores them with a single copy per packet instead of re-deriving
// every field.
func (e *Env) FlowFill(f Flow, size int) func(m *mempool.Mbuf, i uint64) {
	tmpl := e.FlowTemplate(f, size)
	return func(m *mempool.Mbuf, i uint64) {
		tmpl.Apply(m.Payload())
	}
}

// FlowTemplate builds the flow's per-flow packet template at the given
// frame size: prefilled Ethernet/IPv4/L4 headers plus the cached
// checksum sums for incremental per-packet updates.
func (e *Env) FlowTemplate(f Flow, size int) *proto.Template {
	e.build()
	ethSrc, ethDst := e.tx.MAC(), e.rx.MAC()
	switch f.L4 {
	case "tcp":
		tmpl := proto.NewTCPTemplate(proto.TCPPacketFill{
			PktLength: size,
			EthSrc:    ethSrc, EthDst: ethDst,
			IPSrc: f.SrcIP, IPDst: f.DstIP,
			TCPSrc: f.SrcPort, TCPDst: f.DstPort,
		})
		if f.TOS != 0 {
			tmpl.SetTOS(f.TOS)
		}
		return tmpl
	default: // "udp"
		return proto.NewUDPTemplate(proto.UDPPacketFill{
			PktLength: size,
			EthSrc:    ethSrc, EthDst: ethDst,
			IPSrc: f.SrcIP, IPDst: f.DstIP,
			UDPSrc: f.SrcPort, UDPDst: f.DstPort,
			TOS: f.TOS,
		})
	}
}

// NewFlowPool creates a mempool prefilled with the flow's packet
// template at the given frame size.
func (e *Env) NewFlowPool(f Flow, size, count int) *mempool.Pool {
	if count <= 0 {
		count = 4096
	}
	fill := e.FlowFill(f, size)
	return core.CreateMemPool(count, func(m *mempool.Mbuf) {
		m.Len = size
		fill(m, 0)
	})
}

// DrainRx launches the canonical receive-drain task so the sink's
// rings never fill, streaming per-window rx counter lines to Env.Out
// (the Listing 3 counter output the examples print while running).
// Scenarios that consume received traffic themselves must not call
// it. With a DuT in the path the sink drain is already installed by
// the bed.
func (e *Env) DrainRx() {
	e.build()
	if e.Spec.UseDuT {
		return
	}
	rx := e.rx
	ctr := e.NewCounter("rx")
	e.app.LaunchTask("rx-drain", func(t *core.Task) {
		bufs := make([]*mempool.Mbuf, 512)
		for t.Running() {
			if n := rx.GetRxQueue(0).Recv(bufs); n > 0 {
				bytes := 0
				for _, m := range bufs[:n] {
					bytes += m.Len
				}
				ctr.Update(n, bytes, t.Now())
				core.FreeBatch(bufs, n)
			} else {
				t.Sleep(20 * sim.Microsecond)
			}
		}
		ctr.Finalize(t.Now())
	})
}

// LaunchFlowSink starts the receiver-side flow analysis task on the
// sink's first receive queue: every received frame is attributed to
// its flow in tr (sequence tracking, inter-arrival and stamped-latency
// statistics) through the batched RX datapath. Scenarios that call it
// must not also call DrainRx.
func (e *Env) LaunchFlowSink(tr *flow.Tracker) *core.FlowSink {
	e.build()
	if e.rec != nil {
		// Per-flow columns only for explicitly declared flows: a
		// churn-style scenario tracks far too many flows to give each
		// a column, but still gets the probe's tracker-level columns
		// (live flows, table load, probe length).
		flows := e.Spec.Flows
		cols := make([]telemetry.FlowCol, len(flows))
		for i, f := range flows {
			cols[i] = telemetry.FlowCol{Label: f.Name, Key: trackerKey(f)}
		}
		e.rec.Register(telemetry.FlowProbe(tr, cols))
	}
	s := &core.FlowSink{Queue: e.rx.GetRxQueue(0), Tracker: tr, Batch: e.Spec.Batch}
	e.app.LaunchTask("flow-sink", s.Run)
	return s
}

// NewCounter creates a throughput counter that streams per-window
// lines to Env.Out (silent when the Env runs with no output sink).
func (e *Env) NewCounter(name string) *stats.Counter {
	format := stats.FormatPlain
	if e.Out == io.Discard {
		format = stats.FormatNone
	}
	return stats.NewCounter(stats.CounterConfig{
		Name: name, Format: format, Out: e.Out, Window: 20 * sim.Millisecond,
	})
}

// CollectDuT appends the forwarder-side counters to rep when the
// testbed routes through a DuT — the data the Figure 7/11 setups
// report (forwarded/dropped packets, interrupt rate, and the CRC-gap
// filler frames the DuT's NIC dropped in hardware).
func (e *Env) CollectDuT(rep *Report) {
	if e.fwd == nil {
		return
	}
	rep.AddRow("DuT forwarded", float64(e.fwd.Forwarded), "packets")
	rep.AddRow("DuT dropped", float64(e.fwd.Dropped), "packets")
	rep.AddRow("DuT interrupts", float64(e.fwd.Interrupts), "ints")
	rep.AddRow("DuT interrupt rate", e.fwd.InterruptRate(e.Spec.Runtime), "Hz")
	rep.AddRow("DuT-ingress crc-dropped (fillers)", float64(e.dutIn.CounterSnapshot().RxCRCErrors), "packets")
}

// LaunchProbes starts the latency-probing task when Spec.Probes > 0:
// after a warmup it spreads Spec.Probes timestamped probes across the
// run and stores the histogram in rep.
func (e *Env) LaunchProbes(rep *Report) {
	probes := e.Spec.Probes
	if probes <= 0 {
		return
	}
	ts := e.Timestamper()
	window := e.Spec.Runtime
	warmup := window / 20
	pace := (window - warmup - window/10) / sim.Duration(probes)
	if pace < 0 {
		pace = 0
	}
	e.app.LaunchTask("timestamping", func(t *core.Task) {
		t.Sleep(warmup)
		rep.Latency = ts.MeasureLatency(t, probes, pace)
		rep.LostProbes = ts.Lost
	})
}

// RunAndCollect runs the simulation for Spec.Runtime and fills rep's
// NIC-counter baseline from a snapshot taken exactly at the window
// edge (ring drain after the stop time is excluded, as everywhere in
// the experiments).
func (e *Env) RunAndCollect(rep *Report) {
	e.build()
	window := e.Spec.Runtime
	if e.inj != nil {
		// The plan unrolls onto the wheel before the recorder's first
		// tick is armed, so fault onsets coinciding with a window edge
		// order identically in every shard.
		e.inj.Install(e.app.Now(), window)
	}
	if e.rec != nil {
		// Engine and pool probes register last so their diagnostic
		// columns trail the model columns, and Start arms the first
		// window tick before the run begins.
		e.rec.Register(telemetry.EngineProbe(e.app.Eng))
		if pool := e.app.TxPoolPeek(); pool != nil {
			e.rec.Register(telemetry.PoolProbe("txpool", pool))
		}
		e.rec.Start()
	}
	var txStop, rxStop nic.Stats
	e.app.Eng.Schedule(e.app.Now().Add(window), func() {
		txStop = e.tx.CounterSnapshot()
		rxStop = e.rx.CounterSnapshot()
	})
	e.app.RunFor(window)

	rep.Window = window
	rep.TxPackets = txStop.TxPackets
	rep.TxBytes = txStop.TxBytes
	rep.RxPackets = rxStop.RxPackets
	rep.RxBytes = rxStop.RxBytes
	rep.RxCRCErrors = rxStop.RxCRCErrors
	rep.RxMissed = rxStop.RxMissed
	secs := window.Seconds()
	rep.RxMpps = float64(rxStop.RxPackets) / secs / 1e6
	rep.RxGbpsWire = float64(rxStop.RxBytes+rxStop.RxPackets*(proto.FCSLen+proto.WireOverhead)) * 8 / secs / 1e9
	if e.rec != nil {
		rep.Telemetry = e.rec.Series()
	}
}

// --- shared testbed builders (also used by internal/experiments) -----

// DuTBed is the forwarding testbed: generator → DuT → sink, with a
// timestamping path from the generator's probe queue to the sink port
// and a sink-drain task already running. It replaces the private bed
// builders the experiments used to carry.
type DuTBed struct {
	App    *core.App
	Gen    *core.Device
	DuTIn  *core.Device
	DuTOut *core.Device
	Sink   *core.Device
	Fwd    *dut.Forwarder
	TS     *core.Timestamper
}

// NewDuTBed builds the canonical DuT testbed on app. genTxQueues is
// the generator's queue count (≥ 2; the last queue carries probes).
func NewDuTBed(app *core.App, genTxQueues int) *DuTBed {
	if genTxQueues < 2 {
		genTxQueues = 2
	}
	b := &DuTBed{App: app}
	b.Gen = app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0, TxQueues: genTxQueues})
	b.DuTIn = app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1})
	b.DuTOut = app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 2})
	b.Sink = app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 3, RxRing: 4096, RxPool: 8192})
	app.ConnectDevices(b.Gen, b.DuTIn, wire.PHY10GBaseT, 2)
	app.ConnectDevices(b.DuTOut, b.Sink, wire.PHY10GBaseT, 2)
	b.Fwd = dut.New(app.Eng, b.DuTIn.Port, b.DuTOut.Port, dut.DefaultConfig())
	b.TS = core.NewTimestamper(b.Gen.GetTxQueue(genTxQueues-1), b.Sink.Port)
	b.TS.Timeout = 5 * sim.Millisecond
	sink := b.Sink
	app.LaunchTask("sink-drain", func(t *core.Task) {
		bufs := make([]*mempool.Mbuf, 512)
		for t.Running() {
			if n := sink.GetRxQueue(0).Recv(bufs); n > 0 {
				core.FreeBatch(bufs, n)
			} else {
				t.Sleep(50 * sim.Microsecond)
			}
		}
	})
	return b
}

// BuildPortPairs creates n generator ports, each cabled to a sink that
// discards traffic in hardware, and returns one TX queue list per
// generator port — the bed of the multi-port scaling experiments.
func BuildPortPairs(app *core.App, profile nic.Profile, n, queuesPerPort int) [][]*nic.TxQueue {
	phy := wire.PHY10GBaseT
	if profile.Speed == wire.Speed40G {
		phy = wire.PHY10GBaseSR
	}
	out := make([][]*nic.TxQueue, n)
	for i := 0; i < n; i++ {
		gen := app.ConfigDevice(core.DeviceConfig{Profile: profile, ID: 2 * i, TxQueues: queuesPerPort})
		sink := app.ConfigDevice(core.DeviceConfig{Profile: profile, ID: 2*i + 1})
		app.ConnectDevices(gen, sink, phy, 2)
		sink.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { return true })
		// The sink consumes every frame in the hook above as a pure
		// function of (bytes, rxTime): the link into it may coalesce
		// deliveries into RX trains without observable difference.
		gen.Link().SetDeliverySlack(nic.SinkDeliverySlack(profile.Speed))
		qs := make([]*nic.TxQueue, queuesPerPort)
		for qi := 0; qi < queuesPerPort; qi++ {
			qs[qi] = gen.GetTxQueue(qi)
		}
		out[i] = qs
	}
	return out
}

// FlowSize returns the effective frame size of a flow under spec.
func (s Spec) FlowSize(f Flow) int {
	if f.PktSize > 0 {
		return f.PktSize
	}
	return s.PktSize
}

// String summarizes the spec for logs and error messages.
func (s Spec) String() string {
	return fmt.Sprintf("rate=%.3gMpps size=%dB pattern=%s runtime=%.1fms seed=%d",
		s.RateMpps, s.PktSize, s.Pattern, s.Runtime.Seconds()*1e3, s.Seed)
}
