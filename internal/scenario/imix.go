package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/sim"
)

// imixScenario generates an internet-mix of frame sizes (the classic
// 7:4:1 simple IMIX by default) and sweeps the hardware shaper through
// Steps rate points across one run — each segment's achieved rate is
// reported separately, so one invocation produces a small rate/
// throughput curve instead of a single operating point.
type imixScenario struct{}

func (imixScenario) Name() string { return "imix" }
func (imixScenario) Describe() string {
	return "IMIX size mix swept across rate steps, per-size and per-step breakdown"
}

// SingleCoreOnly implements the sharding guard: the per-step targets
// and the average-frame-size row are ratios that must not be summed
// across shards.
func (imixScenario) SingleCoreOnly() string {
	return "the rate-step sweep reports per-step ratios that must not be summed"
}

func (imixScenario) DefaultSpec() Spec {
	return Spec{
		Pattern:  PatternCBR,
		RateMpps: 2,
		Mix:      IMIXMix,
		Steps:    4,
		Runtime:  80 * sim.Millisecond,
	}
}

func (imixScenario) Run(env *Env) (*Report, error) {
	spec := env.Spec
	mix := spec.Mix
	if len(mix) == 0 {
		mix = IMIXMix
	}
	steps := spec.Steps
	if steps <= 0 {
		steps = 4
	}
	if spec.RateMpps <= 0 {
		return nil, fmt.Errorf("imix needs a target rate (got %v)", spec)
	}
	flow := spec.EffectiveFlows()[0]

	// Per-size fill functions and cumulative weights for the draw.
	totalWeight := 0
	cum := make([]int, len(mix))
	fills := make([]func(*mempool.Mbuf, uint64), len(mix))
	for i, sh := range mix {
		if sh.Size <= 0 || sh.Weight <= 0 {
			return nil, fmt.Errorf("imix: bad mix entry %+v", sh)
		}
		totalWeight += sh.Weight
		cum[i] = totalWeight
		fills[i] = env.FlowFill(flow, sh.Size)
	}

	app := env.App()
	q := env.TX().GetTxQueue(0)
	pool := core.CreateMemPool(8192, nil)
	sizeCount := make([]uint64, len(mix))

	// The transmit task keeps the shaped queue full with mixed-size
	// packets; the shaper sweep below changes the drain rate per
	// segment while the task never goes idle (§7.2's "keep all
	// available queues completely filled").
	app.LaunchTask("imix-load", func(t *core.Task) {
		rng := t.Engine().Rand()
		one := make([]*mempool.Mbuf, 1)
		var i uint64
		for t.Running() {
			w := rng.Intn(totalWeight)
			si := 0
			for cum[si] <= w {
				si++
			}
			m := pool.Alloc(mix[si].Size)
			if m == nil {
				t.Sleep(sim.Microsecond)
				continue
			}
			fills[si](m, i)
			one[0] = m
			core.OffloadUDPChecksums(one, 1)
			if t.SendAll(q, one) != 1 {
				break
			}
			sizeCount[si]++
			i++
		}
	})
	env.DrainRx()

	// Rate sweep: segment s runs at target*(s+1)/steps. The first
	// segment's rate is configured before the load task ever runs, so
	// no unshaped burst pollutes its achieved-rate row; later
	// boundaries reconfigure the shaper and snapshot the rx counter.
	window := spec.Runtime
	segDur := window / sim.Duration(steps)
	rxAt := make([]uint64, steps+1)
	q.SetRatePPS(spec.RateMpps * 1e6 / float64(steps))
	for s := 1; s < steps; s++ {
		s := s
		pps := spec.RateMpps * 1e6 * float64(s+1) / float64(steps)
		app.Eng.Schedule(app.Now().Add(segDur*sim.Duration(s)), func() {
			q.SetRatePPS(pps)
			rxAt[s] = env.RX().GetStats().RxPackets
		})
	}
	app.Eng.Schedule(app.Now().Add(segDur*sim.Duration(steps)), func() {
		rxAt[steps] = env.RX().GetStats().RxPackets
	})

	rep := &Report{}
	env.RunAndCollect(rep)

	for s := 0; s < steps; s++ {
		target := spec.RateMpps * float64(s+1) / float64(steps)
		achieved := float64(rxAt[s+1]-rxAt[s]) / segDur.Seconds() / 1e6
		rep.AddRow(fmt.Sprintf("step %d: target %.3f Mpps, achieved", s+1, target), achieved, "Mpps")
	}
	var pkts, bytes uint64
	for si, n := range sizeCount {
		pkts += n
		bytes += n * uint64(mix[si].Size)
		rep.AddRow(fmt.Sprintf("%d B share (weight %d/%d)", mix[si].Size, mix[si].Weight, totalWeight),
			float64(n), "packets")
	}
	if pkts > 0 {
		rep.AddRow("average frame size", float64(bytes)/float64(pkts), "B")
	}
	return rep, nil
}

func init() { Register(imixScenario{}) }
