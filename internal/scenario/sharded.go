package scenario

import (
	"fmt"
	"io"

	"repro/internal/multicore"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/telemetry"
)

// share splits an integer budget across k shards: shard i of k gets
// total/k plus one unit of the remainder for the lowest shards, so the
// shares always sum to the total.
func share(total, i, k int) int {
	if total <= 0 {
		return 0
	}
	s := total / k
	if i < total%k {
		s++
	}
	return s
}

// ShardSpec returns the spec slice shard i of k runs: the aggregate
// rate and the probe/sample budgets are divided across shards (shares
// sum exactly to the originals), the seed is derived per shard, and
// Cores resets to 1 so a shard never recurses. Each shard models one
// core driving its own port pair — Figure 4's one-port-per-core bed.
func (s Spec) ShardSpec(i, k int) Spec {
	out := s
	out.Cores = 1
	out.ShardIndex = i
	out.ShardCount = k
	out.Seed = multicore.ShardSeed(s.Seed, i)
	out.RateMpps = s.RateMpps / float64(k)
	// Interleave CBR shards onto the single-queue emission grid: shard
	// i at rate/k delayed by i/rate fills exactly the slots shard 0
	// leaves open, so the union of k staggered CBR streams is the
	// one-core stream. The aggregate tick is rounded to a picosecond
	// ONCE and the shard interval/phase derived from it by integer
	// multiplication — rounding 1/(rate/k) per shard instead would
	// drift the shard grids off the single-core grid at rates whose
	// period is not tick-exact. For the software-paced grid this makes
	// merged totals exactly invariant; the hardware shaper
	// additionally jitters each slot by its modeled ±256 ns
	// oscillation (§7.3).
	if (s.Pattern == PatternCBR || s.Pattern == PatternSoftCBR) && s.RateMpps > 0 {
		tick := sim.FromSeconds(1 / (s.RateMpps * 1e6))
		out.TxPhase = s.TxPhase + sim.Duration(i)*tick
		out.TxInterval = sim.Duration(k) * tick
	}
	out.Probes = share(s.Probes, i, k)
	out.Samples = share(s.Samples, i, k)
	// Faults pass through unchanged (the struct copy shares the
	// read-only plan): fault events are global sim-time events, so
	// every shard applies the identical plan to its private testbed —
	// never a rate-split share of it.
	// A per-shard stream would carry partial counters; the merged
	// series in the final report is the sharded run's telemetry.
	out.TelemetryStream = nil
	if len(s.Flows) > 0 {
		out.Flows = make([]Flow, len(s.Flows))
		copy(out.Flows, s.Flows)
		for fi := range out.Flows {
			out.Flows[fi].RateMpps = s.Flows[fi].RateMpps / float64(k)
		}
	}
	return out
}

// executeSharded runs sc once per modeled core on a multicore group —
// independent engines on real goroutines, each against its own Env
// testbed built on the shard's app — and merges the per-shard reports
// in shard order. Shard 0 owns the streaming output; the other shards
// run silently so the stream stays deterministic.
func executeSharded(sc Scenario, spec Spec, out io.Writer) (*Report, error) {
	spec = spec.withDefaults()
	k := spec.Cores
	g := multicore.NewGroup(k, spec.Seed)
	reports := make([]*Report, k)
	err := g.Each(func(s *multicore.Shard) error {
		shardOut := io.Discard
		if s.ID == 0 {
			shardOut = out
		}
		env := NewEnv(spec.ShardSpec(s.ID, k), shardOut)
		env.Adopt(s.App)
		rep, err := sc.Run(env)
		if err != nil {
			return err
		}
		reports[s.ID] = rep
		return nil
	})
	if err != nil {
		return nil, err
	}
	rep := MergeReports(reports)
	rep.Notes = append(rep.Notes, fmt.Sprintf("merged from %d shards (one engine and port pair per core)", k))
	return rep, nil
}

// MergeReports aggregates per-shard reports into one: counters add,
// rates are recomputed over the merged window, latency histograms and
// flows (matched by name) merge via the stats merge layer, rows are
// summed by label, and notes are deduplicated. Reports must be merged
// in shard order for deterministic output; nil entries are skipped.
func MergeReports(reps []*Report) *Report {
	out := &Report{}
	flowIdx := map[string]int{}
	rowIdx := map[string]int{}
	noteSeen := map[string]bool{}
	var series []*telemetry.Series
	for _, r := range reps {
		if r == nil {
			continue
		}
		if r.Telemetry != nil {
			series = append(series, r.Telemetry)
		}
		if r.Window > out.Window {
			out.Window = r.Window
		}
		out.TxPackets += r.TxPackets
		out.TxBytes += r.TxBytes
		out.RxPackets += r.RxPackets
		out.RxBytes += r.RxBytes
		out.RxCRCErrors += r.RxCRCErrors
		out.RxMissed += r.RxMissed
		out.LostProbes += r.LostProbes
		if r.Latency != nil && r.Latency.Count() > 0 {
			if out.Latency == nil {
				out.Latency = stats.NewHistogram(r.Latency.BinWidth)
			}
			out.Latency.Merge(r.Latency)
		}
		for _, f := range r.Flows {
			i, ok := flowIdx[f.Name]
			if !ok {
				i = len(out.Flows)
				flowIdx[f.Name] = i
				out.Flows = append(out.Flows, FlowReport{Name: f.Name})
			}
			out.Flows[i].TxPackets += f.TxPackets
			out.Flows[i].RxPackets += f.RxPackets
			out.Flows[i].Lost += f.Lost
			out.Flows[i].Reordered += f.Reordered
			out.Flows[i].Duplicates += f.Duplicates
			out.Flows[i].LostDuringFault += f.LostDuringFault
			out.Flows[i].LostInRecovery += f.LostInRecovery
			if f.Latency != nil && f.Latency.Count() > 0 {
				if out.Flows[i].Latency == nil {
					out.Flows[i].Latency = stats.NewHistogram(f.Latency.BinWidth)
				}
				out.Flows[i].Latency.Merge(f.Latency)
			}
		}
		for _, row := range r.Rows {
			i, ok := rowIdx[row.Label]
			if !ok {
				i = len(out.Rows)
				rowIdx[row.Label] = i
				out.Rows = append(out.Rows, Row{Label: row.Label, Unit: row.Unit})
			}
			out.Rows[i].Value += row.Value
		}
		for _, n := range r.Notes {
			if !noteSeen[n] {
				noteSeen[n] = true
				out.Notes = append(out.Notes, n)
			}
		}
	}
	if secs := out.Window.Seconds(); secs > 0 {
		out.RxMpps = float64(out.RxPackets) / secs / 1e6
		out.RxGbpsWire = float64(out.RxBytes+out.RxPackets*(proto.FCSLen+proto.WireOverhead)) * 8 / secs / 1e9
	}
	if len(series) > 0 {
		merged, err := telemetry.MergeSeries(series)
		if err != nil {
			out.Notes = append(out.Notes, "telemetry merge failed: "+err.Error())
		} else {
			out.Telemetry = merged
		}
	}
	return out
}
