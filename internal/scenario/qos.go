package scenario

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
)

// qosScenario is the paper's §4 example (quality-of-service-test.lua)
// generalized to N declared flows: every flow gets its own hardware-
// shaped TX queue and prefilled mempool, the receive side counts
// packets per flow (UDP destination port), and each flow's latency is
// sampled with hardware-timestamped probes riding that flow's own
// queue — so a backlogged queue shows up in its own histogram.
type qosScenario struct{}

func (qosScenario) Name() string { return "qos" }
func (qosScenario) Describe() string {
	return "multi-flow QoS: per-flow shaped queues, rx accounting and latency histograms"
}

func (qosScenario) DefaultSpec() Spec {
	return Spec{
		PktSize: 124, // PKT_SIZE of the example script
		Probes:  100,
		Runtime: 100 * sim.Millisecond,
		Flows: []Flow{
			{
				Name: "fg", L4: "udp", RateMpps: 0.1,
				SrcIP: proto.MustIPv4("10.0.0.1"), SrcIPCount: 255,
				DstIP: proto.MustIPv4("192.168.1.1"), SrcPort: 1234, DstPort: 43,
				TOS: 0xb8, // EF
			},
			{
				Name: "bg", L4: "udp", RateMpps: 0.8,
				SrcIP: proto.MustIPv4("10.0.0.1"), SrcIPCount: 255,
				DstIP: proto.MustIPv4("192.168.1.1"), SrcPort: 1234, DstPort: 42,
			},
		},
	}
}

func (qosScenario) Run(env *Env) (*Report, error) {
	spec := env.Spec
	flows := spec.EffectiveFlows()
	app := env.App()
	tx, rx := env.TX(), env.RX()

	// Transmit: one shaped queue and one Listing 2 flood task per flow
	// (core.UDPFlood is exactly that loop: batch alloc, source-IP
	// randomization, checksum offload, blocking send).
	floods := make([]*core.UDPFlood, len(flows))
	for fi, f := range flows {
		size := spec.FlowSize(f)
		q := tx.GetTxQueue(fi)
		if f.RateMpps > 0 {
			q.SetRatePPS(f.RateMpps * 1e6)
		}
		randomize := f.SrcIPCount
		if randomize <= 0 {
			randomize = 1
		}
		floods[fi] = &core.UDPFlood{
			Queue: q, PktSize: size,
			BaseIP: f.SrcIP, Randomize: randomize,
			Pool: env.NewFlowPool(f, size, 4096),
		}
		app.LaunchTask("load-"+f.Name, floods[fi].Run)
	}

	// Receive: the Listing 3 counter slave, keyed by UDP destination
	// port. Unmatched traffic (probes) is just freed.
	portToFlow := map[uint16]int{}
	for fi, f := range flows {
		if _, dup := portToFlow[f.DstPort]; dup {
			return nil, fmt.Errorf("qos: flows %q and %q share dst port %d",
				flows[portToFlow[f.DstPort]].Name, f.Name, f.DstPort)
		}
		portToFlow[f.DstPort] = fi
	}
	rxCount := make([]uint64, len(flows))
	ctrs := make([]*stats.Counter, len(flows))
	for fi, f := range flows {
		ctrs[fi] = env.NewCounter("rx-" + f.Name)
	}
	app.LaunchTask("counter", func(t *core.Task) {
		bufs := make([]*mempool.Mbuf, 256)
		for {
			n := t.RecvPoll(rx.GetRxQueue(0), bufs)
			if n == 0 {
				break
			}
			for _, m := range bufs[:n] {
				pkt := proto.UDPPacket{B: m.Payload()}
				if pkt.Eth().EtherType() == proto.EtherTypeIPv4 && pkt.IP().Protocol() == proto.IPProtoUDP {
					if fi, ok := portToFlow[pkt.UDP().DstPort()]; ok {
						rxCount[fi]++
						ctrs[fi].CountPacket(m.Len, t.Now())
					}
				}
				m.Free()
			}
		}
		for _, c := range ctrs {
			c.Finalize(t.Now())
		}
	})

	// Latency: one timestamper per flow on the flow's own queue, probed
	// round-robin (a single probe in flight at a time — the port has
	// one timestamp latch per direction, §6).
	hists := make([]*stats.Histogram, len(flows))
	var lost uint64
	if spec.Probes > 0 {
		tss := make([]*core.Timestamper, len(flows))
		for fi := range flows {
			tss[fi] = core.NewTimestamper(tx.GetTxQueue(fi), rx.Port)
			tss[fi].Timeout = 20 * sim.Millisecond
			hists[fi] = stats.NewHistogram(sim.Nanosecond)
		}
		window := spec.Runtime
		warmup := window / 20
		pace := (window - warmup) / sim.Duration(spec.Probes*len(flows)+1)
		if pace < 0 {
			pace = 0
		}
		app.LaunchTask("timestamping", func(t *core.Task) {
			t.Sleep(warmup)
			rng := t.Engine().Rand()
			for i := 0; i < spec.Probes && t.Running(); i++ {
				for fi := range flows {
					if lat, ok := tss[fi].Probe(t); ok {
						hists[fi].Add(lat)
					}
					dither := sim.Duration(rng.Int63n(int64(8 * sim.Microsecond)))
					t.Sleep(pace + dither)
				}
			}
			for _, ts := range tss {
				lost += ts.Lost
			}
		})
	}

	rep := &Report{}
	env.RunAndCollect(rep)
	rep.LostProbes = lost
	for fi, f := range flows {
		rep.Flows = append(rep.Flows, FlowReport{
			Name:      f.Name,
			TxPackets: floods[fi].Sent,
			RxPackets: rxCount[fi],
			Latency:   hists[fi],
		})
	}
	return rep, nil
}

func init() { Register(qosScenario{}) }
