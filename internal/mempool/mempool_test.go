package mempool

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPoolAllocFree(t *testing.T) {
	p := New(Config{Count: 4, BufSize: 128})
	if p.Count() != 4 || p.Available() != 4 {
		t.Fatalf("count=%d avail=%d", p.Count(), p.Available())
	}
	m := p.Alloc(64)
	if m == nil {
		t.Fatal("alloc failed")
	}
	if m.Len != 64 || len(m.Data) != 128 {
		t.Fatalf("len=%d room=%d", m.Len, len(m.Data))
	}
	if p.Available() != 3 {
		t.Fatalf("avail = %d", p.Available())
	}
	m.Free()
	if p.Available() != 4 {
		t.Fatalf("avail after free = %d", p.Available())
	}
	allocs, frees := p.Stats()
	if allocs != 1 || frees != 1 {
		t.Fatalf("stats = %d, %d", allocs, frees)
	}
}

func TestPoolExhaustion(t *testing.T) {
	p := New(Config{Count: 2, BufSize: 64})
	a := p.Alloc(60)
	b := p.Alloc(60)
	if a == nil || b == nil {
		t.Fatal("allocs failed")
	}
	if c := p.Alloc(60); c != nil {
		t.Fatal("alloc from exhausted pool succeeded")
	}
	a.Free()
	if c := p.Alloc(60); c == nil {
		t.Fatal("alloc after free failed")
	}
}

func TestDoubleFreePanics(t *testing.T) {
	p := New(Config{Count: 1, BufSize: 64})
	m := p.Alloc(60)
	m.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free did not panic")
		}
	}()
	m.Free()
}

func TestPrefillRunsOncePerBuffer(t *testing.T) {
	calls := 0
	p := New(Config{Count: 8, BufSize: 64, Prefill: func(m *Mbuf) {
		calls++
		m.Data[0] = 0xAB
	}})
	if calls != 8 {
		t.Fatalf("prefill ran %d times, want 8", calls)
	}
	m := p.Alloc(60)
	if m.Data[0] != 0xAB {
		t.Fatal("prefilled contents missing after alloc")
	}
}

// TestContentsSurviveRecycling encodes the paper's §4.2 observation that
// buffer recycling does not erase packet contents: pre-filled fields
// written once at pool creation persist across alloc/free cycles.
func TestContentsSurviveRecycling(t *testing.T) {
	p := New(Config{Count: 2, BufSize: 64, Prefill: func(m *Mbuf) {
		copy(m.Data, []byte{1, 2, 3, 4})
	}})
	for i := 0; i < 10; i++ {
		m := p.Alloc(60)
		if m.Data[0] != 1 || m.Data[3] != 4 {
			t.Fatalf("iteration %d: prefill lost", i)
		}
		m.Data[0] = 1 // tx loop only touches changing fields
		m.Free()
	}
}

func TestResetClearsTxMeta(t *testing.T) {
	p := New(Config{Count: 1, BufSize: 64})
	m := p.Alloc(60)
	m.TxMeta.OffloadUDPChecksum = true
	m.TxMeta.InvalidCRC = true
	m.Free()
	m = p.Alloc(60)
	if m.TxMeta.OffloadUDPChecksum || m.TxMeta.InvalidCRC {
		t.Fatal("TxMeta survived recycling")
	}
}

func TestResetOversizePanics(t *testing.T) {
	p := New(Config{Count: 1, BufSize: 64})
	defer func() {
		if recover() == nil {
			t.Fatal("oversize alloc did not panic")
		}
	}()
	p.Alloc(65)
}

func TestAllocBatch(t *testing.T) {
	p := New(Config{Count: 10, BufSize: 64})
	out := make([]*Mbuf, 8)
	if n := p.AllocBatch(out, 60); n != 8 {
		t.Fatalf("batch alloc = %d", n)
	}
	out2 := make([]*Mbuf, 8)
	if n := p.AllocBatch(out2, 60); n != 2 {
		t.Fatalf("second batch alloc = %d, want 2", n)
	}
}

func TestBufArrayAllocFree(t *testing.T) {
	p := New(Config{Count: 128, BufSize: 256})
	ba := p.BufArray(32)
	if ba.Len() != 32 {
		t.Fatalf("len = %d", ba.Len())
	}
	n := ba.Alloc(124)
	if n != 32 {
		t.Fatalf("alloc = %d", n)
	}
	for _, m := range ba.Slice(n) {
		if m.Len != 124 {
			t.Fatalf("pkt len = %d", m.Len)
		}
	}
	ba.FreeAll()
	if p.Available() != 128 {
		t.Fatalf("avail = %d after FreeAll", p.Available())
	}
	for _, m := range ba.Bufs {
		if m != nil {
			t.Fatal("FreeAll left a buffer slot set")
		}
	}
}

func TestBufArrayDefaultSize(t *testing.T) {
	p := New(Config{Count: 128})
	if ba := p.BufArray(0); ba.Len() != DefaultBatchSize {
		t.Fatalf("default size = %d", ba.Len())
	}
	if ba := UnboundBufArray(0); ba.Len() != DefaultBatchSize {
		t.Fatalf("unbound default size = %d", ba.Len())
	}
}

func TestUnboundBufArrayAllocPanics(t *testing.T) {
	ba := UnboundBufArray(4)
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc on unbound BufArray did not panic")
		}
	}()
	ba.Alloc(60)
}

func TestSlabIsolation(t *testing.T) {
	p := New(Config{Count: 4, BufSize: 64})
	a := p.Alloc(64)
	b := p.Alloc(64)
	for i := range a.Data {
		a.Data[i] = 0xFF
	}
	for _, v := range b.Data {
		if v != 0 {
			t.Fatal("write to one buffer leaked into another")
		}
	}
	// Full-capacity write must not panic (cap is clamped).
	_ = append(a.Data[:0:cap(a.Data)], make([]byte, 64)...)
}

// Property: alloc/free balance — after any sequence of ops the number of
// available buffers equals Count - live, and allocation never returns a
// buffer that is already live.
func TestPoolBalanceProperty(t *testing.T) {
	f := func(ops []bool) bool {
		p := New(Config{Count: 16, BufSize: 64})
		var live []*Mbuf
		for _, alloc := range ops {
			if alloc {
				m := p.Alloc(60)
				if m == nil {
					if len(live) != 16 {
						return false // pool dry while buffers remain
					}
					continue
				}
				for _, l := range live {
					if l == m {
						return false // returned a live buffer
					}
				}
				live = append(live, m)
			} else if len(live) > 0 {
				live[len(live)-1].Free()
				live = live[:len(live)-1]
			}
			if p.Available() != 16-len(live) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(5))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllocFreeBatch(b *testing.B) {
	p := New(Config{Count: 512, BufSize: 2048})
	ba := p.BufArray(63)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ba.Alloc(60)
		ba.FreeAll()
	}
}
