// Package mempool implements DPDK-style packet buffer management:
// fixed-size buffers (Mbuf) allocated from preallocated pools, with a
// per-buffer prefill callback and batch wrappers (BufArray).
//
// The object model deliberately matches the one the paper's §4.2
// analyses: the transmit function is asynchronous, so a buffer handed to
// the NIC must not be touched until the NIC reports completion; buffers
// are recycled through the pool without erasing their contents, which is
// why a prefill callback at pool creation time plus per-packet
// modification of only the fields that change is the efficient pattern.
package mempool

import (
	"fmt"
	"sync"
)

// DefaultBufSize is the data room of a buffer: enough for a 1518 B
// Ethernet frame plus headroom, rounded like DPDK's 2 kB mbufs.
const DefaultBufSize = 2048

// DefaultBatchSize is the conventional burst size used by bufArrays.
const DefaultBatchSize = 63 // MoonGen's default bufArray size

// Mbuf is a packet buffer. Data is the full data room; the live packet
// occupies Data[:Len]. The zero Mbuf is not usable; buffers come from a
// Pool.
type Mbuf struct {
	Data []byte // full data room, fixed size
	Len  int    // current packet length

	// TxMeta carries per-packet transmit metadata interpreted by the
	// NIC model, the equivalent of DPDK's mbuf offload flags and the
	// DMA descriptor bitfields that checksum offloading sets.
	TxMeta TxMeta

	// RxMeta carries per-packet receive metadata written by the NIC
	// model (timestamps on chips that timestamp all received packets,
	// such as the 82580).
	RxMeta RxMeta

	pool   *Pool
	index  int  // position in the pool's backing store
	inUse  bool // owned by the application or NIC (not in the free list)
	cached bool // parked in a per-core Cache (in-use from the pool's view)
}

// TxMeta is per-packet transmit metadata: offload requests and flags
// that the simulated NIC interprets when the packet reaches the
// hardware, mirroring DPDK DMA-descriptor fields.
type TxMeta struct {
	// Offload checksum computation requests. The NIC fills the
	// corresponding header checksums when the packet is fetched.
	OffloadIPChecksum  bool
	OffloadUDPChecksum bool
	OffloadTCPChecksum bool

	// L2Len/L3Len locate the headers for offloading, as in DPDK.
	L2Len int
	L3Len int

	// InvalidCRC asks the MAC to emit the frame with a corrupted FCS.
	// This is the transmit side of the paper's §8 CRC-based rate
	// control: filler frames are sent with a bad checksum so the
	// device under test drops them in hardware.
	InvalidCRC bool

	// Timestamp asks the NIC to hardware-timestamp this frame on
	// transmit (PTP path, paper §6).
	Timestamp bool
}

// RxMeta is per-packet receive metadata: what the NIC writes alongside
// the packet data (the 82580 prepends hardware timestamps to all
// received packets; we carry them out of band).
type RxMeta struct {
	// Timestamp is the hardware receive timestamp in NIC clock time.
	Timestamp int64
	// HasTimestamp reports whether Timestamp is valid.
	HasTimestamp bool
	// Queue is the receive queue the packet was steered to.
	Queue int
	// Arrival is the frame's PHY-level receive instant in simulation
	// time (picoseconds) — the per-descriptor arrival record the
	// receiver-side flow analysis computes inter-arrival times and
	// stamped latencies from.
	Arrival int64
}

// Reset clears per-packet state before reuse. Buffer contents are
// intentionally preserved (recycling "does not erase the packets'
// contents", §4.2).
func (m *Mbuf) Reset(length int) {
	if length > len(m.Data) {
		panic(fmt.Sprintf("mempool: packet length %d exceeds data room %d", length, len(m.Data)))
	}
	m.Len = length
	m.TxMeta = TxMeta{}
	m.RxMeta = RxMeta{}
}

// Payload returns the live packet bytes Data[:Len].
func (m *Mbuf) Payload() []byte { return m.Data[:m.Len] }

// Pool returns the owning pool.
func (m *Mbuf) Pool() *Pool { return m.pool }

// Free returns the buffer to its pool. Freeing a buffer twice panics:
// double-free is a real bug class the pool guards against.
func (m *Mbuf) Free() {
	m.pool.put(m)
}

// Pool is a fixed-size packet buffer pool. A Pool is safe for concurrent
// use; the free list is protected by a mutex, which is not the hot path
// in the simulation (batched alloc/free amortizes it exactly as DPDK's
// per-core mempool caches do).
type Pool struct {
	mu      sync.Mutex
	bufs    []*Mbuf
	free    []int // indices of free buffers, LIFO for cache locality
	bufSize int

	allocs uint64
	frees  uint64
}

// Config configures a pool.
type Config struct {
	// Count is the number of buffers; DPDK defaults to 2047-ish pools,
	// we default to 2048.
	Count int
	// BufSize is the data room per buffer (default DefaultBufSize).
	BufSize int
	// Prefill, if non-nil, is invoked once per buffer at pool creation
	// time. It is MoonGen's memory.createMemPool(function(buf) ...)
	// callback: scripts fill every packet with default values once so
	// the transmit loop only touches fields that change per packet.
	Prefill func(buf *Mbuf)
}

// New creates a pool. All buffers are allocated up front from two
// backing slabs — one for the data rooms, one for the Mbuf headers —
// and Prefill runs on each. The header slab matters as much as the
// data slab: a pool is five allocations total instead of one per
// buffer, so creating the per-core pools of a many-shard experiment
// does not flood the garbage collector with objects.
func New(cfg Config) *Pool {
	if cfg.Count <= 0 {
		cfg.Count = 2048
	}
	if cfg.BufSize <= 0 {
		cfg.BufSize = DefaultBufSize
	}
	p := &Pool{bufSize: cfg.BufSize}
	slab := make([]byte, cfg.Count*cfg.BufSize)
	hdrs := make([]Mbuf, cfg.Count)
	p.bufs = make([]*Mbuf, cfg.Count)
	p.free = make([]int, cfg.Count)
	for i := 0; i < cfg.Count; i++ {
		m := &hdrs[i]
		m.Data = slab[i*cfg.BufSize : (i+1)*cfg.BufSize : (i+1)*cfg.BufSize]
		m.Len = cfg.BufSize
		m.pool = p
		m.index = i
		if cfg.Prefill != nil {
			cfg.Prefill(m)
		}
		m.Len = 0
		p.bufs[i] = m
		p.free[i] = cfg.Count - 1 - i // so buffer 0 pops first
	}
	return p
}

// BufSize returns the per-buffer data room.
func (p *Pool) BufSize() int { return p.bufSize }

// Count returns the total number of buffers in the pool.
func (p *Pool) Count() int { return len(p.bufs) }

// Available returns the number of free buffers.
func (p *Pool) Available() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.free)
}

// Stats returns cumulative allocation and free counts.
func (p *Pool) Stats() (allocs, frees uint64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocs, p.frees
}

// Alloc takes one buffer with the given packet length, or nil if the
// pool is exhausted.
func (p *Pool) Alloc(length int) *Mbuf {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.allocLocked(length)
}

func (p *Pool) allocLocked(length int) *Mbuf {
	n := len(p.free)
	if n == 0 {
		return nil
	}
	idx := p.free[n-1]
	p.free = p.free[:n-1]
	m := p.bufs[idx]
	m.inUse = true
	m.Reset(length)
	p.allocs++
	return m
}

// AllocBatch fills out with freshly allocated buffers of the given
// length and returns how many it could allocate.
func (p *Pool) AllocBatch(out []*Mbuf, length int) int {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range out {
		m := p.allocLocked(length)
		if m == nil {
			return i
		}
		out[i] = m
	}
	return len(out)
}

func (p *Pool) put(m *Mbuf) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.putLocked(m)
}

func (p *Pool) putLocked(m *Mbuf) {
	if m.pool != p {
		panic("mempool: buffer returned to wrong pool")
	}
	if !m.inUse {
		panic(fmt.Sprintf("mempool: double free of buffer %d", m.index))
	}
	if m.cached {
		panic(fmt.Sprintf("mempool: buffer %d freed while parked in a cache", m.index))
	}
	m.inUse = false
	p.free = append(p.free, m.index)
	p.frees++
}

// FreeBatch returns a batch of this pool's buffers under one lock
// acquisition — the spill path of the per-core Cache.
func (p *Pool) FreeBatch(bufs []*Mbuf) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range bufs {
		p.putLocked(m)
	}
}

// BufArray is MoonGen's bufArray: a reusable batch of packet buffers
// processed together, "a thin wrapper around a C array containing packet
// buffers ... to process packets in batches instead of passing them
// one-by-one" (§4.2). A BufArray can be bound to a Pool (Pool.BufArray)
// or to a per-core Cache (Cache.BufArray); the batched TX loops reuse
// one array for the whole run, so the hot path performs no per-packet
// slice allocations.
type BufArray struct {
	Bufs  []*Mbuf
	pool  *Pool
	cache *Cache
}

// BufArray returns a batch wrapper of the given size bound to this pool
// (mem:bufArray()). Size <= 0 selects DefaultBatchSize.
func (p *Pool) BufArray(size int) *BufArray {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &BufArray{Bufs: make([]*Mbuf, size), pool: p}
}

// UnboundBufArray returns a batch wrapper usable only for receive
// (memory.bufArray() in a counter task): buffers arrive from the NIC and
// are freed to their own pools.
func UnboundBufArray(size int) *BufArray {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &BufArray{Bufs: make([]*Mbuf, size)}
}

// Len returns the batch capacity.
func (a *BufArray) Len() int { return len(a.Bufs) }

// Alloc fills the whole array with packets of the given size
// (bufs:alloc(PKT_SIZE)). It returns the number allocated, which is
// less than Len only if the pool ran dry — in a correctly sized setup
// that means the NIC is holding every buffer and the caller should
// retry, which is exactly how DPDK applications behave.
func (a *BufArray) Alloc(size int) int {
	if a.cache != nil {
		return a.cache.AllocBatch(a.Bufs, size)
	}
	if a.pool == nil {
		panic("mempool: Alloc on unbound BufArray")
	}
	return a.pool.AllocBatch(a.Bufs, size)
}

// FreeAll returns every non-nil buffer (through the cache when bound to
// one) and clears the slots (bufs:freeAll()).
func (a *BufArray) FreeAll() {
	for i, m := range a.Bufs {
		if m == nil {
			continue
		}
		if a.cache != nil && m.pool == a.cache.pool {
			a.cache.Put(m)
		} else {
			m.Free()
		}
		a.Bufs[i] = nil
	}
}

// Clear drops the first n references without freeing (the buffers were
// handed to the NIC): the reuse step between bursts.
func (a *BufArray) Clear(n int) {
	for i := 0; i < n; i++ {
		a.Bufs[i] = nil
	}
}

// Slice returns the first n buffers, the shape used after a short
// receive: rx := queue.Recv(bufs); for _, b := range bufs.Slice(rx) {...}
func (a *BufArray) Slice(n int) []*Mbuf { return a.Bufs[:n] }
