package mempool

import "testing"

func TestCacheAllocFree(t *testing.T) {
	p := New(Config{Count: 64})
	c := p.NewCache(16)
	m := c.Alloc(60)
	if m == nil {
		t.Fatal("alloc failed")
	}
	if m.Len != 60 {
		t.Fatalf("len = %d", m.Len)
	}
	if c.Refills != 1 {
		t.Fatalf("refills = %d", c.Refills)
	}
	// The refill pulled half the cache; the next allocs are hits.
	hits := c.Hits
	for i := 0; i < c.Len(); i++ {
		if c.Alloc(60) == nil {
			t.Fatal("alloc from warm cache failed")
		}
	}
	if c.Hits == hits {
		t.Fatal("warm allocations did not hit the cache")
	}
	c.Put(m)
	if c.Len() == 0 {
		t.Fatal("Put did not cache the buffer")
	}
}

// TestCacheAccounting: buffers sitting in the cache are in-use from
// the pool's perspective, and Flush returns all of them.
func TestCacheAccounting(t *testing.T) {
	p := New(Config{Count: 64})
	c := p.NewCache(16)
	m := c.Alloc(60)
	if got := p.Available(); got != 64-8 { // one refill of limit/2
		t.Fatalf("available = %d, want %d", got, 64-8)
	}
	c.Put(m)
	c.Flush()
	if got := p.Available(); got != 64 {
		t.Fatalf("available after flush = %d, want 64", got)
	}
	if c.Len() != 0 {
		t.Fatalf("cache len after flush = %d", c.Len())
	}
}

// TestCacheSpill: overfilling the cache spills batches back to the
// pool instead of growing without bound.
func TestCacheSpill(t *testing.T) {
	p := New(Config{Count: 128})
	c := p.NewCache(8)
	bufs := make([]*Mbuf, 64)
	if n := c.AllocBatch(bufs, 60); n != 64 {
		t.Fatalf("alloc batch = %d", n)
	}
	for _, m := range bufs {
		c.Put(m)
	}
	if c.Len() > 8 {
		t.Fatalf("cache grew past its limit: %d", c.Len())
	}
	if c.Spills == 0 {
		t.Fatal("no spills recorded")
	}
	c.Flush()
	if got := p.Available(); got != 128 {
		t.Fatalf("available = %d, want 128", got)
	}
}

// TestCacheExhaustion: when pool and cache are dry, Alloc reports nil
// rather than panicking, and recycling resolves it.
func TestCacheExhaustion(t *testing.T) {
	p := New(Config{Count: 4})
	c := p.NewCache(8)
	bufs := make([]*Mbuf, 4)
	if n := c.AllocBatch(bufs, 60); n != 4 {
		t.Fatalf("alloc batch = %d", n)
	}
	if m := c.Alloc(60); m != nil {
		t.Fatal("alloc from exhausted pool succeeded")
	}
	bufs[0].Free() // foreign free, straight to the pool
	if m := c.Alloc(60); m == nil {
		t.Fatal("alloc after free failed")
	}
}

func TestCacheDoubleFreePanics(t *testing.T) {
	p := New(Config{Count: 8})
	c := p.NewCache(4)
	m := c.Alloc(60)
	m.Free()
	defer func() {
		if recover() == nil {
			t.Fatal("double free through cache did not panic")
		}
	}()
	c.Put(m)
}

func TestCacheDoublePutPanics(t *testing.T) {
	p := New(Config{Count: 8})
	c := p.NewCache(4)
	m := c.Alloc(60)
	c.Put(m)
	defer func() {
		if recover() == nil {
			t.Fatal("double Put did not panic")
		}
	}()
	c.Put(m)
}

// TestCacheFreeWhileCachedPanics: a buffer parked in a cache must not
// be freeable to the pool behind the cache's back.
func TestCacheFreeWhileCachedPanics(t *testing.T) {
	p := New(Config{Count: 8})
	c := p.NewCache(4)
	m := c.Alloc(60)
	c.Put(m)
	defer func() {
		if recover() == nil {
			t.Fatal("Free of a cached buffer did not panic")
		}
	}()
	m.Free()
}

func TestCacheWrongPoolPanics(t *testing.T) {
	p1 := New(Config{Count: 8})
	p2 := New(Config{Count: 8})
	c := p1.NewCache(4)
	m := p2.Alloc(60)
	defer func() {
		if recover() == nil {
			t.Fatal("cross-pool Put did not panic")
		}
	}()
	c.Put(m)
}

// TestCacheAllocBatchBulk: a whole burst is served with at most one
// pool refill per cache-half, hits are counted per buffer served from
// stock, and FreeBatch recycles the burst back through the cache.
func TestCacheAllocBatchBulk(t *testing.T) {
	p := New(Config{Count: 256})
	c := p.NewCache(64)
	out := make([]*Mbuf, 48)
	if n := c.AllocBatch(out, 60); n != 48 {
		t.Fatalf("AllocBatch = %d", n)
	}
	if c.Refills == 0 {
		t.Fatal("no refill recorded")
	}
	c.FreeBatch(out)
	hitsBefore := c.Hits
	if n := c.AllocBatch(out, 60); n != 48 {
		t.Fatalf("second AllocBatch = %d", n)
	}
	if c.Hits < hitsBefore+32 {
		t.Fatalf("bulk hits not counted per buffer: %d -> %d", hitsBefore, c.Hits)
	}
	c.FreeBatch(out)
	c.Flush()
	if p.Available() != p.Count() {
		t.Fatalf("pool leaked: %d of %d", p.Available(), p.Count())
	}
}

// TestCacheBufArray: a cache-bound BufArray allocates through the
// cache and FreeAll returns the buffers to it, not the pool.
func TestCacheBufArray(t *testing.T) {
	p := New(Config{Count: 128})
	c := p.NewCache(32)
	ba := c.BufArray(16)
	if n := ba.Alloc(60); n != 16 {
		t.Fatalf("Alloc = %d", n)
	}
	spills := c.Spills
	ba.FreeAll()
	if c.Len() == 0 {
		t.Fatal("FreeAll bypassed the cache")
	}
	if c.Spills != spills {
		t.Fatalf("FreeAll spilled unexpectedly")
	}
	for _, m := range ba.Bufs {
		if m != nil {
			t.Fatal("FreeAll left references")
		}
	}
	c.Flush()
	if p.Available() != p.Count() {
		t.Fatalf("pool leaked: %d of %d", p.Available(), p.Count())
	}
}

// TestCacheAllocBatchExhaustion: the burst comes up short only when
// cache and pool are both dry, and recovers after a free.
func TestCacheAllocBatchExhaustion(t *testing.T) {
	p := New(Config{Count: 16})
	c := p.NewCache(8)
	out := make([]*Mbuf, 32)
	if n := c.AllocBatch(out, 60); n != 16 {
		t.Fatalf("AllocBatch on small pool = %d, want 16", n)
	}
	if n := c.AllocBatch(out[:4], 60); n != 0 {
		t.Fatalf("dry AllocBatch = %d, want 0", n)
	}
	c.Put(out[0])
	if n := c.AllocBatch(out[:4], 60); n != 1 {
		t.Fatalf("post-free AllocBatch = %d, want 1", n)
	}
}
