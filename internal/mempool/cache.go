package mempool

import "fmt"

// Cache is a per-core allocation front for a Pool — DPDK's per-lcore
// mempool cache (§4.2: "each task uses its own queues and mempools").
// The owning core allocates and frees through the cache; the shared
// pool (and its lock) is touched only to refill or spill a batch at a
// time, so in the steady state most operations are lock-free slice
// pushes and pops.
//
// A Cache is NOT safe for concurrent use: it belongs to exactly one
// core (one multicore shard, one engine goroutine). Buffers held in
// the cache are accounted as in-use by the pool — Pool.Available does
// not count them — and may be returned to the pool at any time with
// Flush. Buffers freed elsewhere (e.g. by the NIC model after
// transmit) go straight back to the pool, exactly like a DPDK free
// from a foreign lcore bypassing the owner's cache.
type Cache struct {
	pool    *Pool
	local   []*Mbuf
	scratch []*Mbuf // reusable transfer buffer for refills
	limit   int

	// Hits counts allocations served from the cache; Refills and
	// Spills count batch transfers from/to the backing pool.
	Hits    uint64
	Refills uint64
	Spills  uint64
}

// defaultCacheSize mirrors DPDK's typical per-lcore cache of a few
// hundred mbufs.
const defaultCacheSize = 256

// NewCache creates a per-core cache over p holding at most size
// buffers (<= 0 selects the default of 256).
func (p *Pool) NewCache(size int) *Cache {
	if size <= 0 {
		size = defaultCacheSize
	}
	half := size / 2
	if half < 1 {
		half = 1
	}
	return &Cache{
		pool:    p,
		limit:   size,
		local:   make([]*Mbuf, 0, size),
		scratch: make([]*Mbuf, half),
	}
}

// Pool returns the backing pool.
func (c *Cache) Pool() *Pool { return c.pool }

// Len returns the number of buffers currently held in the cache.
func (c *Cache) Len() int { return len(c.local) }

// refill pulls up to half the cache capacity from the pool (one lock
// acquisition, no allocation). Returns the number obtained.
func (c *Cache) refill() int {
	n := c.pool.AllocBatch(c.scratch, 0)
	if n > 0 {
		c.Refills++
		for i := 0; i < n; i++ {
			c.scratch[i].cached = true
			c.local = append(c.local, c.scratch[i])
			c.scratch[i] = nil
		}
	}
	return n
}

// Alloc takes one buffer with the given packet length, refilling from
// the pool on a cache miss. Returns nil only when pool and cache are
// both exhausted.
func (c *Cache) Alloc(length int) *Mbuf {
	if len(c.local) == 0 {
		if c.refill() == 0 {
			return nil
		}
	} else {
		c.Hits++
	}
	n := len(c.local) - 1
	m := c.local[n]
	c.local[n] = nil
	c.local = c.local[:n]
	m.cached = false
	m.Reset(length)
	return m
}

// AllocBatch fills out with buffers of the given length and returns
// how many it could allocate (short only when pool and cache ran dry).
// The batch is served from the cached stock in bulk; the pool lock is
// taken at most once per refill, not per buffer.
func (c *Cache) AllocBatch(out []*Mbuf, length int) int {
	filled := 0
	for filled < len(out) {
		fromStock := len(c.local) > 0
		if !fromStock && c.refill() == 0 {
			return filled
		}
		n := len(c.local)
		take := len(out) - filled
		if take > n {
			take = n
		}
		for i := 0; i < take; i++ {
			m := c.local[n-1-i]
			c.local[n-1-i] = nil
			m.cached = false
			m.Reset(length)
			out[filled+i] = m
		}
		c.local = c.local[:n-take]
		if fromStock {
			c.Hits += uint64(take)
		}
		filled += take
	}
	return filled
}

// FreeBatch returns a whole burst to the cache — the task-side
// recycling path. Overflow spills to the pool half a cache at a time,
// so the pool lock is amortized across the batch exactly as in
// AllocBatch.
func (c *Cache) FreeBatch(bufs []*Mbuf) {
	for _, m := range bufs {
		c.Put(m)
	}
}

// BufArray returns a batch wrapper of the given size whose Alloc path
// goes through this cache (size <= 0 selects DefaultBatchSize) — the
// reusable per-task burst the batched TX loops are written around.
func (c *Cache) BufArray(size int) *BufArray {
	if size <= 0 {
		size = DefaultBatchSize
	}
	return &BufArray{Bufs: make([]*Mbuf, size), pool: c.pool, cache: c}
}

// Put returns a buffer to the cache. When the cache is full, half of
// it spills back to the pool in one batch. Freeing the same buffer
// twice — whether through the pool or the cache — panics.
func (c *Cache) Put(m *Mbuf) {
	if m.pool != c.pool {
		panic("mempool: buffer returned to cache of wrong pool")
	}
	if !m.inUse {
		panic("mempool: double free through cache")
	}
	if m.cached {
		panic(fmt.Sprintf("mempool: double Put of buffer %d into cache", m.index))
	}
	if len(c.local) >= c.limit {
		c.spill(c.limit / 2)
	}
	m.cached = true
	c.local = append(c.local, m)
}

// spill returns n cached buffers to the pool in one batch (one lock
// acquisition).
func (c *Cache) spill(n int) {
	if n > len(c.local) {
		n = len(c.local)
	}
	if n <= 0 {
		return
	}
	c.Spills++
	victims := c.local[len(c.local)-n:]
	for _, m := range victims {
		m.cached = false
	}
	c.pool.FreeBatch(victims)
	for i := range victims {
		victims[i] = nil
	}
	c.local = c.local[:len(c.local)-n]
}

// Flush returns every cached buffer to the pool (end-of-run cleanup).
func (c *Cache) Flush() { c.spill(len(c.local)) }
