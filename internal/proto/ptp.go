package proto

import "encoding/binary"

// PTP (IEEE 1588) constants. The paper (§6) repurposes the NICs' PTP
// timestamping engines: the hardware filter matches the first payload
// byte (message type) and requires the second byte to hold the PTP
// version; every other field may carry arbitrary data, which is what
// lets MoonGen timestamp almost any packet.
const (
	// PTPHdrLen is the common PTP message header length.
	PTPHdrLen = 34

	// PTPUDPPort is the PTP event message UDP port (319); the port is
	// configurable on the 10 GbE chips.
	PTPUDPPort uint16 = 319

	// PTPVersion2 is the version byte the hardware filters check.
	PTPVersion2 uint8 = 2

	// PTPMinUDPSize is the minimum UDP PTP packet size the
	// investigated NICs will timestamp (§6.4): smaller UDP PTP
	// packets are refused; layer-2 PTP packets have no such limit.
	PTPMinUDPSize = 80
)

// PTP message types (event messages get timestamped).
const (
	PTPMsgSync      uint8 = 0x0
	PTPMsgDelayReq  uint8 = 0x1
	PTPMsgFollowUp  uint8 = 0x8
	PTPMsgDelayResp uint8 = 0x9
	// PTPMsgNoTimestamp is a message-type nibble outside the event
	// range; MoonGen uses such values for the filler packets that the
	// NIC must NOT timestamp (§6.4), so the device under test cannot
	// tell timestamped and plain packets apart.
	PTPMsgNoTimestamp uint8 = 0xF
)

// PTPHdr is a zero-copy view of a PTP common message header.
type PTPHdr []byte

// MessageType returns the low nibble of the first byte.
func (h PTPHdr) MessageType() uint8 { return h[0] & 0x0f }

// SetMessageType sets the message-type nibble.
func (h PTPHdr) SetMessageType(v uint8) { h[0] = h[0]&0xf0 | v&0x0f }

// TransportSpecific returns the high nibble of the first byte.
func (h PTPHdr) TransportSpecific() uint8 { return h[0] >> 4 }

// Version returns the PTP version byte (low nibble of byte 1).
func (h PTPHdr) Version() uint8 { return h[1] & 0x0f }

// SetVersion sets the PTP version byte.
func (h PTPHdr) SetVersion(v uint8) { h[1] = h[1]&0xf0 | v&0x0f }

// MessageLength returns the messageLength field.
func (h PTPHdr) MessageLength() uint16 { return binary.BigEndian.Uint16(h[2:4]) }

// SetMessageLength sets the messageLength field.
func (h PTPHdr) SetMessageLength(v uint16) { binary.BigEndian.PutUint16(h[2:4], v) }

// Domain returns the domainNumber field.
func (h PTPHdr) Domain() uint8 { return h[4] }

// SetDomain sets the domainNumber field.
func (h PTPHdr) SetDomain(v uint8) { h[4] = v }

// SequenceID returns the sequenceId field.
func (h PTPHdr) SequenceID() uint16 { return binary.BigEndian.Uint16(h[30:32]) }

// SetSequenceID sets the sequenceId field. MoonGen uses it to match
// transmitted and received timestamped packets.
func (h PTPHdr) SetSequenceID(v uint16) { binary.BigEndian.PutUint16(h[30:32], v) }

// PTPFill is the Fill configuration for a PTP header.
type PTPFill struct {
	MessageType uint8 // default PTPMsgSync (timestamped)
	Version     uint8 // default PTPVersion2
	SequenceID  uint16
	Length      uint16
}

// Fill writes the common header fields the hardware filter cares about
// and zeroes the rest.
func (h PTPHdr) Fill(cfg PTPFill) {
	for i := 0; i < PTPHdrLen && i < len(h); i++ {
		h[i] = 0
	}
	h.SetMessageType(cfg.MessageType)
	if cfg.Version == 0 {
		cfg.Version = PTPVersion2
	}
	h.SetVersion(cfg.Version)
	if cfg.Length == 0 {
		cfg.Length = PTPHdrLen
	}
	h.SetMessageLength(cfg.Length)
	h.SetSequenceID(cfg.SequenceID)
}

// IsTimestampedType reports whether msgType is a PTP event message the
// NIC hardware timestamps (Sync and Delay_Req in two-step mode).
func IsTimestampedType(msgType uint8) bool {
	return msgType == PTPMsgSync || msgType == PTPMsgDelayReq
}
