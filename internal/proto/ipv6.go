package proto

import "encoding/binary"

// IPv6HdrLen is the fixed IPv6 header length.
const IPv6HdrLen = 40

// IPv6Hdr is a zero-copy view of an IPv6 header.
type IPv6Hdr []byte

// Version returns the IP version nibble.
func (h IPv6Hdr) Version() uint8 { return h[0] >> 4 }

// TrafficClass returns the traffic class byte.
func (h IPv6Hdr) TrafficClass() uint8 {
	return h[0]<<4 | h[1]>>4
}

// SetTrafficClass sets the traffic class byte.
func (h IPv6Hdr) SetTrafficClass(tc uint8) {
	h[0] = 0x60 | tc>>4
	h[1] = h[1]&0x0f | tc<<4
}

// FlowLabel returns the 20-bit flow label.
func (h IPv6Hdr) FlowLabel() uint32 {
	return binary.BigEndian.Uint32(h[0:4]) & 0xfffff
}

// SetFlowLabel sets the 20-bit flow label.
func (h IPv6Hdr) SetFlowLabel(fl uint32) {
	v := binary.BigEndian.Uint32(h[0:4])
	binary.BigEndian.PutUint32(h[0:4], v&^0xfffff|fl&0xfffff)
}

// PayloadLength returns the payload length (bytes after the header).
func (h IPv6Hdr) PayloadLength() uint16 { return binary.BigEndian.Uint16(h[4:6]) }

// SetPayloadLength sets the payload length.
func (h IPv6Hdr) SetPayloadLength(v uint16) { binary.BigEndian.PutUint16(h[4:6], v) }

// NextHeader returns the next-header protocol number.
func (h IPv6Hdr) NextHeader() uint8 { return h[6] }

// SetNextHeader sets the next-header protocol number.
func (h IPv6Hdr) SetNextHeader(v uint8) { h[6] = v }

// HopLimit returns the hop limit.
func (h IPv6Hdr) HopLimit() uint8 { return h[7] }

// SetHopLimit sets the hop limit.
func (h IPv6Hdr) SetHopLimit(v uint8) { h[7] = v }

// Src returns the source address.
func (h IPv6Hdr) Src() IPv6 {
	var ip IPv6
	copy(ip[:], h[8:24])
	return ip
}

// SetSrc sets the source address.
func (h IPv6Hdr) SetSrc(ip IPv6) { copy(h[8:24], ip[:]) }

// Dst returns the destination address.
func (h IPv6Hdr) Dst() IPv6 {
	var ip IPv6
	copy(ip[:], h[24:40])
	return ip
}

// SetDst sets the destination address.
func (h IPv6Hdr) SetDst(ip IPv6) { copy(h[24:40], ip[:]) }

// Payload returns the bytes after the fixed header.
func (h IPv6Hdr) Payload() []byte { return h[IPv6HdrLen:] }

// IPv6Fill is the Fill configuration for an IPv6 header.
type IPv6Fill struct {
	Src           IPv6
	Dst           IPv6
	NextHeader    uint8
	HopLimit      uint8 // default 64
	TrafficClass  uint8
	FlowLabel     uint32
	PayloadLength uint16
}

// Fill writes the whole header.
func (h IPv6Hdr) Fill(cfg IPv6Fill) {
	binary.BigEndian.PutUint32(h[0:4], 6<<28)
	h.SetTrafficClass(cfg.TrafficClass)
	h.SetFlowLabel(cfg.FlowLabel)
	h.SetPayloadLength(cfg.PayloadLength)
	h.SetNextHeader(cfg.NextHeader)
	if cfg.HopLimit == 0 {
		cfg.HopLimit = 64
	}
	h.SetHopLimit(cfg.HopLimit)
	h.SetSrc(cfg.Src)
	h.SetDst(cfg.Dst)
}
