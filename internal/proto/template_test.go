package proto

import (
	"bytes"
	"math/rand"
	"testing"
)

// edgeWords biases random field values toward the one's-complement
// corner cases: 0x0000 and 0xFFFF are the two representations of zero,
// and values adjacent to them exercise the carry-fold boundaries of
// RFC 1624 §3.
func edgeWord(rng *rand.Rand) uint16 {
	switch rng.Intn(4) {
	case 0:
		return 0x0000
	case 1:
		return 0xffff
	case 2:
		return []uint16{0x0001, 0xfffe, 0x8000, 0x7fff}[rng.Intn(4)]
	default:
		return uint16(rng.Uint32())
	}
}

// TestUpdateChecksum16MatchesRecompute is the incremental-checksum
// property: starting from a realistic IPv4 header, any sequence of
// single-word mutations maintained through UpdateChecksum16 yields the
// same checksum as a full RFC 1071 recompute — including mutations to
// and from 0x0000/0xFFFF, the negative-zero representations where the
// folded arithmetic could diverge.
func TestUpdateChecksum16MatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		hdr := make([]byte, IPv4HdrLen)
		for i := range hdr {
			hdr[i] = byte(rng.Uint32())
		}
		hdr[0] = 0x45 // version/IHL: every real header is non-zero
		ip := IPv4Hdr(hdr)
		ip.SetHeaderChecksum(0)
		cs := Checksum(hdr)
		ip.SetHeaderChecksum(cs)

		for step := 0; step < 50; step++ {
			// Mutate one non-checksum 16-bit word.
			off := []int{0, 2, 4, 6, 8, 12, 14, 16, 18}[rng.Intn(9)]
			old := uint16(hdr[off])<<8 | uint16(hdr[off+1])
			v := edgeWord(rng)
			if off == 0 {
				// Keep version/IHL intact; only the TOS byte may vary.
				v = 0x4500 | v&0x00ff
			}
			hdr[off], hdr[off+1] = byte(v>>8), byte(v)
			cs = UpdateChecksum16(cs, old, v)
			ip.SetHeaderChecksum(cs)

			// Full recompute for comparison.
			ip.SetHeaderChecksum(0)
			want := Checksum(hdr)
			ip.SetHeaderChecksum(cs)
			if cs != want {
				t.Fatalf("trial %d step %d: incremental %#04x != recompute %#04x (off %d, %#04x->%#04x)",
					trial, step, cs, want, off, old, v)
			}
			if !ip.VerifyChecksum() {
				t.Fatalf("trial %d step %d: header does not verify", trial, step)
			}
		}
	}
}

// TestTemplateApplyMatchesFill pins the byte-exactness contract: Apply
// writes exactly the bytes the packet views' Fill methods write
// (checksums left zero), for both L4 variants and with a TOS tweak.
func TestTemplateApplyMatchesFill(t *testing.T) {
	src, dst := MustIPv4("10.0.0.1"), MustIPv4("10.1.0.1")
	ethSrc := MAC{0x02, 0, 0, 0, 0, 1}
	ethDst := MAC{0x02, 0, 0, 0, 0, 2}

	udpCfg := UDPPacketFill{
		PktLength: 60, EthSrc: ethSrc, EthDst: ethDst,
		IPSrc: src, IPDst: dst, UDPSrc: 1000, UDPDst: 2000, TOS: 0xb8,
	}
	ref := make([]byte, 60)
	UDPPacket{B: ref}.Fill(udpCfg)
	got := make([]byte, 60)
	NewUDPTemplate(udpCfg).Apply(got)
	if !bytes.Equal(ref, got) {
		t.Fatalf("UDP template image differs from Fill:\n ref %x\n got %x", ref, got)
	}

	tcpCfg := TCPPacketFill{
		PktLength: 74, EthSrc: ethSrc, EthDst: ethDst,
		IPSrc: src, IPDst: dst, TCPSrc: 1000, TCPDst: 2000,
	}
	ref = make([]byte, 74)
	TCPPacket{B: ref}.Fill(tcpCfg)
	IPv4Hdr(ref[EthHdrLen:]).SetTOS(0x10)
	tmpl := NewTCPTemplate(tcpCfg)
	tmpl.SetTOS(0x10)
	got = make([]byte, 74)
	tmpl.Apply(got)
	if !bytes.Equal(ref, got) {
		t.Fatalf("TCP template image differs from Fill+SetTOS:\n ref %x\n got %x", ref, got)
	}
}

// TestTemplateIncrementalChecksums is the tentpole's end-to-end
// property: a template whose live IP checksum and cached transport sum
// are maintained through incremental setters produces, after any
// randomized mutation sequence, exactly the checksums a from-scratch
// CalcChecksums computes over the same bytes — the template fill path
// and the full recompute path are interchangeable bit for bit.
func TestTemplateIncrementalChecksums(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const pktLen = 60
	for trial := 0; trial < 200; trial++ {
		tmpl := NewUDPTemplate(UDPPacketFill{
			PktLength: pktLen,
			IPSrc:     MustIPv4("10.0.0.1"), IPDst: MustIPv4("10.1.0.1"),
			UDPSrc: 1000, UDPDst: 2000,
		})
		tmpl.CalcIPChecksum()

		payload := make([]byte, pktLen-tmpl.Len())
		for step := 0; step < 30; step++ {
			switch rng.Intn(6) {
			case 0:
				tmpl.SetIPSrc(IPv4(uint32(edgeWord(rng))<<16 | uint32(edgeWord(rng))))
			case 1:
				tmpl.SetIPDst(IPv4(uint32(edgeWord(rng))<<16 | uint32(edgeWord(rng))))
			case 2:
				tmpl.SetIPID(edgeWord(rng))
			case 3:
				tmpl.SetTOS(uint8(edgeWord(rng)))
			case 4:
				tmpl.SetSrcPort(edgeWord(rng))
			default:
				tmpl.SetDstPort(edgeWord(rng))
			}
			// Randomize the payload, with all-0x00/0xFF runs mixed in to
			// push the folded sum across the 0x0000/0xFFFF boundary.
			switch rng.Intn(3) {
			case 0:
				for i := range payload {
					payload[i] = 0x00
				}
			case 1:
				for i := range payload {
					payload[i] = 0xff
				}
			default:
				rng.Read(payload)
			}

			// Template path: Apply + incremental checksums.
			got := make([]byte, pktLen)
			tmpl.Apply(got)
			copy(got[tmpl.Len():], payload)
			gotUDP := tmpl.TransportChecksum(payload)
			UDPPacket{B: got}.UDP().SetChecksum(gotUDP)

			// Reference path: same bytes, checksums from scratch.
			want := make([]byte, pktLen)
			copy(want, got)
			wp := UDPPacket{B: want}
			wp.IP().SetHeaderChecksum(0)
			wp.UDP().SetChecksum(0)
			wp.CalcChecksums()

			if !bytes.Equal(got, want) {
				t.Fatalf("trial %d step %d: template packet differs from recompute\n got %x\nwant %x",
					trial, step, got, want)
			}
			if !(UDPPacket{B: got}).VerifyChecksums() {
				t.Fatalf("trial %d step %d: packet does not verify", trial, step)
			}
		}
	}
}

// TestTemplateTransportChecksumTCP covers the TCP variant (no RFC 768
// zero substitution) of the cached-sum transport checksum.
func TestTemplateTransportChecksumTCP(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	const pktLen = 74
	tmpl := NewTCPTemplate(TCPPacketFill{
		PktLength: pktLen,
		IPSrc:     MustIPv4("10.0.0.1"), IPDst: MustIPv4("10.1.0.1"),
		TCPSrc: 1000, TCPDst: 2000,
	})
	payload := make([]byte, pktLen-tmpl.Len())
	for step := 0; step < 200; step++ {
		tmpl.SetSrcPort(edgeWord(rng))
		tmpl.SetDstPort(edgeWord(rng))
		rng.Read(payload)

		pkt := make([]byte, pktLen)
		tmpl.Apply(pkt)
		copy(pkt[tmpl.Len():], payload)
		ip := TCPPacket{B: pkt}.IP()
		seg := pkt[EthHdrLen+IPv4HdrLen:]
		want := TransportChecksumIPv4(ip.Src(), ip.Dst(), IPProtoTCP, seg)
		if got := tmpl.TransportChecksum(payload); got != want {
			t.Fatalf("step %d: cached-sum checksum %#04x != recompute %#04x", step, got, want)
		}
	}
}

// BenchmarkTemplateApply measures the template fill against the full
// per-packet Fill it replaces in the transmit loops.
func BenchmarkTemplateApply(b *testing.B) {
	tmpl := NewUDPTemplate(UDPPacketFill{
		PktLength: 60,
		IPSrc:     MustIPv4("10.0.0.1"), IPDst: MustIPv4("10.1.0.1"),
		UDPSrc: 1000, UDPDst: 2000,
	})
	buf := make([]byte, 60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tmpl.Apply(buf)
	}
}

func BenchmarkFullFill(b *testing.B) {
	cfg := UDPPacketFill{
		PktLength: 60,
		IPSrc:     MustIPv4("10.0.0.1"), IPDst: MustIPv4("10.1.0.1"),
		UDPSrc: 1000, UDPDst: 2000,
	}
	buf := make([]byte, 60)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		UDPPacket{B: buf}.Fill(cfg)
	}
}
