// Package proto implements the packet header library used by the
// generator: Ethernet, ARP, IPv4, IPv6, UDP, TCP, ICMP, PTP and IPsec
// (ESP/AH) headers with zero-copy accessors over raw frame bytes,
// MoonGen-style Fill helpers, Internet checksums (including the IP
// pseudo-header variants the NICs do not offload), and the Ethernet FCS.
//
// The design follows MoonGen's packet API: a header type is a []byte
// view into the frame, field setters write network byte order in place,
// and packet views (UDPPacket, TCPPacket, ...) stack the headers for a
// protocol combination so that a transmit loop can pre-fill every field
// once and touch only the fields that vary per packet.
package proto

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
)

// MAC is an Ethernet hardware address.
type MAC [6]byte

// BroadcastMAC is ff:ff:ff:ff:ff:ff.
var BroadcastMAC = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// ParseMAC parses colon-separated hex notation ("10:11:12:13:14:15").
func ParseMAC(s string) (MAC, error) {
	var m MAC
	parts := strings.Split(s, ":")
	if len(parts) != 6 {
		return m, fmt.Errorf("proto: invalid MAC %q", s)
	}
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 16, 8)
		if err != nil {
			return m, fmt.Errorf("proto: invalid MAC %q: %v", s, err)
		}
		m[i] = byte(v)
	}
	return m, nil
}

// MustMAC is ParseMAC that panics on error, for constants in examples.
func MustMAC(s string) MAC {
	m, err := ParseMAC(s)
	if err != nil {
		panic(err)
	}
	return m
}

// String formats the address as colon-separated hex.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// IsBroadcast reports whether the address is the broadcast address.
func (m MAC) IsBroadcast() bool { return m == BroadcastMAC }

// IsMulticast reports whether the group bit is set.
func (m MAC) IsMulticast() bool { return m[0]&1 == 1 }

// RandomMAC returns a locally administered unicast MAC from rng.
func RandomMAC(rng *rand.Rand) MAC {
	var m MAC
	for i := range m {
		m[i] = byte(rng.Intn(256))
	}
	m[0] = (m[0] | 2) &^ 1 // locally administered, unicast
	return m
}

// IPv4 is an IPv4 address in host-independent representation; the
// underlying uint32 is the address in its natural big-endian value
// (10.0.0.1 == 0x0A000001), which makes address arithmetic like
// "baseIP + i" from MoonGen scripts natural.
type IPv4 uint32

// ParseIPv4 parses dotted-quad notation. It is MoonGen's
// parseIPAddress for IPv4.
func ParseIPv4(s string) (IPv4, error) {
	parts := strings.Split(s, ".")
	if len(parts) != 4 {
		return 0, fmt.Errorf("proto: invalid IPv4 %q", s)
	}
	var v uint32
	for _, p := range parts {
		o, err := strconv.ParseUint(p, 10, 8)
		if err != nil {
			return 0, fmt.Errorf("proto: invalid IPv4 %q: %v", s, err)
		}
		v = v<<8 | uint32(o)
	}
	return IPv4(v), nil
}

// MustIPv4 is ParseIPv4 that panics on error.
func MustIPv4(s string) IPv4 {
	ip, err := ParseIPv4(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String formats the address as dotted quad.
func (ip IPv4) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(ip>>24), byte(ip>>16), byte(ip>>8), byte(ip))
}

// Bytes returns the 4-byte network-order representation.
func (ip IPv4) Bytes() [4]byte {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], uint32(ip))
	return b
}

// IPv4FromBytes builds an address from 4 network-order bytes.
func IPv4FromBytes(b []byte) IPv4 {
	return IPv4(binary.BigEndian.Uint32(b))
}

// IPv6 is an IPv6 address.
type IPv6 [16]byte

// ParseIPv6 parses the canonical textual forms including "::"
// compression (no embedded IPv4 dotted form, no zone).
func ParseIPv6(s string) (IPv6, error) {
	var ip IPv6
	if s == "" {
		return ip, fmt.Errorf("proto: empty IPv6 address")
	}
	halves := strings.Split(s, "::")
	if len(halves) > 2 {
		return ip, fmt.Errorf("proto: invalid IPv6 %q: multiple ::", s)
	}
	parse := func(part string) ([]uint16, error) {
		if part == "" {
			return nil, nil
		}
		fields := strings.Split(part, ":")
		out := make([]uint16, len(fields))
		for i, f := range fields {
			v, err := strconv.ParseUint(f, 16, 16)
			if err != nil {
				return nil, fmt.Errorf("proto: invalid IPv6 %q: %v", s, err)
			}
			out[i] = uint16(v)
		}
		return out, nil
	}
	left, err := parse(halves[0])
	if err != nil {
		return ip, err
	}
	var right []uint16
	if len(halves) == 2 {
		right, err = parse(halves[1])
		if err != nil {
			return ip, err
		}
	}
	total := len(left) + len(right)
	if len(halves) == 1 {
		if total != 8 {
			return ip, fmt.Errorf("proto: invalid IPv6 %q: %d groups", s, total)
		}
	} else if total > 7 {
		return ip, fmt.Errorf("proto: invalid IPv6 %q: too many groups with ::", s)
	}
	groups := make([]uint16, 8)
	copy(groups, left)
	copy(groups[8-len(right):], right)
	for i, g := range groups {
		binary.BigEndian.PutUint16(ip[2*i:], g)
	}
	return ip, nil
}

// MustIPv6 is ParseIPv6 that panics on error.
func MustIPv6(s string) IPv6 {
	ip, err := ParseIPv6(s)
	if err != nil {
		panic(err)
	}
	return ip
}

// String formats the address in full (uncompressed) colon-hex notation.
func (ip IPv6) String() string {
	var sb strings.Builder
	for i := 0; i < 8; i++ {
		if i > 0 {
			sb.WriteByte(':')
		}
		fmt.Fprintf(&sb, "%x", binary.BigEndian.Uint16(ip[2*i:]))
	}
	return sb.String()
}
