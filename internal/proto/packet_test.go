package proto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func testUDPFill() (UDPPacket, UDPPacketFill) {
	b := make([]byte, 124)
	cfg := UDPPacketFill{
		PktLength: 124,
		EthSrc:    MustMAC("02:00:00:00:00:01"),
		EthDst:    MustMAC("10:11:12:13:14:15"),
		IPSrc:     MustIPv4("10.0.0.1"),
		IPDst:     MustIPv4("192.168.1.1"),
		UDPSrc:    1234,
		UDPDst:    42,
	}
	p := UDPPacket{B: b}
	p.Fill(cfg)
	return p, cfg
}

func TestUDPPacketFill(t *testing.T) {
	p, cfg := testUDPFill()
	if p.Eth().EtherType() != EtherTypeIPv4 {
		t.Fatalf("ethertype = %#x", p.Eth().EtherType())
	}
	if p.Eth().Src() != cfg.EthSrc || p.Eth().Dst() != cfg.EthDst {
		t.Fatal("MACs wrong")
	}
	ip := p.IP()
	if ip.Version() != 4 || ip.HdrLen() != 20 {
		t.Fatalf("version=%d ihl=%d", ip.Version(), ip.HdrLen())
	}
	if ip.TotalLength() != 110 {
		t.Fatalf("total length = %d", ip.TotalLength())
	}
	if ip.TTL() != 64 || ip.Protocol() != IPProtoUDP {
		t.Fatalf("ttl=%d proto=%d", ip.TTL(), ip.Protocol())
	}
	if ip.Src() != cfg.IPSrc || ip.Dst() != cfg.IPDst {
		t.Fatal("IPs wrong")
	}
	udp := p.UDP()
	if udp.SrcPort() != 1234 || udp.DstPort() != 42 {
		t.Fatalf("ports %d->%d", udp.SrcPort(), udp.DstPort())
	}
	if udp.Length() != 90 {
		t.Fatalf("udp length = %d", udp.Length())
	}
	if len(p.Payload()) != 124-42 {
		t.Fatalf("payload len = %d", len(p.Payload()))
	}
}

func TestUDPChecksums(t *testing.T) {
	p, _ := testUDPFill()
	p.CalcChecksums()
	if !p.IP().VerifyChecksum() {
		t.Fatal("IP checksum invalid")
	}
	if !p.VerifyChecksums() {
		t.Fatal("UDP checksum invalid")
	}
	// Corrupt a payload byte: UDP checksum must now fail.
	p.Payload()[0] ^= 0xff
	if p.VerifyChecksums() {
		t.Fatal("corrupted packet verified")
	}
}

// Property: for random addresses/ports/sizes, filled+checksummed UDP
// packets always verify, and the IP checksum survives the per-packet
// source-IP modification + re-checksum pattern from the paper's
// Listing 2.
func TestUDPFillChecksumProperty(t *testing.T) {
	f := func(srcIP, dstIP uint32, sp, dp uint16, sizeSeed uint16, payload []byte) bool {
		size := 60 + int(sizeSeed%1400)
		b := make([]byte, size)
		p := UDPPacket{B: b}
		p.Fill(UDPPacketFill{
			PktLength: size,
			IPSrc:     IPv4(srcIP), IPDst: IPv4(dstIP),
			UDPSrc: sp, UDPDst: dp,
		})
		copy(p.Payload(), payload)
		p.CalcChecksums()
		return p.VerifyChecksums()
	}
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(7))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestIPv4HeaderFieldRoundTrip(t *testing.T) {
	h := IPv4Hdr(make([]byte, 20))
	h.SetVersionIHL(20)
	h.SetTOS(0x2e)
	h.SetTotalLength(1500)
	h.SetID(0xBEEF)
	h.SetFlags(2)
	h.SetFragOffset(1234)
	h.SetTTL(33)
	h.SetProtocol(IPProtoTCP)
	h.SetSrc(MustIPv4("1.2.3.4"))
	h.SetDst(MustIPv4("5.6.7.8"))
	if h.TOS() != 0x2e || h.TotalLength() != 1500 || h.ID() != 0xBEEF {
		t.Fatal("basic fields wrong")
	}
	if h.Flags() != 2 || h.FragOffset() != 1234 {
		t.Fatalf("flags=%d off=%d", h.Flags(), h.FragOffset())
	}
	if h.TTL() != 33 || h.Protocol() != IPProtoTCP {
		t.Fatal("ttl/proto wrong")
	}
	// Setting the offset must not clobber flags and vice versa.
	h.SetFlags(5)
	if h.FragOffset() != 1234 {
		t.Fatal("SetFlags clobbered FragOffset")
	}
	h.SetFragOffset(77)
	if h.Flags() != 5 {
		t.Fatal("SetFragOffset clobbered Flags")
	}
}

func TestTCPPacketFill(t *testing.T) {
	b := make([]byte, 60)
	p := TCPPacket{B: b}
	p.Fill(TCPPacketFill{
		PktLength: 60,
		IPSrc:     MustIPv4("10.0.0.1"),
		IPDst:     MustIPv4("10.0.0.2"),
		TCPSrc:    4444, TCPDst: 80,
		SeqNum: 1000, AckNum: 2000,
		Flags: TCPFlagSYN | TCPFlagACK,
	})
	tcp := p.TCP()
	if tcp.SrcPort() != 4444 || tcp.DstPort() != 80 {
		t.Fatal("ports wrong")
	}
	if tcp.SeqNum() != 1000 || tcp.AckNum() != 2000 {
		t.Fatal("seq/ack wrong")
	}
	if tcp.DataOffset() != 20 {
		t.Fatalf("data offset = %d", tcp.DataOffset())
	}
	if tcp.Flags() != TCPFlagSYN|TCPFlagACK {
		t.Fatalf("flags = %#x", tcp.Flags())
	}
	if tcp.Window() != 65535 {
		t.Fatalf("window = %d", tcp.Window())
	}
	p.CalcChecksums()
	if !p.VerifyChecksums() {
		t.Fatal("TCP checksums invalid")
	}
	p.B[50] ^= 1
	if p.VerifyChecksums() {
		t.Fatal("corrupted TCP packet verified")
	}
}

func TestUDP6PacketFill(t *testing.T) {
	b := make([]byte, 80)
	p := UDP6Packet{B: b}
	p.Fill(UDP6PacketFill{
		PktLength: 80,
		IPSrc:     MustIPv6("2001:db8::1"),
		IPDst:     MustIPv6("2001:db8::2"),
		UDPSrc:    1000, UDPDst: 2000,
	})
	ip := p.IP()
	if ip.Version() != 6 {
		t.Fatalf("version = %d", ip.Version())
	}
	if ip.PayloadLength() != 80-EthHdrLen-IPv6HdrLen {
		t.Fatalf("payload length = %d", ip.PayloadLength())
	}
	if ip.NextHeader() != IPProtoUDP || ip.HopLimit() != 64 {
		t.Fatal("nexthdr/hoplimit wrong")
	}
	p.CalcChecksums()
	if !p.VerifyChecksums() {
		t.Fatal("UDPv6 checksum invalid")
	}
}

func TestIPv6HeaderBitfields(t *testing.T) {
	h := IPv6Hdr(make([]byte, IPv6HdrLen))
	h.Fill(IPv6Fill{TrafficClass: 0xAB, FlowLabel: 0xBEEF5})
	if h.Version() != 6 {
		t.Fatalf("version = %d", h.Version())
	}
	if h.TrafficClass() != 0xAB {
		t.Fatalf("tc = %#x", h.TrafficClass())
	}
	if h.FlowLabel() != 0xBEEF5 {
		t.Fatalf("flow = %#x", h.FlowLabel())
	}
	// Mutating one field must not disturb the others.
	h.SetFlowLabel(0x12345)
	if h.TrafficClass() != 0xAB || h.Version() != 6 {
		t.Fatal("SetFlowLabel clobbered neighbors")
	}
	h.SetTrafficClass(0xCD)
	if h.FlowLabel() != 0x12345 || h.Version() != 6 {
		t.Fatal("SetTrafficClass clobbered neighbors")
	}
}

func TestICMPPacketFill(t *testing.T) {
	b := make([]byte, 64)
	p := ICMPPacket{B: b}
	p.Fill(ICMPPacketFill{
		PktLength: 64,
		IPSrc:     MustIPv4("10.0.0.1"),
		IPDst:     MustIPv4("10.0.0.2"),
		ID:        7, Seq: 9,
	})
	ic := p.ICMP()
	if ic.Type() != ICMPTypeEcho || ic.ID() != 7 || ic.Seq() != 9 {
		t.Fatal("icmp fields wrong")
	}
	if !ic.VerifyChecksumV4(64 - EthHdrLen - IPv4HdrLen) {
		t.Fatal("icmp checksum invalid")
	}
}

func TestPTPPacketFill(t *testing.T) {
	b := make([]byte, 60)
	p := PTPPacket{B: b}
	p.Fill(PTPPacketFill{
		PktLength:   60,
		MessageType: PTPMsgDelayReq,
		SequenceID:  555,
	})
	if p.Eth().EtherType() != EtherTypePTP {
		t.Fatalf("ethertype = %#x", p.Eth().EtherType())
	}
	h := p.PTP()
	if h.MessageType() != PTPMsgDelayReq || h.Version() != PTPVersion2 {
		t.Fatal("ptp header wrong")
	}
	if h.SequenceID() != 555 {
		t.Fatalf("seq = %d", h.SequenceID())
	}
	if !IsTimestampedType(h.MessageType()) {
		t.Fatal("delay_req must be a timestamped type")
	}
	if IsTimestampedType(PTPMsgNoTimestamp) {
		t.Fatal("filler type must not be timestamped")
	}
}

func TestUDPPTPPacketFill(t *testing.T) {
	b := make([]byte, PTPMinUDPSize)
	p := UDPPTPPacket{B: b}
	p.Fill(UDPPTPPacketFill{
		PktLength:   PTPMinUDPSize,
		IPSrc:       MustIPv4("10.0.0.1"),
		IPDst:       MustIPv4("10.0.0.2"),
		MessageType: PTPMsgSync,
		SequenceID:  77,
	})
	if p.UDPView().UDP().DstPort() != PTPUDPPort {
		t.Fatalf("udp dst = %d", p.UDPView().UDP().DstPort())
	}
	if p.PTP().SequenceID() != 77 {
		t.Fatal("seq wrong")
	}
	p.UDPView().CalcChecksums()
	if !p.UDPView().VerifyChecksums() {
		t.Fatal("checksum invalid")
	}
}

func TestESPPacketFill(t *testing.T) {
	b := make([]byte, 100)
	p := ESPPacket{B: b}
	p.Fill(ESPPacketFill{
		PktLength: 100,
		IPSrc:     MustIPv4("10.0.0.1"),
		IPDst:     MustIPv4("10.0.0.2"),
		SPI:       0xDEADBEEF, SeqNum: 42,
	})
	if p.IP().Protocol() != IPProtoESP {
		t.Fatal("proto wrong")
	}
	if p.ESP().SPI() != 0xDEADBEEF || p.ESP().SeqNum() != 42 {
		t.Fatal("esp fields wrong")
	}
}

func TestAHHdr(t *testing.T) {
	h := AHHdr(make([]byte, AHHdrLen))
	h.Fill(AHFill{NextHeader: IPProtoUDP, SPI: 99, SeqNum: 3})
	if h.NextHeader() != IPProtoUDP || h.SPI() != 99 || h.SeqNum() != 3 {
		t.Fatal("ah fields wrong")
	}
	if h.PayloadLen() != 4 {
		t.Fatalf("payload len = %d", h.PayloadLen())
	}
	if len(h.ICV()) != 12 {
		t.Fatalf("icv len = %d", len(h.ICV()))
	}
}

func TestARPPacketFill(t *testing.T) {
	b := make([]byte, 60)
	p := ARPPacket{B: b}
	src := MustMAC("02:00:00:00:00:01")
	p.Fill(ARPPacketFill{
		EthSrc: src,
		ARPFill: ARPFill{
			SenderIP: MustIPv4("10.0.0.1"),
			TargetIP: MustIPv4("10.0.0.2"),
		},
	})
	if p.Eth().Dst() != BroadcastMAC {
		t.Fatal("ARP request not broadcast")
	}
	a := p.ARP()
	if a.Op() != ARPOpRequest {
		t.Fatalf("op = %d", a.Op())
	}
	if a.SenderMAC() != src {
		t.Fatal("sender MAC not defaulted from EthSrc")
	}
	if a.HType() != ARPHTypeEthernet || a.PType() != EtherTypeIPv4 {
		t.Fatal("htype/ptype wrong")
	}
	if a.SenderIP().String() != "10.0.0.1" || a.TargetIP().String() != "10.0.0.2" {
		t.Fatal("IPs wrong")
	}
}

func TestWireLen(t *testing.T) {
	// 60-byte frame = 64 with FCS = 84 bytes of wire time. At 10 GbE
	// (0.8 ns/B) that is 67.2 ns -> 14.88 Mpps.
	if WireLen(60) != 84 {
		t.Fatalf("WireLen(60) = %d", WireLen(60))
	}
	pps := 10e9 / 8 / float64(WireLen(60))
	if pps < 14.87e6 || pps > 14.89e6 {
		t.Fatalf("line rate = %f pps", pps)
	}
}

func TestFillTooShortPanics(t *testing.T) {
	fns := []func(){
		func() { UDPPacket{B: make([]byte, 10)}.Fill(UDPPacketFill{PktLength: 10}) },
		func() { TCPPacket{B: make([]byte, 10)}.Fill(TCPPacketFill{PktLength: 10}) },
		func() { UDP6Packet{B: make([]byte, 10)}.Fill(UDP6PacketFill{PktLength: 10}) },
		func() { ICMPPacket{B: make([]byte, 10)}.Fill(ICMPPacketFill{PktLength: 10}) },
		func() { PTPPacket{B: make([]byte, 10)}.Fill(PTPPacketFill{PktLength: 10}) },
		func() { ESPPacket{B: make([]byte, 10)}.Fill(ESPPacketFill{PktLength: 10}) },
	}
	for i, fn := range fns {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("fill %d: too-short packet did not panic", i)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkUDPFill(b *testing.B) {
	buf := make([]byte, 124)
	p := UDPPacket{B: buf}
	cfg := UDPPacketFill{
		PktLength: 124,
		IPSrc:     MustIPv4("10.0.0.1"), IPDst: MustIPv4("192.168.1.1"),
		UDPSrc: 1234, UDPDst: 319,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.Fill(cfg)
	}
}

// BenchmarkModifySrcIP measures the Listing 2 hot path: modifying one
// field in a pre-filled packet.
func BenchmarkModifySrcIP(b *testing.B) {
	buf := make([]byte, 124)
	p := UDPPacket{B: buf}
	p.Fill(UDPPacketFill{PktLength: 124})
	base := MustIPv4("10.0.0.1")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.IP().SetSrc(base + IPv4(i&0xff))
	}
}

func BenchmarkUDPSoftwareChecksum(b *testing.B) {
	buf := make([]byte, 124)
	p := UDPPacket{B: buf}
	p.Fill(UDPPacketFill{PktLength: 124})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		p.CalcChecksums()
	}
}
