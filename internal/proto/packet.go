package proto

import "fmt"

// This file provides stacked packet views — the Go analogue of
// MoonGen's buf:getUdpPacket(), buf:getTcpPacket(), etc. A view wraps
// the raw frame bytes and exposes each header layer plus a Fill method
// that writes the complete protocol stack with sensible defaults, so a
// pool-prefill callback can write every constant field once.

// UDPPacket is an Ethernet/IPv4/UDP view of a frame.
type UDPPacket struct{ B []byte }

// Eth returns the Ethernet header view.
func (p UDPPacket) Eth() EthHdr { return EthHdr(p.B) }

// IP returns the IPv4 header view.
func (p UDPPacket) IP() IPv4Hdr { return IPv4Hdr(p.B[EthHdrLen:]) }

// UDP returns the UDP header view.
func (p UDPPacket) UDP() UDPHdr { return UDPHdr(p.B[EthHdrLen+IPv4HdrLen:]) }

// Payload returns the UDP payload bytes.
func (p UDPPacket) Payload() []byte { return p.B[EthHdrLen+IPv4HdrLen+UDPHdrLen:] }

// UDPPacketFill configures a full Ethernet/IPv4/UDP stack.
type UDPPacketFill struct {
	PktLength int // full frame length; required
	EthSrc    MAC
	EthDst    MAC
	IPSrc     IPv4
	IPDst     IPv4
	TTL       uint8
	TOS       uint8
	UDPSrc    uint16
	UDPDst    uint16
}

// Fill writes Ethernet, IPv4 and UDP headers for a frame of
// cfg.PktLength bytes. Checksums are left zero for offloading or
// CalcChecksums.
func (p UDPPacket) Fill(cfg UDPPacketFill) {
	if cfg.PktLength < EthHdrLen+IPv4HdrLen+UDPHdrLen {
		panic(fmt.Sprintf("proto: UDP packet length %d too short", cfg.PktLength))
	}
	p.Eth().Fill(EthFill{Src: cfg.EthSrc, Dst: cfg.EthDst, EtherType: EtherTypeIPv4})
	p.IP().Fill(IPv4Fill{
		Src:      cfg.IPSrc,
		Dst:      cfg.IPDst,
		Protocol: IPProtoUDP,
		TTL:      cfg.TTL,
		TOS:      cfg.TOS,
		Length:   uint16(cfg.PktLength - EthHdrLen),
	})
	p.UDP().Fill(UDPFill{
		SrcPort: cfg.UDPSrc,
		DstPort: cfg.UDPDst,
		Length:  uint16(cfg.PktLength - EthHdrLen - IPv4HdrLen),
	})
}

// CalcChecksums computes the IPv4 header checksum and the UDP checksum
// in software — what a script does when it cannot or does not offload.
func (p UDPPacket) CalcChecksums() {
	ip := p.IP()
	ip.CalcChecksum()
	udp := p.UDP()
	udp.SetChecksum(0)
	seg := p.B[EthHdrLen+IPv4HdrLen : EthHdrLen+int(ip.TotalLength())]
	udp.SetChecksum(TransportChecksumIPv4(ip.Src(), ip.Dst(), IPProtoUDP, seg))
}

// VerifyChecksums reports whether both the IPv4 header checksum and the
// UDP checksum are valid.
func (p UDPPacket) VerifyChecksums() bool {
	ip := p.IP()
	if !ip.VerifyChecksum() {
		return false
	}
	seg := p.B[EthHdrLen+IPv4HdrLen : EthHdrLen+int(ip.TotalLength())]
	if UDPHdr(seg).Checksum() == 0 {
		return true // checksum not used
	}
	acc := PseudoHeaderChecksumIPv4(ip.Src(), ip.Dst(), IPProtoUDP, uint16(len(seg)))
	return finishChecksum(sum16(seg, acc)) == 0
}

// TCPPacket is an Ethernet/IPv4/TCP view of a frame.
type TCPPacket struct{ B []byte }

// Eth returns the Ethernet header view.
func (p TCPPacket) Eth() EthHdr { return EthHdr(p.B) }

// IP returns the IPv4 header view.
func (p TCPPacket) IP() IPv4Hdr { return IPv4Hdr(p.B[EthHdrLen:]) }

// TCP returns the TCP header view.
func (p TCPPacket) TCP() TCPHdr { return TCPHdr(p.B[EthHdrLen+IPv4HdrLen:]) }

// Payload returns the TCP payload bytes (20-byte header assumed).
func (p TCPPacket) Payload() []byte { return p.B[EthHdrLen+IPv4HdrLen+TCPHdrLen:] }

// TCPPacketFill configures a full Ethernet/IPv4/TCP stack.
type TCPPacketFill struct {
	PktLength int
	EthSrc    MAC
	EthDst    MAC
	IPSrc     IPv4
	IPDst     IPv4
	TCPSrc    uint16
	TCPDst    uint16
	SeqNum    uint32
	AckNum    uint32
	Flags     uint8 // default SYN
	Window    uint16
}

// Fill writes Ethernet, IPv4 and TCP headers.
func (p TCPPacket) Fill(cfg TCPPacketFill) {
	if cfg.PktLength < EthHdrLen+IPv4HdrLen+TCPHdrLen {
		panic(fmt.Sprintf("proto: TCP packet length %d too short", cfg.PktLength))
	}
	p.Eth().Fill(EthFill{Src: cfg.EthSrc, Dst: cfg.EthDst, EtherType: EtherTypeIPv4})
	p.IP().Fill(IPv4Fill{
		Src:      cfg.IPSrc,
		Dst:      cfg.IPDst,
		Protocol: IPProtoTCP,
		Length:   uint16(cfg.PktLength - EthHdrLen),
	})
	if cfg.Flags == 0 {
		cfg.Flags = TCPFlagSYN
	}
	p.TCP().Fill(TCPFill{
		SrcPort: cfg.TCPSrc, DstPort: cfg.TCPDst,
		SeqNum: cfg.SeqNum, AckNum: cfg.AckNum,
		Flags: cfg.Flags, Window: cfg.Window,
	})
}

// CalcChecksums computes IPv4 and TCP checksums in software.
func (p TCPPacket) CalcChecksums() {
	ip := p.IP()
	ip.CalcChecksum()
	tcp := p.TCP()
	tcp.SetChecksum(0)
	seg := p.B[EthHdrLen+IPv4HdrLen : EthHdrLen+int(ip.TotalLength())]
	tcp.SetChecksum(TransportChecksumIPv4(ip.Src(), ip.Dst(), IPProtoTCP, seg))
}

// VerifyChecksums reports whether both checksums are valid.
func (p TCPPacket) VerifyChecksums() bool {
	ip := p.IP()
	if !ip.VerifyChecksum() {
		return false
	}
	seg := p.B[EthHdrLen+IPv4HdrLen : EthHdrLen+int(ip.TotalLength())]
	acc := PseudoHeaderChecksumIPv4(ip.Src(), ip.Dst(), IPProtoTCP, uint16(len(seg)))
	return finishChecksum(sum16(seg, acc)) == 0
}

// UDP6Packet is an Ethernet/IPv6/UDP view of a frame.
type UDP6Packet struct{ B []byte }

// Eth returns the Ethernet header view.
func (p UDP6Packet) Eth() EthHdr { return EthHdr(p.B) }

// IP returns the IPv6 header view.
func (p UDP6Packet) IP() IPv6Hdr { return IPv6Hdr(p.B[EthHdrLen:]) }

// UDP returns the UDP header view.
func (p UDP6Packet) UDP() UDPHdr { return UDPHdr(p.B[EthHdrLen+IPv6HdrLen:]) }

// Payload returns the UDP payload bytes.
func (p UDP6Packet) Payload() []byte { return p.B[EthHdrLen+IPv6HdrLen+UDPHdrLen:] }

// UDP6PacketFill configures a full Ethernet/IPv6/UDP stack.
type UDP6PacketFill struct {
	PktLength int
	EthSrc    MAC
	EthDst    MAC
	IPSrc     IPv6
	IPDst     IPv6
	UDPSrc    uint16
	UDPDst    uint16
}

// Fill writes Ethernet, IPv6 and UDP headers.
func (p UDP6Packet) Fill(cfg UDP6PacketFill) {
	if cfg.PktLength < EthHdrLen+IPv6HdrLen+UDPHdrLen {
		panic(fmt.Sprintf("proto: UDPv6 packet length %d too short", cfg.PktLength))
	}
	p.Eth().Fill(EthFill{Src: cfg.EthSrc, Dst: cfg.EthDst, EtherType: EtherTypeIPv6})
	p.IP().Fill(IPv6Fill{
		Src: cfg.IPSrc, Dst: cfg.IPDst,
		NextHeader:    IPProtoUDP,
		PayloadLength: uint16(cfg.PktLength - EthHdrLen - IPv6HdrLen),
	})
	p.UDP().Fill(UDPFill{
		SrcPort: cfg.UDPSrc, DstPort: cfg.UDPDst,
		Length: uint16(cfg.PktLength - EthHdrLen - IPv6HdrLen),
	})
}

// CalcChecksums computes the UDP checksum (IPv6 has no header checksum;
// the UDP checksum is mandatory under IPv6).
func (p UDP6Packet) CalcChecksums() {
	ip := p.IP()
	udp := p.UDP()
	udp.SetChecksum(0)
	seg := p.B[EthHdrLen+IPv6HdrLen : EthHdrLen+IPv6HdrLen+int(ip.PayloadLength())]
	udp.SetChecksum(TransportChecksumIPv6(ip.Src(), ip.Dst(), IPProtoUDP, seg))
}

// VerifyChecksums reports whether the UDP checksum is valid.
func (p UDP6Packet) VerifyChecksums() bool {
	ip := p.IP()
	seg := p.B[EthHdrLen+IPv6HdrLen : EthHdrLen+IPv6HdrLen+int(ip.PayloadLength())]
	acc := PseudoHeaderChecksumIPv6(ip.Src(), ip.Dst(), IPProtoUDP, uint32(len(seg)))
	return finishChecksum(sum16(seg, acc)) == 0
}

// ICMPPacket is an Ethernet/IPv4/ICMP view of a frame.
type ICMPPacket struct{ B []byte }

// Eth returns the Ethernet header view.
func (p ICMPPacket) Eth() EthHdr { return EthHdr(p.B) }

// IP returns the IPv4 header view.
func (p ICMPPacket) IP() IPv4Hdr { return IPv4Hdr(p.B[EthHdrLen:]) }

// ICMP returns the ICMP header view.
func (p ICMPPacket) ICMP() ICMPHdr { return ICMPHdr(p.B[EthHdrLen+IPv4HdrLen:]) }

// ICMPPacketFill configures a full Ethernet/IPv4/ICMP echo stack.
type ICMPPacketFill struct {
	PktLength int
	EthSrc    MAC
	EthDst    MAC
	IPSrc     IPv4
	IPDst     IPv4
	Type      uint8 // default echo request
	ID        uint16
	Seq       uint16
}

// Fill writes the Ethernet, IPv4 and ICMP headers and computes the ICMP
// checksum (there is no hardware offload for ICMP).
func (p ICMPPacket) Fill(cfg ICMPPacketFill) {
	if cfg.PktLength < EthHdrLen+IPv4HdrLen+ICMPHdrLen {
		panic(fmt.Sprintf("proto: ICMP packet length %d too short", cfg.PktLength))
	}
	p.Eth().Fill(EthFill{Src: cfg.EthSrc, Dst: cfg.EthDst, EtherType: EtherTypeIPv4})
	p.IP().Fill(IPv4Fill{
		Src: cfg.IPSrc, Dst: cfg.IPDst,
		Protocol: IPProtoICMP,
		Length:   uint16(cfg.PktLength - EthHdrLen),
	})
	if cfg.Type == 0 {
		cfg.Type = ICMPTypeEcho
	}
	p.ICMP().Fill(ICMPFill{Type: cfg.Type, ID: cfg.ID, Seq: cfg.Seq})
	p.ICMP().CalcChecksumV4(cfg.PktLength - EthHdrLen - IPv4HdrLen)
}

// PTPPacket is a layer-2 PTP packet view (EtherType 0x88F7), the format
// MoonGen's timestamping tasks use because it has no minimum-size
// restriction (§6.4).
type PTPPacket struct{ B []byte }

// Eth returns the Ethernet header view.
func (p PTPPacket) Eth() EthHdr { return EthHdr(p.B) }

// PTP returns the PTP header view.
func (p PTPPacket) PTP() PTPHdr { return PTPHdr(p.B[EthHdrLen:]) }

// PTPPacketFill configures a layer-2 PTP packet.
type PTPPacketFill struct {
	PktLength   int
	EthSrc      MAC
	EthDst      MAC
	MessageType uint8
	SequenceID  uint16
}

// Fill writes the Ethernet and PTP headers.
func (p PTPPacket) Fill(cfg PTPPacketFill) {
	if cfg.PktLength < EthHdrLen+PTPHdrLen {
		panic(fmt.Sprintf("proto: PTP packet length %d too short", cfg.PktLength))
	}
	p.Eth().Fill(EthFill{Src: cfg.EthSrc, Dst: cfg.EthDst, EtherType: EtherTypePTP})
	p.PTP().Fill(PTPFill{
		MessageType: cfg.MessageType,
		SequenceID:  cfg.SequenceID,
		Length:      uint16(cfg.PktLength - EthHdrLen),
	})
}

// UDPPTPPacket is a UDP-encapsulated PTP packet view
// (Ethernet/IPv4/UDP/PTP), the other format the NIC filters recognize.
type UDPPTPPacket struct{ B []byte }

// UDPView returns the enclosing UDP packet view.
func (p UDPPTPPacket) UDPView() UDPPacket { return UDPPacket{B: p.B} }

// PTP returns the PTP header view inside the UDP payload.
func (p UDPPTPPacket) PTP() PTPHdr {
	return PTPHdr(p.B[EthHdrLen+IPv4HdrLen+UDPHdrLen:])
}

// UDPPTPPacketFill configures a UDP PTP packet.
type UDPPTPPacketFill struct {
	PktLength   int
	EthSrc      MAC
	EthDst      MAC
	IPSrc       IPv4
	IPDst       IPv4
	MessageType uint8
	SequenceID  uint16
	UDPDst      uint16 // default PTPUDPPort
}

// Fill writes the full stack.
func (p UDPPTPPacket) Fill(cfg UDPPTPPacketFill) {
	if cfg.UDPDst == 0 {
		cfg.UDPDst = PTPUDPPort
	}
	p.UDPView().Fill(UDPPacketFill{
		PktLength: cfg.PktLength,
		EthSrc:    cfg.EthSrc, EthDst: cfg.EthDst,
		IPSrc: cfg.IPSrc, IPDst: cfg.IPDst,
		UDPSrc: PTPUDPPort, UDPDst: cfg.UDPDst,
	})
	p.PTP().Fill(PTPFill{
		MessageType: cfg.MessageType,
		SequenceID:  cfg.SequenceID,
		Length:      uint16(cfg.PktLength - EthHdrLen - IPv4HdrLen - UDPHdrLen),
	})
}

// ESPPacket is an Ethernet/IPv4/ESP view of a frame (IPsec load
// generation).
type ESPPacket struct{ B []byte }

// Eth returns the Ethernet header view.
func (p ESPPacket) Eth() EthHdr { return EthHdr(p.B) }

// IP returns the IPv4 header view.
func (p ESPPacket) IP() IPv4Hdr { return IPv4Hdr(p.B[EthHdrLen:]) }

// ESP returns the ESP header view.
func (p ESPPacket) ESP() ESPHdr { return ESPHdr(p.B[EthHdrLen+IPv4HdrLen:]) }

// ESPPacketFill configures an Ethernet/IPv4/ESP stack.
type ESPPacketFill struct {
	PktLength int
	EthSrc    MAC
	EthDst    MAC
	IPSrc     IPv4
	IPDst     IPv4
	SPI       uint32
	SeqNum    uint32
}

// Fill writes the full stack.
func (p ESPPacket) Fill(cfg ESPPacketFill) {
	if cfg.PktLength < EthHdrLen+IPv4HdrLen+ESPHdrLen {
		panic(fmt.Sprintf("proto: ESP packet length %d too short", cfg.PktLength))
	}
	p.Eth().Fill(EthFill{Src: cfg.EthSrc, Dst: cfg.EthDst, EtherType: EtherTypeIPv4})
	p.IP().Fill(IPv4Fill{
		Src: cfg.IPSrc, Dst: cfg.IPDst,
		Protocol: IPProtoESP,
		Length:   uint16(cfg.PktLength - EthHdrLen),
	})
	p.ESP().Fill(ESPFill{SPI: cfg.SPI, SeqNum: cfg.SeqNum})
}

// ARPPacket is an Ethernet/ARP view of a frame.
type ARPPacket struct{ B []byte }

// Eth returns the Ethernet header view.
func (p ARPPacket) Eth() EthHdr { return EthHdr(p.B) }

// ARP returns the ARP body view.
func (p ARPPacket) ARP() ARPHdr { return ARPHdr(p.B[EthHdrLen:]) }

// ARPPacketFill configures an Ethernet/ARP frame.
type ARPPacketFill struct {
	EthSrc MAC
	EthDst MAC // default broadcast for requests
	ARPFill
}

// Fill writes the Ethernet header and ARP body.
func (p ARPPacket) Fill(cfg ARPPacketFill) {
	dst := cfg.EthDst
	if dst == (MAC{}) {
		dst = BroadcastMAC
	}
	p.Eth().Fill(EthFill{Src: cfg.EthSrc, Dst: dst, EtherType: EtherTypeARP})
	if cfg.ARPFill.SenderMAC == (MAC{}) {
		cfg.ARPFill.SenderMAC = cfg.EthSrc
	}
	p.ARP().Fill(cfg.ARPFill)
}
