package proto

import "encoding/binary"

// EtherType values used by the generator.
const (
	EtherTypeIPv4 uint16 = 0x0800
	EtherTypeARP  uint16 = 0x0806
	EtherTypeIPv6 uint16 = 0x86DD
	EtherTypeVLAN uint16 = 0x8100
	// EtherTypePTP is the layer-2 EtherType for IEEE 1588 PTP event
	// messages — the type the Intel NIC timestamping filters match
	// (paper §6).
	EtherTypePTP uint16 = 0x88F7
)

// Ethernet frame size constants. Sizes exclude the 4-byte FCS unless
// noted: like DPDK, the API exposes frames without FCS and the MAC model
// appends it.
const (
	EthHdrLen = 14
	// MinFrameSize is the minimum Ethernet frame (64 B on the wire)
	// without FCS: 60 bytes.
	MinFrameSize = 60
	// MinFrameSizeFCS is the classic 64-byte minimum including FCS.
	MinFrameSizeFCS = 64
	// MaxFrameSize is the standard MTU-sized frame without FCS.
	MaxFrameSize = 1514
	// WireOverhead is the per-frame wire overhead outside the frame
	// proper: 7 B preamble + 1 B SFD + 12 B inter-frame gap.
	WireOverhead = 20
	// FCSLen is the frame check sequence length.
	FCSLen = 4
)

// WireLen returns the total wire occupancy in bytes of a frame of the
// given size (without FCS): frame + FCS + preamble/SFD/IFG. A 60-byte
// minimum frame occupies 84 bytes of wire time, which at 10 GbE gives
// the famous 14.88 Mpps line rate.
func WireLen(frameLen int) int { return frameLen + FCSLen + WireOverhead }

// EthHdr is a zero-copy view of a 14-byte Ethernet II header.
type EthHdr []byte

// Dst returns the destination MAC.
func (h EthHdr) Dst() MAC {
	var m MAC
	copy(m[:], h[0:6])
	return m
}

// SetDst sets the destination MAC.
func (h EthHdr) SetDst(m MAC) { copy(h[0:6], m[:]) }

// Src returns the source MAC.
func (h EthHdr) Src() MAC {
	var m MAC
	copy(m[:], h[6:12])
	return m
}

// SetSrc sets the source MAC.
func (h EthHdr) SetSrc(m MAC) { copy(h[6:12], m[:]) }

// EtherType returns the EtherType field.
func (h EthHdr) EtherType() uint16 { return binary.BigEndian.Uint16(h[12:14]) }

// SetEtherType sets the EtherType field.
func (h EthHdr) SetEtherType(t uint16) { binary.BigEndian.PutUint16(h[12:14], t) }

// Payload returns the bytes after the Ethernet header.
func (h EthHdr) Payload() []byte { return h[EthHdrLen:] }

// EthFill is the Fill configuration for an Ethernet header.
type EthFill struct {
	Src       MAC
	Dst       MAC
	EtherType uint16
}

// Fill writes the whole header from cfg. A zero EtherType defaults to
// IPv4, matching MoonGen's getUdpPacket():fill defaulting.
func (h EthHdr) Fill(cfg EthFill) {
	h.SetDst(cfg.Dst)
	h.SetSrc(cfg.Src)
	if cfg.EtherType == 0 {
		cfg.EtherType = EtherTypeIPv4
	}
	h.SetEtherType(cfg.EtherType)
}
