package proto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// TestChecksumRFC1071 checks the classic worked example from RFC 1071.
func TestChecksumRFC1071(t *testing.T) {
	data := []byte{0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7}
	// Sum = 0001 + f203 + f4f5 + f6f7 = 2ddf0 -> fold: ddf2 -> ^ = 220d.
	if got := Checksum(data); got != 0x220d {
		t.Fatalf("checksum = %#04x, want 0x220d", got)
	}
}

func TestChecksumOddLength(t *testing.T) {
	// Odd trailing byte is padded with zero on the right.
	if got, want := Checksum([]byte{0x01}), ^uint16(0x0100); got != want {
		t.Fatalf("checksum = %#04x, want %#04x", got, want)
	}
}

func TestChecksumEmpty(t *testing.T) {
	if got := Checksum(nil); got != 0xffff {
		t.Fatalf("checksum(nil) = %#04x", got)
	}
}

// Property: inserting the computed checksum makes the data verify to 0.
func TestChecksumSelfVerifyProperty(t *testing.T) {
	f := func(data []byte) bool {
		if len(data) < 2 {
			return true
		}
		if len(data)%2 == 1 {
			data = data[:len(data)-1]
		}
		data[0], data[1] = 0, 0
		cs := Checksum(data)
		data[0], data[1] = byte(cs>>8), byte(cs)
		return Checksum(data) == 0
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(4))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestUDPChecksumZeroMapsToFFFF(t *testing.T) {
	// Construct a segment whose checksum computes to zero and check
	// the RFC 768 substitution.
	src, dst := MustIPv4("0.0.0.0"), MustIPv4("0.0.0.0")
	seg := make([]byte, 8) // all zero
	// acc = proto(17) + len(8) twice... compute the real value, then
	// craft a payload that cancels it to zero.
	cs := TransportChecksumIPv4(src, dst, IPProtoUDP, seg)
	if cs == 0 {
		t.Fatal("test setup: checksum already zero")
	}
	// Put the complement in the payload so the final sum is 0xffff
	// (one's-complement negative zero) -> checksum 0 -> mapped 0xffff.
	seg = append(seg, byte(^cs>>8), byte(^cs))
	// Adding bytes changes the length term; recompute by brute force:
	// find a 2-byte payload value that yields 0.
	found := false
	for v := 0; v < 0x10000; v++ {
		seg[8], seg[9] = byte(v>>8), byte(v)
		if got := TransportChecksumIPv4(src, dst, IPProtoUDP, seg); got == 0xffff {
			// Check that raw computation was zero, i.e. substitution.
			acc := PseudoHeaderChecksumIPv4(src, dst, IPProtoUDP, uint16(len(seg)))
			if finishChecksum(sum16(seg, acc)) == 0 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("no payload value triggered the zero-checksum substitution")
	}
}

func TestTCPChecksumAllowsZero(t *testing.T) {
	// TCP has no zero substitution; verify a crafted zero stays zero.
	src, dst := IPv4(0), IPv4(0)
	seg := make([]byte, 4)
	for v := 0; v < 0x10000; v++ {
		seg[2], seg[3] = byte(v>>8), byte(v)
		if TransportChecksumIPv4(src, dst, IPProtoTCP, seg) == 0 {
			return // found a zero result; substitution absent as expected
		}
	}
	t.Fatal("no zero TCP checksum found; expected at least one")
}

func TestPseudoHeaderIPv6(t *testing.T) {
	src := MustIPv6("2001:db8::1")
	dst := MustIPv6("2001:db8::2")
	seg := []byte{1, 2, 3, 4, 5, 6, 0, 0} // checksum field (offset 6) zeroed
	cs := TransportChecksumIPv6(src, dst, IPProtoUDP, seg)
	if cs == 0 {
		t.Fatal("unexpected zero checksum")
	}
	// Verify: placing cs into the segment must make the folded sum 0.
	seg2 := make([]byte, len(seg))
	copy(seg2, seg)
	// UDP checksum lives at offset 6.
	seg2[6], seg2[7] = byte(cs>>8), byte(cs)
	acc := PseudoHeaderChecksumIPv6(src, dst, IPProtoUDP, uint32(len(seg2)))
	if finishChecksum(sum16(seg2, acc)) != 0 {
		t.Fatal("checksum does not verify")
	}
}

func TestEthernetFCSKnownVector(t *testing.T) {
	// CRC32("123456789") = 0xCBF43926 is the canonical check value for
	// the reflected IEEE polynomial used by Ethernet.
	if got := EthernetFCS([]byte("123456789")); got != 0xCBF43926 {
		t.Fatalf("FCS = %#08x, want 0xCBF43926", got)
	}
}

func TestAppendCheckFCS(t *testing.T) {
	frame := []byte("hello ethernet frame")
	withFCS := AppendFCS(append([]byte(nil), frame...))
	if len(withFCS) != len(frame)+4 {
		t.Fatalf("len = %d", len(withFCS))
	}
	if !CheckFCS(withFCS) {
		t.Fatal("freshly appended FCS does not verify")
	}
	if CheckFCS([]byte{1, 2, 3}) {
		t.Fatal("short frame verified")
	}
}

// Property: any single-bit corruption breaks the FCS. This is the
// mechanism the paper's §8 rate control relies on: the DuT NIC detects
// corrupted filler frames with certainty and drops them in hardware.
func TestFCSDetectsSingleBitErrorsProperty(t *testing.T) {
	f := func(data []byte, bitPos uint16) bool {
		if len(data) == 0 {
			return true
		}
		framed := AppendFCS(append([]byte(nil), data...))
		pos := int(bitPos) % (len(framed) * 8)
		framed[pos/8] ^= 1 << (pos % 8)
		return !CheckFCS(framed)
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(6))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkChecksum64B(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Checksum(data)
	}
}

func BenchmarkEthernetFCS64B(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		EthernetFCS(data)
	}
}
