package proto

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestParseMAC(t *testing.T) {
	m, err := ParseMAC("10:11:12:13:14:15")
	if err != nil {
		t.Fatal(err)
	}
	if m != (MAC{0x10, 0x11, 0x12, 0x13, 0x14, 0x15}) {
		t.Fatalf("m = %v", m)
	}
	if m.String() != "10:11:12:13:14:15" {
		t.Fatalf("String = %q", m.String())
	}
	for _, bad := range []string{"", "10:11:12:13:14", "10:11:12:13:14:15:16", "zz:11:12:13:14:15", "100:11:12:13:14:15"} {
		if _, err := ParseMAC(bad); err == nil {
			t.Errorf("ParseMAC(%q) succeeded", bad)
		}
	}
}

func TestMACProperties(t *testing.T) {
	if !BroadcastMAC.IsBroadcast() || !BroadcastMAC.IsMulticast() {
		t.Fatal("broadcast flags wrong")
	}
	m := MustMAC("02:00:00:00:00:01")
	if m.IsBroadcast() || m.IsMulticast() {
		t.Fatal("unicast misclassified")
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		r := RandomMAC(rng)
		if r.IsMulticast() {
			t.Fatalf("RandomMAC returned multicast %v", r)
		}
		if r[0]&2 == 0 {
			t.Fatalf("RandomMAC not locally administered: %v", r)
		}
	}
}

func TestParseIPv4(t *testing.T) {
	ip, err := ParseIPv4("10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	if ip != 0x0A000001 {
		t.Fatalf("ip = %#x", uint32(ip))
	}
	if ip.String() != "10.0.0.1" {
		t.Fatalf("String = %q", ip.String())
	}
	// Address arithmetic as used in MoonGen scripts: baseIP + offset.
	if (ip + 255).String() != "10.0.1.0" {
		t.Fatalf("arithmetic: %v", (ip + 255).String())
	}
	for _, bad := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d"} {
		if _, err := ParseIPv4(bad); err == nil {
			t.Errorf("ParseIPv4(%q) succeeded", bad)
		}
	}
}

func TestIPv4RoundTripProperty(t *testing.T) {
	f := func(v uint32) bool {
		ip := IPv4(v)
		back, err := ParseIPv4(ip.String())
		if err != nil {
			return false
		}
		b := ip.Bytes()
		return back == ip && IPv4FromBytes(b[:]) == ip
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestParseIPv6(t *testing.T) {
	cases := map[string]string{
		"2001:db8::1":          "2001:db8:0:0:0:0:0:1",
		"::1":                  "0:0:0:0:0:0:0:1",
		"::":                   "0:0:0:0:0:0:0:0",
		"fe80::":               "fe80:0:0:0:0:0:0:0",
		"1:2:3:4:5:6:7:8":      "1:2:3:4:5:6:7:8",
		"2001:db8:0:0:0:0:0:1": "2001:db8:0:0:0:0:0:1",
	}
	for in, want := range cases {
		ip, err := ParseIPv6(in)
		if err != nil {
			t.Errorf("ParseIPv6(%q): %v", in, err)
			continue
		}
		if ip.String() != want {
			t.Errorf("ParseIPv6(%q) = %q, want %q", in, ip.String(), want)
		}
	}
	for _, bad := range []string{"", ":::", "1:2:3:4:5:6:7:8:9", "1:2:3:4:5:6:7:8::", "g::1"} {
		if _, err := ParseIPv6(bad); err == nil {
			t.Errorf("ParseIPv6(%q) succeeded", bad)
		}
	}
}

func TestIPv6RoundTripProperty(t *testing.T) {
	f := func(raw [16]byte) bool {
		ip := IPv6(raw)
		back, err := ParseIPv6(ip.String())
		return err == nil && back == ip
	}
	cfg := &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}
