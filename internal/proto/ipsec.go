package proto

import "encoding/binary"

// IPsec header lengths.
const (
	// ESPHdrLen is the ESP header (SPI + sequence number).
	ESPHdrLen = 8
	// ESPTrailerLen is the minimal ESP trailer (pad length + next
	// header) excluding the ICV.
	ESPTrailerLen = 2
	// AHHdrLen is the fixed part of an AH header with a 12-byte ICV
	// (the common HMAC-96 case).
	AHHdrLen = 24
)

// ESPHdr is a zero-copy view of an IPsec ESP header. MoonGen generates
// IPsec load traffic (the NIC models the 82599's ESP offload); the
// simulator treats the payload as opaque, which matches a generator's
// view of IPsec: correct framing, arbitrary ciphertext.
type ESPHdr []byte

// SPI returns the security parameters index.
func (h ESPHdr) SPI() uint32 { return binary.BigEndian.Uint32(h[0:4]) }

// SetSPI sets the security parameters index.
func (h ESPHdr) SetSPI(v uint32) { binary.BigEndian.PutUint32(h[0:4], v) }

// SeqNum returns the sequence number.
func (h ESPHdr) SeqNum() uint32 { return binary.BigEndian.Uint32(h[4:8]) }

// SetSeqNum sets the sequence number.
func (h ESPHdr) SetSeqNum(v uint32) { binary.BigEndian.PutUint32(h[4:8], v) }

// Payload returns the bytes after the ESP header.
func (h ESPHdr) Payload() []byte { return h[ESPHdrLen:] }

// ESPFill is the Fill configuration for an ESP header.
type ESPFill struct {
	SPI    uint32
	SeqNum uint32
}

// Fill writes the ESP header.
func (h ESPHdr) Fill(cfg ESPFill) {
	h.SetSPI(cfg.SPI)
	h.SetSeqNum(cfg.SeqNum)
}

// AHHdr is a zero-copy view of an IPsec Authentication Header.
type AHHdr []byte

// NextHeader returns the next-header protocol number.
func (h AHHdr) NextHeader() uint8 { return h[0] }

// SetNextHeader sets the next-header protocol number.
func (h AHHdr) SetNextHeader(v uint8) { h[0] = v }

// PayloadLen returns the AH length field (in 32-bit words minus 2).
func (h AHHdr) PayloadLen() uint8 { return h[1] }

// SPI returns the security parameters index.
func (h AHHdr) SPI() uint32 { return binary.BigEndian.Uint32(h[4:8]) }

// SetSPI sets the security parameters index.
func (h AHHdr) SetSPI(v uint32) { binary.BigEndian.PutUint32(h[4:8], v) }

// SeqNum returns the sequence number.
func (h AHHdr) SeqNum() uint32 { return binary.BigEndian.Uint32(h[8:12]) }

// SetSeqNum sets the sequence number.
func (h AHHdr) SetSeqNum(v uint32) { binary.BigEndian.PutUint32(h[8:12], v) }

// ICV returns the 12-byte integrity check value.
func (h AHHdr) ICV() []byte { return h[12:24] }

// AHFill is the Fill configuration for an AH header.
type AHFill struct {
	NextHeader uint8
	SPI        uint32
	SeqNum     uint32
}

// Fill writes the AH header with a zeroed ICV.
func (h AHHdr) Fill(cfg AHFill) {
	h.SetNextHeader(cfg.NextHeader)
	h[1] = (AHHdrLen / 4) - 2
	binary.BigEndian.PutUint16(h[2:4], 0)
	h.SetSPI(cfg.SPI)
	h.SetSeqNum(cfg.SeqNum)
	for i := 12; i < 24; i++ {
		h[i] = 0
	}
}
