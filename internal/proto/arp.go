package proto

import "encoding/binary"

// ARP constants for Ethernet/IPv4.
const (
	ARPHdrLen = 28

	ARPHTypeEthernet uint16 = 1
	ARPOpRequest     uint16 = 1
	ARPOpReply       uint16 = 2
)

// ARPHdr is a zero-copy view of an Ethernet/IPv4 ARP packet.
type ARPHdr []byte

// HType returns the hardware type.
func (h ARPHdr) HType() uint16 { return binary.BigEndian.Uint16(h[0:2]) }

// PType returns the protocol type.
func (h ARPHdr) PType() uint16 { return binary.BigEndian.Uint16(h[2:4]) }

// Op returns the operation (request/reply).
func (h ARPHdr) Op() uint16 { return binary.BigEndian.Uint16(h[6:8]) }

// SetOp sets the operation.
func (h ARPHdr) SetOp(v uint16) { binary.BigEndian.PutUint16(h[6:8], v) }

// SenderMAC returns the sender hardware address.
func (h ARPHdr) SenderMAC() MAC {
	var m MAC
	copy(m[:], h[8:14])
	return m
}

// SetSenderMAC sets the sender hardware address.
func (h ARPHdr) SetSenderMAC(m MAC) { copy(h[8:14], m[:]) }

// SenderIP returns the sender protocol address.
func (h ARPHdr) SenderIP() IPv4 { return IPv4FromBytes(h[14:18]) }

// SetSenderIP sets the sender protocol address.
func (h ARPHdr) SetSenderIP(ip IPv4) { binary.BigEndian.PutUint32(h[14:18], uint32(ip)) }

// TargetMAC returns the target hardware address.
func (h ARPHdr) TargetMAC() MAC {
	var m MAC
	copy(m[:], h[18:24])
	return m
}

// SetTargetMAC sets the target hardware address.
func (h ARPHdr) SetTargetMAC(m MAC) { copy(h[18:24], m[:]) }

// TargetIP returns the target protocol address.
func (h ARPHdr) TargetIP() IPv4 { return IPv4FromBytes(h[24:28]) }

// SetTargetIP sets the target protocol address.
func (h ARPHdr) SetTargetIP(ip IPv4) { binary.BigEndian.PutUint32(h[24:28], uint32(ip)) }

// ARPFill is the Fill configuration for an ARP packet.
type ARPFill struct {
	Op        uint16 // default ARPOpRequest
	SenderMAC MAC
	SenderIP  IPv4
	TargetMAC MAC
	TargetIP  IPv4
}

// Fill writes a complete Ethernet/IPv4 ARP body.
func (h ARPHdr) Fill(cfg ARPFill) {
	binary.BigEndian.PutUint16(h[0:2], ARPHTypeEthernet)
	binary.BigEndian.PutUint16(h[2:4], EtherTypeIPv4)
	h[4] = 6 // hardware address length
	h[5] = 4 // protocol address length
	if cfg.Op == 0 {
		cfg.Op = ARPOpRequest
	}
	h.SetOp(cfg.Op)
	h.SetSenderMAC(cfg.SenderMAC)
	h.SetSenderIP(cfg.SenderIP)
	h.SetTargetMAC(cfg.TargetMAC)
	h.SetTargetIP(cfg.TargetIP)
}
