package proto

import (
	"encoding/binary"
	"hash/crc32"
)

// Checksum computes the Internet checksum (RFC 1071) over data: the
// one's-complement of the one's-complement sum of 16-bit words, with an
// odd trailing byte padded with zero.
func Checksum(data []byte) uint16 {
	return finishChecksum(sum16(data, 0))
}

// sum16 accumulates the unfolded 16-bit one's-complement sum.
func sum16(data []byte, acc uint32) uint32 {
	n := len(data)
	for i := 0; i+1 < n; i += 2 {
		acc += uint32(binary.BigEndian.Uint16(data[i:]))
	}
	if n%2 == 1 {
		acc += uint32(data[n-1]) << 8
	}
	return acc
}

func finishChecksum(acc uint32) uint16 {
	for acc>>16 != 0 {
		acc = (acc & 0xffff) + acc>>16
	}
	return ^uint16(acc)
}

// UpdateChecksum16 folds one 16-bit field change (oldField → newField)
// into an existing Internet checksum without re-walking the covered
// data: RFC 1624 §3, HC' = ~(~HC + ~m + m'). For any header whose
// covered bytes are not all zero (every real IPv4 header, because of
// the version/IHL byte) the result is bit-identical to a full
// recompute, including the 0x0000/0xFFFF negative-zero corner — the
// template property tests pin this. Multi-word fields (addresses) are
// updated by chaining one call per 16-bit word.
func UpdateChecksum16(old, oldField, newField uint16) uint16 {
	return finishChecksum(uint32(^old) + uint32(^oldField) + uint32(newField))
}

// PseudoHeaderChecksumIPv4 computes the unfolded pseudo-header sum for
// UDP/TCP over IPv4. The paper notes (§5.6.1) that the X540 does not
// compute this part in hardware, so MoonGen calculates it in software
// even when offloading — our NIC model does the same, which is why the
// cost shows up in Table 1.
func PseudoHeaderChecksumIPv4(src, dst IPv4, protocol uint8, length uint16) uint32 {
	var acc uint32
	acc += uint32(src >> 16)
	acc += uint32(src & 0xffff)
	acc += uint32(dst >> 16)
	acc += uint32(dst & 0xffff)
	acc += uint32(protocol)
	acc += uint32(length)
	return acc
}

// PseudoHeaderChecksumIPv6 computes the unfolded pseudo-header sum for
// UDP/TCP over IPv6.
func PseudoHeaderChecksumIPv6(src, dst IPv6, protocol uint8, length uint32) uint32 {
	var acc uint32
	acc = sum16(src[:], acc)
	acc = sum16(dst[:], acc)
	acc += length >> 16
	acc += length & 0xffff
	acc += uint32(protocol)
	return acc
}

// TransportChecksumIPv4 computes the complete UDP/TCP checksum over an
// IPv4 pseudo header plus the transport header and payload in seg. The
// checksum field inside seg must be zeroed by the caller first.
func TransportChecksumIPv4(src, dst IPv4, protocol uint8, seg []byte) uint16 {
	acc := PseudoHeaderChecksumIPv4(src, dst, protocol, uint16(len(seg)))
	cs := finishChecksum(sum16(seg, acc))
	if protocol == IPProtoUDP && cs == 0 {
		// RFC 768: an all-zero UDP checksum means "no checksum";
		// a computed zero is transmitted as 0xFFFF.
		cs = 0xffff
	}
	return cs
}

// TransportChecksumIPv6 computes the complete UDP/TCP checksum over an
// IPv6 pseudo header plus seg. The checksum field must be zeroed first.
func TransportChecksumIPv6(src, dst IPv6, protocol uint8, seg []byte) uint16 {
	acc := PseudoHeaderChecksumIPv6(src, dst, protocol, uint32(len(seg)))
	cs := finishChecksum(sum16(seg, acc))
	if protocol == IPProtoUDP && cs == 0 {
		cs = 0xffff
	}
	return cs
}

// EthernetFCS computes the IEEE 802.3 frame check sequence over the
// frame bytes (destination MAC through payload). The FCS is the CRC-32
// (reflected, polynomial 0x04C11DB7) transmitted little-endian; Go's
// crc32.ChecksumIEEE implements exactly this computation.
func EthernetFCS(frame []byte) uint32 {
	return crc32.ChecksumIEEE(frame)
}

// AppendFCS appends the 4-byte FCS to frame and returns the result.
func AppendFCS(frame []byte) []byte {
	fcs := EthernetFCS(frame)
	return append(frame, byte(fcs), byte(fcs>>8), byte(fcs>>16), byte(fcs>>24))
}

// CheckFCS verifies a frame whose last 4 bytes are the FCS.
func CheckFCS(frameWithFCS []byte) bool {
	if len(frameWithFCS) < 5 {
		return false
	}
	n := len(frameWithFCS) - 4
	want := EthernetFCS(frameWithFCS[:n])
	got := uint32(frameWithFCS[n]) | uint32(frameWithFCS[n+1])<<8 |
		uint32(frameWithFCS[n+2])<<16 | uint32(frameWithFCS[n+3])<<24
	return want == got
}
