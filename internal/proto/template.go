package proto

import "encoding/binary"

// Template is a per-flow packet prototype — the paper's §5.6 authoring
// rule ("fill the buffer once in the pool, then only touch the fields
// that change") made a first-class object. The full Ethernet/IPv4/L4
// header image is derived once at construction through the same Fill
// path the packet views expose, so steady-state transmit loops restore
// a flow's constant headers into each buffer with a single copy
// (Apply) instead of re-deriving every field per packet.
//
// Beyond the image, the template caches the checksum state that a full
// per-packet recompute would re-derive from scratch:
//
//   - the unfolded IPv4 pseudo-header + transport-header sum (checksum
//     field zero), so TransportChecksum only folds the payload words;
//   - optionally (after CalcIPChecksum) a live IPv4 header checksum in
//     the image, which the field setters then patch incrementally via
//     UpdateChecksum16 (RFC 1624 §3) instead of re-walking the header.
//
// Like the Fill methods it is built from, a fresh template leaves both
// checksum fields zero — Apply is bit-identical to calling Fill on the
// buffer, which is what keeps the golden runs byte-exact.
type Template struct {
	hdr []byte
	l4  uint8 // IPProtoUDP or IPProtoTCP

	// ipCsumLive is set once CalcIPChecksum has stored a real checksum
	// in the image; from then on the setters maintain it incrementally.
	ipCsumLive bool

	// l4Invariant is the unfolded one's-complement sum of the IPv4
	// pseudo header plus the transport header with a zero checksum
	// field — the payload-independent part of the UDP/TCP checksum.
	// Kept partially folded so chained setters cannot overflow it.
	l4Invariant uint32
}

// Relative 16-bit word offsets inside the template image.
const (
	tmplIPOff  = EthHdrLen
	tmplL4Off  = EthHdrLen + IPv4HdrLen
	ipWordVer  = tmplIPOff + 0  // version/IHL | TOS
	ipWordID   = tmplIPOff + 4  // identification
	ipWordCsum = tmplIPOff + 10 // header checksum
	ipWordSrc  = tmplIPOff + 12 // source address (2 words)
	ipWordDst  = tmplIPOff + 16 // destination address (2 words)
)

// NewUDPTemplate builds the flow's Ethernet/IPv4/UDP header image and
// checksum caches from cfg. cfg.PktLength is the full frame length the
// flow will transmit; it fixes the length fields and the pseudo-header
// sum, so every packet of the flow must use it.
func NewUDPTemplate(cfg UDPPacketFill) *Template {
	t := &Template{hdr: make([]byte, EthHdrLen+IPv4HdrLen+UDPHdrLen), l4: IPProtoUDP}
	UDPPacket{B: t.hdr}.Fill(cfg)
	t.initInvariant(uint16(cfg.PktLength - tmplL4Off))
	return t
}

// NewTCPTemplate builds the flow's Ethernet/IPv4/TCP header image and
// checksum caches from cfg.
func NewTCPTemplate(cfg TCPPacketFill) *Template {
	t := &Template{hdr: make([]byte, EthHdrLen+IPv4HdrLen+TCPHdrLen), l4: IPProtoTCP}
	TCPPacket{B: t.hdr}.Fill(cfg)
	t.initInvariant(uint16(cfg.PktLength - tmplL4Off))
	return t
}

// initInvariant seeds the cached pseudo-header + transport-header sum
// from the freshly filled image (checksum fields are still zero).
func (t *Template) initInvariant(segLen uint16) {
	ip := IPv4Hdr(t.hdr[tmplIPOff:])
	acc := PseudoHeaderChecksumIPv4(ip.Src(), ip.Dst(), t.l4, segLen)
	t.l4Invariant = fold1(sum16(t.hdr[tmplL4Off:], acc))
}

// fold1 performs one carry-fold step: enough to keep a partially
// folded accumulator small after each bounded update while preserving
// its value mod 0xFFFF (what finishChecksum depends on).
func fold1(acc uint32) uint32 { return acc&0xffff + acc>>16 }

// Len returns the header image length in bytes.
func (t *Template) Len() int { return len(t.hdr) }

// Bytes exposes the image for read-only inspection (tests, debugging).
func (t *Template) Bytes() []byte { return t.hdr }

// IP returns the image's IPv4 header view. Mutating it directly
// bypasses the checksum caches — use the setters for tracked fields.
func (t *Template) IP() IPv4Hdr { return IPv4Hdr(t.hdr[tmplIPOff:]) }

// Apply restores the flow's constant headers into a frame buffer: the
// whole Listing-2 prefill body in one copy. The payload bytes beyond
// the header image are left untouched, exactly like the Fill methods.
func (t *Template) Apply(b []byte) { copy(b, t.hdr) }

// CalcIPChecksum computes the IPv4 header checksum once and stores it
// in the image; afterwards the field setters keep it valid with RFC
// 1624 incremental patches instead of header re-walks.
func (t *Template) CalcIPChecksum() {
	IPv4Hdr(t.hdr[tmplIPOff:]).CalcChecksum()
	t.ipCsumLive = true
}

// ipWord reads the big-endian 16-bit word at byte offset off.
func (t *Template) ipWord(off int) uint16 { return binary.BigEndian.Uint16(t.hdr[off:]) }

// setWord replaces the 16-bit word at off, patching the live IPv4
// header checksum incrementally when the word is IP-covered (inIP) and
// the transport invariant when it is pseudo-header- or L4-covered
// (inL4).
func (t *Template) setWord(off int, v uint16, inIP, inL4 bool) {
	old := t.ipWord(off)
	if old == v {
		return
	}
	if inIP && t.ipCsumLive {
		cs := t.ipWord(ipWordCsum)
		binary.BigEndian.PutUint16(t.hdr[ipWordCsum:], UpdateChecksum16(cs, old, v))
	}
	if inL4 {
		t.l4Invariant = fold1(t.l4Invariant + uint32(^old) + uint32(v))
	}
	binary.BigEndian.PutUint16(t.hdr[off:], v)
}

// SetTOS updates the IPv4 TOS byte (and the live header checksum).
func (t *Template) SetTOS(v uint8) {
	t.setWord(ipWordVer, uint16(t.hdr[ipWordVer])<<8|uint16(v), true, false)
}

// SetIPID updates the IPv4 identification field — the classic
// per-packet counter field of a template flow.
func (t *Template) SetIPID(id uint16) { t.setWord(ipWordID, id, true, false) }

// SetIPSrc updates the IPv4 source address (header checksum and
// pseudo-header sum both patched incrementally).
func (t *Template) SetIPSrc(ip IPv4) {
	t.setWord(ipWordSrc, uint16(ip>>16), true, true)
	t.setWord(ipWordSrc+2, uint16(ip), true, true)
}

// SetIPDst updates the IPv4 destination address.
func (t *Template) SetIPDst(ip IPv4) {
	t.setWord(ipWordDst, uint16(ip>>16), true, true)
	t.setWord(ipWordDst+2, uint16(ip), true, true)
}

// SetSrcPort updates the L4 source port (UDP and TCP share the offset).
func (t *Template) SetSrcPort(p uint16) { t.setWord(tmplL4Off, p, false, true) }

// SetDstPort updates the L4 destination port.
func (t *Template) SetDstPort(p uint16) { t.setWord(tmplL4Off+2, p, false, true) }

// TransportChecksum computes the flow's UDP/TCP checksum for a packet
// whose payload (the bytes after the transport header) is given,
// folding only the payload into the cached header sum. The result is
// bit-identical to TransportChecksumIPv4 over the full segment with a
// zeroed checksum field, including the RFC 768 zero-avoidance rule for
// UDP.
func (t *Template) TransportChecksum(payload []byte) uint16 {
	cs := finishChecksum(sum16(payload, t.l4Invariant))
	if t.l4 == IPProtoUDP && cs == 0 {
		cs = 0xffff
	}
	return cs
}
