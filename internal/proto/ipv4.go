package proto

import "encoding/binary"

// IP protocol numbers.
const (
	IPProtoICMP   uint8 = 1
	IPProtoTCP    uint8 = 6
	IPProtoUDP    uint8 = 17
	IPProtoESP    uint8 = 50
	IPProtoAH     uint8 = 51
	IPProtoICMPv6 uint8 = 58
)

// IPv4HdrLen is the length of an IPv4 header without options.
const IPv4HdrLen = 20

// IPv4Hdr is a zero-copy view of an IPv4 header (no options in the
// fast-path accessors; HdrLen handles options when parsing).
type IPv4Hdr []byte

// Version returns the IP version nibble.
func (h IPv4Hdr) Version() uint8 { return h[0] >> 4 }

// HdrLen returns the header length in bytes.
func (h IPv4Hdr) HdrLen() int { return int(h[0]&0x0f) * 4 }

// SetVersionIHL writes version 4 and the given header length in bytes.
func (h IPv4Hdr) SetVersionIHL(hdrLen int) { h[0] = 0x40 | uint8(hdrLen/4) }

// TOS returns the type-of-service / DSCP+ECN byte.
func (h IPv4Hdr) TOS() uint8 { return h[1] }

// SetTOS sets the TOS byte.
func (h IPv4Hdr) SetTOS(v uint8) { h[1] = v }

// TotalLength returns the datagram length including the header.
func (h IPv4Hdr) TotalLength() uint16 { return binary.BigEndian.Uint16(h[2:4]) }

// SetTotalLength sets the total length field.
func (h IPv4Hdr) SetTotalLength(v uint16) { binary.BigEndian.PutUint16(h[2:4], v) }

// ID returns the identification field.
func (h IPv4Hdr) ID() uint16 { return binary.BigEndian.Uint16(h[4:6]) }

// SetID sets the identification field.
func (h IPv4Hdr) SetID(v uint16) { binary.BigEndian.PutUint16(h[4:6], v) }

// Flags returns the 3 flag bits.
func (h IPv4Hdr) Flags() uint8 { return h[6] >> 5 }

// SetFlags sets the 3 flag bits, preserving the fragment offset.
func (h IPv4Hdr) SetFlags(f uint8) { h[6] = h[6]&0x1f | f<<5 }

// FragOffset returns the fragment offset in 8-byte units.
func (h IPv4Hdr) FragOffset() uint16 {
	return binary.BigEndian.Uint16(h[6:8]) & 0x1fff
}

// SetFragOffset sets the fragment offset, preserving the flags.
func (h IPv4Hdr) SetFragOffset(off uint16) {
	binary.BigEndian.PutUint16(h[6:8], uint16(h[6]&0xe0)<<8|off&0x1fff)
}

// TTL returns the time-to-live field.
func (h IPv4Hdr) TTL() uint8 { return h[8] }

// SetTTL sets the time-to-live field.
func (h IPv4Hdr) SetTTL(v uint8) { h[8] = v }

// Protocol returns the payload protocol number.
func (h IPv4Hdr) Protocol() uint8 { return h[9] }

// SetProtocol sets the payload protocol number.
func (h IPv4Hdr) SetProtocol(v uint8) { h[9] = v }

// HeaderChecksum returns the header checksum field.
func (h IPv4Hdr) HeaderChecksum() uint16 { return binary.BigEndian.Uint16(h[10:12]) }

// SetHeaderChecksum sets the header checksum field.
func (h IPv4Hdr) SetHeaderChecksum(v uint16) { binary.BigEndian.PutUint16(h[10:12], v) }

// Src returns the source address.
func (h IPv4Hdr) Src() IPv4 { return IPv4FromBytes(h[12:16]) }

// SetSrc sets the source address.
func (h IPv4Hdr) SetSrc(ip IPv4) { binary.BigEndian.PutUint32(h[12:16], uint32(ip)) }

// Dst returns the destination address.
func (h IPv4Hdr) Dst() IPv4 { return IPv4FromBytes(h[16:20]) }

// SetDst sets the destination address.
func (h IPv4Hdr) SetDst(ip IPv4) { binary.BigEndian.PutUint32(h[16:20], uint32(ip)) }

// Payload returns the bytes after the header (options included in the
// header per HdrLen).
func (h IPv4Hdr) Payload() []byte { return h[h.HdrLen():] }

// CalcChecksum computes and writes the header checksum.
func (h IPv4Hdr) CalcChecksum() {
	h.SetHeaderChecksum(0)
	h.SetHeaderChecksum(Checksum(h[:h.HdrLen()]))
}

// VerifyChecksum reports whether the stored header checksum is valid.
func (h IPv4Hdr) VerifyChecksum() bool {
	return Checksum(h[:h.HdrLen()]) == 0
}

// IPv4Fill is the Fill configuration for an IPv4 header.
type IPv4Fill struct {
	Src      IPv4
	Dst      IPv4
	Protocol uint8
	TTL      uint8 // default 64
	TOS      uint8
	ID       uint16
	Length   uint16 // total length including header; required
	DontFrag bool
}

// Fill writes the whole header. The checksum field is zeroed; either
// CalcChecksum or NIC offloading fills it.
func (h IPv4Hdr) Fill(cfg IPv4Fill) {
	h.SetVersionIHL(IPv4HdrLen)
	h.SetTOS(cfg.TOS)
	h.SetTotalLength(cfg.Length)
	h.SetID(cfg.ID)
	binary.BigEndian.PutUint16(h[6:8], 0)
	if cfg.DontFrag {
		h.SetFlags(2)
	}
	if cfg.TTL == 0 {
		cfg.TTL = 64
	}
	h.SetTTL(cfg.TTL)
	h.SetProtocol(cfg.Protocol)
	h.SetHeaderChecksum(0)
	h.SetSrc(cfg.Src)
	h.SetDst(cfg.Dst)
}
