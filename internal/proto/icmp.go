package proto

import "encoding/binary"

// ICMP message types (v4).
const (
	ICMPTypeEchoReply   uint8 = 0
	ICMPTypeDestUnreach uint8 = 3
	ICMPTypeEcho        uint8 = 8
	ICMPTypeTimeExceed  uint8 = 11
)

// ICMPv6 message types.
const (
	ICMPv6TypeEchoRequest uint8 = 128
	ICMPv6TypeEchoReply   uint8 = 129
)

// ICMPHdrLen is the fixed ICMP header length (type, code, checksum,
// rest-of-header).
const ICMPHdrLen = 8

// ICMPHdr is a zero-copy view of an ICMP (v4 or v6) header.
type ICMPHdr []byte

// Type returns the message type.
func (h ICMPHdr) Type() uint8 { return h[0] }

// SetType sets the message type.
func (h ICMPHdr) SetType(v uint8) { h[0] = v }

// Code returns the message code.
func (h ICMPHdr) Code() uint8 { return h[1] }

// SetCode sets the message code.
func (h ICMPHdr) SetCode(v uint8) { h[1] = v }

// Checksum returns the checksum field.
func (h ICMPHdr) Checksum() uint16 { return binary.BigEndian.Uint16(h[2:4]) }

// SetChecksum sets the checksum field.
func (h ICMPHdr) SetChecksum(v uint16) { binary.BigEndian.PutUint16(h[2:4], v) }

// ID returns the echo identifier.
func (h ICMPHdr) ID() uint16 { return binary.BigEndian.Uint16(h[4:6]) }

// SetID sets the echo identifier.
func (h ICMPHdr) SetID(v uint16) { binary.BigEndian.PutUint16(h[4:6], v) }

// Seq returns the echo sequence number.
func (h ICMPHdr) Seq() uint16 { return binary.BigEndian.Uint16(h[6:8]) }

// SetSeq sets the echo sequence number.
func (h ICMPHdr) SetSeq(v uint16) { binary.BigEndian.PutUint16(h[6:8], v) }

// Payload returns the bytes after the fixed header.
func (h ICMPHdr) Payload() []byte { return h[ICMPHdrLen:] }

// CalcChecksumV4 computes and stores the ICMPv4 checksum over msg
// (header + payload). For ICMPv4 there is no pseudo header.
func (h ICMPHdr) CalcChecksumV4(msgLen int) {
	h.SetChecksum(0)
	h.SetChecksum(Checksum(h[:msgLen]))
}

// VerifyChecksumV4 reports whether the ICMPv4 checksum over msgLen bytes
// is valid.
func (h ICMPHdr) VerifyChecksumV4(msgLen int) bool {
	return Checksum(h[:msgLen]) == 0
}

// CalcChecksumV6 computes and stores the ICMPv6 checksum, which covers
// an IPv6 pseudo header.
func (h ICMPHdr) CalcChecksumV6(src, dst IPv6, msgLen int) {
	h.SetChecksum(0)
	h.SetChecksum(TransportChecksumIPv6(src, dst, IPProtoICMPv6, h[:msgLen]))
}

// ICMPFill is the Fill configuration for an ICMP header.
type ICMPFill struct {
	Type uint8
	Code uint8
	ID   uint16
	Seq  uint16
}

// Fill writes the fixed header with a zero checksum.
func (h ICMPHdr) Fill(cfg ICMPFill) {
	h.SetType(cfg.Type)
	h.SetCode(cfg.Code)
	h.SetChecksum(0)
	h.SetID(cfg.ID)
	h.SetSeq(cfg.Seq)
}
