package proto

import "encoding/binary"

// TCPHdrLen is the TCP header length without options.
const TCPHdrLen = 20

// TCP flag bits.
const (
	TCPFlagFIN uint8 = 1 << 0
	TCPFlagSYN uint8 = 1 << 1
	TCPFlagRST uint8 = 1 << 2
	TCPFlagPSH uint8 = 1 << 3
	TCPFlagACK uint8 = 1 << 4
	TCPFlagURG uint8 = 1 << 5
)

// TCPHdr is a zero-copy view of a TCP header.
type TCPHdr []byte

// SrcPort returns the source port.
func (h TCPHdr) SrcPort() uint16 { return binary.BigEndian.Uint16(h[0:2]) }

// SetSrcPort sets the source port.
func (h TCPHdr) SetSrcPort(v uint16) { binary.BigEndian.PutUint16(h[0:2], v) }

// DstPort returns the destination port.
func (h TCPHdr) DstPort() uint16 { return binary.BigEndian.Uint16(h[2:4]) }

// SetDstPort sets the destination port.
func (h TCPHdr) SetDstPort(v uint16) { binary.BigEndian.PutUint16(h[2:4], v) }

// SeqNum returns the sequence number.
func (h TCPHdr) SeqNum() uint32 { return binary.BigEndian.Uint32(h[4:8]) }

// SetSeqNum sets the sequence number.
func (h TCPHdr) SetSeqNum(v uint32) { binary.BigEndian.PutUint32(h[4:8], v) }

// AckNum returns the acknowledgment number.
func (h TCPHdr) AckNum() uint32 { return binary.BigEndian.Uint32(h[8:12]) }

// SetAckNum sets the acknowledgment number.
func (h TCPHdr) SetAckNum(v uint32) { binary.BigEndian.PutUint32(h[8:12], v) }

// DataOffset returns the header length in bytes.
func (h TCPHdr) DataOffset() int { return int(h[12]>>4) * 4 }

// SetDataOffset sets the header length in bytes.
func (h TCPHdr) SetDataOffset(bytes int) { h[12] = uint8(bytes/4) << 4 }

// Flags returns the flag byte.
func (h TCPHdr) Flags() uint8 { return h[13] }

// SetFlags sets the flag byte.
func (h TCPHdr) SetFlags(v uint8) { h[13] = v }

// Window returns the receive window.
func (h TCPHdr) Window() uint16 { return binary.BigEndian.Uint16(h[14:16]) }

// SetWindow sets the receive window.
func (h TCPHdr) SetWindow(v uint16) { binary.BigEndian.PutUint16(h[14:16], v) }

// Checksum returns the checksum field.
func (h TCPHdr) Checksum() uint16 { return binary.BigEndian.Uint16(h[16:18]) }

// SetChecksum sets the checksum field.
func (h TCPHdr) SetChecksum(v uint16) { binary.BigEndian.PutUint16(h[16:18], v) }

// UrgentPointer returns the urgent pointer.
func (h TCPHdr) UrgentPointer() uint16 { return binary.BigEndian.Uint16(h[18:20]) }

// SetUrgentPointer sets the urgent pointer.
func (h TCPHdr) SetUrgentPointer(v uint16) { binary.BigEndian.PutUint16(h[18:20], v) }

// Payload returns the bytes after the header (per DataOffset).
func (h TCPHdr) Payload() []byte { return h[h.DataOffset():] }

// TCPFill is the Fill configuration for a TCP header.
type TCPFill struct {
	SrcPort uint16
	DstPort uint16
	SeqNum  uint32
	AckNum  uint32
	Flags   uint8
	Window  uint16 // default 65535
}

// Fill writes a 20-byte header with a zero checksum.
func (h TCPHdr) Fill(cfg TCPFill) {
	h.SetSrcPort(cfg.SrcPort)
	h.SetDstPort(cfg.DstPort)
	h.SetSeqNum(cfg.SeqNum)
	h.SetAckNum(cfg.AckNum)
	h.SetDataOffset(TCPHdrLen)
	h[12] &= 0xf0 // reserved bits zero
	h.SetFlags(cfg.Flags)
	if cfg.Window == 0 {
		cfg.Window = 65535
	}
	h.SetWindow(cfg.Window)
	h.SetChecksum(0)
	h.SetUrgentPointer(0)
}
