package proto

import "encoding/binary"

// UDPHdrLen is the UDP header length.
const UDPHdrLen = 8

// UDPHdr is a zero-copy view of a UDP header.
type UDPHdr []byte

// SrcPort returns the source port.
func (h UDPHdr) SrcPort() uint16 { return binary.BigEndian.Uint16(h[0:2]) }

// SetSrcPort sets the source port.
func (h UDPHdr) SetSrcPort(v uint16) { binary.BigEndian.PutUint16(h[0:2], v) }

// DstPort returns the destination port.
func (h UDPHdr) DstPort() uint16 { return binary.BigEndian.Uint16(h[2:4]) }

// SetDstPort sets the destination port.
func (h UDPHdr) SetDstPort(v uint16) { binary.BigEndian.PutUint16(h[2:4], v) }

// Length returns the UDP length (header + payload).
func (h UDPHdr) Length() uint16 { return binary.BigEndian.Uint16(h[4:6]) }

// SetLength sets the UDP length.
func (h UDPHdr) SetLength(v uint16) { binary.BigEndian.PutUint16(h[4:6], v) }

// Checksum returns the checksum field.
func (h UDPHdr) Checksum() uint16 { return binary.BigEndian.Uint16(h[6:8]) }

// SetChecksum sets the checksum field.
func (h UDPHdr) SetChecksum(v uint16) { binary.BigEndian.PutUint16(h[6:8], v) }

// Payload returns the bytes after the header.
func (h UDPHdr) Payload() []byte { return h[UDPHdrLen:] }

// UDPFill is the Fill configuration for a UDP header.
type UDPFill struct {
	SrcPort uint16
	DstPort uint16
	Length  uint16 // header + payload
}

// Fill writes the whole header with a zero checksum.
func (h UDPHdr) Fill(cfg UDPFill) {
	h.SetSrcPort(cfg.SrcPort)
	h.SetDstPort(cfg.DstPort)
	h.SetLength(cfg.Length)
	h.SetChecksum(0)
}
