// Package fault is the deterministic fault-injection layer: typed
// fault events on the engine's sim-time grid, executed by an Injector
// registered on the engine. Faults are part of the modeled experiment,
// not test scaffolding — a fault plan is data (seed-reproducible,
// pinnable in goldens), every event fires at an exact simulated
// instant, and the per-fault counters surface through a telemetry
// probe so recovery behaviour is gateable like any other model output.
//
// Determinism contract: a plan is stated in global sim time, so in a
// sharded run every shard applies the identical plan to its private
// testbed at the identical instants. Counters that describe the plan
// itself (events fired, recovery latency) are therefore equal across
// shards and merge under RuleMax; counters that describe dropped
// traffic are per-shard quantities and merge under RuleSum — see
// telemetry.FaultProbe.
package fault

import (
	"fmt"

	"repro/internal/dut"
	"repro/internal/nic"
	"repro/internal/ptpclk"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Kind names a fault type. The strings are the spec-file vocabulary
// (docs/spec-reference.md, `faults:` block).
type Kind string

const (
	// LinkFlap takes the wire down for the event's duration: in-flight
	// frames are dropped (and counted) at the moment the link dies,
	// frames transmitted while it is down drop at the wire, and the TX
	// serialization grid is unaffected (see wire.Link.SetDown).
	LinkFlap Kind = "linkflap"
	// DuTStall pauses the DuT forwarder's service core: the poll chain
	// abandons, the driver backlog keeps filling (and tail-dropping),
	// and the restart optionally flushes the stale backlog.
	DuTStall Kind = "dut-stall"
	// QueuePause gates the NIC's TX pump (PFC-style backpressure):
	// frames wait in the descriptor rings, nothing is dropped, and the
	// resume re-evaluates the queues at the exact resume instant.
	QueuePause Kind = "queue-pause"
	// ClockStep steps the receive port's PTP clock phase and/or drift
	// rate at one instant (a time-sync upset). It has no duration.
	ClockStep Kind = "clock-step"
)

// Event is one typed fault in a Plan. At is the offset from the run
// start; periodic events repeat every Period until Count occurrences
// (0 = until the run horizon).
type Event struct {
	Kind Kind
	// At is the onset offset from the run start.
	At sim.Duration
	// Duration is the fault's active window (ignored by ClockStep).
	Duration sim.Duration
	// Period, when > 0, repeats the event every Period.
	Period sim.Duration
	// Count caps the number of occurrences of a periodic event
	// (0 = no cap; the run horizon bounds it).
	Count int
	// Flush makes a DuTStall restart discard the stale backlog.
	Flush bool
	// Offset is the ClockStep phase step.
	Offset sim.Duration
	// DriftPPM, when non-zero, is the ClockStep's new drift rate.
	DriftPPM float64
}

// Plan is a fault schedule: events sorted by onset. Validate before
// running; scenario.Execute does this for spec-carried plans.
type Plan []Event

// Validate checks the plan's internal consistency (kinds, windows,
// periods). Target availability (a DuTStall needs a forwarder in the
// testbed) is checked where the testbed is known.
func (p Plan) Validate() error {
	last := sim.Duration(-1)
	for i, ev := range p {
		at := func(format string, args ...any) error {
			return fmt.Errorf("fault plan event %d (%s): %s", i, ev.Kind, fmt.Sprintf(format, args...))
		}
		switch ev.Kind {
		case LinkFlap, DuTStall, QueuePause:
			if ev.Duration <= 0 {
				return at("duration must be positive, got %v", ev.Duration)
			}
			if ev.Offset != 0 || ev.DriftPPM != 0 {
				return at("offset/drift apply only to clock-step events")
			}
		case ClockStep:
			if ev.Offset == 0 && ev.DriftPPM == 0 {
				return at("a clock step needs an offset or a drift rate")
			}
			if ev.Duration != 0 {
				return at("a clock step is instantaneous; it cannot carry a duration")
			}
		default:
			return at("unknown fault kind (one of: linkflap, dut-stall, queue-pause, clock-step)")
		}
		if ev.At < 0 {
			return at("onset must be ≥ 0, got %v", ev.At)
		}
		if ev.At < last {
			return fmt.Errorf("fault plan event %d (%s): onsets must be sorted (%v after %v)", i, ev.Kind, ev.At, last)
		}
		last = ev.At
		if ev.Period < 0 {
			return at("period must be ≥ 0, got %v", ev.Period)
		}
		if ev.Period > 0 && ev.Period <= ev.Duration {
			return at("period (%v) must exceed the duration (%v), or the fault never recovers", ev.Period, ev.Duration)
		}
		if ev.Count < 0 {
			return at("count must be ≥ 0, got %d", ev.Count)
		}
		if ev.Count > 0 && ev.Period == 0 {
			return at("count needs a period (a one-shot event fires once)")
		}
		if ev.Flush && ev.Kind != DuTStall {
			return at("flush applies only to dut-stall events")
		}
	}
	return nil
}

// RequiresDuT reports whether the plan contains events that need a DuT
// forwarder in the testbed.
func (p Plan) RequiresDuT() bool {
	for _, ev := range p {
		if ev.Kind == DuTStall {
			return true
		}
	}
	return false
}

// Targets binds a plan to the testbed objects it acts on. Only the
// targets the plan's kinds touch need to be non-nil.
type Targets struct {
	// Link is the flapped wire (the generator's transmit direction).
	Link *wire.Link
	// Port is the pause-gated transmit port.
	Port *nic.Port
	// Fwd is the stalled DuT forwarder.
	Fwd *dut.Forwarder
	// Clock is the stepped PTP clock (the receive port's, by
	// convention: the clock latency measurements read).
	Clock *ptpclk.Clock
}

// State is the injector's lifecycle position.
type State int

const (
	// Armed: installed, no fault has fired yet.
	Armed State = iota
	// Active: at least one fault window is currently open.
	Active
	// Recovered: faults fired and every window has closed.
	Recovered
)

func (s State) String() string {
	switch s {
	case Armed:
		return "armed"
	case Active:
		return "active"
	case Recovered:
		return "recovered"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// Injector executes a Plan against Targets on an engine. Install
// unrolls the plan onto the event wheel up front: every occurrence
// within the run horizon becomes a pair of prescheduled events
// (onset/clear), so an armed injector contributes nothing — no events,
// no allocations, no branches — to the datapath until a fault actually
// fires. Occurrences beyond the horizon are not scheduled at all,
// which keeps the post-stop drain free of stray fault actions.
type Injector struct {
	eng       *sim.Engine
	t         Targets
	plan      Plan
	installed bool

	fired     uint64
	active    uint64
	scheduled int
	maxRecNS  uint64
	lastRecNS uint64
}

// New binds a validated plan to its targets. The plan is not executed
// until Install.
func New(eng *sim.Engine, t Targets, plan Plan) *Injector {
	return &Injector{eng: eng, t: t, plan: plan}
}

// Install schedules every occurrence of the plan within [start,
// start+horizon) on the engine. Windows are clamped to the horizon so
// a fault never outlives the measured run. Install must be called once,
// before the run starts; it panics on a plan whose targets are missing
// (spec-driven plans are validated against the topology upstream).
func (in *Injector) Install(start sim.Time, horizon sim.Duration) {
	if in.installed {
		panic("fault: Install called twice")
	}
	in.installed = true
	end := start.Add(horizon)
	for _, ev := range in.plan {
		in.requireTargets(ev)
		occ := start.Add(ev.At)
		for n := 0; occ < end; n++ {
			if ev.Count > 0 && n >= ev.Count {
				break
			}
			in.scheduleOccurrence(ev, occ, end)
			if ev.Period <= 0 {
				break
			}
			occ = occ.Add(ev.Period)
		}
	}
}

// requireTargets panics when an event's target is missing from the
// testbed — a wiring bug, not a runtime condition (spec compilation
// rejects e.g. dut-stall without a DuT topology before this point).
func (in *Injector) requireTargets(ev Event) {
	missing := func(what string) {
		panic(fmt.Sprintf("fault: %s event without a %s target", ev.Kind, what))
	}
	switch ev.Kind {
	case LinkFlap:
		if in.t.Link == nil {
			missing("link")
		}
	case DuTStall:
		if in.t.Fwd == nil {
			missing("forwarder")
		}
	case QueuePause:
		if in.t.Port == nil {
			missing("port")
		}
	case ClockStep:
		if in.t.Clock == nil {
			missing("clock")
		}
	}
}

// scheduleOccurrence schedules one onset (and, for windowed kinds, the
// matching clear, clamped to the run horizon).
func (in *Injector) scheduleOccurrence(ev Event, onset sim.Time, end sim.Time) {
	in.scheduled++
	if ev.Kind == ClockStep {
		in.eng.Schedule(onset, func() {
			in.fired++
			in.t.Clock.Adjust(ev.Offset)
			if ev.DriftPPM != 0 {
				in.t.Clock.SetDriftPPM(ev.DriftPPM)
			}
		})
		return
	}
	clear := onset.Add(ev.Duration)
	if clear > end {
		clear = end
	}
	in.eng.Schedule(onset, func() {
		in.fired++
		in.active++
		switch ev.Kind {
		case LinkFlap:
			in.t.Link.SetDown()
		case DuTStall:
			in.t.Fwd.Stall()
		case QueuePause:
			in.t.Port.PauseTx()
		}
	})
	in.eng.Schedule(clear, func() {
		in.active--
		rec := uint64(in.eng.Now().Sub(onset).Nanoseconds())
		in.lastRecNS = rec
		if rec > in.maxRecNS {
			in.maxRecNS = rec
		}
		switch ev.Kind {
		case LinkFlap:
			in.t.Link.SetUp()
		case DuTStall:
			in.t.Fwd.Restart(ev.Flush)
		case QueuePause:
			in.t.Port.ResumeTx()
		}
	})
}

// State returns the lifecycle position: Armed until the first onset,
// Active while any window is open, Recovered after.
func (in *Injector) State() State {
	if in.active > 0 {
		return Active
	}
	if in.fired > 0 {
		return Recovered
	}
	return Armed
}

// Fired returns the number of fault onsets executed so far. Every
// shard of a sharded run executes the identical plan, so this is a
// per-plan quantity (RuleMax under merge), not an additive one.
func (in *Injector) Fired() uint64 { return in.fired }

// ActiveFaults returns the number of currently open fault windows.
func (in *Injector) ActiveFaults() uint64 { return in.active }

// Scheduled returns the number of occurrences Install placed on the
// wheel (plan events × repetitions within the horizon).
func (in *Injector) Scheduled() int { return in.scheduled }

// FramesDropped returns the frames lost at fault boundaries: frames
// dropped by the down wire (in-flight drains plus dead-wire
// transmissions) and stale DuT backlog frames discarded by a flushing
// restart. Both counters advance only under fault action, so the sum
// is exactly the fault-attributed loss. Per-shard traffic quantity:
// RuleSum under merge.
func (in *Injector) FramesDropped() uint64 {
	var n uint64
	if in.t.Link != nil {
		n += in.t.Link.DroppedFrames
	}
	if in.t.Fwd != nil {
		n += in.t.Fwd.Flushed
	}
	return n
}

// MaxRecoveryNS returns the longest fault window executed so far, in
// sim-time nanoseconds (onset to clear, clamped to the run horizon) —
// the injector-level recovery latency.
func (in *Injector) MaxRecoveryNS() uint64 { return in.maxRecNS }

// LastRecoveryNS returns the most recently closed window's length in
// sim-time nanoseconds.
func (in *Injector) LastRecoveryNS() uint64 { return in.lastRecNS }
