package fault

import (
	"strings"
	"testing"

	"repro/internal/ptpclk"
	"repro/internal/sim"
	"repro/internal/wire"
)

func TestPlanValidate(t *testing.T) {
	ms := sim.Millisecond
	good := Plan{
		{Kind: LinkFlap, At: 1 * ms, Duration: 2 * ms, Period: 5 * ms, Count: 3},
		{Kind: ClockStep, At: 2 * ms, Offset: 100 * sim.Nanosecond},
		{Kind: DuTStall, At: 4 * ms, Duration: 1 * ms, Flush: true},
		{Kind: QueuePause, At: 4 * ms, Duration: 1 * ms},
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if !good.RequiresDuT() {
		t.Fatal("plan with a dut-stall must report RequiresDuT")
	}
	if (Plan{{Kind: LinkFlap, Duration: ms}}).RequiresDuT() {
		t.Fatal("plan without dut-stall must not report RequiresDuT")
	}

	bad := []struct {
		name string
		plan Plan
		want string
	}{
		{"unknown kind", Plan{{Kind: "fire", Duration: ms}}, "unknown fault kind"},
		{"zero duration window", Plan{{Kind: LinkFlap}}, "duration must be positive"},
		{"offset on window", Plan{{Kind: QueuePause, Duration: ms, Offset: ms}}, "apply only to clock-step"},
		{"empty clock step", Plan{{Kind: ClockStep}}, "needs an offset or a drift rate"},
		{"clock step with duration", Plan{{Kind: ClockStep, Offset: ms, Duration: ms}}, "cannot carry a duration"},
		{"negative onset", Plan{{Kind: LinkFlap, At: -ms, Duration: ms}}, "onset must be"},
		{"unsorted onsets", Plan{
			{Kind: LinkFlap, At: 2 * ms, Duration: ms},
			{Kind: LinkFlap, At: 1 * ms, Duration: ms},
		}, "must be sorted"},
		{"period under duration", Plan{{Kind: LinkFlap, Duration: 2 * ms, Period: ms}}, "must exceed the duration"},
		{"negative period", Plan{{Kind: LinkFlap, Duration: ms, Period: -ms}}, "period must be"},
		{"negative count", Plan{{Kind: LinkFlap, Duration: ms, Count: -1}}, "count must be"},
		{"count without period", Plan{{Kind: LinkFlap, Duration: ms, Count: 2}}, "count needs a period"},
		{"flush on linkflap", Plan{{Kind: LinkFlap, Duration: ms, Flush: true}}, "flush applies only to dut-stall"},
	}
	for _, tc := range bad {
		err := tc.plan.Validate()
		if err == nil {
			t.Errorf("%s: plan accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestInstallUnroll pins the plan-unrolling arithmetic: periodic events
// repeat until the horizon or their count cap, and occurrences at or
// past the horizon are never scheduled (the post-stop drain must stay
// free of fault actions).
func TestInstallUnroll(t *testing.T) {
	ms := sim.Millisecond
	cases := []struct {
		name string
		ev   Event
		want int
	}{
		{"one-shot", Event{Kind: ClockStep, At: 1 * ms, Offset: ms}, 1},
		{"periodic to horizon", Event{Kind: ClockStep, At: 1 * ms, Period: 2 * ms, Offset: ms}, 5},
		{"count capped", Event{Kind: ClockStep, At: 1 * ms, Period: 2 * ms, Count: 3, Offset: ms}, 3},
		{"beyond horizon", Event{Kind: ClockStep, At: 20 * ms, Offset: ms}, 0},
		{"onset at horizon excluded", Event{Kind: ClockStep, At: 10 * ms, Offset: ms}, 0},
	}
	for _, tc := range cases {
		eng := sim.NewEngine(1)
		clk := ptpclk.New(eng, ptpclk.Config{TickNS: 6.4})
		in := New(eng, Targets{Clock: clk}, Plan{tc.ev})
		in.Install(eng.Now(), 10*ms)
		if in.Scheduled() != tc.want {
			t.Errorf("%s: scheduled %d occurrences, want %d", tc.name, in.Scheduled(), tc.want)
		}
		eng.RunAll()
		if in.Fired() != uint64(tc.want) {
			t.Errorf("%s: fired %d, want %d", tc.name, in.Fired(), tc.want)
		}
	}
}

// frameSink counts deliveries; the minimal wire endpoint.
type frameSink struct{ delivered uint64 }

func (s *frameSink) DeliverFrame(f *wire.Frame, rxTime sim.Time) { s.delivered++ }

func TestLinkFlapLifecycle(t *testing.T) {
	ms := sim.Millisecond
	eng := sim.NewEngine(1)
	sink := &frameSink{}
	link := wire.NewLink(eng, wire.Speed10G, wire.PHY10GBaseSR, 2, sink)
	in := New(eng, Targets{Link: link}, Plan{
		{Kind: LinkFlap, At: 2 * ms, Duration: 1 * ms},
	})
	if in.State() != Armed {
		t.Fatalf("pre-install state = %v, want armed", in.State())
	}
	in.Install(eng.Now(), 10*ms)

	// One frame per 100 µs, enqueued on the serialization grid.
	var send func()
	sent := 0
	send = func() {
		f := link.AcquireFrame()
		f.Data = append(f.Data[:0], make([]byte, 60)...)
		f.WireSize = 64
		f.CRCOK = true
		link.Transmit(f)
		sent++
		if sent < 100 {
			eng.Schedule(eng.Now().Add(100*sim.Microsecond), send)
		}
	}
	eng.Schedule(eng.Now(), send)

	eng.Run(eng.Now().Add(2500 * sim.Microsecond))
	if in.State() != Active {
		t.Fatalf("mid-window state = %v, want active", in.State())
	}
	if in.ActiveFaults() != 1 {
		t.Fatalf("mid-window active = %d, want 1", in.ActiveFaults())
	}
	if link.DroppedFrames == 0 {
		t.Fatal("no frames dropped during the down window")
	}

	eng.RunAll()
	if in.State() != Recovered {
		t.Fatalf("final state = %v, want recovered", in.State())
	}
	if in.Fired() != 1 {
		t.Fatalf("fired = %d, want 1", in.Fired())
	}
	if in.MaxRecoveryNS() != uint64((1 * ms).Nanoseconds()) {
		t.Fatalf("max recovery = %d ns, want the 1 ms window", in.MaxRecoveryNS())
	}
	if in.LastRecoveryNS() != in.MaxRecoveryNS() {
		t.Fatalf("last recovery %d != max %d for a single window", in.LastRecoveryNS(), in.MaxRecoveryNS())
	}
	// The wire invariant survives the fault: every transmitted frame
	// was either delivered or counted dropped, never both or neither.
	if link.TxFrames != sink.delivered+link.DroppedFrames {
		t.Fatalf("tx %d != delivered %d + dropped %d", link.TxFrames, sink.delivered, link.DroppedFrames)
	}
	if in.FramesDropped() != link.DroppedFrames {
		t.Fatalf("injector FramesDropped %d != link DroppedFrames %d", in.FramesDropped(), link.DroppedFrames)
	}
}

// TestWindowClampedToHorizon: a window that would outlive the run is
// clamped, and the recorded recovery latency is the clamped width.
func TestWindowClampedToHorizon(t *testing.T) {
	ms := sim.Millisecond
	eng := sim.NewEngine(1)
	sink := &frameSink{}
	link := wire.NewLink(eng, wire.Speed10G, wire.PHY10GBaseSR, 2, sink)
	in := New(eng, Targets{Link: link}, Plan{
		{Kind: LinkFlap, At: 8 * ms, Duration: 5 * ms},
	})
	in.Install(eng.Now(), 10*ms)
	eng.RunAll()
	if in.State() != Recovered {
		t.Fatalf("state = %v, want recovered (clear clamped inside the horizon)", in.State())
	}
	if got, want := in.MaxRecoveryNS(), uint64((2 * ms).Nanoseconds()); got != want {
		t.Fatalf("clamped recovery = %d ns, want %d", got, want)
	}
	if link.IsDown() {
		t.Fatal("link must be up again after the clamped clear")
	}
}

func TestClockStepApplies(t *testing.T) {
	ms := sim.Millisecond
	eng := sim.NewEngine(1)
	clk := ptpclk.New(eng, ptpclk.Config{TickNS: 6.4})
	step := 250 * sim.Microsecond
	in := New(eng, Targets{Clock: clk}, Plan{
		{Kind: ClockStep, At: 1 * ms, Offset: step, DriftPPM: 35},
	})
	in.Install(eng.Now(), 10*ms)
	before := clk.Offset()
	eng.RunAll()
	if got := clk.Offset() - before; got != step {
		t.Fatalf("clock offset moved by %v, want %v", got, step)
	}
	if in.State() != Recovered {
		t.Fatalf("state after instantaneous step = %v, want recovered", in.State())
	}
}

func TestInstallPanics(t *testing.T) {
	ms := sim.Millisecond
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	eng := sim.NewEngine(1)
	clk := ptpclk.New(eng, ptpclk.Config{TickNS: 6.4})
	in := New(eng, Targets{Clock: clk}, Plan{{Kind: ClockStep, At: ms, Offset: ms}})
	in.Install(eng.Now(), 10*ms)
	mustPanic("double install", func() { in.Install(eng.Now(), 10*ms) })
	mustPanic("missing link target", func() {
		New(eng, Targets{}, Plan{{Kind: LinkFlap, At: ms, Duration: ms}}).Install(eng.Now(), 10*ms)
	})
	mustPanic("missing clock target", func() {
		New(eng, Targets{}, Plan{{Kind: ClockStep, At: ms, Offset: ms}}).Install(eng.Now(), 10*ms)
	})
}
