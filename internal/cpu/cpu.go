// Package cpu models packet-generation CPU cost in cycles per packet.
//
// The paper's methodology (§5.1, following Rizzo's netmap evaluation)
// reduces the CPU to exactly this abstraction: DPDK applications
// busy-wait, so utilization is meaningless and performance is quantified
// by clocking the CPU down until it becomes the bottleneck and counting
// cycles per packet. This package encodes the measured per-operation
// costs from Table 1 and Table 2 and predicts generator throughput from
// them (§5.6.3), which is what the throughput experiments (Figures 2-4)
// are built on. The real Go costs of this repository's implementation
// are measured separately by testing.B benchmarks.
package cpu

import (
	"fmt"

	"repro/internal/sim"
)

// Freq is a CPU core frequency in Hz.
type Freq float64

// Common test frequencies from the paper.
const (
	GHz Freq = 1e9
	// MinFreq and MaxFreq bound the Xeon E5-2620 v3's range used in
	// §5: 1.2 GHz to 2.4 GHz in 100 MHz steps.
	MinFreq = 1.2 * GHz
	MaxFreq = 2.4 * GHz
	// FreqStep is the frequency adjustment granularity.
	FreqStep = 0.1 * GHz
)

// Per-packet cycle costs of basic operations, Table 1 of the paper.
// The ± values are the reported standard deviations over 10 runs;
// they are carried for error propagation in cost estimates.
const (
	// CostPacketIO is allocating a batch of packets and sending them
	// without touching the contents: the DPDK framework cost.
	CostPacketIO = 76.0
	// CostPacketIOStd is the stddev of CostPacketIO.
	CostPacketIOStd = 0.8

	// CostModify writes a constant into the packet (one cacheline).
	CostModify    = 9.1
	CostModifyStd = 1.2

	// CostModifyTwoCachelines additionally touches a second cacheline.
	CostModifyTwoCachelines    = 15.0
	CostModifyTwoCachelinesStd = 1.3

	// Checksum offload costs: setting descriptor bitfields, plus (for
	// UDP/TCP) computing the IP pseudo-header checksum in software
	// because the X540 cannot.
	CostOffloadIP     = 15.2
	CostOffloadIPStd  = 1.2
	CostOffloadUDP    = 33.1
	CostOffloadUDPStd = 3.5
	CostOffloadTCP    = 34.0
	CostOffloadTCPStd = 3.3

	// CostBaselineConstant is Table 2's baseline: writing a constant
	// to a packet and sending it (= CostPacketIO + CostModify).
	CostBaselineConstant = 85.1
)

// FieldCost is one row of Table 2: the per-packet cost of computing and
// writing n varying header fields.
type FieldCost struct {
	Fields int
	Cycles float64
	Std    float64
}

// RandFieldCosts is Table 2's "Cycles/Pkt (Rand)" column: generating a
// random number per field with LuaJIT's Tausworthe generator.
var RandFieldCosts = []FieldCost{
	{1, 32.3, 0.5},
	{2, 39.8, 1.0},
	{4, 66.0, 0.9},
	{8, 133.5, 0.7},
}

// CounterFieldCosts is Table 2's "Cycles/Pkt (Counter)" column: wrapping
// counters instead of random numbers.
var CounterFieldCosts = []FieldCost{
	{1, 27.1, 1.4},
	{2, 33.1, 1.3},
	{4, 38.1, 2.0},
	{8, 41.7, 1.2},
}

// lookupFieldCost interpolates a Table 2 column for any field count.
func lookupFieldCost(table []FieldCost, fields int) float64 {
	if fields <= 0 {
		return 0
	}
	for _, fc := range table {
		if fc.Fields == fields {
			return fc.Cycles
		}
	}
	// Linear interpolation / extrapolation on the marginal cost.
	prev := table[0]
	if fields < prev.Fields {
		return prev.Cycles * float64(fields) / float64(prev.Fields)
	}
	for _, fc := range table[1:] {
		if fields < fc.Fields {
			frac := float64(fields-prev.Fields) / float64(fc.Fields-prev.Fields)
			return prev.Cycles + frac*(fc.Cycles-prev.Cycles)
		}
		prev = fc
	}
	last := table[len(table)-1]
	second := table[len(table)-2]
	marginal := (last.Cycles - second.Cycles) / float64(last.Fields-second.Fields)
	return last.Cycles + marginal*float64(fields-last.Fields)
}

// RandFieldCycles returns the Table 2 cost of n random fields.
func RandFieldCycles(fields int) float64 { return lookupFieldCost(RandFieldCosts, fields) }

// CounterFieldCycles returns the Table 2 cost of n counter fields.
func CounterFieldCycles(fields int) float64 { return lookupFieldCost(CounterFieldCosts, fields) }

// Offload identifies a checksum-offload flavour.
type Offload int

// Offload flavours.
const (
	OffloadNone Offload = iota
	OffloadIP
	OffloadUDP
	OffloadTCP
)

// Cycles returns the Table 1 cost of the offload.
func (o Offload) Cycles() float64 {
	switch o {
	case OffloadIP:
		return CostOffloadIP
	case OffloadUDP:
		return CostOffloadUDP
	case OffloadTCP:
		return CostOffloadTCP
	default:
		return 0
	}
}

// Workload describes a generator script's per-packet work in cost-model
// terms. It is the §5.6.3 estimation recipe as a struct.
type Workload struct {
	Name string

	// RandFields and CounterFields are varying header/payload fields
	// generated per packet.
	RandFields    int
	CounterFields int

	// ExtraCachelines is the number of cachelines touched beyond the
	// first when modifying the packet (0 for ≤64 B of writes).
	ExtraCachelines int

	// Offload is the checksum offload requested.
	Offload Offload

	// ExtraCycles covers anything else the script does per packet.
	ExtraCycles float64

	// MemStallNS is a constant-time (frequency-independent) component
	// per packet, modeling memory-bound work. The paper's §5.2
	// explains Pktgen-DPDK's lower efficiency by its complex main
	// loop; a constant-time stall component reproduces its measured
	// frequency scaling (14.12 Mpps at 1.5 GHz, line rate at 1.7 GHz).
	MemStallNS float64
}

// Cycles returns the predicted cycles per packet (the frequency-scaled
// part only; see TimePerPacket for the full time).
func (w Workload) Cycles() float64 {
	c := CostPacketIO + w.ExtraCycles
	if w.RandFields > 0 || w.CounterFields > 0 || w.ExtraCachelines > 0 {
		c += CostModify
	}
	c += float64(w.ExtraCachelines) * (CostModifyTwoCachelines - CostModify)
	c += RandFieldCycles(w.RandFields)
	c += CounterFieldCycles(w.CounterFields)
	c += w.Offload.Cycles()
	return c
}

// CyclesStd returns the propagated standard deviation of the estimate
// (root sum of squares of the component stddevs, as in §5.6.3).
func (w Workload) CyclesStd() float64 {
	var varsum float64
	add := func(s float64) { varsum += s * s }
	add(CostPacketIOStd)
	if w.RandFields > 0 || w.CounterFields > 0 || w.ExtraCachelines > 0 {
		add(CostModifyStd)
	}
	if w.ExtraCachelines > 0 {
		add(CostModifyTwoCachelinesStd)
	}
	for _, fc := range RandFieldCosts {
		if fc.Fields == w.RandFields {
			add(fc.Std)
		}
	}
	for _, fc := range CounterFieldCosts {
		if fc.Fields == w.CounterFields {
			add(fc.Std)
		}
	}
	switch w.Offload {
	case OffloadIP:
		add(CostOffloadIPStd)
	case OffloadUDP:
		add(CostOffloadUDPStd)
	case OffloadTCP:
		add(CostOffloadTCPStd)
	}
	return sqrt(varsum)
}

func sqrt(v float64) float64 {
	// Newton iteration; avoids importing math for one call site and
	// keeps the package dependency-free beyond sim.
	if v <= 0 {
		return 0
	}
	x := v
	for i := 0; i < 40; i++ {
		x = 0.5 * (x + v/x)
	}
	return x
}

// TimePerPacket returns the wall time one core needs per packet at
// frequency f.
func (w Workload) TimePerPacket(f Freq) sim.Duration {
	ns := w.Cycles()/float64(f)*1e9 + w.MemStallNS
	return sim.FromNanoseconds(ns)
}

// PPS returns the packet rate one core sustains at frequency f,
// ignoring line-rate limits.
func (w Workload) PPS(f Freq) float64 {
	return 1e9 / (w.Cycles()/float64(f)*1e9 + w.MemStallNS)
}

// PPSPredictionStd returns the ± on the PPS prediction from the cycle
// stddev (first-order propagation), used to report "10.47±0.18 Mpps".
func (w Workload) PPSPredictionStd(f Freq) float64 {
	c := w.Cycles()
	s := w.CyclesStd()
	pps := w.PPS(f)
	return pps * s / c
}

// String implements fmt.Stringer.
func (w Workload) String() string {
	return fmt.Sprintf("%s (%.1f cycles/pkt)", w.Name, w.Cycles())
}

// Named workloads used throughout the evaluation.

// SimpleUDPWorkload is §5.2's comparison workload: minimum-sized UDP
// packets with 256 varying source IPs (one randomized field, IP
// checksum not offloaded in the comparison). MoonGen reaches 10 GbE
// line rate with it at 1.5 GHz ⇒ ~100.8 cycles/pkt.
var SimpleUDPWorkload = Workload{
	Name:       "simple-udp-256-src-ips",
	RandFields: 1,
	// 100.8 = 76.0 (IO) + 9.1 (modify) + 15.7 (rand field): the rand
	// cost here is slightly below Table 2's 32.3 because the script
	// randomizes over only 256 addresses with a cheap mask.
	ExtraCycles: 100.8 - CostPacketIO - CostModify - RandFieldCycles(1),
}

// PktgenDPDKWorkload models Pktgen-DPDK 2.5.1 on the same §5.2 task.
// Its complex main loop adds a frequency-independent component; the
// two-point fit to the paper's measurements (14.12 Mpps at 1.5 GHz,
// line rate reached at 1.7 GHz) gives ~46 cycles + ~40 ns per packet.
var PktgenDPDKWorkload = Workload{
	Name:        "pktgen-dpdk-simple-udp",
	ExtraCycles: 46.2 - CostPacketIO,
	MemStallNS:  40.0,
}

// HeavyRandomWorkload is §5.3/§5.6.3's stress workload: random payload
// plus random source/destination addresses and ports, 8 random numbers
// per packet, writing beyond one cacheline, with IP checksum offload.
// Predicted 229.2±3.9 cycles/pkt ⇒ 10.47±0.18 Mpps at 2.4 GHz;
// the paper measured 10.3 Mpps.
var HeavyRandomWorkload = Workload{
	Name:            "heavy-random-8-fields",
	RandFields:      8,
	ExtraCachelines: 1,
	Offload:         OffloadIP,
	// Table 1/2 components: 76.0 + 15.0 + 133.5 + 15.2 = 239.7. The
	// paper's own sum is 229.2±3.9: their modification cost is partly
	// contained in the Table 2 rand numbers. The -10.5 correction
	// documents that overlap explicitly.
	ExtraCycles: -10.5,
}
