package cpu

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestTable2Lookup(t *testing.T) {
	if c := RandFieldCycles(1); c != 32.3 {
		t.Fatalf("rand 1 field = %f", c)
	}
	if c := RandFieldCycles(8); c != 133.5 {
		t.Fatalf("rand 8 fields = %f", c)
	}
	if c := CounterFieldCycles(4); c != 38.1 {
		t.Fatalf("counter 4 fields = %f", c)
	}
	if c := RandFieldCycles(0); c != 0 {
		t.Fatalf("0 fields = %f", c)
	}
	// Interpolation between 2 and 4 fields.
	c3 := RandFieldCycles(3)
	if c3 <= 39.8 || c3 >= 66.0 {
		t.Fatalf("rand 3 fields = %f, want between 39.8 and 66.0", c3)
	}
	// Extrapolation beyond 8 fields uses the last marginal cost.
	c16 := RandFieldCycles(16)
	if c16 <= 133.5 {
		t.Fatalf("rand 16 fields = %f", c16)
	}
}

func TestBaselineIdentity(t *testing.T) {
	// Table 2's baseline (85.1) is packet IO + one modification.
	if got := CostPacketIO + CostModify; math.Abs(got-CostBaselineConstant) > 1e-9 {
		t.Fatalf("IO+modify = %f, want %f", got, CostBaselineConstant)
	}
}

// TestSimpleWorkloadLineRateAt1500MHz is the §5.2 headline: MoonGen
// saturates 10 GbE (14.88 Mpps) at 1.5 GHz.
func TestSimpleWorkloadLineRateAt1500MHz(t *testing.T) {
	pps := SimpleUDPWorkload.PPS(1.5 * GHz)
	if pps < 14.88e6 {
		t.Fatalf("MoonGen at 1.5 GHz: %.2f Mpps < line rate", pps/1e6)
	}
	// And at 1.4 GHz it must NOT reach line rate (1.5 was the minimum).
	if pps := SimpleUDPWorkload.PPS(1.4 * GHz); pps >= 14.88e6 {
		t.Fatalf("MoonGen at 1.4 GHz: %.2f Mpps >= line rate", pps/1e6)
	}
}

// TestPktgenNeeds1700MHz: Pktgen-DPDK required 1.7 GHz for line rate and
// achieved 14.12 Mpps at 1.5 GHz (§5.2).
func TestPktgenNeeds1700MHz(t *testing.T) {
	at15 := PktgenDPDKWorkload.PPS(1.5 * GHz)
	if math.Abs(at15-14.12e6) > 0.15e6 {
		t.Fatalf("Pktgen at 1.5 GHz = %.2f Mpps, want ~14.12", at15/1e6)
	}
	if pps := PktgenDPDKWorkload.PPS(1.6 * GHz); pps >= 14.88e6 {
		t.Fatalf("Pktgen at 1.6 GHz = %.2f Mpps, should be below line rate", pps/1e6)
	}
	if pps := PktgenDPDKWorkload.PPS(1.7 * GHz); pps < 14.88e6 {
		t.Fatalf("Pktgen at 1.7 GHz = %.2f Mpps, should reach line rate", pps/1e6)
	}
}

// TestHeavyWorkloadEstimate reproduces §5.6.3: 229.2±3.9 cycles/pkt and
// 10.47±0.18 Mpps at 2.4 GHz.
func TestHeavyWorkloadEstimate(t *testing.T) {
	c := HeavyRandomWorkload.Cycles()
	if math.Abs(c-229.2) > 0.5 {
		t.Fatalf("heavy workload = %f cycles, want 229.2", c)
	}
	pps := HeavyRandomWorkload.PPS(2.4 * GHz)
	if math.Abs(pps-10.47e6) > 0.1e6 {
		t.Fatalf("predicted pps = %.3f M, want 10.47", pps/1e6)
	}
	std := HeavyRandomWorkload.PPSPredictionStd(2.4 * GHz)
	if std < 0.05e6 || std > 0.35e6 {
		t.Fatalf("prediction std = %.3f Mpps, want ~0.18", std/1e6)
	}
	// The measured 10.3 Mpps must fall within ~1 sigma of prediction.
	if math.Abs(pps-10.3e6) > 2*std {
		t.Fatalf("measured 10.3 Mpps not within 2 sigma of %.2f±%.2f", pps/1e6, std/1e6)
	}
}

func TestCyclesStdPropagation(t *testing.T) {
	// A workload with only IO has the IO stddev.
	w := Workload{Name: "io-only"}
	if s := w.CyclesStd(); math.Abs(s-CostPacketIOStd) > 1e-6 {
		t.Fatalf("io-only std = %f", s)
	}
	// Adding components grows the stddev (RSS).
	w2 := Workload{RandFields: 8, Offload: OffloadUDP}
	if w2.CyclesStd() <= w.CyclesStd() {
		t.Fatal("std did not grow with components")
	}
}

func TestTimePerPacket(t *testing.T) {
	w := Workload{ExtraCycles: 24} // 76+24 = 100 cycles
	d := w.TimePerPacket(2 * GHz)
	if d != 50*sim.Nanosecond {
		t.Fatalf("time/pkt = %v, want 50ns", d)
	}
	// Memory stall adds frequency-independent time.
	w.MemStallNS = 10
	if d := w.TimePerPacket(2 * GHz); d != 60*sim.Nanosecond {
		t.Fatalf("time/pkt with stall = %v, want 60ns", d)
	}
}

func TestOffloadCycles(t *testing.T) {
	if OffloadNone.Cycles() != 0 {
		t.Fatal("none != 0")
	}
	if OffloadIP.Cycles() != 15.2 || OffloadUDP.Cycles() != 33.1 || OffloadTCP.Cycles() != 34.0 {
		t.Fatal("offload costs wrong")
	}
}

// TestCounterCheaperThanRand encodes the paper's recommendation:
// wrapping counters beat random number generation at every field count.
func TestCounterCheaperThanRand(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		if CounterFieldCycles(n) >= RandFieldCycles(n) {
			t.Fatalf("counter not cheaper at %d fields", n)
		}
	}
}

func TestSqrt(t *testing.T) {
	for _, v := range []float64{0, 1, 2, 100, 15.21} {
		if got, want := sqrt(v), math.Sqrt(v); math.Abs(got-want) > 1e-9 {
			t.Fatalf("sqrt(%f) = %f, want %f", v, got, want)
		}
	}
}

func TestWorkloadString(t *testing.T) {
	s := HeavyRandomWorkload.String()
	if s == "" {
		t.Fatal("empty string")
	}
}
