package nic

import (
	"math"
	"testing"

	"repro/internal/mempool"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// testPair builds two connected X540 ports.
func testPair(t *testing.T, seed int64) (*sim.Engine, *Port, *Port) {
	t.Helper()
	eng := sim.NewEngine(seed)
	a := NewPort(eng, PortConfig{Profile: ChipX540, ID: 0, TxQueues: 2, RxQueues: 2})
	b := NewPort(eng, PortConfig{Profile: ChipX540, ID: 1, TxQueues: 2, RxQueues: 2})
	ConnectDuplex(eng, a, b, wire.PHY10GBaseT, 2)
	return eng, a, b
}

// makeUDP allocates a UDP packet from pool with the given source port.
// It returns nil when the pool is dry (all buffers in flight); callers
// back off and retry, as a DPDK transmit loop does.
func makeUDP(pool *mempool.Pool, size int, udpSrc uint16) *mempool.Mbuf {
	m := pool.Alloc(size)
	if m == nil {
		return nil
	}
	p := proto.UDPPacket{B: m.Payload()}
	p.Fill(proto.UDPPacketFill{
		PktLength: size,
		EthSrc:    proto.MustMAC("02:00:00:00:00:01"),
		EthDst:    proto.MustMAC("02:00:00:00:00:02"),
		IPSrc:     proto.MustIPv4("10.0.0.1"),
		IPDst:     proto.MustIPv4("10.0.0.2"),
		UDPSrc:    udpSrc,
		UDPDst:    42,
	})
	return m
}

// pumpQueue keeps q saturated with UDP packets until the run ends,
// backing off when the pool or the descriptor ring is full.
func pumpQueue(p *sim.Proc, pool *mempool.Pool, q *TxQueue, size int, udpSrc uint16) {
	for p.Running() {
		m := makeUDP(pool, size, udpSrc)
		if m == nil {
			p.Sleep(2 * sim.Microsecond)
			continue
		}
		if !q.SendOne(m) {
			m.Free()
			p.Sleep(2 * sim.Microsecond)
			continue
		}
		p.Yield()
	}
}

func TestTxRxRoundTrip(t *testing.T) {
	eng, a, b := testPair(t, 1)
	pool := mempool.New(mempool.Config{Count: 64})
	q := a.GetTxQueue(0)
	eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			if !q.SendOne(makeUDP(pool, 60, uint16(1000+i))) {
				t.Error("send failed")
			}
		}
	})
	eng.RunAll()
	if got := b.GetStats().RxPackets; got != 10 {
		t.Fatalf("rx packets = %d", got)
	}
	if got := a.GetStats().TxPackets; got != 10 {
		t.Fatalf("tx packets = %d", got)
	}
	// All packets landed in b's queues with intact contents and in order.
	var seen []uint16
	for qi := 0; qi < b.NumRxQueues(); qi++ {
		rxq := b.GetRxQueue(qi)
		for {
			m, ok := rxq.RecvOne()
			if !ok {
				break
			}
			p := proto.UDPPacket{B: m.Payload()}
			if p.IP().Src() != proto.MustIPv4("10.0.0.1") {
				t.Fatal("payload corrupted")
			}
			seen = append(seen, p.UDP().SrcPort())
			m.Free()
		}
	}
	if len(seen) != 10 {
		t.Fatalf("received %d packets from queues", len(seen))
	}
}

func TestBufferRecycling(t *testing.T) {
	eng, a, _ := testPair(t, 2)
	pool := mempool.New(mempool.Config{Count: 16})
	q := a.GetTxQueue(0)
	eng.Schedule(0, func() {
		for i := 0; i < 16; i++ {
			q.SendOne(makeUDP(pool, 60, 1))
		}
	})
	eng.RunAll()
	if avail := pool.Available(); avail != 16 {
		t.Fatalf("pool has %d free buffers after transmit, want 16", avail)
	}
}

func TestLineRate(t *testing.T) {
	eng, a, b := testPair(t, 3)
	pool := mempool.New(mempool.Config{Count: 4096})
	q := a.GetTxQueue(0)
	const runFor = 10 * sim.Millisecond
	eng.SetStopTime(sim.Time(runFor))
	eng.Spawn("tx", func(p *sim.Proc) {
		batch := make([]*mempool.Mbuf, 32)
		for p.Running() {
			n := pool.AllocBatch(batch, 60)
			for i := 0; i < n; i++ {
				pk := proto.UDPPacket{B: batch[i].Payload()}
				pk.Fill(proto.UDPPacketFill{PktLength: 60, UDPSrc: 7, UDPDst: 42,
					IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.0.0.2")})
			}
			sent := 0
			for sent < n {
				k := q.Send(batch[sent:n])
				sent += k
				if k == 0 {
					p.Sleep(sim.Microsecond)
				}
			}
			if n == 0 {
				p.Sleep(sim.Microsecond)
				continue
			}
			p.Yield()
		}
	})
	eng.Spawn("rxdrain", func(p *sim.Proc) {
		out := make([]*mempool.Mbuf, 64)
		for p.Running() || b.GetRxQueue(0).Pending() > 0 {
			n := b.GetRxQueue(0).Recv(out)
			n += b.GetRxQueue(1).Recv(out[n:])
			for i := 0; i < n; i++ {
				out[i].Free()
			}
			p.Sleep(2 * sim.Microsecond)
		}
	})
	var txAtStop uint64
	eng.Schedule(sim.Time(runFor), func() { txAtStop = a.GetStats().TxPackets })
	eng.RunAll()
	pps := float64(txAtStop) / sim.Duration(runFor).Seconds()
	if math.Abs(pps-14.88e6) > 0.05e6 {
		t.Fatalf("unshaped rate = %.3f Mpps, want ~14.88", pps/1e6)
	}
}

func TestHWRateControlAccuracy(t *testing.T) {
	eng, a, b := testPair(t, 4)
	pool := mempool.New(mempool.Config{Count: 4096})
	q := a.GetTxQueue(0)
	const target = 1e6 // 1 Mpps
	var arrivals []sim.Time
	b.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool {
		arrivals = append(arrivals, at)
		return true
	})
	eng.Schedule(0, func() { q.SetRatePPS(target) })
	eng.SetStopTime(sim.Time(20 * sim.Millisecond))
	eng.Spawn("tx", func(p *sim.Proc) { pumpQueue(p, pool, q, 60, 1) })
	eng.RunAll()
	if len(arrivals) < 1000 {
		t.Fatalf("only %d arrivals", len(arrivals))
	}
	// Long-term rate accuracy: within 0.5% of target.
	span := arrivals[len(arrivals)-1].Sub(arrivals[0]).Seconds()
	rate := float64(len(arrivals)-1) / span
	if math.Abs(rate-target)/target > 0.005 {
		t.Fatalf("achieved rate %.0f pps, want %.0f", rate, target)
	}
	// Per-gap deviation bounded by the documented ±512 ns plus PHY jitter.
	ideal := sim.FromSeconds(1 / target)
	for i := 1; i < len(arrivals); i++ {
		dev := arrivals[i].Sub(arrivals[i-1]) - ideal
		if dev < 0 {
			dev = -dev
		}
		if dev > 2*512*sim.Nanosecond {
			t.Fatalf("gap %d deviates %v", i, dev)
		}
	}
}

// TestHWRateAnomaly reproduces §7.5: above ~9 Mpps a single queue's
// shaper misbehaves; splitting across two queues works around it.
func TestHWRateAnomaly(t *testing.T) {
	run := func(seed int64, queues int, totalPPS float64) float64 {
		eng := sim.NewEngine(seed)
		a := NewPort(eng, PortConfig{Profile: ChipX540, ID: 0, TxQueues: queues})
		b := NewPort(eng, PortConfig{Profile: ChipX540, ID: 1})
		ConnectDuplex(eng, a, b, wire.PHY10GBaseT, 2)
		pool := mempool.New(mempool.Config{Count: 4096})
		count := 0
		b.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { count++; return true })
		const runFor = 5 * sim.Millisecond
		eng.SetStopTime(sim.Time(runFor))
		for qi := 0; qi < queues; qi++ {
			q := a.GetTxQueue(qi)
			eng.Schedule(0, func() { q.SetRatePPS(totalPPS / float64(queues)) })
			eng.Spawn("tx", func(p *sim.Proc) { pumpQueue(p, pool, q, 60, 1) })
		}
		atStop := 0
		eng.Schedule(sim.Time(runFor), func() { atStop = count })
		eng.RunAll()
		return float64(atStop) / sim.Duration(runFor).Seconds()
	}
	// 10 Mpps on one queue: nonlinear shortfall.
	single := run(5, 1, 10e6)
	if dev := math.Abs(single-10e6) / 10e6; dev < 0.03 {
		t.Fatalf("single queue at 10 Mpps achieved %.2f Mpps (dev %.1f%%), expected anomaly", single/1e6, dev*100)
	}
	// Two queues at 5 Mpps each: accurate. At 200 ns target intervals
	// the shaper's oscillation (up to ~±350 ns) clamps against the
	// previous departure, so a percent-level shortfall is physical;
	// the anomaly above shows a much larger, nonlinear error.
	double := run(6, 2, 10e6)
	if dev := math.Abs(double-10e6) / 10e6; dev > 0.02 {
		t.Fatalf("two queues at 5 Mpps achieved %.2f Mpps (dev %.1f%%)", double/1e6, dev*100)
	}
}

// TestBadCRCDroppedEarly verifies the §8 foundation: frames with an
// invalid FCS never reach a receive queue; only the error counter moves.
func TestBadCRCDroppedEarly(t *testing.T) {
	eng, a, b := testPair(t, 7)
	pool := mempool.New(mempool.Config{Count: 64})
	q := a.GetTxQueue(0)
	eng.Schedule(0, func() {
		good := makeUDP(pool, 60, 1)
		bad := makeUDP(pool, 60, 2)
		bad.TxMeta.InvalidCRC = true
		q.SendOne(bad)
		q.SendOne(good)
	})
	eng.RunAll()
	st := b.GetStats()
	if st.RxCRCErrors != 1 {
		t.Fatalf("crc errors = %d, want 1", st.RxCRCErrors)
	}
	if st.RxPackets != 1 {
		t.Fatalf("rx packets = %d, want 1", st.RxPackets)
	}
	total := 0
	for i := 0; i < b.NumRxQueues(); i++ {
		total += b.GetRxQueue(i).Pending()
	}
	if total != 1 {
		t.Fatalf("%d packets in rx queues, want 1", total)
	}
}

// TestRuntFramesDroppedAsErrors: sub-64B wire frames also hit the error
// counter (illegal length), used by the CRC-gap method for short gaps.
func TestRuntFramesDropped(t *testing.T) {
	eng, a, b := testPair(t, 8)
	pool := mempool.New(mempool.Config{Count: 64})
	q := a.GetTxQueue(0)
	eng.Schedule(0, func() {
		runt := pool.Alloc(40) // 44 with FCS: < 64 minimum
		proto.EthHdr(runt.Payload()).Fill(proto.EthFill{EtherType: proto.EtherTypeIPv4})
		runt.TxMeta.InvalidCRC = true
		q.SendOne(runt)
	})
	eng.RunAll()
	if st := b.GetStats(); st.RxCRCErrors != 1 || st.RxPackets != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestTimestampLatchSemantics(t *testing.T) {
	eng, a, b := testPair(t, 9)
	b.EnableTimestamps(0)
	a.EnableTimestamps(0)
	pool := mempool.New(mempool.Config{Count: 64})
	q := a.GetTxQueue(0)
	mkPTP := func(seq uint16) *mempool.Mbuf {
		m := pool.Alloc(60)
		p := proto.PTPPacket{B: m.Payload()}
		p.Fill(proto.PTPPacketFill{PktLength: 60, MessageType: proto.PTPMsgSync, SequenceID: seq})
		m.TxMeta.Timestamp = true
		return m
	}
	eng.Schedule(0, func() {
		q.SendOne(mkPTP(1))
		q.SendOne(mkPTP(2)) // latch still occupied: no TX timestamp
	})
	eng.RunAll()
	ts1, seq, ok := a.ReadTxTimestamp()
	if !ok || seq != 1 {
		t.Fatalf("tx timestamp: ok=%v seq=%d", ok, seq)
	}
	if _, _, ok := a.ReadTxTimestamp(); ok {
		t.Fatal("second read should find latch empty")
	}
	rts, rseq, ok := b.ReadRxTimestamp()
	if !ok || rseq != 1 {
		t.Fatalf("rx timestamp: ok=%v seq=%d", ok, rseq)
	}
	if rts <= ts1 {
		t.Fatalf("rx ts %v <= tx ts %v", rts, ts1)
	}
	// Latency = k + l/vp (~2156.8 ns for 2 m copper) ± quantization+jitter.
	lat := rts.Sub(ts1).Nanoseconds()
	if math.Abs(lat-2156.8) > 40 {
		t.Fatalf("measured latency %.1f ns, want ~2156.8", lat)
	}
}

// TestUDPPTPMinSize: UDP PTP packets below 80 B are not timestamped;
// layer-2 PTP packets of any size are (§6.4).
func TestUDPPTPMinSize(t *testing.T) {
	eng, a, b := testPair(t, 10)
	b.EnableTimestamps(0)
	pool := mempool.New(mempool.Config{Count: 64})
	q := a.GetTxQueue(0)
	mkUDPPTP := func(size int, seq uint16) *mempool.Mbuf {
		m := pool.Alloc(size)
		p := proto.UDPPTPPacket{B: m.Payload()}
		p.Fill(proto.UDPPTPPacketFill{
			PktLength: size, MessageType: proto.PTPMsgSync, SequenceID: seq,
			IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.0.0.2"),
		})
		return m
	}
	eng.Schedule(0, func() {
		q.SendOne(mkUDPPTP(70, 1)) // 74 B with FCS: too small
	})
	eng.RunAll()
	if _, _, ok := b.ReadRxTimestamp(); ok {
		t.Fatal("undersized UDP PTP packet was timestamped")
	}
	eng.Schedule(eng.Now(), func() {
		q.SendOne(mkUDPPTP(80, 2)) // 84 B with FCS: large enough
	})
	eng.RunAll()
	if _, seq, ok := b.ReadRxTimestamp(); !ok || seq != 2 {
		t.Fatalf("80B UDP PTP packet not timestamped (ok=%v seq=%d)", ok, seq)
	}
}

// TestFillerNotTimestamped: packets with a non-event PTP type pass the
// DuT untouched but are not timestamped — how MoonGen crafts load
// packets indistinguishable from probe packets (§6.4).
func TestFillerNotTimestamped(t *testing.T) {
	eng, a, b := testPair(t, 11)
	b.EnableTimestamps(0)
	pool := mempool.New(mempool.Config{Count: 64})
	q := a.GetTxQueue(0)
	eng.Schedule(0, func() {
		m := pool.Alloc(60)
		p := proto.PTPPacket{B: m.Payload()}
		p.Fill(proto.PTPPacketFill{PktLength: 60, MessageType: proto.PTPMsgNoTimestamp, SequenceID: 9})
		q.SendOne(m)
	})
	eng.RunAll()
	if _, _, ok := b.ReadRxTimestamp(); ok {
		t.Fatal("filler packet was timestamped")
	}
	if b.GetStats().RxPackets != 1 {
		t.Fatal("filler packet was not delivered")
	}
}

func TestChecksumOffloadMatchesSoftware(t *testing.T) {
	eng, a, b := testPair(t, 12)
	pool := mempool.New(mempool.Config{Count: 64})
	q := a.GetTxQueue(0)
	eng.Schedule(0, func() {
		m := makeUDP(pool, 124, 5555)
		m.TxMeta.OffloadIPChecksum = true
		m.TxMeta.OffloadUDPChecksum = true
		q.SendOne(m)
	})
	eng.RunAll()
	m, ok := b.GetRxQueue(b.NumRxQueues() - 1).RecvOne()
	if !ok {
		for i := 0; i < b.NumRxQueues(); i++ {
			if mm, ok2 := b.GetRxQueue(i).RecvOne(); ok2 {
				m = mm
				ok = true
				break
			}
		}
	}
	if !ok {
		t.Fatal("no packet received")
	}
	p := proto.UDPPacket{B: m.Payload()}
	if !p.VerifyChecksums() {
		t.Fatal("offloaded checksums invalid")
	}
	// Cross-check against a software-computed copy.
	ref := make([]byte, m.Len)
	copy(ref, m.Payload())
	rp := proto.UDPPacket{B: ref}
	rp.CalcChecksums()
	if rp.IP().HeaderChecksum() != p.IP().HeaderChecksum() ||
		rp.UDP().Checksum() != p.UDP().Checksum() {
		t.Fatal("offload result differs from software computation")
	}
}

func TestRSSSteering(t *testing.T) {
	eng, a, b := testPair(t, 13)
	pool := mempool.New(mempool.Config{Count: 512})
	q := a.GetTxQueue(0)
	eng.Schedule(0, func() {
		for i := 0; i < 200; i++ {
			q.SendOne(makeUDP(pool, 60, uint16(i)))
		}
	})
	eng.RunAll()
	q0, q1 := b.GetRxQueue(0).Received(), b.GetRxQueue(1).Received()
	if q0+q1 != 200 {
		t.Fatalf("steered %d+%d packets", q0, q1)
	}
	if q0 == 0 || q1 == 0 {
		t.Fatalf("RSS did not distribute: %d/%d", q0, q1)
	}
	// Same flow always lands on the same queue.
	eng.Schedule(eng.Now(), func() {
		for i := 0; i < 50; i++ {
			q.SendOne(makeUDP(pool, 60, 7777))
		}
	})
	eng.RunAll()
	n0, n1 := b.GetRxQueue(0).Received()-q0, b.GetRxQueue(1).Received()-q1
	if n0 != 0 && n1 != 0 {
		t.Fatalf("one flow split across queues: %d/%d", n0, n1)
	}
}

func TestRxMissedWhenRingFull(t *testing.T) {
	eng := sim.NewEngine(14)
	a := NewPort(eng, PortConfig{Profile: ChipX540, ID: 0})
	b := NewPort(eng, PortConfig{Profile: ChipX540, ID: 1, RxRingSize: 4})
	ConnectDuplex(eng, a, b, wire.PHY10GBaseT, 2)
	pool := mempool.New(mempool.Config{Count: 64})
	q := a.GetTxQueue(0)
	eng.Schedule(0, func() {
		for i := 0; i < 10; i++ {
			q.SendOne(makeUDP(pool, 60, 1))
		}
	})
	eng.RunAll()
	st := b.GetStats()
	if st.RxMissed != 6 {
		t.Fatalf("missed = %d, want 6 (ring of 4)", st.RxMissed)
	}
}

// Test82580TimestampAllRx: the GbE chip timestamps every received
// packet with 64 ns granularity and a constant sub-tick phase.
func Test82580TimestampAllRx(t *testing.T) {
	eng := sim.NewEngine(15)
	a := NewPort(eng, PortConfig{Profile: Chip82580, ID: 0})
	b := NewPort(eng, PortConfig{Profile: Chip82580, ID: 1})
	ConnectDuplex(eng, a, b, wire.PHY1GBaseT, 2)
	pool := mempool.New(mempool.Config{Count: 64})
	q := a.GetTxQueue(0)
	eng.Spawn("tx", func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			q.SendOne(makeUDP(pool, 60, 1))
			p.Sleep(10 * sim.Microsecond)
		}
	})
	eng.RunAll()
	var stamps []int64
	for {
		m, ok := b.GetRxQueue(0).RecvOne()
		if !ok {
			break
		}
		if !m.RxMeta.HasTimestamp {
			t.Fatal("packet without hardware timestamp")
		}
		stamps = append(stamps, m.RxMeta.Timestamp)
		m.Free()
	}
	if len(stamps) != 20 {
		t.Fatalf("got %d stamps", len(stamps))
	}
	tick := int64(64 * sim.Nanosecond)
	phase := ((stamps[0] % tick) + tick) % tick
	step := int64(8 * sim.Nanosecond)
	if phase%step != 0 {
		t.Fatalf("phase %d ps not a multiple of 8 ns", phase)
	}
	for _, s := range stamps[1:] {
		if p := ((s % tick) + tick) % tick; p != phase {
			t.Fatalf("phase changed mid-run: %d vs %d", p, phase)
		}
	}
}

// TestXL710PortCap: the 40 GbE chip cannot exceed ~30 Mpps per port
// regardless of offered load (§5.4).
func TestXL710PortCap(t *testing.T) {
	eng := sim.NewEngine(16)
	a := NewPort(eng, PortConfig{Profile: ChipXL710, ID: 0})
	b := NewPort(eng, PortConfig{Profile: ChipXL710, ID: 1, RxRingSize: 4096, RxPoolSize: 8192})
	ConnectDuplex(eng, a, b, wire.PHY10GBaseSR, 2)
	pool := mempool.New(mempool.Config{Count: 4096})
	q := a.GetTxQueue(0)
	count := 0
	b.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { count++; return true })
	const runFor = 2 * sim.Millisecond
	eng.SetStopTime(sim.Time(runFor))
	eng.Spawn("tx", func(p *sim.Proc) { pumpQueue(p, pool, q, 60, 1) })
	eng.RunAll()
	pps := float64(count) / sim.Duration(runFor).Seconds()
	if pps > 30.5e6 {
		t.Fatalf("XL710 emitted %.1f Mpps, cap is 30", pps/1e6)
	}
	if pps < 29e6 {
		t.Fatalf("XL710 emitted %.1f Mpps, should be near the 30 Mpps cap", pps/1e6)
	}
}

func TestQueueIndependence(t *testing.T) {
	// Two queues at different rates on one port: both achieve their
	// target, sharing the wire (§5.3's architectural assumption).
	eng, a, b := testPair(t, 17)
	pool := mempool.New(mempool.Config{Count: 4096})
	q0, q1 := a.GetTxQueue(0), a.GetTxQueue(1)
	counts := map[uint16]int{}
	b.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool {
		counts[proto.UDPPacket{B: f.Data}.UDP().SrcPort()]++
		return true
	})
	eng.Schedule(0, func() {
		q0.SetRatePPS(500e3)
		q1.SetRatePPS(250e3)
	})
	const runFor = 20 * sim.Millisecond
	eng.SetStopTime(sim.Time(runFor))
	for i, q := range []*TxQueue{q0, q1} {
		port := uint16(100 + i)
		q := q
		eng.Spawn("tx", func(p *sim.Proc) { pumpQueue(p, pool, q, 60, port) })
	}
	var c0, c1 int
	eng.Schedule(sim.Time(runFor), func() { c0, c1 = counts[100], counts[101] })
	eng.RunAll()
	r0 := float64(c0) / sim.Duration(runFor).Seconds()
	r1 := float64(c1) / sim.Duration(runFor).Seconds()
	if math.Abs(r0-500e3)/500e3 > 0.01 || math.Abs(r1-250e3)/250e3 > 0.01 {
		t.Fatalf("rates = %.0f / %.0f, want 500k / 250k", r0, r1)
	}
}

func TestProfileFIFOTime(t *testing.T) {
	// "the smallest buffer on the X540 chip is the 160 kB transmit
	// buffer, which can store 128 µs of data at 10 GbE" (§3.2).
	if ft := ChipX540.TxFIFOTime(); math.Abs(ft-131.072) > 0.01 {
		t.Fatalf("X540 FIFO time = %f µs", ft)
	}
}

func TestTooManyQueuesPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewPort(eng, PortConfig{Profile: ChipX540, TxQueues: 129})
}
