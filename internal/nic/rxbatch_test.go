package nic

import (
	"sync"
	"testing"

	"repro/internal/mempool"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// rxDrainAll drains every packet of a queue, returning the UDP source
// ports in delivery order and the per-packet arrival records.
func rxDrainAll(q *RxQueue) (ports []uint16, arrivals []int64) {
	out := make([]*mempool.Mbuf, 64)
	for {
		n := q.RecvBurst(out)
		if n == 0 {
			return ports, arrivals
		}
		for _, m := range out[:n] {
			ports = append(ports, proto.UDPPacket{B: m.Payload()}.UDP().SrcPort())
			arrivals = append(arrivals, m.RxMeta.Arrival)
		}
		q.Port().RecycleRx(out[:n])
	}
}

// TestRxTrainInvariant: the receive write-back train only groups how
// descriptors are published — the delivered packet sequence, the
// per-packet arrival records and the port counters are identical at
// RxTrain 1 (per-packet publication) and 32.
func TestRxTrainInvariant(t *testing.T) {
	run := func(train int) ([]uint16, []int64, Stats) {
		eng := sim.NewEngine(21)
		a := NewPort(eng, PortConfig{Profile: ChipX540, ID: 0})
		b := NewPort(eng, PortConfig{Profile: ChipX540, ID: 1, RxTrain: train})
		ConnectDuplex(eng, a, b, wire.PHY10GBaseT, 2)
		pool := mempool.New(mempool.Config{Count: 512})
		q := a.GetTxQueue(0)
		eng.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < 300; i++ {
				for {
					m := makeUDP(pool, 60, uint16(i))
					if m != nil && q.SendOne(m) {
						break
					}
					if m != nil {
						m.Free()
					}
					p.Sleep(sim.Microsecond)
				}
				if i%7 == 0 {
					p.Sleep(3 * sim.Microsecond)
				}
			}
		})
		eng.RunAll()
		ports, arrivals := rxDrainAll(b.GetRxQueue(0))
		return ports, arrivals, b.GetStats()
	}

	p1, a1, s1 := run(1)
	p32, a32, s32 := run(32)
	if len(p1) != 300 || len(p32) != 300 {
		t.Fatalf("delivered %d/%d packets, want 300", len(p1), len(p32))
	}
	for i := range p1 {
		if p1[i] != p32[i] {
			t.Fatalf("packet %d: train=1 delivered src %d, train=32 delivered %d", i, p1[i], p32[i])
		}
		if a1[i] != a32[i] {
			t.Fatalf("packet %d: arrival records differ: %d vs %d", i, a1[i], a32[i])
		}
	}
	if s1 != s32 {
		t.Fatalf("port stats differ: %+v vs %+v", s1, s32)
	}
}

// TestRxCountersConcurrentReads is the race pin for the receive
// counters: Received and Missed may be read from outside the engine's
// goroutine (a master goroutine monitoring a sharded run) while the
// datapath runs. Run with -race.
func TestRxCountersConcurrentReads(t *testing.T) {
	eng := sim.NewEngine(22)
	a := NewPort(eng, PortConfig{Profile: ChipX540, ID: 0})
	b := NewPort(eng, PortConfig{Profile: ChipX540, ID: 1, RxRingSize: 64})
	ConnectDuplex(eng, a, b, wire.PHY10GBaseT, 2)
	pool := mempool.New(mempool.Config{Count: 256})
	q := a.GetTxQueue(0)
	eng.Spawn("tx", func(p *sim.Proc) {
		pumpQueue(p, pool, q, 60, 7)
	})
	eng.Spawn("drain", func(p *sim.Proc) {
		out := make([]*mempool.Mbuf, 16)
		for p.Running() {
			if n := b.GetRxQueue(0).RecvBurst(out); n > 0 {
				b.RecycleRx(out[:n])
			}
			p.Sleep(40 * sim.Microsecond) // slow drain: forces ring-full drops
		}
	})
	eng.SetRunFor(2 * sim.Millisecond)

	done := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		// Monitoring reads racing the engine goroutine's datapath.
		var last uint64
		for {
			select {
			case <-done:
				return
			default:
			}
			rxq := b.GetRxQueue(0)
			if got := rxq.Received(); got < last {
				t.Error("Received went backwards")
				return
			} else {
				last = got
			}
			_ = rxq.Missed()
		}
	}()
	eng.RunAll()
	close(done)
	wg.Wait()

	rxq := b.GetRxQueue(0)
	if rxq.Received() == 0 {
		t.Fatal("no packets received")
	}
	if rxq.Missed() == 0 {
		t.Fatal("slow drain produced no ring-full drops; the test lost its point")
	}
}
