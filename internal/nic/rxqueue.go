package nic

import (
	"sync/atomic"

	"repro/internal/mempool"
	"repro/internal/ring"
)

// DefaultRxTrain is the default receive write-back train: how many
// validated frames the port stages before publishing them to a queue's
// descriptor ring under one producer-index store. It mirrors the MAC
// scheduler's DefaultTxTrain, so one RX train matches one TX train.
const DefaultRxTrain = 32

// RxQueue is one hardware receive queue. The port's receive path
// steers validated frames into it (RSS hash) in write-back trains; the
// application drains it in bursts, DPDK style.
//
// The counters are atomic so monitoring code may read them from
// outside the owning engine's goroutine (a master goroutine polling a
// sharded run's sinks) without racing the datapath.
type RxQueue struct {
	port  *Port
	id    int
	ring  *ring.SPSC[*mempool.Mbuf]
	burst *ring.Burst[*mempool.Mbuf]

	received atomic.Uint64
	missed   atomic.Uint64
}

func newRxQueue(p *Port, id, ringSize, train int) *RxQueue {
	q := &RxQueue{port: p, id: id, ring: ring.NewSPSC[*mempool.Mbuf](ringSize)}
	if train <= 0 {
		train = DefaultRxTrain
	}
	q.burst = q.ring.NewBurst(train, q.dropMissed)
	return q
}

// dropMissed recycles a frame the descriptor ring had no room for —
// the queue-full drop of the receive path (RxMissed).
func (q *RxQueue) dropMissed(m *mempool.Mbuf) {
	q.missed.Add(1)
	q.port.stage.RxMissed++
	q.port.markStatsDirty()
	q.port.rxCache.Put(m)
}

// deliver accepts one steered frame. A frame is admitted only when a
// free descriptor exists for it — staged frames already own theirs, so
// the tail drop happens here, at delivery, exactly as on hardware —
// and a full stage publishes the train.
func (q *RxQueue) deliver(m *mempool.Mbuf) {
	if q.burst.Pending() >= q.ring.Free() {
		q.dropMissed(m)
		return
	}
	q.received.Add(1)
	q.burst.Push(m)
}

// flush publishes any staged frames — the consumer-side write-back
// kick: everything delivered up to the current instant becomes visible
// before a receive call inspects the ring. Admission reserved a
// descriptor per staged frame, so the publication never overflows.
func (q *RxQueue) flush() {
	if q.burst.Pending() > 0 {
		q.burst.Flush()
	}
}

// ID returns the queue index.
func (q *RxQueue) ID() int { return q.id }

// Port returns the owning port.
func (q *RxQueue) Port() *Port { return q.port }

// Received returns the number of packets steered into this queue (each
// owning a descriptor, staged or published). Safe to call from any
// goroutine.
func (q *RxQueue) Received() uint64 { return q.received.Load() }

// Missed returns the number of packets dropped on this queue's
// receive path (pool dry or ring full). Safe to call from any
// goroutine.
func (q *RxQueue) Missed() uint64 { return q.missed.Load() }

// Pending returns the number of packets waiting in the ring. Like the
// Recv methods it is consumer-side: it publishes any staged frames
// first, so it must only be called from the owning engine's
// goroutine — cross-goroutine monitors read Received/Missed instead.
func (q *RxQueue) Pending() int {
	q.flush()
	return q.ring.Len()
}

// RecvBurst fills out with received buffers and returns the count
// (possibly zero — the non-blocking burst receive MoonGen's
// counterSlave loops on). The caller owns the returned buffers and
// must recycle them (Port.RxBufArray gives a batch wrapper whose
// FreeAll goes through the port's receive cache).
func (q *RxQueue) RecvBurst(out []*mempool.Mbuf) int {
	q.flush()
	return q.ring.DequeueBurst(out)
}

// Recv is RecvBurst under its legacy name.
func (q *RxQueue) Recv(out []*mempool.Mbuf) int { return q.RecvBurst(out) }

// RecvOne receives a single buffer if available.
func (q *RxQueue) RecvOne() (*mempool.Mbuf, bool) {
	q.flush()
	return q.ring.DequeueOne()
}
