package nic

import (
	"repro/internal/mempool"
	"repro/internal/ring"
)

// RxQueue is one hardware receive queue. The port's receive path
// steers validated frames into it (RSS hash); the application drains
// it in bursts, DPDK style.
type RxQueue struct {
	port *Port
	id   int
	ring *ring.SPSC[*mempool.Mbuf]

	received uint64
}

func newRxQueue(p *Port, id, ringSize int) *RxQueue {
	return &RxQueue{port: p, id: id, ring: ring.NewSPSC[*mempool.Mbuf](ringSize)}
}

// ID returns the queue index.
func (q *RxQueue) ID() int { return q.id }

// Port returns the owning port.
func (q *RxQueue) Port() *Port { return q.port }

// Received returns the number of packets steered into this queue.
func (q *RxQueue) Received() uint64 { return q.received }

// Pending returns the number of packets waiting in the ring.
func (q *RxQueue) Pending() int { return q.ring.Len() }

// Recv fills out with received buffers and returns the count (possibly
// zero — the non-blocking burst receive MoonGen's counterSlave loops
// on). The caller owns the returned buffers and must Free them.
func (q *RxQueue) Recv(out []*mempool.Mbuf) int {
	return q.ring.DequeueBurst(out)
}

// RecvOne receives a single buffer if available.
func (q *RxQueue) RecvOne() (*mempool.Mbuf, bool) {
	return q.ring.DequeueOne()
}
