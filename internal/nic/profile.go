// Package nic models the commodity Intel NICs the paper builds on:
// ports with multiple hardware transmit/receive queues, descriptor
// rings, per-queue hardware rate limiters, PTP timestamping latches,
// checksum offload engines, CRC validation with early drop, and the
// documented per-chip limits (FIFO sizes, timestamp granularities, the
// XL710's bandwidth caps, the >9 Mpps rate-control anomaly, the 33-byte
// minimum wire frame and the 15.6 Mpps runt-frame limit).
package nic

import (
	"repro/internal/wire"
)

// Profile is a chip model: every number here is from the paper or the
// datasheets it cites ([11] 82580, [12] 82599, [13] X540, [15] XL710).
type Profile struct {
	Name  string
	Speed wire.Speed

	// MaxQueues is the number of RX and TX queues per port (128 on
	// 82599/X540, §3.3).
	MaxQueues int

	// TxFIFOBytes is the on-chip transmit FIFO: 160 kB on the X540,
	// "which can store 128 µs of data at 10 GbE" and conceals JIT/GC
	// pause times (§3.2).
	TxFIFOBytes int

	// RxFIFOBytes is the on-chip receive FIFO.
	RxFIFOBytes int

	// TimestampTickNS is the PTP timestamp register granularity: the
	// 82599's timer increments every two 6.4 ns cycles (12.8 ns), the
	// X540's every cycle (6.4 ns), the 82580's every 64 ns (§6.1).
	TimestampTickNS float64

	// TimestampPhaseStepNS: on the 82580 timestamps are of the form
	// n·64 ns + k·8 ns with k constant per reset; 8 here, 0 elsewhere.
	TimestampPhaseStepNS float64

	// HWRateControl reports per-queue hardware CBR shaping support.
	HWRateControl bool

	// RateAnomalyPPS is the per-queue packet rate above which the
	// hardware rate limiter shows "unpredictable non-linear behavior"
	// (§7.5, ~9 Mpps on X520/X540). Zero disables the anomaly.
	RateAnomalyPPS float64

	// TimestampAllRx: the 82580 can timestamp every received packet
	// at line rate by prepending the timestamp to the packet buffer
	// (§6), which is what makes 1 GbE inter-arrival measurement work.
	TimestampAllRx bool

	// MinWireFrame is the smallest frame the MAC will emit, measured
	// in wire bytes including preamble, SFD and IFG: 33 bytes (§8.1).
	MinWireFrame int

	// RuntMaxPPS is the maximum packet rate when emitting sub-minimum
	// frames: 15.6 Mpps on X540 and 82599, "only 5% above the line
	// rate for packets with the regular minimal size" (§8.1).
	RuntMaxPPS float64

	// PTPMinUDPSize: UDP PTP packets smaller than 80 B are not
	// timestamped; layer-2 PTP packets have no limit (§6.4).
	PTPMinUDPSize int

	// XL710 first-generation 40 GbE restrictions (§5.4): a per-port
	// packet-rate ceiling that prevents line rate at ≤128 B, and
	// aggregate dual-port caps (42 Mpps / 50 Gbit/s, MAC-layer bound).
	PortMaxPPS  float64
	DualMaxPPS  float64
	DualMaxBps  float64
	PCIeGen3x8  bool // 63 Gbit/s PCIe ceiling shared by both ports
	DriftPPMMax float64
}

// Chip profiles used across the paper's experiments.
var (
	// Chip82599 is the Intel 82599 10 GbE controller (fiber testbed).
	Chip82599 = Profile{
		Name:            "82599",
		Speed:           wire.Speed10G,
		MaxQueues:       128,
		TxFIFOBytes:     160 << 10,
		RxFIFOBytes:     512 << 10,
		TimestampTickNS: 12.8, // timer increments every 2 cycles
		HWRateControl:   true,
		RateAnomalyPPS:  9e6,
		MinWireFrame:    33,
		RuntMaxPPS:      15.6e6,
		PTPMinUDPSize:   80,
		DriftPPMMax:     35,
	}

	// ChipX540 is the Intel X540 10GBASE-T controller, the paper's
	// workhorse NIC.
	ChipX540 = Profile{
		Name:            "X540",
		Speed:           wire.Speed10G,
		MaxQueues:       128,
		TxFIFOBytes:     160 << 10,
		RxFIFOBytes:     512 << 10,
		TimestampTickNS: 6.4,
		HWRateControl:   true,
		RateAnomalyPPS:  9e6,
		MinWireFrame:    33,
		RuntMaxPPS:      15.6e6,
		PTPMinUDPSize:   80,
		DriftPPMMax:     35,
	}

	// Chip82580 is the Intel 82580 GbE controller used for
	// inter-arrival measurements: it timestamps all received packets
	// in line rate.
	Chip82580 = Profile{
		Name:                 "82580",
		Speed:                wire.Speed1G,
		MaxQueues:            8,
		TxFIFOBytes:          40 << 10,
		RxFIFOBytes:          64 << 10,
		TimestampTickNS:      64,
		TimestampPhaseStepNS: 8,
		HWRateControl:        false,
		TimestampAllRx:       true,
		MinWireFrame:         33,
		RuntMaxPPS:           1.6e6,
		PTPMinUDPSize:        80,
		DriftPPMMax:          35,
	}

	// ChipXL710 is the first-generation dual-port 40 GbE controller
	// with its §5.4 hardware bottlenecks.
	ChipXL710 = Profile{
		Name:            "XL710",
		Speed:           wire.Speed40G,
		MaxQueues:       384,
		TxFIFOBytes:     512 << 10,
		RxFIFOBytes:     1024 << 10,
		TimestampTickNS: 6.4,
		HWRateControl:   false, // MoonGen HW features not supported here
		MinWireFrame:    33,
		RuntMaxPPS:      42e6,
		PTPMinUDPSize:   80,
		PortMaxPPS:      30e6,
		DualMaxPPS:      42e6,
		DualMaxBps:      50e9,
		PCIeGen3x8:      true,
		DriftPPMMax:     35,
	}
)

// TxFIFOTime returns how long the TX FIFO can feed the wire: 128 µs for
// the X540's 160 kB at 10 GbE (§3.2), the budget that hides LuaJIT GC
// pauses.
func (p Profile) TxFIFOTime() float64 {
	return float64(p.TxFIFOBytes) * 8 / float64(p.Speed) * 1e6 // µs
}
