package nic

import (
	"testing"

	"repro/internal/mempool"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TestLinkFlapTrainInvariance: a flap window under gapped (sub-line-
// rate) load must produce the identical delivered/dropped partition
// whether the MAC commits one frame per event or trains of 32. With a
// slot spacing wider than the frame time the TX ring never holds more
// than one frame, so the train fast path degenerates to per-packet
// commits and the down-wire drop decision happens at each frame's own
// emission instant — the property the linkflap scenario's batch
// invariance rests on.
func TestLinkFlapTrainInvariance(t *testing.T) {
	const (
		slot   = 500 * sim.Nanosecond // 2 Mpps
		frames = 400
	)
	run := func(txTrain int) (arrivals []sim.Time, tx, delivered, dropped uint64) {
		eng := sim.NewEngine(5)
		a := NewPort(eng, PortConfig{Profile: ChipX540, ID: 0, TxTrain: txTrain})
		b := NewPort(eng, PortConfig{Profile: ChipX540, ID: 1, TxTrain: txTrain})
		ConnectDuplex(eng, a, b, wire.PHY10GBaseT, 2)
		pool := mempool.New(mempool.Config{Count: 64})
		b.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool {
			arrivals = append(arrivals, at)
			return true
		})
		link := a.Link()
		// One 60 µs down window starting mid-run, straddling ~120 slots.
		eng.Schedule(sim.Time(50*sim.Microsecond), link.SetDown)
		eng.Schedule(sim.Time(110*sim.Microsecond), link.SetUp)
		q := a.GetTxQueue(0)
		eng.Spawn("tx", func(p *sim.Proc) {
			for i := 0; i < frames; i++ {
				p.SleepUntil(sim.Time(sim.Duration(i) * slot))
				m := pool.Alloc(60)
				pk := proto.UDPPacket{B: m.Payload()}
				pk.Fill(proto.UDPPacketFill{PktLength: 60, UDPSrc: 7, UDPDst: 42,
					IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.0.0.2")})
				if !q.SendOne(m) {
					t.Error("TX ring refused a frame on the gapped grid")
					return
				}
			}
		})
		eng.RunAll()
		return arrivals, link.TxFrames, uint64(len(arrivals)), link.DroppedFrames
	}

	arr1, tx1, del1, drop1 := run(1)
	arr32, tx32, del32, drop32 := run(32)

	if tx1 != frames || tx32 != frames {
		t.Fatalf("wire tx counts: %d / %d, want %d", tx1, tx32, frames)
	}
	if drop1 == 0 {
		t.Fatal("flap window dropped nothing")
	}
	if del1+drop1 != tx1 || del32+drop32 != tx32 {
		t.Fatalf("counters do not reconcile: %d+%d vs tx %d, %d+%d vs tx %d",
			del1, drop1, tx1, del32, drop32, tx32)
	}
	if del1 != del32 || drop1 != drop32 {
		t.Fatalf("train size changed the partition: delivered %d/%d, dropped %d/%d",
			del1, del32, drop1, drop32)
	}
	for i := range arr1 {
		if arr1[i] != arr32[i] {
			t.Fatalf("arrival %d differs across train sizes: %v vs %v", i, arr1[i], arr32[i])
		}
	}
}
