package nic

import (
	"fmt"
	"sync/atomic"

	"repro/internal/mempool"
	"repro/internal/proto"
	"repro/internal/ptpclk"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/wire"
)

// Stats is a snapshot of the port's hardware statistics registers.
type Stats struct {
	TxPackets uint64
	TxBytes   uint64 // frame bytes without FCS, as DPDK reports
	RxPackets uint64
	RxBytes   uint64
	// RxCRCErrors counts frames dropped for a bad FCS or illegal
	// length — "the NIC only increments an error counter" (§8.1).
	RxCRCErrors uint64
	// RxMissed counts frames dropped because the receive queue was
	// full (the DuT's NIC-level drop counter under overload).
	RxMissed uint64
}

// Port is one network interface of a NIC: up to Profile.MaxQueues
// transmit and receive queues, a PTP clock, timestamp latch registers
// and statistics registers. A Port is also a wire.Endpoint: connect two
// ports with Connect.
type Port struct {
	eng     *sim.Engine
	profile Profile
	id      int
	mac     proto.MAC

	Clock *ptpclk.Clock

	txQueues []*TxQueue
	rxQueues []*RxQueue
	link     *wire.Link // outgoing side

	// rxPool backs the receive buffers; rxCache is the port's
	// allocation front over it, so the steady-state receive path takes
	// the pool lock once per half-cache refill instead of per packet —
	// the RX mirror of the per-core transmit caches. The pool is
	// created on first use: TX-only ports (every sink of the scaling
	// beds consumes frames in a deliver hook) never pay for zeroing a
	// receive slab they will not touch.
	rxPool     *mempool.Pool
	rxCache    *mempool.Cache
	rxPoolSize int

	// Statistics registers. The hot paths stage increments in the plain
	// stage struct (engine-owned, touched per packet) and publish them
	// to the atomic registers once per train: the MAC scheduler flushes
	// at the end of its pump event, and the receive path arms one
	// same-instant publish event (prebound publishFn) the first time an
	// instant dirties the staging. Readers go through CounterSnapshot.
	ctrTxPackets   atomic.Uint64
	ctrTxBytes     atomic.Uint64
	ctrRxPackets   atomic.Uint64
	ctrRxBytes     atomic.Uint64
	ctrRxCRCErrors atomic.Uint64
	ctrRxMissed    atomic.Uint64
	stage          Stats // unpublished deltas, flushed by publishStats
	pubArmed       bool
	publishFn      func()

	// PTP timestamping configuration and latch registers. The
	// datasheet semantics are preserved: one latch per direction, and
	// it "must be read back before a new packet can be timestamped"
	// (§6) — while the latch is occupied further timestamps are lost.
	tsEnabled bool
	tsUDPPort uint16

	txTSValid bool
	txTS      sim.Time
	txTSSeq   uint16

	rxTSValid bool
	rxTS      sim.Time
	rxTSSeq   uint16

	// MAC scheduler state (see txqueue.go). pumpScheduled/pumpAt
	// track the earliest pending evaluation; later duplicates fire
	// harmlessly. pumpFn is the prebound event callback so arming an
	// evaluation allocates nothing.
	pumpScheduled bool
	pumpAt        sim.Time
	pumpFn        func()
	txPaused      bool // MAC scheduler gated (PFC-style backpressure)
	rrNext        int
	fifoBytes     int // bytes fetched into the on-chip TX FIFO
	lastTxStart   sim.Time
	hasTxStart    bool
	txTrain       int          // max frames the MAC commits per scheduler event
	minFrameTime  sim.Duration // wire time of a minimum frame (train horizon unit)
	shaped        int          // queues with an active rate limiter (see kickPump)
	runtMinGap    sim.Duration // precomputed 1/RuntMaxPPS (0 = no ceiling)
	portMinGap    sim.Duration // precomputed 1/PortMaxPPS (0 = no ceiling)

	// completions is the transmit-completion FIFO: buffers owned by
	// the NIC until their frame leaves the FIFO, recycled in batches
	// by the prebound completeFn (one event per train, no closures).
	// freeBatch is the reusable scratch that returns a completed train
	// to its pool under a single lock acquisition.
	completions     ring.FIFO[txCompletion]
	lastCompletion  sim.Time
	completeFn      func()
	completionArmed bool
	completionAt    sim.Time
	freeBatch       []*mempool.Mbuf

	// txTrace, when set, observes every departure commit with its
	// exact wire start instant (tests pin the batched scheduler's
	// timing grid through this).
	txTrace func(q *TxQueue, m *mempool.Mbuf, wireStart sim.Time)

	// onDeliver, when set, intercepts valid received frames before
	// queue steering (used by the DuT model for custom processing).
	onDeliver func(f *wire.Frame, rxTime sim.Time) bool
}

// txCompletion is one entry of the transmit-completion FIFO.
type txCompletion struct {
	m  *mempool.Mbuf
	at sim.Time
}

// PortConfig configures a port at creation.
type PortConfig struct {
	Profile  Profile
	ID       int
	MAC      proto.MAC
	RxQueues int
	TxQueues int
	// RxPoolSize is the number of receive buffers (default 4096).
	RxPoolSize int
	// TxRingSize is the per-queue descriptor ring size (default 1024,
	// DPDK's usual default).
	TxRingSize int
	// RxRingSize is the per-queue receive ring size (default 512).
	RxRingSize int
	// TxTrain caps how many frames the MAC scheduler commits per
	// event on the batched fast path (default DefaultTxTrain; 1
	// reproduces the per-packet scheduler event for event).
	TxTrain int
	// RxTrain is the receive write-back train: how many validated
	// frames are staged per queue before one burst publication to the
	// descriptor ring (default DefaultRxTrain; 1 reproduces per-packet
	// publication).
	RxTrain int
	// ClockDriftPPM desynchronizes this port's PTP clock rate.
	ClockDriftPPM float64
	// ClockOffset desynchronizes this port's PTP clock phase.
	ClockOffset sim.Duration
}

// NewPort creates a port. It mirrors MoonGen's device.config(port,
// rxQueues, txQueues).
func NewPort(eng *sim.Engine, cfg PortConfig) *Port {
	if cfg.RxQueues <= 0 {
		cfg.RxQueues = 1
	}
	if cfg.TxQueues <= 0 {
		cfg.TxQueues = 1
	}
	if cfg.RxQueues > cfg.Profile.MaxQueues || cfg.TxQueues > cfg.Profile.MaxQueues {
		panic(fmt.Sprintf("nic: %s supports %d queues, requested %d/%d",
			cfg.Profile.Name, cfg.Profile.MaxQueues, cfg.RxQueues, cfg.TxQueues))
	}
	if cfg.RxPoolSize <= 0 {
		cfg.RxPoolSize = 4096
	}
	if cfg.TxRingSize <= 0 {
		cfg.TxRingSize = 1024
	}
	if cfg.RxRingSize <= 0 {
		cfg.RxRingSize = 512
	}
	if cfg.MAC == (proto.MAC{}) {
		cfg.MAC = proto.MAC{0x02, 0x00, 0x00, 0x00, 0x00, byte(cfg.ID)}
	}
	phase := 0.0
	if cfg.Profile.TimestampPhaseStepNS > 0 {
		// "k is a constant that varies between resets" (§6.1).
		steps := int(cfg.Profile.TimestampTickNS / cfg.Profile.TimestampPhaseStepNS)
		phase = float64(eng.Rand().Intn(steps)) * cfg.Profile.TimestampPhaseStepNS
	}
	p := &Port{
		eng:     eng,
		profile: cfg.Profile,
		id:      cfg.ID,
		mac:     cfg.MAC,
		Clock: ptpclk.New(eng, ptpclk.Config{
			TickNS:          cfg.Profile.TimestampTickNS,
			PhaseNS:         phase,
			DriftPPM:        cfg.ClockDriftPPM,
			ReadOutlierProb: 0.05,
			InitialOffset:   cfg.ClockOffset,
		}),
		rxPoolSize:   cfg.RxPoolSize,
		tsUDPPort:    proto.PTPUDPPort,
		txTrain:      cfg.TxTrain,
		minFrameTime: wire.FrameTime(cfg.Profile.Speed, proto.MinFrameSizeFCS),
	}
	if p.txTrain <= 0 {
		p.txTrain = DefaultTxTrain
	}
	if cfg.Profile.RuntMaxPPS > 0 {
		p.runtMinGap = sim.FromSeconds(1 / cfg.Profile.RuntMaxPPS)
	}
	if cfg.Profile.PortMaxPPS > 0 {
		p.portMinGap = sim.FromSeconds(1 / cfg.Profile.PortMaxPPS)
	}
	p.pumpFn = p.pumpEvent
	p.completeFn = p.completeTx
	p.publishFn = p.publishStats
	for i := 0; i < cfg.TxQueues; i++ {
		p.txQueues = append(p.txQueues, newTxQueue(p, i, cfg.TxRingSize))
	}
	for i := 0; i < cfg.RxQueues; i++ {
		p.rxQueues = append(p.rxQueues, newRxQueue(p, i, cfg.RxRingSize, cfg.RxTrain))
	}
	return p
}

// Connect attaches an outgoing link toward peer with the given PHY and
// cable length; call it on both ports (with links in both directions)
// for a full-duplex connection. ConnectDuplex does both.
func (p *Port) Connect(l *wire.Link) { p.link = l }

// Link returns the port's outgoing link (nil when unconnected).
func (p *Port) Link() *wire.Link { return p.link }

// SinkDeliverySlack returns the canonical RX delivery-train deferral
// for links into counting sinks: one TX train's worth of minimum-sized
// frames, so steady-state deliveries coalesce into trains of the same
// depth the MAC scheduler commits. See wire.Link.SetDeliverySlack for
// the opt-in contract.
func SinkDeliverySlack(speed wire.Speed) sim.Duration {
	return sim.Duration(DefaultTxTrain) * wire.FrameTime(speed, proto.MinFrameSizeFCS)
}

// ConnectDuplex wires a<->b with identical PHY and cable length.
func ConnectDuplex(eng *sim.Engine, a, b *Port, phy wire.PHYProfile, lengthM float64) {
	if a.profile.Speed != b.profile.Speed {
		panic("nic: speed mismatch")
	}
	a.Connect(wire.NewLink(eng, a.profile.Speed, phy, lengthM, b))
	b.Connect(wire.NewLink(eng, b.profile.Speed, phy, lengthM, a))
}

// Engine returns the simulation engine.
func (p *Port) Engine() *sim.Engine { return p.eng }

// Profile returns the chip profile.
func (p *Port) Profile() Profile { return p.profile }

// ID returns the port index.
func (p *Port) ID() int { return p.id }

// MAC returns the port's hardware address (ethSrc = queue in MoonGen
// scripts resolves to this).
func (p *Port) MAC() proto.MAC { return p.mac }

// Speed returns the link speed.
func (p *Port) Speed() wire.Speed { return p.profile.Speed }

// GetTxQueue returns transmit queue i.
func (p *Port) GetTxQueue(i int) *TxQueue { return p.txQueues[i] }

// GetRxQueue returns receive queue i.
func (p *Port) GetRxQueue(i int) *RxQueue { return p.rxQueues[i] }

// NumTxQueues returns the number of configured TX queues.
func (p *Port) NumTxQueues() int { return len(p.txQueues) }

// NumRxQueues returns the number of configured RX queues.
func (p *Port) NumRxQueues() int { return len(p.rxQueues) }

// ensureRxPool creates the receive pool and its cache on first use.
// Lazy creation is invisible to the simulation (pool construction
// draws no randomness and schedules no events); it only avoids
// allocating and zeroing megabytes of receive slab on ports that never
// receive through the driver path.
func (p *Port) ensureRxPool() {
	if p.rxPool == nil {
		p.rxPool = mempool.New(mempool.Config{Count: p.rxPoolSize})
		p.rxCache = p.rxPool.NewCache(0)
	}
}

// RxPool returns the port's receive mempool (exposed for tests).
func (p *Port) RxPool() *mempool.Pool {
	p.ensureRxPool()
	return p.rxPool
}

// RxPoolPeek returns the receive mempool without forcing its lazy
// creation — nil until the port first receives through the driver
// path. Monitoring code samples through this so observing a TX-only
// port never materializes a receive slab it will not use.
func (p *Port) RxPoolPeek() *mempool.Pool { return p.rxPool }

// RxBufArray returns a burst wrapper for draining this port's receive
// queues: its FreeAll recycles buffers through the port's receive
// cache, so a drain loop returns a whole burst under at most one pool
// lock — the counterpart of the transmit loops' cache-bound arrays.
// Size <= 0 selects the default batch size.
func (p *Port) RxBufArray(size int) *mempool.BufArray {
	p.ensureRxPool()
	return p.rxCache.BufArray(size)
}

// RecycleRx returns a batch of receive buffers through the port's
// receive cache (the non-BufArray drain idiom).
func (p *Port) RecycleRx(bufs []*mempool.Mbuf) {
	p.ensureRxPool()
	for i, m := range bufs {
		if m != nil {
			p.rxCache.Put(m)
			bufs[i] = nil
		}
	}
}

// CounterSnapshot returns one snapshot of the statistics registers.
// Read from simulation context (an event or process on the port's
// engine) the snapshot is exact: staged deltas are published at event
// granularity, so any event that fires after a train's publish sees the
// whole train. Cross-goroutine readers get monotonic per-register
// atomic loads — safe, but a register pair read mid-publish may span a
// train boundary.
func (p *Port) CounterSnapshot() Stats {
	return Stats{
		TxPackets:   p.ctrTxPackets.Load(),
		TxBytes:     p.ctrTxBytes.Load(),
		RxPackets:   p.ctrRxPackets.Load(),
		RxBytes:     p.ctrRxBytes.Load(),
		RxCRCErrors: p.ctrRxCRCErrors.Load(),
		RxMissed:    p.ctrRxMissed.Load(),
	}
}

// GetStats is CounterSnapshot under its DPDK-flavored legacy name.
func (p *Port) GetStats() Stats { return p.CounterSnapshot() }

// publishStats flushes the staged counter deltas into the atomic
// registers. It runs at the end of every transmit pump and as the
// receive path's same-instant publish event — one atomic add per
// register per train instead of per packet, which is what keeps the
// per-packet budget of the sim/wall ≥ 1 contract intact.
func (p *Port) publishStats() {
	p.pubArmed = false
	s := &p.stage
	if s.TxPackets != 0 {
		p.ctrTxPackets.Add(s.TxPackets)
		p.ctrTxBytes.Add(s.TxBytes)
		s.TxPackets, s.TxBytes = 0, 0
	}
	if s.RxPackets != 0 {
		p.ctrRxPackets.Add(s.RxPackets)
		p.ctrRxBytes.Add(s.RxBytes)
		s.RxPackets, s.RxBytes = 0, 0
	}
	if s.RxCRCErrors != 0 {
		p.ctrRxCRCErrors.Add(s.RxCRCErrors)
		s.RxCRCErrors = 0
	}
	if s.RxMissed != 0 {
		p.ctrRxMissed.Add(s.RxMissed)
		s.RxMissed = 0
	}
}

// FlushStats implements wire.StatsFlusher: the link calls it once at
// the end of every delivery event, so receive-path staging publishes
// at train granularity without any extra scheduled event.
func (p *Port) FlushStats() { p.publishStats() }

// markStatsDirty arms a same-instant publish event for staging dirtied
// outside the two train flush points (pump epilogue, link delivery
// end) — e.g. a consumer-side write-back overflow. The event is armed
// once per dirty instant; re-entrant same-instant staging after the
// publish fires re-arms it.
func (p *Port) markStatsDirty() {
	if !p.pubArmed {
		p.pubArmed = true
		p.eng.Schedule(p.eng.Now(), p.publishFn)
	}
}

// EnableTimestamps turns on the PTP filter (EtherType 0x88F7 and UDP
// port udpPort; 0 keeps the default 319).
func (p *Port) EnableTimestamps(udpPort uint16) {
	p.tsEnabled = true
	if udpPort != 0 {
		p.tsUDPPort = udpPort
	}
}

// ReadTxTimestamp reads and clears the TX timestamp latch.
func (p *Port) ReadTxTimestamp() (ts sim.Time, seq uint16, ok bool) {
	if !p.txTSValid {
		return 0, 0, false
	}
	p.txTSValid = false
	return p.txTS, p.txTSSeq, true
}

// ReadRxTimestamp reads and clears the RX timestamp latch.
func (p *Port) ReadRxTimestamp() (ts sim.Time, seq uint16, ok bool) {
	if !p.rxTSValid {
		return 0, 0, false
	}
	p.rxTSValid = false
	return p.rxTS, p.rxTSSeq, true
}

// SetDeliverHook installs an interceptor for valid received frames;
// returning true consumes the frame (skipping queue steering). The DuT
// model uses this to process packets without the full driver stack.
// The frame is recycled by the link after the hook returns unless the
// hook calls Frame.Retain.
func (p *Port) SetDeliverHook(fn func(f *wire.Frame, rxTime sim.Time) bool) {
	p.onDeliver = fn
}

// SetTxTrace installs an observer called at every departure commit
// with the frame's exact wire start instant — the probe tests use it
// to pin the batched scheduler's timing grid against the per-packet
// reference.
func (p *Port) SetTxTrace(fn func(q *TxQueue, m *mempool.Mbuf, wireStart sim.Time)) {
	p.txTrace = fn
}

// classifyPTP inspects a frame for the hardware timestamp filter:
// layer-2 PTP EtherType or UDP PTP on the configured port, with an
// event message type and version 2, subject to the 80-byte UDP minimum
// (§6.4).
func (p *Port) classifyPTP(data []byte) (seq uint16, match bool) {
	if len(data) < proto.EthHdrLen {
		return 0, false
	}
	eth := proto.EthHdr(data)
	switch eth.EtherType() {
	case proto.EtherTypePTP:
		ptp := proto.PTPHdr(data[proto.EthHdrLen:])
		if len(data) < proto.EthHdrLen+proto.PTPHdrLen {
			return 0, false
		}
		if ptp.Version() != proto.PTPVersion2 || !proto.IsTimestampedType(ptp.MessageType()) {
			return 0, false
		}
		return ptp.SequenceID(), true
	case proto.EtherTypeIPv4:
		if len(data) < proto.EthHdrLen+proto.IPv4HdrLen+proto.UDPHdrLen+proto.PTPHdrLen {
			return 0, false
		}
		ip := proto.IPv4Hdr(data[proto.EthHdrLen:])
		if ip.Protocol() != proto.IPProtoUDP {
			return 0, false
		}
		udp := proto.UDPHdr(data[proto.EthHdrLen+ip.HdrLen():])
		if udp.DstPort() != p.tsUDPPort {
			return 0, false
		}
		// "The investigated NICs refuse to timestamp UDP PTP packets
		// that are smaller than the expected packet size of 80 bytes."
		if len(data)+proto.FCSLen < p.profile.PTPMinUDPSize {
			return 0, false
		}
		ptp := proto.PTPHdr(udp.Payload())
		if ptp.Version() != proto.PTPVersion2 || !proto.IsTimestampedType(ptp.MessageType()) {
			return 0, false
		}
		return ptp.SequenceID(), true
	}
	return 0, false
}

// rssQueue steers a frame to a receive queue by hashing the IP/port
// 5-tuple (Receive Side Scaling, §3.3).
func (p *Port) rssQueue(data []byte) int {
	n := len(p.rxQueues)
	if n == 1 {
		return 0
	}
	var h uint32 = 2166136261
	mix := func(b byte) { h = (h ^ uint32(b)) * 16777619 }
	if len(data) >= proto.EthHdrLen+proto.IPv4HdrLen &&
		proto.EthHdr(data).EtherType() == proto.EtherTypeIPv4 {
		ip := data[proto.EthHdrLen:]
		for _, b := range ip[12:20] { // src+dst IP
			mix(b)
		}
		ihl := int(ip[0]&0x0f) * 4
		if len(data) >= proto.EthHdrLen+ihl+4 {
			for _, b := range ip[ihl : ihl+4] { // ports
				mix(b)
			}
		}
	} else {
		for i := 0; i < proto.EthHdrLen && i < len(data); i++ {
			mix(data[i])
		}
	}
	return int(h % uint32(n))
}

// DeliverFrame implements wire.Endpoint: the receive path of the port.
func (p *Port) DeliverFrame(f *wire.Frame, rxTime sim.Time) {
	// 1. PHY/MAC validation: frames with a bad FCS or an illegal
	// length are dropped before queue assignment; only an error
	// counter moves (§8.1) — the packet processing logic upstream
	// never sees them.
	if !f.CRCOK || f.WireSize < proto.MinFrameSizeFCS {
		p.stage.RxCRCErrors++
		return
	}
	p.stage.RxPackets++
	p.stage.RxBytes += uint64(len(f.Data))

	// 2. PTP filter: latch the receive timestamp if the register is
	// free ("this register must be read back before a new packet can
	// be timestamped", §6).
	if p.tsEnabled {
		if seq, ok := p.classifyPTP(f.Data); ok && !p.rxTSValid {
			p.rxTSValid = true
			p.rxTS = p.Clock.TimestampAt(rxTime)
			p.rxTSSeq = seq
		}
	}

	if p.onDeliver != nil && p.onDeliver(f, rxTime) {
		return
	}

	// 3. Steer into a receive queue, drop (missed) when pool or ring is
	// full. Buffers come from the port's receive cache (one pool lock
	// per refill) and are published to the ring in write-back trains
	// (one producer-index store per RxTrain frames) — the batched RX
	// datapath mirroring the MAC scheduler's transmit trains.
	q := p.rxQueues[p.rssQueue(f.Data)]
	p.ensureRxPool()
	m := p.rxCache.Alloc(len(f.Data))
	if m == nil {
		q.missed.Add(1)
		p.stage.RxMissed++
		return
	}
	copy(m.Data, f.Data)
	m.RxMeta.Queue = q.id
	// Arrival is the PHY-level receive instant every descriptor carries
	// out of band — what a busy-polling driver derives its software
	// receive timestamps from. The flow layer computes inter-arrival
	// and stamped latencies from it, independent of the poll cadence.
	m.RxMeta.Arrival = int64(rxTime)
	if p.profile.TimestampAllRx {
		// 82580: hardware timestamps every packet (§6), quantized to
		// the chip's 64 ns granularity.
		m.RxMeta.Timestamp = int64(p.Clock.TimestampAt(rxTime))
		m.RxMeta.HasTimestamp = true
	}
	q.deliver(m)
}
