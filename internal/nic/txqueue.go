package nic

import (
	"fmt"
	"math/rand"

	"repro/internal/mempool"
	"repro/internal/proto"
	"repro/internal/ring"
	"repro/internal/sim"
)

// DefaultTxTrain is the default cap on frames the MAC scheduler
// commits per event on the batched fast path — matched to the burst
// sizes the tasks use so one descriptor-ring burst drains in one
// scheduler evaluation. Raising it lengthens the precommit horizon,
// which the §8 CRC-gap stager observes through ring backpressure —
// TestFig10Equivalence pins that 32 keeps the gap quartiles honest.
const DefaultTxTrain = 32

// TxQueue is one hardware transmit queue: a descriptor ring the
// application fills asynchronously, drained by the port's MAC
// scheduler. Queues are independent — "essentially a virtual interface"
// (§3.3) — which is what makes multi-core scaling linear.
type TxQueue struct {
	port *Port
	id   int
	ring *ring.SPSC[*mempool.Mbuf]

	// Hardware rate control (per-queue CBR shaping, §7.2). interval
	// is the target inter-departure time; 0 means line rate.
	interval  sim.Duration
	idealNext sim.Time
	// pendingAt caches the departure time (grid + oscillation) drawn
	// for the current head-of-ring frame so the scheduler stays
	// idempotent across evaluations.
	pendingAt    sim.Time
	pendingValid bool
	anomalous    bool // configured beyond the chip's reliable range

	sent      uint64
	sentBytes uint64
}

func newTxQueue(p *Port, id, ringSize int) *TxQueue {
	return &TxQueue{port: p, id: id, ring: ring.NewSPSC[*mempool.Mbuf](ringSize)}
}

// ID returns the queue index.
func (q *TxQueue) ID() int { return q.id }

// Port returns the owning port.
func (q *TxQueue) Port() *Port { return q.port }

// MAC returns the port's MAC address, so scripts can write
// `ethSrc: queue` like MoonGen's fill does.
func (q *TxQueue) MAC() proto.MAC { return q.port.mac }

// Sent returns packets and bytes transmitted from this queue.
func (q *TxQueue) Sent() (packets, bytes uint64) { return q.sent, q.sentBytes }

// SetRatePPS configures the hardware rate limiter to a constant packet
// rate. Zero disables shaping (line rate). Above the chip's reliable
// range (~9 Mpps on X520/X540, §7.5) the shaper enters its documented
// "unpredictable non-linear" regime; use two queues as a work-around.
func (q *TxQueue) SetRatePPS(pps float64) {
	if !q.port.profile.HWRateControl && pps > 0 {
		panic(fmt.Sprintf("nic: %s has no hardware rate control", q.port.profile.Name))
	}
	if pps <= 0 {
		if q.interval != 0 {
			q.port.shaped--
		}
		q.interval = 0
		q.anomalous = false
		return
	}
	if q.interval == 0 {
		q.port.shaped++
	}
	q.interval = sim.FromSeconds(1 / pps)
	q.anomalous = q.port.profile.RateAnomalyPPS > 0 && pps > q.port.profile.RateAnomalyPPS
	q.idealNext = q.port.eng.Now()
	q.pendingValid = false
}

// SetRateMbps configures the shaper to a constant bit rate, counting
// layer-2 frame bytes including the FCS, for the given frame size.
func (q *TxQueue) SetRateMbps(mbps float64, frameSizeWithFCS int) {
	if mbps <= 0 {
		q.SetRatePPS(0)
		return
	}
	pps := mbps * 1e6 / (float64(frameSizeWithFCS) * 8)
	q.SetRatePPS(pps)
}

// RateInterval returns the configured CBR interval (0 = unshaped).
func (q *TxQueue) RateInterval() sim.Duration { return q.interval }

// Free returns the free descriptor slots.
func (q *TxQueue) Free() int { return q.ring.Free() }

// Send enqueues the burst onto the descriptor ring and returns how many
// were accepted — DPDK burst semantics: a full ring yields a short
// count and the caller retries, busy-wait style. Accepted buffers are
// owned by the NIC until transmit completion ("a buffer must not be
// modified after passing it to DPDK", §4.2); they are freed back to
// their pool automatically, mirroring DPDK's recycling.
func (q *TxQueue) Send(bufs []*mempool.Mbuf) int {
	n := q.ring.EnqueueBurst(bufs)
	if n > 0 {
		q.port.kickPump()
	}
	return n
}

// SendOne enqueues a single buffer.
func (q *TxQueue) SendOne(m *mempool.Mbuf) bool {
	ok := q.ring.EnqueueOne(m)
	if ok {
		q.port.kickPump()
	}
	return ok
}

// drawHWOscillation models the shaper's measured imprecision: traffic
// "oscillates around the targeted inter-arrival time by up to 256 ns"
// with rare larger excursions (§7.3, Table 4). The mixture is
// calibrated so the measured inter-arrival buckets land near Table 4's
// MoonGen rows. rng is always the port engine's seeded source — this
// package never touches the math/rand globals (the import above is
// for the *rand.Rand type only), which is what keeps sharded runs
// deterministic; TestNoGlobalRandState pins it.
func drawHWOscillation(rng *rand.Rand) sim.Duration {
	u := rng.Float64()
	var ns float64
	switch {
	case u < 0.50:
		ns = rng.Float64()*64 - 32
	case u < 0.83:
		ns = 32 + rng.Float64()*64 // 32..96
		if rng.Intn(2) == 0 {
			ns = -ns
		}
	case u < 0.999:
		ns = 96 + rng.Float64()*96 // 96..192
		if rng.Intn(2) == 0 {
			ns = -ns
		}
	default:
		ns = 192 + rng.Float64()*160
		if rng.Intn(2) == 0 {
			ns = -ns
		}
	}
	return sim.FromNanoseconds(ns)
}

// eligibleAt returns when the head frame of this queue may start
// transmitting according to the queue's shaper.
func (q *TxQueue) eligibleAt() sim.Time {
	if q.interval == 0 {
		return q.port.eng.Now()
	}
	if !q.pendingValid {
		now := q.port.eng.Now()
		if q.idealNext < now {
			// The queue was empty or newly rated: restart the grid.
			q.idealNext = now
		}
		at := q.idealNext.Add(drawHWOscillation(q.port.eng.Rand()))
		if q.anomalous {
			// §7.5 anomaly: the shaper stretches intervals by an
			// unpredictable factor, so the achieved rate falls
			// nonlinearly short of the target.
			stretch := 1.0 + q.port.eng.Rand().Float64()*0.8
			at = q.idealNext.Add(sim.Duration(float64(q.interval) * (stretch - 1.0)))
		}
		if at < now {
			at = now
		}
		q.pendingAt = at
		q.pendingValid = true
	}
	return q.pendingAt
}

// advance moves the shaper grid after a transmission.
func (q *TxQueue) advance() {
	q.pendingValid = false
	if q.interval > 0 {
		q.idealNext = q.idealNext.Add(q.interval)
	}
}

// kickPump schedules a MAC scheduler evaluation at the current instant.
// A pump already scheduled for a *future* instant (a shaped queue's next
// departure) must not suppress this: a newly enqueued frame on another
// queue may be eligible right now.
//
// Fast path: when every queue is unshaped and an evaluation is already
// armed at or before the wire's next transmit slot, the kick is
// redundant — no frame can start before that slot (start ≥ NextTxSlot
// always), the armed evaluation re-derives all state when it fires,
// and an unshaped evaluation draws no randomness — so skipping the
// extra event is invisible to the simulation. This is what keeps a
// busy-waiting sender from scheduling one no-op pump per retry.
func (p *Port) kickPump() {
	if p.txPaused {
		return // gated: ResumeTx re-evaluates the queues
	}
	if p.pumpScheduled && p.shaped == 0 && p.link != nil && p.pumpAt <= p.link.NextTxSlot() {
		return
	}
	p.schedulePump(p.eng.Now())
}

// PauseTx gates the MAC transmit scheduler (fault injection modelling
// PFC-style backpressure): armed evaluations no-op, new sends stop
// kicking the pump, and frames accumulate in the descriptor rings
// until ResumeTx. The wire grid (busyUntil) is untouched, so the
// post-resume departure schedule depends only on the resume instant.
// Idempotent.
func (p *Port) PauseTx() { p.txPaused = true }

// ResumeTx re-enables the MAC scheduler and immediately re-evaluates
// the queues, draining whatever accumulated during the pause on the
// exact wire grid from the resume instant. Idempotent.
func (p *Port) ResumeTx() {
	if !p.txPaused {
		return
	}
	p.txPaused = false
	p.schedulePump(p.eng.Now())
}

// TxPaused reports whether the MAC transmit scheduler is gated.
func (p *Port) TxPaused() bool { return p.txPaused }

// schedulePump arranges exactly one pending evaluation at the earliest
// requested instant. An existing earlier-or-equal event already covers
// this request (pump re-derives all state and re-chains); a later one
// is superseded. Events carry the prebound pumpFn — no closure
// allocation — and pumpEvent discards stale firings by comparing the
// armed instant, so the event population stays O(1) per port.
func (p *Port) schedulePump(at sim.Time) {
	if p.pumpScheduled && p.pumpAt <= at {
		return
	}
	p.pumpScheduled = true
	p.pumpAt = at
	p.eng.Schedule(at, p.pumpFn)
}

// pumpEvent is the scheduled entry point: it runs the scheduler only
// when this firing matches the armed evaluation (stale events from
// superseded arm times no-op).
func (p *Port) pumpEvent() {
	if !p.pumpScheduled || p.pumpAt != p.eng.Now() {
		return
	}
	p.pump()
}

// pump is the port's MAC transmit scheduler: it picks the next eligible
// frame across all queues (round-robin at equal times via queue index),
// honors per-queue rate limiters, the wire's serialization spacing, the
// runt-frame rate ceiling and the XL710's per-port packet ceiling, then
// emits the frame onto the link.
//
// Batching: after the first commit, the scheduler keeps emitting from
// the same queue — up to txTrain frames in this one event — as long as
// it is the only active queue and unshaped, stamping each departure on
// the exact per-frame wire grid (serialization spacing plus the rate
// ceilings). The grid arithmetic is identical to the per-packet
// evaluation, so departure times are bit-identical; only the event
// count drops. Shaped queues and multi-queue arbitration points are
// always evaluated in their own event, exactly as before, which keeps
// the §7.2 shaper oscillation model untouched.
func (p *Port) pump() {
	p.pumpScheduled = false
	if p.txPaused {
		return // gated (PauseTx): frames wait in the rings
	}
	if p.link == nil {
		return // unconnected port: frames pile up in the rings
	}
	now := p.eng.Now()
	if !p.pumpStep(now) {
		return
	}
	// Train continuation: same-queue burst on the pure wire grid. The
	// horizon bounds how much wire time one event may pre-commit, so a
	// frame enqueued on another queue mid-train (a latency probe during
	// a flood) waits no longer than it would behind one large frame
	// under the per-packet scheduler.
	emitted := 1
	horizon := now.Add(sim.Duration(p.txTrain) * p.minFrameTime)
	soleQueue := len(p.txQueues) == 1 // no arbitration possible: skip the rescan
	for emitted < p.txTrain {
		var sole *TxQueue
		if soleQueue {
			if _, ok := p.txQueues[0].ring.Peek(); ok {
				sole = p.txQueues[0]
			}
		} else {
			var multi bool
			sole, multi = p.soleActiveQueue()
			if multi {
				// Arbitration: its own evaluation event.
				p.schedulePump(p.link.NextTxSlot())
				break
			}
		}
		if sole != nil && sole.interval != 0 {
			// Shaping: its own evaluation event.
			p.schedulePump(p.link.NextTxSlot())
			break
		}
		if sole == nil {
			break // rings drained; the next Send kicks us again
		}
		start := p.link.NextTxSlot()
		if start < now {
			start = now
		}
		m, _ := sole.ring.Peek()
		start = p.applyRateCeilings(m, start)
		if start > horizon {
			p.schedulePump(start)
			break
		}
		m, _ = sole.ring.DequeueOne()
		sole.advance()
		p.rrNext = (sole.id + 1) % len(p.txQueues)
		p.transmitFrameAt(sole, m, start)
		emitted++
	}
	if emitted == p.txTrain {
		p.schedulePump(p.link.NextTxSlot())
	}
	p.armCompletions()
	p.publishStats()
}

// soleActiveQueue returns the only TX queue with pending frames, or
// multi=true when more than one queue is active.
func (p *Port) soleActiveQueue() (sole *TxQueue, multi bool) {
	for _, q := range p.txQueues {
		if _, ok := q.ring.Peek(); !ok {
			continue
		}
		if sole != nil {
			return nil, true
		}
		sole = q
	}
	return sole, false
}

// applyRateCeilings delays start to honor the per-port packet-rate
// ceilings: sub-minimum frames cap at RuntMaxPPS (§8.1); the XL710
// caps all frames at PortMaxPPS (§5.4). The per-ceiling gaps are
// precomputed at port creation (runtMinGap/portMinGap) — same rounded
// picosecond values, no per-frame division.
func (p *Port) applyRateCeilings(m *mempool.Mbuf, start sim.Time) sim.Time {
	if !p.hasTxStart {
		return start
	}
	minGap := p.portMinGap
	if p.runtMinGap > minGap && m.Len+proto.FCSLen < proto.MinFrameSizeFCS {
		minGap = p.runtMinGap
	}
	if minGap > 0 && start.Sub(p.lastTxStart) < minGap {
		return p.lastTxStart.Add(minGap)
	}
	return start
}

// pumpStep is one per-packet scheduler evaluation: scan, pick, check
// eligibility, commit if the frame may start now. It reports whether a
// frame was committed (the train continues only after a commit).
func (p *Port) pumpStep(now sim.Time) bool {
	// Scan queues starting after the last served one: equal-eligibility
	// queues share the wire round-robin, as the hardware arbiter does.
	var best *TxQueue
	var bestAt sim.Time
	n := len(p.txQueues)
	for i := 0; i < n; i++ {
		q := p.txQueues[(p.rrNext+i)%n]
		if _, ok := q.ring.Peek(); !ok {
			continue
		}
		at := q.eligibleAt()
		if best == nil || at < bestAt {
			best = q
			bestAt = at
		}
	}
	if best == nil {
		return false // idle; the next Send kicks us again
	}

	start := bestAt
	if w := p.link.NextTxSlot(); w > start {
		start = w
	}
	if start < now {
		start = now
	}

	m, _ := best.ring.Peek()
	start = p.applyRateCeilings(m, start)

	if start > now {
		p.schedulePump(start)
		return false
	}

	// Commit: dequeue and transmit.
	m, _ = best.ring.DequeueOne()
	best.advance()
	p.rrNext = (best.id + 1) % len(p.txQueues)
	p.transmitFrameAt(best, m, start)
	return true
}

// transmitFrameAt performs the DMA fetch (checksum offloads), MAC-level
// timestamp latch and wire emission for one buffer at the exact wire
// instant start (≥ now: train frames after the first are future-stamped
// on the serialization grid), then queues the buffer's recycling at
// transmit completion.
func (p *Port) transmitFrameAt(q *TxQueue, m *mempool.Mbuf, start sim.Time) {
	data := m.Payload()

	// Checksum offload engine: executed when the hardware fetches the
	// descriptor. L2Len/L3Len default to plain Ethernet/IPv4 offsets.
	meta := &m.TxMeta
	l2 := meta.L2Len
	if l2 == 0 {
		l2 = proto.EthHdrLen
	}
	if meta.OffloadIPChecksum && len(data) >= l2+proto.IPv4HdrLen {
		proto.IPv4Hdr(data[l2:]).CalcChecksum()
	}
	if (meta.OffloadUDPChecksum || meta.OffloadTCPChecksum) && len(data) >= l2+proto.IPv4HdrLen {
		ip := proto.IPv4Hdr(data[l2:])
		l3 := meta.L3Len
		if l3 == 0 {
			l3 = ip.HdrLen()
		}
		segEnd := l2 + int(ip.TotalLength())
		if segEnd > len(data) {
			segEnd = len(data)
		}
		seg := data[l2+l3 : segEnd]
		if meta.OffloadUDPChecksum && len(seg) >= proto.UDPHdrLen {
			udp := proto.UDPHdr(seg)
			udp.SetChecksum(0)
			udp.SetChecksum(proto.TransportChecksumIPv4(ip.Src(), ip.Dst(), proto.IPProtoUDP, seg))
		}
		if meta.OffloadTCPChecksum && len(seg) >= proto.TCPHdrLen {
			tcp := proto.TCPHdr(seg)
			tcp.SetChecksum(0)
			tcp.SetChecksum(proto.TransportChecksumIPv4(ip.Src(), ip.Dst(), proto.IPProtoTCP, seg))
		}
	}

	// TX hardware timestamping, "late in the transmit path" (§6.1).
	if meta.Timestamp && !p.txTSValid {
		if seq, ok := p.classifyPTP(data); ok {
			p.txTSValid = true
			p.txTS = p.Clock.TimestampAt(start)
			p.txTSSeq = seq
		}
	}

	f := p.link.AcquireFrame()
	f.Data = append(f.Data, data...)
	f.WireSize = m.Len + proto.FCSLen
	f.CRCOK = !meta.InvalidCRC
	busyUntil := p.link.TransmitAt(f, start)
	p.lastTxStart = start
	p.hasTxStart = true

	p.stage.TxPackets++
	p.stage.TxBytes += uint64(m.Len)
	q.sent++
	q.sentBytes += uint64(m.Len)

	if p.txTrace != nil {
		p.txTrace(q, m, start)
	}

	// The NIC owns the buffer until the frame has left the FIFO; then
	// DPDK-style recycling returns it to its pool. Completions are
	// queued here and armed once per train (armCompletions).
	p.pushCompletion(m, busyUntil)
}

// pushCompletion appends a buffer to the transmit-completion FIFO
// (completion times are monotonic: busyUntil only moves forward).
func (p *Port) pushCompletion(m *mempool.Mbuf, at sim.Time) {
	p.lastCompletion = at
	p.completions.Push(txCompletion{m: m, at: at})
}

// armCompletions schedules one recycling event at the end of the train
// just committed. The event frees every buffer whose frame has left the
// FIFO by then; with single-frame trains this is exactly the per-packet
// free-at-busyUntil behavior. An event already armed at the same
// instant is not duplicated (duplicates were harmless no-ops; now they
// are not scheduled at all).
func (p *Port) armCompletions() {
	if p.completions.Len() > 0 && !(p.completionArmed && p.completionAt == p.lastCompletion) {
		p.completionArmed = true
		p.completionAt = p.lastCompletion
		p.eng.Schedule(p.lastCompletion, p.completeFn)
	}
}

// completeTx frees every buffer whose transmit completed by now.
// Frees are batched per pool (one lock acquisition per run of
// same-pool buffers — in practice the whole train) instead of paying
// the pool mutex per packet.
func (p *Port) completeTx() {
	now := p.eng.Now()
	if now >= p.completionAt {
		p.completionArmed = false
	}
	for {
		c, ok := p.completions.Peek()
		if !ok || c.at > now {
			break
		}
		if n := len(p.freeBatch); n > 0 && p.freeBatch[n-1].Pool() != c.m.Pool() {
			p.flushFreeBatch()
		}
		p.completions.Pop()
		p.freeBatch = append(p.freeBatch, c.m)
	}
	p.flushFreeBatch()
}

// flushFreeBatch returns the accumulated same-pool completions.
func (p *Port) flushFreeBatch() {
	if len(p.freeBatch) == 0 {
		return
	}
	p.freeBatch[0].Pool().FreeBatch(p.freeBatch)
	for i := range p.freeBatch {
		p.freeBatch[i] = nil
	}
	p.freeBatch = p.freeBatch[:0]
}
