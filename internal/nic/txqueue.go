package nic

import (
	"fmt"
	"math/rand"

	"repro/internal/mempool"
	"repro/internal/proto"
	"repro/internal/ring"
	"repro/internal/sim"
	"repro/internal/wire"
)

// TxQueue is one hardware transmit queue: a descriptor ring the
// application fills asynchronously, drained by the port's MAC
// scheduler. Queues are independent — "essentially a virtual interface"
// (§3.3) — which is what makes multi-core scaling linear.
type TxQueue struct {
	port *Port
	id   int
	ring *ring.SPSC[*mempool.Mbuf]

	// Hardware rate control (per-queue CBR shaping, §7.2). interval
	// is the target inter-departure time; 0 means line rate.
	interval  sim.Duration
	idealNext sim.Time
	// pendingAt caches the departure time (grid + oscillation) drawn
	// for the current head-of-ring frame so the scheduler stays
	// idempotent across evaluations.
	pendingAt    sim.Time
	pendingValid bool
	anomalous    bool // configured beyond the chip's reliable range

	sent      uint64
	sentBytes uint64
}

func newTxQueue(p *Port, id, ringSize int) *TxQueue {
	return &TxQueue{port: p, id: id, ring: ring.NewSPSC[*mempool.Mbuf](ringSize)}
}

// ID returns the queue index.
func (q *TxQueue) ID() int { return q.id }

// Port returns the owning port.
func (q *TxQueue) Port() *Port { return q.port }

// MAC returns the port's MAC address, so scripts can write
// `ethSrc: queue` like MoonGen's fill does.
func (q *TxQueue) MAC() proto.MAC { return q.port.mac }

// Sent returns packets and bytes transmitted from this queue.
func (q *TxQueue) Sent() (packets, bytes uint64) { return q.sent, q.sentBytes }

// SetRatePPS configures the hardware rate limiter to a constant packet
// rate. Zero disables shaping (line rate). Above the chip's reliable
// range (~9 Mpps on X520/X540, §7.5) the shaper enters its documented
// "unpredictable non-linear" regime; use two queues as a work-around.
func (q *TxQueue) SetRatePPS(pps float64) {
	if !q.port.profile.HWRateControl && pps > 0 {
		panic(fmt.Sprintf("nic: %s has no hardware rate control", q.port.profile.Name))
	}
	if pps <= 0 {
		q.interval = 0
		q.anomalous = false
		return
	}
	q.interval = sim.FromSeconds(1 / pps)
	q.anomalous = q.port.profile.RateAnomalyPPS > 0 && pps > q.port.profile.RateAnomalyPPS
	q.idealNext = q.port.eng.Now()
	q.pendingValid = false
}

// SetRateMbps configures the shaper to a constant bit rate, counting
// layer-2 frame bytes including the FCS, for the given frame size.
func (q *TxQueue) SetRateMbps(mbps float64, frameSizeWithFCS int) {
	if mbps <= 0 {
		q.SetRatePPS(0)
		return
	}
	pps := mbps * 1e6 / (float64(frameSizeWithFCS) * 8)
	q.SetRatePPS(pps)
}

// RateInterval returns the configured CBR interval (0 = unshaped).
func (q *TxQueue) RateInterval() sim.Duration { return q.interval }

// Free returns the free descriptor slots.
func (q *TxQueue) Free() int { return q.ring.Free() }

// Send enqueues the batch onto the descriptor ring and returns how many
// were accepted — DPDK burst semantics: a full ring yields a short
// count and the caller retries, busy-wait style. Accepted buffers are
// owned by the NIC until transmit completion ("a buffer must not be
// modified after passing it to DPDK", §4.2); they are freed back to
// their pool automatically, mirroring DPDK's recycling.
func (q *TxQueue) Send(bufs []*mempool.Mbuf) int {
	n := q.ring.Enqueue(bufs)
	if n > 0 {
		q.port.kickPump()
	}
	return n
}

// SendOne enqueues a single buffer.
func (q *TxQueue) SendOne(m *mempool.Mbuf) bool {
	ok := q.ring.EnqueueOne(m)
	if ok {
		q.port.kickPump()
	}
	return ok
}

// drawHWOscillation models the shaper's measured imprecision: traffic
// "oscillates around the targeted inter-arrival time by up to 256 ns"
// with rare larger excursions (§7.3, Table 4). The mixture is
// calibrated so the measured inter-arrival buckets land near Table 4's
// MoonGen rows.
func drawHWOscillation(rng *rand.Rand) sim.Duration {
	u := rng.Float64()
	var ns float64
	switch {
	case u < 0.50:
		ns = rng.Float64()*64 - 32
	case u < 0.83:
		ns = 32 + rng.Float64()*64 // 32..96
		if rng.Intn(2) == 0 {
			ns = -ns
		}
	case u < 0.999:
		ns = 96 + rng.Float64()*96 // 96..192
		if rng.Intn(2) == 0 {
			ns = -ns
		}
	default:
		ns = 192 + rng.Float64()*160
		if rng.Intn(2) == 0 {
			ns = -ns
		}
	}
	return sim.FromNanoseconds(ns)
}

// eligibleAt returns when the head frame of this queue may start
// transmitting according to the queue's shaper.
func (q *TxQueue) eligibleAt() sim.Time {
	if q.interval == 0 {
		return q.port.eng.Now()
	}
	if !q.pendingValid {
		now := q.port.eng.Now()
		if q.idealNext < now {
			// The queue was empty or newly rated: restart the grid.
			q.idealNext = now
		}
		at := q.idealNext.Add(drawHWOscillation(q.port.eng.Rand()))
		if q.anomalous {
			// §7.5 anomaly: the shaper stretches intervals by an
			// unpredictable factor, so the achieved rate falls
			// nonlinearly short of the target.
			stretch := 1.0 + q.port.eng.Rand().Float64()*0.8
			at = q.idealNext.Add(sim.Duration(float64(q.interval) * (stretch - 1.0)))
		}
		if at < now {
			at = now
		}
		q.pendingAt = at
		q.pendingValid = true
	}
	return q.pendingAt
}

// advance moves the shaper grid after a transmission.
func (q *TxQueue) advance() {
	q.pendingValid = false
	if q.interval > 0 {
		q.idealNext = q.idealNext.Add(q.interval)
	}
}

// kickPump schedules a MAC scheduler evaluation at the current instant.
// A pump already scheduled for a *future* instant (a shaped queue's next
// departure) must not suppress this: a newly enqueued frame on another
// queue may be eligible right now.
func (p *Port) kickPump() { p.schedulePump(p.eng.Now()) }

// schedulePump arranges exactly one pending evaluation at the earliest
// requested instant. An existing earlier-or-equal event already covers
// this request (pump re-derives all state and re-chains); a later one
// is superseded via the generation counter, so stale events are no-ops
// and the event population stays O(1) per port.
func (p *Port) schedulePump(at sim.Time) {
	if p.pumpScheduled && p.pumpAt <= at {
		return
	}
	p.pumpGen++
	gen := p.pumpGen
	p.pumpScheduled = true
	p.pumpAt = at
	p.eng.Schedule(at, func() {
		if gen != p.pumpGen {
			return // superseded by an earlier evaluation
		}
		p.pump()
	})
}

// pump is the port's MAC transmit scheduler: it picks the next eligible
// frame across all queues (round-robin at equal times via queue index),
// honors per-queue rate limiters, the wire's serialization spacing, the
// runt-frame rate ceiling and the XL710's per-port packet ceiling, then
// emits the frame onto the link.
func (p *Port) pump() {
	p.pumpScheduled = false
	if p.link == nil {
		return // unconnected port: frames pile up in the rings
	}
	now := p.eng.Now()

	// Scan queues starting after the last served one: equal-eligibility
	// queues share the wire round-robin, as the hardware arbiter does.
	var best *TxQueue
	var bestAt sim.Time
	n := len(p.txQueues)
	for i := 0; i < n; i++ {
		q := p.txQueues[(p.rrNext+i)%n]
		if _, ok := q.ring.Peek(); !ok {
			continue
		}
		at := q.eligibleAt()
		if best == nil || at < bestAt {
			best = q
			bestAt = at
		}
	}
	if best == nil {
		return // idle; the next Send kicks us again
	}

	start := bestAt
	if w := p.link.NextTxSlot(); w > start {
		start = w
	}
	if start < now {
		start = now
	}

	m, _ := best.ring.Peek()

	// Per-port packet-rate ceilings: sub-minimum frames cap at
	// RuntMaxPPS (§8.1); the XL710 caps all frames at PortMaxPPS
	// (§5.4).
	if p.hasTxStart {
		var minGap sim.Duration
		wireSize := m.Len + proto.FCSLen
		if wireSize < proto.MinFrameSizeFCS && p.profile.RuntMaxPPS > 0 {
			minGap = sim.FromSeconds(1 / p.profile.RuntMaxPPS)
		}
		if p.profile.PortMaxPPS > 0 {
			if g := sim.FromSeconds(1 / p.profile.PortMaxPPS); g > minGap {
				minGap = g
			}
		}
		if minGap > 0 && start.Sub(p.lastTxStart) < minGap {
			start = p.lastTxStart.Add(minGap)
		}
	}

	if start > now {
		p.schedulePump(start)
		return
	}

	// Commit: dequeue and transmit.
	m, _ = best.ring.DequeueOne()
	best.advance()
	p.rrNext = (best.id + 1) % len(p.txQueues)
	p.transmitFrame(best, m)
	// Evaluate the next frame once the wire frees up.
	p.schedulePump(p.link.NextTxSlot())
}

// transmitFrame performs the DMA fetch (checksum offloads), MAC-level
// timestamp latch and wire emission for one buffer, then arranges the
// buffer's recycling at transmit completion.
func (p *Port) transmitFrame(q *TxQueue, m *mempool.Mbuf) {
	data := m.Payload()

	// Checksum offload engine: executed when the hardware fetches the
	// descriptor. L2Len/L3Len default to plain Ethernet/IPv4 offsets.
	meta := &m.TxMeta
	l2 := meta.L2Len
	if l2 == 0 {
		l2 = proto.EthHdrLen
	}
	if meta.OffloadIPChecksum && len(data) >= l2+proto.IPv4HdrLen {
		proto.IPv4Hdr(data[l2:]).CalcChecksum()
	}
	if (meta.OffloadUDPChecksum || meta.OffloadTCPChecksum) && len(data) >= l2+proto.IPv4HdrLen {
		ip := proto.IPv4Hdr(data[l2:])
		l3 := meta.L3Len
		if l3 == 0 {
			l3 = ip.HdrLen()
		}
		segEnd := l2 + int(ip.TotalLength())
		if segEnd > len(data) {
			segEnd = len(data)
		}
		seg := data[l2+l3 : segEnd]
		if meta.OffloadUDPChecksum && len(seg) >= proto.UDPHdrLen {
			udp := proto.UDPHdr(seg)
			udp.SetChecksum(0)
			udp.SetChecksum(proto.TransportChecksumIPv4(ip.Src(), ip.Dst(), proto.IPProtoUDP, seg))
		}
		if meta.OffloadTCPChecksum && len(seg) >= proto.TCPHdrLen {
			tcp := proto.TCPHdr(seg)
			tcp.SetChecksum(0)
			tcp.SetChecksum(proto.TransportChecksumIPv4(ip.Src(), ip.Dst(), proto.IPProtoTCP, seg))
		}
	}

	now := p.eng.Now()

	// TX hardware timestamping, "late in the transmit path" (§6.1).
	if meta.Timestamp && !p.txTSValid {
		if seq, ok := p.classifyPTP(data); ok {
			p.txTSValid = true
			p.txTS = p.Clock.TimestampAt(now)
			p.txTSSeq = seq
		}
	}

	f := &wire.Frame{
		Data:     append([]byte(nil), data...),
		WireSize: m.Len + proto.FCSLen,
		CRCOK:    !meta.InvalidCRC,
	}
	busyUntil := p.link.Transmit(f)
	p.lastTxStart = now
	p.hasTxStart = true

	p.stats.TxPackets++
	p.stats.TxBytes += uint64(m.Len)
	q.sent++
	q.sentBytes += uint64(m.Len)

	// The NIC owns the buffer until the frame has left the FIFO; then
	// DPDK-style recycling returns it to its pool.
	p.eng.Schedule(busyUntil, m.Free)
}
