package nic

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/mempool"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/wire"
)

// batchBed builds one TX port wired to a sink that records delivery
// instants, with the given MAC train cap.
func batchBed(seed int64, txTrain int) (*sim.Engine, *Port, *mempool.Pool, *[]sim.Time, *[]sim.Time) {
	eng := sim.NewEngine(seed)
	a := NewPort(eng, PortConfig{Profile: ChipX540, ID: 0, TxQueues: 2, TxTrain: txTrain})
	b := NewPort(eng, PortConfig{Profile: ChipX540, ID: 1, TxTrain: txTrain})
	ConnectDuplex(eng, a, b, wire.PHY10GBaseT, 2)
	pool := mempool.New(mempool.Config{Count: 4096})
	departures := &[]sim.Time{}
	arrivals := &[]sim.Time{}
	a.SetTxTrace(func(q *TxQueue, m *mempool.Mbuf, at sim.Time) {
		*departures = append(*departures, at)
	})
	b.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool {
		*arrivals = append(*arrivals, at)
		return true
	})
	return eng, a, pool, departures, arrivals
}

// TestTrainMatchesPerPacketScheduler: the MAC's burst fast path must
// be pure event coalescing — with TxTrain=32 versus TxTrain=1 (the
// per-packet reference), every departure and every delivery lands at
// the identical instant, while the scheduler fires far fewer events.
func TestTrainMatchesPerPacketScheduler(t *testing.T) {
	run := func(txTrain int) (dep, arr []sim.Time, events int) {
		eng, a, pool, departures, arrivals := batchBed(5, txTrain)
		q := a.GetTxQueue(0)
		eng.SetStopTime(sim.Time(2 * sim.Millisecond))
		eng.Spawn("tx", func(p *sim.Proc) {
			batch := make([]*mempool.Mbuf, 63)
			for p.Running() {
				n := pool.AllocBatch(batch, 60)
				if n == 0 {
					p.Sleep(sim.Microsecond)
					continue
				}
				for _, m := range batch[:n] {
					pk := proto.UDPPacket{B: m.Payload()}
					pk.Fill(proto.UDPPacketFill{PktLength: 60, UDPSrc: 7, UDPDst: 42,
						IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.0.0.2")})
				}
				sent := 0
				for sent < n {
					k := q.Send(batch[sent:n])
					sent += k
					if k == 0 {
						p.Sleep(sim.Microsecond)
					}
				}
				p.Yield()
			}
		})
		for eng.Step() {
			events++
		}
		return *departures, *arrivals, events
	}
	dep1, arr1, events1 := run(1)
	dep32, arr32, events32 := run(32)

	if len(dep1) < 20000 {
		t.Fatalf("per-packet reference emitted only %d frames", len(dep1))
	}
	if len(dep1) != len(dep32) || len(arr1) != len(arr32) {
		t.Fatalf("frame counts differ: %d/%d departures, %d/%d arrivals",
			len(dep1), len(dep32), len(arr1), len(arr32))
	}
	for i := range dep1 {
		if dep1[i] != dep32[i] {
			t.Fatalf("departure %d differs: %v vs %v", i, dep1[i], dep32[i])
		}
	}
	for i := range arr1 {
		if arr1[i] != arr32[i] {
			t.Fatalf("arrival %d differs: %v vs %v", i, arr1[i], arr32[i])
		}
	}
	// The whole point: the batched scheduler does the same work in far
	// fewer events.
	if float64(events32) > 0.5*float64(events1) {
		t.Errorf("train batching fired %d events vs %d per-packet — expected a large reduction", events32, events1)
	}
}

// TestTrainBackToBackGrid pins the batched scheduler's timing grid
// directly: a burst committed in one event departs on exact
// frame-time spacing — 67.2 ns for 64 B frames at 10 GbE, byte-exact.
func TestTrainBackToBackGrid(t *testing.T) {
	eng, a, pool, departures, _ := batchBed(6, 32)
	q := a.GetTxQueue(0)
	eng.Schedule(0, func() {
		batch := make([]*mempool.Mbuf, 32)
		n := pool.AllocBatch(batch, 60)
		for _, m := range batch[:n] {
			proto.EthHdr(m.Payload()[:proto.EthHdrLen]).Fill(proto.EthFill{EtherType: proto.EtherTypeIPv4})
		}
		q.Send(batch[:n])
	})
	eng.RunAll()
	if len(*departures) != 32 {
		t.Fatalf("%d departures", len(*departures))
	}
	frameTime := wire.FrameTime(wire.Speed10G, 64) // 84 bytes * 0.8 ns
	for i, at := range *departures {
		want := sim.Time(0).Add(sim.Duration(i) * frameTime)
		if at != want {
			t.Fatalf("frame %d departed at %v, want %v", i, at, want)
		}
	}
}

// TestTrainYieldsToOtherQueue: the burst fast path must not starve
// arbitration — with a second queue active, the scheduler falls back
// to per-slot evaluation and round-robins the wire.
func TestTrainYieldsToOtherQueue(t *testing.T) {
	eng, a, pool, _, _ := batchBed(7, 32)
	q0, q1 := a.GetTxQueue(0), a.GetTxQueue(1)
	var order []int
	a.SetTxTrace(func(q *TxQueue, m *mempool.Mbuf, at sim.Time) {
		if len(order) < 16 {
			order = append(order, q.ID())
		}
	})
	eng.Schedule(0, func() {
		batch := make([]*mempool.Mbuf, 8)
		n := pool.AllocBatch(batch, 60)
		q0.Send(batch[:n])
		n = pool.AllocBatch(batch, 60)
		q1.Send(batch[:n])
	})
	eng.RunAll()
	if len(order) != 16 {
		t.Fatalf("%d frames", len(order))
	}
	zeros := 0
	for _, id := range order[:8] {
		if id == 0 {
			zeros++
		}
	}
	// Strict alternation: both queues eligible at every slot.
	if zeros != 4 {
		t.Fatalf("first 8 slots served queue 0 %d times, want 4 (round-robin): %v", zeros, order)
	}
}

// TestJitterStreamIndependentOfEngineDraws: PHY receive jitter comes
// from the link's private stream, so frame i's jitter depends only on
// i — interleaving unrelated draws on the engine RNG (as a task with a
// different batch size would) must not move a single arrival.
func TestJitterStreamIndependentOfEngineDraws(t *testing.T) {
	run := func(extraDraws int) []sim.Time {
		eng, a, pool, _, arrivals := batchBed(9, 32)
		q := a.GetTxQueue(0)
		eng.Schedule(0, func() {
			for i := 0; i < extraDraws; i++ {
				eng.Rand().Int63() // unrelated simulation randomness
			}
			batch := make([]*mempool.Mbuf, 32)
			n := pool.AllocBatch(batch, 60)
			for _, m := range batch[:n] {
				proto.EthHdr(m.Payload()[:proto.EthHdrLen]).Fill(proto.EthFill{EtherType: proto.EtherTypeIPv4})
			}
			q.Send(batch[:n])
		})
		eng.RunAll()
		return *arrivals
	}
	base, perturbed := run(0), run(17)
	if len(base) != 32 || len(perturbed) != 32 {
		t.Fatalf("arrival counts %d/%d", len(base), len(perturbed))
	}
	for i := range base {
		if base[i] != perturbed[i] {
			t.Fatalf("arrival %d moved when engine RNG was perturbed: %v vs %v", i, base[i], perturbed[i])
		}
	}
}

// TestNoGlobalRandState is the sharded-determinism regression test for
// the math/rand audit: a seeded single-port run must be bit-identical
// while other goroutines hammer the global math/rand source. Any nic
// or wire code path that reached for the global generator (instead of
// the engine's seeded streams) would race with the hammer and change
// the jittered arrival schedule between runs.
func TestNoGlobalRandState(t *testing.T) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					rand.Int63() // the global source the audit bans
				}
			}
		}()
	}
	run := func() []sim.Time {
		eng, a, pool, _, arrivals := batchBed(11, 32)
		q := a.GetTxQueue(0)
		eng.SetStopTime(sim.Time(200 * sim.Microsecond))
		eng.Spawn("tx", func(p *sim.Proc) { pumpQueue(p, pool, q, 60, 1) })
		eng.RunAll()
		return *arrivals
	}
	first, second := run(), run()
	close(stop)
	wg.Wait()
	if len(first) == 0 || len(first) != len(second) {
		t.Fatalf("arrival counts %d/%d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("run not deterministic under global-rand load at frame %d: %v vs %v", i, first[i], second[i])
		}
	}
}
