// Package multicore is the sharded execution subsystem: it runs N
// independent deterministic sim.Engine shards on real goroutines, one
// per modeled core — the execution model behind the paper's §5
// multi-core scaling results (one slave task per core, each with its
// own queues and mempools, 178.5 Mpps across 12 cores in Figure 4).
//
// Each Shard owns a complete core.App (engine, devices, tasks); the
// shards share no simulation state, so every shard is individually
// reproducible and the group as a whole is deterministic at any core
// count: shard i's seed is derived from the base seed by a splitmix64
// step, independent of how many shards run or how the host schedules
// their goroutines. Results are combined after the barrier in shard
// order by the stats merge layer (stats.OnlineStats.Merge,
// stats.Counter.Merge, stats.Histogram.Merge), so merged measurements
// are exact and stable.
package multicore

import (
	"fmt"
	"runtime/debug"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/sim"
)

// ShardSeed derives the engine seed of shard i from a base seed. The
// derivation is sim.SplitMix64, so per-shard random streams are
// decorrelated (base+1 and shard 0 of base do not collide the way
// naive seed+i schemes do) and stable: shard i always gets the same
// seed no matter the core count.
func ShardSeed(base int64, shard int) int64 {
	return sim.SplitMix64(base, uint64(shard+1))
}

// Shard is one modeled core: an independent deterministic engine plus
// its identity within the group. Tasks launched on the shard's App see
// the shard index via Task.Shard; per-core mempools and queue slices
// are created on the shard by whoever builds its testbed.
type Shard struct {
	// ID is the shard's index in [0, N).
	ID int
	// Seed is the shard's derived engine seed.
	Seed int64
	// App is the shard's private simulation app.
	App *core.App
}

// Group runs N shards. Building the group is cheap; the parallelism
// happens in Each/RunFor, which put every shard on its own goroutine —
// real host parallelism wrapping N deterministic simulations.
type Group struct {
	shards []*Shard
}

// NewGroup creates n shards with seeds derived from baseSeed.
func NewGroup(n int, baseSeed int64) *Group {
	if n < 1 {
		n = 1
	}
	g := &Group{shards: make([]*Shard, n)}
	for i := range g.shards {
		seed := ShardSeed(baseSeed, i)
		app := core.NewApp(seed)
		app.Shard = i
		g.shards[i] = &Shard{ID: i, Seed: seed, App: app}
	}
	return g
}

// N returns the number of shards.
func (g *Group) N() int { return len(g.shards) }

// Shard returns shard i.
func (g *Group) Shard(i int) *Shard { return g.shards[i] }

// Shards returns all shards in index order.
func (g *Group) Shards() []*Shard { return g.shards }

// Each runs fn for every shard concurrently, one goroutine per shard,
// and waits for all of them — the fork/join of a master task launching
// one slave per core. fn must confine itself to its shard (and any
// slot of caller-owned result slices indexed by shard ID); the barrier
// at return publishes all shard writes to the caller. Panics in fn are
// re-raised on the caller after all shards stop. The returned error
// aggregates per-shard errors in shard order.
func (g *Group) Each(fn func(s *Shard) error) error {
	errs := make([]error, len(g.shards))
	type shardPanic struct {
		value interface{}
		stack []byte
	}
	panics := make([]*shardPanic, len(g.shards))
	var wg sync.WaitGroup
	for _, s := range g.shards {
		wg.Add(1)
		go func(s *Shard) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					panics[s.ID] = &shardPanic{value: r, stack: debug.Stack()}
				}
			}()
			errs[s.ID] = fn(s)
		}(s)
	}
	wg.Wait()
	var panicked []string
	for i, p := range panics {
		if p != nil {
			panicked = append(panicked, fmt.Sprintf("shard %d: %v\n%s", i, p.value, p.stack))
		}
	}
	if panicked != nil {
		// Re-raise with every shard's panic value and its original
		// stack, so the guard panics of the simulated testbed (double
		// frees, causality violations) keep pointing at the faulty
		// task instead of at this barrier.
		panic("multicore: " + strings.Join(panicked, "\n"))
	}
	var msgs []string
	for i, err := range errs {
		if err != nil {
			msgs = append(msgs, fmt.Sprintf("shard %d: %v", i, err))
		}
	}
	if msgs != nil {
		return fmt.Errorf("multicore: %s", strings.Join(msgs, "; "))
	}
	return nil
}

// LaunchAll launches one task per shard on the shard's own engine —
// MoonGen's "launch this slave on every core". The tasks do not start
// running until the shard's simulation is driven (RunFor or a per-
// shard Run inside Each).
func (g *Group) LaunchAll(name string, fn func(s *Shard, t *core.Task)) {
	for _, s := range g.shards {
		s := s
		s.App.LaunchTask(fmt.Sprintf("%s-%d", name, s.ID), func(t *core.Task) {
			fn(s, t)
		})
	}
}

// RunFor drives every shard's simulation for d of simulated time
// concurrently and waits for all shards to finish draining — the
// master task's waitForSlaves over real goroutines.
func (g *Group) RunFor(d sim.Duration) {
	_ = g.Each(func(s *Shard) error {
		s.App.RunFor(d)
		return nil
	})
}
