package multicore_test

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/multicore"
	"repro/internal/nic"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wire"
)

func TestShardSeedStableAndDistinct(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 64; i++ {
		s := multicore.ShardSeed(1, i)
		if s2 := multicore.ShardSeed(1, i); s2 != s {
			t.Fatalf("shard %d seed not stable: %d vs %d", i, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("shards %d and %d collide on seed %d", prev, i, s)
		}
		seen[s] = i
	}
	// Different base seeds must not produce shifted copies of the same
	// stream (the flaw of naive base+i derivation).
	if multicore.ShardSeed(1, 1) == multicore.ShardSeed(2, 0) {
		t.Fatal("base 1 shard 1 collides with base 2 shard 0")
	}
}

func TestGroupShards(t *testing.T) {
	g := multicore.NewGroup(4, 7)
	if g.N() != 4 {
		t.Fatalf("N = %d", g.N())
	}
	for i, s := range g.Shards() {
		if s.ID != i || g.Shard(i) != s {
			t.Fatalf("shard %d misindexed", i)
		}
		if s.Seed != multicore.ShardSeed(7, i) {
			t.Fatalf("shard %d seed = %d", i, s.Seed)
		}
		if s.App == nil || s.App.Shard != i {
			t.Fatalf("shard %d app not tagged", i)
		}
	}
}

// shardLoad builds a generator→sink pair on the shard and floods it
// for window; it returns the NIC's transmitted-packet count.
func shardLoad(s *multicore.Shard, window sim.Duration) uint64 {
	app := s.App
	tx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0})
	rx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)
	rx.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { return true })
	pool := core.CreateMemPool(4096, nil)
	cache := pool.NewCache(256)
	q := tx.GetTxQueue(0)
	app.LaunchTask("tx", func(tk *core.Task) {
		bufs := make([]*mempool.Mbuf, mempool.DefaultBatchSize)
		for tk.Running() {
			n := cache.AllocBatch(bufs, 60)
			if n == 0 {
				tk.Sleep(sim.Microsecond)
				continue
			}
			tk.SendAll(q, bufs[:n])
		}
	})
	app.RunFor(window)
	return tx.GetStats().TxPackets
}

// TestGroupDeterministicAcrossRuns: the same seed yields bit-identical
// per-shard results no matter how the host schedules the goroutines.
func TestGroupDeterministicAcrossRuns(t *testing.T) {
	run := func() []uint64 {
		g := multicore.NewGroup(4, 42)
		out := make([]uint64, g.N())
		if err := g.Each(func(s *multicore.Shard) error {
			out[s.ID] = shardLoad(s, sim.Millisecond)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("shard %d differs across runs: %d vs %d", i, a[i], b[i])
		}
		if a[i] == 0 {
			t.Fatalf("shard %d transmitted nothing", i)
		}
	}
}

// TestGroupScalesWithShards: k independent line-rate shards deliver k
// times one shard's packets once merged — the Figure 4 execution model.
func TestGroupScalesWithShards(t *testing.T) {
	total := func(k int) uint64 {
		g := multicore.NewGroup(k, 9)
		counts := make([]uint64, k)
		_ = g.Each(func(s *multicore.Shard) error {
			counts[s.ID] = shardLoad(s, sim.Millisecond)
			return nil
		})
		var sum uint64
		for _, c := range counts {
			sum += c
		}
		return sum
	}
	one, four := total(1), total(4)
	if four < 4*one-8 || four > 4*one+8 {
		t.Fatalf("4 shards = %d pkts, want ~4x one shard (%d)", four, one)
	}
}

func TestLaunchAllAndRunFor(t *testing.T) {
	g := multicore.NewGroup(3, 5)
	seen := make([]int, g.N())
	g.LaunchAll("probe", func(s *multicore.Shard, tk *core.Task) {
		seen[s.ID] = tk.Shard() + 1
	})
	g.RunFor(sim.Microsecond)
	for i, v := range seen {
		if v != i+1 {
			t.Fatalf("shard %d: task saw shard %d", i, v-1)
		}
	}
}

func TestEachAggregatesErrors(t *testing.T) {
	g := multicore.NewGroup(3, 1)
	boom := errors.New("boom")
	err := g.Each(func(s *multicore.Shard) error {
		if s.ID == 1 {
			return fmt.Errorf("shard saw %w", boom)
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("err = %v", err)
	}
}

func TestEachPropagatesPanics(t *testing.T) {
	defer func() {
		r := recover()
		if r == nil || !strings.Contains(fmt.Sprint(r), "shard 2") {
			t.Fatalf("recover = %v", r)
		}
	}()
	g := multicore.NewGroup(3, 1)
	_ = g.Each(func(s *multicore.Shard) error {
		if s.ID == 2 {
			panic("kaboom")
		}
		return nil
	})
}

// TestMergedShardStats ties the subsystem to the stats merge layer:
// per-shard counters merged across k shards describe the union.
func TestMergedShardStats(t *testing.T) {
	g := multicore.NewGroup(4, 11)
	counters := make([]*stats.Counter, g.N())
	_ = g.Each(func(s *multicore.Shard) error {
		c := stats.NewCounter(stats.CounterConfig{Name: "tx", Window: 100 * sim.Microsecond})
		pkts := shardLoad(s, sim.Millisecond)
		c.Update(int(pkts), int(pkts)*60, sim.Time(sim.Millisecond))
		c.Finalize(sim.Time(sim.Millisecond))
		counters[s.ID] = c
		return nil
	})
	merged := stats.NewCounter(stats.CounterConfig{Name: "merged", Window: 100 * sim.Microsecond})
	var want uint64
	for _, c := range counters {
		want += c.TotalPackets
		merged.Merge(c)
	}
	if merged.TotalPackets != want || want == 0 {
		t.Fatalf("merged = %d, want %d (> 0)", merged.TotalPackets, want)
	}
}
