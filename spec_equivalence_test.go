// Spec-composition equivalence gate: a scenario composed from a
// declarative spec file runs byte-identically to the registered
// scenario it names — merged stats and model telemetry alike — across
// Cores {1,2,4} × Batch {1,32}. This is the tentpole contract of the
// spec layer: Compile happens at load time and hands the run to the
// exact compiled-Go path, so the determinism and invariance contracts
// hold for composed scenarios exactly as for compiled ones.
package repro

import (
	"fmt"
	"io"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/spec"
)

// specEquivalenceCases pairs each pinned example spec with the
// hand-built registered-scenario spec it must match: DefaultSpec plus
// exactly the overrides the file declares.
var specEquivalenceCases = []struct {
	name     string
	specFile string
	override func(s scenario.Spec) scenario.Spec
}{
	{
		name:     "softcbr",
		specFile: "examples/specs/softcbr-2mpps.yaml",
		override: func(s scenario.Spec) scenario.Spec {
			s.RateMpps = 2
			return s
		},
	},
	{
		name:     "loss-overload",
		specFile: "examples/specs/loss-overload.yaml",
		override: func(s scenario.Spec) scenario.Spec {
			s.RateMpps = 20
			s.Flows = scenario.FlowSet(4)
			return s
		},
	},
	{
		name:     "churn",
		specFile: "examples/specs/churn-million-flows.yaml",
		override: func(s scenario.Spec) scenario.Spec {
			s.RateMpps = 10
			s.ChurnFlows = 1024
			s.ChurnLife = 4
			return s
		},
	},
}

// runForEquivalence executes (name, sp) at the invariance test
// configuration and returns the report fingerprint and the model
// telemetry CSV.
func runForEquivalence(t *testing.T, name string, sp scenario.Spec, cores, batch int) (string, string) {
	t.Helper()
	sp.Runtime = 5 * sim.Millisecond
	sp.Seed = 5
	sp.Cores = cores
	sp.Batch = batch
	sp.TelemetryInterval = sim.Millisecond
	rep, err := scenario.Execute(name, sp, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry == nil {
		t.Fatalf("%s cores=%d batch=%d: no telemetry series", name, cores, batch)
	}
	var b strings.Builder
	if err := rep.Telemetry.WriteCSV(&b, false); err != nil {
		t.Fatal(err)
	}
	return reportFingerprint(rep), b.String()
}

// reportFingerprint digests every model field of a report — counters,
// rates, rows, per-flow slices, latency quartiles, notes — into a
// comparable string.
func reportFingerprint(r *scenario.Report) string {
	var b strings.Builder
	fmt.Fprintf(&b, "window=%d tx=%d/%d rx=%d/%d crc=%d missed=%d mpps=%.9g gbps=%.9g lostprobes=%d\n",
		r.Window, r.TxPackets, r.TxBytes, r.RxPackets, r.RxBytes, r.RxCRCErrors, r.RxMissed,
		r.RxMpps, r.RxGbpsWire, r.LostProbes)
	if r.Latency != nil && r.Latency.Count() > 0 {
		q1, q2, q3 := r.Latency.Quartiles()
		fmt.Fprintf(&b, "latency n=%d min=%v q=%v/%v/%v max=%v\n",
			r.Latency.Count(), r.Latency.Min(), q1, q2, q3, r.Latency.Max())
	}
	for _, f := range r.Flows {
		fmt.Fprintf(&b, "flow %s tx=%d rx=%d lost=%d reord=%d dup=%d",
			f.Name, f.TxPackets, f.RxPackets, f.Lost, f.Reordered, f.Duplicates)
		if f.Latency != nil && f.Latency.Count() > 0 {
			q1, q2, q3 := f.Latency.Quartiles()
			fmt.Fprintf(&b, " lat n=%d q=%v/%v/%v", f.Latency.Count(), q1, q2, q3)
		}
		b.WriteByte('\n')
	}
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "row %s=%.9g %s\n", row.Label, row.Value, row.Unit)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note %s\n", n)
	}
	return b.String()
}

func TestSpecComposedEquivalence(t *testing.T) {
	for _, tc := range specEquivalenceCases {
		t.Run(tc.name, func(t *testing.T) {
			doc, err := spec.Load(tc.specFile)
			if err != nil {
				t.Fatalf("load %s: %v", tc.specFile, err)
			}
			name, composed, err := doc.Compile()
			if err != nil {
				t.Fatalf("compile %s: %v", tc.specFile, err)
			}
			if name != tc.name {
				t.Fatalf("spec names scenario %q, want %q", name, tc.name)
			}
			sc, ok := scenario.Get(tc.name)
			if !ok {
				t.Fatalf("scenario %q not registered", tc.name)
			}
			registered := tc.override(sc.DefaultSpec())

			for _, cfg := range invarianceConfigs {
				gotFP, gotCSV := runForEquivalence(t, name, composed, cfg.cores, cfg.batch)
				wantFP, wantCSV := runForEquivalence(t, tc.name, registered, cfg.cores, cfg.batch)
				if gotFP != wantFP {
					t.Errorf("cores=%d batch=%d: spec-composed report differs from registered run\n want:\n%s\n got:\n%s",
						cfg.cores, cfg.batch, wantFP, gotFP)
				}
				if gotCSV != wantCSV {
					t.Errorf("cores=%d batch=%d: spec-composed telemetry differs from registered run\n want:\n%s\n got:\n%s",
						cfg.cores, cfg.batch, wantCSV, gotCSV)
				}
			}
		})
	}
}
