package repro

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/rate"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wire"
)

// TestQoSScenario runs the paper's §4 example end to end: two
// rate-limited flows, per-port receive accounting, and checks the flow
// ratio survives the full TX path, wire and RX path.
func TestQoSScenario(t *testing.T) {
	app := core.NewApp(1)
	tDev := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0, TxQueues: 2})
	rDev := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1, RxRing: 8192, RxPool: 16384})
	app.ConnectDevices(tDev, rDev, wire.PHY10GBaseT, 2)

	const pktSize = 124
	tDev.GetTxQueue(0).SetRatePPS(800e3) // background
	tDev.GetTxQueue(1).SetRatePPS(100e3) // foreground

	launch := func(q *nic.TxQueue, port uint16) {
		mem := core.CreateMemPool(4096, func(buf *mempool.Mbuf) {
			p := proto.UDPPacket{B: buf.Data[:pktSize]}
			p.Fill(proto.UDPPacketFill{
				PktLength: pktSize,
				EthSrc:    q.MAC(), EthDst: rDev.MAC(),
				IPDst:  proto.MustIPv4("192.168.1.1"),
				UDPSrc: 1234, UDPDst: port,
			})
		})
		app.LaunchTask("load", func(tk *core.Task) {
			bufs := mem.BufArray(0)
			base := proto.MustIPv4("10.0.0.1")
			rng := tk.Engine().Rand()
			for tk.Running() {
				n := tk.AllocAll(bufs, pktSize)
				if n == 0 {
					break
				}
				for _, b := range bufs.Slice(n) {
					proto.UDPPacket{B: b.Payload()}.IP().SetSrc(base + proto.IPv4(rng.Intn(255)))
				}
				core.OffloadUDPChecksums(bufs.Bufs, n)
				tk.SendAll(q, bufs.Bufs[:n])
			}
		})
	}
	launch(tDev.GetTxQueue(0), 42)
	launch(tDev.GetTxQueue(1), 43)

	counts := map[uint16]int{}
	badChecksums := 0
	app.LaunchTask("counter", func(tk *core.Task) {
		bufs := make([]*mempool.Mbuf, 256)
		for {
			n := tk.RecvPoll(rDev.GetRxQueue(0), bufs)
			if n == 0 {
				break
			}
			for _, m := range bufs[:n] {
				p := proto.UDPPacket{B: m.Payload()}
				if !p.VerifyChecksums() {
					badChecksums++
				}
				counts[p.UDP().DstPort()]++
				m.Free()
			}
		}
	})

	const runFor = 50 * sim.Millisecond
	var bg, fg int
	app.Eng.Schedule(sim.Time(runFor), func() { bg, fg = counts[42], counts[43] })
	app.RunFor(runFor)

	if badChecksums > 0 {
		t.Fatalf("%d packets failed checksum verification", badChecksums)
	}
	gotBG := float64(bg) / sim.Duration(runFor).Seconds()
	gotFG := float64(fg) / sim.Duration(runFor).Seconds()
	if math.Abs(gotBG-800e3)/800e3 > 0.02 {
		t.Errorf("background rate = %.0f, want 800k", gotBG)
	}
	if math.Abs(gotFG-100e3)/100e3 > 0.02 {
		t.Errorf("foreground rate = %.0f, want 100k", gotFG)
	}
}

// TestThroughputPatternIndependence is §8.3's closing observation: the
// achieved DuT throughput is the same regardless of the traffic pattern
// and the rate-control method that generates it.
func TestThroughputPatternIndependence(t *testing.T) {
	run := func(seed int64, useGap bool, pat rate.Pattern, pps float64) float64 {
		app := core.NewApp(seed)
		gen := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0})
		dutIn := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1})
		dutOut := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 2})
		sink := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 3})
		app.ConnectDevices(gen, dutIn, wire.PHY10GBaseT, 2)
		app.ConnectDevices(dutOut, sink, wire.PHY10GBaseT, 2)
		fwd := dut.New(app.Eng, dutIn.Port, dutOut.Port, dut.DefaultConfig())
		sink.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { return true })

		fill := func(m *mempool.Mbuf, i uint64) {
			p := proto.UDPPacket{B: m.Payload()}
			p.Fill(proto.UDPPacketFill{PktLength: 60,
				IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.1.0.1")})
		}
		if useGap {
			g := &core.GapTx{Queue: gen.GetTxQueue(0), Pattern: pat, PktSize: 60, Fill: fill}
			app.LaunchTask("gap", g.Run)
		} else {
			h := &core.HWRateTx{Queue: gen.GetTxQueue(0), PPS: pps, PktSize: 60, Fill: fill}
			app.LaunchTask("hw", h.Run)
		}
		const runFor = 20 * sim.Millisecond
		var fwdAtStop uint64
		app.Eng.Schedule(sim.Time(runFor), func() { fwdAtStop = fwd.Forwarded })
		app.RunFor(runFor)
		return float64(fwdAtStop) / sim.Duration(runFor).Seconds()
	}

	const pps = 1.5e6
	hwCBR := run(1, false, nil, pps)
	gapCBR := run(2, true, rate.NewCBRPPS(pps), pps)
	gapPoisson := run(3, true, rate.NewPoissonPPS(pps), pps)
	for name, got := range map[string]float64{
		"hw-cbr": hwCBR, "gap-cbr": gapCBR, "gap-poisson": gapPoisson,
	} {
		if math.Abs(got-pps)/pps > 0.02 {
			t.Errorf("%s throughput = %.3f Mpps, want 1.5", name, got/1e6)
		}
	}
}

// TestReflectorRoundTrip exercises the "respond to incoming traffic in
// real time" capability from the conclusions: a reflector task swaps
// MAC/IP addresses on received packets and sends them back; the
// originator verifies payload integrity over the round trip.
func TestReflectorRoundTrip(t *testing.T) {
	app := core.NewApp(5)
	a := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0})
	b := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1})
	app.ConnectDevices(a, b, wire.PHY10GBaseT, 2)

	// Reflector on device b.
	reflPool := core.CreateMemPool(2048, nil)
	app.LaunchTask("reflector", func(tk *core.Task) {
		bufs := make([]*mempool.Mbuf, 64)
		for {
			n := tk.RecvPoll(b.GetRxQueue(0), bufs)
			if n == 0 {
				break
			}
			for _, m := range bufs[:n] {
				out := reflPool.Alloc(m.Len)
				if out == nil {
					m.Free()
					continue
				}
				copy(out.Data, m.Payload())
				p := proto.UDPPacket{B: out.Payload()}
				eth := p.Eth()
				src, dst := eth.Src(), eth.Dst()
				eth.SetSrc(dst)
				eth.SetDst(src)
				ip := p.IP()
				s, d := ip.Src(), ip.Dst()
				ip.SetSrc(d)
				ip.SetDst(s)
				out.TxMeta.OffloadIPChecksum = true
				out.TxMeta.OffloadUDPChecksum = true
				m.Free()
				if !b.GetTxQueue(0).SendOne(out) {
					out.Free()
				}
			}
		}
	})

	// Originator on device a: send marked packets, verify echoes.
	pool := core.CreateMemPool(2048, nil)
	var sent, echoed, corrupt int
	app.LaunchTask("origin", func(tk *core.Task) {
		rx := make([]*mempool.Mbuf, 64)
		for i := 0; i < 500 && tk.Running(); i++ {
			m := pool.Alloc(80)
			p := proto.UDPPacket{B: m.Payload()}
			p.Fill(proto.UDPPacketFill{
				PktLength: 80,
				EthSrc:    a.MAC(), EthDst: b.MAC(),
				IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.0.0.2"),
				UDPSrc: uint16(i), UDPDst: 9999,
			})
			payload := p.Payload()
			payload[0], payload[1] = byte(i), byte(i>>8)
			p.CalcChecksums()
			if tk.SendAll(a.GetTxQueue(0), []*mempool.Mbuf{m}) == 1 {
				sent++
			}
			// Drain echoes opportunistically.
			n := a.GetRxQueue(0).Recv(rx)
			for _, e := range rx[:n] {
				ep := proto.UDPPacket{B: e.Payload()}
				if ep.IP().Dst() != proto.MustIPv4("10.0.0.1") || !ep.VerifyChecksums() {
					corrupt++
				}
				echoed++
				e.Free()
			}
			tk.Sleep(2 * sim.Microsecond)
		}
		// Final drain.
		for deadline := tk.Now().Add(sim.Millisecond); tk.Now() < deadline; {
			n := a.GetRxQueue(0).Recv(rx)
			if n == 0 {
				tk.Sleep(10 * sim.Microsecond)
				continue
			}
			for _, e := range rx[:n] {
				ep := proto.UDPPacket{B: e.Payload()}
				if !ep.VerifyChecksums() {
					corrupt++
				}
				echoed++
				e.Free()
			}
		}
	})
	app.RunFor(sim.Second)

	if sent != 500 {
		t.Fatalf("sent %d packets", sent)
	}
	if echoed < 495 {
		t.Fatalf("echoed only %d of %d", echoed, sent)
	}
	if corrupt != 0 {
		t.Fatalf("%d corrupted echoes", corrupt)
	}
}

// TestLatencyThroughDuTMatchesComponents checks that an end-to-end
// hardware-timestamped latency through the DuT decomposes into its
// physical components: two wire paths plus the DuT's internal latency.
func TestLatencyThroughDuTMatchesComponents(t *testing.T) {
	app := core.NewApp(6)
	gen := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0, TxQueues: 2})
	dutIn := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1})
	dutOut := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 2})
	sink := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 3})
	app.ConnectDevices(gen, dutIn, wire.PHY10GBaseT, 10)
	app.ConnectDevices(dutOut, sink, wire.PHY10GBaseT, 10)
	fwd := dut.New(app.Eng, dutIn.Port, dutOut.Port, dut.DefaultConfig())

	ts := core.NewTimestamper(gen.GetTxQueue(1), sink.Port)
	var h *stats.Histogram
	app.LaunchTask("probe", func(tk *core.Task) {
		h = ts.MeasureLatency(tk, 100, 50*sim.Microsecond)
	})
	app.RunFor(100 * sim.Millisecond)

	if h.Count() < 95 {
		t.Fatalf("only %d probes (lost %d)", h.Count(), ts.Lost)
	}
	wirePart := 2 * wire.PHY10GBaseT.PathLatency(10).Nanoseconds()
	minExpected := wirePart // wires alone
	med := h.Median().Nanoseconds()
	if med < minExpected {
		t.Fatalf("median %.0f ns below physical floor %.0f ns", med, minExpected)
	}
	// DuT internal latency (interrupt + service) dominates; the
	// forwarder's own mean must be consistent with the probe view.
	internal := fwd.MeanInternalLatency().Nanoseconds()
	if med < wirePart+internal/2 || med > wirePart+internal*4 {
		t.Fatalf("median %.0f ns inconsistent with wire %.0f + internal %.0f",
			med, wirePart, internal)
	}
}

// TestDeterministicReproduction: the entire layered stack reproduces
// identical results for identical seeds — the reproducibility claim
// the simulation substrate rests on.
func TestDeterministicReproduction(t *testing.T) {
	run := func() (uint64, uint64) {
		app := core.NewApp(99)
		tx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0})
		rx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1})
		app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)
		rx.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { return true })
		g := &core.GapTx{Queue: tx.GetTxQueue(0), Pattern: rate.NewPoissonPPS(2e6), PktSize: 60}
		app.LaunchTask("gap", g.Run)
		app.RunFor(5 * sim.Millisecond)
		st := tx.GetStats()
		return st.TxPackets, st.TxBytes
	}
	p1, b1 := run()
	p2, b2 := run()
	if p1 != p2 || b1 != b2 {
		t.Fatalf("non-deterministic: (%d,%d) vs (%d,%d)", p1, b1, p2, b2)
	}
}
