// Docs gates: every fenced `yaml` block in README.md and docs/*.md
// must validate as a complete scenario spec (a documented snippet is a
// runnable snippet), and every relative markdown link must resolve to
// a real file. CI runs these in the docs job.
package repro

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"

	"repro/internal/spec"
)

// docFiles returns README.md plus every markdown file under docs/.
func docFiles(t *testing.T) []string {
	t.Helper()
	files := []string{"README.md"}
	more, err := filepath.Glob("docs/*.md")
	if err != nil {
		t.Fatal(err)
	}
	files = append(files, more...)
	if len(more) == 0 {
		t.Fatal("docs/ holds no markdown files")
	}
	return files
}

// yamlSnippet is a fenced block tagged exactly `yaml`, with the line
// its content starts on.
type yamlSnippet struct {
	file string
	line int
	body string
}

// yamlSnippets extracts fenced blocks whose info string is exactly
// "yaml". Blocks tagged anything else (sh, go, plain) are skipped.
func yamlSnippets(t *testing.T, file string) []yamlSnippet {
	t.Helper()
	raw, err := os.ReadFile(file)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(string(raw), "\n")
	var out []yamlSnippet
	for i := 0; i < len(lines); i++ {
		if strings.TrimSpace(lines[i]) != "```yaml" {
			continue
		}
		var body strings.Builder
		start := i + 2 // 1-based line number of the first content line
		for i++; i < len(lines); i++ {
			if strings.TrimSpace(lines[i]) == "```" {
				break
			}
			body.WriteString(lines[i])
			body.WriteByte('\n')
		}
		if i == len(lines) {
			t.Fatalf("%s:%d: unterminated ```yaml block", file, start-1)
		}
		out = append(out, yamlSnippet{file: file, line: start, body: body.String()})
	}
	return out
}

func TestDocsSpecSnippets(t *testing.T) {
	total := 0
	for _, file := range docFiles(t) {
		for _, sn := range yamlSnippets(t, file) {
			total++
			name := fmt.Sprintf("%s:%d", sn.file, sn.line)
			if err := spec.Validate([]byte(sn.body), name); err != nil {
				t.Errorf("doc snippet does not validate: %v", err)
			}
		}
	}
	if total == 0 {
		t.Fatal("found no ```yaml snippets in the docs — extraction is broken")
	}
	t.Logf("validated %d yaml snippets", total)
}

var mdLink = regexp.MustCompile(`\[[^\]]*\]\(([^)\s]+)\)`)

func TestDocsMarkdownLinks(t *testing.T) {
	for _, file := range docFiles(t) {
		raw, err := os.ReadFile(file)
		if err != nil {
			t.Fatal(err)
		}
		inFence := false
		for i, line := range strings.Split(string(raw), "\n") {
			if strings.HasPrefix(strings.TrimSpace(line), "```") {
				inFence = !inFence
				continue
			}
			if inFence {
				continue
			}
			for _, m := range mdLink.FindAllStringSubmatch(line, -1) {
				target := m[1]
				if strings.HasPrefix(target, "http://") ||
					strings.HasPrefix(target, "https://") ||
					strings.HasPrefix(target, "mailto:") ||
					strings.HasPrefix(target, "#") {
					continue
				}
				if j := strings.IndexByte(target, '#'); j >= 0 {
					target = target[:j]
				}
				resolved := filepath.Join(filepath.Dir(file), target)
				if _, err := os.Stat(resolved); err != nil {
					t.Errorf("%s:%d: link target %q does not resolve (%v)", file, i+1, m[1], err)
				}
			}
		}
	}
}
