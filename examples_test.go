// TestExampleSpecsLoadAndRun keeps the example library honest: every
// file in examples/specs/ must load, validate, compile and complete a
// short run. Docs examples cannot rot — a schema change that orphans
// an example fails here, not in a user's terminal.
package repro

import (
	"io"
	"path/filepath"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/spec"
)

func TestExampleSpecsLoadAndRun(t *testing.T) {
	paths, err := filepath.Glob("examples/specs/*")
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 5 {
		t.Fatalf("examples/specs/ holds %d specs, want at least 5", len(paths))
	}
	for _, path := range paths {
		t.Run(filepath.Base(path), func(t *testing.T) {
			doc, err := spec.Load(path)
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			name, sp, err := doc.Compile()
			if err != nil {
				t.Fatalf("compile: %v", err)
			}
			// Shrink to smoke-test size: the example's declared traffic
			// shape runs unchanged, just not for its full duration.
			if sp.Runtime > 2*sim.Millisecond {
				sp.Runtime = 2 * sim.Millisecond
			}
			if sp.Probes > 20 {
				sp.Probes = 20
			}
			if sp.Samples > 2000 {
				sp.Samples = 2000
			}
			rep, err := scenario.Execute(name, sp, io.Discard)
			if err != nil {
				t.Fatalf("run: %v", err)
			}
			if rep.TxPackets == 0 && rep.RxPackets == 0 && len(rep.Rows) == 0 {
				t.Fatalf("%s: report is empty", name)
			}
		})
	}
}
