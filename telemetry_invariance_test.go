// Telemetry invariance gate: the merged model-column time series a
// sharded run reports is the single-core series, byte for byte, and
// batching the datapath never moves a counter across a window edge.
// This is the telemetry-level statement of the repo's standing
// invariance contract — accounting is invariant in Cores and Batch;
// wire timing is not (see flowFingerprint in internal/scenario's
// tests for the report-level line).
package repro

import (
	"io"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// telemetryCSV runs a scenario at the invariance configuration (5 ms,
// seed 5, 1 ms windows) and renders the merged model-column series.
func telemetryCSV(t *testing.T, name string, cores, batch int) string {
	t.Helper()
	sc, ok := scenario.Get(name)
	if !ok {
		t.Fatalf("scenario %q not registered", name)
	}
	spec := sc.DefaultSpec()
	spec.Runtime = 5 * sim.Millisecond
	spec.Seed = 5
	spec.Cores = cores
	spec.Batch = batch
	spec.TelemetryInterval = sim.Millisecond
	rep, err := scenario.Execute(name, spec, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry == nil {
		t.Fatalf("%s cores=%d batch=%d: no telemetry series", name, cores, batch)
	}
	var b strings.Builder
	if err := rep.Telemetry.WriteCSV(&b, false); err != nil {
		t.Fatal(err)
	}
	return b.String()
}

// dropCSVColumns removes the columns whose header name matches drop.
func dropCSVColumns(t *testing.T, csv string, drop func(name string) bool) string {
	t.Helper()
	lines := strings.Split(strings.TrimRight(csv, "\n"), "\n")
	keep := []int{}
	for i, name := range strings.Split(lines[0], ",") {
		if !drop(name) {
			keep = append(keep, i)
		}
	}
	var b strings.Builder
	for _, line := range lines {
		fields := strings.Split(line, ",")
		for j, i := range keep {
			if j > 0 {
				b.WriteByte(',')
			}
			b.WriteString(fields[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

var invarianceConfigs = []struct{ cores, batch int }{
	{1, 1}, {1, 32}, {2, 1}, {2, 32}, {4, 1}, {4, 32},
}

// TestTelemetrySoftCBRInvariant: below line rate every delivery
// completes a fixed wire latency after its grid slot, so the full
// model series — transmit and receive port counters — is byte-
// identical across Cores {1,2,4} × Batch {1,32}.
func TestTelemetrySoftCBRInvariant(t *testing.T) {
	want := telemetryCSV(t, "softcbr", 1, 1)
	for _, cfg := range invarianceConfigs[1:] {
		if got := telemetryCSV(t, "softcbr", cfg.cores, cfg.batch); got != want {
			t.Errorf("cores=%d batch=%d: telemetry differs from the 1-core series\n want:\n%s\n got:\n%s",
				cfg.cores, cfg.batch, want, got)
		}
	}
}

// TestTelemetryLossOverloadInvariant: batching is fully invisible
// (byte-identical series at every core count), and across core counts
// the transmit and flow-accounting columns are byte-identical — the
// admission gate and the slot grid are pure functions of the global
// slot index. The receive-port ingress counters are excluded from the
// cross-core comparison only: the admitted stream runs at exactly
// line rate, so on the single shared wire a frame can still be in
// flight at a window edge that the k half-loaded wires have already
// delivered — wire timing, not accounting.
func TestTelemetryLossOverloadInvariant(t *testing.T) {
	dropRxPort := func(name string) bool { return strings.HasPrefix(name, "rx.") }
	base := telemetryCSV(t, "loss-overload", 1, 1)
	want := dropCSVColumns(t, base, dropRxPort)
	for _, cfg := range invarianceConfigs[1:] {
		got := telemetryCSV(t, "loss-overload", cfg.cores, cfg.batch)
		if cfg.cores == 1 && got != base {
			t.Errorf("batch=%d: telemetry differs from the batch=1 series at one core", cfg.batch)
		}
		if reduced := dropCSVColumns(t, got, dropRxPort); reduced != want {
			t.Errorf("cores=%d batch=%d: tx/flow columns differ from the 1-core series\n want:\n%s\n got:\n%s",
				cfg.cores, cfg.batch, want, reduced)
		}
	}
	// Batch invariance holds in full — receive columns included — at
	// every core count.
	for _, cores := range []int{2, 4} {
		b1 := telemetryCSV(t, "loss-overload", cores, 1)
		b32 := telemetryCSV(t, "loss-overload", cores, 32)
		if b1 != b32 {
			t.Errorf("cores=%d: batch 1 vs 32 telemetry differs\n b1:\n%s\n b32:\n%s", cores, b1, b32)
		}
	}
}

// TestTelemetryLinkFlapInvariant: fault events are global sim-time
// events, so every shard flaps its private wire at the identical
// instants and the dropped-frame set is the same global-slot partition
// at any core count. At the scenario's 2 Mpps the delivery instants
// keep more margin to the flap and window edges than the copper PHY's
// jitter range, so the full model series — fault columns included — is
// byte-identical across Cores {1,2,4} × Batch {1,32}, like softcbr.
func TestTelemetryLinkFlapInvariant(t *testing.T) {
	want := telemetryCSV(t, "linkflap", 1, 1)
	if !strings.Contains(strings.Split(want, "\n")[0], "fault.fired") {
		t.Fatalf("fault probe columns missing from the linkflap series:\n%s", want)
	}
	for _, cfg := range invarianceConfigs[1:] {
		if got := telemetryCSV(t, "linkflap", cfg.cores, cfg.batch); got != want {
			t.Errorf("cores=%d batch=%d: telemetry differs from the 1-core series\n want:\n%s\n got:\n%s",
				cfg.cores, cfg.batch, want, got)
		}
	}
}

// TestTelemetryOverloadRecoverInvariant: the ramp grid and the
// overload window's admission gate are pure functions of the global
// slot index, so the transmit and flow columns are byte-identical
// across shardings; the receive-port ingress columns are excluded from
// the cross-core comparison for the same wire-timing reason as
// loss-overload (the overload window runs the shared wire at exactly
// line rate). Batch invariance holds in full at every core count.
func TestTelemetryOverloadRecoverInvariant(t *testing.T) {
	dropRxPort := func(name string) bool { return strings.HasPrefix(name, "rx.") }
	base := telemetryCSV(t, "overload-recover", 1, 1)
	want := dropCSVColumns(t, base, dropRxPort)
	for _, cfg := range invarianceConfigs[1:] {
		got := telemetryCSV(t, "overload-recover", cfg.cores, cfg.batch)
		if cfg.cores == 1 && got != base {
			t.Errorf("batch=%d: telemetry differs from the batch=1 series at one core", cfg.batch)
		}
		if reduced := dropCSVColumns(t, got, dropRxPort); reduced != want {
			t.Errorf("cores=%d batch=%d: tx/flow columns differ from the 1-core series\n want:\n%s\n got:\n%s",
				cfg.cores, cfg.batch, want, reduced)
		}
	}
	for _, cores := range []int{2, 4} {
		b1 := telemetryCSV(t, "overload-recover", cores, 1)
		b32 := telemetryCSV(t, "overload-recover", cores, 32)
		if b1 != b32 {
			t.Errorf("cores=%d: batch 1 vs 32 telemetry differs\n b1:\n%s\n b32:\n%s", cores, b1, b32)
		}
	}
}
