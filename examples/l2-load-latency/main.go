// Command l2-load-latency mirrors l2-load-latency.lua — rate-
// controlled load plus hardware-timestamped latency probes — as a thin
// wrapper over the "latency" scenario in the registry.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	rateKpps := flag.Float64("rate", 1000, "load rate [kpps] (0 = line rate)")
	size := flag.Int("size", 60, "frame size without FCS")
	probes := flag.Int("probes", 500, "timestamped probes")
	runMS := flag.Float64("runtime", 100, "simulated run time [ms]")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	pattern := scenario.PatternCBR
	if *rateKpps <= 0 {
		pattern = scenario.PatternLineRate
	}
	rep, err := scenario.Execute("latency", scenario.Spec{
		Pattern: pattern, RateMpps: *rateKpps / 1e3, PktSize: *size,
		Probes: *probes, Runtime: sim.FromSeconds(*runMS / 1e3), Seed: *seed,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.Print(os.Stdout)
}
