// Command l2-load-latency mirrors l2-load-latency.lua: one task
// generates rate-controlled load, a second task measures latencies with
// hardware timestamping (layer-2 PTP probes, one in flight, per-probe
// clock resync), and the receive side counts everything.
//
// Usage:
//
//	l2-load-latency [-rate 1000] [-size 60] [-probes 500] [-runtime 100] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wire"
)

func main() {
	var (
		rateKpps = flag.Float64("rate", 1000, "load rate [kpps] (0 = line rate)")
		size     = flag.Int("size", 60, "frame size without FCS")
		probes   = flag.Int("probes", 500, "timestamped probes")
		runMS    = flag.Float64("runtime", 100, "simulated run time [ms]")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	app := core.NewApp(*seed)
	// Two queues: queue 0 carries load, queue 1 carries timestamped
	// probes — the paper's two-queue timestamping arrangement (§6.4).
	txDev := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0, TxQueues: 2})
	rxDev := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1, RxRing: 4096, RxPool: 8192})
	app.ConnectDevices(txDev, rxDev, wire.PHY10GBaseT, 8.5)

	pktSize := *size
	pool := core.CreateMemPool(4096, func(buf *mempool.Mbuf) {
		p := proto.UDPPacket{B: buf.Data[:pktSize]}
		p.Fill(proto.UDPPacketFill{
			PktLength: pktSize,
			EthSrc:    txDev.MAC(), EthDst: rxDev.MAC(),
			IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.1.0.1"),
			UDPSrc: 1000, UDPDst: 2000,
		})
	})

	if *rateKpps > 0 {
		txDev.GetTxQueue(0).SetRatePPS(*rateKpps * 1e3)
	}

	app.LaunchTask("loadSlave", func(t *core.Task) {
		bufs := pool.BufArray(0)
		for t.Running() {
			n := t.AllocAll(bufs, pktSize)
			if n == 0 {
				break
			}
			core.OffloadUDPChecksums(bufs.Bufs, n)
			t.SendAll(txDev.GetTxQueue(0), bufs.Bufs[:n])
		}
	})

	rxCtr := stats.NewCounter(stats.CounterConfig{
		Name: "rx", Format: stats.FormatPlain, Out: os.Stdout, Window: 20 * sim.Millisecond})
	app.LaunchTask("counterSlave", func(t *core.Task) {
		bufs := make([]*mempool.Mbuf, 256)
		for {
			n := t.RecvPoll(rxDev.GetRxQueue(0), bufs)
			if n == 0 {
				break
			}
			for _, m := range bufs[:n] {
				rxCtr.CountPacket(m.Len, t.Now())
				m.Free()
			}
		}
		rxCtr.Finalize(t.Now())
	})

	ts := core.NewTimestamper(txDev.GetTxQueue(1), rxDev.Port)
	app.LaunchTask("timestampSlave", func(t *core.Task) {
		h := ts.MeasureLatency(t, *probes, 50*sim.Microsecond)
		fmt.Printf("\nlatency over %d probes (lost %d):\n", h.Count(), ts.Lost)
		fmt.Printf("  min %.1f ns  median %.1f ns  max %.1f ns  stddev %.1f ns\n",
			h.Min().Nanoseconds(), h.Median().Nanoseconds(),
			h.Max().Nanoseconds(), h.Std().Nanoseconds())
		q1, q2, q3 := h.Quartiles()
		fmt.Printf("  quartiles: %.1f / %.1f / %.1f ns\n",
			q1.Nanoseconds(), q2.Nanoseconds(), q3.Nanoseconds())
		fmt.Printf("  (8.5 m 10GBASE-T path: k + l/vp = %.1f ns)\n",
			wire.PHY10GBaseT.PathLatency(8.5).Nanoseconds())
	})

	app.RunFor(sim.FromSeconds(*runMS / 1e3))
}
