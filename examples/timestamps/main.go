// Command timestamps mirrors timestamps.lua: measure path latency with
// hardware timestamps over several cable lengths, then fit the
// modulation constant k and the propagation speed vp — the Table 3
// procedure, including the 82599's bimodal quantization on mid-grid
// cables.
//
// Usage:
//
//	timestamps [-nic 82599|x540] [-probes 2000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
)

func main() {
	var (
		probes = flag.Int("probes", 2000, "probes per cable")
		seed   = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	scale := experiments.ScaleTest
	scale.Probes = *probes
	res := experiments.RunTable3(scale, *seed)
	res.Print(os.Stdout)

	fmt.Printf("\nfitted: 82599 fiber k=%.1f ns vp=%.3fc (paper 310.7 / 0.72)\n",
		res.FiberK, res.FiberVPc)
	fmt.Printf("fitted: X540 copper k=%.1f ns vp=%.3fc (paper 2147.2 / 0.69)\n",
		res.CopperK, res.CopperVPc)
	fmt.Printf("8.5 m fiber observations: %v ns (paper: bimodal 345.6 / 358.4)\n",
		res.Fiber85Values)
}
