// Command timestamps mirrors timestamps.lua: hardware-timestamped path
// latency over several cable lengths, fitting the modulation constant
// k and the propagation speed vp (the Table 3 procedure, including the
// 82599's bimodal quantization). Thin wrapper over the registered
// "timestamps" scenario.
package main

import (
	"flag"
	"fmt"
	"os"

	_ "repro/internal/experiments" // registers the timestamps scenario
	"repro/internal/scenario"
)

func main() {
	probes := flag.Int("probes", 2000, "probes per cable")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	rep, err := scenario.Execute("timestamps", scenario.Spec{
		Probes: *probes, Seed: *seed,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.Print(os.Stdout)
}
