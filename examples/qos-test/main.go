// Command qos-test reproduces the paper's §4 example script
// (quality-of-service-test.lua, Listings 1-3) as a thin wrapper over
// the "qos" scenario: a prioritized foreground flow and a background
// flow on separate hardware-shaped queues, per-flow receive accounting
// and per-flow latency histograms.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	fgRate := flag.Float64("fg-rate", 100, "foreground rate [kpps]")
	bgRate := flag.Float64("bg-rate", 800, "background rate [kpps]")
	runMS := flag.Float64("runtime", 100, "simulated run time [ms]")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	sc, _ := scenario.Get("qos")
	spec := sc.DefaultSpec()
	spec.Flows[0].RateMpps = *fgRate / 1e3
	spec.Flows[1].RateMpps = *bgRate / 1e3
	spec.Runtime = sim.FromSeconds(*runMS / 1e3)
	spec.Seed = *seed
	rep, err := scenario.Execute("qos", spec, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.Print(os.Stdout)
}
