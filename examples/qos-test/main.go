// Command qos-test reproduces the paper's §4 example script,
// quality-of-service-test.lua (Listings 1-3): two transmit tasks
// generate a prioritized foreground UDP flow and a background UDP flow
// at hardware-controlled rates; a counter task tallies per-port
// throughput on the receive side; a timestamping task samples
// latencies of the foreground flow.
//
// Usage:
//
//	qos-test [-fg-rate 100] [-bg-rate 800] [-runtime 100] [-seed 1]
//
// Rates are in kpps; runtime in milliseconds.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wire"
)

const pktSize = 124 // PKT_SIZE from the example script

func main() {
	var (
		fgRate = flag.Float64("fg-rate", 100, "foreground rate [kpps]")
		bgRate = flag.Float64("bg-rate", 800, "background rate [kpps]")
		runMS  = flag.Float64("runtime", 100, "simulated run time [ms]")
		seed   = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	// master (Listing 1): configure one TX device with two queues and
	// one RX device, set per-queue rates, launch the slaves.
	app := core.NewApp(*seed)
	tDev := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0, TxQueues: 2, RxQueues: 1})
	rDev := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1, RxRing: 4096, RxPool: 8192})
	app.ConnectDevices(tDev, rDev, wire.PHY10GBaseT, 2)

	tDev.GetTxQueue(0).SetRatePPS(*bgRate * 1e3)
	tDev.GetTxQueue(1).SetRatePPS(*fgRate * 1e3)

	app.LaunchTask("loadSlave-bg", func(t *core.Task) { loadSlave(t, tDev.GetTxQueue(0), rDev, 42) })
	app.LaunchTask("loadSlave-fg", func(t *core.Task) { loadSlave(t, tDev.GetTxQueue(1), rDev, 43) })
	app.LaunchTask("counterSlave", func(t *core.Task) { counterSlave(t, rDev.GetRxQueue(0)) })

	// Timestamping task from the full example: sample foreground-path
	// latencies with hardware timestamps.
	ts := core.NewTimestamper(tDev.GetTxQueue(1), rDev.Port)
	app.LaunchTask("timestamper", func(t *core.Task) {
		h := ts.MeasureLatency(t, 200, 100*sim.Microsecond)
		fmt.Printf("[latency] %d samples: median %.0f ns, min %.0f, max %.0f\n",
			h.Count(), h.Median().Nanoseconds(), h.Min().Nanoseconds(), h.Max().Nanoseconds())
	})

	app.RunFor(sim.FromSeconds(*runMS / 1e3)) // mg.waitForSlaves()
}

// loadSlave is Listing 2: pre-fill a mempool, then touch only the
// source IP per packet, offload checksums, send.
func loadSlave(t *core.Task, queue *nic.TxQueue, rDev *core.Device, port uint16) {
	mem := core.CreateMemPool(4096, func(buf *mempool.Mbuf) {
		p := proto.UDPPacket{B: buf.Data[:pktSize]}
		p.Fill(proto.UDPPacketFill{
			PktLength: pktSize,
			EthSrc:    queue.MAC(), // "get MAC from device"
			EthDst:    rDev.MAC(),
			IPDst:     proto.MustIPv4("192.168.1.1"),
			UDPSrc:    1234,
			UDPDst:    port,
		})
	})
	txCtr := stats.NewCounter(stats.CounterConfig{
		Name: fmt.Sprintf("tx-port-%d", port), Format: stats.FormatPlain,
		Out: os.Stdout, Window: 20 * sim.Millisecond})
	baseIP := proto.MustIPv4("10.0.0.1")
	bufs := mem.BufArray(0)
	rng := t.Engine().Rand()
	for t.Running() {
		n := t.AllocAll(bufs, pktSize)
		if n == 0 {
			break
		}
		for _, buf := range bufs.Slice(n) {
			pkt := proto.UDPPacket{B: buf.Payload()}
			pkt.IP().SetSrc(baseIP + proto.IPv4(rng.Intn(255)))
		}
		core.OffloadUDPChecksums(bufs.Bufs, n)
		sent := t.SendAll(queue, bufs.Bufs[:n])
		txCtr.Update(sent, sent*pktSize, t.Now())
	}
	txCtr.Finalize(t.Now())
}

// counterSlave is Listing 3: count received packets per UDP
// destination port.
func counterSlave(t *core.Task, queue *nic.RxQueue) {
	bufs := make([]*mempool.Mbuf, 128)
	counters := map[uint16]*stats.Counter{}
	for {
		rx := t.RecvPoll(queue, bufs)
		if rx == 0 {
			break
		}
		for _, buf := range bufs[:rx] {
			port := proto.UDPPacket{B: buf.Payload()}.UDP().DstPort()
			ctr := counters[port]
			if ctr == nil {
				ctr = stats.NewCounter(stats.CounterConfig{
					Name: fmt.Sprintf("rx-port-%d", port), Format: stats.FormatPlain,
					Out: os.Stdout, Window: 20 * sim.Millisecond})
				counters[port] = ctr
			}
			ctr.CountPacket(buf.Len, t.Now())
			buf.Free()
		}
	}
	for _, ctr := range counters {
		ctr.Finalize(t.Now())
	}
}
