// Command quickstart is the minimal end-to-end example — the paper's
// Listing 2/3 flood — as a thin wrapper over the "flood" scenario in
// the internal/scenario registry.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	runMS := flag.Float64("runtime", 50, "simulated run time [ms]")
	size := flag.Int("size", 60, "frame size without FCS")
	rate := flag.Float64("rate", 0, "target rate [Mpps] (0 = line rate)")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	rep, err := scenario.Execute("flood", scenario.Spec{
		Pattern: scenario.PatternLineRate, RateMpps: *rate, PktSize: *size,
		Runtime: sim.FromSeconds(*runMS / 1e3), Seed: *seed,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.Print(os.Stdout)
}
