// Command quickstart is the minimal end-to-end example: one transmit
// task floods minimum-sized UDP packets with randomized source
// addresses from a pre-filled mempool (the paper's Listing 2 pattern),
// while a receive task counts the traffic per UDP destination port
// (Listing 3). Runs entirely on the simulated testbed.
//
// Usage:
//
//	quickstart [-runtime 50ms] [-size 60] [-rate 0] [-seed 1]
//
// A -rate of 0 sends at line rate; otherwise the hardware rate limiter
// shapes to the given Mpps.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/wire"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		runMS = flag.Float64("runtime", 50, "simulated run time in milliseconds")
		size  = flag.Int("size", 60, "frame size without FCS")
		rate  = flag.Float64("rate", 0, "target rate in Mpps (0 = line rate)")
		seed  = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	app := core.NewApp(*seed)
	txDev := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0})
	rxDev := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1, RxRing: 4096, RxPool: 8192})
	app.ConnectDevices(txDev, rxDev, wire.PHY10GBaseT, 2)

	pktSize := *size
	pool := core.CreateMemPool(4096, func(buf *mempool.Mbuf) {
		p := proto.UDPPacket{B: buf.Data[:pktSize]}
		p.Fill(proto.UDPPacketFill{
			PktLength: pktSize,
			EthSrc:    txDev.MAC(),
			EthDst:    rxDev.MAC(),
			IPSrc:     proto.MustIPv4("10.0.0.1"),
			IPDst:     proto.MustIPv4("192.168.1.1"),
			UDPSrc:    1234,
			UDPDst:    42,
		})
	})

	if *rate > 0 {
		txDev.GetTxQueue(0).SetRatePPS(*rate * 1e6)
	}

	txCtr := stats.NewCounter(stats.CounterConfig{
		Name: "tx", Format: stats.FormatPlain, Out: os.Stdout, Window: 10 * sim.Millisecond})
	rxCtr := stats.NewCounter(stats.CounterConfig{
		Name: "rx", Format: stats.FormatPlain, Out: os.Stdout, Window: 10 * sim.Millisecond})

	// loadSlave (Listing 2).
	app.LaunchTask("loadSlave", func(t *core.Task) {
		flood := &core.UDPFlood{
			Queue:   txDev.GetTxQueue(0),
			PktSize: pktSize,
			BaseIP:  proto.MustIPv4("10.0.0.1"),
			Pool:    pool,
		}
		bufs := pool.BufArray(0)
		rng := t.Engine().Rand()
		for t.Running() {
			n := t.AllocAll(bufs, pktSize)
			if n == 0 {
				break
			}
			for _, m := range bufs.Slice(n) {
				pkt := proto.UDPPacket{B: m.Payload()}
				pkt.IP().SetSrc(flood.BaseIP + proto.IPv4(rng.Intn(256)))
			}
			core.OffloadUDPChecksums(bufs.Bufs, n)
			sent := t.SendAll(txDev.GetTxQueue(0), bufs.Bufs[:n])
			txCtr.Update(sent, sent*pktSize, t.Now())
		}
		txCtr.Finalize(t.Now())
	})

	// counterSlave (Listing 3).
	app.LaunchTask("counterSlave", func(t *core.Task) {
		bufs := make([]*mempool.Mbuf, 128)
		for {
			n := t.RecvPoll(rxDev.GetRxQueue(0), bufs)
			if n == 0 {
				break
			}
			for _, m := range bufs[:n] {
				rxCtr.CountPacket(m.Len, t.Now())
				m.Free()
			}
		}
		rxCtr.Finalize(t.Now())
	})

	app.RunFor(sim.FromSeconds(*runMS / 1e3))

	st := txDev.GetStats()
	fmt.Printf("\nNIC stats: tx=%d packets rx=%d packets missed=%d\n",
		st.TxPackets, rxDev.GetStats().RxPackets, rxDev.GetStats().RxMissed)
	fmt.Printf("achieved: %.2f Mpps (line rate for %dB frames: %.2f Mpps)\n",
		rxCtr.AverageMpps(), pktSize+proto.FCSLen,
		wire.LineRatePPS(wire.Speed10G, pktSize+proto.FCSLen)/1e6)
	return 0
}
