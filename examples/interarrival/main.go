// Command interarrival mirrors inter-arrival-times.lua: an Intel 82580
// GbE receiver timestamps every received packet in line rate with 64 ns
// precision (§6), and the script histograms the inter-arrival times —
// the measurement behind Figure 8 and Table 4.
//
// Usage:
//
//	interarrival [-gen moongen|pktgen|zsend] [-rate 500] [-samples 50000] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/sim"
)

func main() {
	var (
		gen     = flag.String("gen", "moongen", "generator: moongen, pktgen or zsend")
		rate    = flag.Float64("rate", 500, "target rate [kpps]")
		samples = flag.Int("samples", 50000, "inter-arrival samples to collect")
		seed    = flag.Int64("seed", 1, "simulation seed")
		csv     = flag.Bool("csv", false, "dump the histogram as CSV")
	)
	flag.Parse()

	var g experiments.Generator
	switch *gen {
	case "moongen":
		g = experiments.GenMoonGen
	case "pktgen":
		g = experiments.GenPktgen
	case "zsend":
		g = experiments.GenZsend
	default:
		fmt.Printf("unknown generator %q\n", *gen)
		os.Exit(2)
	}

	scale := experiments.ScaleTest
	scale.Samples = *samples
	res := experiments.RunInterArrival(scale, *seed, g, *rate*1e3)

	fmt.Printf("%s at %.0f kpps: %d inter-arrival samples (64 ns bins)\n",
		res.Generator, res.RateKpps, res.Hist.Count())
	fmt.Printf("  micro-bursts (back-to-back): %.2f%%\n", res.MicroBurst*100)
	for _, tol := range []int{64, 128, 256, 512} {
		fmt.Printf("  within ±%3d ns of target: %.1f%%\n", tol, res.Within[tol]*100)
	}
	fmt.Printf("  mean %.2f µs  std %.2f µs\n",
		res.Hist.Mean().Microseconds(), res.Hist.Std().Microseconds())

	if *csv {
		res.Hist.WriteCSV(os.Stdout)
	} else {
		// Compact ASCII histogram around the interesting region.
		fmt.Println("\nhistogram (probability per 64 ns bin):")
		max := uint64(0)
		for _, b := range res.Hist.Bins() {
			if b.Count > max {
				max = b.Count
			}
		}
		for _, b := range res.Hist.Bins() {
			frac := float64(b.Count) / float64(res.Hist.Count())
			if frac < 0.002 {
				continue
			}
			bar := int(float64(b.Count) / float64(max) * 50)
			fmt.Printf("  %7.2f µs %6.2f%% %s\n",
				sim.Duration(b.Lo).Microseconds(), frac*100, bars(bar))
		}
	}
}

func bars(n int) string {
	s := make([]byte, n)
	for i := range s {
		s[i] = '#'
	}
	return string(s)
}
