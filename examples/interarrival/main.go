// Command interarrival mirrors inter-arrival-times.lua: an Intel 82580
// GbE receiver timestamps every packet at line rate with 64 ns
// precision (§6) and the inter-arrival times are histogrammed — the
// measurement behind Figure 8 and Table 4. Thin wrapper over the
// registered "interarrival-<generator>" scenarios.
package main

import (
	"flag"
	"fmt"
	"os"

	_ "repro/internal/experiments" // registers the interarrival-* scenarios
	"repro/internal/scenario"
)

func main() {
	gen := flag.String("gen", "moongen", "generator: moongen, pktgen or zsend")
	rate := flag.Float64("rate", 500, "target rate [kpps]")
	samples := flag.Int("samples", 50000, "inter-arrival samples to collect")
	seed := flag.Int64("seed", 1, "simulation seed")
	csv := flag.Bool("csv", false, "dump the histogram as CSV")
	flag.Parse()

	rep, err := scenario.Execute("interarrival-"+*gen, scenario.Spec{
		RateMpps: *rate / 1e3, Samples: *samples, Seed: *seed,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *csv {
		rep.Latency.WriteCSV(os.Stdout)
		return
	}
	rep.Print(os.Stdout)
}
