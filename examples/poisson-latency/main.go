// Command poisson-latency mirrors l2-poisson-load-latency.lua: Poisson
// traffic generated with the paper's CRC-gap software rate control (§8)
// against the simulated Open vSwitch forwarder, with hardware-
// timestamped latency probes through the DuT — the Figure 11 setup.
//
// Usage:
//
//	poisson-latency [-rate 1.0] [-pattern poisson] [-probes 300] [-runtime 100] [-seed 1]
package main

import (
	"flag"
	"fmt"

	"repro/internal/core"
	"repro/internal/dut"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/rate"
	"repro/internal/sim"
	"repro/internal/wire"
)

func main() {
	var (
		rateMpps = flag.Float64("rate", 1.0, "average load [Mpps]")
		pattern  = flag.String("pattern", "poisson", "traffic pattern: poisson or cbr")
		probes   = flag.Int("probes", 300, "timestamped probes")
		runMS    = flag.Float64("runtime", 100, "simulated run time [ms]")
		seed     = flag.Int64("seed", 1, "simulation seed")
	)
	flag.Parse()

	app := core.NewApp(*seed)
	gen := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0, TxQueues: 2})
	dutIn := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1})
	dutOut := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 2})
	sink := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 3, RxRing: 4096, RxPool: 8192})
	app.ConnectDevices(gen, dutIn, wire.PHY10GBaseT, 2)
	app.ConnectDevices(dutOut, sink, wire.PHY10GBaseT, 2)

	fwd := dut.New(app.Eng, dutIn.Port, dutOut.Port, dut.DefaultConfig())

	var pat rate.Pattern
	switch *pattern {
	case "poisson":
		pat = rate.NewPoissonPPS(*rateMpps * 1e6)
	case "cbr":
		pat = rate.NewCBRPPS(*rateMpps * 1e6)
	default:
		fmt.Printf("unknown pattern %q\n", *pattern)
		return
	}

	const pktSize = 60
	gapTx := &core.GapTx{
		Queue:   gen.GetTxQueue(0),
		Pattern: pat,
		PktSize: pktSize,
		Fill: func(m *mempool.Mbuf, i uint64) {
			p := proto.UDPPacket{B: m.Payload()}
			p.Fill(proto.UDPPacketFill{
				PktLength: pktSize,
				IPSrc:     proto.MustIPv4("10.0.0.1"),
				IPDst:     proto.MustIPv4("10.1.0.1"),
				UDPSrc:    1000, UDPDst: 2000,
			})
		},
	}
	app.LaunchTask("gap-load", gapTx.Run)

	// Drain the sink so its rings don't overflow silently.
	app.LaunchTask("sink-drain", func(t *core.Task) {
		bufs := make([]*mempool.Mbuf, 256)
		for t.Running() {
			if n := sink.GetRxQueue(0).Recv(bufs); n > 0 {
				core.FreeBatch(bufs, n)
			} else {
				t.Sleep(50 * sim.Microsecond)
			}
		}
	})

	ts := core.NewTimestamper(gen.GetTxQueue(1), sink.Port)
	ts.Timeout = 5 * sim.Millisecond
	app.LaunchTask("timestamping", func(t *core.Task) {
		t.Sleep(sim.Millisecond) // let the load ramp up
		h := ts.MeasureLatency(t, *probes, 100*sim.Microsecond)
		q1, q2, q3 := h.Quartiles()
		fmt.Printf("pattern=%s load=%.2f Mpps: %d probes (lost %d)\n",
			pat.Name(), *rateMpps, h.Count(), ts.Lost)
		fmt.Printf("  latency quartiles: %.1f / %.1f / %.1f µs\n",
			q1.Microseconds(), q2.Microseconds(), q3.Microseconds())
	})

	app.RunFor(sim.FromSeconds(*runMS / 1e3))

	fmt.Printf("\nDuT: forwarded=%d dropped=%d interrupts=%d (%.0f Hz)\n",
		fwd.Forwarded, fwd.Dropped, fwd.Interrupts,
		fwd.InterruptRate(sim.FromSeconds(*runMS/1e3)))
	fmt.Printf("generator: %d real packets, %d invalid fillers (dropped by DuT NIC: %d)\n",
		gapTx.Sent, gapTx.Fillers, dutIn.GetStats().RxCRCErrors)
}
