// Command poisson-latency mirrors l2-poisson-load-latency.lua: CRC-gap
// Poisson (or CBR) traffic through the simulated Open vSwitch DuT with
// hardware-timestamped latency probes — the Figure 11 setup — as a
// thin wrapper over the "poisson"/"cbr" scenarios with Spec.UseDuT.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/scenario"
	"repro/internal/sim"
)

func main() {
	rateMpps := flag.Float64("rate", 1.0, "average load [Mpps]")
	pattern := flag.String("pattern", "poisson", "traffic pattern: poisson or cbr")
	probes := flag.Int("probes", 300, "timestamped probes")
	runMS := flag.Float64("runtime", 100, "simulated run time [ms]")
	seed := flag.Int64("seed", 1, "simulation seed")
	flag.Parse()

	rep, err := scenario.Execute(*pattern, scenario.Spec{
		Pattern: scenario.Pattern(*pattern), RateMpps: *rateMpps, UseDuT: true,
		Probes: *probes, Runtime: sim.FromSeconds(*runMS / 1e3), Seed: *seed,
	}, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	rep.Print(os.Stdout)
}
