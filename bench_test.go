// Package repro's top-level benchmarks regenerate every table and
// figure of the paper's evaluation (one benchmark per experiment,
// reporting headline numbers as custom metrics) and measure the real Go
// costs of the per-packet operations priced by Table 1 and Table 2.
//
// Run with:
//
//	go test -bench=. -benchmem
package repro

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/flow"
	"repro/internal/mempool"
	"repro/internal/nic"
	"repro/internal/proto"
	"repro/internal/rate"
	"repro/internal/scenario"
	"repro/internal/sim"
	"repro/internal/spec"
	"repro/internal/telemetry"
	"repro/internal/wire"
)

// benchScale keeps the figure benchmarks quick; run cmd/benchtab -full
// for paper-scale sample counts.
var benchScale = experiments.ScaleTest

// reportSimWall reports the sim/wall ratio — total simulated time over
// total wall time, > 1 means faster than realtime — for experiment
// benchmarks whose results carry a Simulated duration. The ratio is a
// first-class performance metric: benchtab -gobench records it into
// BENCH_baseline.json and the bench-check gate fails if it collapses.
func reportSimWall(b *testing.B, simNS float64) {
	if wall := b.Elapsed().Nanoseconds(); wall > 0 && simNS > 0 {
		b.ReportMetric(simNS/float64(wall), "sim/wall")
	}
}

// --- §5.2 / Figures 2-4: throughput experiments ----------------------

func BenchmarkFreqSweepVsPktgen(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFreqSweep(benchScale, 1)
		b.ReportMetric(r.MinLineRateFreqMoonGen, "moongen-linerate-GHz")
		b.ReportMetric(r.MinLineRateFreqPktgen, "pktgen-linerate-GHz")
		b.ReportMetric(r.PktgenAt15, "pktgen-at-1.5GHz-Mpps")
	}
}

func BenchmarkFig2MultiCoreScaling(b *testing.B) {
	var simNS float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig2(benchScale, 2)
		simNS += r.Simulated.Nanoseconds()
		b.ReportMetric(r.Mpps[0], "1core-Mpps")
		b.ReportMetric(r.Mpps[7], "8core-Mpps")
	}
	reportSimWall(b, simNS)
}

func BenchmarkFig3XL710(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig3(benchScale, 3)
		b.ReportMetric(r.WireGbps[1][0], "64B-2core-Gbps")
		b.ReportMetric(r.WireGbps[1][6], "256B-2core-Gbps")
	}
}

func BenchmarkFig4Scaling120G(b *testing.B) {
	var simNS float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig4(benchScale, 4)
		simNS += r.Simulated.Nanoseconds()
		b.ReportMetric(r.Mpps[11], "12core-Mpps") // paper: 178.5
	}
	reportSimWall(b, simNS)
}

// BenchmarkMulticoreScaling runs the Figure-4 table on the sharded
// multicore subsystem: real goroutines, one engine and port per core.
// The metrics are the headline scaling points; ns/op is the wall cost
// of simulating the whole 2x12-point table, which is also the
// subsystem's parallel-execution benchmark.
func BenchmarkMulticoreScaling(b *testing.B) {
	var simNS float64
	for i := 0; i < b.N; i++ {
		r := experiments.RunMulticoreScaling(benchScale, 14)
		simNS += r.Simulated.Nanoseconds()
		b.ReportMetric(r.Mpps[0], "1core-Mpps")
		b.ReportMetric(r.Mpps[3], "4core-Mpps")
		b.ReportMetric(r.Mpps[11], "12core-Mpps") // paper: 178.5
		b.ReportMetric(r.PerCoreMpps, "percore-Mpps")
	}
	reportSimWall(b, simNS)
}

func BenchmarkCostEstimate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunCostEstimate(benchScale, 5)
		b.ReportMetric(r.PredictedMpps, "predicted-Mpps")
		b.ReportMetric(r.SimulatedMpps, "simulated-Mpps")
	}
}

func BenchmarkPacketSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunSizeSweep(benchScale, 6)
		b.ReportMetric(r.MppsTx[0], "64B-Mpps")
		b.ReportMetric(r.MppsTx[len(r.MppsTx)-1], "128B-Mpps")
	}
}

// --- Table 1: real Go costs of the basic operations ------------------
// The paper's Table 1 prices DPDK+LuaJIT operations in CPU cycles; the
// benches below price this repository's equivalents in ns/op. The
// *shape* must match: IO dominates, modification is cheap, transport
// offloads cost more than IP offload.

// benchPair builds a connected port pair outside the timed section.
func benchPair(seed int64) (*core.App, *core.Device, *core.Device, *mempool.Pool) {
	app := core.NewApp(seed)
	// TxTrain matches the 63-frame feed bursts: the MAC commits one
	// whole burst per scheduler event. Train length only coalesces
	// events — frame departure times stay on the per-frame wire grid —
	// so the benchmarked datapath work per packet is unchanged.
	tx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0, TxTrain: 63})
	rx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)
	rx.SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { return true })
	tx.Link().SetDeliverySlack(nic.SinkDeliverySlack(tx.Speed()))
	pool := core.CreateSizedMemPool(8192, 256, func(m *mempool.Mbuf) {
		p := proto.UDPPacket{B: m.Data[:60]}
		p.Fill(proto.UDPPacketFill{PktLength: 60,
			IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.1.0.1"),
			UDPSrc: 1234, UDPDst: 5678})
	})
	return app, tx, rx, pool
}

// BenchmarkTable1PacketIO is the baseline: alloc a batch, send it,
// drive the simulation until transmitted, recycle.
func BenchmarkTable1PacketIO(b *testing.B) {
	app, tx, _, pool := benchPair(1)
	q := tx.GetTxQueue(0)
	batch := make([]*mempool.Mbuf, 63)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := pool.AllocBatch(batch, 60)
		app.Eng.Schedule(app.Eng.Now(), func() { q.Send(batch[:n]) })
		app.Eng.RunAll() // transmit + recycle everything
	}
}

func BenchmarkTable1Modification(b *testing.B) {
	_, _, _, pool := benchPair(2)
	m := pool.Alloc(60)
	pkt := proto.UDPPacket{B: m.Payload()}
	base := proto.MustIPv4("10.0.0.1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.IP().SetSrc(base + proto.IPv4(i&0xff))
	}
}

func BenchmarkTable1ModificationTwoCachelines(b *testing.B) {
	_, _, _, pool := benchPair(3)
	m := pool.Alloc(124)
	pkt := proto.UDPPacket{B: m.Payload()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.IP().SetSrc(proto.IPv4(i))
		pkt.Payload()[70] = byte(i) // second cacheline
	}
}

func BenchmarkTable1OffloadIP(b *testing.B) {
	_, _, _, pool := benchPair(4)
	m := pool.Alloc(60)
	ip := proto.UDPPacket{B: m.Payload()}.IP()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ip.CalcChecksum() // what the offload engine executes
	}
}

func BenchmarkTable1OffloadUDP(b *testing.B) {
	_, _, _, pool := benchPair(5)
	m := pool.Alloc(60)
	pkt := proto.UDPPacket{B: m.Payload()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.CalcChecksums()
	}
}

func BenchmarkTable1OffloadTCP(b *testing.B) {
	_, _, _, pool := benchPair(6)
	m := pool.Alloc(60)
	pkt := proto.TCPPacket{B: m.Payload()}
	pkt.Fill(proto.TCPPacketFill{PktLength: 60,
		IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.1.0.1"),
		TCPSrc: 1, TCPDst: 2})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pkt.CalcChecksums()
	}
}

// --- Table 2: randomized versus counter-based field variation --------

func benchFields(b *testing.B, fields int, useRand bool) {
	buf := make([]byte, 60)
	pkt := proto.UDPPacket{B: buf}
	pkt.Fill(proto.UDPPacketFill{PktLength: 60})
	rng := rand.New(rand.NewSource(1))
	var ctr uint32
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for f := 0; f < fields; f++ {
			var v uint32
			if useRand {
				v = rng.Uint32()
			} else {
				ctr++
				v = ctr
			}
			switch f & 3 {
			case 0:
				pkt.IP().SetSrc(proto.IPv4(v))
			case 1:
				pkt.IP().SetDst(proto.IPv4(v))
			case 2:
				pkt.UDP().SetSrcPort(uint16(v))
			case 3:
				pkt.UDP().SetDstPort(uint16(v))
			}
		}
	}
}

func BenchmarkTable2Rand1Field(b *testing.B)    { benchFields(b, 1, true) }
func BenchmarkTable2Rand2Fields(b *testing.B)   { benchFields(b, 2, true) }
func BenchmarkTable2Rand4Fields(b *testing.B)   { benchFields(b, 4, true) }
func BenchmarkTable2Rand8Fields(b *testing.B)   { benchFields(b, 8, true) }
func BenchmarkTable2Counter1Field(b *testing.B) { benchFields(b, 1, false) }
func BenchmarkTable2Counter2Fields(b *testing.B) {
	benchFields(b, 2, false)
}
func BenchmarkTable2Counter4Fields(b *testing.B) {
	benchFields(b, 4, false)
}
func BenchmarkTable2Counter8Fields(b *testing.B) {
	benchFields(b, 8, false)
}

// --- §6 / Table 3: timestamping -------------------------------------

func BenchmarkTable3Timestamping(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scale := benchScale
		scale.Probes = 300
		r := experiments.RunTable3(scale, 7)
		b.ReportMetric(r.FiberK, "fiber-k-ns")     // paper: 310.7
		b.ReportMetric(r.FiberVPc, "fiber-vp-c")   // paper: 0.72
		b.ReportMetric(r.CopperK, "copper-k-ns")   // paper: 2147.2
		b.ReportMetric(r.CopperVPc, "copper-vp-c") // paper: 0.69
	}
}

func BenchmarkClockSync(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunClockSync(benchScale, 8)
		b.ReportMetric(r.MaxErrorNS, "worst-sync-error-ns") // paper: ≤19.2
	}
}

func BenchmarkClockDrift(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunDrift(benchScale, 9)
		b.ReportMetric(r.MeasuredPPM, "drift-us-per-s") // paper: 35
	}
}

// --- §7 / Figures 7-8, Table 4: rate control -------------------------

func BenchmarkFig7InterruptRate(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig7(benchScale, 11)
		peak := 0.0
		for _, v := range r.MoonGen {
			if v > peak {
				peak = v
			}
		}
		b.ReportMetric(peak, "moongen-peak-Hz") // paper: ~1.5e5
		b.ReportMetric(r.Zsend[4], "zsend-1Mpps-Hz")
	}
}

func BenchmarkFig8InterArrival(b *testing.B) {
	for i := 0; i < b.N; i++ {
		scale := benchScale
		scale.Samples = 20000
		r := experiments.RunTable4(scale, 10)
		for _, c := range r.Cells {
			if c.Generator == experiments.GenMoonGen && c.RateKpps == 500 {
				b.ReportMetric(c.Within[64]*100, "moongen-500k-within64ns-pct") // paper: 49.9
			}
			if c.Generator == experiments.GenZsend && c.RateKpps == 500 {
				b.ReportMetric(c.MicroBurst*100, "zsend-500k-microburst-pct") // paper: 28.6
			}
		}
	}
}

func BenchmarkFig10RateControlEquivalence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig10(benchScale, 12)
		worst := 0.0
		for q := 0; q < 3; q++ {
			for _, d := range r.RelDev[q] {
				if d < 0 {
					d = -d
				}
				if d > worst {
					worst = d
				}
			}
		}
		b.ReportMetric(worst, "worst-quartile-dev-pct") // paper: ≤1.5
	}
}

func BenchmarkFig11CBRvsPoisson(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := experiments.RunFig11(benchScale, 13)
		last := len(r.Loads) - 1
		b.ReportMetric(r.CBR[0][1], "cbr-0.1Mpps-median-us")
		b.ReportMetric(r.Poisson[len(r.Poisson)-2][1], "poisson-2.0Mpps-median-us")
		b.ReportMetric(r.CBR[last][1], "overload-median-us") // paper: ~2000
	}
}

// --- Mechanism microbenches ------------------------------------------

// BenchmarkCRCGapScheduling prices the §8 gap computation itself.
func BenchmarkCRCGapScheduling(b *testing.B) {
	g := rate.NewGapFiller(wire.ByteTime(wire.Speed10G))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.FillGap(int64(800 + i%1000))
	}
}

// BenchmarkSimulatedLineRate measures simulator throughput: simulated
// packets per wall-clock second at 10 GbE line rate. One iteration
// simulates a full millisecond of line-rate traffic (≈ 14880 packets),
// so ns/op is directly "wall nanoseconds per simulated millisecond"
// and the reported sim/wall metric is its reciprocal in natural units:
// simulated time over wall time, > 1 means faster than realtime. The
// ratio is the repo's headline speed metric — benchtab records it into
// BENCH_baseline.json and the bench-check gate fails on collapse.
//
// The feeder is event-driven, not a task: a self-rearming engine
// callback refills the TX ring once per 63-frame train period, so the
// benchmark prices the datapath (mempool alloc, descriptor ring, MAC
// train scheduling, wire delivery, recycling), not task-switch
// overhead. It persists across iterations — the engine's stop time
// stays at Never, so it never observes a stop boundary — and the first
// simulated millisecond warms every recycling path outside the timer.
// The steady state is the zero-alloc pin of the whole datapath:
// mempool caches, descriptor rings, MAC trains, wheel slot nodes and
// frame recycling together allocate nothing.
func BenchmarkSimulatedLineRate(b *testing.B) {
	app, tx, _, pool := benchPair(20)
	q := tx.GetTxQueue(0)
	ba := pool.BufArray(63)
	period := 63 * wire.FrameTime(wire.Speed10G, 64)
	var feed func()
	feed = func() {
		for q.Free() >= ba.Len() {
			n := pool.AllocBatch(ba.Bufs, 60)
			sent := q.Send(ba.Bufs[:n])
			for i := sent; i < n; i++ {
				ba.Bufs[i].Free()
			}
			ba.Clear(n)
			if sent < n {
				break
			}
		}
		app.Eng.ScheduleAfter(period, feed)
	}
	app.Eng.Schedule(app.Eng.Now(), feed)
	app.Eng.Run(app.Eng.Now().Add(sim.Millisecond)) // warmup millisecond
	warm := tx.GetStats().TxPackets
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Eng.Run(app.Eng.Now().Add(sim.Millisecond))
	}
	b.StopTimer()
	st := tx.GetStats()
	b.ReportMetric(float64(st.TxPackets-warm)/float64(b.N), "sim-pkts/iter")
	if wall := b.Elapsed().Nanoseconds(); wall > 0 {
		simNS := float64(b.N) * float64(sim.Millisecond.Nanoseconds())
		b.ReportMetric(simNS/float64(wall), "sim/wall")
	}
}

// BenchmarkTelemetryOverhead is BenchmarkSimulatedLineRate with the
// telemetry recorder live at the default 1 ms window: port probes on
// both ends plus the engine probe, sampled by snapshot events on the
// scheduler's own grid. The comparison against the plain line-rate
// bench prices the observability layer; the pins are 0 allocs/op in
// steady state (preallocated ring, prebound tick closure, atomic
// counter reads) and a sim/wall ratio that stays within the bench
// gate — recording must not cost realtime.
func BenchmarkTelemetryOverhead(b *testing.B) {
	app, tx, rx, pool := benchPair(23)
	rec := telemetry.NewRecorder(app.Eng, telemetry.Config{Interval: telemetry.DefaultInterval})
	rec.Register(telemetry.PortProbe("tx", tx.Port))
	rec.Register(telemetry.PortProbe("rx", rx.Port))
	rec.Register(telemetry.EngineProbe(app.Eng))
	rec.Start()
	q := tx.GetTxQueue(0)
	ba := pool.BufArray(63)
	period := 63 * wire.FrameTime(wire.Speed10G, 64)
	var feed func()
	feed = func() {
		for q.Free() >= ba.Len() {
			n := pool.AllocBatch(ba.Bufs, 60)
			sent := q.Send(ba.Bufs[:n])
			for i := sent; i < n; i++ {
				ba.Bufs[i].Free()
			}
			ba.Clear(n)
			if sent < n {
				break
			}
		}
		app.Eng.ScheduleAfter(period, feed)
	}
	app.Eng.Schedule(app.Eng.Now(), feed)
	app.Eng.Run(app.Eng.Now().Add(sim.Millisecond)) // warmup: first window recorded
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Eng.Run(app.Eng.Now().Add(sim.Millisecond))
	}
	b.StopTimer()
	if rec.Windows() < uint64(b.N) {
		b.Fatalf("recorded %d windows over %d simulated milliseconds", rec.Windows(), b.N)
	}
	if wall := b.Elapsed().Nanoseconds(); wall > 0 {
		simNS := float64(b.N) * float64(sim.Millisecond.Nanoseconds())
		b.ReportMetric(simNS/float64(wall), "sim/wall")
	}
}

// BenchmarkRxBurstSteadyState is the batched RX hot path in isolation:
// one 63-packet burst per op through the full receive pipeline — wire
// delivery, per-port receive cache, write-back train into the SPSC
// ring, RecvBurst into a cache-bound BufArray, flow-tracker
// attribution (key parse, sequence classification, inter-arrival
// statistics) and batched recycling. The steady state allocates
// nothing — the 0 allocs/op pin of the RX analysis subsystem.
func BenchmarkRxBurstSteadyState(b *testing.B) {
	app := core.NewApp(22)
	tx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 0})
	rx := app.ConfigDevice(core.DeviceConfig{Profile: nic.ChipX540, ID: 1})
	app.ConnectDevices(tx, rx, wire.PHY10GBaseT, 2)
	pool := core.CreateMemPool(8192, func(m *mempool.Mbuf) {
		p := proto.UDPPacket{B: m.Data[:60]}
		p.Fill(proto.UDPPacketFill{PktLength: 60,
			EthSrc: tx.MAC(), EthDst: rx.MAC(),
			IPSrc: proto.MustIPv4("10.0.0.1"), IPDst: proto.MustIPv4("10.1.0.1"),
			UDPSrc: 1234, UDPDst: 5678})
	})
	const payloadOff = proto.EthHdrLen + proto.IPv4HdrLen + proto.UDPHdrLen
	q := tx.GetTxQueue(0)
	ba := pool.BufArray(63)
	rxba := rx.RxBufArray(63)
	rxq := rx.GetRxQueue(0)
	tr := flow.NewTracker(flow.Config{})
	var seq uint64
	cur := 0
	send := func() { q.Send(ba.Bufs[:cur]) }
	iter := func() {
		cur = ba.Alloc(60)
		for _, m := range ba.Slice(cur) {
			flow.Stamp(m.Payload()[payloadOff:], seq, sim.Time(app.Now()))
			seq++
		}
		app.Eng.Schedule(app.Eng.Now(), send)
		app.Eng.RunAll() // transmit and deliver the burst
		for {
			n := rxq.RecvBurst(rxba.Bufs)
			if n == 0 {
				break
			}
			for _, m := range rxba.Slice(n) {
				tr.Record(m.Payload(), sim.Time(m.RxMeta.Arrival))
			}
			rxba.FreeAll()
		}
		ba.Clear(cur)
	}
	// Warm the recycling paths (caches, frame pools, the flow entry)
	// outside the measured region.
	for i := 0; i < 8; i++ {
		iter()
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		iter()
	}
	b.StopTimer()
	fs, ok := tr.Lookup(flow.Key{Proto: proto.IPProtoUDP,
		Src: proto.MustIPv4("10.0.0.1"), Dst: proto.MustIPv4("10.1.0.1"),
		SrcPort: 1234, DstPort: 5678})
	if !ok || fs.Lost != 0 || fs.Received != seq {
		b.Fatalf("attribution broke: %+v (sent %d)", fs, seq)
	}
}

// BenchmarkTxBurstSteadyState is the batched TX hot path in isolation:
// one 63-packet burst per op through cache → BufArray → descriptor
// ring → MAC train → wire → recycling, with every event callback
// prebound and every frame recycled. The steady state allocates
// nothing — this is the 0 allocs/op pin of the batched datapath.
func BenchmarkTxBurstSteadyState(b *testing.B) {
	app, tx, _, _ := benchPair(21)
	q := tx.GetTxQueue(0)
	ba := app.TxCache().BufArray(63)
	cur := 0
	send := func() { q.Send(ba.Bufs[:cur]) }
	// Warm the recycling paths (slice growth, frame pools) outside the
	// measured region.
	for i := 0; i < 8; i++ {
		cur = ba.Alloc(60)
		app.Eng.Schedule(app.Eng.Now(), send)
		app.Eng.RunAll()
		ba.Clear(cur)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cur = ba.Alloc(60)
		app.Eng.Schedule(app.Eng.Now(), send)
		app.Eng.RunAll() // transmit, deliver and recycle the burst
		ba.Clear(cur)
	}
}

// BenchmarkSpecCompiledLineRate is the spec layer's 0 allocs/op pin:
// it loads examples/specs/flood-linerate.yaml through internal/spec,
// compiles it into a scenario.Spec at load time (outside the timer),
// and drives the resulting line-rate flood in steady state. The
// benchmarked loop must be indistinguishable from the compiled-Go
// flood — the declarative layer is interpretation at load time only,
// never per packet.
func BenchmarkSpecCompiledLineRate(b *testing.B) {
	doc, err := spec.Load("examples/specs/flood-linerate.yaml")
	if err != nil {
		b.Fatal(err)
	}
	name, sp, err := doc.Compile()
	if err != nil {
		b.Fatal(err)
	}
	if name != "flood" {
		b.Fatalf("spec compiles to %q, want flood", name)
	}
	env := scenario.NewEnv(sp, nil)
	// Sink setup as in benchPair: the receiver consumes every frame at
	// the wire as a pure function of (bytes, rxTime), so deliveries may
	// coalesce into trains without observable difference.
	env.RX().SetDeliverHook(func(f *wire.Frame, at sim.Time) bool { return true })
	env.TX().Link().SetDeliverySlack(nic.SinkDeliverySlack(env.TX().Speed()))
	if _, err := scenario.LaunchLoad(env); err != nil {
		b.Fatal(err)
	}
	app := env.App()
	app.Eng.Run(app.Eng.Now().Add(sim.Millisecond)) // warmup millisecond
	warm := env.TX().GetStats().TxPackets
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Eng.Run(app.Eng.Now().Add(sim.Millisecond))
	}
	b.StopTimer()
	st := env.TX().GetStats()
	b.ReportMetric(float64(st.TxPackets-warm)/float64(b.N), "sim-pkts/iter")
	if wall := b.Elapsed().Nanoseconds(); wall > 0 {
		simNS := float64(b.N) * float64(sim.Millisecond.Nanoseconds())
		b.ReportMetric(simNS/float64(wall), "sim/wall")
	}
}

// BenchmarkFaultInjectorOverhead is the fault layer's "free when idle"
// pin: BenchmarkSimulatedLineRate with an armed injector whose single
// link-flap onset sits an hour of simulated time away, so it schedules
// once at install and then never runs. An armed plan must cost the
// datapath nothing — no per-packet checks, no allocations, no sim/wall
// collapse — because faults act on the targets (wire, pump, clock)
// only at their onset instants, never on the packet path.
func BenchmarkFaultInjectorOverhead(b *testing.B) {
	app, tx, _, pool := benchPair(24)
	inj := fault.New(app.Eng, fault.Targets{Link: tx.Link()}, fault.Plan{
		{Kind: fault.LinkFlap, At: sim.Duration(3600) * sim.Second, Duration: sim.Millisecond},
	})
	inj.Install(app.Eng.Now(), sim.Duration(7200)*sim.Second)
	q := tx.GetTxQueue(0)
	ba := pool.BufArray(63)
	period := 63 * wire.FrameTime(wire.Speed10G, 64)
	var feed func()
	feed = func() {
		for q.Free() >= ba.Len() {
			n := pool.AllocBatch(ba.Bufs, 60)
			sent := q.Send(ba.Bufs[:n])
			for i := sent; i < n; i++ {
				ba.Bufs[i].Free()
			}
			ba.Clear(n)
			if sent < n {
				break
			}
		}
		app.Eng.ScheduleAfter(period, feed)
	}
	app.Eng.Schedule(app.Eng.Now(), feed)
	app.Eng.Run(app.Eng.Now().Add(sim.Millisecond)) // warmup millisecond
	warm := tx.GetStats().TxPackets
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		app.Eng.Run(app.Eng.Now().Add(sim.Millisecond))
	}
	b.StopTimer()
	if inj.State() != fault.Armed || inj.Fired() != 0 {
		b.Fatalf("injector left the armed state during the bench: %v fired=%d", inj.State(), inj.Fired())
	}
	st := tx.GetStats()
	b.ReportMetric(float64(st.TxPackets-warm)/float64(b.N), "sim-pkts/iter")
	if wall := b.Elapsed().Nanoseconds(); wall > 0 {
		simNS := float64(b.N) * float64(sim.Millisecond.Nanoseconds())
		b.ReportMetric(simNS/float64(wall), "sim/wall")
	}
}
