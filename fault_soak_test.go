// Soak gate: the fault layer run long — thousands of link-flap cycles
// over ≥ 10 simulated seconds of CBR load on the sharded testbed, with
// the windowed model telemetry golden-gated byte-for-byte. The CI soak
// job runs this under the race detector; locally it is part of tier-1
// (`go test ./...`) and skipped in -short runs.
package repro

import (
	"io"
	"strings"
	"testing"

	"repro/internal/scenario"
	"repro/internal/sim"
)

// TestSoakLinkFlap runs the linkflap scenario for 10 simulated seconds
// (2000 flap cycles at the default 5 ms period, 20M slots at 2 Mpps)
// at the canonical sharded configuration and diffs the 100 ms-windowed
// model telemetry against testdata/golden/soak_linkflap.csv.
// Regenerate deliberately with:
//
//	go test -run TestSoakLinkFlap . -update
func TestSoakLinkFlap(t *testing.T) {
	if testing.Short() {
		t.Skip("soak run: skipped in -short mode")
	}
	sc, ok := scenario.Get("linkflap")
	if !ok {
		t.Fatal("linkflap not registered")
	}
	spec := sc.DefaultSpec()
	spec.Runtime = 10 * sim.Second
	spec.Seed = 5
	spec.Cores = 2
	spec.TelemetryInterval = 100 * sim.Millisecond
	rep, err := scenario.Execute("linkflap", spec, io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Telemetry == nil {
		t.Fatal("no telemetry series in the merged soak report")
	}

	// Structural sanity before the byte-level diff: every flap cycle
	// fired and recovered, and the wire-boundary drops reconcile with
	// the per-flow loss.
	var lost uint64
	for _, f := range rep.Flows {
		lost += f.Lost
		if f.LostInRecovery != 0 {
			t.Errorf("flow %s: %d losses attributed to recovery — linkflap loses frames only at the down wire", f.Name, f.LostInRecovery)
		}
	}
	if lost == 0 {
		t.Fatal("2000 flap cycles lost nothing")
	}

	var b strings.Builder
	if err := rep.Telemetry.WriteCSV(&b, false); err != nil {
		t.Fatal(err)
	}
	goldenCompare(t, "soak_linkflap.csv", b.String())
}

// TestFaultLossSplitShardingInvariant pins the per-flow fault-boundary
// loss attribution across sharding: Tracker.Merge and the report merge
// must reproduce the single-core split exactly, flow by flow, for both
// fault-driven scenarios.
func TestFaultLossSplitShardingInvariant(t *testing.T) {
	type split struct {
		name                 string
		lost, during, recov  uint64
		txPackets, rxPackets uint64
	}
	collect := func(name string, cores int) []split {
		sc, _ := scenario.Get(name)
		spec := sc.DefaultSpec()
		spec.Runtime = 10 * sim.Millisecond
		spec.Seed = 5
		spec.Cores = cores
		rep, err := scenario.Execute(name, spec, io.Discard)
		if err != nil {
			t.Fatal(err)
		}
		out := make([]split, len(rep.Flows))
		for i, f := range rep.Flows {
			out[i] = split{f.Name, f.Lost, f.LostDuringFault, f.LostInRecovery, f.TxPackets, f.RxPackets}
		}
		return out
	}
	for _, name := range []string{"linkflap", "overload-recover"} {
		want := collect(name, 1)
		var total uint64
		for _, s := range want {
			if s.lost != s.during+s.recov {
				t.Errorf("%s flow %s: split %d+%d does not cover lost=%d", name, s.name, s.during, s.recov, s.lost)
			}
			total += s.lost
		}
		if total == 0 {
			t.Errorf("%s: no losses at the canonical configuration — the pin is vacuous", name)
		}
		for _, cores := range []int{2, 4} {
			got := collect(name, cores)
			if len(got) != len(want) {
				t.Fatalf("%s cores=%d: %d flows, want %d", name, cores, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Errorf("%s cores=%d flow %s: %+v, want %+v", name, cores, want[i].name, got[i], want[i])
				}
			}
		}
	}
}
